/// \file quickstart.cpp
/// Smallest complete use of the library: build an RLC tree, run the O(n)
/// Equivalent Elmore analysis, and print closed-form timing for every node
/// alongside the RC-only Elmore/Wyatt baselines.

#include <iostream>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/util/table.hpp"
#include "relmore/util/units.hpp"

int main() {
  using namespace relmore;
  using namespace relmore::util;  // unit literals

  // A small clock spine: trunk feeding two branches, one of which splits
  // again. Values are typical upper-metal global wires, where inductance
  // matters (the paper's motivating regime).
  circuit::RlcTree tree;
  const auto trunk = tree.add_section(circuit::kInput, {15.0_ohm, 3.0_nH, 0.10_pF}, "trunk");
  const auto east = tree.add_section(trunk, {25.0_ohm, 2.0_nH, 0.20_pF}, "east");
  const auto west = tree.add_section(trunk, {25.0_ohm, 2.0_nH, 0.20_pF}, "west");
  tree.add_section(east, {10.0_ohm, 1.5_nH, 0.30_pF}, "ff_bank_a");
  tree.add_section(west, {10.0_ohm, 1.5_nH, 0.30_pF}, "ff_bank_b");

  // One O(n) pass characterizes every node.
  const eed::TreeModel model = eed::analyze(tree);

  util::Table table({"node", "zeta", "omega_n [Grad/s]", "t50 EED [ps]", "t50 Wyatt [ps]",
                     "rise [ps]", "overshoot [%]", "settle [ps]"});
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<circuit::SectionId>(i);
    const eed::NodeModel& n = model.at(id);
    table.add_row({tree.section(id).name, util::Table::fmt(n.zeta, 3),
                   util::Table::fmt(n.omega_n / 1e9, 3),
                   util::Table::fmt(eed::delay_50(n) / 1.0_ps, 4),
                   util::Table::fmt(eed::wyatt_delay_50(n.sum_rc) / 1.0_ps, 4),
                   util::Table::fmt(eed::rise_time(n) / 1.0_ps, 4),
                   n.underdamped() ? util::Table::fmt(eed::overshoot_pct(n, 1), 3) : "-",
                   util::Table::fmt(eed::settling_time(n) / 1.0_ps, 4)});
  }
  table.print(std::cout, "Equivalent Elmore Delay quickstart (paper eqs. 29-42)");

  std::cout << "\nNote how Wyatt (RC-only) underestimates the delay at the\n"
               "underdamped sinks: inductance slows the 50% crossing and adds\n"
               "overshoot the RC model cannot represent.\n";
  return 0;
}
