/// \file paper_tour.cpp
/// A guided tour of the paper, equation by equation, on one circuit: the
/// balanced Fig. 5 tree observed at node 7. Each step prints the quantity
/// the paper derives and the section/equation it comes from — run this
/// side by side with the paper to map text to code.

#include <iostream>

#include "relmore/relmore.hpp"
#include "relmore/util/table.hpp"

int main() {
  using namespace relmore;
  using util::Table;

  std::cout << "== Equivalent Elmore Delay for RLC Trees — guided tour ==\n\n";

  // Section II background: the RC Elmore/Wyatt baseline.
  circuit::SectionId node7 = circuit::kInput;
  circuit::RlcTree tree = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, &node7);
  const eed::TreeModel model = eed::analyze(tree);
  const eed::NodeModel& nm = model.at(node7);
  std::cout << "Fig. 5 balanced tree, node 7. Section II baseline:\n"
            << "  Elmore time constant  sum(C_k R_k7) = " << nm.sum_rc << " s  (eq. 7)\n"
            << "  Elmore 50% delay (centroid)  = " << eed::elmore_delay_50(nm.sum_rc)
            << " s\n"
            << "  Wyatt 50% delay  ln2*tau      = " << eed::wyatt_delay_50(nm.sum_rc)
            << " s\n\n";

  // Section III: the second-order characterization.
  std::cout << "Section III second-order model (eqs. 28-30):\n"
            << "  sum(C_k L_k7) = " << nm.sum_lc << " s^2   (the new path sum)\n"
            << "  omega_n = 1/sqrt(sum LC) = " << nm.omega_n << " rad/s  (eq. 30)\n"
            << "  zeta    = sum RC / (2 sqrt(sum LC)) = " << nm.zeta << "  (eq. 29)\n"
            << "  response is " << (nm.underdamped() ? "UNDERDAMPED (non-monotone)"
                                                     : "overdamped/critical")
            << " — the case RC Elmore cannot represent.\n\n";

  // Appendix: the cost of knowing this for every node.
  const eed::AnalyzeStats stats = eed::analyze_counting(tree).stats;
  std::cout << "Appendix complexity: analyzing ALL " << stats.nodes
            << " nodes used exactly " << stats.multiplications
            << " multiplications (2 per section).\n\n";

  // Section IV: closed-form signal characterization.
  Table iv({"quantity", "equation", "value"});
  iv.add_row({"step response v(t50)", "(31)",
              Table::fmt(eed::step_response(nm, eed::delay_50(nm), 1.0), 4)});
  iv.add_row({"50% delay (fitted)", "(33)/(35)", Table::fmt(eed::delay_50(nm), 6)});
  iv.add_row({"rise time 10-90%", "(34)/(36)", Table::fmt(eed::rise_time(nm), 6)});
  iv.add_row({"1st overshoot [%]", "(39)", Table::fmt(eed::overshoot_pct(nm, 1), 4)});
  iv.add_row({"time of 1st overshoot", "(40)", Table::fmt(eed::overshoot_time(nm, 1), 6)});
  iv.add_row({"settling time (x=0.1)", "(41)-(42)", Table::fmt(eed::settling_time(nm), 6)});
  iv.add_row({"exp-input v(t50), tau=0.5ns", "(43)-(48)",
              Table::fmt(eed::exp_input_response(nm, eed::delay_50(nm), 1.0, 0.5e-9), 4)});
  iv.print(std::cout, "Section IV closed forms at node 7 (times in seconds)");

  // Section V: accuracy against the reference simulator.
  const analysis::StepComparison cmp = analysis::compare_step_response(tree, node7);
  std::cout << "\nSection V accuracy (our simulator standing in for AS/X):\n"
            << "  simulator t50 = " << cmp.ref_delay_50 << " s\n"
            << "  EED error     = " << Table::fmt(cmp.delay_err_pct, 3)
            << "%   (paper: <4% on its balanced example)\n"
            << "  Wyatt error   = " << Table::fmt(cmp.wyatt_err_pct, 3)
            << "%   (the gap inductance-blindness costs)\n"
            << "  simulated overshoot " << Table::fmt(cmp.ref_overshoot_pct, 3)
            << "% vs eq.39's " << Table::fmt(cmp.eed_overshoot_pct, 3) << "%\n\n";

  std::cout << "Every number above regenerates the corresponding paper claim; the\n"
               "figure benches in bench/ sweep these same quantities across the\n"
               "paper's Section V parameter studies.\n";
  return 0;
}
