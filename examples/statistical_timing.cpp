/// \file statistical_timing.cpp
/// Statistical timing walk-through built on the closed forms: because the
/// Equivalent Elmore Delay is an O(n) analytic expression, both Monte-Carlo
/// sampling and gradient-based (first-order) variation analysis are
/// essentially free — the workflow that is impractical with per-sample
/// transient simulation. Demonstrates:
///   1. the per-section delay gradient (which wire dominates the delay?),
///   2. Monte-Carlo delay distribution under process variation,
///   3. the gradient-based sigma matching the sampled sigma,
///   4. a variation-aware guard band (q95) for the sink.

#include <iostream>

#include "relmore/relmore.hpp"
#include "relmore/util/table.hpp"

int main() {
  using namespace relmore;
  using namespace relmore::util;

  // A global net: driver + 1 mm wire + two branch loads.
  circuit::RlcTree tree;
  const auto drv = tree.add_section(circuit::kInput, {30.0_ohm, 0.0_nH, 0.0_pF}, "driver");
  const auto trunk = circuit::append_wire(tree, drv, circuit::global_wire_spec(), 6, "trunk");
  const auto east = tree.add_section(trunk, {15.0_ohm, 0.8_nH, 0.12_pF}, "east");
  tree.add_section(east, {5.0_ohm, 0.2_nH, 0.25_pF}, "ff_east");
  const auto west = tree.add_section(trunk, {18.0_ohm, 1.0_nH, 0.10_pF}, "west");
  const auto sink = tree.add_section(west, {5.0_ohm, 0.2_nH, 0.30_pF}, "ff_west");

  // 1. Sensitivity: which section's variation moves the sink delay most?
  const eed::SensitivityReport grad = eed::delay_sensitivity(tree, sink);
  util::Table sens({"section", "dD/dR * R [ps]", "dD/dL * L [ps]", "dD/dC * C [ps]"});
  for (std::size_t k = 0; k < tree.size(); ++k) {
    const auto& v = tree.section(static_cast<circuit::SectionId>(k)).v;
    const auto& s = grad.sections[k];
    sens.add_row({tree.section(static_cast<circuit::SectionId>(k)).name,
                  util::Table::fmt(s.d_resistance * v.resistance / 1.0_ps, 4),
                  util::Table::fmt(s.d_inductance * v.inductance / 1.0_ps, 4),
                  util::Table::fmt(s.d_capacitance * v.capacitance / 1.0_ps, 4)});
  }
  sens.print(std::cout,
             "Per-section delay leverage at ff_west (sensitivity x nominal value)");
  std::cout << "nominal delay at ff_west: " << util::Table::fmt(grad.delay / 1.0_ps, 4)
            << " ps\n\n";

  // 2-4. Variation analysis.
  analysis::VariationSpec spec;  // 10% R/C, 5% L, 1-sigma
  const auto mc =
      analysis::monte_carlo_delay(tree, sink, analysis::MonteCarloOptions{spec, 10000, 2026, {}});
  const double lin_sigma = analysis::delay_stddev_linear(tree, sink, spec);

  util::Table dist({"quantity", "value [ps]"});
  dist.add_row({"nominal", util::Table::fmt(mc.nominal / 1.0_ps, 4)});
  dist.add_row({"MC mean (10k samples)", util::Table::fmt(mc.mean / 1.0_ps, 4)});
  dist.add_row({"MC sigma", util::Table::fmt(mc.stddev / 1.0_ps, 4)});
  dist.add_row({"gradient sigma (no sampling)", util::Table::fmt(lin_sigma / 1.0_ps, 4)});
  dist.add_row({"MC q95 (guard-band corner)", util::Table::fmt(mc.q95 / 1.0_ps, 4)});
  dist.add_row({"MC worst", util::Table::fmt(mc.max / 1.0_ps, 4)});
  dist.print(std::cout, "Delay distribution at ff_west under 10% R/C, 5% L variation");

  std::cout << "\nguard band to cover 95% of process spread: +"
            << util::Table::fmt((mc.q95 - mc.nominal) / 1.0_ps, 3) << " ps ("
            << util::Table::fmt(100.0 * (mc.q95 - mc.nominal) / mc.nominal, 3)
            << "% of nominal)\n";
  std::cout << "The gradient sigma agrees with the sampled sigma to ~1%, so the\n"
               "10k-sample Monte-Carlo was optional — one O(n) gradient sufficed.\n";
  return 0;
}
