/// \file chip_timing.cpp
/// The chip-scale flow through the relmore::Timer façade: load a small
/// design corpus (three nets, two gates), print the timing summary, the
/// worst path in report_timing style, and per-endpoint slack — then show
/// the same flow on a larger synthetic design where the corpus-sharded
/// analysis kicks in. Every call is Result-based; nothing here can throw.

#include <iostream>
#include <sstream>

#include "relmore/timer.hpp"

namespace {

// A three-stage corpus: input port -> wire -> inverter -> wire -> buffer
// -> wire -> output port. `cell` lines extend the generic library; values
// take SPICE SI suffixes. Format reference: docs/sta.md.
constexpr const char* kCorpus = R"(design demo
cell inv_d1 r=1k cap=10f intrinsic=1p slewgain=0.1
cell buf_d2 r=500 cap=12f intrinsic=4p slewgain=0.1
net n_in
section s0 - R=800 L=2n C=15f
section s1 s0 R=800 L=2n C=15f
end
net n_mid
section s0 - R=600 L=1n C=20f
end
net n_out
section s0 - R=400 L=0 C=30f
end
input clk n_in at=0 slew=5p
output q n_out:s0 required=300p
inst u_inv inv_d1 n_mid n_in:s1
inst u_buf buf_d2 n_out n_mid:s0
clock 1n
)";

}  // namespace

int main() {
  using namespace relmore;

  // --- Load + time the hand-written corpus -------------------------------
  Timer timer;
  std::istringstream corpus(kCorpus);
  util::DiagnosticsReport report;
  if (util::Status s = timer.load(corpus, sta::generic_library(), &report); !s.is_ok()) {
    std::cerr << "load failed: " << s.to_string() << "\n" << report.to_string();
    return 1;
  }

  // report_timing prints the summary plus the k worst paths; slack() is a
  // point query (both analyze lazily and share the cached result).
  if (util::Status s = timer.report_timing(std::cout, 1); !s.is_ok()) {
    std::cerr << s.to_string() << "\n";
    return 1;
  }
  const util::Result<double> q_slack = timer.slack("q");
  if (q_slack.is_ok()) {
    std::cout << "\nslack(q) = " << q_slack.value() * 1e12 << " ps\n";
  }

  // --- The same flow at corpus scale -------------------------------------
  // A seeded synthetic design: repeated topology classes make the
  // same-topology nets run on AoSoA lanes. Results are bitwise-identical
  // whatever `options` asks for — the knobs only schedule the work.
  sta::SyntheticSpec spec;
  spec.nets = 512;
  spec.seed = 7;
  spec.topo_classes = 8;
  spec.chain_depth = 4;
  util::Result<sta::Design> synthetic = sta::make_synthetic_design_checked(spec);
  if (!synthetic.is_ok()) {
    std::cerr << synthetic.status().to_string() << "\n";
    return 1;
  }
  Timer big;
  if (util::Status s = big.load(std::move(synthetic).value()); !s.is_ok()) {
    std::cerr << s.to_string() << "\n";
    return 1;
  }
  sta::AnalyzeOptions options;
  options.lane_width = 4;
  const util::Result<sta::TimingSummary> summary = big.analyze(options);
  if (!summary.is_ok()) {
    std::cerr << summary.status().to_string() << "\n";
    return 1;
  }
  std::cout << "\n" << sta::format_summary(summary.value());
  std::cout << big.design()->nets.size() << " nets, " << summary.value().batched_nets
            << " timed on AoSoA lanes\n";
  return 0;
}
