/// \file global_wire_analysis.cpp
/// Signal-integrity walk-through for one global wire — the paper's
/// motivating scenario (wide upper-metal wires where inductance matters).
/// Demonstrates the wider API surface in one flow:
///   1. describe the wire physically and segment it (circuit::segmentation),
///   2. run the O(n) EED analysis and print the full timing signature
///      (delay / rise / overshoots / settling, paper eqs. 33–42),
///   3. sweep the driver strength to find where the response turns
///      non-monotone (the "is inductance important here?" question),
///   4. print the frequency-domain view (resonance, bandwidth),
///   5. cross-check against a higher-order AWE model and the simulator,
///   6. export a SPICE deck for external tools.

#include <fstream>
#include <iostream>

#include "relmore/analysis/compare.hpp"
#include "relmore/circuit/netlist.hpp"
#include "relmore/circuit/segmentation.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/eed/frequency.hpp"
#include "relmore/moments/pole_residue.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/util/table.hpp"
#include "relmore/util/units.hpp"

int main() {
  using namespace relmore;
  using namespace relmore::util;

  const circuit::WireSpec wire = circuit::global_wire_spec();  // 1 mm global route
  const int segments = circuit::suggested_segments(wire, 50.0_ps);
  std::cout << "wire: " << wire.length_m * 1e3 << " mm, " << wire.r_per_m / 1e3
            << " ohm/mm, " << wire.l_per_m * 1e6 << " nH/mm, " << wire.c_per_m * 1e9
            << " pF/mm  ->  " << segments << " lumped sections\n\n";

  // 3. Driver-strength sweep: stronger drivers expose the inductance.
  util::Table sweep({"driver [ohm]", "zeta", "t50 [ps]", "rise [ps]", "overshoot [%]",
                     "settle [ps]", "monotone?"});
  for (const double rdrv : {100.0, 50.0, 25.0, 12.0, 6.0}) {
    circuit::RlcTree tree;
    const auto drv = tree.add_section(circuit::kInput, {rdrv, 0.0, 0.0}, "drv");
    const auto sink = circuit::append_wire(tree, drv, wire, segments);
    const eed::TreeModel model = eed::analyze(tree);
    const eed::NodeModel& nm = model.at(sink);
    sweep.add_row({util::Table::fmt(rdrv, 4), util::Table::fmt(nm.zeta, 3),
                   util::Table::fmt(eed::delay_50(nm) / 1.0_ps, 4),
                   util::Table::fmt(eed::rise_time(nm) / 1.0_ps, 4),
                   nm.underdamped() ? util::Table::fmt(eed::overshoot_pct(nm, 1), 3) : "0",
                   util::Table::fmt(eed::settling_time(nm) / 1.0_ps, 4),
                   nm.underdamped() ? "no (rings)" : "yes"});
  }
  sweep.print(std::cout, "Driver sweep (paper: stronger drive => lower zeta => ringing)");

  // Focus circuit: 25 ohm driver.
  circuit::RlcTree tree;
  const auto drv = tree.add_section(circuit::kInput, {25.0, 0.0, 0.0}, "drv");
  const auto sink = circuit::append_wire(tree, drv, wire, segments);
  const eed::TreeModel model = eed::analyze(tree);
  const eed::NodeModel& nm = model.at(sink);

  // 4. Frequency-domain view.
  std::cout << "\nfrequency view: ";
  if (eed::has_resonant_peak(nm)) {
    std::cout << "resonant peak " << util::Table::fmt(eed::peak_magnitude(nm), 4) << "x at "
              << util::Table::fmt(eed::peak_frequency(nm) / (2 * M_PI) / 1e9, 4) << " GHz, ";
  }
  std::cout << "-3 dB bandwidth "
            << util::Table::fmt(eed::bandwidth_3db(nm) / (2 * M_PI) / 1e9, 4) << " GHz\n";

  // 5. Cross-check: EED vs AWE q=4 vs the simulator at the sink.
  const auto cmp = analysis::compare_step_response(tree, sink);
  const auto awe = moments::stabilized(moments::awe_models_for_tree(tree, 4)
                                           [static_cast<std::size_t>(sink)]);
  const double horizon = analysis::suggest_horizon(nm);
  const auto ref = analysis::reference_waveform(tree, sink, sim::StepSource{1.0}, horizon);
  const double awe_t50 = awe.step_waveform(ref.times(), 1.0).first_rise_crossing(0.5);

  util::Table models({"model", "t50 [ps]", "err vs sim %"});
  models.add_row({"simulator (reference)", util::Table::fmt(cmp.ref_delay_50 / 1.0_ps, 4), "-"});
  models.add_row({"EED (eq. 35)", util::Table::fmt(cmp.eed_delay_50 / 1.0_ps, 4),
                  util::Table::fmt(cmp.delay_err_pct, 3)});
  models.add_row({"AWE q=4", util::Table::fmt(awe_t50 / 1.0_ps, 4),
                  util::Table::fmt(100.0 * std::abs(awe_t50 - cmp.ref_delay_50) /
                                       cmp.ref_delay_50,
                                   3)});
  models.add_row({"Wyatt RC", util::Table::fmt(cmp.wyatt_delay_50 / 1.0_ps, 4),
                  util::Table::fmt(cmp.wyatt_err_pct, 3)});
  std::cout << "\n";
  models.print(std::cout, "Model cross-check at the sink (step input)");

  // 6. SPICE export for external verification.
  const char* deck_path = "global_wire.sp";
  std::ofstream deck(deck_path);
  circuit::SpiceWriteOptions opts;
  opts.tran_stop_seconds = horizon;
  circuit::write_spice(tree, deck, opts);
  std::cout << "\nSPICE deck written to " << deck_path << " (" << tree.size()
            << " sections) for external cross-simulation.\n";
  return 0;
}
