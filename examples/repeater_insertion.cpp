/// \file repeater_insertion.cpp
/// The optimization use case the paper motivates in Section IV: "the
/// general solutions ... include all types of responses ... in one
/// continuous equation, which is useful in applications such as buffer
/// insertion [and] wire sizing". This example sweeps the number of
/// repeaters on a long inductive line and minimizes total path delay under
/// (a) the Wyatt RC model and (b) the Equivalent Elmore Delay, then scores
/// both choices against the transient simulator — showing the RC model
/// over-inserts repeaters when inductance is significant (cf. the authors'
/// follow-up work on repeater insertion in RLC lines).

#include <iostream>
#include <vector>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/tree_transient.hpp"
#include "relmore/util/table.hpp"
#include "relmore/util/units.hpp"

namespace {

using namespace relmore;
using namespace relmore::util;

/// Total line parasitics for a 10 mm global wire.
constexpr double kLineR = 200.0;    // ohm
constexpr double kLineL = 20.0e-9;  // H
constexpr double kLineC = 2.0e-12;  // F

/// Repeater (driver) electrical model.
constexpr double kDriverR = 30.0;   // ohm
constexpr double kDriverC = 50e-15; // input cap presented to the previous stage
constexpr double kDriverDelay = 18e-12;  // intrinsic gate delay per stage

/// Builds one repeater stage: driver resistance + wire segment of 1/k of
/// the line + the next repeater's input capacitance at the far end.
circuit::RlcTree build_stage(int k) {
  circuit::RlcTree t;
  const int wire_sections = 8;  // distributed wire model per stage
  circuit::SectionId prev = circuit::kInput;
  // Driver output resistance as a zero-length section.
  prev = t.add_section(prev, {kDriverR, 0.0, 0.0}, "driver");
  for (int i = 0; i < wire_sections; ++i) {
    const double frac = 1.0 / (k * wire_sections);
    prev = t.add_section(
        prev, {kLineR * frac, kLineL * frac, kLineC * frac}, "w" + std::to_string(i));
  }
  // Receiving repeater's input capacitance.
  t.add_section(prev, {0.1, 1e-15, kDriverC}, "sink");
  return t;
}

struct SweepRow {
  int repeaters;
  double eed_path_delay;
  double wyatt_path_delay;
  double sim_path_delay;
};

}  // namespace

int main() {
  std::vector<SweepRow> rows;
  for (int k = 1; k <= 8; ++k) {
    const circuit::RlcTree stage = build_stage(k);
    const auto sink = static_cast<circuit::SectionId>(stage.size() - 1);
    const eed::TreeModel model = eed::analyze(stage);
    const eed::NodeModel& nm = model.at(sink);

    // Per-stage delays under each model; path = k identical stages.
    const double d_eed = eed::delay_50(nm) + kDriverDelay;
    const double d_wyatt = eed::wyatt_delay_50(nm.sum_rc) + kDriverDelay;

    sim::TransientOptions opts;
    opts.t_stop = 10.0_ns / k;
    opts.dt = opts.t_stop / 40000.0;
    const auto res = sim::simulate_tree(stage, sim::StepSource{1.0}, opts);
    const double d_sim =
        sim::measure_rising(res.waveform(sink), 1.0).delay_50 + kDriverDelay;

    rows.push_back({k, k * d_eed, k * d_wyatt, k * d_sim});
  }

  util::Table table({"repeaters", "path delay EED [ps]", "path delay Wyatt [ps]",
                     "path delay sim [ps]"});
  int best_eed = 1;
  int best_wyatt = 1;
  int best_sim = 1;
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.repeaters),
                   util::Table::fmt(r.eed_path_delay / 1.0_ps, 4),
                   util::Table::fmt(r.wyatt_path_delay / 1.0_ps, 4),
                   util::Table::fmt(r.sim_path_delay / 1.0_ps, 4)});
    if (r.eed_path_delay < rows[static_cast<std::size_t>(best_eed - 1)].eed_path_delay) {
      best_eed = r.repeaters;
    }
    if (r.wyatt_path_delay <
        rows[static_cast<std::size_t>(best_wyatt - 1)].wyatt_path_delay) {
      best_wyatt = r.repeaters;
    }
    if (r.sim_path_delay < rows[static_cast<std::size_t>(best_sim - 1)].sim_path_delay) {
      best_sim = r.repeaters;
    }
  }
  table.print(std::cout, "Repeater insertion on a 10 mm inductive global line");

  std::cout << "\noptimal repeater count:  EED model = " << best_eed
            << ",  Wyatt RC model = " << best_wyatt << ",  simulator = " << best_sim << "\n";
  const double eed_pick_cost = rows[static_cast<std::size_t>(best_eed - 1)].sim_path_delay;
  const double wyatt_pick_cost =
      rows[static_cast<std::size_t>(best_wyatt - 1)].sim_path_delay;
  const double best_cost = rows[static_cast<std::size_t>(best_sim - 1)].sim_path_delay;
  std::cout << "simulated cost of each pick:  EED = "
            << util::Table::fmt(eed_pick_cost / 1.0_ps, 4)
            << " ps,  Wyatt = " << util::Table::fmt(wyatt_pick_cost / 1.0_ps, 4)
            << " ps,  true optimum = " << util::Table::fmt(best_cost / 1.0_ps, 4) << " ps\n";
  std::cout << "The RC model ignores the inductive speedup of long unbroken\n"
               "wires, so it asks for more repeaters than the simulator\n"
               "justifies; the EED pick lands within a fraction of a percent\n"
               "of the true optimum (the fidelity property the paper argues).\n";
  return 0;
}
