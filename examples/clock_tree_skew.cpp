/// \file clock_tree_skew.cpp
/// Clock-distribution scenario from the paper's introduction: wide,
/// low-resistance upper-metal wires in clock networks are exactly where
/// inductance matters. This example builds an H-tree, perturbs one quadrant
/// (load mismatch), and reports per-sink delay and skew under three models:
/// Elmore, Wyatt, and the Equivalent Elmore Delay — then validates the EED
/// numbers against the transient simulator.

#include <algorithm>
#include <iostream>
#include <vector>

#include "relmore/analysis/compare.hpp"
#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/opt/skew_balance.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/tree_transient.hpp"
#include "relmore/util/table.hpp"
#include "relmore/util/units.hpp"

namespace {

struct SkewReport {
  double min_delay = 1e300;
  double max_delay = -1e300;
  void absorb(double d) {
    min_delay = std::min(min_delay, d);
    max_delay = std::max(max_delay, d);
  }
  [[nodiscard]] double skew() const { return max_delay - min_delay; }
};

}  // namespace

int main() {
  using namespace relmore;
  using namespace relmore::util;

  // 4-level H-tree; trunk is a wide global wire.
  circuit::RlcTree tree = circuit::make_h_tree(4, {20.0_ohm, 6.0_nH, 0.5_pF});

  // Load mismatch: the flip-flop bank on the first sink quadrant is 25%
  // heavier — the classic source of skew that tuning must fix.
  const auto sinks = tree.leaves();
  tree.values(sinks.front()).capacitance *= 1.25;

  const eed::TreeModel model = eed::analyze(tree);

  util::Table table(
      {"sink", "zeta", "t50 Elmore [ps]", "t50 Wyatt [ps]", "t50 EED [ps]", "t50 sim [ps]"});
  SkewReport elmore_skew;
  SkewReport wyatt_skew;
  SkewReport eed_skew;
  SkewReport sim_skew;

  // One transient run gives all sink waveforms.
  sim::TransientOptions opts;
  opts.t_stop = 30.0_ns;
  opts.dt = 2.0_ps;
  const auto res = sim::simulate_tree(tree, sim::StepSource{1.0}, opts);

  for (const auto sink : sinks) {
    const eed::NodeModel& n = model.at(sink);
    const double d_elmore = eed::elmore_delay_50(n.sum_rc);
    const double d_wyatt = eed::wyatt_delay_50(n.sum_rc);
    const double d_eed = eed::delay_50(n);
    const double d_sim = sim::measure_rising(res.waveform(sink), 1.0).delay_50;
    elmore_skew.absorb(d_elmore);
    wyatt_skew.absorb(d_wyatt);
    eed_skew.absorb(d_eed);
    sim_skew.absorb(d_sim);
    table.add_row({tree.section(sink).name, util::Table::fmt(n.zeta, 3),
                   util::Table::fmt(d_elmore / 1.0_ps, 4),
                   util::Table::fmt(d_wyatt / 1.0_ps, 4),
                   util::Table::fmt(d_eed / 1.0_ps, 4),
                   util::Table::fmt(d_sim / 1.0_ps, 4)});
  }
  table.print(std::cout, "H-tree sink delays under a 25% load mismatch");

  util::Table skew({"model", "skew [ps]"});
  skew.add_row({"Elmore", util::Table::fmt(elmore_skew.skew() / 1.0_ps, 4)});
  skew.add_row({"Wyatt", util::Table::fmt(wyatt_skew.skew() / 1.0_ps, 4)});
  skew.add_row({"EED (this paper)", util::Table::fmt(eed_skew.skew() / 1.0_ps, 4)});
  skew.add_row({"simulator", util::Table::fmt(sim_skew.skew() / 1.0_ps, 4)});
  std::cout << "\n";
  skew.print(std::cout, "Clock skew by model");

  std::cout << "\nThe EED skew tracks the simulator; the RC-only models\n"
               "misjudge both the absolute delays and the skew because the\n"
               "inductive part of the path is invisible to them.\n";

  // Fix it: balance the skew by sizing the sink wires on the closed form,
  // then verify the repair with the simulator.
  opt::SkewBalanceOptions balance_opts;
  balance_opts.width_min = 0.1;  // the H-tree's leaf arms are short: allow deep narrowing
  const opt::SkewBalanceResult fix = opt::balance_skew(tree, balance_opts);
  const auto res_fixed = sim::simulate_tree(tree, sim::StepSource{1.0}, opts);
  SkewReport sim_fixed;
  for (const auto sink : sinks) {
    sim_fixed.absorb(sim::measure_rising(res_fixed.waveform(sink), 1.0).delay_50);
  }
  std::cout << "\nskew balancing (opt::balance_skew, closed-form objective):\n"
            << "  EED skew  " << util::Table::fmt(fix.skew_before / 1.0_ps, 4) << " -> "
            << util::Table::fmt(fix.skew_after / 1.0_ps, 4) << " ps\n"
            << "  simulated " << util::Table::fmt(sim_skew.skew() / 1.0_ps, 4) << " -> "
            << util::Table::fmt(sim_fixed.skew() / 1.0_ps, 4) << " ps\n"
            << "The repair was computed purely on the closed form and holds under\n"
               "simulation — the fidelity property that makes the paper's formulas\n"
               "usable inside clock-tree tuning loops.\n";
  return 0;
}
