/// \file netlist_timing_tool.cpp
/// A small command-line timing tool around the library: reads a tree
/// netlist (or SPICE-subset deck) from a file or stdin and prints the
/// closed-form timing report for every node — the "fast delay estimation
/// for tens of millions of gates" workflow the paper positions the Elmore
/// delay (and this generalization) for. Also runs the inductance
/// figures-of-merit screen [8] so the user knows whether the RC Elmore
/// numbers would have been good enough.
///
/// Usage:
///   netlist_timing_tool [--spice] [--csv] [--rise <seconds>] [file]
/// With no file, reads stdin. --spice parses R/L/C cards instead of the
/// tree netlist format; --csv emits machine-readable rows; --rise sets the
/// input edge rate used by the inductance screen (default 50 ps).

#include <fstream>
#include <iostream>
#include <string>

#include "relmore/analysis/report.hpp"
#include "relmore/circuit/netlist.hpp"
#include "relmore/eed/figures_of_merit.hpp"
#include "relmore/util/table.hpp"

int main(int argc, char** argv) {
  using namespace relmore;

  bool spice = false;
  bool csv = false;
  double rise = 50e-12;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spice") {
      spice = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--rise" && i + 1 < argc) {
      try {
        rise = circuit::parse_spice_value(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "error: bad --rise value: " << e.what() << "\n";
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: netlist_timing_tool [--spice] [--csv] [--rise <seconds>] [file]\n";
      return 0;
    } else {
      path = arg;
    }
  }

  circuit::RlcTree tree;
  try {
    if (!path.empty()) {
      std::ifstream f(path);
      if (!f) {
        std::cerr << "error: cannot open '" << path << "'\n";
        return 1;
      }
      tree = spice ? circuit::read_spice(f) : circuit::read_tree_netlist(f);
    } else {
      tree = spice ? circuit::read_spice(std::cin) : circuit::read_tree_netlist(std::cin);
    }
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  }
  if (tree.empty()) {
    std::cerr << "error: empty netlist\n";
    return 1;
  }

  const auto rows = analysis::tree_timing_report(tree);
  const util::Table table = analysis::timing_table(rows, 1e-12, "ps");
  if (csv) {
    table.print_csv(std::cout);
    return 0;
  }
  table.print(std::cout, "Equivalent Elmore Delay timing report (" +
                             std::to_string(tree.size()) + " sections)");

  const analysis::SkewSummary skew = analysis::sink_skew(tree);
  std::cout << "\nsink skew: " << util::Table::fmt(skew.skew() / 1e-12, 4) << " ps ("
            << tree.section(skew.slowest).name << " slowest)\n";

  try {
    const auto fom = eed::assess_tree(tree, rise);
    std::cout << "inductance screen [8] at " << rise / 1e-12
              << " ps edge: edge ratio = " << util::Table::fmt(fom.edge_ratio, 3)
              << ", damping ratio = " << util::Table::fmt(fom.damping_ratio, 3) << " -> "
              << (fom.inductance_matters ? "inductance MATTERS: use the RLC (EED) columns"
                                         : "RC Elmore would suffice for this net")
              << "\n";
  } catch (const std::exception&) {
    // Degenerate trees (no sinks etc.) simply skip the screen.
  }
  return 0;
}
