/// \file ablation_awe_order.cpp
/// Ablation: accuracy vs stability of moment-matching order q. The paper's
/// positioning (§II, §V-F): AWE with more moments is more accurate when it
/// works, but can produce unstable models; the second-order EED form is
/// always stable. This bench sweeps q over a set of trees and reports, per
/// order, how often the raw AWE model is unstable and the waveform error
/// after standard stabilization, with the EED row for comparison.

#include <iostream>
#include <vector>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  // Test set: the paper's trees plus random strict-RLC trees.
  std::vector<std::pair<std::string, circuit::RlcTree>> trees;
  trees.emplace_back("fig5", circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr));
  trees.emplace_back("fig8", circuit::make_fig8_tree(nullptr));
  trees.emplace_back("bal4", circuit::make_balanced_tree(4, 2, {20.0, 1.5e-9, 0.15e-12}));
  circuit::RandomTreeSpec spec;
  spec.min_sections = 8;
  spec.max_sections = 24;
  spec.inductance_lo = 0.2e-9;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    trees.emplace_back("rnd" + std::to_string(seed), circuit::make_random_tree(spec, seed));
  }

  util::Table table({"model", "unstable / nodes", "mean max|dv| [V]", "worst max|dv| [V]"});
  for (int q = 2; q <= 6; ++q) {
    int unstable = 0;
    int nodes = 0;
    double err_sum = 0.0;
    double err_worst = 0.0;
    int scored = 0;
    for (const auto& [name, tree] : trees) {
      const auto models = moments::awe_models_for_tree(tree, q);
      const auto sinks = tree.leaves();
      for (const auto sink : sinks) {
        ++nodes;
        const auto& raw = models[static_cast<std::size_t>(sink)];
        if (!raw.stable()) ++unstable;
        moments::PoleResidueModel usable;
        try {
          usable = moments::stabilized(raw);
        } catch (const std::invalid_argument&) {
          continue;  // nothing stable at all: cannot score
        }
        const auto tm = eed::analyze(tree);
        const double horizon = analysis::suggest_horizon(tm.at(sink));
        const sim::Waveform ref =
            analysis::reference_waveform(tree, sink, sim::StepSource{1.0}, horizon, 801);
        const sim::Waveform awe_w = usable.step_waveform(ref.times(), 1.0);
        const double e = ref.max_abs_difference(awe_w);
        err_sum += e;
        err_worst = std::max(err_worst, e);
        ++scored;
      }
    }
    table.add_row({"AWE q=" + std::to_string(q),
                   std::to_string(unstable) + " / " + std::to_string(nodes),
                   util::Table::fmt(scored ? err_sum / scored : 0.0, 4),
                   util::Table::fmt(err_worst, 4)});
  }
  // EED row on the same sinks.
  {
    double err_sum = 0.0;
    double err_worst = 0.0;
    int scored = 0;
    for (const auto& [name, tree] : trees) {
      const auto tm = eed::analyze(tree);
      for (const auto sink : tree.leaves()) {
        const double horizon = analysis::suggest_horizon(tm.at(sink));
        const sim::Waveform ref =
            analysis::reference_waveform(tree, sink, sim::StepSource{1.0}, horizon, 801);
        const sim::Waveform w = eed::step_waveform(tm.at(sink), ref.times(), 1.0);
        const double e = ref.max_abs_difference(w);
        err_sum += e;
        err_worst = std::max(err_worst, e);
        ++scored;
      }
    }
    table.add_row({"EED (this paper)", "0 / always stable",
                   util::Table::fmt(err_sum / scored, 4), util::Table::fmt(err_worst, 4)});
  }
  table.print(std::cout, "Ablation — AWE order vs stability vs accuracy (tree sinks)");
  std::cout << "\nShape check (paper §II): higher-order AWE can beat the 2-pole model\n"
               "on accuracy but is not guaranteed stable; the EED model trades peak\n"
               "accuracy for guaranteed stability and closed-form metrics.\n";
  return 0;
}
