/// \file accuracy_table.cpp
/// Aggregate accuracy table backing the paper's §V headline numbers:
/// "< 4% delay error for the balanced tree" and "up to ~20% for highly
/// asymmetric trees", with the Wyatt RC baseline alongside and the
/// Kahng–Muddu two-pole model [30] as the prior-art comparison.

#include <algorithm>
#include <iostream>
#include <vector>

#include "relmore/relmore.hpp"

namespace {

using namespace relmore;

struct Row {
  std::string label;
  double eed_err;
  double wyatt_err;
  double two_pole_err;
};

Row score(const std::string& label, circuit::RlcTree tree, circuit::SectionId node,
          double target_zeta) {
  analysis::scale_inductance_for_zeta(tree, node, target_zeta);
  const analysis::StepComparison c = analysis::compare_step_response(tree, node);

  // Kahng-Muddu two-pole from exact moments, measured the same way.
  const auto m = moments::first_two_moments(tree, node);
  const auto tp = moments::two_pole_model(m.m1, m.m2);
  const eed::TreeModel model = eed::analyze(tree);
  const double horizon = analysis::suggest_horizon(model.at(node));
  const sim::Waveform ref =
      analysis::reference_waveform(tree, node, sim::StepSource{1.0}, horizon, 2001);
  const sim::Waveform tpw = tp.step_waveform(ref.times(), 1.0);
  const double t50_tp = tpw.first_rise_crossing(0.5);
  const double tp_err = 100.0 * std::abs(t50_tp - c.ref_delay_50) / c.ref_delay_50;

  return {label, c.delay_err_pct, c.wyatt_err_pct, tp_err};
}

}  // namespace

int main() {
  std::vector<Row> rows;
  for (const double z : {0.5, 1.0, 2.0}) {
    circuit::RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
    rows.push_back(score("balanced fig5 z=" + util::Table::fmt(z, 2), t, 6, z));
  }
  for (const double asym : {2.0, 4.0, 8.0}) {
    circuit::RlcTree t = circuit::make_asymmetric_tree(3, asym, {25.0, 2e-9, 0.2e-12});
    rows.push_back(
        score("asym=" + util::Table::fmt(asym, 2), t, t.leaves().back(), 0.9));
  }
  {
    circuit::RlcTree t = circuit::make_balanced_tree(5, 2, {25.0, 2e-9, 0.2e-12});
    rows.push_back(score("deep binary (5 lvl)", t, t.leaves().front(), 0.8));
  }

  util::Table table({"circuit", "EED err %", "Wyatt err %", "two-pole[30] err %"});
  double max_balanced = 0.0;
  double max_asym = 0.0;
  for (const Row& r : rows) {
    table.add_row({r.label, util::Table::fmt(r.eed_err, 4), util::Table::fmt(r.wyatt_err, 4),
                   util::Table::fmt(r.two_pole_err, 4)});
    if (r.label.rfind("balanced", 0) == 0) max_balanced = std::max(max_balanced, r.eed_err);
    if (r.label.rfind("asym", 0) == 0) max_asym = std::max(max_asym, r.eed_err);
  }
  table.print(std::cout, "Aggregate 50% delay errors vs reference simulator");
  std::cout << "\nheadline: max EED error balanced fig5 = " << util::Table::fmt(max_balanced, 3)
            << "% (paper: <4%), max over asym sweep = " << util::Table::fmt(max_asym, 3)
            << "% (paper: up to ~20%)\n";
  return 0;
}
