/// \file fig13_branching.cpp
/// Reproduces paper Fig. 13: response at the 16 sinks of a balanced tree
/// built two ways — (a) binary branching, 5 levels; (b) branching factor
/// 16, 2 levels. The balanced 16-ary tree collapses to a 2-section ladder
/// (more pole-zero cancellation), so the 2-pole model fits it better.

#include <iostream>

#include "relmore/relmore.hpp"

namespace {

void run_case(const char* label, int levels, int branching) {
  using namespace relmore;
  circuit::RlcTree tree =
      circuit::make_balanced_tree(levels, branching, {25.0, 2e-9, 0.2e-12});
  const circuit::SectionId sink = tree.leaves().front();
  analysis::scale_inductance_for_zeta(tree, sink, 0.8);
  const analysis::StepComparison c = analysis::compare_step_response(tree, sink);
  util::Table table({"case", "sections", "sinks", "zeta", "t50_sim [ps]", "t50_EED [ps]",
                     "delay err %", "max|dv| [V]"});
  table.add_row({label, std::to_string(tree.size()), std::to_string(tree.leaves().size()),
                 util::Table::fmt(c.zeta, 4), util::Table::fmt(c.ref_delay_50 / 1e-12, 5),
                 util::Table::fmt(c.eed_delay_50 / 1e-12, 5),
                 util::Table::fmt(c.delay_err_pct, 4),
                 util::Table::fmt(c.waveform_max_err, 4)});
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 13 — 16 sinks, branching factor 2 vs 16 (step input)\n\n";
  run_case("(a) binary, 5 levels", 5, 2);
  run_case("(b) 16-ary, 2 levels", 2, 16);
  std::cout << "Shape check (paper): the 16-ary tree (equivalent 2-section ladder)\n"
               "shows a smaller waveform error than the binary tree (5-section\n"
               "ladder) — higher branching factor, better 2nd-order fit.\n";
  return 0;
}
