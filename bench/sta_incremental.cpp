/// \file sta_incremental.cpp
/// Full-vs-incremental re-timing latency on the chip-scale corpus: the
/// what-if loop the edit API exists for. For each corpus size the bench
/// measures
///
///   retime full        — one cold TimingGraph::analyze_checked pass (no
///                        corpus cache): what a non-incremental client
///                        pays per what-if query
///   retime edit f=F%   — one Timer::edit() transaction editing F% of the
///                        nets (wire value edits, the common what-if) and
///                        committing: engine-journal apply + cache restamp
///                        + dirty-cone update_checked, in place
///
/// Rows reuse the shared BenchRow schema with n = nets in the corpus,
/// samples = edits per commit, ns_per_section = ns per net per pass, and
/// speedup = full-pass ns / incremental-commit ns — the number the
/// committed BENCH_sta_incremental.json baseline gates in CI. The edit
/// sequences are SplitMix64-deterministic, and every cell ends with a
/// bitwise WNS/TNS check of the in-place result against a from-scratch
/// analysis of the edited design (the exhaustive per-point check lives in
/// tests/sta/retime_property_test.cpp).
/// `--json <path>` writes the rows; `--quick` shrinks the grid for CI.

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "relmore/relmore.hpp"
#include "relmore/timer.hpp"

#include "json_out.hpp"

namespace {

using namespace relmore;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Measured {
  double ns_per_net = 0.0;
  double checksum = 0.0;
};

/// Repeats `body` (one full pass / one commit over an `nets`-net corpus)
/// until `min_seconds` elapsed, warm-up pass excluded.
template <typename Body>
Measured time_pass(std::size_t nets, double min_seconds, const Body& body) {
  Measured m;
  m.checksum += body();  // warm-up
  std::size_t reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    m.checksum += body();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  m.ns_per_net = elapsed * 1e9 / static_cast<double>(reps * nets);
  return m;
}

/// SplitMix64: deterministic edit sequences across platforms and runs.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Records `edits` deterministic wire value edits on a fresh transaction
/// and commits it. Returns the in-place WNS, or NaN when the commit was
/// rejected or fell back to a full re-analysis (both are bench failures).
double commit_random_edits(Timer& timer, Rng& rng, std::size_t edits) {
  const sta::Design& design = *timer.design();
  Timer::Edit edit = timer.edit();
  for (std::size_t e = 0; e < edits; ++e) {
    const sta::Net& net = design.nets[rng.below(design.nets.size())];
    circuit::SectionValues wire;
    wire.resistance = 10.0 + 120.0 * rng.unit();
    wire.inductance = rng.below(2) == 0 ? 0.0 : 1e-12 * rng.unit();
    wire.capacitance = 4e-15 + 50e-15 * rng.unit();
    if (!edit.set_net_section_values(net.name, "s0", wire).is_ok()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  const util::Result<Timer::EditOutcome> out = edit.commit();
  if (!out.is_ok() || !out.value().incremental) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return timer.result()->summary.wns;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const double min_seconds = quick ? 0.02 : 0.3;

  // Full grid ⊇ quick grid, so a --quick CI run's keys all exist in the
  // committed baseline (bench_regress compares the intersection).
  std::vector<std::size_t> sizes = {200};
  if (!quick) sizes.push_back(2000);  // the acceptance corpus
  const double fractions[] = {0.001, 0.01, 0.05};

  std::vector<benchio::BenchRow> rows;
  util::Table table({"config", "nets", "edits", "us/pass", "ns/net", "speedup"});
  double checksum = 0.0;
  bool checks_ok = true;

  for (const std::size_t nets : sizes) {
    sta::SyntheticSpec spec;
    spec.nets = nets;
    spec.seed = 1;
    spec.topo_classes = 8;
    spec.chain_depth = 4;
    util::Result<sta::Design> made = sta::make_synthetic_design_checked(spec);
    if (!made.is_ok()) {
      std::cerr << "sta_incremental: " << made.status().to_string() << "\n";
      return 1;
    }

    Timer timer;
    if (util::Status s = timer.load(std::move(made).value()); !s.is_ok()) {
      std::cerr << "sta_incremental: " << s.to_string() << "\n";
      return 1;
    }
    if (const util::Result<sta::TimingSummary> warm = timer.analyze(); !warm.is_ok()) {
      std::cerr << "sta_incremental: " << warm.status().to_string() << "\n";
      return 1;
    }

    // The graph is structure-only; value edits never invalidate it, and the
    // Timer keeps its Design at a stable address. Default options with no
    // corpus cache = the cold full pass a non-incremental client runs.
    const util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(*timer.design());
    if (!graph.is_ok()) {
      std::cerr << "sta_incremental: " << graph.status().to_string() << "\n";
      return 1;
    }
    const sta::AnalyzeOptions cold{};

    const auto add_row = [&](const std::string& name, std::size_t edits, const Measured& m,
                             double full_ns) {
      checksum += m.checksum;
      const double speedup = full_ns / m.ns_per_net;
      table.add_row({name, std::to_string(nets), std::to_string(edits),
                     util::Table::fmt(m.ns_per_net * static_cast<double>(nets) * 1e-3, 2),
                     util::Table::fmt(m.ns_per_net, 3), util::Table::fmt(speedup, 2)});
      rows.push_back({name, nets, edits == 0 ? 1 : edits, m.ns_per_net, speedup});
    };

    const Measured full = time_pass(nets, min_seconds, [&] {
      const util::Result<sta::TimingResult> r = graph.value().analyze_checked(cold);
      return r.is_ok() ? r.value().summary.wns : std::numeric_limits<double>::quiet_NaN();
    });
    add_row("retime full", 0, full, full.ns_per_net);

    Rng rng{0x1C0DE5EEDULL ^ nets};
    for (const double fraction : fractions) {
      const std::size_t edits = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(fraction * static_cast<double>(nets))));
      const Measured inc = time_pass(nets, min_seconds,
                                     [&] { return commit_random_edits(timer, rng, edits); });
      std::string label = "retime edit f=" + util::Table::fmt(fraction * 100.0, 1) + "%";
      add_row(label, edits, inc, full.ns_per_net);

      // Bitwise self-check: the in-place result after one more committed
      // edit must match a from-scratch analysis of the edited design.
      const double in_place = commit_random_edits(timer, rng, edits);
      const util::Result<sta::TimingResult> scratch = graph.value().analyze_checked(cold);
      if (std::isnan(in_place) || !scratch.is_ok() ||
          bits(in_place) != bits(scratch.value().summary.wns) ||
          bits(timer.result()->summary.tns) != bits(scratch.value().summary.tns)) {
        std::cerr << "sta_incremental: in-place result drifted from full analysis at n=" << nets
                  << " " << label << "\n";
        checks_ok = false;
      }
    }
  }

  table.print(std::cout, "incremental re-timing vs full analysis");
  std::cout << "\nchecksum " << checksum << "\n";
  if (!checks_ok || std::isnan(checksum)) {
    std::cerr << "sta_incremental: bitwise/commit self-check failed\n";
    return 1;
  }

  if (!json_path.empty()) {
    if (!benchio::write_bench_json(json_path, rows)) {
      std::cerr << "sta_incremental: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
