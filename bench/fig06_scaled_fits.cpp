/// \file fig06_scaled_fits.cpp
/// Reproduces paper Fig. 6: the time-scaled 50% delay t'_pd and rise time
/// t'_r versus zeta, with the fitted closed forms (eqs. 33-34) overlaid.
/// Also reruns the curve fit from scratch (DESIGN.md §4) and prints the
/// recovered coefficients next to the paper's.

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  util::Table series({"zeta", "t50_exact", "t50_fit(eq33)", "t50_fit_err%", "rise_exact",
                      "rise_fit(eq34-form)", "rise_fit_err%"});
  for (double zeta = 0.0; zeta <= 3.0001; zeta += 0.1) {
    const double d_exact = eed::scaled_delay_exact(zeta);
    const double d_fit = eed::scaled_delay_fitted(zeta);
    const double r_exact = eed::scaled_rise_exact(zeta);
    const double r_fit = eed::scaled_rise_fitted(zeta);
    series.add_row_numeric({zeta, d_exact, d_fit, 100.0 * (d_fit - d_exact) / d_exact,
                            r_exact, r_fit, 100.0 * (r_fit - r_exact) / r_exact},
                           5);
  }
  series.print(std::cout, "Fig. 6 — time-scaled 50% delay and rise time vs zeta");
  std::cout << "\nCSV:\n";
  series.print_csv(std::cout);

  // Re-derive the fits (the paper's curve-fitting step).
  const eed::ScaledFitReport d = eed::fit_scaled_delay();
  const eed::ScaledFitReport r = eed::fit_scaled_rise();
  const eed::FitCoefficients paper = eed::delay_fit_paper();
  util::Table fits({"metric", "a", "b", "c", "rms_resid", "max_resid"});
  fits.add_row({"t50 paper eq(33)", util::Table::fmt(paper.a, 5), util::Table::fmt(paper.b, 5),
                util::Table::fmt(paper.c, 5), "-", "-"});
  fits.add_row_numeric({0, d.coeffs.a, d.coeffs.b, d.coeffs.c, d.rms_residual,
                        d.max_abs_residual},
                       5);
  fits.add_row_numeric({1, r.coeffs.a, r.coeffs.b, r.coeffs.c, r.rms_residual,
                        r.max_abs_residual},
                       5);
  std::cout << "\n(rows: 0 = t50 refit, 1 = rise refit)\n";
  fits.print(std::cout, "Curve-fit coefficients a*exp(-zeta/b) + c*zeta");
  return 0;
}
