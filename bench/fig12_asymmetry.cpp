/// \file fig12_asymmetry.cpp
/// Reproduces paper Fig. 12: accuracy versus the tree-asymmetry parameter
/// `asym` (left branch impedance = asym x right branch impedance). The
/// paper reports errors growing to ~20% for highly asymmetric trees —
/// the same qualitative degradation the Elmore delay shows on RC trees.

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  util::Table table({"asym", "zeta@sink", "t50_sim [ps]", "t50_EED [ps]", "delay err %",
                     "rise err %", "max|dv| [V]"});
  for (const double asym : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    circuit::RlcTree tree = circuit::make_asymmetric_tree(3, asym, {25.0, 2e-9, 0.2e-12});
    // Observe the all-right sink (lowest-impedance path), like the paper's
    // node 7; retarget zeta to a fixed 0.9 so only asymmetry varies.
    const circuit::SectionId sink = tree.leaves().back();
    analysis::scale_inductance_for_zeta(tree, sink, 0.9);
    const analysis::StepComparison c = analysis::compare_step_response(tree, sink);
    table.add_row_numeric({asym, c.zeta, c.ref_delay_50 / 1e-12, c.eed_delay_50 / 1e-12,
                           c.delay_err_pct, c.rise_err_pct, c.waveform_max_err},
                          5);
  }
  table.print(std::cout, "Fig. 12 — error vs tree asymmetry (asym sweep)");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nShape check (paper): error grows with asym; balanced (asym=1) is a\n"
               "few percent, highly asymmetric trees reach the ~20% ballpark.\n";
  return 0;
}
