/// \file ablation_fidelity.cpp
/// Fidelity ablation: the paper's §I argument is that a delay model earns
/// its place in synthesis loops by *ranking* candidate designs like the
/// simulator does ([17], [25]). This bench enumerates buffer-insertion
/// candidates on inductive routes and reports the Spearman rank
/// correlation of each model's ranking against the simulator's, plus the
/// simulated cost of each model's chosen optimum.

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;
  using opt::DelayModel;

  util::Table table({"route [mm]", "fidelity EED", "fidelity Wyatt RC", "sim cost of EED pick [ps]",
                     "sim cost of RC pick [ps]", "true optimum [ps]"});

  for (const double mm : {2.0, 4.0, 8.0}) {
    opt::BufferInsertionProblem p;
    p.wire = circuit::global_wire_spec();
    p.wire.length_m = mm * 1e-3;
    p.slots = 4;
    p.buffer = opt::unit_inverter().sized(24.0);
    p.source_resistance = 35.0;
    p.sink_capacitance = 50e-15;
    p.segments_per_span = 3;

    const double fid_eed = opt::ranking_fidelity(p, DelayModel::kEquivalentElmore);
    const double fid_rc = opt::ranking_fidelity(p, DelayModel::kWyattRc);

    const opt::BufferSolution pick_eed =
        opt::optimize_buffers_exhaustive(p, DelayModel::kEquivalentElmore);
    const opt::BufferSolution pick_rc = opt::optimize_buffers_exhaustive(p, DelayModel::kWyattRc);
    const double cost_eed = opt::evaluate_solution_simulated(p, pick_eed.buffered);
    const double cost_rc = opt::evaluate_solution_simulated(p, pick_rc.buffered);

    // True optimum by simulating every candidate.
    double best = 1e300;
    for (unsigned mask = 0; mask < (1u << p.slots); ++mask) {
      std::vector<bool> cand(static_cast<std::size_t>(p.slots));
      for (int i = 0; i < p.slots; ++i) cand[static_cast<std::size_t>(i)] = (mask >> i) & 1u;
      best = std::min(best, opt::evaluate_solution_simulated(p, cand));
    }

    table.add_row_numeric({mm, fid_eed, fid_rc, cost_eed / 1e-12, cost_rc / 1e-12,
                           best / 1e-12},
                          5);
  }
  table.print(std::cout, "Ablation — ranking fidelity on buffer insertion (global wires)");
  std::cout << "\nShape check (paper §I): both closed forms keep high rank fidelity\n"
               "(>= ~0.84 Spearman) and land on the simulated optimum for every\n"
               "route — the fidelity property that justifies using fast closed\n"
               "forms inside synthesis loops. On the longest, most inductive route\n"
               "neither ranking is perfect: stage delays there are wavefront-\n"
               "dominated, which no 1- or 2-pole model fully orders (cf. §V-F).\n";
  return 0;
}
