/// \file ablation_variation.cpp
/// Statistical-timing ablation: because the EED delay is a cheap closed
/// form, Monte-Carlo process variation is essentially free (the complexity
/// bench shows ~10^4x speedup over transient analysis), and its gradient
/// gives a first-order sigma without sampling at all. This bench sweeps
/// the variation level and compares the linear estimate against
/// Monte-Carlo, plus the induced clock-skew spread on an H-tree.

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  circuit::SectionId out = circuit::kInput;
  const circuit::RlcTree tree = circuit::make_fig8_tree(&out);

  util::Table table({"sigma RLC [%]", "MC mean [ps]", "MC sigma [ps]", "linear sigma [ps]",
                     "MC q95 [ps]", "sigma ratio lin/MC"});
  for (const double sigma : {0.02, 0.05, 0.10, 0.20}) {
    analysis::VariationSpec spec;
    spec.sigma_resistance = sigma;
    spec.sigma_capacitance = sigma;
    spec.sigma_inductance = 0.5 * sigma;
    const auto mc =
        analysis::monte_carlo_delay(tree, out, analysis::MonteCarloOptions{spec, 5000, 42, {}});
    const double lin = analysis::delay_stddev_linear(tree, out, spec);
    table.add_row_numeric({100.0 * sigma, mc.mean / 1e-12, mc.stddev / 1e-12, lin / 1e-12,
                           mc.q95 / 1e-12, lin / mc.stddev},
                          5);
  }
  table.print(std::cout,
              "Ablation — process variation at Fig. 8 output O (5000 MC samples each)");

  // Clock-skew spread: a balanced H-tree is skew-free nominally; variation
  // breaks the symmetry. Report the sampled skew quantiles.
  circuit::RlcTree h = circuit::make_h_tree(4, {40.0, 4e-9, 0.4e-12});
  analysis::VariationSpec spec;
  const auto sinks = h.leaves();
  circuit::Rng rng(7);
  double worst_skew = 0.0;
  double sum_skew = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    circuit::RlcTree sample = h;
    for (std::size_t k = 0; k < h.size(); ++k) {
      auto& v = sample.values(static_cast<circuit::SectionId>(k));
      v.resistance *= 1.0 + spec.sigma_resistance * (2.0 * rng.uniform() - 1.0);
      v.inductance *= 1.0 + spec.sigma_inductance * (2.0 * rng.uniform() - 1.0);
      v.capacitance *= 1.0 + spec.sigma_capacitance * (2.0 * rng.uniform() - 1.0);
    }
    const analysis::SkewSummary s = analysis::sink_skew(sample);
    worst_skew = std::max(worst_skew, s.skew());
    sum_skew += s.skew();
  }
  std::cout << "\nH-tree (" << sinks.size() << " sinks) under +-10% R/C, +-5% L variation: "
            << "mean skew " << util::Table::fmt(sum_skew / trials / 1e-12, 4)
            << " ps, worst " << util::Table::fmt(worst_skew / 1e-12, 4)
            << " ps (nominal 0).\n";
  std::cout << "\nShape check: the linear (gradient) sigma tracks Monte-Carlo within\n"
               "~1% across the whole sweep — the delay is nearly linear in the\n"
               "element values at these variation levels, so the closed-form gradient\n"
               "replaces thousands of samples for sign-off-style sigma estimates.\n";
  return 0;
}
