/// \file ablation_segmentation.cpp
/// Segmentation-convergence ablation: how many lumped sections does a
/// distributed wire need before the EED metrics and the simulated
/// reference stop moving? Justifies the defaults in
/// circuit::suggested_segments() and the section counts used by the
/// figure benches.

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  const circuit::WireSpec wire = circuit::global_wire_spec();  // 1 mm global wire
  util::Table table({"segments", "zeta", "t50 EED [ps]", "t50 sim [ps]", "overshoot EED %",
                     "overshoot sim %"});
  for (const int n : {1, 2, 4, 8, 16, 32, 64}) {
    circuit::RlcTree tree;
    const circuit::SectionId drv =
        tree.add_section(circuit::kInput, {25.0, 0.0, 0.0}, "drv");
    const circuit::SectionId sink = circuit::append_wire(tree, drv, wire, n);
    const eed::TreeModel tm = eed::analyze(tree);
    const eed::NodeModel& nm = tm.at(sink);
    const analysis::StepComparison c = analysis::compare_step_response(tree, sink);
    table.add_row_numeric({static_cast<double>(n), nm.zeta, c.eed_delay_50 / 1e-12,
                           c.ref_delay_50 / 1e-12,
                           nm.underdamped() ? eed::overshoot_pct(nm, 1) : 0.0,
                           c.ref_overshoot_pct},
                          5);
  }
  table.print(std::cout,
              "Ablation — lumped-section convergence for a 1 mm global wire (25 ohm driver)");
  std::cout << "\nrecommended count from suggested_segments(wire, 50 ps edge): "
            << circuit::suggested_segments(wire, 50e-12) << "\n";
  std::cout << "\nShape check: EED metrics converge by ~8 segments (the model only\n"
               "sees the two path sums, which converge fast); the simulated overshoot\n"
               "needs more segments to settle because it resolves the wavefront.\n";
  return 0;
}
