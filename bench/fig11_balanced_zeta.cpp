/// \file fig11_balanced_zeta.cpp
/// Reproduces paper Fig. 11: step response at node 7 of the balanced
/// Fig. 5 tree for several values of the equivalent damping factor zeta,
/// comparing the closed form (eq. 31) and the Elmore (Wyatt) solution to
/// the reference simulator. Prints waveform samples per zeta plus the
/// headline per-zeta delay errors (< 4% claimed for this balanced tree).

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;
  const auto node7 = static_cast<circuit::SectionId>(6);

  util::Table summary({"zeta", "t50_sim [ps]", "t50_EED [ps]", "err %", "t50_Wyatt [ps]",
                       "Wyatt err %", "overshoot_sim %", "overshoot_EED %", "max|dv| [V]"});

  for (const double target : {0.4, 0.6, 0.8, 1.0, 1.5, 2.5}) {
    circuit::RlcTree tree = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
    analysis::scale_inductance_for_zeta(tree, node7, target);
    const analysis::StepComparison c = analysis::compare_step_response(tree, node7);
    summary.add_row_numeric({c.zeta, c.ref_delay_50 / 1e-12, c.eed_delay_50 / 1e-12,
                             c.delay_err_pct, c.wyatt_delay_50 / 1e-12, c.wyatt_err_pct,
                             c.ref_overshoot_pct, c.eed_overshoot_pct, c.waveform_max_err},
                            5);

    // Waveform series for one representative underdamped case.
    if (target == 0.6) {
      const eed::TreeModel model = eed::analyze(tree);
      const eed::NodeModel& nm = model.at(node7);
      const double horizon = analysis::suggest_horizon(nm);
      const auto grid = sim::uniform_grid(horizon, 41);
      const sim::Waveform ref =
          analysis::reference_waveform(tree, node7, sim::StepSource{1.0}, horizon, 2001);
      util::Table wave({"t [ps]", "v_sim", "v_EED(eq31)", "v_Wyatt"});
      for (const double t : grid) {
        wave.add_row_numeric({t / 1e-12, ref.value_at(t), eed::step_response(nm, t, 1.0),
                              eed::wyatt_step_response(nm.sum_rc, t, 1.0)},
                             5);
      }
      wave.print(std::cout, "Fig. 11 waveform (zeta = 0.6 case)");
      std::cout << "\n";
    }
  }
  summary.print(std::cout, "Fig. 11 — balanced Fig. 5 tree, node 7, zeta sweep");
  std::cout << "\nCSV:\n";
  summary.print_csv(std::cout);
  std::cout << "\nShape check (paper): EED delay error stays below ~4% across all\n"
               "damping conditions while the Wyatt RC model degrades badly as\n"
               "zeta drops (inductance grows); Wyatt cannot predict overshoot.\n";
  return 0;
}
