#pragma once

/// \file json_out.hpp
/// Machine-readable bench output. Perf benches accept `--json <path>` and
/// write an array of rows {bench, n, samples, ns_per_section, speedup} so
/// the repo's perf trajectory can be recorded (BENCH_*.json files at the
/// repo root) and diffed across commits.

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace relmore::benchio {

struct BenchRow {
  std::string bench;            ///< series label, e.g. "batched_kernel_w8"
  std::size_t n = 0;            ///< sections per tree
  std::size_t samples = 0;      ///< value samples per topology (1 = scalar)
  double ns_per_section = 0.0;  ///< ns per section·sample processed
  double speedup = 0.0;         ///< vs the row's scalar baseline
};

/// Returns the path following `--json`, or "" when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

/// Writes `rows` as a JSON array; returns false when the file can't be
/// opened.
inline bool write_bench_json(const std::string& path, const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(6);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"n\": " << r.n
        << ", \"samples\": " << r.samples << ", \"ns_per_section\": " << r.ns_per_section
        << ", \"speedup\": " << r.speedup << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace relmore::benchio
