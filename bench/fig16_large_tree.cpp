/// \file fig16_large_tree.cpp
/// Reproduces paper Fig. 16: on a large RLC tree the second-order model
/// captures the macro features (delay, rise, primary overshoot) while the
/// true response carries higher-frequency second-order oscillations the
/// 2-pole model cannot represent. We quantify both: timing errors stay
/// small, the waveform shows extra zero crossings of (sim - model).

#include <cmath>
#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  // 8-level binary balanced tree: 255 sections, 128 sinks.
  circuit::RlcTree tree = circuit::make_balanced_tree(8, 2, {8.0, 1.2e-9, 0.06e-12});
  const circuit::SectionId sink = tree.leaves().front();
  analysis::scale_inductance_for_zeta(tree, sink, 0.55);

  const eed::TreeModel model = eed::analyze(tree);
  const eed::NodeModel& nm = model.at(sink);
  const double horizon = analysis::suggest_horizon(nm);

  const sim::Waveform ref =
      analysis::reference_waveform(tree, sink, sim::StepSource{1.0}, horizon, 4001);
  const sim::Waveform eed_w = eed::step_waveform(nm, ref.times(), 1.0);

  const auto m_ref = sim::measure_rising(ref, 1.0);

  util::Table table({"quantity", "simulator", "EED closed form", "err %"});
  auto row = [&](const char* q, double sim_v, double eed_v) {
    table.add_row({q, util::Table::fmt(sim_v, 5), util::Table::fmt(eed_v, 5),
                   util::Table::fmt(100.0 * std::abs(eed_v - sim_v) /
                                        std::max(std::abs(sim_v), 1e-300),
                                    3)});
  };
  row("t50 [ps]", m_ref.delay_50 / 1e-12, eed::delay_50(nm) / 1e-12);
  row("rise 10-90 [ps]", m_ref.rise_10_90 / 1e-12, eed::rise_time(nm) / 1e-12);
  row("overshoot [%]", m_ref.overshoot_pct, eed::overshoot_pct(nm, 1));
  row("peak time [ps]", m_ref.peak_time / 1e-12, eed::overshoot_time(nm, 1) / 1e-12);
  table.print(std::cout,
              "Fig. 16 — large tree (255 sections): macro features vs simulator");

  // Count sign changes of the residual: second-order (high-frequency)
  // oscillations around the 2-pole response.
  int sign_changes = 0;
  double prev = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = ref.values()[i] - eed_w.values()[i];
    if (prev != 0.0 && d != 0.0 && ((prev > 0) != (d > 0))) ++sign_changes;
    if (d != 0.0) prev = d;
  }
  std::cout << "\nresidual (sim - model) sign changes over the horizon: " << sign_changes
            << "\nmax |residual|: " << ref.max_abs_difference(eed_w) << " V\n";
  std::cout << "\nShape check (paper): the model tracks the primary (low-frequency)\n"
               "response — small timing errors — while the residual oscillates\n"
               "many times: those are the second-order harmonics a 2-pole model\n"
               "cannot carry (use AWE with more moments when they matter).\n";
  return 0;
}
