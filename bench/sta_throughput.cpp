/// \file sta_throughput.cpp
/// Chip-scale static timing throughput: a synthetic corpus (>= 1000 nets
/// in the measured configuration) loaded through the corpus reader and
/// timed end to end through relmore::Timer / the TimingGraph flow.
///
/// Phases and what each one attributes:
///   corpus load      — read_design_checked on the generated text: parse,
///                      resolve, fold pin caps, snapshot, levelize
///   timing scalar    — full analyze (corpus moments + propagation),
///                      threads=1, batching off: the per-net baseline
///   timing t=N w=W   — the deployed configuration: BatchAnalyzer pool +
///                      AoSoA lanes over the same-topology net groups
///
/// The unit is one *net* (a whole stage: wire moments + gate lookup +
/// propagation share), so the headline number is nets/second. Rows reuse
/// the shared BenchRow schema with n = nets in the design and
/// ns_per_section = ns per net; the checked-in baseline lives in
/// BENCH_sta.json. Results are bitwise-identical across every measured
/// configuration (asserted here, not just in the unit tests).
/// `--json <path>` writes the rows; `--quick` shrinks the corpus for CI.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "relmore/relmore.hpp"

#include "json_out.hpp"

namespace {

using namespace relmore;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Measured {
  double ns_per_net = 0.0;
  double checksum = 0.0;
};

/// Repeats `body` (one full pass over `nets` nets) until `min_seconds`
/// elapsed, warm-up pass excluded.
template <typename Body>
Measured time_pass(std::size_t nets, double min_seconds, const Body& body) {
  Measured m;
  m.checksum += body();  // warm-up
  std::size_t reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    m.checksum += body();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  m.ns_per_net = elapsed * 1e9 / static_cast<double>(reps * nets);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const double min_seconds = quick ? 0.02 : 0.3;

  sta::SyntheticSpec spec;
  spec.nets = quick ? 200 : 2000;  // measured configuration: >= 1000 nets
  spec.seed = 1;
  spec.topo_classes = 8;
  spec.chain_depth = 4;
  const std::string text = sta::make_synthetic_design_text(spec);

  std::istringstream first(text);
  util::Result<sta::Design> parsed = sta::read_design_checked(first);
  if (!parsed.is_ok()) {
    std::cerr << "sta_throughput: synthetic design rejected: "
              << parsed.status().to_string() << "\n";
    return 1;
  }
  const sta::Design design = std::move(parsed).value();
  const std::size_t nets = design.nets.size();

  std::vector<benchio::BenchRow> rows;
  util::Table table({"config", "nets", "endpoints", "ns/net", "nets/sec", "speedup"});
  double checksum = 0.0;

  const auto add_row = [&](const std::string& name, const Measured& m, double baseline_ns) {
    checksum += m.checksum;
    const double speedup = baseline_ns / m.ns_per_net;
    table.add_row({name, std::to_string(nets), std::to_string(design.endpoint_count()),
                   util::Table::fmt(m.ns_per_net, 3),
                   util::Table::fmt(1e9 / m.ns_per_net, 4), util::Table::fmt(speedup, 2)});
    rows.push_back({name, nets, 1, m.ns_per_net, speedup});
  };

  // --- Phase 1: corpus load (parse -> resolve -> snapshot -> levelize) ----
  const Measured load = time_pass(nets, min_seconds, [&] {
    std::istringstream is(text);
    const util::Result<sta::Design> d = sta::read_design_checked(is);
    return d.is_ok() ? d.value().nets.front().total_cap : -1.0;
  });
  add_row("corpus load", load, load.ns_per_net);

  // --- Phase 2: full timing analysis under each execution config ----------
  const util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
  if (!graph.is_ok()) {
    std::cerr << "sta_throughput: " << graph.status().to_string() << "\n";
    return 1;
  }
  struct Config {
    std::string name;
    sta::AnalyzeOptions options;
  };
  std::vector<Config> configs;
  {
    Config scalar{"timing scalar t=1", {}};
    scalar.options.threads = 1;
    scalar.options.lane_width = 1;
    scalar.options.min_group = ~std::size_t{0};  // batching off
    configs.push_back(scalar);
    Config lanes4{"timing t=0 w=4", {}};
    lanes4.options.lane_width = 4;
    configs.push_back(lanes4);
    Config lanes8{"timing t=0 w=8", {}};
    lanes8.options.lane_width = 8;
    configs.push_back(lanes8);
  }

  double scalar_ns = 0.0;
  double reference_wns = 0.0;
  bool have_reference = false;
  for (const Config& config : configs) {
    const Measured m = time_pass(nets, min_seconds, [&] {
      const util::Result<sta::TimingResult> r = graph.value().analyze_checked(config.options);
      if (!r.is_ok()) return -1.0;
      return r.value().summary.wns;
    });
    // The execution knobs must not move a single bit of the answer.
    const util::Result<sta::TimingResult> check = graph.value().analyze_checked(config.options);
    if (!check.is_ok()) {
      std::cerr << "sta_throughput: " << check.status().to_string() << "\n";
      return 1;
    }
    if (!have_reference) {
      reference_wns = check.value().summary.wns;
      have_reference = true;
    } else if (check.value().summary.wns != reference_wns) {
      std::cerr << "sta_throughput: WNS drifted across execution configs\n";
      return 1;
    }
    if (scalar_ns == 0.0) scalar_ns = m.ns_per_net;
    add_row(config.name, m, scalar_ns);
  }

  table.print(std::cout, "static timing throughput (" + design.name + ")");
  std::cout << "\nWNS " << reference_wns * 1e12 << " ps, checksum " << checksum << "\n";

  if (!json_path.empty()) {
    if (!benchio::write_bench_json(json_path, rows)) {
      std::cerr << "sta_throughput: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
