/// \file incremental.cpp
/// Measures the incremental TimingEngine against whole-tree re-analysis.
/// For balanced binary trees of n = ~1e2 .. ~1e5 sections we time (a) a
/// fresh eed::analyze of the whole tree and (b) a single-section edit
/// followed by a sink delay query through the engine. The engine's
/// counters give the exact number of nodes touched per edit and walked
/// per query, making the O(n) vs O(depth) gap visible directly: the
/// speedup grows roughly as n / log2(n).

#include <chrono>
#include <iostream>
#include <string>

#include "relmore/relmore.hpp"

#include "json_out.hpp"

namespace {

using namespace relmore;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = relmore::benchio::json_path_from_args(argc, argv);
  std::vector<relmore::benchio::BenchRow> rows;
  util::Table table({"sections", "depth", "full analyze [us]", "incr edit+query [us]",
                     "speedup", "edit nodes/edit", "query nodes/query"});

  double checksum = 0.0;
  for (const int levels : {7, 10, 14, 17}) {
    const circuit::RlcTree tree = circuit::make_balanced_tree(levels, 2, {10.0, 1e-9, 0.1e-12});
    const auto n = tree.size();
    const circuit::SectionId sink = tree.leaves().front();

    // (a) Whole-tree re-analysis, the pre-engine cost of any edit.
    const std::size_t full_reps = std::max<std::size_t>(5, 2'000'000 / n);
    const auto t_full = Clock::now();
    for (std::size_t r = 0; r < full_reps; ++r) {
      const eed::TreeModel model = eed::analyze(tree);
      checksum += model.at(sink).sum_rc;
    }
    const double full_us = seconds_since(t_full) / static_cast<double>(full_reps) * 1e6;

    // (b) The same logical operation through the engine: perturb one
    // section, read the sink delay.
    engine::TimingEngine eng(tree);
    eng.reset_counters();
    circuit::SectionValues v = tree.section(sink).v;
    const std::size_t incr_reps = 20000;
    const auto t_incr = Clock::now();
    for (std::size_t r = 0; r < incr_reps; ++r) {
      v.capacitance *= 1.0000001;
      eng.set_section_values(sink, v);
      checksum += eng.delay_50(sink);
    }
    const double incr_us = seconds_since(t_incr) / static_cast<double>(incr_reps) * 1e6;

    const engine::EngineCounters& c = eng.counters();
    const double edit_nodes =
        static_cast<double>(c.edit_nodes_touched) / static_cast<double>(c.incremental_edits);
    const double query_nodes =
        static_cast<double>(c.query_nodes_walked) / static_cast<double>(c.queries);
    table.add_row_numeric({static_cast<double>(n), static_cast<double>(levels), full_us, incr_us,
                           full_us / incr_us, edit_nodes, query_nodes},
                          4);
    rows.push_back({"incremental_edit_query", n, 1, incr_us * 1e3 / static_cast<double>(n),
                    full_us / incr_us});
  }

  table.print(std::cout, "Incremental engine vs whole-tree re-analysis (balanced binary trees)");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nShape check: a single-section edit touches only the root path\n"
               "(~depth nodes) instead of all n sections, so the speedup over a\n"
               "fresh analyze grows like n / log2(n) — two orders of magnitude\n"
               "by n ~ 1e4. (checksum " << (checksum == checksum ? "ok" : "NAN") << ")\n";
  if (!json_path.empty()) {
    if (!relmore::benchio::write_bench_json(json_path, rows)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  return 0;
}
