/// \file fig15_node_position.cpp
/// Reproduces paper Fig. 15: accuracy versus node position in a 5-level
/// balanced binary tree. Nodes near the source see fewer series elements
/// (more finite zeros in their transfer function), so the 2-pole model is
/// least accurate there and best at the sinks.

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  circuit::RlcTree tree = circuit::make_balanced_tree(5, 2, {25.0, 2e-9, 0.2e-12});
  const circuit::SectionId sink = tree.leaves().front();
  analysis::scale_inductance_for_zeta(tree, sink, 0.8);

  // Walk the path from the root to one sink; evaluate at each level.
  const auto path = tree.path_from_input(sink);
  util::Table table({"level", "node", "zeta", "t50_sim [ps]", "t50_EED [ps]", "delay err %",
                     "max|dv| [V]"});
  for (std::size_t d = 0; d < path.size(); ++d) {
    const circuit::SectionId node = path[d];
    const analysis::StepComparison c = analysis::compare_step_response(tree, node);
    table.add_row_numeric({static_cast<double>(d + 1), static_cast<double>(node), c.zeta,
                           c.ref_delay_50 / 1e-12, c.eed_delay_50 / 1e-12, c.delay_err_pct,
                           c.waveform_max_err},
                          5);
  }
  table.print(std::cout, "Fig. 15 — error vs node level (5-level binary balanced tree)");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nShape check (paper): the waveform error is largest near the source\n"
               "and smallest at the sinks — the nodes designers actually time.\n";
  return 0;
}
