/// \file ablation_wire_sizing.cpp
/// Wire-sizing ablation (paper §IV's motivating application): size a line
/// under the RC-only model and under the Equivalent Elmore Delay, then
/// score both optima with the reference simulator, in two regimes:
///
///  - a resistive (local-style) line, where classic tapered sizing [18]
///    genuinely pays and both models find it;
///  - an inductive (global-style) line, where the RC model's aggressive
///    widening/tapering is counterproductive — it optimizes a model that
///    cannot see the inductive speedup — while the RLC-aware objective
///    stays close to the simulated optimum.

#include <iostream>
#include <sstream>

#include "relmore/relmore.hpp"

namespace {

using namespace relmore;
using opt::DelayModel;

std::string widths_to_string(const std::vector<double>& w) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i) ss << " ";
    ss << util::Table::fmt(w[i], 3);
  }
  return ss.str();
}

void run_regime(const char* label, const opt::WireSizingProblem& p) {
  const auto simulate = [&](const std::vector<double>& widths) {
    const auto tree = opt::build_sized_line(p, widths);
    const auto sink = static_cast<circuit::SectionId>(tree.size() - 1);
    return analysis::compare_step_response(tree, sink).ref_delay_50;
  };

  util::Table table({"sizing model", "model delay [ps]", "simulated delay [ps]", "widths"});
  const std::vector<double> uniform(static_cast<std::size_t>(p.segments), 1.0);
  table.add_row({"uniform w=1 (baseline)",
                 util::Table::fmt(
                     opt::sized_line_delay(p, uniform, DelayModel::kEquivalentElmore) / 1e-12,
                     5),
                 util::Table::fmt(simulate(uniform) / 1e-12, 5), widths_to_string(uniform)});
  for (DelayModel model : {DelayModel::kWyattRc, DelayModel::kEquivalentElmore}) {
    const opt::WireSizingResult r = opt::optimize_wire_sizing(p, model);
    table.add_row({model == DelayModel::kWyattRc ? "Wyatt RC" : "EED (this paper)",
                   util::Table::fmt(r.delay / 1e-12, 5),
                   util::Table::fmt(simulate(r.widths) / 1e-12, 5),
                   widths_to_string(r.widths)});
  }
  // Same objective through the batched candidate-sweep path (one kernel
  // call per grid refinement, lane-per-candidate): must land on the same
  // optimum as the sequential golden-section probes above.
  const opt::WireSizingResult rb =
      opt::optimize_wire_sizing_batched(p, DelayModel::kEquivalentElmore);
  table.add_row({"EED batched (grid sweep)", util::Table::fmt(rb.delay / 1e-12, 5),
                 util::Table::fmt(simulate(rb.widths) / 1e-12, 5), widths_to_string(rb.widths)});
  table.print(std::cout, label);
  std::cout << "\n";
}

}  // namespace

int main() {
  // Regime 1: resistive local-style line (inductance negligible).
  opt::WireSizingProblem resistive;
  resistive.segments = 6;
  resistive.unit_resistance = 250.0;
  resistive.unit_inductance = 0.05e-9;
  resistive.driver_resistance = 120.0;
  resistive.load_capacitance = 120e-15;
  run_regime("Ablation 1 — resistive line: tapered sizing pays under both models",
             resistive);

  // Regime 2: inductive global-style line (the paper's regime).
  opt::WireSizingProblem inductive;
  inductive.segments = 6;
  run_regime("Ablation 2 — inductive global line: RC-driven sizing misfires", inductive);

  std::cout << "Shape check: on the resistive line both optimizers beat the uniform\n"
               "baseline under simulation, with the classic tapered profile. On the\n"
               "inductive line the RC objective 'optimizes' its blind spot and lands\n"
               "*worse* than uniform under simulation, while the RLC-aware objective\n"
               "stays within a few percent of it — the fidelity gap the paper's\n"
               "closed forms exist to close.\n";
  return 0;
}
