/// \file ablation_van_ginneken.cpp
/// Buffer-insertion DP ablation ([27][28], the paper's §I/§IV framing):
/// run van Ginneken's RAT-maximizing DP (RC Elmore, as industry did) on
/// lines and trees, then rescore the chosen buffering under the RC model,
/// the Equivalent Elmore Delay, and the transient simulator. The gap
/// between the RC score and the simulator is what an RC-only flow never
/// sees; the EED rescoring recovers most of it at closed-form cost.

#include <iostream>

#include "relmore/relmore.hpp"

namespace {

using namespace relmore;

/// Simulated worst-sink delay of a buffered tree (stage by stage, like
/// evaluate_buffered_tree but with the transient engine per stage).
double simulate_buffered(const circuit::RlcTree& tree, const std::vector<bool>& buffered,
                         const opt::Driver& buffer, double rs) {
  struct Work {
    std::vector<circuit::SectionId> children;
    double driver_r;
    double arrival;
  };
  std::vector<Work> queue{{tree.roots(), rs, 0.0}};
  double worst = 0.0;
  while (!queue.empty()) {
    const Work w = queue.back();
    queue.pop_back();
    // Build the stage tree.
    circuit::RlcTree stage;
    std::vector<circuit::SectionId> stage_id(tree.size(), circuit::kInput);
    const auto drv = stage.add_section(circuit::kInput, {w.driver_r, 0.0, 0.0});
    std::vector<std::pair<circuit::SectionId, circuit::SectionId>> stack;
    for (auto c : w.children) stack.push_back({c, drv});
    std::vector<circuit::SectionId> buffer_roots;
    std::vector<circuit::SectionId> sinks;
    while (!stack.empty()) {
      auto [orig, parent] = stack.back();
      stack.pop_back();
      auto v = tree.section(orig).v;
      const bool is_buf = buffered[static_cast<std::size_t>(orig)];
      if (is_buf) v.capacitance += buffer.input_capacitance;
      const auto sid = stage.add_section(parent, v);
      stage_id[static_cast<std::size_t>(orig)] = sid;
      if (is_buf) {
        buffer_roots.push_back(orig);
        continue;
      }
      if (tree.children(orig).empty()) sinks.push_back(orig);
      for (auto c : tree.children(orig)) stack.push_back({c, sid});
    }
    // One streaming transient run covers all stage sinks and buffer roots:
    // only those probes are measured (first 50% crossings, no waveform
    // storage), with the stage's Elmore horizon as the explicit t_stop.
    const auto model = eed::analyze(stage);
    double horizon = 0.0;
    for (std::size_t k = 0; k < stage.size(); ++k) {
      horizon = std::max(horizon, 12.0 * model.nodes[k].sum_rc);
    }
    sim::TransientOptions opts;
    opts.t_stop = horizon;
    opts.dt = horizon / 20000.0;
    std::vector<circuit::SectionId> probes;
    probes.reserve(sinks.size() + buffer_roots.size());
    for (auto s : sinks) probes.push_back(stage_id[static_cast<std::size_t>(s)]);
    for (auto b : buffer_roots) probes.push_back(stage_id[static_cast<std::size_t>(b)]);
    const std::vector<double> cross = sim::simulate_first_crossings(
        circuit::FlatTree(stage), sim::StepSource{1.0}, opts, probes, 0.5);
    for (std::size_t k = 0; k < sinks.size(); ++k) {
      worst = std::max(worst, w.arrival + cross[k]);
    }
    for (std::size_t k = 0; k < buffer_roots.size(); ++k) {
      const auto b = buffer_roots[k];
      const double d = cross[sinks.size() + k];
      queue.push_back(
          {tree.children(b), buffer.output_resistance, w.arrival + d + buffer.intrinsic_delay});
    }
  }
  return worst;
}

void run_case(const char* label, const circuit::RlcTree& tree, double rs) {
  const opt::Driver buf = opt::unit_inverter().sized(32.0);
  const opt::VanGinnekenResult r = opt::van_ginneken(tree, buf, rs);
  const std::vector<bool> none(tree.size(), false);

  util::Table table({"candidate", "buffers", "RC score [ps]", "EED score [ps]",
                     "simulated [ps]"});
  for (const auto& [name, sol] :
       {std::pair<const char*, const std::vector<bool>&>{"unbuffered", none},
        std::pair<const char*, const std::vector<bool>&>{"van Ginneken pick", r.buffered}}) {
    const double rc =
        opt::evaluate_buffered_tree(tree, sol, buf, rs, opt::DelayModel::kWyattRc);
    const double eed =
        opt::evaluate_buffered_tree(tree, sol, buf, rs, opt::DelayModel::kEquivalentElmore);
    const double sim = simulate_buffered(tree, sol, buf, rs);
    int count = 0;
    for (bool b : sol) count += b ? 1 : 0;
    table.add_row({name, std::to_string(count), util::Table::fmt(rc / 1e-12, 5),
                   util::Table::fmt(eed / 1e-12, 5), util::Table::fmt(sim / 1e-12, 5)});
  }
  table.print(std::cout, label);
  std::cout << "\n";
}

}  // namespace

int main() {
  run_case("Resistive 12-section line (RC regime)",
           circuit::make_line(12, {150.0, 0.2e-9, 0.3e-12}), 50.0);
  run_case("Inductive 8-section global line",
           circuit::make_line(8, {30.0, 2e-9, 0.2e-12}), 30.0);
  run_case("Balanced 4-level clock subtree",
           circuit::make_balanced_tree(4, 2, {80.0, 0.8e-9, 0.15e-12}), 40.0);
  std::cout << "Shape check: in the RC regimes the DP's buffering is a large, real\n"
               "win and all three scores agree. On the inductive line the RC model\n"
               "*thinks* buffering helps (score drops ~22%) but the simulator says it\n"
               "hurts — unbroken inductive lines are faster than the RC model knows\n"
               "(cf. the authors' follow-up on repeater insertion in RLC lines). The\n"
               "EED rescoring exposes this at closed-form cost: it predicts almost no\n"
               "gain, within a few percent of the simulated truth.\n";
  return 0;
}
