/// \file complexity.cpp
/// Verifies the Appendix complexity claims with google-benchmark: the
/// whole-tree EED analysis is O(n) with exactly 2 multiplications per
/// section, and it beats even one timestep of the reference simulator by
/// orders of magnitude — the property that made the Elmore delay the
/// industry workhorse.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "relmore/relmore.hpp"

#include "json_out.hpp"

namespace {

using namespace relmore;

circuit::RlcTree tree_of(int levels) {
  return circuit::make_balanced_tree(levels, 2, {10.0, 1e-9, 0.1e-12});
}

void BM_EedAnalyze(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eed::analyze(tree));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(tree.size()));
  state.counters["sections"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_EedAnalyze)->DenseRange(4, 14, 2)->Complexity(benchmark::oN);

void BM_EedAnalyzeCounted(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  eed::AnalyzeStats stats;
  for (auto _ : state) {
    const eed::CountedAnalysis counted = eed::analyze_counting(tree);
    stats = counted.stats;
    benchmark::DoNotOptimize(counted.model);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(stats.nodes));
  state.counters["sections"] = static_cast<double>(stats.nodes);
  state.counters["muls"] = static_cast<double>(stats.multiplications);
  state.counters["muls_per_section"] =
      static_cast<double>(stats.multiplications) / static_cast<double>(stats.nodes);
}
BENCHMARK(BM_EedAnalyzeCounted)->DenseRange(4, 14, 2)->Complexity(benchmark::oN);

void BM_EngineSingleEdit(benchmark::State& state) {
  engine::TimingEngine eng(tree_of(static_cast<int>(state.range(0))));
  eng.reset_counters();
  const auto sink = eng.tree().leaves().front();
  circuit::SectionValues v = eng.tree().section(sink).v;
  for (auto _ : state) {
    v.capacitance *= 1.0000001;
    eng.set_section_values(sink, v);
    benchmark::DoNotOptimize(eng.delay_50(sink));
  }
  const engine::EngineCounters& c = eng.counters();
  state.counters["sections"] = static_cast<double>(eng.size());
  state.counters["edit_nodes_touched_per_edit"] =
      c.incremental_edits == 0
          ? 0.0
          : static_cast<double>(c.edit_nodes_touched) / static_cast<double>(c.incremental_edits);
  state.counters["full_recomputes"] = static_cast<double>(c.full_recomputes);
}
BENCHMARK(BM_EngineSingleEdit)->DenseRange(4, 14, 2);

void BM_EedClosedFormDelayAllSinks(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  const auto sinks = tree.leaves();
  for (auto _ : state) {
    const eed::TreeModel model = eed::analyze(tree);
    double acc = 0.0;
    for (const auto s : sinks) acc += eed::delay_50(model.at(s));
    benchmark::DoNotOptimize(acc);
  }
  state.counters["sections"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_EedClosedFormDelayAllSinks)->DenseRange(4, 12, 2);

void BM_TreeMomentsOrder4(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(moments::tree_moments(tree, 4));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(tree.size()));
}
BENCHMARK(BM_TreeMomentsOrder4)->DenseRange(4, 12, 2)->Complexity(benchmark::oN);

void BM_DelaySensitivityGradient(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  const auto sink = tree.leaves().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eed::delay_sensitivity(tree, sink));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(tree.size()));
  state.counters["sections"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_DelaySensitivityGradient)->DenseRange(4, 12, 2)->Complexity(benchmark::oN);

void BM_MonteCarloThousandSamples(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  const auto sink = tree.leaves().front();
  const analysis::VariationSpec spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::monte_carlo_delay(tree, sink, analysis::MonteCarloOptions{spec, 1000, 1, {}}));
  }
  state.counters["sections"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_MonteCarloThousandSamples)->DenseRange(4, 8, 2);

void BM_SimulatorReference(benchmark::State& state) {
  const circuit::RlcTree tree = tree_of(static_cast<int>(state.range(0)));
  sim::TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 1e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_tree(tree, sim::StepSource{1.0}, opts));
  }
  state.counters["sections"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_SimulatorReference)->DenseRange(4, 10, 2);

/// Console reporter that additionally collects per-run rows for the
/// `--json <path>` machine-readable output (see json_out.hpp). Aggregate
/// rows (BigO / RMS fits) and benchmarks without a `sections` counter are
/// skipped — the JSON records raw per-size timings only.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      const auto it = run.counters.find("sections");
      if (it == run.counters.end()) continue;
      const double sections = it->second.value;
      if (sections <= 0.0) continue;
      benchio::BenchRow row;
      row.bench = run.benchmark_name();
      row.n = static_cast<std::size_t>(sections);
      row.samples = 1;
      // GetAdjustedRealTime is in the run's time unit (ns by default here).
      row.ns_per_section = run.GetAdjustedRealTime() / sections;
      rows.push_back(row);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<benchio::BenchRow> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip `--json <path>` before google-benchmark parses the remainder.
  const std::string json_path = relmore::benchio::json_path_from_args(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;  // also skip the path operand
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !relmore::benchio::write_bench_json(json_path, reporter.rows)) {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  return 0;
}
