/// \file sim_throughput.cpp
/// Throughput of the flat transient-simulation kernels vs the legacy
/// AoS tree stepper — the reference-simulation shape (fixed-step run,
/// one probed sink) and the multi-run shape (S runs over one topology).
///
/// Fixed-step, one run per topology, so each win is attributable:
///   legacy AoS        — TreeStepper loop, full n x steps recording
///                       (per-step companion factorization, the pre-kernel
///                       cost of sim::simulate_tree)
///   flat full         — FlatStepper, factored companions, full recording
///   flat probe        — FlatStepper, probe-selective recording (1 sink)
///   flat crossings    — streaming 50% crossing, no waveform storage
///
/// Multi-run (S = 64 value samples, one probed sink):
///   serial FlatStepper — S independent flat probe-selective runs
///   batched W=4/8      — one BatchSimulator sweep (AoSoA lanes)
///   batched W=8 + pool — lane-groups fanned across the BatchAnalyzer pool
///
/// The multi-run phase sweeps tree sizes from the stage-tree regime
/// (n = 63, the van Ginneken / Monte-Carlo workload where BatchSimulator
/// is actually deployed) up to n = 16383 because the batched win is a
/// cache story: W lanes multiply the per-step working set by W, so the
/// AoSoA sweep pays off while a lane-group stays cache-resident, and the
/// tile-blocked downward sweep (engine::KernelTuner) is what keeps it
/// from collapsing once W x the scalar working set spills past L2. Step
/// counts scale inversely with n to keep each grid point's cost flat.
///
/// Throughput metric: section·steps (·runs) per second; the table reports
/// ns per unit and the speedup over each phase's baseline. The acceptance
/// gates are >= 3x for `flat probe` vs `legacy AoS` at n = 1023 and
/// >= 2x for the batched sweep vs `serial FlatStepper` at S = 64 on the
/// stage-sized tree.
/// `--json <path>` writes machine-readable rows (see json_out.hpp); the
/// checked-in baseline lives in BENCH_sim.json. `--quick` shrinks reps
/// and sizes for CI smoke runs.

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>

#include "relmore/relmore.hpp"
#include "relmore/sim/tree_stepper.hpp"

#include "json_out.hpp"

namespace {

using namespace relmore;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Measured {
  double ns_per_unit = 0.0;
  double checksum = 0.0;
};

/// Repeats `body` (one full pass over `units` section·step·run units)
/// until `min_seconds` elapsed.
template <typename Body>
Measured time_pass(std::size_t units, double min_seconds, const Body& body) {
  Measured m;
  m.checksum += body();  // warm-up
  std::size_t reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    m.checksum += body();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  m.ns_per_unit = elapsed * 1e9 / static_cast<double>(reps * units);
  return m;
}

/// The pre-kernel sim::simulate_tree: TreeStepper (per-step companion
/// factorization) with unconditional full n x steps recording.
double legacy_simulate(const circuit::RlcTree& tree, const sim::Source& src,
                       const sim::TransientOptions& opts, circuit::SectionId sink) {
  const std::size_t n = tree.size();
  const auto steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));
  sim::TreeStepper stepper(tree);
  std::vector<double> time;
  std::vector<std::vector<double>> volts(n);
  time.reserve(steps + 1);
  time.push_back(0.0);
  for (auto& row : volts) {
    row.reserve(steps + 1);
    row.push_back(0.0);
  }
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t_next = static_cast<double>(step) * opts.dt;
    const auto method = static_cast<int>(step) > opts.be_startup_steps
                            ? sim::TreeStepper::Method::kTrapezoidal
                            : sim::TreeStepper::Method::kBackwardEuler;
    stepper.step(opts.dt, sim::source_value(src, t_next), method);
    time.push_back(t_next);
    for (std::size_t k = 0; k < n; ++k) volts[k].push_back(stepper.voltages()[k]);
  }
  return volts[static_cast<std::size_t>(sink)].back();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const double min_seconds = quick ? 0.02 : 0.2;
  const std::size_t steps = quick ? 400 : 2000;

  std::vector<benchio::BenchRow> rows;
  util::Table table({"config", "sections", "runs", "steps", "ns/(section*step*run)",
                     "speedup vs baseline"});
  double checksum = 0.0;

  const auto add_row = [&](const std::string& name, std::size_t n, std::size_t runs,
                           std::size_t steps_used, const Measured& m, double baseline_ns) {
    checksum += m.checksum;
    const double speedup = baseline_ns / m.ns_per_unit;
    table.add_row({name, util::Table::fmt(static_cast<double>(n), 0),
                   util::Table::fmt(static_cast<double>(runs), 0),
                   util::Table::fmt(static_cast<double>(steps_used), 0),
                   util::Table::fmt(m.ns_per_unit, 3), util::Table::fmt(speedup, 2)});
    rows.push_back({name, n, runs, m.ns_per_unit, speedup});
  };

  // --- Phase 1: fixed-step single-run kernels, n = 2^levels - 1. The
  // acceptance point is n = 1023 (levels = 10).
  for (const int levels : (quick ? std::vector<int>{8, 10} : std::vector<int>{8, 10, 12})) {
    const circuit::RlcTree tree =
        circuit::make_balanced_tree(levels, 2, {10.0, 1e-9, 0.1e-12});
    const circuit::FlatTree flat(tree);
    const std::size_t n = tree.size();
    const circuit::SectionId sink = flat.leaves().back();
    sim::TransientOptions opts;
    opts.dt = sim::suggest_timestep(tree, 0.05);
    opts.t_stop = static_cast<double>(steps) * opts.dt;
    const std::size_t units = n * steps;
    const sim::Source src = sim::StepSource{1.0};

    const Measured legacy = time_pass(
        units, min_seconds, [&] { return legacy_simulate(tree, src, opts, sink); });
    add_row("legacy AoS full record", n, 1, steps, legacy, legacy.ns_per_unit);

    const Measured flat_full = time_pass(units, min_seconds, [&] {
      const sim::TransientResult r = sim::simulate_tree(flat, src, opts);
      return r.node_voltage[static_cast<std::size_t>(sink)].back();
    });
    add_row("flat full record", n, 1, steps, flat_full, legacy.ns_per_unit);

    sim::TransientOptions probe_opts = opts;
    probe_opts.probes = {sink};
    const Measured flat_probe = time_pass(units, min_seconds, [&] {
      const sim::TransientResult r = sim::simulate_tree(flat, src, probe_opts);
      return r.node_voltage[0].back();
    });
    add_row("flat probe-selective", n, 1, steps, flat_probe, legacy.ns_per_unit);

    const Measured crossings = time_pass(units, min_seconds, [&] {
      return sim::simulate_first_crossings(flat, src, opts, {sink}, 0.5).front();
    });
    add_row("flat crossings-only", n, 1, steps, crossings, legacy.ns_per_unit);
  }

  // --- Phase 2: multi-run sweep, S value samples over one topology. The
  // acceptance point is the stage-sized tree (levels = 6, n = 63); the
  // larger trees — up to n = 16383, far beyond L2 — document how the
  // tiled sweep holds up across the cache-capacity crossover. Step count
  // scales as ~63/n so each grid point simulates a comparable number of
  // section·step·run units and the whole sweep stays tractable.
  for (const int levels : (quick ? std::vector<int>{6} : std::vector<int>{6, 8, 10, 12, 14})) {
    const std::size_t kRuns = 64;
    const circuit::RlcTree tree =
        circuit::make_balanced_tree(levels, 2, {10.0, 1e-9, 0.1e-12});
    const circuit::FlatTree flat(tree);
    const std::size_t n = tree.size();
    const std::size_t run_steps = std::max<std::size_t>(50, steps * 63 / n);
    const circuit::SectionId sink = flat.leaves().back();
    sim::TransientOptions opts;
    opts.dt = sim::suggest_timestep(tree, 0.05);
    opts.t_stop = static_cast<double>(run_steps) * opts.dt;
    opts.probes = {sink};
    const std::size_t units = n * run_steps * kRuns;

    // Per-run values: the nominal tree mildly perturbed, deterministic in
    // the run index (the Monte-Carlo / candidate-sweep workload).
    std::vector<std::vector<double>> rv(kRuns), lv(kRuns), cv(kRuns);
    std::vector<circuit::FlatTree> run_trees;
    run_trees.reserve(kRuns);
    circuit::RlcTree scratch = tree;
    for (std::size_t s = 0; s < kRuns; ++s) {
      rv[s].resize(n);
      lv[s].resize(n);
      cv[s].resize(n);
      const double f = 1.0 + 1e-3 * static_cast<double>(s % 97);
      for (std::size_t k = 0; k < n; ++k) {
        rv[s][k] = flat.resistance()[k] * f;
        lv[s][k] = flat.inductance()[k];
        cv[s][k] = flat.capacitance()[k] * f;
        scratch.values(static_cast<circuit::SectionId>(k)) = {rv[s][k], lv[s][k], cv[s][k]};
      }
      run_trees.emplace_back(scratch);
    }
    const sim::Source src = sim::StepSource{1.0};

    const Measured serial = time_pass(units, min_seconds, [&] {
      double acc = 0.0;
      for (std::size_t s = 0; s < kRuns; ++s) {
        acc += sim::simulate_tree(run_trees[s], src, opts).node_voltage[0].back();
      }
      return acc;
    });
    add_row("serial FlatStepper x" + std::to_string(kRuns), n, kRuns, run_steps, serial,
            serial.ns_per_unit);

    for (const std::size_t w : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
      sim::BatchSimulator batch(flat, w);
      batch.resize(kRuns);
      const Measured m = time_pass(units, min_seconds, [&] {
        for (std::size_t s = 0; s < kRuns; ++s) {
          batch.set_run(s, rv[s].data(), lv[s].data(), cv[s].data());
        }
        const sim::BatchTransientResult r = batch.simulate(opts);
        double acc = 0.0;
        for (std::size_t s = 0; s < kRuns; ++s) {
          acc += r.voltage(s, sink, r.time().size() - 1);
        }
        return acc;
      });
      const std::string name = w == 0 ? "batched auto (W=" + std::to_string(batch.lane_width()) +
                                            ", tuner tile)"
                                      : "batched W=" + std::to_string(w);
      add_row(name, n, kRuns, run_steps, m, serial.ns_per_unit);
    }

    {
      sim::BatchSimulator batch(flat, 8);
      batch.resize(kRuns);
      engine::BatchAnalyzer pool;
      const Measured m = time_pass(units, min_seconds, [&] {
        for (std::size_t s = 0; s < kRuns; ++s) {
          batch.set_run(s, rv[s].data(), lv[s].data(), cv[s].data());
        }
        const sim::BatchTransientResult r = batch.simulate(opts, &pool);
        double acc = 0.0;
        for (std::size_t s = 0; s < kRuns; ++s) {
          acc += r.voltage(s, sink, r.time().size() - 1);
        }
        return acc;
      });
      add_row("batched W=8 + pool(" + std::to_string(pool.thread_count()) + ")", n, kRuns,
              run_steps, m, serial.ns_per_unit);
    }
  }

  table.print(std::cout,
              "Flat transient kernels vs the legacy tree stepper (fixed step)");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nShape check: factored companions + no full-tree recording buy the\n"
               "single-run win (acceptance: >= 3x at n = 1023 for the probed run);\n"
               "the AoSoA lanes buy the multi-run win on top of the already-flat\n"
               "serial baseline (acceptance: >= 2x at S = 64, n = 63 — the\n"
               "stage-tree regime; the larger-n rows track the sweep across the\n"
               "cache-capacity crossover, held up by the tiled downward pass).\n"
               "(checksum " << (checksum == checksum ? "ok" : "NAN") << ")\n";

  if (!json_path.empty()) {
    if (!benchio::write_bench_json(json_path, rows)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  return 0;
}
