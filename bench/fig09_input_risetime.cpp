/// \file fig09_input_risetime.cpp
/// Reproduces paper Fig. 9: the closed-form exponential-input response
/// (eq. 44) at output O of the Fig. 8 tree versus the reference simulator,
/// for a sweep of input rise times. The paper's observation: accuracy
/// improves as the input slows; the step input is the worst case (§V-A).

#include <iostream>

#include "relmore/relmore.hpp"

int main() {
  using namespace relmore;

  circuit::SectionId out = circuit::kInput;
  const circuit::RlcTree tree = circuit::make_fig8_tree(&out);
  const eed::TreeModel model = eed::analyze(tree);
  const eed::NodeModel& nm = model.at(out);

  std::cout << "Fig. 8 stand-in tree: " << tree.size() << " sections, observed node 'O': "
            << "zeta=" << nm.zeta << " omega_n=" << nm.omega_n << " rad/s\n\n";

  const double horizon = analysis::suggest_horizon(nm) + 8e-9;
  const auto grid = sim::uniform_grid(horizon, 1601);

  // Input 90% rise time of V(1-e^{-t/tau}) is 2.3*tau (paper §V-A).
  util::Table table({"tau_in [ps]", "rise_in(2.3tau) [ps]", "max |err| [V]",
                     "t50_ref [ps]", "t50_closed [ps]", "t50 err %"});
  for (const double tau : {1e-13, 2.5e-10, 5e-10, 1e-9, 2e-9, 4e-9}) {
    const sim::Waveform ref =
        analysis::reference_waveform(tree, out, sim::ExpSource{1.0, tau}, horizon, 1601);
    const sim::Waveform closed = eed::exp_input_waveform(nm, grid, 1.0, tau);
    const double max_err = ref.max_abs_difference(closed);
    const double t50_ref = sim::measure_rising(ref, 1.0).delay_50;
    const double t50_closed = closed.first_rise_crossing(0.5);
    table.add_row_numeric({tau / 1e-12, 2.3 * tau / 1e-12, max_err, t50_ref / 1e-12,
                           t50_closed / 1e-12,
                           100.0 * (t50_closed - t50_ref) / t50_ref},
                          5);
  }
  table.print(std::cout,
              "Fig. 9 — closed form (eq. 44) vs simulator, input rise-time sweep");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nShape check (paper): waveform error shrinks monotonically as the\n"
               "input rise time grows — the step (first row) is the worst case.\n";
  return 0;
}
