/// \file batched_throughput.cpp
/// Throughput of the batched same-topology kernel vs S independent
/// scalar `eed::analyze` calls — the Monte-Carlo / candidate-sweep shape
/// (one topology, S value samples, one queried sink).
///
/// Layers are measured so each win is attributable:
///   scalar AoS      — S × eed::analyze(RlcTree)    (the pre-kernel cost)
///   scalar SoA      — S × eed::analyze_values      (layout only; fixed
///                     topology, reused result — the sweep-loop form)
///   batched W=…     — one BatchedAnalyzer sweep    (layout + lane blocks)
///   batched auto    — lane width and tile from engine::KernelTuner
///   batched +pool   — lane-groups fanned across the BatchAnalyzer pool
///
/// Throughput metric: section·samples per second; the table reports
/// ns per section·sample and the speedup over the scalar AoS baseline.
/// `--json <path>` additionally writes machine-readable rows (see
/// json_out.hpp); the checked-in baseline lives in BENCH_batched.json.
/// `--quick` shrinks reps and the size grid for CI smoke runs.

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "relmore/relmore.hpp"

#include "json_out.hpp"

namespace {

using namespace relmore;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-sample values: the nominal tree mildly perturbed, deterministic in
/// the sample index (what the Monte-Carlo workload does, minus the RNG
/// cost, which both paths would pay identically).
void fill_sample(const circuit::FlatTree& flat, std::size_t s, std::vector<double>& r,
                 std::vector<double>& l, std::vector<double>& c) {
  const double f = 1.0 + 1e-3 * static_cast<double>(s % 97);
  for (std::size_t k = 0; k < flat.size(); ++k) {
    r[k] = flat.resistance()[k] * f;
    l[k] = flat.inductance()[k];
    c[k] = flat.capacitance()[k] * f;
  }
}

struct Measured {
  double ns_per_section = 0.0;
  double checksum = 0.0;
};

/// Repeats `body` (one full S-sample pass) until ~`min_seconds` elapsed.
template <typename Body>
Measured time_pass(std::size_t n, std::size_t samples, double min_seconds, const Body& body) {
  Measured m;
  m.checksum += body();  // warm-up (and first timed unit below re-runs it)
  std::size_t reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    m.checksum += body();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  m.ns_per_section = elapsed * 1e9 / static_cast<double>(reps * n * samples);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const double min_seconds = quick ? 0.02 : 0.2;
  std::vector<benchio::BenchRow> rows;
  util::Table table({"config", "sections", "samples", "ns/(section*sample)", "Msection*samples/s",
                     "speedup vs scalar AoS"});
  double checksum = 0.0;

  // n = 2^levels - 1 balanced binary trees; the acceptance point is
  // n=1023, S=256, and the n=16383 rows cover the beyond-L2 regime the
  // tiled sweeps target. The n sweep shows where the batched win saturates.
  const std::size_t kSamples = 256;
  for (const int levels : (quick ? std::vector<int>{8, 10} : std::vector<int>{8, 10, 12, 14})) {
    const circuit::RlcTree tree =
        circuit::make_balanced_tree(levels, 2, {10.0, 1e-9, 0.1e-12});
    const circuit::FlatTree flat(tree);
    const std::size_t n = tree.size();
    const circuit::SectionId sink = flat.leaves().front();

    // Pre-generate the S per-sample value sets once; every config below
    // consumes the same values, so only the execution plan differs.
    std::vector<std::vector<double>> rv(kSamples), lv(kSamples), cv(kSamples);
    for (std::size_t s = 0; s < kSamples; ++s) {
      rv[s].resize(n);
      lv[s].resize(n);
      cv[s].resize(n);
      fill_sample(flat, s, rv[s], lv[s], cv[s]);
    }
    // Mutable AoS copy for the scalar baseline (same values per sample).
    circuit::RlcTree scratch = tree;

    const auto add_row = [&](const std::string& name, const Measured& m, double baseline_ns) {
      checksum += m.checksum;
      const double speedup = baseline_ns / m.ns_per_section;
      table.add_row({name, util::Table::fmt(static_cast<double>(n), 0),
                     util::Table::fmt(static_cast<double>(kSamples), 0),
                     util::Table::fmt(m.ns_per_section, 3),
                     util::Table::fmt(1e3 / m.ns_per_section, 1),
                     util::Table::fmt(speedup, 2)});
      rows.push_back({name, n, kSamples, m.ns_per_section, speedup});
    };

    // (a) Scalar AoS: S independent whole-tree analyses.
    const Measured scalar_aos = time_pass(n, kSamples, min_seconds, [&] {
      double acc = 0.0;
      for (std::size_t s = 0; s < kSamples; ++s) {
        for (std::size_t k = 0; k < n; ++k) {
          auto& v = scratch.values(static_cast<circuit::SectionId>(k));
          v.resistance = rv[s][k];
          v.inductance = lv[s][k];
          v.capacitance = cv[s][k];
        }
        acc += eed::analyze(scratch).at(sink).sum_rc;
      }
      return acc;
    });
    add_row("scalar AoS (S x eed::analyze)", scalar_aos, scalar_aos.ns_per_section);

    // (b) Scalar SoA: the same S analyses as sweep-loop re-analyses of
    // the fixed flat topology (eed::analyze_values) — the topology is
    // snapshotted once and the TreeModel is reused, so this measures the
    // SoA layout itself rather than per-call FlatTree construction.
    eed::TreeModel soa_model;
    const Measured scalar_soa = time_pass(n, kSamples, min_seconds, [&] {
      double acc = 0.0;
      for (std::size_t s = 0; s < kSamples; ++s) {
        eed::analyze_values(flat, rv[s].data(), lv[s].data(), cv[s].data(), soa_model);
        acc += soa_model.at(sink).sum_rc;
      }
      return acc;
    });
    add_row("scalar SoA (S x analyze_values)", scalar_soa, scalar_aos.ns_per_section);

    // (c) Batched kernel, single thread, lane widths 1/4/8.
    for (const std::size_t w :
         {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      engine::BatchedAnalyzer batch(flat, w);
      batch.resize(kSamples);
      const Measured m = time_pass(n, kSamples, min_seconds, [&] {
        for (std::size_t s = 0; s < kSamples; ++s) {
          batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
        }
        const engine::BatchedModels models = batch.analyze_nodes({sink});
        double acc = 0.0;
        for (std::size_t s = 0; s < kSamples; ++s) acc += models.sum_rc(s, sink);
        return acc;
      });
      const std::string name = w == 0 ? "batched auto (W=" + std::to_string(batch.lane_width()) +
                                            ", tuner tile)"
                                      : "batched W=" + std::to_string(w);
      add_row(name, m, scalar_aos.ns_per_section);
    }

    // (d) Streaming batched kernel: the fill lands in the group's AoSoA
    // block and is analyzed while cache-hot, so sample values never
    // round-trip through memory (the Monte-Carlo execution plan).
    for (const std::size_t w : {std::size_t{4}, std::size_t{8}}) {
      engine::BatchedAnalyzer batch(flat, w);
      const Measured m = time_pass(n, kSamples, min_seconds, [&] {
        const engine::BatchedModels models = batch.analyze_stream(
            kSamples,
            [&](std::size_t s, double* r, double* l, double* c) {
              std::memcpy(r, rv[s].data(), n * sizeof(double));
              std::memcpy(l, lv[s].data(), n * sizeof(double));
              std::memcpy(c, cv[s].data(), n * sizeof(double));
            },
            {sink});
        double acc = 0.0;
        for (std::size_t s = 0; s < kSamples; ++s) acc += models.sum_rc(s, sink);
        return acc;
      });
      add_row("batched W=" + std::to_string(w) + " stream", m, scalar_aos.ns_per_section);
    }

    // (e) Batched W=8 with lane-groups fanned across the pool
    // (RELMORE_THREADS-respecting default).
    {
      engine::BatchedAnalyzer batch(flat, 8);
      batch.resize(kSamples);
      engine::BatchAnalyzer pool;
      const Measured m = time_pass(n, kSamples, min_seconds, [&] {
        pool.parallel_chunks(kSamples, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
          }
        });
        const engine::BatchedModels models = batch.analyze_nodes({sink}, &pool);
        double acc = 0.0;
        for (std::size_t s = 0; s < kSamples; ++s) acc += models.sum_rc(s, sink);
        return acc;
      });
      add_row("batched W=8 + pool(" + std::to_string(pool.thread_count()) + ")", m,
              scalar_aos.ns_per_section);
    }
  }

  table.print(std::cout,
              "Batched same-topology kernel vs S independent scalar analyses (S = 256)");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nShape check: the SoA layout alone buys part of the win (no name\n"
               "strings in the sweep, no per-call result allocation); the lane\n"
               "blocks buy the rest (W samples advance per loop iteration), and\n"
               "the tiled downward sweep holds the win past L2 (n=16383). The\n"
               "acceptance point is >= 3x at n=1023, S=256 for the batched kernel.\n"
               "(checksum " << (checksum == checksum ? "ok" : "NAN") << ")\n";

  if (!json_path.empty()) {
    if (!benchio::write_bench_json(json_path, rows)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  return 0;
}
