/// \file fig14_depth.cpp
/// Reproduces paper Fig. 14: accuracy versus tree depth for balanced
/// binary trees. The transfer-function order at the sinks grows with the
/// number of levels, so more of the true response lives in harmonics the
/// 2-pole model cannot carry. We report the residual-oscillation count
/// (unmodeled harmonics) alongside the delay and peak-waveform errors;
/// see EXPERIMENTS.md for why the *peak* error does not grow when the
/// sink damping is matched across depths.

#include <iostream>

#include "relmore/relmore.hpp"

namespace {

int residual_sign_changes(const relmore::sim::Waveform& ref,
                          const relmore::sim::Waveform& model) {
  int count = 0;
  double prev = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = ref.values()[i] - model.values()[i];
    if (prev != 0.0 && d != 0.0 && ((prev > 0) != (d > 0))) ++count;
    if (d != 0.0) prev = d;
  }
  return count;
}

}  // namespace

int main() {
  using namespace relmore;

  util::Table table({"levels", "sections", "zeta@sink", "t50_sim [ps]", "t50_EED [ps]",
                     "delay err %", "max|dv| [V]", "residual oscillations"});
  for (int levels = 2; levels <= 6; ++levels) {
    circuit::RlcTree tree = circuit::make_balanced_tree(levels, 2, {25.0, 2e-9, 0.2e-12});
    const circuit::SectionId sink = tree.leaves().front();
    analysis::scale_inductance_for_zeta(tree, sink, 0.8);
    const analysis::StepComparison c = analysis::compare_step_response(tree, sink);

    const eed::TreeModel model = eed::analyze(tree);
    const eed::NodeModel& nm = model.at(sink);
    const double horizon = analysis::suggest_horizon(nm);
    const sim::Waveform ref =
        analysis::reference_waveform(tree, sink, sim::StepSource{1.0}, horizon, 3001);
    const sim::Waveform eed_w = eed::step_waveform(nm, ref.times(), 1.0);

    table.add_row_numeric({static_cast<double>(levels), static_cast<double>(tree.size()),
                           c.zeta, c.ref_delay_50 / 1e-12, c.eed_delay_50 / 1e-12,
                           c.delay_err_pct, c.waveform_max_err,
                           static_cast<double>(residual_sign_changes(ref, eed_w))},
                          5);
  }
  table.print(std::cout, "Fig. 14 — error vs depth, balanced binary trees");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout
      << "\nShape check (paper): deeper trees carry more response content the\n"
         "2-pole model cannot represent — the residual-oscillation count\n"
         "grows with depth. The 50% delay stays within a few percent at\n"
         "every depth. (Peak |dv| does not grow here because matching the\n"
         "sink damping across depths also damps the deep trees' harmonics;\n"
         "see EXPERIMENTS.md.)\n";
  return 0;
}
