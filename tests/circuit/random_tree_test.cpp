#include "relmore/circuit/random_tree.hpp"

#include <gtest/gtest.h>

#include <set>

namespace relmore::circuit {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW((void)r.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, LogUniformRangeAndDegenerates) {
  Rng r(13);
  for (int i = 0; i < 200; ++i) {
    const double v = r.log_uniform(1e-12, 1e-9);
    EXPECT_GE(v, 1e-12);
    EXPECT_LE(v, 1e-9);
  }
  EXPECT_DOUBLE_EQ(r.log_uniform(5.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(r.log_uniform(0.0, 0.0), 0.0);
  EXPECT_THROW((void)r.log_uniform(2.0, 1.0), std::invalid_argument);
}

TEST(RandomTree, ReproducibleFromSeed) {
  const RandomTreeSpec spec;
  const RlcTree a = make_random_tree(spec, 99);
  const RlcTree b = make_random_tree(spec, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    EXPECT_EQ(a.section(id).parent, b.section(id).parent);
    EXPECT_DOUBLE_EQ(a.section(id).v.resistance, b.section(id).v.resistance);
  }
}

TEST(RandomTree, RespectsSpecBounds) {
  RandomTreeSpec spec;
  spec.min_sections = 5;
  spec.max_sections = 12;
  spec.max_children = 2;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const RlcTree t = make_random_tree(spec, seed);
    EXPECT_GE(t.size(), 5u);
    EXPECT_LE(t.size(), 12u);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const auto id = static_cast<SectionId>(i);
      EXPECT_LE(t.children(id).size(), 2u);
      EXPECT_GE(t.section(id).v.resistance, spec.resistance_lo);
      EXPECT_LE(t.section(id).v.resistance, spec.resistance_hi);
      EXPECT_GE(t.section(id).v.capacitance, spec.capacitance_lo);
      EXPECT_LE(t.section(id).v.capacitance, spec.capacitance_hi);
    }
  }
}

TEST(RandomTree, RcOnlyWhenInductanceRangeZero) {
  RandomTreeSpec spec;
  spec.inductance_lo = 0.0;
  spec.inductance_hi = 0.0;
  const RlcTree t = make_random_tree(spec, 3);
  for (const auto& s : t.sections()) EXPECT_DOUBLE_EQ(s.v.inductance, 0.0);
}

TEST(RandomTree, ValidatesSpec) {
  RandomTreeSpec bad;
  bad.min_sections = 0;
  EXPECT_THROW(make_random_tree(bad, 1), std::invalid_argument);
  RandomTreeSpec bad2;
  bad2.max_children = 0;
  EXPECT_THROW(make_random_tree(bad2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::circuit
