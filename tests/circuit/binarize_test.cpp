#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/sim/mna.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::circuit {
namespace {

TEST(Binarize, BinaryTreeUnchanged) {
  const RlcTree t = make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  std::vector<SectionId> back;
  const RlcTree b = binarize(t, &back);
  EXPECT_EQ(b.size(), t.size());  // no stubs needed
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NE(back[i], kInput);
  }
}

TEST(Binarize, WideNodeGetsStubs) {
  const RlcTree t = make_balanced_tree(2, 5, {10.0, 1e-9, 0.1e-12});
  const RlcTree b = binarize(t);
  EXPECT_GT(b.size(), t.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_LE(b.children(static_cast<SectionId>(i)).size(), 2u) << "node " << i;
  }
  EXPECT_DOUBLE_EQ(b.total_capacitance(), t.total_capacitance());
}

TEST(Binarize, EedAnalysisInvariant) {
  // The Appendix claim: the transformation is electrically neutral, so the
  // per-node EED characterization of every original node is unchanged.
  const RlcTree t = make_balanced_tree(3, 4, {15.0, 1.2e-9, 0.15e-12});
  std::vector<SectionId> back;
  const RlcTree b = binarize(t, &back);
  const auto mt = eed::analyze(t);
  const auto mb = eed::analyze(b);
  for (std::size_t nb = 0; nb < b.size(); ++nb) {
    const SectionId orig = back[nb];
    if (orig == kInput) continue;  // inserted stub
    EXPECT_NEAR(mb.nodes[nb].sum_rc, mt.at(orig).sum_rc,
                1e-12 * mt.at(orig).sum_rc + 1e-30)
        << "node " << nb;
    EXPECT_NEAR(mb.nodes[nb].sum_lc, mt.at(orig).sum_lc,
                1e-12 * mt.at(orig).sum_lc + 1e-40);
  }
}

TEST(Binarize, TransientInvariantOnWideStar) {
  RlcTree t;
  const SectionId hub = t.add_section(kInput, 10.0, 1e-9, 0.1e-12, "hub");
  for (int i = 0; i < 5; ++i) {
    t.add_section(hub, 20.0 + i, 1e-9, 0.05e-12, "leaf" + std::to_string(i));
  }
  std::vector<SectionId> back;
  const RlcTree b = binarize(t, &back);
  sim::TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 2e-13;
  const auto ra = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto rb = sim::simulate_tree(b, sim::StepSource{1.0}, opts);
  for (std::size_t nb = 0; nb < b.size(); ++nb) {
    const SectionId orig = back[nb];
    if (orig == kInput) continue;
    const double err = rb.waveform(static_cast<SectionId>(nb))
                           .max_abs_difference(ra.waveform(orig));
    EXPECT_LT(err, 1e-9) << "node " << nb;
  }
}

/// Property fuzz: random bushy trees binarize into valid equivalent trees.
class BinarizeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinarizeFuzz, InvariantOnRandomTrees) {
  RandomTreeSpec spec;
  spec.min_sections = 5;
  spec.max_sections = 25;
  spec.max_children = 6;
  const RlcTree t = make_random_tree(spec, GetParam());
  std::vector<SectionId> back;
  const RlcTree b = binarize(t, &back);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_LE(b.children(static_cast<SectionId>(i)).size(), 2u);
  }
  const auto mt = eed::analyze(t);
  const auto mb = eed::analyze(b);
  for (std::size_t nb = 0; nb < b.size(); ++nb) {
    if (back[nb] == kInput) continue;
    EXPECT_NEAR(mb.nodes[nb].sum_rc, mt.at(back[nb]).sum_rc,
                1e-12 * mt.at(back[nb]).sum_rc + 1e-30);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuit, BinarizeFuzz, ::testing::Values(1u, 9u, 42u, 77u));

}  // namespace
}  // namespace relmore::circuit
