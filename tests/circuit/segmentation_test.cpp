#include "relmore/circuit/segmentation.hpp"

#include <gtest/gtest.h>

#include "relmore/eed/model.hpp"

namespace relmore::circuit {
namespace {

TEST(Segmentation, ValuesSplitEvenly) {
  const WireSpec w{2e-3, 20e3, 0.5e-6, 150e-12};
  const SectionValues v = segment_values(w, 4);
  EXPECT_DOUBLE_EQ(v.resistance, 20e3 * 2e-3 / 4.0);
  EXPECT_DOUBLE_EQ(v.inductance, 0.5e-6 * 2e-3 / 4.0);
  EXPECT_DOUBLE_EQ(v.capacitance, 150e-12 * 2e-3 / 4.0);
}

TEST(Segmentation, TotalsPreservedAcrossSegmentCounts) {
  const WireSpec w = global_wire_spec();
  for (int n : {1, 3, 10, 50}) {
    const SectionValues v = segment_values(w, n);
    EXPECT_NEAR(v.resistance * n, w.r_per_m * w.length_m, 1e-9);
    EXPECT_NEAR(v.capacitance * n, w.c_per_m * w.length_m, 1e-20);
  }
}

TEST(Segmentation, AppendWireBuildsChain) {
  RlcTree t;
  const SectionId end = append_wire(t, kInput, global_wire_spec(), 8, "bus");
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(end, 7);
  EXPECT_EQ(t.depth(), 8);
  EXPECT_EQ(t.section(0).name, "bus.0");
  EXPECT_EQ(t.section(7).name, "bus.7");
}

TEST(Segmentation, ElmoreDelayConvergesWithSegments) {
  // The Elmore delay of an n-segment uniform RC(LC) wire converges to
  // RC_total/2 + ... as n grows; successive refinements shrink the change.
  const WireSpec w = global_wire_spec();
  double prev = -1.0;
  double prev_change = 1e300;
  for (int n : {2, 8, 32, 128}) {
    RlcTree t;
    const SectionId end = append_wire(t, kInput, w, n);
    const auto model = eed::analyze(t);
    const double tau = model.at(end).sum_rc;
    if (prev >= 0.0) {
      const double change = std::abs(tau - prev);
      EXPECT_LT(change, prev_change);
      prev_change = change;
    }
    prev = tau;
  }
  // Distributed limit: tau = R_tot * C_tot / 2.
  const double r_tot = w.r_per_m * w.length_m;
  const double c_tot = w.c_per_m * w.length_m;
  EXPECT_NEAR(prev, r_tot * c_tot / 2.0, 0.01 * r_tot * c_tot / 2.0);
}

TEST(Segmentation, SuggestedSegmentsScalesWithEdgeRate) {
  const WireSpec w = global_wire_spec();
  const int slow = suggested_segments(w, 1e-9);
  const int fast = suggested_segments(w, 20e-12);
  EXPECT_GE(fast, slow);
  EXPECT_GE(slow, 5);
  EXPECT_LE(fast, 1000);
}

TEST(Segmentation, SuggestedSegmentsRcWire) {
  WireSpec rc = local_wire_spec();
  rc.l_per_m = 0.0;
  EXPECT_EQ(suggested_segments(rc, 1e-10), 5);  // falls back to the minimum
}

TEST(Segmentation, RejectsBadArguments) {
  const WireSpec w = global_wire_spec();
  EXPECT_THROW((void)segment_values(w, 0), std::invalid_argument);
  EXPECT_THROW((void)segment_values(WireSpec{}, 3), std::invalid_argument);
  EXPECT_THROW((void)suggested_segments(w, 0.0), std::invalid_argument);
}

TEST(Segmentation, PresetSpecsAreSane) {
  const WireSpec g = global_wire_spec();
  const WireSpec l = local_wire_spec();
  // Local wires are far more resistive per metre; global wires carry the
  // inductance-significant regime.
  EXPECT_GT(l.r_per_m, 10.0 * g.r_per_m);
  EXPECT_GT(g.l_per_m, 0.0);
  EXPECT_GT(g.c_per_m, 0.0);
}

}  // namespace
}  // namespace relmore::circuit
