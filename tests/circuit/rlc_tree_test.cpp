#include "relmore/circuit/rlc_tree.hpp"

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"

namespace relmore::circuit {
namespace {

RlcTree three_section_line() {
  RlcTree t;
  const SectionId a = t.add_section(kInput, 1.0, 2.0, 3.0, "a");
  const SectionId b = t.add_section(a, 4.0, 5.0, 6.0, "b");
  t.add_section(b, 7.0, 8.0, 9.0, "c");
  return t;
}

TEST(RlcTree, AddAndQuerySections) {
  const RlcTree t = three_section_line();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.section(1).v.resistance, 4.0);
  EXPECT_EQ(t.section(1).parent, 0);
  EXPECT_EQ(t.section(0).parent, kInput);
}

TEST(RlcTree, RootsAndChildren) {
  RlcTree t;
  const SectionId r = t.add_section(kInput, 1.0, 0.0, 1.0);
  const SectionId c1 = t.add_section(r, 1.0, 0.0, 1.0);
  const SectionId c2 = t.add_section(r, 1.0, 0.0, 1.0);
  ASSERT_EQ(t.roots().size(), 1u);
  EXPECT_EQ(t.roots()[0], r);
  ASSERT_EQ(t.children(r).size(), 2u);
  EXPECT_EQ(t.children(r)[0], c1);
  EXPECT_EQ(t.children(r)[1], c2);
  EXPECT_TRUE(t.children(c1).empty());
}

TEST(RlcTree, MultipleRootsAllowed) {
  RlcTree t;
  t.add_section(kInput, 1.0, 0.0, 1.0);
  t.add_section(kInput, 1.0, 0.0, 1.0);
  EXPECT_EQ(t.roots().size(), 2u);
}

TEST(RlcTree, RejectsUnknownParent) {
  RlcTree t;
  EXPECT_THROW(t.add_section(5, 1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_section(-2, 1.0, 0.0, 1.0), std::invalid_argument);
}

TEST(RlcTree, RejectsNegativeValues) {
  RlcTree t;
  EXPECT_THROW(t.add_section(kInput, -1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_section(kInput, 1.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_section(kInput, 1.0, 0.0, -1.0), std::invalid_argument);
}

TEST(RlcTree, ZeroValuesAllowed) {
  RlcTree t;
  EXPECT_NO_THROW(t.add_section(kInput, 0.0, 0.0, 0.0));
}

TEST(RlcTree, LevelsAndDepth) {
  const RlcTree t = three_section_line();
  EXPECT_EQ(t.level(0), 1);
  EXPECT_EQ(t.level(2), 3);
  EXPECT_EQ(t.depth(), 3);
}

TEST(RlcTree, PathFromInput) {
  const RlcTree t = three_section_line();
  const auto path = t.path_from_input(2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 2);
}

TEST(RlcTree, Leaves) {
  RlcTree t;
  const SectionId r = t.add_section(kInput, 1.0, 0.0, 1.0);
  const SectionId a = t.add_section(r, 1.0, 0.0, 1.0);
  const SectionId b = t.add_section(r, 1.0, 0.0, 1.0);
  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0], a);
  EXPECT_EQ(leaves[1], b);
}

TEST(RlcTree, TotalCapacitance) {
  const RlcTree t = three_section_line();
  EXPECT_DOUBLE_EQ(t.total_capacitance(), 18.0);
}

TEST(RlcTree, FindByName) {
  const RlcTree t = three_section_line();
  EXPECT_EQ(t.find_by_name("b"), 1);
  EXPECT_EQ(t.find_by_name("zzz"), kInput);
}

TEST(RlcTree, MutableValues) {
  RlcTree t = three_section_line();
  t.values(0).resistance = 42.0;
  EXPECT_DOUBLE_EQ(t.section(0).v.resistance, 42.0);
}

TEST(RlcTree, OutOfRangeThrows) {
  const RlcTree t = three_section_line();
  EXPECT_THROW((void)t.section(3), std::out_of_range);
  EXPECT_THROW((void)t.children(-1), std::out_of_range);
  EXPECT_THROW((void)t.level(99), std::out_of_range);
}

TEST(RlcTree, DepthOfDeepLineIsLinearTime) {
  // depth() is a single forward scan over the id order. The previous
  // implementation walked root-ward from every leaf (O(n·depth)), which on
  // this 200k-section line would be ~4e10 parent hops — minutes, not the
  // milliseconds this test budget allows.
  const int n = 200000;
  const RlcTree line = make_line(n, {1.0, 1e-12, 1e-15});
  EXPECT_EQ(line.depth(), n);
  EXPECT_EQ(line.level(static_cast<SectionId>(n - 1)), n);
}

TEST(RlcTree, TopologicalOrderIsParentFirst) {
  const RlcTree t = three_section_line();
  const auto order = t.topological_order();
  ASSERT_EQ(order.size(), 3u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const SectionId parent = t.section(order[i]).parent;
    if (parent != kInput) {
      EXPECT_LT(parent, order[i]);
    }
  }
}

}  // namespace
}  // namespace relmore::circuit
