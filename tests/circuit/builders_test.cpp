#include "relmore/circuit/builders.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::circuit {
namespace {

const SectionValues kUnit{10.0, 1e-9, 0.1e-12};

TEST(Builders, LineHasChainTopology) {
  const RlcTree t = make_line(5, kUnit);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.depth(), 5);
  EXPECT_EQ(t.leaves().size(), 1u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(t.section(static_cast<SectionId>(i)).parent, static_cast<SectionId>(i - 1));
  }
}

TEST(Builders, LineRejectsZeroSections) {
  EXPECT_THROW(make_line(0, kUnit), std::invalid_argument);
}

TEST(Builders, BalancedBinaryTreeSizes) {
  // levels n, branching 2 -> 2^n - 1 sections, 2^{n-1} sinks.
  for (int levels = 1; levels <= 5; ++levels) {
    const RlcTree t = make_balanced_tree(levels, 2, kUnit);
    EXPECT_EQ(t.size(), (1u << levels) - 1u) << "levels=" << levels;
    EXPECT_EQ(t.leaves().size(), 1u << (levels - 1)) << "levels=" << levels;
    EXPECT_EQ(t.depth(), levels);
  }
}

TEST(Builders, BalancedTreeBranchingSixteen) {
  // Paper Fig. 13(b): 2 levels, branching 16 -> 16 sinks, 17 sections.
  const RlcTree t = make_balanced_tree(2, 16, kUnit);
  EXPECT_EQ(t.size(), 17u);
  EXPECT_EQ(t.leaves().size(), 16u);
  EXPECT_EQ(t.depth(), 2);
}

TEST(Builders, BalancedTreeRejectsBadArgs) {
  EXPECT_THROW(make_balanced_tree(0, 2, kUnit), std::invalid_argument);
  EXPECT_THROW(make_balanced_tree(2, 0, kUnit), std::invalid_argument);
}

TEST(Builders, PerLevelValuesApplied) {
  const std::vector<SectionValues> levels{{1.0, 1e-9, 1e-12}, {2.0, 2e-9, 2e-12}};
  const RlcTree t = make_balanced_tree_per_level(levels, 2);
  EXPECT_DOUBLE_EQ(t.section(0).v.resistance, 1.0);
  EXPECT_DOUBLE_EQ(t.section(1).v.resistance, 2.0);
  EXPECT_DOUBLE_EQ(t.section(2).v.resistance, 2.0);
}

TEST(Builders, AsymmetricTreeScalesLeftBranch) {
  const double asym = 2.0;
  const RlcTree t = make_asymmetric_tree(3, asym, kUnit);
  EXPECT_EQ(t.size(), 7u);
  // Root's children: left (id 1) has asym x impedance of right (id 2).
  EXPECT_DOUBLE_EQ(t.section(1).v.resistance, asym * t.section(2).v.resistance);
  EXPECT_DOUBLE_EQ(t.section(1).v.inductance, asym * t.section(2).v.inductance);
  EXPECT_DOUBLE_EQ(t.section(1).v.capacitance, t.section(2).v.capacitance / asym);
}

TEST(Builders, AsymmetricTreeWithUnitAsymIsBalanced) {
  const RlcTree t = make_asymmetric_tree(3, 1.0, kUnit);
  for (const auto& s : t.sections()) {
    EXPECT_DOUBLE_EQ(s.v.resistance, kUnit.resistance);
    EXPECT_DOUBLE_EQ(s.v.inductance, kUnit.inductance);
    EXPECT_DOUBLE_EQ(s.v.capacitance, kUnit.capacitance);
  }
}

TEST(Builders, Fig5TreeTopology) {
  SectionId node7 = kInput;
  const RlcTree t = make_fig5_tree(kUnit, &node7);
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.depth(), 3);
  EXPECT_EQ(t.leaves().size(), 4u);
  EXPECT_EQ(node7, t.find_by_name("7"));
  EXPECT_EQ(t.level(node7), 3);
}

TEST(Builders, Fig8TreeHasObservedOutput) {
  SectionId out = kInput;
  const RlcTree t = make_fig8_tree(&out);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(out, t.find_by_name("O"));
  EXPECT_EQ(t.leaves().size(), 3u);
}

TEST(Builders, HTreeDoublesArmsPerLevel) {
  const RlcTree t = make_h_tree(3, kUnit);
  // 1 + 2 + 4 sections.
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.leaves().size(), 4u);
  // Arms halve R, L, C each level.
  EXPECT_DOUBLE_EQ(t.section(1).v.resistance, kUnit.resistance / 2.0);
  EXPECT_DOUBLE_EQ(t.section(3).v.resistance, kUnit.resistance / 4.0);
}

TEST(Builders, CombTreeShape) {
  const RlcTree t = make_comb_tree(4, kUnit, {5.0, 0.5e-9, 0.3e-12});
  EXPECT_EQ(t.size(), 8u);           // 4 spine + 4 teeth
  EXPECT_EQ(t.leaves().size(), 4u);  // every tooth ends in a sink
  // Tooth i hangs off spine i.
  EXPECT_EQ(t.section(1).parent, 0);
  EXPECT_EQ(t.section(3).parent, 2);
  EXPECT_DOUBLE_EQ(t.section(1).v.capacitance, 0.3e-12);
  EXPECT_THROW(make_comb_tree(0, kUnit, kUnit), std::invalid_argument);
}

TEST(Builders, ScaleInductances) {
  RlcTree t = make_line(2, kUnit);
  scale_inductances(t, 3.0);
  EXPECT_DOUBLE_EQ(t.section(0).v.inductance, 3.0 * kUnit.inductance);
  EXPECT_THROW(scale_inductances(t, -1.0), std::invalid_argument);
}

TEST(Builders, ScaleResistances) {
  RlcTree t = make_line(2, kUnit);
  scale_resistances(t, 0.5);
  EXPECT_DOUBLE_EQ(t.section(1).v.resistance, 0.5 * kUnit.resistance);
}

// Property: balanced trees are symmetric — all sinks have identical paths.
class BalancedSymmetrySweep : public ::testing::TestWithParam<int> {};

TEST_P(BalancedSymmetrySweep, AllSinkPathsIdentical) {
  const int branching = GetParam();
  const RlcTree t = make_balanced_tree(3, branching, kUnit);
  const auto sinks = t.leaves();
  const auto ref_path = t.path_from_input(sinks.front());
  for (const SectionId sink : sinks) {
    const auto path = t.path_from_input(sink);
    ASSERT_EQ(path.size(), ref_path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_DOUBLE_EQ(t.section(path[i]).v.resistance,
                       t.section(ref_path[i]).v.resistance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Builders, BalancedSymmetrySweep, ::testing::Values(2, 3, 4, 8, 16));

}  // namespace
}  // namespace relmore::circuit
