#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "relmore/circuit/netlist.hpp"
#include "relmore/eed/model.hpp"

#ifndef RELMORE_TESTDATA_DIR
#error "RELMORE_TESTDATA_DIR must be defined by the build"
#endif

namespace relmore::circuit {
namespace {

std::ifstream open_data(const std::string& name) {
  std::ifstream f(std::string(RELMORE_TESTDATA_DIR) + "/" + name);
  EXPECT_TRUE(f.good()) << "missing testdata file " << name;
  return f;
}

TEST(Testdata, Fig5NetlistLoadsAndMatchesPaperShape) {
  auto f = open_data("fig5_balanced.net");
  const RlcTree t = read_tree_netlist(f);
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.depth(), 3);
  EXPECT_EQ(t.leaves().size(), 4u);
  const SectionId node7 = t.find_by_name("7");
  ASSERT_NE(node7, kInput);
  const auto model = eed::analyze(t);
  // All four sinks identical by symmetry.
  for (SectionId s : t.leaves()) {
    EXPECT_NEAR(model.at(s).zeta, model.at(node7).zeta, 1e-12);
  }
}

TEST(Testdata, Fig8NetlistMatchesBuilder) {
  auto f = open_data("fig8_standin.net");
  const RlcTree t = read_tree_netlist(f);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_NE(t.find_by_name("O"), kInput);
  EXPECT_EQ(t.leaves().size(), 3u);
  const auto model = eed::analyze(t);
  const auto& nm = model.at(t.find_by_name("O"));
  EXPECT_GT(nm.zeta, 0.1);
  EXPECT_LT(nm.zeta, 1.0);  // documented as moderately underdamped
}

TEST(Testdata, SpiceDeckLoads) {
  auto f = open_data("global_net.sp");
  const RlcTree t = read_spice(f);
  EXPECT_EQ(t.size(), 4u);  // four collapsed sections
  EXPECT_EQ(t.leaves().size(), 2u);
  // The RC-only stub kept L = 0.
  bool has_rc_only = false;
  for (const auto& s : t.sections()) {
    if (s.v.inductance == 0.0) has_rc_only = true;
  }
  EXPECT_TRUE(has_rc_only);
  EXPECT_NEAR(t.total_capacitance(), (0.1 + 0.12 + 0.2 + 0.3) * 1e-12, 1e-18);
}

}  // namespace
}  // namespace relmore::circuit
