#include "relmore/circuit/netlist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "relmore/circuit/builders.hpp"

namespace relmore::circuit {
namespace {

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_value("12.5"), 12.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3e2"), -300.0);
}

TEST(SpiceValue, SiSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("2n"), 2e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("0.2p"), 0.2e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("5f"), 5e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("4m"), 4e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2k"), 2e3);
  EXPECT_DOUBLE_EQ(parse_spice_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
}

TEST(SpiceValue, UnitLettersTolerated) {
  EXPECT_DOUBLE_EQ(parse_spice_value("2nH"), 2e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("0.2pF"), 0.2e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("25ohm"), 25.0);
}

TEST(SpiceValue, RejectsGarbage) {
  EXPECT_THROW(parse_spice_value(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("1x"), std::invalid_argument);
}

TEST(TreeNetlist, RoundTrip) {
  SectionId out = kInput;
  const RlcTree original = make_fig8_tree(&out);
  std::stringstream ss;
  write_tree_netlist(original, ss);
  const RlcTree back = read_tree_netlist(ss);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    EXPECT_EQ(back.section(id).parent, original.section(id).parent);
    EXPECT_DOUBLE_EQ(back.section(id).v.resistance, original.section(id).v.resistance);
    EXPECT_DOUBLE_EQ(back.section(id).v.inductance, original.section(id).v.inductance);
    EXPECT_DOUBLE_EQ(back.section(id).v.capacitance, original.section(id).v.capacitance);
    EXPECT_EQ(back.section(id).name, original.section(id).name);
  }
}

TEST(TreeNetlist, ParsesWithCommentsAndSuffixes) {
  std::istringstream is(
      "# a comment line\n"
      "section root - R=25 L=2n C=0.2p  # trailing comment\n"
      "section sink root R=10 L=1nH C=0.1pF\n");
  const RlcTree t = read_tree_netlist(is);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.section(0).v.inductance, 2e-9);
  EXPECT_DOUBLE_EQ(t.section(1).v.capacitance, 0.1e-12);
  EXPECT_EQ(t.section(1).parent, 0);
}

TEST(TreeNetlist, ErrorsCarryLineNumbers) {
  std::istringstream bad_parent("section a missing_parent R=1 L=0 C=1\n");
  try {
    read_tree_netlist(bad_parent);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(TreeNetlist, RejectsDuplicateNames) {
  std::istringstream is(
      "section a - R=1 L=0 C=1\n"
      "section a - R=1 L=0 C=1\n");
  EXPECT_THROW(read_tree_netlist(is), std::invalid_argument);
}

TEST(TreeNetlist, RejectsMalformedKeys) {
  std::istringstream is("section a - R=1 L=0 X=1\n");
  EXPECT_THROW(read_tree_netlist(is), std::invalid_argument);
}

TEST(Spice, WriteContainsAllElements) {
  const RlcTree t = make_line(2, {25.0, 2e-9, 0.2e-12});
  std::ostringstream os;
  SpiceWriteOptions opts;
  opts.tran_stop_seconds = 1e-9;
  write_spice(t, os, opts);
  const std::string deck = os.str();
  EXPECT_NE(deck.find("Vin"), std::string::npos);
  EXPECT_NE(deck.find("R0"), std::string::npos);
  EXPECT_NE(deck.find("L1"), std::string::npos);
  EXPECT_NE(deck.find("C1"), std::string::npos);
  EXPECT_NE(deck.find(".tran"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(Spice, RoundTripThroughSpiceDeck) {
  SectionId out = kInput;
  const RlcTree original = make_fig8_tree(&out);
  std::stringstream deck;
  write_spice(original, deck);
  const RlcTree back = read_spice(deck);
  ASSERT_EQ(back.size(), original.size());
  // Topology may renumber, but the multiset of (R, L, C) and total cap match.
  EXPECT_NEAR(back.total_capacitance(), original.total_capacitance(), 1e-18);
  EXPECT_EQ(back.leaves().size(), original.leaves().size());
  EXPECT_EQ(back.depth(), original.depth());
}

TEST(Spice, ReadsRcDeckWithoutInductors) {
  std::istringstream deck(
      "V1 in 0 PWL(0 0 1p 1)\n"
      "R1 in n1 100\n"
      "C1 n1 0 1p\n"
      "R2 n1 n2 50\n"
      "C2 n2 0 0.5p\n");
  const RlcTree t = read_spice(deck);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.section(0).v.resistance, 100.0);
  EXPECT_DOUBLE_EQ(t.section(0).v.inductance, 0.0);
  EXPECT_DOUBLE_EQ(t.section(1).v.capacitance, 0.5e-12);
}

TEST(Spice, MergesSeriesRLIntoOneSection) {
  std::istringstream deck(
      "V1 in 0 PWL(0 0 1p 1)\n"
      "R1 in mid 100\n"
      "L1 mid n1 2n\n"
      "C1 n1 0 1p\n");
  const RlcTree t = read_spice(deck);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.section(0).v.resistance, 100.0);
  EXPECT_DOUBLE_EQ(t.section(0).v.inductance, 2e-9);
  EXPECT_DOUBLE_EQ(t.section(0).v.capacitance, 1e-12);
}

TEST(Spice, RejectsUngroundedCapacitor) {
  std::istringstream deck(
      "V1 in 0 PWL(0 0 1p 1)\n"
      "R1 in n1 100\n"
      "C1 n1 n2 1p\n");
  EXPECT_THROW(read_spice(deck), std::invalid_argument);
}

TEST(Spice, RejectsDeckWithoutInput) {
  std::istringstream deck("R1 a b 100\nC1 b 0 1p\n");
  EXPECT_THROW(read_spice(deck), std::invalid_argument);
}

TEST(Spice, RejectsLoop) {
  std::istringstream deck(
      "V1 in 0 PWL(0 0 1p 1)\n"
      "R1 in a 100\n"
      "R2 a b 100\n"
      "R3 b in 100\n"
      "C1 a 0 1p\n"
      "C2 b 0 1p\n");
  EXPECT_THROW(read_spice(deck), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::circuit
