// Unit coverage for the resilience primitives (PR 9): util::Deadline /
// CancelToken / RunControl semantics, the deterministic FaultInjector
// (grammar, phase determinism, fire caps, disarm), and the engines'
// documented stop behavior — BatchedAnalyzer keeps completed lanes
// bitwise-identical and flags the rest kFaultNotRun; BatchSimulator
// aborts whole calls; the corpus ladder retries transients, falls back
// batched->scalar, quarantines, and names every unfinished net.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/batch_sim.hpp"
#include "relmore/sta/corpus.hpp"
#include "relmore/sta/synthetic.hpp"
#include "relmore/util/deadline.hpp"
#include "relmore/util/diagnostics.hpp"
#include "relmore/util/fault_injector.hpp"

namespace rc = relmore::circuit;
namespace ru = relmore::util;
namespace eed = relmore::eed;
namespace eng = relmore::engine;
namespace sim = relmore::sim;
namespace sta = relmore::sta;

using ru::ErrorCode;
using ru::FaultInjector;
using ru::FaultSite;

namespace {

/// Every test that arms the process-global injector disarms on exit, so
/// a failing assertion can't leak faults into the next test.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::instance().disarm_all(); }
  ~InjectorGuard() { FaultInjector::instance().disarm_all(); }
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

rc::RlcTree small_tree() { return rc::make_line(6, {100.0, 1e-10, 1e-14}); }

// --- Deadline / CancelToken / RunControl -----------------------------------

TEST(Deadline, DefaultNeverExpires) {
  const ru::Deadline none;
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  EXPECT_FALSE(ru::Deadline::none().armed());
}

TEST(Deadline, AfterBudgetExpires) {
  const ru::Deadline past = ru::Deadline::after(std::chrono::milliseconds(-1));
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
  const ru::Deadline future = ru::Deadline::after(std::chrono::hours(1));
  EXPECT_TRUE(future.armed());
  EXPECT_FALSE(future.expired());
}

TEST(CancelToken, LatchesForever) {
  ru::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(RunControl, CancellationWinsOverDeadline) {
  ru::CancelToken token;
  token.cancel();
  const ru::RunControl both{ru::Deadline::after(std::chrono::milliseconds(-1)), &token};
  EXPECT_EQ(both.stop_code(), ErrorCode::kCancelled);
  EXPECT_EQ(both.stop_status().code(), ErrorCode::kCancelled);
  const ru::RunControl deadline_only{ru::Deadline::after(std::chrono::milliseconds(-1)), nullptr};
  EXPECT_EQ(deadline_only.stop_code(), ErrorCode::kDeadlineExceeded);
  const ru::RunControl disarmed{};
  EXPECT_FALSE(disarmed.armed());
  EXPECT_EQ(disarmed.stop_code(), ErrorCode::kOk);
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, DisarmedNeverFires) {
  InjectorGuard guard;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(ru::fault_should_fire(FaultSite::kArenaAlloc));
  }
  EXPECT_EQ(FaultInjector::instance().fire_count(FaultSite::kArenaAlloc), 0u);
}

TEST(FaultInjector, EveryNIsPeriodicAndDeterministic) {
  InjectorGuard guard;
  ASSERT_TRUE(FaultInjector::instance().arm_spec("pool-abort:every=5:seed=42").is_ok());
  std::vector<int> first_run;
  for (int i = 0; i < 20; ++i) {
    if (ru::fault_should_fire(FaultSite::kPoolAbort)) first_run.push_back(i);
  }
  EXPECT_EQ(first_run.size(), 4u);  // 20 hits / every=5
  for (std::size_t k = 1; k < first_run.size(); ++k) {
    EXPECT_EQ(first_run[k] - first_run[k - 1], 5);
  }
  // Re-arming the same spec resets counters: the fire pattern replays.
  ASSERT_TRUE(FaultInjector::instance().arm_spec("pool-abort:every=5:seed=42").is_ok());
  std::vector<int> second_run;
  for (int i = 0; i < 20; ++i) {
    if (ru::fault_should_fire(FaultSite::kPoolAbort)) second_run.push_back(i);
  }
  EXPECT_EQ(first_run, second_run);
  // A different seed shifts the phase but keeps the period.
  ASSERT_TRUE(FaultInjector::instance().arm_spec("pool-abort:every=5:seed=43").is_ok());
  std::vector<int> shifted;
  for (int i = 0; i < 20; ++i) {
    if (ru::fault_should_fire(FaultSite::kPoolAbort)) shifted.push_back(i);
  }
  EXPECT_EQ(shifted.size(), 4u);
}

TEST(FaultInjector, LimitCapsFires) {
  InjectorGuard guard;
  ASSERT_TRUE(FaultInjector::instance().arm_spec("arena-alloc:every=1:limit=3").is_ok());
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (ru::fault_should_fire(FaultSite::kArenaAlloc)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(FaultInjector::instance().fire_count(FaultSite::kArenaAlloc), 3u);
}

TEST(FaultInjector, ArmedSitesAreIndependent) {
  InjectorGuard guard;
  ASSERT_TRUE(
      FaultInjector::instance().arm_spec("arena-alloc:every=1:limit=1,pool-delay:every=1:limit=2")
          .is_ok());
  EXPECT_TRUE(ru::fault_should_fire(FaultSite::kArenaAlloc));
  EXPECT_FALSE(ru::fault_should_fire(FaultSite::kArenaAlloc));
  EXPECT_FALSE(ru::fault_should_fire(FaultSite::kPoolAbort));  // never armed
  EXPECT_TRUE(ru::fault_should_fire(FaultSite::kPoolDelay));
  EXPECT_TRUE(ru::fault_should_fire(FaultSite::kPoolDelay));
  EXPECT_FALSE(ru::fault_should_fire(FaultSite::kPoolDelay));
}

TEST(FaultInjector, MalformedSpecsRejected) {
  InjectorGuard guard;
  EXPECT_FALSE(FaultInjector::instance().arm_spec("no-such-site:every=1").is_ok());
  EXPECT_FALSE(FaultInjector::instance().arm_spec("arena-alloc:every=0").is_ok());
  EXPECT_FALSE(FaultInjector::instance().arm_spec("arena-alloc:every=abc").is_ok());
  EXPECT_FALSE(FaultInjector::instance().arm_spec("arena-alloc:bogus=1").is_ok());
  EXPECT_FALSE(FaultInjector::instance().arm_spec("arena-alloc").is_ok());
  EXPECT_FALSE(ru::fault_should_fire(FaultSite::kArenaAlloc));
}

TEST(FaultInjector, SiteNamesRoundTrip) {
  EXPECT_STREQ(ru::fault_site_name(FaultSite::kArenaAlloc), "arena-alloc");
  EXPECT_STREQ(ru::fault_site_name(FaultSite::kSnapshotNan), "snapshot-nan");
  EXPECT_STREQ(ru::fault_site_name(FaultSite::kPoolDelay), "pool-delay");
  EXPECT_STREQ(ru::fault_site_name(FaultSite::kPoolAbort), "pool-abort");
  EXPECT_STREQ(ru::fault_site_name(FaultSite::kParseTruncate), "parse-truncate");
  EXPECT_EQ(FaultInjector::fire_status(FaultSite::kPoolAbort).code(), ErrorCode::kInjectedFault);
}

// --- BatchedAnalyzer stop semantics -----------------------------------------

TEST(BatchedAnalyzerStop, CancelledUpFrontFlagsEverySampleNotRun) {
  const rc::FlatTree flat(small_tree());
  ru::CancelToken token;
  token.cancel();
  eng::BatchedAnalyzer batch(flat, 4);
  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  batch.set_run_control({ru::Deadline::none(), &token});
  batch.resize(10);
  const eng::BatchedModels models = batch.analyze();
  EXPECT_TRUE(models.stopped());
  EXPECT_EQ(models.stop_status().code(), ErrorCode::kCancelled);
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_NE(models.fault_flags(s) & eed::kFaultNotRun, 0) << "sample " << s;
  }
}

TEST(BatchedAnalyzerStop, ExpiredDeadlineReportsDeadlineExceeded) {
  const rc::FlatTree flat(small_tree());
  eng::BatchedAnalyzer batch(flat, 2);
  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  batch.set_run_control({ru::Deadline::after(std::chrono::milliseconds(-1)), nullptr});
  batch.resize(5);
  const eng::BatchedModels models = batch.analyze();
  EXPECT_TRUE(models.stopped());
  EXPECT_EQ(models.stop_status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(BatchedAnalyzerStop, ThrowPolicyRaisesFaultError) {
  const rc::FlatTree flat(small_tree());
  ru::CancelToken token;
  token.cancel();
  eng::BatchedAnalyzer batch(flat, 4);
  batch.set_run_control({ru::Deadline::none(), &token});
  batch.resize(4);
  try {
    (void)batch.analyze();
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(BatchedAnalyzerStop, DisarmedControlChangesNothing) {
  const rc::FlatTree flat(small_tree());
  eng::BatchedAnalyzer plain(flat, 4);
  plain.resize(6);
  const eng::BatchedModels want = plain.analyze();
  eng::BatchedAnalyzer armed(flat, 4);
  armed.set_run_control({ru::Deadline::after(std::chrono::hours(1)), nullptr});
  armed.resize(6);
  const eng::BatchedModels got = armed.analyze();
  EXPECT_FALSE(got.stopped());
  const auto probe = static_cast<rc::SectionId>(flat.size() - 1);
  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(bits(want.delay_50(s, probe)), bits(got.delay_50(s, probe)));
  }
}

// --- BatchSimulator stop semantics ------------------------------------------

TEST(BatchSimulatorStop, CancelAbortsWholeCall) {
  const rc::FlatTree flat(small_tree());
  ru::CancelToken token;
  token.cancel();
  sim::BatchSimulator batch(flat, 2);
  batch.resize(2);
  sim::TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-12;
  opts.run_control = {ru::Deadline::none(), &token};
  try {
    (void)batch.simulate(opts);
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

// --- corpus ladder ----------------------------------------------------------

sta::Design small_design() {
  sta::SyntheticSpec spec;
  spec.nets = 24;
  spec.topo_classes = 4;
  spec.chain_depth = 3;
  auto design = sta::make_synthetic_design_checked(spec);
  EXPECT_TRUE(design.is_ok()) << design.status().message();
  return std::move(design).value();
}

TEST(CorpusLadder, ExpiredDeadlineNamesEveryUnfinishedNet) {
  const sta::Design design = small_design();
  sta::AnalyzeOptions options;
  options.threads = 2;
  options.deadline = ru::Deadline::after(std::chrono::milliseconds(-1));
  const auto corpus = sta::analyze_corpus_checked(design, options);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().message();
  const sta::CorpusModels& models = corpus.value();
  EXPECT_EQ(models.stop_status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(models.incomplete_nets, design.nets.size());
  std::size_t named = 0;
  for (const ru::Diagnostic& d : models.diagnostics.entries()) {
    if (d.code == ErrorCode::kDeadlineExceeded && !d.net.empty()) ++named;
  }
  EXPECT_EQ(named, design.nets.size());
}

TEST(CorpusLadder, ThrowPolicyReturnsStopStatus) {
  const sta::Design design = small_design();
  sta::AnalyzeOptions options;
  options.fault_policy = ru::FaultPolicy::kThrow;
  ru::CancelToken token;
  token.cancel();
  options.cancel = &token;
  const auto corpus = sta::analyze_corpus_checked(design, options);
  ASSERT_FALSE(corpus.is_ok());
  EXPECT_EQ(corpus.status().code(), ErrorCode::kCancelled);
}

TEST(CorpusLadder, TransientPoolFaultIsRetriedAndSurfaced) {
  InjectorGuard guard;
  const sta::Design design = small_design();
  // Fault-free reference first.
  sta::AnalyzeOptions options;
  options.threads = 2;
  const auto clean = sta::analyze_corpus_checked(design, options);
  ASSERT_TRUE(clean.is_ok());
  ASSERT_EQ(clean.value().faulted_nets, 0u);

  ASSERT_TRUE(FaultInjector::instance().arm_spec("pool-abort:every=3:limit=1").is_ok());
  const auto faulty = sta::analyze_corpus_checked(design, options);
  ASSERT_TRUE(faulty.is_ok()) << faulty.status().message();
  const sta::CorpusModels& models = faulty.value();
  EXPECT_EQ(FaultInjector::instance().fire_count(FaultSite::kPoolAbort), 1u);
  // The single injected abort is retried away: no net faults, and the
  // event is surfaced exactly once as a warning diagnostic.
  EXPECT_EQ(models.faulted_nets, 0u);
  EXPECT_EQ(models.incomplete_nets, 0u);
  std::size_t surfaced = 0;
  for (const ru::Diagnostic& d : models.diagnostics.entries()) {
    if (d.code == ErrorCode::kInjectedFault) ++surfaced;
  }
  EXPECT_EQ(surfaced, 1u);
  // Healthy nets are bitwise-identical to the fault-free run.
  ASSERT_EQ(models.nets.size(), clean.value().nets.size());
  for (std::size_t ni = 0; ni < models.nets.size(); ++ni) {
    const sta::NetModels& a = clean.value().nets[ni];
    const sta::NetModels& b = models.nets[ni];
    ASSERT_EQ(a.taps.size(), b.taps.size());
    for (std::size_t t = 0; t < a.taps.size(); ++t) {
      EXPECT_EQ(bits(a.taps[t].sum_rc), bits(b.taps[t].sum_rc));
      EXPECT_EQ(bits(a.taps[t].sum_lc), bits(b.taps[t].sum_lc));
    }
  }
}

TEST(CorpusLadder, PersistentFaultQuarantinesInsteadOfThrowing) {
  InjectorGuard guard;
  const sta::Design design = small_design();
  // Unlimited every=1 pool aborts: every attempt of every phase dies, so
  // the ladder must bottom out in quarantine (not hang, not throw).
  ASSERT_TRUE(FaultInjector::instance().arm_spec("pool-abort:every=1").is_ok());
  sta::AnalyzeOptions options;
  options.threads = 2;
  options.max_attempts = 2;
  const auto corpus = sta::analyze_corpus_checked(design, options);
  FaultInjector::instance().disarm_all();
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().message();
  const sta::CorpusModels& models = corpus.value();
  EXPECT_EQ(models.faulted_nets, design.nets.size());
  EXPECT_EQ(models.quarantined_nets, design.nets.size());
  EXPECT_GT(models.fallback_nets, 0u);
  for (const sta::NetModels& slot : models.nets) {
    EXPECT_TRUE(slot.faulted);
    EXPECT_EQ(slot.status.code(), ErrorCode::kInjectedFault);
  }
}

TEST(CorpusLadder, ArenaAllocFailureIsTransient) {
  InjectorGuard guard;
  const sta::Design design = small_design();
  sta::AnalyzeOptions options;
  options.threads = 2;
  const auto clean = sta::analyze_corpus_checked(design, options);
  ASSERT_TRUE(clean.is_ok());
  ASSERT_TRUE(FaultInjector::instance().arm_spec("arena-alloc:every=2:limit=1").is_ok());
  const auto faulty = sta::analyze_corpus_checked(design, options);
  ASSERT_TRUE(faulty.is_ok()) << faulty.status().message();
  EXPECT_EQ(faulty.value().faulted_nets, 0u);
  EXPECT_EQ(faulty.value().incomplete_nets, 0u);
  EXPECT_EQ(FaultInjector::instance().fire_count(FaultSite::kArenaAlloc), 1u);
}

}  // namespace
