// Unit tests for the diagnostics taxonomy (util/diagnostics.hpp): codes,
// Status, Result, FaultError, DiagnosticsReport, and the composite value
// predicate every guard in the pipeline shares.

#include "relmore/util/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace ru = relmore::util;

TEST(ErrorCode, NamesAreStableAndDistinct) {
  EXPECT_STREQ(ru::error_code_name(ru::ErrorCode::kOk), "ok");
  EXPECT_STREQ(ru::error_code_name(ru::ErrorCode::kNegativeValue), "negative-value");
  EXPECT_STREQ(ru::error_code_name(ru::ErrorCode::kNonFiniteValue), "non-finite-value");
  EXPECT_STREQ(ru::error_code_name(ru::ErrorCode::kParseError), "parse-error");
  EXPECT_STREQ(ru::error_code_name(ru::ErrorCode::kNonFiniteMoment), "non-finite-moment");
  EXPECT_STREQ(ru::error_code_name(ru::ErrorCode::kTransactionState), "transaction-state");
}

TEST(FaultPolicy, Names) {
  EXPECT_STREQ(ru::fault_policy_name(ru::FaultPolicy::kThrow), "throw");
  EXPECT_STREQ(ru::fault_policy_name(ru::FaultPolicy::kClampAndFlag), "clamp-and-flag");
  EXPECT_STREQ(ru::fault_policy_name(ru::FaultPolicy::kSkipAndFlag), "skip-and-flag");
}

TEST(Status, DefaultIsOk) {
  const ru::Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ru::ErrorCode::kOk);
  EXPECT_TRUE(s.to_string().empty());
}

TEST(Status, CarriesCodeNodeAndLine) {
  const ru::Status s(ru::ErrorCode::kParseError, "bad token", /*node=*/-1, /*line=*/7);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.line(), 7);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("parse-error"), std::string::npos);
  EXPECT_NE(text.find("line 7"), std::string::npos);
  EXPECT_NE(text.find("bad token"), std::string::npos);
}

TEST(FaultError, IsInvalidArgumentAndCarriesStatus) {
  const ru::FaultError err(
      ru::Status(ru::ErrorCode::kNegativeMoment, "SL went negative", /*node=*/3));
  const std::invalid_argument& base = err;  // must stay catchable as before
  EXPECT_NE(std::string(base.what()).find("negative-moment"), std::string::npos);
  EXPECT_EQ(err.code(), ru::ErrorCode::kNegativeMoment);
  EXPECT_EQ(err.node(), 3);
}

TEST(Result, ValuePathAndErrorPath) {
  const ru::Result<double> good(2.5);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 2.5);
  EXPECT_EQ(good.value_or(-1.0), 2.5);

  const ru::Result<double> bad(ru::Status(ru::ErrorCode::kValueOutOfRange, "too big"));
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ru::ErrorCode::kValueOutOfRange);
  EXPECT_EQ(bad.value_or(-1.0), -1.0);
  EXPECT_THROW((void)bad.value(), ru::FaultError);
  EXPECT_THROW((void)bad.value(), std::invalid_argument);
}

TEST(DiagnosticsReport, CountsErrorsAndWarningsSeparately) {
  ru::DiagnosticsReport report;
  EXPECT_TRUE(report.is_ok());
  EXPECT_TRUE(report.to_status().is_ok());

  ru::Diagnostic warn;
  warn.code = ru::ErrorCode::kZeroTotalCapacitance;
  warn.message = "no load";
  warn.warning = true;
  report.add(warn);
  EXPECT_TRUE(report.is_ok());  // warnings never fail validation
  EXPECT_EQ(report.warning_count(), 1u);

  ru::Diagnostic err;
  err.code = ru::ErrorCode::kNonFiniteValue;
  err.message = "resistance = nan";
  err.node = 4;
  err.path = "s0/s4";
  report.add(err);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.error_count(), 1u);
  ASSERT_EQ(report.entries().size(), 2u);

  const ru::Status first = report.to_status();
  EXPECT_EQ(first.code(), ru::ErrorCode::kNonFiniteValue);
  EXPECT_EQ(first.node(), 4);

  const std::string text = report.to_string();
  EXPECT_NE(text.find("non-finite-value"), std::string::npos);
  EXPECT_NE(text.find("s0/s4"), std::string::npos);
}

TEST(ValidElementValue, AcceptsFiniteNonNegativeOnly) {
  EXPECT_TRUE(ru::valid_element_value(0.0));
  EXPECT_TRUE(ru::valid_element_value(-0.0));
  EXPECT_TRUE(ru::valid_element_value(1.5e-12));
  EXPECT_TRUE(ru::valid_element_value(std::numeric_limits<double>::max()));
  EXPECT_FALSE(ru::valid_element_value(-1e-300));
  EXPECT_FALSE(ru::valid_element_value(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(ru::valid_element_value(-std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(ru::valid_element_value(std::nan("")));
}
