// circuit::validate — structural and value validation over both storage
// layouts, with node paths in the findings.

#include "relmore/circuit/validate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"

namespace rc = relmore::circuit;
namespace ru = relmore::util;

namespace {

rc::RlcTree small_tree() {
  rc::RlcTree t;
  const rc::SectionId a = t.add_section(rc::kInput, {10.0, 1e-9, 1e-13}, "a");
  const rc::SectionId b = t.add_section(a, {20.0, 2e-9, 2e-13}, "b");
  t.add_section(b, {30.0, 3e-9, 3e-13}, "sink");
  return t;
}

bool has_code(const ru::DiagnosticsReport& report, ru::ErrorCode code) {
  for (const ru::Diagnostic& d : report.entries()) {
    if (d.code == code) return true;
  }
  return false;
}

}  // namespace

TEST(Validate, CleanTreePasses) {
  const ru::DiagnosticsReport report = rc::validate(small_tree());
  EXPECT_TRUE(report.is_ok());
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(Validate, PaperTreesPass) {
  const rc::RlcTree fig8 = rc::make_fig8_tree();
  EXPECT_TRUE(rc::validate(fig8).is_ok());
  EXPECT_TRUE(rc::validate(rc::FlatTree(fig8)).is_ok());
}

TEST(Validate, EmptyTree) {
  const ru::DiagnosticsReport report = rc::validate(rc::RlcTree{});
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.to_status().code(), ru::ErrorCode::kEmptyTree);
}

TEST(Validate, NonFiniteValueReportsNodeAndPath) {
  rc::RlcTree t = small_tree();
  t.values(1).inductance = std::nan("");  // mutable access bypasses add_section
  const ru::DiagnosticsReport report = rc::validate(t);
  ASSERT_FALSE(report.is_ok());
  const ru::Status s = report.to_status();
  EXPECT_EQ(s.code(), ru::ErrorCode::kNonFiniteValue);
  EXPECT_EQ(s.node(), 1);
  EXPECT_NE(s.message().find("a/b"), std::string::npos);  // input->node path
}

TEST(Validate, NegativeAndInfiniteValues) {
  rc::RlcTree t = small_tree();
  t.values(0).resistance = -5.0;
  t.values(2).capacitance = std::numeric_limits<double>::infinity();
  const ru::DiagnosticsReport report = rc::validate(t);
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_TRUE(has_code(report, ru::ErrorCode::kNegativeValue));
  EXPECT_TRUE(has_code(report, ru::ErrorCode::kNonFiniteValue));
}

TEST(Validate, DuplicateNames) {
  rc::RlcTree t;
  const rc::SectionId a = t.add_section(rc::kInput, {1.0, 0.0, 1e-13}, "n");
  t.add_section(a, {1.0, 0.0, 1e-13}, "n");
  const ru::DiagnosticsReport report = rc::validate(t);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.to_status().code(), ru::ErrorCode::kDuplicateName);
}

TEST(Validate, EmptyNamesAreNotDuplicates) {
  rc::RlcTree t;
  const rc::SectionId a = t.add_section(rc::kInput, {1.0, 0.0, 1e-13});
  t.add_section(a, {1.0, 0.0, 1e-13});
  EXPECT_TRUE(rc::validate(t).is_ok());
}

TEST(Validate, ZeroTotalCapacitanceIsAWarning) {
  rc::RlcTree t;
  t.add_section(rc::kInput, {1.0, 1e-9, 0.0}, "stub");
  const ru::DiagnosticsReport report = rc::validate(t);
  EXPECT_TRUE(report.is_ok());  // warning only
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_TRUE(has_code(report, ru::ErrorCode::kZeroTotalCapacitance));
}

TEST(Validate, DepthLimit) {
  rc::RlcTree t;
  rc::SectionId cur = rc::kInput;
  for (int i = 0; i < 10; ++i) cur = t.add_section(cur, {1.0, 0.0, 1e-13});
  rc::ValidateLimits limits;
  limits.max_depth = 5;
  const ru::DiagnosticsReport report = rc::validate(t, limits);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.to_status().code(), ru::ErrorCode::kDepthLimit);
  EXPECT_TRUE(rc::validate(t).is_ok());  // default limits are generous
}

TEST(Validate, SizeLimit) {
  rc::ValidateLimits limits;
  limits.max_sections = 2;
  const ru::DiagnosticsReport report = rc::validate(small_tree(), limits);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.to_status().code(), ru::ErrorCode::kSizeLimit);
}

TEST(Validate, FlatTreeSeesTheSameFaults) {
  rc::RlcTree t = small_tree();
  t.values(2).resistance = std::nan("");
  const rc::FlatTree flat(t);
  const ru::DiagnosticsReport report = rc::validate(flat);
  ASSERT_FALSE(report.is_ok());
  const ru::Status s = report.to_status();
  EXPECT_EQ(s.code(), ru::ErrorCode::kNonFiniteValue);
  EXPECT_EQ(s.node(), 2);
  EXPECT_NE(s.message().find("a/b/sink"), std::string::npos);
}

TEST(NodePath, UsesNamesWithIdFallback) {
  rc::RlcTree t;
  const rc::SectionId a = t.add_section(rc::kInput, {1.0, 0.0, 1e-13}, "root");
  const rc::SectionId b = t.add_section(a, {1.0, 0.0, 1e-13});  // unnamed -> id
  const rc::SectionId c = t.add_section(b, {1.0, 0.0, 1e-13}, "sink");
  EXPECT_EQ(rc::node_path(t, c), "root/1/sink");
  EXPECT_EQ(rc::node_path(t, a), "root");
}
