// Fault-injection suite: every public entry point of the analysis pipeline
// fed NaN/Inf/negative values and malformed decks, asserting the documented
// Status/exception surface — and, for the transactional engine, that a
// rolled-back (or throwing) edit leaves the engine bitwise-identical to its
// prior state.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/netlist.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/diagnostics.hpp"

namespace rc = relmore::circuit;
namespace ru = relmore::util;
namespace eed = relmore::eed;
namespace eng = relmore::engine;

namespace {

const double kNaN = std::nan("");
const double kInf = std::numeric_limits<double>::infinity();

rc::RlcTree two_root_forest() {
  // Root 0 carries a small subtree (sections 0 and 2); section 1 is an
  // independent root whose values never influence sections 0/2 — poisoning
  // it must leave their results bitwise-untouched.
  rc::RlcTree t;
  const rc::SectionId a = t.add_section(rc::kInput, {10.0, 1e-9, 1e-13}, "a");
  t.add_section(rc::kInput, {5.0, 2e-9, 2e-13}, "b");
  t.add_section(a, {20.0, 3e-9, 3e-13}, "a1");
  return t;
}

void expect_node_equal(const eed::NodeModel& x, const eed::NodeModel& y) {
  EXPECT_EQ(x.sum_rc, y.sum_rc);
  EXPECT_EQ(x.sum_lc, y.sum_lc);
  EXPECT_EQ(x.zeta, y.zeta);
  EXPECT_EQ(x.omega_n, y.omega_n);
}

void expect_model_equal(const eed::TreeModel& x, const eed::TreeModel& y) {
  ASSERT_EQ(x.nodes.size(), y.nodes.size());
  for (std::size_t i = 0; i < x.nodes.size(); ++i) {
    expect_node_equal(x.nodes[i], y.nodes[i]);
    EXPECT_EQ(x.load_capacitance[i], y.load_capacitance[i]);
  }
}

}  // namespace

// --- parse_spice_value -------------------------------------------------------

TEST(ParseSpiceValue, AcceptsScaledValuesAndUnits) {
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("2n"), 2e-9);
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("10k"), 1e4);
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("5pF"), 5e-12);
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("4.7uH"), 4.7e-6);
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("3mohm"), 3e-3);
  EXPECT_DOUBLE_EQ(rc::parse_spice_value("-1.5"), -1.5);  // sign is the caller's problem
}

TEST(ParseSpiceValue, RejectsTrailingGarbage) {
  // ("0xff" is absent: strtod accepts hex floats, so it parses as 255.)
  for (const char* bad : {"2nq", "1e", "3..5", "1x", "12 34"}) {
    const ru::Result<double> res = rc::parse_spice_value_checked(bad);
    ASSERT_FALSE(res.is_ok()) << bad;
    EXPECT_EQ(res.status().code(), ru::ErrorCode::kParseError) << bad;
    EXPECT_THROW((void)rc::parse_spice_value(bad), std::invalid_argument) << bad;
  }
}

TEST(ParseSpiceValue, RejectsEmptyAndNonNumeric) {
  for (const char* bad : {"", "abc", "=", "--1"}) {
    const ru::Result<double> res = rc::parse_spice_value_checked(bad);
    ASSERT_FALSE(res.is_ok()) << bad;
    EXPECT_EQ(res.status().code(), ru::ErrorCode::kParseError) << bad;
  }
}

TEST(ParseSpiceValue, RejectsNonFiniteSpellings) {
  for (const char* bad : {"nan", "NaN", "inf", "INF", "infinity"}) {
    const ru::Result<double> res = rc::parse_spice_value_checked(bad);
    ASSERT_FALSE(res.is_ok()) << bad;
    EXPECT_EQ(res.status().code(), ru::ErrorCode::kParseError) << bad;
  }
}

TEST(ParseSpiceValue, RejectsOutOfRangeMagnitudes) {
  for (const char* bad : {"1e999", "-1e999", "9e307k"}) {
    const ru::Result<double> res = rc::parse_spice_value_checked(bad);
    ASSERT_FALSE(res.is_ok()) << bad;
    EXPECT_EQ(res.status().code(), ru::ErrorCode::kValueOutOfRange) << bad;
  }
  // Underflow to subnormal/zero is not an error.
  EXPECT_TRUE(rc::parse_spice_value_checked("1e-999").is_ok());
}

// --- tree netlist reader -----------------------------------------------------

TEST(TreeNetlistFaults, RoundTripStillWorks) {
  const rc::RlcTree t = rc::make_fig8_tree();
  std::ostringstream os;
  rc::write_tree_netlist(t, os);
  std::istringstream is(os.str());
  const rc::RlcTree back = rc::read_tree_netlist(is);
  ASSERT_EQ(back.size(), t.size());
  expect_model_equal(eed::analyze(back), eed::analyze(t));
}

TEST(TreeNetlistFaults, ReportsLineContext) {
  std::istringstream is("section a - R=1 L=0 C=1p\nsectoin b a R=1 L=0 C=1p\n");
  const ru::Result<rc::RlcTree> res = rc::read_tree_netlist_checked(is);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ru::ErrorCode::kParseError);
  EXPECT_EQ(res.status().line(), 2);
}

TEST(TreeNetlistFaults, RejectsBadValuesWithLine) {
  const char* decks[] = {
      "section a - R=2nq L=0 C=1p\n",     // trailing garbage
      "section a - R=1e L=0 C=1p\n",      // dangling exponent
      "section a - R=nan L=0 C=1p\n",     // non-finite literal
      "section a - R=1e999 L=0 C=1p\n",   // out of double range
      "section a - R=-5 L=0 C=1p\n",      // negative element
      "section a - R=1 L=0\n",            // missing field
      "section a b R=1 L=0 C=1p\n",       // unknown parent
      "section a - R=1 L=0 C=1p\nsection a - R=1 L=0 C=1p\n",  // duplicate
  };
  for (const char* deck : decks) {
    std::istringstream is(deck);
    const ru::Result<rc::RlcTree> res = rc::read_tree_netlist_checked(is);
    ASSERT_FALSE(res.is_ok()) << deck;
    EXPECT_GE(res.status().line(), 1) << deck;
    std::istringstream is2(deck);
    EXPECT_THROW((void)rc::read_tree_netlist(is2), std::invalid_argument) << deck;
  }
}

TEST(TreeNetlistFaults, EmptyDeckIsAnError) {
  std::istringstream is("# only a comment\n");
  const ru::Result<rc::RlcTree> res = rc::read_tree_netlist_checked(is);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ru::ErrorCode::kEmptyTree);
}

// --- spice reader ------------------------------------------------------------

TEST(SpiceFaults, RoundTripStillWorks) {
  const rc::RlcTree t = rc::make_fig8_tree();
  std::ostringstream os;
  rc::write_spice(t, os);
  std::istringstream is(os.str());
  const rc::RlcTree back = rc::read_spice(is);
  EXPECT_GT(back.size(), 0u);
}

TEST(SpiceFaults, RejectsMalformedCards) {
  const char* decks[] = {
      "R1 in n1\n",                             // missing value
      "X1 in n1 5\n",                           // unsupported element
      "R1 in in 5\nC1 in 0 1p\n",               // self-short
      "R1 in n1 -5\nC1 n1 0 1p\n",              // negative value
      "R1 in n1 2nq\nC1 n1 0 1p\n",             // trailing garbage value
      "R1 in n1 1e999\nC1 n1 0 1p\n",           // out of range
      "C1 n1 n2 1p\nR1 in n1 5\n",              // floating capacitor
  };
  for (const char* deck : decks) {
    std::istringstream is(deck);
    const ru::Result<rc::RlcTree> res = rc::read_spice_checked(is);
    ASSERT_FALSE(res.is_ok()) << deck;
    std::istringstream is2(deck);
    EXPECT_THROW((void)rc::read_spice(is2), std::invalid_argument) << deck;
  }
}

TEST(SpiceFaults, RejectsResistorLoop) {
  std::istringstream is(
      "R1 in n1 5\nR2 n1 n2 5\nR3 n2 in 5\nC1 n1 0 1p\nC2 n2 0 1p\n");
  const ru::Result<rc::RlcTree> res = rc::read_spice_checked(is);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ru::ErrorCode::kCycle);
}

// --- eed::analyze guardrails -------------------------------------------------

TEST(AnalyzeGuards, ThrowPolicyNamesTheNode) {
  rc::RlcTree t = two_root_forest();
  t.values(1).capacitance = kNaN;
  try {
    (void)eed::analyze(t);
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_EQ(e.code(), ru::ErrorCode::kNonFiniteMoment);
    EXPECT_EQ(e.node(), 1);
  }
}

TEST(AnalyzeGuards, NegativeMomentClassified) {
  rc::RlcTree t = two_root_forest();
  t.values(1).inductance = -1e-9;  // SL_1 goes negative
  try {
    (void)eed::analyze(t);
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_EQ(e.code(), ru::ErrorCode::kNegativeMoment);
  }
}

TEST(AnalyzeGuards, SkipAndFlagKeepsHealthyNodesBitwise) {
  const rc::RlcTree clean = two_root_forest();
  const eed::TreeModel reference = eed::analyze(clean);

  rc::RlcTree poisoned = clean;
  poisoned.values(1).capacitance = kNaN;
  eed::AnalyzeOptions opts;
  opts.fault_policy = ru::FaultPolicy::kSkipAndFlag;
  const eed::TreeModel model = eed::analyze(poisoned, opts);

  EXPECT_FALSE(model.fault_free());
  EXPECT_EQ(model.fault_count, 1u);
  EXPECT_TRUE(model.faulted(1));
  EXPECT_TRUE(std::isnan(model.nodes[1].sum_rc));  // skip keeps the poison
  // Nodes 0 and 2 live in the other root's subtree: bitwise-identical.
  expect_node_equal(model.nodes[0], reference.nodes[0]);
  expect_node_equal(model.nodes[2], reference.nodes[2]);
  EXPECT_EQ(model.load_capacitance[0], reference.load_capacitance[0]);
  EXPECT_EQ(model.load_capacitance[2], reference.load_capacitance[2]);
}

TEST(AnalyzeGuards, ClampAndFlagProducesFiniteDegenerateModel) {
  rc::RlcTree t = two_root_forest();
  t.values(1).capacitance = kInf;
  eed::AnalyzeOptions opts;
  opts.fault_policy = ru::FaultPolicy::kClampAndFlag;
  const eed::TreeModel model = eed::analyze(t, opts);
  ASSERT_TRUE(model.faulted(1));
  EXPECT_EQ(model.nodes[1].sum_rc, 0.0);  // clamped to the RC-degenerate limit
  EXPECT_EQ(model.nodes[1].sum_lc, 0.0);
  EXPECT_TRUE(std::isinf(model.nodes[1].zeta));
  EXPECT_EQ(model.load_capacitance[1], 0.0);
}

TEST(AnalyzeGuards, FlatTreeOverloadGuardsToo) {
  rc::RlcTree t = two_root_forest();
  t.values(0).resistance = kNaN;
  const rc::FlatTree flat(t);
  EXPECT_THROW((void)eed::analyze(flat), ru::FaultError);
  eed::AnalyzeOptions opts;
  opts.fault_policy = ru::FaultPolicy::kSkipAndFlag;
  const eed::TreeModel model = eed::analyze(flat, opts);
  EXPECT_TRUE(model.faulted(0));
  EXPECT_TRUE(model.faulted(2));  // poison propagates down the path
  EXPECT_FALSE(model.faulted(1));
}

TEST(AnalyzeGuards, OverflowToNonFiniteMomentIsCaught) {
  // Finite inputs can still overflow the moment sums; that must be a
  // structured fault, not a silent Inf.
  rc::RlcTree t;
  t.add_section(rc::kInput, {1e308, 0.0, 1e308}, "huge");
  eed::AnalyzeOptions opts;
  opts.fault_policy = ru::FaultPolicy::kSkipAndFlag;
  const eed::TreeModel model = eed::analyze(t, opts);
  EXPECT_TRUE(model.faulted(0));
  EXPECT_THROW((void)eed::analyze(t), ru::FaultError);
}

TEST(AnalyzeGuards, CountingVariantReportsFaultedNodes) {
  rc::RlcTree t = two_root_forest();
  t.values(1).resistance = kNaN;
  eed::AnalyzeOptions opts;
  opts.fault_policy = ru::FaultPolicy::kSkipAndFlag;
  const eed::CountedAnalysis counted = eed::analyze_counting(t, opts);
  EXPECT_EQ(counted.stats.faulted_nodes, 1u);
  EXPECT_EQ(counted.stats.nodes, 3u);
}

// --- TimingEngine ------------------------------------------------------------

TEST(EngineFaults, ConstructorValidates) {
  rc::RlcTree t = two_root_forest();
  t.values(2).inductance = kNaN;
  try {
    const eng::TimingEngine engine(t);
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_EQ(e.code(), ru::ErrorCode::kNonFiniteValue);
    EXPECT_EQ(e.node(), 2);
  }
}

TEST(EngineFaults, PoisonedEditThrowsAndChangesNothing) {
  eng::TimingEngine engine(rc::make_fig8_tree());
  const eed::TreeModel before = engine.model();
  const std::size_t size_before = engine.size();

  EXPECT_THROW(engine.set_section_values(0, {kNaN, 0.0, 1e-13}), ru::FaultError);
  EXPECT_THROW(engine.set_section_values(1, {1.0, kInf, 1e-13}), ru::FaultError);
  EXPECT_THROW(engine.set_section_values(2, {1.0, 0.0, -1e-13}), ru::FaultError);
  EXPECT_THROW(engine.set_section_values(-1, {1.0, 0.0, 1e-13}), std::out_of_range);

  EXPECT_EQ(engine.size(), size_before);
  expect_model_equal(engine.model(), before);
  expect_model_equal(engine.model(), eed::analyze(engine.tree()));
}

TEST(EngineFaults, BatchWithOnePoisonedEditAppliesNothing) {
  eng::TimingEngine engine(rc::make_fig8_tree());
  const eed::TreeModel before = engine.model();
  std::vector<eng::Edit> edits;
  edits.push_back({0, {2.0, 1e-9, 1e-13}});
  edits.push_back({1, {3.0, kNaN, 2e-13}});  // poisoned mid-batch
  edits.push_back({2, {4.0, 2e-9, 3e-13}});
  EXPECT_THROW(engine.apply_edits(edits), ru::FaultError);
  // Strong guarantee: the valid edits before the poisoned one must not
  // have landed either.
  expect_model_equal(engine.model(), before);
}

TEST(EngineFaults, GraftValidatesTheWholeSubtree) {
  eng::TimingEngine engine(rc::make_fig8_tree());
  const std::size_t size_before = engine.size();
  rc::RlcTree sub;
  const rc::SectionId a = sub.add_section(rc::kInput, {1.0, 0.0, 1e-13});
  sub.add_section(a, {1.0, 0.0, 1e-13});
  sub.values(1).capacitance = kNaN;
  EXPECT_THROW((void)engine.graft(0, sub), ru::FaultError);
  EXPECT_EQ(engine.size(), size_before);
  expect_model_equal(engine.model(), eed::analyze(engine.tree()));
}

TEST(EngineTransactions, StateMachineErrors) {
  eng::TimingEngine engine(two_root_forest());
  try {
    engine.commit();
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_EQ(e.code(), ru::ErrorCode::kTransactionState);
  }
  EXPECT_THROW(engine.rollback(), ru::FaultError);
  engine.begin_transaction();
  EXPECT_TRUE(engine.in_transaction());
  EXPECT_THROW(engine.begin_transaction(), ru::FaultError);  // no nesting
  engine.commit();
  EXPECT_FALSE(engine.in_transaction());
}

TEST(EngineTransactions, CommitKeepsEdits) {
  eng::TimingEngine engine(two_root_forest());
  engine.begin_transaction();
  engine.set_section_values(0, {42.0, 1e-9, 5e-13});
  engine.commit();
  EXPECT_EQ(engine.tree().section(0).v.resistance, 42.0);
  expect_model_equal(engine.model(), eed::analyze(engine.tree()));
}

TEST(EngineTransactions, RollbackRestoresValuesGraftsAndPrunes) {
  const rc::RlcTree base = rc::make_fig8_tree();
  eng::TimingEngine engine(base);
  const eed::TreeModel before = engine.model();
  const std::size_t size_before = engine.size();

  engine.begin_transaction();
  engine.set_section_values(0, {99.0, 9e-9, 9e-13});
  rc::RlcTree sub;
  sub.add_section(rc::kInput, {1.0, 1e-10, 1e-13}, "grafted");
  const std::vector<rc::SectionId> added = engine.graft(2, sub);
  ASSERT_EQ(added.size(), 1u);
  engine.prune(added[0]);
  engine.prune(static_cast<rc::SectionId>(size_before - 1));
  engine.rollback();

  EXPECT_FALSE(engine.in_transaction());
  EXPECT_EQ(engine.size(), size_before);
  EXPECT_TRUE(engine.alive(static_cast<rc::SectionId>(size_before - 1)));
  expect_model_equal(engine.model(), before);
  expect_model_equal(engine.model(), eed::analyze(engine.tree()));
}

TEST(EngineTransactions, RandomizedInterleavedFaultsRollBackBitwise) {
  // Property test: a transaction mixing valid edits, poisoned edits (which
  // throw and must change nothing), grafts, and prunes — after rollback the
  // engine must be bitwise-identical to its pre-transaction self.
  std::mt19937 rng(20260806u);
  std::uniform_real_distribution<double> unit(0.1, 2.0);
  for (int round = 0; round < 8; ++round) {
    eng::TimingEngine engine(rc::make_balanced_tree(4, 2, {10.0, 1e-9, 1e-13}));
    const std::size_t size_before = engine.size();
    const eed::TreeModel before = engine.model();

    engine.begin_transaction();
    for (int op = 0; op < 40; ++op) {
      const auto id = static_cast<rc::SectionId>(rng() % size_before);
      switch (rng() % 6) {
        case 0:
          if (engine.alive(id)) {
            engine.set_section_values(id, {unit(rng) * 10.0, unit(rng) * 1e-9,
                                           unit(rng) * 1e-13});
          }
          break;
        case 1:
          if (engine.alive(id)) {
            EXPECT_THROW(engine.set_section_values(id, {kNaN, 1e-9, 1e-13}),
                         ru::FaultError);
          }
          break;
        case 2: {
          std::vector<eng::Edit> edits;
          for (int k = 0; k < 3; ++k) {
            const auto eid = static_cast<rc::SectionId>(rng() % size_before);
            if (!engine.alive(eid)) continue;
            edits.push_back({eid, {unit(rng) * 5.0, unit(rng) * 2e-9, unit(rng) * 2e-13}});
          }
          engine.apply_edits(edits);
          break;
        }
        case 3: {
          std::vector<eng::Edit> edits;
          edits.push_back({0, {1.0, 1e-9, 1e-13}});
          edits.push_back({1, {1.0, -1e-9, 1e-13}});  // poisoned
          // FaultError when both ids are alive; the plain dead-section
          // invalid_argument (its base) when an earlier prune got id 0 or 1.
          EXPECT_THROW(engine.apply_edits(edits), std::invalid_argument);
          break;
        }
        case 4: {
          rc::RlcTree sub;
          const rc::SectionId s0 = sub.add_section(rc::kInput, {unit(rng), 0.0, 1e-13});
          sub.add_section(s0, {unit(rng), 0.0, 1e-13});
          if (engine.alive(id)) (void)engine.graft(id, sub);
          break;
        }
        default:
          if (engine.alive(id)) engine.prune(id);
          break;
      }
    }
    engine.rollback();

    EXPECT_EQ(engine.size(), size_before);
    for (std::size_t i = 0; i < size_before; ++i) {
      EXPECT_TRUE(engine.alive(static_cast<rc::SectionId>(i)));
    }
    expect_model_equal(engine.model(), before);
    expect_model_equal(engine.model(), eed::analyze(engine.tree()));
    // The engine must stay fully usable after the rollback.
    engine.set_section_values(0, {1.0, 1e-9, 1e-13});
    expect_model_equal(engine.model(), eed::analyze(engine.tree()));
  }
}

// --- BatchedAnalyzer ---------------------------------------------------------

namespace {

/// Scalar reference: the tree with sample `vals` applied, analyzed fresh.
eed::TreeModel scalar_reference(const rc::RlcTree& base, const std::vector<double>& r,
                                const std::vector<double>& l, const std::vector<double>& c) {
  rc::RlcTree t = base;
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.values(static_cast<rc::SectionId>(i)) = {r[i], l[i], c[i]};
  }
  eed::AnalyzeOptions opts;
  opts.fault_policy = ru::FaultPolicy::kSkipAndFlag;
  return eed::analyze(t, opts);
}

}  // namespace

TEST(BatchedFaults, ConstructorValidatesTopology) {
  rc::RlcTree t = two_root_forest();
  t.values(1).resistance = kNaN;
  EXPECT_THROW(eng::BatchedAnalyzer(rc::FlatTree(t)), ru::FaultError);
}

TEST(BatchedFaults, SetSampleThrowPolicyCatchesNaNAndNegative) {
  const rc::RlcTree base = rc::make_balanced_tree(3, 2, {10.0, 1e-9, 1e-13});
  eng::BatchedAnalyzer batch{rc::FlatTree(base), 4};
  batch.resize(4);
  const std::size_t n = batch.sections();
  std::vector<double> r(n, 1.0), l(n, 1e-9), c(n, 1e-13);
  r[n / 2] = kNaN;
  EXPECT_THROW(batch.set_sample(1, r.data(), l.data(), c.data()), ru::FaultError);
  r[n / 2] = kInf;
  EXPECT_THROW(batch.set_sample(1, r.data(), l.data(), c.data()), ru::FaultError);
  r[n / 2] = -1.0;
  EXPECT_THROW(batch.set_sample(1, r.data(), l.data(), c.data()), std::invalid_argument);
  EXPECT_THROW(batch.set_section(0, 0, {1.0, kNaN, 1e-13}), ru::FaultError);
}

TEST(BatchedFaults, OneBadSampleFlagsOnlyThatLane) {
  const rc::RlcTree base = rc::make_balanced_tree(3, 2, {10.0, 1e-9, 1e-13});
  const std::size_t n = base.size();
  eng::BatchedAnalyzer batch{rc::FlatTree(base), 4};
  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  const std::size_t samples = 6;  // two lane-groups, one spanning a fault
  batch.resize(samples);

  std::vector<std::vector<double>> rs(samples), ls(samples), cs(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    rs[s].assign(n, 10.0 * (1.0 + 0.01 * static_cast<double>(s)));
    ls[s].assign(n, 1e-9 * (1.0 + 0.02 * static_cast<double>(s)));
    cs[s].assign(n, 1e-13 * (1.0 + 0.03 * static_cast<double>(s)));
  }
  cs[2][n - 1] = kNaN;  // poison one entry of sample 2
  for (std::size_t s = 0; s < samples; ++s) {
    batch.set_sample(s, rs[s].data(), ls[s].data(), cs[s].data());
  }

  const eng::BatchedModels models = batch.analyze();
  EXPECT_FALSE(models.fault_free());
  EXPECT_EQ(models.fault_count(), 1u);
  ASSERT_EQ(models.faulted_samples(), std::vector<std::size_t>{2});
  EXPECT_NE(models.fault_flags(2) & eed::kFaultBadInput, 0);

  // Every healthy lane is bitwise-equal to a scalar analysis of its tree.
  for (std::size_t s = 0; s < samples; ++s) {
    if (s == 2) continue;
    const eed::TreeModel ref = scalar_reference(base, rs[s], ls[s], cs[s]);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<rc::SectionId>(i);
      EXPECT_EQ(models.sum_rc(s, id), ref.nodes[i].sum_rc) << "s=" << s << " i=" << i;
      EXPECT_EQ(models.sum_lc(s, id), ref.nodes[i].sum_lc);
      EXPECT_EQ(models.load_capacitance(s, id), ref.load_capacitance[i]);
    }
  }
}

TEST(BatchedFaults, ThrowPolicySurfacesRecordedFaultsAtAnalyze) {
  const rc::RlcTree base = rc::make_balanced_tree(3, 2, {10.0, 1e-9, 1e-13});
  const std::size_t n = base.size();
  eng::BatchedAnalyzer batch{rc::FlatTree(base), 2};
  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  batch.resize(3);
  std::vector<double> r(n, 1.0), l(n, 1e-9), c(n, 1e-13);
  l[0] = kNaN;
  batch.set_sample(2, r.data(), l.data(), c.data());  // recorded, not thrown
  batch.set_fault_policy(ru::FaultPolicy::kThrow);
  try {
    (void)batch.analyze();
    FAIL() << "expected FaultError";
  } catch (const ru::FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("sample 2"), std::string::npos);
  }
}

TEST(BatchedFaults, ClampPolicyMatchesScalarOfClampedTree) {
  const rc::RlcTree base = rc::make_balanced_tree(3, 2, {10.0, 1e-9, 1e-13});
  const std::size_t n = base.size();
  eng::BatchedAnalyzer batch{rc::FlatTree(base), 4};
  batch.set_fault_policy(ru::FaultPolicy::kClampAndFlag);
  batch.resize(2);
  std::vector<double> r(n, 2.0), l(n, 1e-9), c(n, 1e-13);
  std::vector<double> rb = r, lb = l, cb = c;
  rb[1] = kInf;
  batch.set_sample(0, r.data(), l.data(), c.data());
  batch.set_sample(1, rb.data(), lb.data(), cb.data());
  const eng::BatchedModels models = batch.analyze();
  EXPECT_TRUE(models.faulted(1));
  EXPECT_FALSE(models.faulted(0));
  // Clamped input (Inf -> 0) analyzed like any other sample.
  std::vector<double> r_clamped = rb;
  r_clamped[1] = 0.0;
  const eed::TreeModel ref = scalar_reference(base, r_clamped, lb, cb);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<rc::SectionId>(i);
    EXPECT_EQ(models.sum_rc(1, id), ref.nodes[i].sum_rc);
    EXPECT_EQ(models.sum_lc(1, id), ref.nodes[i].sum_lc);
  }
}

TEST(BatchedFaults, OverflowingMomentsFlagTheSample) {
  rc::RlcTree base;
  base.add_section(rc::kInput, {1.0, 0.0, 1e-13}, "x");
  eng::BatchedAnalyzer batch{rc::FlatTree(base), 2};
  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  batch.resize(2);
  const double r_ok = 1.0, l_ok = 0.0, c_ok = 1e-13;
  const double r_huge = 1e308, l_huge = 0.0, c_huge = 1e308;  // finite inputs, Inf moment
  batch.set_sample(0, &r_ok, &l_ok, &c_ok);
  batch.set_sample(1, &r_huge, &l_huge, &c_huge);
  const eng::BatchedModels models = batch.analyze();
  EXPECT_FALSE(models.faulted(0));
  ASSERT_TRUE(models.faulted(1));
  EXPECT_NE(models.fault_flags(1) & eed::kFaultNonFiniteMoment, 0);
}

TEST(BatchedFaults, StreamFillFaultsFollowThePolicy) {
  const rc::RlcTree base = rc::make_balanced_tree(3, 2, {10.0, 1e-9, 1e-13});
  const std::size_t n = base.size();
  const auto fill = [&](std::size_t s, double* r, double* l, double* c) {
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = 10.0 + static_cast<double>(s);
      l[i] = 1e-9;
      c[i] = 1e-13;
    }
    if (s == 1) l[0] = kNaN;
  };

  eng::BatchedAnalyzer batch{rc::FlatTree(base), 4};
  EXPECT_THROW((void)batch.analyze_stream(3, fill, {}), std::invalid_argument);

  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  const eng::BatchedModels models = batch.analyze_stream(3, fill, {});
  EXPECT_EQ(models.fault_count(), 1u);
  EXPECT_TRUE(models.faulted(1));
  EXPECT_FALSE(models.faulted(0));
  EXPECT_FALSE(models.faulted(2));
  // Healthy streamed lanes bitwise-match the scalar analysis.
  std::vector<double> r(n), l(n), c(n);
  fill(2, r.data(), l.data(), c.data());
  const eed::TreeModel ref = scalar_reference(base, r, l, c);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<rc::SectionId>(i);
    EXPECT_EQ(models.sum_rc(2, id), ref.nodes[i].sum_rc);
    EXPECT_EQ(models.sum_lc(2, id), ref.nodes[i].sum_lc);
  }
}

TEST(BatchedFaults, PooledAnalyzeAgreesOnFaults) {
  const rc::RlcTree base = rc::make_balanced_tree(4, 2, {10.0, 1e-9, 1e-13});
  const std::size_t n = base.size();
  eng::BatchedAnalyzer batch{rc::FlatTree(base), 2};
  batch.set_fault_policy(ru::FaultPolicy::kSkipAndFlag);
  const std::size_t samples = 9;
  batch.resize(samples);
  std::vector<double> r(n, 1.0), l(n, 1e-9), c(n, 1e-13);
  for (std::size_t s = 0; s < samples; ++s) {
    if (s == 5) {
      std::vector<double> bad = c;
      bad[0] = kNaN;
      batch.set_sample(s, r.data(), l.data(), bad.data());
    } else {
      batch.set_sample(s, r.data(), l.data(), c.data());
    }
  }
  eng::BatchAnalyzer pool(4);
  const eng::BatchedModels serial = batch.analyze();
  const eng::BatchedModels pooled = batch.analyze(&pool);
  EXPECT_EQ(serial.fault_count(), 1u);
  EXPECT_EQ(pooled.fault_count(), 1u);
  EXPECT_EQ(serial.faulted_samples(), pooled.faulted_samples());
  for (std::size_t s = 0; s < samples; ++s) {
    if (s == 5) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<rc::SectionId>(i);
      EXPECT_EQ(serial.sum_rc(s, id), pooled.sum_rc(s, id));
    }
  }
}
