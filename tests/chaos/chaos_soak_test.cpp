// Chaos soak (PR 9): corpus analysis under seeded randomized schedules of
// concurrent cancellation, tight deadlines, and deterministic fault
// injection, across thread counts and lane widths. Each schedule is a
// pure function of its seed, so a failure reproduces from the seed alone.
//
// Invariants asserted on every schedule:
//   * no crash and no hang (a watchdog thread aborts with a message if a
//     schedule stops making progress);
//   * every injected throwing fault is surfaced exactly once in
//     CorpusModels::diagnostics (fire counts are exact: throwing sites
//     are armed with limit=1 and never together, so pool first-error
//     coalescing cannot eat one);
//   * every net that completed healthy is bitwise-identical to the
//     fault-free baseline — retries, fallbacks, deadlines, cancellation
//     and lane-width choices never change a finished net's bits;
//   * partial-result bookkeeping is consistent: incomplete nets imply a
//     non-ok stop_status and are each named in diagnostics; no stop
//     implies every net reached a verdict.
//
// Runtime knobs (CI): RELMORE_CHAOS_SEEDS overrides the schedule count,
// RELMORE_CHAOS_SECONDS caps wall time (the soak stops early, never
// fails, when the budget runs out).

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "relmore/sta/corpus.hpp"
#include "relmore/sta/design.hpp"
#include "relmore/sta/synthetic.hpp"
#include "relmore/sta/timing_graph.hpp"
#include "relmore/timer.hpp"
#include "relmore/util/deadline.hpp"
#include "relmore/util/diagnostics.hpp"
#include "relmore/util/fault_injector.hpp"

namespace sta = relmore::sta;
namespace ru = relmore::util;

using ru::ErrorCode;
using ru::FaultInjector;
using ru::FaultSite;

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

/// Aborts the process with a message when the soak stops making progress
/// — a hang must fail the CI job loudly, not time out silently.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds stall_limit)
      : stall_limit_(stall_limit), thread_([this] { run(); }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  void pet() { progress_.fetch_add(1, std::memory_order_relaxed); }

 private:
  void run() {
    std::uint64_t last = progress_.load(std::memory_order_relaxed);
    auto last_change = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::seconds(1), [this] { return done_; })) {
      const std::uint64_t cur = progress_.load(std::memory_order_relaxed);
      if (cur != last) {
        last = cur;
        last_change = std::chrono::steady_clock::now();
        continue;
      }
      if (std::chrono::steady_clock::now() - last_change > stall_limit_) {
        std::fprintf(stderr, "chaos watchdog: no progress after schedule %llu — aborting\n",
                     static_cast<unsigned long long>(last));
        std::abort();
      }
    }
  }

  std::chrono::seconds stall_limit_;
  std::atomic<std::uint64_t> progress_{0};
  std::mutex mutex_;
  bool done_ = false;
  std::condition_variable cv_;
  std::thread thread_;
};

struct InjectorGuard {
  InjectorGuard() { FaultInjector::instance().disarm_all(); }
  ~InjectorGuard() { FaultInjector::instance().disarm_all(); }
};

/// One seeded schedule: execution shape, run control, and armed faults —
/// all derived from the seed.
struct Schedule {
  unsigned threads;
  std::size_t lane_width;
  bool with_delay;          ///< pool-delay armed (non-throwing)
  bool with_nan;            ///< snapshot-nan armed, limit=1 (data fault)
  int throwing_site;        ///< 0 none, 1 pool-abort, 2 arena-alloc (limit=1)
  std::uint64_t every;      ///< phase period for the limited sites
  int cancel_after_us;      ///< <0: no cancel thread
  int deadline_kind;        ///< 0 none, 1 generous, 2 tiny
  int deadline_us;          ///< tiny-deadline budget

  static Schedule from_seed(std::uint64_t seed) {
    const std::uint64_t a = splitmix64(seed);
    const std::uint64_t b = splitmix64(a);
    const std::uint64_t c = splitmix64(b);
    Schedule s;
    const unsigned thread_choices[] = {1, 2, 4, 8};
    const std::size_t width_choices[] = {0, 1, 2, 4, 8};
    s.threads = thread_choices[a % 4];
    s.lane_width = width_choices[(a >> 8) % 5];
    s.with_delay = ((a >> 16) & 3) == 0;  // 1 in 4: each fire sleeps 2 ms
    s.with_nan = ((a >> 24) & 1) != 0;
    s.throwing_site = static_cast<int>((b >> 4) % 3);
    s.every = 1 + ((b >> 16) % 4);
    s.cancel_after_us = ((b >> 32) & 1) != 0 ? static_cast<int>(c % 2000) : -1;
    s.deadline_kind = static_cast<int>((c >> 16) % 3);
    s.deadline_us = static_cast<int>((c >> 24) % 500);
    return s;
  }

  [[nodiscard]] std::string arm_string() const {
    std::ostringstream os;
    const char* sep = "";
    if (with_delay) {
      os << "pool-delay:every=16";
      sep = ",";
    }
    if (with_nan) {
      os << sep << "snapshot-nan:every=" << every << ":limit=1";
      sep = ",";
    }
    if (throwing_site == 1) {
      os << sep << "pool-abort:every=" << every << ":limit=1";
    } else if (throwing_site == 2) {
      os << sep << "arena-alloc:every=" << every << ":limit=1";
    }
    return os.str();
  }
};

sta::Design chaos_design() {
  sta::SyntheticSpec spec;
  spec.nets = 24;
  spec.topo_classes = 4;
  spec.chain_depth = 3;
  spec.seed = 7;
  auto design = sta::make_synthetic_design_checked(spec);
  EXPECT_TRUE(design.is_ok()) << design.status().message();
  return std::move(design).value();
}

std::size_t count_if_diag(const ru::DiagnosticsReport& report,
                          const std::function<bool(const ru::Diagnostic&)>& pred) {
  std::size_t n = 0;
  for (const ru::Diagnostic& d : report.entries()) {
    if (pred(d)) ++n;
  }
  return n;
}

TEST(ChaosSoak, SeededSchedulesNeverCrashHangOrCorrupt) {
  InjectorGuard guard;
  const sta::Design design = chaos_design();

  // Fault-free baseline: the bits every healthy net must reproduce.
  sta::AnalyzeOptions base_options;
  base_options.threads = 2;
  const auto baseline_r = sta::analyze_corpus_checked(design, base_options);
  ASSERT_TRUE(baseline_r.is_ok()) << baseline_r.status().message();
  const sta::CorpusModels& baseline = baseline_r.value();
  ASSERT_EQ(baseline.faulted_nets, 0u);

  const std::size_t seeds = env_size("RELMORE_CHAOS_SEEDS", 200);
  const std::size_t budget_s = env_size("RELMORE_CHAOS_SECONDS", 0);
  const auto t0 = std::chrono::steady_clock::now();
  Watchdog watchdog(std::chrono::seconds(60));

  std::size_t ran = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    if (budget_s != 0 &&
        std::chrono::steady_clock::now() - t0 > std::chrono::seconds(budget_s)) {
      break;  // soft time budget (CI soak): stop early, never fail
    }
    const std::uint64_t seed = 0xc4a05'0000ULL + i;
    const Schedule sched = Schedule::from_seed(seed);
    SCOPED_TRACE("schedule seed " + std::to_string(seed));

    FaultInjector::instance().disarm_all();
    const std::string arm = sched.arm_string();
    if (!arm.empty()) {
      ASSERT_TRUE(FaultInjector::instance().arm_spec(arm).is_ok()) << arm;
    }

    sta::AnalyzeOptions options;
    options.threads = sched.threads;
    options.lane_width = sched.lane_width;
    options.max_attempts = 3;
    ru::CancelToken token;
    if (sched.cancel_after_us >= 0) options.cancel = &token;
    if (sched.deadline_kind == 1) {
      options.deadline = ru::Deadline::after(std::chrono::hours(1));
    } else if (sched.deadline_kind == 2) {
      options.deadline = ru::Deadline::after(std::chrono::microseconds(sched.deadline_us));
    }

    std::thread canceller;
    if (sched.cancel_after_us >= 0) {
      canceller = std::thread([&token, delay = sched.cancel_after_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
        token.cancel();
      });
    }

    const auto result = sta::analyze_corpus_checked(design, options);
    if (canceller.joinable()) canceller.join();
    watchdog.pet();
    ++ran;

    ASSERT_TRUE(result.is_ok()) << result.status().message();
    const sta::CorpusModels& models = result.value();
    const std::uint64_t abort_fires = FaultInjector::instance().fire_count(FaultSite::kPoolAbort);
    const std::uint64_t arena_fires = FaultInjector::instance().fire_count(FaultSite::kArenaAlloc);
    const std::uint64_t nan_fires = FaultInjector::instance().fire_count(FaultSite::kSnapshotNan);

    // Healthy nets: bitwise-identical to the fault-free baseline.
    ASSERT_EQ(models.nets.size(), baseline.nets.size());
    for (std::size_t ni = 0; ni < models.nets.size(); ++ni) {
      const sta::NetModels& got = models.nets[ni];
      if (!got.analyzed || got.faulted) continue;
      const sta::NetModels& want = baseline.nets[ni];
      ASSERT_EQ(got.taps.size(), want.taps.size());
      for (std::size_t t = 0; t < got.taps.size(); ++t) {
        ASSERT_EQ(bits(got.taps[t].sum_rc), bits(want.taps[t].sum_rc))
            << design.nets[ni].name << " tap " << t;
        ASSERT_EQ(bits(got.taps[t].sum_lc), bits(want.taps[t].sum_lc))
            << design.nets[ni].name << " tap " << t;
        ASSERT_EQ(bits(got.taps[t].zeta), bits(want.taps[t].zeta))
            << design.nets[ni].name << " tap " << t;
      }
    }

    // Partial-result bookkeeping.
    std::size_t incomplete = 0;
    for (const sta::NetModels& slot : models.nets) {
      if (!slot.analyzed && !slot.faulted) ++incomplete;
    }
    EXPECT_EQ(incomplete, models.incomplete_nets);
    if (models.incomplete_nets > 0) {
      EXPECT_FALSE(models.stop_status.is_ok());
      const ErrorCode code = models.stop_status.code();
      EXPECT_TRUE(code == ErrorCode::kCancelled || code == ErrorCode::kDeadlineExceeded);
      const std::size_t named = count_if_diag(models.diagnostics, [&](const ru::Diagnostic& d) {
        return d.warning && d.code == code && !d.net.empty();
      });
      EXPECT_EQ(named, models.incomplete_nets);
    } else if (models.stop_status.is_ok()) {
      // No stop: every net reached a verdict, and only injected data
      // faults (snapshot NaNs) may have failed nets — throwing sites are
      // limit=1 and always retried away within the attempt budget. A
      // retry triggered by a throwing fault can legitimately *heal* a
      // poisoned snapshot (the refill injects nothing, the NaN budget is
      // spent), so with a throwing site armed the bound is one-sided.
      if (sched.throwing_site == 0) {
        EXPECT_EQ(models.faulted_nets, nan_fires);
      } else {
        EXPECT_LE(models.faulted_nets, nan_fires);
      }
      EXPECT_EQ(models.quarantined_nets, 0u);
    }

    // Exactly-once surfacing of injected throwing faults.
    const std::size_t abort_diags = count_if_diag(models.diagnostics, [](const ru::Diagnostic& d) {
      return d.code == ErrorCode::kInjectedFault;
    });
    EXPECT_EQ(abort_diags, abort_fires) << "pool-abort fires vs diagnostics";
    const std::size_t arena_diags = count_if_diag(models.diagnostics, [](const ru::Diagnostic& d) {
      return d.warning && d.message.find("workspace allocation failed") != std::string::npos;
    });
    EXPECT_EQ(arena_diags, arena_fires) << "arena-alloc fires vs diagnostics";
    // A snapshot NaN that reached a verdict is an error diagnostic naming
    // its net (a stop may instead leave that net incomplete).
    if (models.stop_status.is_ok() && nan_fires > 0) {
      const std::size_t poisoned = count_if_diag(models.diagnostics, [](const ru::Diagnostic& d) {
        return !d.warning && !d.net.empty();
      });
      EXPECT_EQ(poisoned, models.faulted_nets);
    }
  }
  FaultInjector::instance().disarm_all();
  std::fprintf(stderr, "chaos soak: %zu schedule(s) ran\n", ran);
  EXPECT_GT(ran, 0u);
}

TEST(ChaosSoak, StoppedIncrementalUpdateDiscardsPartialResultCleanly) {
  InjectorGuard guard;
  relmore::Timer timer;
  ASSERT_TRUE(timer.load(chaos_design()).is_ok());

  // Deterministic stops first: an already-expired deadline and a
  // pre-cancelled token each halt update_checked at its first
  // cone-frontier poll. The partial-result contract: the *design* edit
  // commits, the in-place re-time is abandoned, and the cached analysis
  // is discarded rather than left half-updated.
  struct Stop {
    const char* net;
    ErrorCode want;
  };
  ru::CancelToken cancelled;
  cancelled.cancel();
  for (const Stop stop : {Stop{"n0_0", ErrorCode::kDeadlineExceeded},
                          Stop{"n1_1", ErrorCode::kCancelled}}) {
    ASSERT_TRUE(timer.analyze().is_ok());
    const std::uint64_t epoch = timer.design()->epoch;
    relmore::Timer::Edit edit = timer.edit();
    ASSERT_TRUE(edit.set_net_section_values(stop.net, "s0", {60.0, 0.0, 20e-15}).is_ok());
    sta::AnalyzeOptions options;
    if (stop.want == ErrorCode::kDeadlineExceeded) {
      options.deadline = ru::Deadline::after(std::chrono::seconds(0));
    } else {
      options.cancel = &cancelled;
    }
    const auto outcome = edit.commit(options);
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().message();
    EXPECT_FALSE(outcome.value().incremental);
    EXPECT_EQ(outcome.value().stats.stop_status.code(), stop.want);
    EXPECT_EQ(timer.result(), nullptr);         // partial result discarded
    EXPECT_EQ(timer.design()->epoch, epoch + 1);  // the edit itself committed

    // The committed design re-times to the exact from-scratch bits.
    const auto graph = sta::TimingGraph::build_checked(*timer.design());
    ASSERT_TRUE(graph.is_ok());
    const auto fresh = graph.value().analyze_checked();
    ASSERT_TRUE(fresh.is_ok());
    const auto summary = timer.analyze();
    ASSERT_TRUE(summary.is_ok());
    EXPECT_EQ(bits(summary.value().wns), bits(fresh.value().summary.wns));
    EXPECT_EQ(bits(summary.value().tns), bits(fresh.value().summary.tns));
  }

  // Racing canceller: either verdict is legitimate, but the invariant
  // holds on both sides — an in-place re-time is bitwise-exact, an
  // abandoned one leaves no cached result behind.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = splitmix64(0xcafe + i);
    SCOPED_TRACE("cancel race seed " + std::to_string(seed));
    ASSERT_TRUE(timer.analyze().is_ok());
    relmore::Timer::Edit edit = timer.edit();
    ASSERT_TRUE(edit
                    .set_net_section_values(i % 2 == 0 ? "n0_1" : "n2_0", "s1",
                                            {40.0 + static_cast<double>(seed % 50), 0.0,
                                             15e-15})
                    .is_ok());
    ru::CancelToken token;
    std::thread canceller([&token, delay = seed % 200] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      token.cancel();
    });
    sta::AnalyzeOptions options;
    options.cancel = &token;
    const auto outcome = edit.commit(options);
    canceller.join();
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().message();
    const auto graph = sta::TimingGraph::build_checked(*timer.design());
    ASSERT_TRUE(graph.is_ok());
    const auto fresh = graph.value().analyze_checked();
    ASSERT_TRUE(fresh.is_ok());
    if (outcome.value().incremental) {
      ASSERT_NE(timer.result(), nullptr);
      EXPECT_EQ(bits(timer.result()->summary.wns), bits(fresh.value().summary.wns));
      EXPECT_EQ(bits(timer.result()->summary.tns), bits(fresh.value().summary.tns));
    } else {
      EXPECT_EQ(outcome.value().stats.stop_status.code(), ErrorCode::kCancelled);
      EXPECT_EQ(timer.result(), nullptr);
    }
  }
}

TEST(ChaosSoak, ParseTruncationSurfacesAsNamedDiagnostic) {
  InjectorGuard guard;
  sta::SyntheticSpec spec;
  spec.nets = 8;
  spec.topo_classes = 2;
  spec.chain_depth = 2;
  const std::string text = sta::make_synthetic_design_text(spec);

  // Fires on the 3rd reader line: the deck ends mid-design.
  ASSERT_TRUE(FaultInjector::instance().arm_spec("parse-truncate:every=3:seed=0:limit=1").is_ok());
  std::istringstream is(text);
  ru::DiagnosticsReport report;
  const auto r = sta::read_design_checked(is, sta::generic_library(), &report);
  EXPECT_EQ(FaultInjector::instance().fire_count(FaultSite::kParseTruncate), 1u);
  ASSERT_FALSE(r.is_ok());
  bool surfaced = false;
  for (const ru::Diagnostic& d : report.entries()) {
    if (d.code == ErrorCode::kParseError &&
        d.message.find("input truncated (injected fault)") != std::string::npos) {
      surfaced = true;
    }
  }
  EXPECT_TRUE(surfaced) << report.to_string();

  // Disarmed, the same deck parses clean.
  FaultInjector::instance().disarm_all();
  std::istringstream again(text);
  const auto clean = sta::read_design_checked(again, sta::generic_library());
  EXPECT_TRUE(clean.is_ok()) << clean.status().message();
}

TEST(ChaosSoak, WnsBitwiseStableAcrossRecoveredFaults) {
  InjectorGuard guard;
  const sta::Design design = chaos_design();
  const auto graph = sta::TimingGraph::build_checked(design);
  ASSERT_TRUE(graph.is_ok());

  sta::AnalyzeOptions options;
  options.threads = 2;
  const auto clean = graph.value().analyze_checked(options);
  ASSERT_TRUE(clean.is_ok());
  const sta::TimingSummary& want = clean.value().summary;
  ASSERT_EQ(want.faulted_nets, 0u);

  // A retried pool abort and a slow worker must not move a single bit of
  // WNS/TNS or any endpoint slack.
  for (unsigned threads : {1u, 4u}) {
    ASSERT_TRUE(
        FaultInjector::instance().arm_spec("pool-abort:every=2:limit=1,pool-delay:every=32")
            .is_ok());
    sta::AnalyzeOptions faulty;
    faulty.threads = threads;
    const auto got_r = graph.value().analyze_checked(faulty);
    FaultInjector::instance().disarm_all();
    ASSERT_TRUE(got_r.is_ok());
    const sta::TimingSummary& got = got_r.value().summary;
    EXPECT_EQ(got.faulted_nets, 0u);
    EXPECT_EQ(got.incomplete_nets, 0u);
    EXPECT_EQ(bits(got.wns), bits(want.wns));
    EXPECT_EQ(bits(got.tns), bits(want.tns));
    ASSERT_EQ(got.endpoints_by_slack.size(), want.endpoints_by_slack.size());
    for (std::size_t e = 0; e < got.endpoints_by_slack.size(); ++e) {
      EXPECT_EQ(got.endpoints_by_slack[e].port, want.endpoints_by_slack[e].port);
      EXPECT_EQ(bits(got.endpoints_by_slack[e].slack), bits(want.endpoints_by_slack[e].slack));
    }
  }
}

}  // namespace
