// libFuzzer harness for sta::read_design_checked, the corpus reader.
//
// Invariants checked (abort on violation):
//  - the checked reader never throws, with or without a diagnostics mirror;
//  - a rejected corpus carries a non-ok Status and at least one error in
//    the mirrored report;
//  - an accepted design is finalized: the topological order covers every
//    net, every net has a driver and a current FlatTree snapshot;
//  - an accepted design times end to end without an exception — the whole
//    TimingGraph flow under kSkipAndFlag (per-net faults must be isolated,
//    never thrown across the corpus phase).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "relmore/sta/corpus.hpp"
#include "relmore/sta/design.hpp"
#include "relmore/sta/timing_graph.hpp"
#include "relmore/util/diagnostics.hpp"

namespace sta = relmore::sta;
namespace util = relmore::util;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > 65536) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  util::DiagnosticsReport report;
  util::Result<sta::Design> parsed(sta::Design{});
  try {
    std::istringstream is(text);
    parsed = sta::read_design_checked(is, sta::generic_library(), &report);
  } catch (...) {
    std::abort();  // the checked API promises "never throws"
  }
  if (!parsed.is_ok()) {
    // A rejection must explain itself, in the Status and in the mirror.
    if (parsed.status().is_ok()) std::abort();
    if (report.error_count() == 0) std::abort();
    return 0;
  }

  const sta::Design& design = parsed.value();
  if (design.topo_nets.size() != design.nets.size()) std::abort();
  for (const sta::Net& net : design.nets) {
    if (net.driver_kind == sta::DriverKind::kNone) std::abort();
    if (net.flat.size() != net.tree.size()) std::abort();
    if (net.epoch != design.epoch) std::abort();
  }

  try {
    util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
    if (!graph.is_ok()) std::abort();  // an accepted design must build
    sta::AnalyzeOptions options;
    options.fault_policy = util::FaultPolicy::kSkipAndFlag;
    const util::Result<sta::TimingResult> result = graph.value().analyze_checked(options);
    if (!result.is_ok()) std::abort();  // flag policy: faults stay in-band
    if (result.value().nets.size() != design.nets.size()) std::abort();
  } catch (...) {
    std::abort();  // no exception may cross the corpus phase
  }
  return 0;
}
