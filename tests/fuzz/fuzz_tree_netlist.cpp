// libFuzzer harness for circuit::read_tree_netlist(_checked).
//
// Invariants checked (abort on violation):
//  - the checked reader never throws;
//  - an accepted tree passes circuit::validate (the reader's postcondition);
//  - an accepted tree analyzes without an exception under kSkipAndFlag and
//    constructs a TimingEngine (the reader feeds the engines directly);
//  - write -> read is a fixed point after one cycle: the first round trip
//    may quantize values (the writer prints 6 significant digits), but the
//    second must reproduce the first bitwise.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "relmore/circuit/netlist.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/circuit/validate.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/diagnostics.hpp"

namespace rc = relmore::circuit;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > 65536) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  relmore::util::Result<rc::RlcTree> parsed(rc::RlcTree{});
  try {
    std::istringstream is(text);
    parsed = rc::read_tree_netlist_checked(is);
  } catch (...) {
    std::abort();  // the checked API promises "never throws"
  }
  if (!parsed.is_ok()) return 0;

  const rc::RlcTree& tree = parsed.value();
  if (!rc::validate(tree).is_ok()) std::abort();  // reader postcondition

  try {
    relmore::eed::AnalyzeOptions opts;
    opts.fault_policy = relmore::util::FaultPolicy::kSkipAndFlag;
    (void)relmore::eed::analyze(tree, opts);
    const relmore::engine::TimingEngine engine(tree);
    (void)engine.model();
  } catch (...) {
    std::abort();  // a validated tree must analyze without throwing
  }

  // Round trip: parse(write(tree)) must succeed, and a second cycle must be
  // an exact fixed point of the first.
  std::ostringstream out1;
  rc::write_tree_netlist(tree, out1);
  std::istringstream in1(out1.str());
  const relmore::util::Result<rc::RlcTree> second = rc::read_tree_netlist_checked(in1);
  if (!second.is_ok()) std::abort();

  std::ostringstream out2;
  rc::write_tree_netlist(second.value(), out2);
  if (out2.str() != out1.str()) std::abort();
  return 0;
}
