// libFuzzer harness for circuit::read_spice(_checked).
//
// Invariants checked (abort on violation):
//  - the checked reader never throws — every malformed deck must come back
//    as a structured Status;
//  - an accepted tree passes circuit::validate and analyzes without an
//    exception under kSkipAndFlag.
//
// The write_spice round trip is exercised but not asserted: a deck may
// legally use node names ("0", "in", ...) that collide with the writer's
// conventions, so re-reading an exported deck can fail with a structured
// Status — what must never happen is a crash or an unstructured exception.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "relmore/circuit/netlist.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/circuit/validate.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/util/diagnostics.hpp"

namespace rc = relmore::circuit;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > 65536) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  relmore::util::Result<rc::RlcTree> parsed(rc::RlcTree{});
  try {
    std::istringstream is(text);
    parsed = rc::read_spice_checked(is);
  } catch (...) {
    std::abort();  // the checked API promises "never throws"
  }
  if (!parsed.is_ok()) return 0;

  const rc::RlcTree& tree = parsed.value();
  if (!rc::validate(tree).is_ok()) std::abort();  // reader postcondition

  try {
    relmore::eed::AnalyzeOptions opts;
    opts.fault_policy = relmore::util::FaultPolicy::kSkipAndFlag;
    (void)relmore::eed::analyze(tree, opts);
  } catch (...) {
    std::abort();
  }

  try {
    std::ostringstream out;
    rc::write_spice(tree, out);
    std::istringstream back(out.str());
    (void)rc::read_spice_checked(back);  // structured failure allowed
  } catch (...) {
    std::abort();
  }
  return 0;
}
