// Standalone corpus-replay driver, used when the toolchain has no
// libFuzzer (-fsanitize=fuzzer is clang-only; see RELMORE_ENABLE_FUZZERS in
// tests/fuzz/CMakeLists.txt). Each argument is a corpus file or a directory
// of corpus files; every file is fed once through LLVMFuzzerTestOneInput,
// turning the checked-in seed corpus into a plain regression test.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz replay: cannot open %s\n", path.string().c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                               bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 1;
  }
  int failures = 0;
  for (const auto& f : files) failures += replay_file(f);
  std::printf("fuzz replay: %zu inputs, %d unreadable\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}
