// libFuzzer harness for circuit::parse_spice_value(_checked).
//
// Invariants checked (abort on violation):
//  - the checked variant never throws, whatever the bytes;
//  - an accepted value is always finite;
//  - the throwing shim agrees with the checked variant bit-for-bit.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "relmore/circuit/netlist.hpp"
#include "relmore/util/diagnostics.hpp"

namespace rc = relmore::circuit;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > 4096) return 0;  // a value token is one line; bound the cost
  const std::string text(reinterpret_cast<const char*>(data), size);

  relmore::util::Result<double> checked(0.0);
  try {
    checked = rc::parse_spice_value_checked(text);
  } catch (...) {
    std::abort();  // the checked API promises "never throws"
  }
  if (checked.is_ok() && !std::isfinite(checked.value())) std::abort();

  try {
    const double v = rc::parse_spice_value(text);
    if (!checked.is_ok()) std::abort();             // shim accepted, checked rejected
    if (v != checked.value()) std::abort();         // must be the same bits
  } catch (const std::invalid_argument&) {
    if (checked.is_ok()) std::abort();              // shim rejected, checked accepted
  } catch (...) {
    std::abort();  // only util::FaultError (an invalid_argument) is documented
  }
  return 0;
}
