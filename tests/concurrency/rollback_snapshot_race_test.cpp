// TimingEngine rollback racing SharedSnapshot readers under cancellation
// (PR 9). A writer edits inside transactions — rolling about half of them
// back — and publishes epoch-stamped snapshots; readers analyze whatever
// epoch is current through BatchedAnalyzer with an armed CancelToken that
// trips mid-race. The contracts under test, on top of TSan cleanliness:
//
//   * a read that completes un-stopped is bitwise-equal to the writer's
//     reference for that epoch — cancellation pending elsewhere never
//     perturbs completed work;
//   * a stopped read reports kCancelled with every skipped sample flagged
//     kFaultNotRun — never a torn result, never a crash;
//   * rollback keeps the published timeline exact: the post-rollback
//     reference *is* the pre-transaction one, whatever the readers and
//     the cancel are doing concurrently.

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/snapshot.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/deadline.hpp"
#include "relmore/util/diagnostics.hpp"

namespace {

using relmore::circuit::FlatTree;
using relmore::circuit::RandomTreeSpec;
using relmore::circuit::RlcTree;
using relmore::circuit::SectionId;
using relmore::circuit::SectionValues;
using relmore::engine::BatchedAnalyzer;
using relmore::engine::BatchedModels;
using relmore::engine::SharedSnapshot;
using relmore::engine::TimingEngine;
using relmore::util::CancelToken;
using relmore::util::Deadline;
using relmore::util::ErrorCode;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(RollbackSnapshotRace, CancelledReadersNeverSeeTornResults) {
  RandomTreeSpec spec;
  spec.min_sections = 40;
  spec.max_sections = 48;
  const RlcTree base = relmore::circuit::make_random_tree(spec, /*seed=*/0x5eed0009);
  const auto probe = static_cast<SectionId>(base.size() - 1);

  constexpr std::uint64_t kFinalEpoch = 80;
  constexpr std::uint64_t kCancelEpoch = kFinalEpoch / 2;
  constexpr int kReaders = 3;

  TimingEngine engine(base);
  SharedSnapshot board;
  CancelToken token;
  std::vector<double> expected(kFinalEpoch + 1, 0.0);

  expected[1] = engine.delay_50(probe);
  board.publish(FlatTree(engine.tree()), 1);

  std::thread writer([&] {
    relmore::circuit::Rng rng(0x0ddba11);
    for (std::uint64_t e = 2; e <= kFinalEpoch; ++e) {
      engine.begin_transaction();
      const int edits = rng.uniform_int(1, 4);
      for (int k = 0; k < edits; ++k) {
        const auto id =
            static_cast<SectionId>(rng.uniform_int(0, static_cast<int>(base.size()) - 1));
        SectionValues v;
        v.resistance = rng.log_uniform(spec.resistance_lo, spec.resistance_hi);
        v.inductance = rng.log_uniform(spec.inductance_lo, spec.inductance_hi);
        v.capacitance = rng.log_uniform(spec.capacitance_lo, spec.capacitance_hi);
        engine.set_section_values(id, v);
      }
      if (rng.uniform_int(0, 1) == 0) {
        engine.rollback();
      } else {
        engine.commit();
      }
      expected[e] = engine.delay_50(probe);
      board.publish(FlatTree(engine.tree()), e);
      // Trip the cancellation mid-timeline, concurrent with in-flight
      // reader analyses; everything after this point still publishes, so
      // readers exercise the stopped path against live epochs.
      if (e == kCancelEpoch) token.cancel();
    }
  });

  std::vector<std::thread> readers;
  std::vector<std::uint64_t> clean_reads(kReaders, 0);
  std::vector<std::uint64_t> stopped_reads(kReaders, 0);
  std::vector<std::uint64_t> mismatches(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_seen = 0;
      while (last_seen < kFinalEpoch) {
        const auto record = board.acquire();
        ASSERT_NE(record, nullptr);
        ASSERT_GE(record->epoch, last_seen);
        last_seen = record->epoch;
        BatchedAnalyzer batched(record->tree, /*lane_width=*/4);
        batched.set_fault_policy(relmore::util::FaultPolicy::kSkipAndFlag);
        batched.set_run_control({Deadline::none(), &token});
        batched.resize(1);
        const BatchedModels models = batched.analyze();
        if (models.stopped()) {
          EXPECT_EQ(models.stop_status().code(), ErrorCode::kCancelled);
          EXPECT_NE(models.fault_flags(0) & relmore::eed::kFaultNotRun, 0);
          ++stopped_reads[r];
          continue;
        }
        if (bits(models.delay_50(0, probe)) == bits(expected[record->epoch])) {
          ++clean_reads[r];
        } else {
          ++mismatches[r];
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_FALSE(engine.in_transaction());
  std::uint64_t total_stopped = 0;
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(mismatches[r], 0u) << "reader " << r << " saw a torn or stale result";
    total_stopped += stopped_reads[r];
  }
  // The cancel trips halfway: every reader's read of the final epoch is
  // necessarily stopped, so the stopped path was exercised.
  EXPECT_GE(total_stopped, static_cast<std::uint64_t>(kReaders));
}

}  // namespace
