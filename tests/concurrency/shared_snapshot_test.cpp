// Writer/reader stress over one SharedSnapshot — the TSan leg's main
// subject and the happens-before contract the future analysis daemon
// inherits (see snapshot.hpp).
//
// One writer owns a TimingEngine: it opens transactions, applies random
// value edits, commits or rolls back, computes the reference delay at a
// probe node, and publishes an epoch-stamped FlatTree snapshot. Reader
// threads concurrently acquire whatever snapshot is current and analyze
// it through the batched kernel. The assertions are the repo's two
// contracts at once:
//
//   * memory safety / ordering: TSan must see no race between the
//     writer's edits and the readers' analyses (records are immutable,
//     hand-off is mutex release/acquire);
//   * bitwise reproducibility: a reader's result for epoch e equals the
//     writer's reference for epoch e bit for bit, regardless of
//     interleaving — the epoch fully determines every bit of the answer.

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/snapshot.hpp"
#include "relmore/engine/timing_engine.hpp"

namespace {

using relmore::circuit::FlatTree;
using relmore::circuit::RandomTreeSpec;
using relmore::circuit::RlcTree;
using relmore::circuit::SectionId;
using relmore::circuit::SectionValues;
using relmore::engine::BatchedAnalyzer;
using relmore::engine::SharedSnapshot;
using relmore::engine::TimingEngine;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Reader-side analysis of a published snapshot: nominal values through
/// the batched kernel (bitwise-equal to scalar eed::analyze by the PR 2
/// contract, hence to the writer's TimingEngine reference by the PR 1
/// contract).
double analyze_snapshot(const FlatTree& tree, SectionId probe) {
  BatchedAnalyzer batched(tree, /*lane_width=*/4);
  batched.resize(1);  // one sample at the snapshot's nominal values
  return batched.analyze().delay_50(0, probe);
}

TEST(SharedSnapshotStress, WriterEditsReadersAnalyzeBitwise) {
  RandomTreeSpec spec;
  spec.min_sections = 40;
  spec.max_sections = 48;
  const RlcTree base = relmore::circuit::make_random_tree(spec, /*seed=*/0x5eed0007);
  const auto probe = static_cast<SectionId>(base.size() - 1);

  constexpr std::uint64_t kFinalEpoch = 120;
  constexpr int kReaders = 3;

  TimingEngine engine(base);
  SharedSnapshot board;

  // expected[e] is written by the writer strictly before epoch e is
  // published; a reader holding epoch e's record reads it strictly after
  // acquire. The publish/acquire mutex pair orders the two — this vector
  // is exactly the kind of epoch-indexed side table the daemon's result
  // cache will be.
  std::vector<double> expected(kFinalEpoch + 1, 0.0);

  expected[1] = engine.delay_50(probe);
  board.publish(FlatTree(engine.tree()), 1);

  std::thread writer([&] {
    relmore::circuit::Rng rng(0xca11ab1e);
    for (std::uint64_t e = 2; e <= kFinalEpoch; ++e) {
      engine.begin_transaction();
      const int edits = rng.uniform_int(1, 4);
      for (int k = 0; k < edits; ++k) {
        const auto id = static_cast<SectionId>(rng.uniform_int(0, static_cast<int>(base.size()) - 1));
        SectionValues v;
        v.resistance = rng.log_uniform(spec.resistance_lo, spec.resistance_hi);
        v.inductance = rng.log_uniform(spec.inductance_lo, spec.inductance_hi);
        v.capacitance = rng.log_uniform(spec.capacitance_lo, spec.capacitance_hi);
        engine.set_section_values(id, v);
      }
      // Roughly a third of the transactions roll back: the published
      // snapshot must then match the *pre-transaction* tree exactly.
      if (rng.uniform_int(0, 2) == 0) {
        engine.rollback();
      } else {
        engine.commit();
      }
      expected[e] = engine.delay_50(probe);
      board.publish(FlatTree(engine.tree()), e);
    }
  });

  std::vector<std::thread> readers;
  std::vector<std::uint64_t> reads_ok(kReaders, 0);
  std::vector<std::uint64_t> mismatches(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_seen = 0;
      while (last_seen < kFinalEpoch) {
        const auto record = board.acquire();
        ASSERT_NE(record, nullptr);
        // Epochs may only move forward between acquires.
        ASSERT_GE(record->epoch, last_seen);
        last_seen = record->epoch;
        const double got = analyze_snapshot(record->tree, probe);
        if (bits(got) == bits(expected[record->epoch])) {
          ++reads_ok[r];
        } else {
          ++mismatches[r];
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(mismatches[r], 0u) << "reader " << r << " saw a non-reproducible snapshot";
    EXPECT_GT(reads_ok[r], 0u) << "reader " << r << " never completed a read";
  }
}

TEST(SharedSnapshot, StartsEmptyAndStampsEpochs) {
  SharedSnapshot board;
  EXPECT_EQ(board.acquire(), nullptr);
  EXPECT_EQ(board.epoch(), 0u);

  RandomTreeSpec spec;
  const RlcTree tree = relmore::circuit::make_random_tree(spec, 1);
  board.publish(FlatTree(tree), 5);
  EXPECT_EQ(board.epoch(), 5u);
  const auto rec = board.acquire();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->epoch, 5u);
  EXPECT_EQ(rec->tree.size(), tree.size());
}

TEST(SharedSnapshot, RejectsEpochRegression) {
  SharedSnapshot board;
  RandomTreeSpec spec;
  const RlcTree tree = relmore::circuit::make_random_tree(spec, 2);
  board.publish(FlatTree(tree), 3);
  EXPECT_THROW(board.publish(FlatTree(tree), 3), std::invalid_argument);
  EXPECT_THROW(board.publish(FlatTree(tree), 2), std::invalid_argument);
  // The rejected publishes left the current record untouched.
  EXPECT_EQ(board.epoch(), 3u);
}

TEST(SharedSnapshot, OldRecordSurvivesLaterPublishes) {
  SharedSnapshot board;
  RandomTreeSpec spec;
  const RlcTree tree = relmore::circuit::make_random_tree(spec, 3);
  board.publish(FlatTree(tree), 1);
  const auto held = board.acquire();
  board.publish(FlatTree(tree), 2);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->epoch, 1u);           // unaffected by the later publish
  EXPECT_EQ(board.acquire()->epoch, 2u);
}

}  // namespace
