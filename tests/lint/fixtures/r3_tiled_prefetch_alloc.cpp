// Seeded R3 violation in a tiled, prefetching hot loop — the shape the
// working-set-aware kernels use. A per-tile scratch resize sneaks an
// allocation inside the marked region; relmore-lint must exit nonzero.

#include <cstddef>
#include <vector>

void tiled_downward(double* acc, const double* contrib, const int* parent, std::size_t n,
                    std::size_t tile_rows) {
  std::vector<double> scratch;
  // relmore-lint: begin-hot-loop(fixture-tiled-prefetch)
  for (std::size_t lo = 0; lo < n; lo += tile_rows) {
    const std::size_t hi = lo + tile_rows < n ? lo + tile_rows : n;
    scratch.resize(hi - lo);  // BAD: per-tile allocation in the sweep
    for (std::size_t i = lo; i < hi; ++i) {
      if (i + 16 < hi) __builtin_prefetch(&acc[static_cast<std::size_t>(parent[i + 16])], 0, 1);
      scratch[i - lo] = acc[static_cast<std::size_t>(parent[i])] + contrib[i];
    }
    for (std::size_t i = lo; i < hi; ++i) acc[i] = scratch[i - lo];
  }
  // relmore-lint: end-hot-loop
}
