// relmore-lint: fixture
// Seeded R1 violation against the deadline-aware corpus API: the
// Result<CorpusModels> from analyze_corpus_checked is dropped at
// statement level, so a kDeadlineExceeded / kCancelled stop (and every
// per-net fault) silently vanishes. relmore-lint must exit nonzero.
// Lexed, never compiled — it only has to look like the real call sites.

namespace relmore::sta {
struct Design;
struct AnalyzeOptions;
}

void time_with_budget(const relmore::sta::Design& design,
                      const relmore::sta::AnalyzeOptions& options) {
  // BAD: a deadline stop has nowhere to surface once the Result is gone.
  relmore::sta::analyze_corpus_checked(design, options);
}
