// relmore-lint: fixture
// Seeded R1 violation: a call site of the [[deprecated]] positional
// overload of analysis::compare_step_response (the PR 6 API redesign left
// the old (v_supply, samples) tail deprecated; new code must use the
// CompareOptions form). relmore-lint must exit nonzero on this TU.

#include "relmore/analysis/compare.hpp"

double old_style(const relmore::circuit::RlcTree& tree) {
  // BAD: positional (v_supply, samples) tail — the deprecated overload.
  auto row = relmore::analysis::compare_step_response(tree, 3, 1.0, 501);
  return row.delay_err_pct;
}
