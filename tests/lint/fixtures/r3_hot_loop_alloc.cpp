// Seeded R3 violations: allocation, locking, and throwing inside a marked
// hot-loop region. relmore-lint must exit nonzero on this TU.

#include <mutex>
#include <stdexcept>
#include <vector>

std::mutex m;

void per_step_sweep(std::vector<double>& out, const double* v, std::size_t n) {
  // relmore-lint: begin-hot-loop(fixture-sweep)
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v[i]);               // BAD: allocation in the step loop
    std::lock_guard<std::mutex> g(m);  // BAD: locking in the step loop
    if (v[i] < 0.0) throw std::runtime_error("negative");  // BAD: throwing
  }
  // relmore-lint: end-hot-loop
}
