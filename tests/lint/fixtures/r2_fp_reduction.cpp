// relmore-lint: lane-file
// Seeded R2 violations: order-dependent FP reductions inside a (declared)
// lane file. Both `std::reduce` (unspecified evaluation order) and an
// `omp simd reduction` clause re-associate the sum, breaking the bitwise
// contract the AoSoA kernels promise. relmore-lint must exit nonzero.

#include <numeric>
#include <vector>

double lane_sum(const std::vector<double>& values) {
  // BAD: std::reduce may re-associate the FP sum.
  return std::reduce(values.begin(), values.end(), 0.0);
}

double lane_sum_simd(const double* values, std::size_t n) {
  double acc = 0.0;
// BAD: the reduction clause builds per-lane partial sums and combines
// them in an unspecified order.
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) acc += values[i];
  return acc;
}
