// relmore-lint: fixture
// Seeded R1 violation: a Status/Result-returning call whose value is
// dropped at statement level. relmore-lint must exit nonzero on this TU.
// The file is lexed, never compiled — it only has to look like the real
// call sites do.

#include <istream>

namespace relmore::sta {
struct Design;
}

void load_corpus(std::istream& is) {
  // BAD: the Result<Design> is discarded — a parse failure vanishes.
  relmore::sta::read_design_checked(is);
}
