// relmore-lint: require-markers
// Seeded R3 meta-rule violation: this file declares itself a kernel file
// (as src/engine/batched.cpp, src/sim/flat_stepper.cpp and
// src/sim/batch_sim.cpp are, by the tool's built-in list) but carries no
// begin-hot-loop/end-hot-loop region. Deleting the markers from a real
// kernel must itself be a lint failure; relmore-lint must exit nonzero.

void step(double* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= 0.5;
}
