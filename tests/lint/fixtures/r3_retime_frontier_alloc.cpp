// Seeded R3 violation in a dirty-cone repropagation sweep — the shape the
// incremental re-timer's frontier loops use (timing_graph.cpp's
// retime-forward-frontier / retime-backward-frontier regions). The dirty
// work-list grows with push_back inside the marked region; relmore-lint
// must exit nonzero.

#include <cstddef>
#include <vector>

void retime_forward(const int* topo, const int* fanout, const int* fanout_off, std::size_t n,
                    std::vector<char>& dirty, double* arrival) {
  std::vector<int> frontier;
  // relmore-lint: begin-hot-loop(fixture-retime-frontier)
  for (std::size_t k = 0; k < n; ++k) {
    const int ni = topo[k];
    if (dirty[static_cast<std::size_t>(ni)] == 0) continue;
    const double before = arrival[ni];
    arrival[ni] = before * 0.5 + 1.0;
    if (arrival[ni] == before) continue;  // frontier cutoff: bits unchanged
    for (int e = fanout_off[ni]; e < fanout_off[ni + 1]; ++e) {
      dirty[static_cast<std::size_t>(fanout[e])] = 1;
      frontier.push_back(fanout[e]);  // BAD: work-list growth in the sweep
    }
  }
  // relmore-lint: end-hot-loop
  for (const int ni : frontier) arrival[ni] += 0.0;
}
