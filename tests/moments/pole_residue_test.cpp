#include "relmore/moments/pole_residue.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/moments/tree_moments.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::moments {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(TwoPole, SingleSectionPolesExact) {
  // For one RLC section the two-pole model is exact: poles match the
  // circuit's true poles.
  RlcTree t;
  const double r = 40.0;
  const double l = 2e-9;
  const double c = 0.5e-12;
  t.add_section(circuit::kInput, r, l, c);
  const auto m = first_two_moments(t, 0);
  const PoleResidueModel model = two_pole_model(m.m1, m.m2);
  const sim::ModalSolver exact(t);
  ASSERT_EQ(model.poles.size(), 2u);
  for (const auto& p : model.poles) {
    double best = 1e300;
    for (const auto& q : exact.poles()) best = std::min(best, std::abs(p - q));
    EXPECT_LT(best, 1e-3 * std::abs(p));
  }
}

TEST(TwoPole, DcGainIsUnity) {
  RlcTree t;
  t.add_section(circuit::kInput, 40.0, 2e-9, 0.5e-12);
  const auto m = first_two_moments(t, 0);
  const PoleResidueModel model = two_pole_model(m.m1, m.m2);
  EXPECT_NEAR(model.dc_gain(), 1.0, 1e-9);
}

TEST(TwoPole, StepResponseStartsAtZeroEndsAtSupply) {
  RlcTree t;
  t.add_section(circuit::kInput, 40.0, 2e-9, 0.5e-12);
  const auto m = first_two_moments(t, 0);
  const PoleResidueModel model = two_pole_model(m.m1, m.m2);
  EXPECT_NEAR(model.step_response(0.0, 1.8), 0.0, 1e-9);
  EXPECT_NEAR(model.step_response(1e-6, 1.8), 1.8, 1e-6);
  EXPECT_DOUBLE_EQ(model.step_response(-1.0, 1.8), 0.0);
}

TEST(TwoPole, DegeneratesToSinglePoleForRc) {
  // Pure RC single section: m2 = (RC)^2 exactly, so b2 = 0.
  RlcTree t;
  t.add_section(circuit::kInput, 100.0, 0.0, 1e-12);
  const auto m = first_two_moments(t, 0);
  const PoleResidueModel model = two_pole_model(m.m1, m.m2);
  ASSERT_EQ(model.poles.size(), 1u);
  EXPECT_NEAR(model.poles[0].real(), -1.0 / (100.0 * 1e-12), 1.0);
}

TEST(Awe, ReconstructsSingleSectionExactly) {
  RlcTree t;
  t.add_section(circuit::kInput, 40.0, 2e-9, 0.5e-12);
  const auto m = tree_moments(t, 3);
  std::vector<double> node_m;
  for (const auto& order : m) node_m.push_back(order[0]);
  const PoleResidueModel model = awe_model(node_m, 2);
  const sim::ModalSolver exact(t);
  ASSERT_EQ(model.poles.size(), 2u);
  for (const auto& p : model.poles) {
    double best = 1e300;
    for (const auto& q : exact.poles()) best = std::min(best, std::abs(p - q));
    EXPECT_LT(best, 1e-6 * std::abs(p));
  }
  EXPECT_NEAR(model.dc_gain(), 1.0, 1e-9);
}

TEST(Awe, HigherOrderTracksSimulatorOnFig5) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const auto node7 = static_cast<SectionId>(6);
  const auto m = tree_moments(t, 7);
  std::vector<double> node_m;
  for (const auto& order : m) node_m.push_back(order[static_cast<std::size_t>(node7)]);
  const PoleResidueModel model = awe_model(node_m, 4);
  if (!model.stable()) GTEST_SKIP() << "AWE q=4 unstable on this tree (known AWE artifact)";
  sim::TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.dt = 2.5e-13;
  const auto res = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto grid = sim::uniform_grid(opts.t_stop, 301);
  const sim::Waveform awe_w = model.step_waveform(grid, 1.0);
  EXPECT_LT(awe_w.max_abs_difference(res.waveform(node7)), 0.08);
}

TEST(Awe, RejectsInsufficientMoments) {
  EXPECT_THROW(awe_model({1.0, -1.0}, 2), std::invalid_argument);
  EXPECT_THROW(awe_model({1.0}, 0), std::invalid_argument);
}

TEST(PoleResidue, StabilityPredicate) {
  PoleResidueModel stable;
  stable.poles = {{-1.0, 2.0}, {-1.0, -2.0}};
  stable.residues = {{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_TRUE(stable.stable());
  PoleResidueModel unstable;
  unstable.poles = {{0.5, 0.0}};
  unstable.residues = {{1.0, 0.0}};
  EXPECT_FALSE(unstable.stable());
  EXPECT_FALSE(PoleResidueModel{}.stable());
}

}  // namespace
}  // namespace relmore::moments
