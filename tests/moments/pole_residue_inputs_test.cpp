#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/moments/pole_residue.hpp"
#include "relmore/moments/tree_moments.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::moments {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Order-2 AWE of a single RLC section is exact, so its input responses
/// must match the exact modal solutions for every input shape.
class SingleSectionInputs : public ::testing::Test {
 protected:
  SingleSectionInputs() {
    tree_.add_section(circuit::kInput, 40.0, 2e-9, 0.5e-12);
    const auto m = tree_moments(tree_, 3);
    std::vector<double> node_m;
    for (const auto& order : m) node_m.push_back(order[0]);
    model_ = awe_model(node_m, 2);
  }
  RlcTree tree_;
  PoleResidueModel model_;
};

TEST_F(SingleSectionInputs, ExponentialMatchesModal) {
  const sim::ModalSolver exact(tree_);
  const double tau = 0.4e-9;
  const auto grid = sim::uniform_grid(6e-9, 61);
  const auto ref = exact.response(0, sim::ExpSource{1.0, tau}, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(model_.exp_input_response(grid[i], 1.0, tau), ref[i], 1e-6)
        << "t=" << grid[i];
  }
}

TEST_F(SingleSectionInputs, RampMatchesModal) {
  const sim::ModalSolver exact(tree_);
  const double rise = 0.8e-9;
  const auto grid = sim::uniform_grid(6e-9, 61);
  const auto ref = exact.response(0, sim::RampSource{1.0, rise}, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(model_.ramp_input_response(grid[i], 1.0, rise), ref[i], 1e-6)
        << "t=" << grid[i];
  }
}

TEST_F(SingleSectionInputs, ZeroRiseRampIsStep) {
  for (double t : {0.1e-9, 1e-9}) {
    EXPECT_DOUBLE_EQ(model_.ramp_input_response(t, 1.5, 0.0), model_.step_response(t, 1.5));
  }
}

TEST_F(SingleSectionInputs, CausalAndSettling) {
  EXPECT_DOUBLE_EQ(model_.exp_input_response(-1e-9, 1.0, 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(model_.ramp_input_response(0.0, 1.0, 1e-9), 0.0);
  EXPECT_NEAR(model_.exp_input_response(200e-9, 1.8, 1e-9), 1.8, 1e-6);
  EXPECT_NEAR(model_.ramp_input_response(200e-9, 1.8, 1e-9), 1.8, 1e-6);
}

TEST_F(SingleSectionInputs, ExpTinyTauApproachesStep) {
  for (double t : {0.3e-9, 1.5e-9}) {
    EXPECT_NEAR(model_.exp_input_response(t, 1.0, 1e-15), model_.step_response(t, 1.0), 1e-4);
  }
}

TEST_F(SingleSectionInputs, RejectsBadTau) {
  EXPECT_THROW((void)model_.exp_input_response(1e-9, 1.0, 0.0), std::invalid_argument);
}

TEST(PoleResidueInputs, Q4ModelTracksModalOnFig8) {
  SectionId out = circuit::kInput;
  const RlcTree tree = circuit::make_fig8_tree(&out);
  const auto models = awe_models_for_tree(tree, 4);
  const PoleResidueModel m = stabilized(models[static_cast<std::size_t>(out)]);
  const sim::ModalSolver exact(tree);
  const double tau = 0.5e-9;
  const auto grid = sim::uniform_grid(6e-9, 41);
  const auto ref = exact.response(out, sim::ExpSource{1.0, tau}, grid);
  double worst = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    worst = std::max(worst, std::abs(m.exp_input_response(grid[i], 1.0, tau) - ref[i]));
  }
  EXPECT_LT(worst, 0.05);
}

}  // namespace
}  // namespace relmore::moments
