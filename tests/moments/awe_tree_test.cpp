#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/moments/pole_residue.hpp"
#include "relmore/moments/tree_moments.hpp"
#include "relmore/sim/state_space.hpp"

namespace relmore::moments {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(AweTree, BuildsModelForEveryNode) {
  const RlcTree t = circuit::make_fig8_tree(nullptr);
  const auto models = awe_models_for_tree(t, 3);
  ASSERT_EQ(models.size(), t.size());
  for (const auto& m : models) {
    EXPECT_GE(m.poles.size(), 1u);
    EXPECT_LE(m.poles.size(), 3u);
    EXPECT_NEAR(m.dc_gain(), 1.0, 1e-6);
  }
}

TEST(AweTree, HigherOrderMatchesExactPolesOnLine) {
  // A 2-section strict-RLC line has 4 true poles; q=4 AWE recovers them.
  const RlcTree t = circuit::make_line(2, {30.0, 2e-9, 0.3e-12});
  const auto models = awe_models_for_tree(t, 4);
  const sim::ModalSolver exact(t);
  const auto& sink_model = models.back();
  ASSERT_EQ(sink_model.poles.size(), 4u);
  for (const auto& p : sink_model.poles) {
    double best = 1e300;
    for (const auto& q : exact.poles()) best = std::min(best, std::abs(p - q));
    EXPECT_LT(best, 1e-4 * std::abs(p)) << "pole " << p.real() << "+" << p.imag() << "i";
  }
}

TEST(AweTree, DegenerateNodeFallsBackToLowerOrder) {
  // A single RLC section has exactly 2 poles: asking for q=4 must fall
  // back rather than fail.
  RlcTree t;
  t.add_section(circuit::kInput, 40.0, 2e-9, 0.5e-12);
  const auto models = awe_models_for_tree(t, 4);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_LE(models[0].poles.size(), 4u);
  EXPECT_NEAR(models[0].dc_gain(), 1.0, 1e-6);
}

TEST(AweTree, RejectsBadOrder) {
  const RlcTree t = circuit::make_fig8_tree(nullptr);
  EXPECT_THROW(awe_models_for_tree(t, 0), std::invalid_argument);
}

TEST(Stabilized, PassesThroughStableModel) {
  PoleResidueModel m;
  m.poles = {{-1.0, 0.0}, {-2.0, 0.0}};
  m.residues = {{2.0, 0.0}, {-2.0, 0.0}};
  const PoleResidueModel s = stabilized(m);
  EXPECT_EQ(s.poles.size(), 2u);
}

TEST(Stabilized, DropsUnstablePolesAndRestoresGain) {
  PoleResidueModel m;
  m.poles = {{-1.0, 0.0}, {+3.0, 0.0}};
  m.residues = {{0.5, 0.0}, {1.0, 0.0}};
  ASSERT_FALSE(m.stable());
  const PoleResidueModel s = stabilized(m);
  ASSERT_EQ(s.poles.size(), 1u);
  EXPECT_LT(s.poles[0].real(), 0.0);
  EXPECT_NEAR(s.dc_gain(), 1.0, 1e-12);
}

TEST(Stabilized, ThrowsWhenNothingStable) {
  PoleResidueModel m;
  m.poles = {{1.0, 0.0}};
  m.residues = {{1.0, 0.0}};
  EXPECT_THROW(stabilized(m), std::invalid_argument);
}

/// Property sweep: for random strict-RLC trees, the stabilized q=4 AWE
/// step response settles at the supply.
class AweRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AweRandomSweep, StabilizedModelsSettle) {
  circuit::RandomTreeSpec spec;
  spec.min_sections = 4;
  spec.max_sections = 12;
  spec.inductance_lo = 0.2e-9;
  const RlcTree t = circuit::make_random_tree(spec, GetParam());
  const auto models = awe_models_for_tree(t, 4);
  for (const auto& raw : models) {
    const PoleResidueModel m = stabilized(raw);
    EXPECT_TRUE(m.stable());
    // Step response approaches V at 20x the slowest time constant.
    double slowest = 0.0;
    for (const auto& p : m.poles) slowest = std::max(slowest, -1.0 / p.real());
    EXPECT_NEAR(m.step_response(20.0 * slowest, 1.0), 1.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Moments, AweRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace relmore::moments
