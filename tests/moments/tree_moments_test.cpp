#include "relmore/moments/tree_moments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/model.hpp"

namespace relmore::moments {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(TreeMoments, ZerothMomentIsOne) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const auto m = tree_moments(t, 0);
  ASSERT_EQ(m.size(), 1u);
  for (double v : m[0]) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(TreeMoments, SingleSectionAnalytic) {
  // H(s) = 1/(1 + sRC + s^2 LC): m1 = -RC, m2 = (RC)^2 - LC.
  RlcTree t;
  const double r = 50.0;
  const double l = 3e-9;
  const double c = 0.4e-12;
  t.add_section(circuit::kInput, r, l, c);
  const auto m = tree_moments(t, 3);
  EXPECT_NEAR(m[1][0], -r * c, 1e-25);
  EXPECT_NEAR(m[2][0], r * c * r * c - l * c, 1e-35);
  // m3 = -(RC)^3 + 2 RC LC (from the series expansion).
  EXPECT_NEAR(m[3][0], -std::pow(r * c, 3) + 2.0 * r * c * l * c, 1e-45);
}

TEST(TreeMoments, FirstMomentIsNegativeElmore) {
  // m1_i = -sum_k C_k R_ki = -(Elmore time constant) for every node.
  const RlcTree t = circuit::make_fig8_tree(nullptr);
  const auto m = tree_moments(t, 1);
  const auto model = eed::analyze(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(m[1][i], -model.nodes[i].sum_rc, 1e-22) << "node " << i;
  }
}

TEST(TreeMoments, SecondMomentPaperApproximationStructure) {
  // The paper's eq. 28: m2 ~ (sum RC)^2 - sum LC. Exact on a single
  // section; an approximation (cross terms) on deeper trees.
  RlcTree line = circuit::make_line(2, {30.0, 2e-9, 0.3e-12});
  const auto m = tree_moments(line, 2);
  const auto model = eed::analyze(line);
  const double approx =
      model.nodes[1].sum_rc * model.nodes[1].sum_rc - model.nodes[1].sum_lc;
  // Same sign and magnitude ballpark (within 2x), not exact.
  EXPECT_GT(m[2][1] / approx, 0.5);
  EXPECT_LT(m[2][1] / approx, 2.0);
}

TEST(TreeMoments, RcLineMatchesClosedForm) {
  // Uniform RC line, 2 sections: m1 at node 2 = -(R*(C1+C2) + R*C2).
  RlcTree t = circuit::make_line(2, {100.0, 0.0, 1e-12});
  const auto m = tree_moments(t, 1);
  EXPECT_NEAR(m[1][1], -(100.0 * 2e-12 + 100.0 * 1e-12), 1e-22);
}

TEST(TreeMoments, HigherOrderMomentsAlternateForRc) {
  // For an RC tree all transfer-function moments alternate in sign:
  // m_q = (-1)^q |m_q| (all poles real negative).
  const RlcTree t = circuit::make_balanced_tree(3, 2, {50.0, 0.0, 0.2e-12});
  const auto m = tree_moments(t, 5);
  for (int q = 1; q <= 5; ++q) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double v = m[static_cast<std::size_t>(q)][i];
      EXPECT_GT(v * (q % 2 == 0 ? 1.0 : -1.0), 0.0) << "q=" << q << " node=" << i;
    }
  }
}

TEST(TreeMoments, RejectsBadArguments) {
  EXPECT_THROW(tree_moments(RlcTree{}, 2), std::invalid_argument);
  const RlcTree t = circuit::make_line(1, {1.0, 0.0, 1e-12});
  EXPECT_THROW(tree_moments(t, -1), std::invalid_argument);
}

TEST(TreeMoments, FirstTwoConvenienceMatchesFull) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const auto full = tree_moments(t, 2);
  const auto two = first_two_moments(t, out);
  EXPECT_DOUBLE_EQ(two.m1, full[1][static_cast<std::size_t>(out)]);
  EXPECT_DOUBLE_EQ(two.m2, full[2][static_cast<std::size_t>(out)]);
}

}  // namespace
}  // namespace relmore::moments
