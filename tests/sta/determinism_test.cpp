#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "relmore/sta/corpus.hpp"
#include "relmore/sta/synthetic.hpp"
#include "relmore/sta/timing_graph.hpp"

namespace relmore::sta {
namespace {

/// The corpus contract under test: execution knobs (threads, lane width,
/// grouping threshold, env overrides) never change a single output bit.
/// Doubles are compared through their bit patterns, not ==, so a -0.0/+0.0
/// or ULP drift would fail loudly.

Design synthetic_design() {
  SyntheticSpec spec;
  spec.nets = 64;
  spec.seed = 5;
  spec.topo_classes = 6;  // ~11 nets per class: every class forms a batch group
  spec.chain_depth = 4;
  util::Result<Design> r = make_synthetic_design_checked(spec);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return std::move(r).value();
}

void push(std::vector<std::uint64_t>& out, double v) {
  out.push_back(std::bit_cast<std::uint64_t>(v));
}

std::vector<std::uint64_t> bits_of(const CorpusModels& corpus) {
  std::vector<std::uint64_t> out;
  for (const NetModels& net : corpus.nets) {
    out.push_back(net.faulted ? 1 : 0);
    for (const eed::NodeModel& m : net.taps) {
      push(out, m.sum_rc);
      push(out, m.sum_lc);
      push(out, m.zeta);
      push(out, m.omega_n);
    }
  }
  return out;
}

std::vector<std::uint64_t> bits_of(const TimingResult& r) {
  std::vector<std::uint64_t> out;
  for (const NetTiming& nt : r.nets) {
    out.push_back(nt.faulted ? 1 : 0);
    push(out, nt.driver.arrival);
    push(out, nt.driver.slew);
    push(out, nt.driver.required);
    for (const PointTiming& t : nt.taps) {
      push(out, t.arrival);
      push(out, t.slew);
      push(out, t.required);
    }
    for (const double w : nt.wire_delay) push(out, w);
  }
  push(out, r.summary.wns);
  push(out, r.summary.tns);
  for (const EndpointSlack& e : r.summary.endpoints_by_slack) push(out, e.slack);
  return out;
}

CorpusModels run_corpus(const Design& d, const AnalyzeOptions& options) {
  util::Result<CorpusModels> r = analyze_corpus_checked(d, options);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return std::move(r).value();
}

TimingResult run_timing(const Design& d, const AnalyzeOptions& options) {
  util::Result<TimingResult> r =
      TimingGraph::build_checked(d).value().analyze_checked(options);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return std::move(r).value();
}

TEST(Determinism, CorpusBitwiseAcrossThreadsAndLaneWidths) {
  const Design d = synthetic_design();
  AnalyzeOptions base;
  base.threads = 1;
  base.lane_width = 1;
  const std::vector<std::uint64_t> reference = bits_of(run_corpus(d, base));
  ASSERT_FALSE(reference.empty());
  for (const unsigned threads : {1u, 4u}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      AnalyzeOptions o;
      o.threads = threads;
      o.lane_width = lanes;
      EXPECT_EQ(bits_of(run_corpus(d, o)), reference)
          << "threads=" << threads << " lanes=" << lanes;
    }
  }
}

TEST(Determinism, BatchedAndScalarPathsAgreeBitwise) {
  const Design d = synthetic_design();
  AnalyzeOptions batched;  // default min_group: topology classes batch
  const CorpusModels with_lanes = run_corpus(d, batched);
  EXPECT_GT(with_lanes.batched_nets, 0u);

  AnalyzeOptions scalar;
  scalar.min_group = 1u << 30;  // no group is ever large enough
  const CorpusModels scalar_only = run_corpus(d, scalar);
  EXPECT_EQ(scalar_only.batched_nets, 0u);

  EXPECT_EQ(bits_of(with_lanes), bits_of(scalar_only));
}

TEST(Determinism, TimingResultBitwiseAcrossExecutionKnobs) {
  const Design d = synthetic_design();
  AnalyzeOptions base;
  base.threads = 1;
  base.lane_width = 1;
  const TimingResult ref = run_timing(d, base);
  const std::vector<std::uint64_t> reference = bits_of(ref);
  EXPECT_EQ(ref.summary.untimed_endpoints, 0u);
  EXPECT_EQ(ref.summary.faulted_nets, 0u);
  for (const unsigned threads : {1u, 4u}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      AnalyzeOptions o;
      o.threads = threads;
      o.lane_width = lanes;
      EXPECT_EQ(bits_of(run_timing(d, o)), reference)
          << "threads=" << threads << " lanes=" << lanes;
    }
  }
}

TEST(Determinism, EnvThreadOverrideDoesNotChangeResults) {
  const Design d = synthetic_design();
  AnalyzeOptions base;
  base.threads = 2;
  const std::vector<std::uint64_t> reference = bits_of(run_timing(d, base));

  ASSERT_EQ(setenv("RELMORE_THREADS", "4", 1), 0);
  AnalyzeOptions from_env;  // threads = 0: engine reads RELMORE_THREADS
  const std::vector<std::uint64_t> via_env = bits_of(run_timing(d, from_env));
  unsetenv("RELMORE_THREADS");
  EXPECT_EQ(via_env, reference);
}

}  // namespace
}  // namespace relmore::sta
