#include "relmore/sta/timing_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>

#include "relmore/sta/design.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {
namespace {

using util::ErrorCode;

/// Every cell has slewgain=0 slewfactor=0, so each wire is driven by an
/// ideal step and both halves of every stage are closed forms we can
/// hand-compute:
///   wire (pure RC, step): delay = ln2 * SR(tap), slew out = ln9 * SR(tap)
///   gate (bilinear table): delay = intrinsic + drive_r * load (exact)
///
/// SR at the taps (pin caps folded): n0@s1: 1k*(10f+20f) + 1k*20f = 50 ps;
/// n1@s0: 500*(20f+10f) = 15 ps; n2@s0: 400*25f = 10 ps.
/// Gate delays: u0 = 1p + 1k*30f = 31 ps; u1 = 5p + 2k*25f = 55 ps.
/// Endpoint arrival = 86 ps + ln2 * 75 ps ~= 137.99 ps; required 200 ps.
constexpr const char* kGolden = R"(design golden
cell g1 r=1k cap=10f intrinsic=1p slewgain=0 slewfactor=0
cell g2 r=2k cap=10f intrinsic=5p slewgain=0 slewfactor=0
net n0
section s0 - R=1k L=0 C=10f
section s1 s0 R=1k L=0 C=10f
end
net n1
section s0 - R=500 L=0 C=20f
end
net n2
section s0 - R=400 L=0 C=25f
end
input clk n0 at=0 slew=0
output out n2:s0 required=200p
inst u0 g1 n1 n0:s1
inst u1 g2 n2 n1:s0
clock 1n
)";

constexpr double kTol = 1e-18;  // attosecond; everything above is closed-form

Design parse(const std::string& text) {
  std::istringstream is(text);
  return std::move(read_design_checked(is)).value();
}

TimingResult analyze(const Design& d, const AnalyzeOptions& options = {}) {
  util::Result<TimingGraph> g = TimingGraph::build_checked(d);
  EXPECT_TRUE(g.is_ok()) << g.status().to_string();
  util::Result<TimingResult> r = g.value().analyze_checked(options);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return std::move(r).value();
}

TEST(TimingGraph, GoldenThreeStageArrivalsAndSlews) {
  const Design d = parse(kGolden);
  const TimingResult res = analyze(d);
  const double ln2 = std::log(2.0);
  const double ln9 = std::log(9.0);
  const auto n0 = static_cast<std::size_t>(d.find_net("n0"));
  const auto n1 = static_cast<std::size_t>(d.find_net("n1"));
  const auto n2 = static_cast<std::size_t>(d.find_net("n2"));

  // Stage 1: step launch at clk, wire to u0's pin.
  EXPECT_TRUE(res.nets[n0].driver.timed);
  EXPECT_NEAR(res.nets[n0].driver.arrival, 0.0, kTol);
  EXPECT_NEAR(res.nets[n0].wire_delay[0], ln2 * 50e-12, kTol);
  EXPECT_NEAR(res.nets[n0].taps[0].arrival, ln2 * 50e-12, kTol);
  EXPECT_NEAR(res.nets[n0].taps[0].slew, ln9 * 50e-12, kTol);

  // Stage 2: u0 (31 ps, output slew 0), wire n1.
  EXPECT_NEAR(res.nets[n1].driver.arrival, ln2 * 50e-12 + 31e-12, kTol);
  EXPECT_NEAR(res.nets[n1].driver.slew, 0.0, kTol);
  EXPECT_NEAR(res.nets[n1].wire_delay[0], ln2 * 15e-12, kTol);

  // Stage 3: u1 (55 ps), wire n2 to the endpoint.
  EXPECT_NEAR(res.nets[n2].driver.arrival, 86e-12 + ln2 * 65e-12, kTol);
  EXPECT_NEAR(res.nets[n2].wire_delay[0], ln2 * 10e-12, kTol);
  const double endpoint_arrival = 86e-12 + ln2 * 75e-12;
  EXPECT_NEAR(res.nets[n2].taps[0].arrival, endpoint_arrival, kTol);

  // Required times back-propagate through the same stage delays.
  EXPECT_NEAR(res.nets[n2].taps[0].required, 200e-12, kTol);
  EXPECT_NEAR(res.nets[n2].driver.required, 200e-12 - ln2 * 10e-12, kTol);
  EXPECT_NEAR(res.nets[n1].taps[0].required, 200e-12 - ln2 * 10e-12 - 55e-12, kTol);
  EXPECT_TRUE(res.nets[n0].driver.constrained);

  // Summary.
  const TimingSummary& s = res.summary;
  EXPECT_EQ(s.endpoints, 1u);
  EXPECT_EQ(s.constrained_endpoints, 1u);
  EXPECT_EQ(s.untimed_endpoints, 0u);
  EXPECT_EQ(s.faulted_nets, 0u);
  ASSERT_EQ(s.endpoints_by_slack.size(), 1u);
  const EndpointSlack& row = s.endpoints_by_slack[0];
  EXPECT_EQ(row.name, "out");
  EXPECT_TRUE(row.timed);
  EXPECT_TRUE(row.constrained);
  EXPECT_NEAR(row.arrival, endpoint_arrival, kTol);
  EXPECT_NEAR(row.slack, 200e-12 - endpoint_arrival, kTol);
  EXPECT_NEAR(s.wns, row.slack, kTol);  // met design: WNS = min (positive) slack
  EXPECT_NEAR(s.tns, 0.0, kTol);
}

TEST(TimingGraph, EndpointSlackQueries) {
  const Design d = parse(kGolden);
  const TimingResult res = analyze(d);
  util::Result<double> s = endpoint_slack_checked(d, res, "out");
  ASSERT_TRUE(s.is_ok());
  EXPECT_NEAR(s.value(), 200e-12 - (86e-12 + std::log(2.0) * 75e-12), kTol);
  EXPECT_EQ(endpoint_slack_checked(d, res, "clk").status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(endpoint_slack_checked(d, res, "zz").status().code(), ErrorCode::kInvalidArgument);
}

TEST(TimingGraph, WorstPathBacktracksLaunchToEndpoint) {
  const Design d = parse(kGolden);
  const TimingResult res = analyze(d);
  util::Result<std::vector<PathReport>> r = worst_paths_checked(d, res, 3);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 1u);  // only one endpoint exists
  const PathReport& path = r.value()[0];
  EXPECT_EQ(path.endpoint, "out");
  EXPECT_TRUE(path.constrained);
  ASSERT_EQ(path.points.size(), 6u);  // port, wire, gate, wire, gate, wire
  EXPECT_EQ(path.points.front().point, "port clk");
  EXPECT_EQ(path.points[1].point, "net n0 @ s1");
  EXPECT_EQ(path.points[2].point, "u0 (g1)");
  EXPECT_EQ(path.points[4].point, "u1 (g2)");
  EXPECT_EQ(path.points.back().point, "net n2 @ s0");
  // Increments along the path sum to the endpoint arrival (launch at 0).
  double sum = 0.0;
  for (const PathPoint& p : path.points) sum += p.incr;
  EXPECT_NEAR(sum, path.arrival, kTol);
  EXPECT_NEAR(path.points.back().arrival, path.arrival, kTol);

  const std::string text = format_path(path);
  EXPECT_NE(text.find("Path to endpoint 'out'"), std::string::npos);
  EXPECT_NE(text.find("slack"), std::string::npos);
  EXPECT_EQ(text.find("(VIOLATED)"), std::string::npos);  // slack is positive
  EXPECT_FALSE(format_summary(res.summary).empty());
}

TEST(TimingGraph, UnconstrainedEndpointsAreExcludedFromWnsTns) {
  // Same design, no required= and no clock: the endpoint still times but
  // does not constrain anything.
  std::string text = kGolden;
  text.replace(text.find(" required=200p"), 14, "");
  text.replace(text.find("clock 1n\n"), 9, "");
  const Design d = parse(text);
  const TimingResult res = analyze(d);
  EXPECT_EQ(res.summary.endpoints, 1u);
  EXPECT_EQ(res.summary.constrained_endpoints, 0u);
  EXPECT_EQ(res.summary.untimed_endpoints, 0u);
  EXPECT_NEAR(res.summary.wns, 0.0, kTol);
  EXPECT_NEAR(res.summary.tns, 0.0, kTol);
  ASSERT_EQ(res.summary.endpoints_by_slack.size(), 1u);
  EXPECT_TRUE(res.summary.endpoints_by_slack[0].timed);
  EXPECT_FALSE(res.summary.endpoints_by_slack[0].constrained);
  // The slack query still answers: required is +inf.
  util::Result<double> s = endpoint_slack_checked(d, res, "out");
  ASSERT_TRUE(s.is_ok());
  EXPECT_TRUE(std::isinf(s.value()));
}

TEST(TimingGraph, ViolatedEndpointShowsNegativeSlack) {
  std::string text = kGolden;
  text.replace(text.find("required=200p"), 13, "required=100p");
  const Design d = parse(text);
  const TimingResult res = analyze(d);
  const double endpoint_arrival = 86e-12 + std::log(2.0) * 75e-12;  // ~138 ps
  EXPECT_NEAR(res.summary.wns, 100e-12 - endpoint_arrival, kTol);
  EXPECT_NEAR(res.summary.tns, 100e-12 - endpoint_arrival, kTol);
  util::Result<std::vector<PathReport>> r = worst_paths_checked(d, res, 1);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_NE(format_path(r.value()[0]).find("(VIOLATED)"), std::string::npos);
}

TEST(TimingGraph, FaultedNetPoisonsOnlyItsOwnCone) {
  // Two independent port->net->port paths; nb's moments overflow to inf
  // (R*C ~ 1e330), so ob must come back untimed while oa stays timed.
  const char* text =
      "net na\nsection s0 - R=100 L=0 C=10f\nend\n"
      "net nb\nsection s0 - R=1e300 L=0 C=1e30\nend\n"
      "input a na at=0 slew=0\n"
      "input b nb at=0 slew=0\n"
      "output oa na:s0 required=1n\n"
      "output ob nb:s0 required=1n\n";
  const Design d = parse(text);
  const TimingResult res = analyze(d);  // default kSkipAndFlag
  EXPECT_EQ(res.summary.endpoints, 2u);
  EXPECT_EQ(res.summary.untimed_endpoints, 1u);
  EXPECT_EQ(res.summary.faulted_nets, 1u);
  EXPECT_TRUE(res.nets[static_cast<std::size_t>(d.find_net("nb"))].faulted);
  EXPECT_FALSE(res.nets[static_cast<std::size_t>(d.find_net("na"))].faulted);

  util::Result<double> ok = endpoint_slack_checked(d, res, "oa");
  ASSERT_TRUE(ok.is_ok());
  EXPECT_NEAR(ok.value(), 1e-9 - std::log(2.0) * 1e-12, kTol);  // SR = 100 * 10f = 1 ps
  util::Result<double> bad = endpoint_slack_checked(d, res, "ob");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kNonFiniteMoment);
  EXPECT_EQ(bad.status().net(), "nb");

  // Under kThrow the corpus join surfaces the faulted net as a Status
  // (never an exception across workers).
  AnalyzeOptions strict;
  strict.fault_policy = util::FaultPolicy::kThrow;
  util::Result<TimingGraph> g = TimingGraph::build_checked(d);
  ASSERT_TRUE(g.is_ok());
  util::Result<TimingResult> thrown = g.value().analyze_checked(strict);
  ASSERT_FALSE(thrown.is_ok());
  EXPECT_EQ(thrown.status().net(), "nb");
}

TEST(TimingGraph, BuildRejectsUnfinalizedDesigns) {
  Design empty;
  EXPECT_EQ(TimingGraph::build_checked(empty).status().code(), ErrorCode::kEmptyTree);

  Design d = parse(kGolden);
  d.nets[0].tree.add_section(circuit::kInput, 1.0, 0.0, 1e-15, "stale");
  util::Result<TimingGraph> g = TimingGraph::build_checked(d);
  ASSERT_FALSE(g.is_ok());  // flat snapshot no longer matches the tree
  EXPECT_EQ(g.status().net(), "n0");
}

}  // namespace
}  // namespace relmore::sta
