#include "relmore/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>

namespace relmore {
namespace {

using util::ErrorCode;

constexpr const char* kGolden = R"(design golden
cell g1 r=1k cap=10f intrinsic=1p slewgain=0 slewfactor=0
cell g2 r=2k cap=10f intrinsic=5p slewgain=0 slewfactor=0
net n0
section s0 - R=1k L=0 C=10f
section s1 s0 R=1k L=0 C=10f
end
net n1
section s0 - R=500 L=0 C=20f
end
net n2
section s0 - R=400 L=0 C=25f
end
input clk n0 at=0 slew=0
output out n2:s0 required=200p
inst u0 g1 n1 n0:s1
inst u1 g2 n2 n1:s0
clock 1n
)";

// Hand-computed in timing_graph_test.cpp: gate delays 31 + 55 ps, wire
// SRs 50 + 15 + 10 ps, all pure-RC step stages.
const double kEndpointArrival = 86e-12 + std::log(2.0) * 75e-12;

TEST(Timer, LoadAnalyzeQueryReport) {
  Timer timer;
  std::istringstream is(kGolden);
  ASSERT_TRUE(timer.load(is).is_ok());
  ASSERT_TRUE(timer.loaded());
  ASSERT_NE(timer.design(), nullptr);
  EXPECT_EQ(timer.design()->name, "golden");

  util::Result<sta::TimingSummary> summary = timer.analyze();
  ASSERT_TRUE(summary.is_ok()) << summary.status().to_string();
  EXPECT_EQ(summary.value().endpoints, 1u);
  EXPECT_NEAR(summary.value().wns, 200e-12 - kEndpointArrival, 1e-18);

  util::Result<double> slack = timer.slack("out");
  ASSERT_TRUE(slack.is_ok());
  EXPECT_NEAR(slack.value(), 200e-12 - kEndpointArrival, 1e-18);
  EXPECT_EQ(timer.slack("clk").status().code(), ErrorCode::kInvalidArgument);

  util::Result<std::vector<sta::PathReport>> paths = timer.report_worst_paths(4);
  ASSERT_TRUE(paths.is_ok());
  ASSERT_EQ(paths.value().size(), 1u);
  EXPECT_EQ(paths.value()[0].endpoint, "out");

  std::ostringstream os;
  ASSERT_TRUE(timer.report_timing(os, 1).is_ok());
  EXPECT_NE(os.str().find("endpoints: 1"), std::string::npos);
  EXPECT_NE(os.str().find("Path to endpoint 'out'"), std::string::npos);
}

TEST(Timer, QueriesAnalyzeLazily) {
  Timer timer;
  std::istringstream is(kGolden);
  ASSERT_TRUE(timer.load(is).is_ok());
  EXPECT_EQ(timer.result(), nullptr);  // not timed yet
  ASSERT_TRUE(timer.slack("out").is_ok());
  ASSERT_NE(timer.result(), nullptr);  // slack() triggered the analysis
  EXPECT_EQ(timer.result()->summary.endpoints, 1u);
}

TEST(Timer, UnloadedTimerReportsInvalidArgument) {
  Timer timer;
  EXPECT_FALSE(timer.loaded());
  EXPECT_EQ(timer.design(), nullptr);
  EXPECT_EQ(timer.result(), nullptr);
  EXPECT_EQ(timer.analyze().status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(timer.slack("out").status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(timer.report_worst_paths().status().code(), ErrorCode::kInvalidArgument);
  std::ostringstream os;
  EXPECT_FALSE(timer.report_timing(os).is_ok());
}

TEST(Timer, FailedLoadKeepsThePreviousDesign) {
  Timer timer;
  std::istringstream good(kGolden);
  ASSERT_TRUE(timer.load(good).is_ok());

  std::istringstream bad("net broken\nsection s0 - R=oops L=0 C=1f\nend\n");
  util::DiagnosticsReport report;
  EXPECT_FALSE(timer.load(bad, sta::generic_library(), &report).is_ok());
  EXPECT_GE(report.error_count(), 1u);

  // The golden design (and its answers) survived the rejected load.
  ASSERT_TRUE(timer.loaded());
  EXPECT_EQ(timer.design()->name, "golden");
  util::Result<double> slack = timer.slack("out");
  ASSERT_TRUE(slack.is_ok());
  EXPECT_NEAR(slack.value(), 200e-12 - kEndpointArrival, 1e-18);
}

TEST(Timer, AdoptsAPrebuiltDesign) {
  sta::SyntheticSpec spec;
  spec.nets = 16;
  spec.seed = 2;
  spec.topo_classes = 3;
  spec.chain_depth = 4;
  util::Result<sta::Design> d = sta::make_synthetic_design_checked(spec);
  ASSERT_TRUE(d.is_ok());

  Timer timer;
  ASSERT_TRUE(timer.load(std::move(d).value()).is_ok());
  util::Result<sta::TimingSummary> summary = timer.analyze();
  ASSERT_TRUE(summary.is_ok()) << summary.status().to_string();
  EXPECT_EQ(summary.value().endpoints, 4u);  // one endpoint per chain
  EXPECT_EQ(summary.value().untimed_endpoints, 0u);
  util::Result<std::vector<sta::PathReport>> paths = timer.report_worst_paths(2);
  ASSERT_TRUE(paths.is_ok());
  EXPECT_EQ(paths.value().size(), 2u);

  // Moving the Timer keeps the analysis valid (the Design address is stable).
  Timer moved = std::move(timer);
  ASSERT_TRUE(moved.loaded());
  EXPECT_TRUE(moved.report_worst_paths(1).is_ok());
}

TEST(Timer, RejectsAnUnfinalizedDesign) {
  Timer timer;
  EXPECT_FALSE(timer.load(sta::Design{}).is_ok());
  EXPECT_FALSE(timer.loaded());
}

}  // namespace
}  // namespace relmore
