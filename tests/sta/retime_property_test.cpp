// Property: for ANY (design, edit-sequence) draw, the incrementally
// re-timed result is bitwise-equal to a from-scratch analysis of the
// edited design — WNS/TNS, every PointTiming, every wire delay, every
// endpoint row — and stays so across thread counts and lane widths.
// 100+ random draws, several commits each, all four edit-op kinds.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "relmore/timer.hpp"

namespace relmore {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// SplitMix64: deterministic across platforms, no banned Date/random.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

void expect_bitwise_equal(const sta::TimingResult& got, const sta::TimingResult& want,
                          std::uint64_t draw) {
  ASSERT_EQ(got.nets.size(), want.nets.size());
  EXPECT_EQ(bits(got.summary.wns), bits(want.summary.wns)) << "draw " << draw;
  EXPECT_EQ(bits(got.summary.tns), bits(want.summary.tns)) << "draw " << draw;
  const auto same_point = [](const sta::PointTiming& a, const sta::PointTiming& b) {
    return a.timed == b.timed && a.constrained == b.constrained &&
           bits(a.arrival) == bits(b.arrival) && bits(a.slew) == bits(b.slew) &&
           bits(a.required) == bits(b.required);
  };
  for (std::size_t ni = 0; ni < want.nets.size(); ++ni) {
    const sta::NetTiming& g = got.nets[ni];
    const sta::NetTiming& w = want.nets[ni];
    ASSERT_EQ(g.taps.size(), w.taps.size());
    ASSERT_TRUE(same_point(g.driver, w.driver)) << "draw " << draw << " net " << ni;
    ASSERT_EQ(g.faulted, w.faulted) << "draw " << draw << " net " << ni;
    for (std::size_t t = 0; t < w.taps.size(); ++t) {
      ASSERT_TRUE(same_point(g.taps[t], w.taps[t]))
          << "draw " << draw << " net " << ni << " tap " << t;
      ASSERT_EQ(bits(g.wire_delay[t]), bits(w.wire_delay[t]))
          << "draw " << draw << " net " << ni << " tap " << t;
    }
  }
  ASSERT_EQ(got.winning_input, want.winning_input) << "draw " << draw;
  ASSERT_EQ(got.summary.endpoints_by_slack.size(), want.summary.endpoints_by_slack.size());
  for (std::size_t i = 0; i < want.summary.endpoints_by_slack.size(); ++i) {
    ASSERT_EQ(got.summary.endpoints_by_slack[i].port, want.summary.endpoints_by_slack[i].port)
        << "draw " << draw;
    ASSERT_EQ(bits(got.summary.endpoints_by_slack[i].slack),
              bits(want.summary.endpoints_by_slack[i].slack))
        << "draw " << draw;
  }
}

/// One random edit recorded on `edit`; every op kind reachable.
void record_random_op(Rng& rng, const sta::Design& design, Timer::Edit& edit) {
  switch (rng.below(6)) {
    case 0:
    case 1:
    case 2: {  // wire value edit (the common what-if), weighted up
      const sta::Net& net = design.nets[rng.below(design.nets.size())];
      const circuit::Section& sec =
          net.tree.section(static_cast<circuit::SectionId>(rng.below(net.tree.size())));
      circuit::SectionValues wire;
      wire.resistance = 10.0 + 120.0 * rng.unit();
      wire.inductance = rng.below(2) == 0 ? 0.0 : 1e-12 * rng.unit();
      wire.capacitance = 4e-15 + 50e-15 * rng.unit();
      ASSERT_TRUE(edit.set_net_section_values(net.name, sec.name, wire).is_ok());
      break;
    }
    case 3: {  // cell swap
      if (design.instances.empty()) return;
      const sta::Instance& inst = design.instances[rng.below(design.instances.size())];
      // Swap between the two buffer strengths; nand2 instances keep a
      // 2-input-compatible arc either way (the subset shares one arc).
      const char* cell = rng.below(2) == 0 ? "buf_x1" : "buf_x4";
      ASSERT_TRUE(edit.set_cell(inst.name, cell).is_ok());
      break;
    }
    case 4: {  // endpoint constraint
      std::vector<int> outputs;
      for (std::size_t p = 0; p < design.ports.size(); ++p) {
        if (!design.ports[p].is_input) outputs.push_back(static_cast<int>(p));
      }
      if (outputs.empty()) return;
      const sta::DesignPort& port =
          design.ports[static_cast<std::size_t>(outputs[rng.below(outputs.size())])];
      ASSERT_TRUE(edit.set_port_required(port.name, (0.5 + 2.0 * rng.unit()) * 1e-9).is_ok());
      break;
    }
    default:  // clock retarget
      ASSERT_TRUE(edit.set_clock_period((1.0 + 2.0 * rng.unit()) * 1e-9).is_ok());
      break;
  }
}

TEST(RetimeProperty, RandomEditSequencesMatchFullAnalysisBitwise) {
  constexpr std::uint64_t kDraws = 100;
  constexpr std::size_t kCommitsPerDraw = 3;
  for (std::uint64_t draw = 0; draw < kDraws; ++draw) {
    Rng rng{0xC0FFEE ^ (draw * 0x9E3779B97F4A7C15ULL)};
    sta::SyntheticSpec spec;
    spec.nets = 16 + 4 * rng.below(12);
    spec.seed = draw + 1;
    spec.topo_classes = 2 + rng.below(4);
    spec.chain_depth = 2 + rng.below(4);
    util::Result<sta::Design> design = sta::make_synthetic_design_checked(spec);
    ASSERT_TRUE(design.is_ok()) << design.status().to_string();

    Timer timer;
    ASSERT_TRUE(timer.load(std::move(design).value()).is_ok());
    // Execution knobs rotate per draw; none of them may move a bit.
    sta::AnalyzeOptions options;
    options.threads = 1u + static_cast<unsigned>(rng.below(4));
    const std::size_t lanes[] = {0, 1, 2, 4, 8};
    options.lane_width = lanes[rng.below(5)];
    ASSERT_TRUE(timer.analyze(options).is_ok());

    for (std::size_t commit = 0; commit < kCommitsPerDraw; ++commit) {
      Timer::Edit edit = timer.edit();
      const std::size_t ops = 1 + rng.below(5);
      for (std::size_t op = 0; op < ops; ++op) record_random_op(rng, *timer.design(), edit);
      util::Result<Timer::EditOutcome> outcome = edit.commit();
      ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string() << " draw " << draw;
      ASSERT_TRUE(outcome.value().incremental) << "draw " << draw << " commit " << commit;
      ASSERT_NE(timer.result(), nullptr);

      // Oracle: an uncached from-scratch analysis of the edited design.
      util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(*timer.design());
      ASSERT_TRUE(graph.is_ok());
      util::Result<sta::TimingResult> fresh = graph.value().analyze_checked();
      ASSERT_TRUE(fresh.is_ok()) << fresh.status().to_string();
      expect_bitwise_equal(*timer.result(), fresh.value(), draw);

      // Spot-check knob independence: a differently-threaded fresh run
      // lands on the same bits (every 8th draw to keep the soak quick).
      if (draw % 8 == 0) {
        sta::AnalyzeOptions wide;
        wide.threads = 4;
        wide.lane_width = 8;
        util::Result<sta::TimingResult> alt = graph.value().analyze_checked(wide);
        ASSERT_TRUE(alt.is_ok());
        expect_bitwise_equal(alt.value(), fresh.value(), draw);
      }
    }
  }
}

}  // namespace
}  // namespace relmore
