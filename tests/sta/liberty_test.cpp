#include "relmore/sta/liberty.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::sta {
namespace {

TEST(TimingTable, RejectsBadAxesAndSizes) {
  EXPECT_FALSE(TimingTable::create_checked({}, {0.0}, {}).is_ok());
  EXPECT_FALSE(TimingTable::create_checked({0.0, 0.0}, {0.0}, {1.0, 2.0}).is_ok());
  EXPECT_FALSE(TimingTable::create_checked({0.0, 1.0}, {0.0}, {1.0}).is_ok());
  const double nan = std::nan("");
  EXPECT_FALSE(TimingTable::create_checked({0.0, 1.0}, {0.0}, {1.0, nan}).is_ok());
  EXPECT_EQ(TimingTable::create_checked({0.0, 1.0}, {0.0}, {1.0}).status().code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(TimingTable, BilinearInterpolationIsExactForBilinearData) {
  // values = 2 + 3*slew + 5*load + 7*slew*load on a 3x3 grid.
  const std::vector<double> s = {0.0, 1.0, 4.0};
  const std::vector<double> l = {0.0, 2.0, 3.0};
  std::vector<double> v;
  for (const double si : s) {
    for (const double li : l) v.push_back(2.0 + 3.0 * si + 5.0 * li + 7.0 * si * li);
  }
  const TimingTable t = TimingTable::create(s, l, v);
  for (const double qs : {0.0, 0.5, 1.0, 2.5, 4.0}) {
    for (const double ql : {0.0, 1.0, 2.0, 2.9, 3.0}) {
      EXPECT_NEAR(t.lookup(qs, ql), 2.0 + 3.0 * qs + 5.0 * ql + 7.0 * qs * ql, 1e-12)
          << "slew " << qs << " load " << ql;
    }
  }
}

TEST(TimingTable, ClampsOutsideTheGrid) {
  const TimingTable t = TimingTable::create({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.lookup(-5.0, -5.0), t.lookup(0.0, 0.0));
  EXPECT_DOUBLE_EQ(t.lookup(9.0, 9.0), t.lookup(1.0, 1.0));
}

TEST(LinearCell, TablesMatchTheClosedForm) {
  LinearCellSpec spec;
  spec.name = "g";
  spec.drive_r = 1234.0;
  spec.input_cap = 3e-15;
  spec.intrinsic = 7e-12;
  spec.slew_gain = 0.25;
  spec.slew_factor = 1.0;
  const Cell cell = linear_cell(spec);
  for (const double slew : {0.0, 20e-12, 130e-12, 1e-9}) {
    for (const double load : {0.0, 12e-15, 80e-15, 2e-12}) {
      EXPECT_NEAR(cell.arc_delay(slew, load),
                  spec.intrinsic + spec.drive_r * load + spec.slew_gain * slew, 1e-18);
      EXPECT_NEAR(cell.arc_slew(slew, load), std::log(9.0) * spec.drive_r * load, 1e-18);
    }
  }
}

TEST(LinearCell, RejectsBadParameters) {
  LinearCellSpec spec;
  spec.name = "";
  EXPECT_FALSE(linear_cell_checked(spec).is_ok());
  spec.name = "g";
  spec.drive_r = -1.0;
  EXPECT_FALSE(linear_cell_checked(spec).is_ok());
  spec.drive_r = 1.0;
  spec.slew_factor = -2.0;
  EXPECT_FALSE(linear_cell_checked(spec).is_ok());
}

TEST(CellLibrary, AddFindAndOverride) {
  CellLibrary lib = generic_library();
  EXPECT_GE(lib.find("buf_x1"), 0);
  EXPECT_LT(lib.find("no_such_cell"), 0);
  const std::size_t before = lib.size();
  LinearCellSpec spec;
  spec.name = "buf_x1";
  spec.drive_r = 1.0;
  spec.intrinsic = 99e-12;
  lib.add(linear_cell(spec));
  EXPECT_EQ(lib.size(), before);  // override, not append
  const int i = lib.find("buf_x1");
  ASSERT_GE(i, 0);
  EXPECT_NEAR(lib.cell(static_cast<std::size_t>(i)).arc_delay(0.0, 0.0), 99e-12, 1e-18);
}

}  // namespace
}  // namespace relmore::sta
