// Incremental re-timing: Timer::edit() transactions, the per-net corpus
// cache, and TimingGraph::update_checked — the dirty-cone machinery must
// be bitwise-invisible (same result bits as a from-scratch analyze of the
// edited design) and the cache counters must surface its work.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "relmore/timer.hpp"

namespace relmore {
namespace {

using util::ErrorCode;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

sta::Design synthetic(std::size_t nets, std::uint64_t seed) {
  sta::SyntheticSpec spec;
  spec.nets = nets;
  spec.seed = seed;
  spec.topo_classes = 4;
  spec.chain_depth = 4;
  util::Result<sta::Design> design = sta::make_synthetic_design_checked(spec);
  EXPECT_TRUE(design.is_ok()) << design.status().to_string();
  return std::move(design).value();
}

// Fresh full analysis of `design`, no cache: the oracle every edit
// sequence must match bitwise.
sta::TimingResult oracle(const sta::Design& design) {
  util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
  EXPECT_TRUE(graph.is_ok());
  util::Result<sta::TimingResult> result = graph.value().analyze_checked();
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return std::move(result).value();
}

void expect_bitwise_equal(const sta::TimingResult& got, const sta::TimingResult& want) {
  EXPECT_EQ(bits(got.summary.wns), bits(want.summary.wns));
  EXPECT_EQ(bits(got.summary.tns), bits(want.summary.tns));
  ASSERT_EQ(got.nets.size(), want.nets.size());
  for (std::size_t ni = 0; ni < want.nets.size(); ++ni) {
    const sta::NetTiming& g = got.nets[ni];
    const sta::NetTiming& w = want.nets[ni];
    EXPECT_EQ(g.faulted, w.faulted) << "net " << ni;
    ASSERT_EQ(g.taps.size(), w.taps.size()) << "net " << ni;
    const auto same_point = [&](const sta::PointTiming& a, const sta::PointTiming& b) {
      return a.timed == b.timed && a.constrained == b.constrained &&
             bits(a.arrival) == bits(b.arrival) && bits(a.slew) == bits(b.slew) &&
             bits(a.required) == bits(b.required);
    };
    EXPECT_TRUE(same_point(g.driver, w.driver)) << "net " << ni << " driver";
    for (std::size_t t = 0; t < w.taps.size(); ++t) {
      EXPECT_TRUE(same_point(g.taps[t], w.taps[t])) << "net " << ni << " tap " << t;
      EXPECT_EQ(bits(g.wire_delay[t]), bits(w.wire_delay[t])) << "net " << ni << " tap " << t;
    }
  }
  EXPECT_EQ(got.winning_input, want.winning_input);
  ASSERT_EQ(got.summary.endpoints_by_slack.size(), want.summary.endpoints_by_slack.size());
  for (std::size_t i = 0; i < want.summary.endpoints_by_slack.size(); ++i) {
    const sta::EndpointSlack& g = got.summary.endpoints_by_slack[i];
    const sta::EndpointSlack& w = want.summary.endpoints_by_slack[i];
    EXPECT_EQ(g.port, w.port);
    EXPECT_EQ(bits(g.slack), bits(w.slack));
    EXPECT_EQ(g.timed, w.timed);
    EXPECT_EQ(g.constrained, w.constrained);
  }
}

TEST(CorpusCache, SecondAnalyzeIsAllHitsAndBitwiseEqual) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(40, 3)).is_ok());

  util::Result<sta::TimingSummary> first = timer.analyze();
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().cache_hits, 0u);
  EXPECT_EQ(first.value().cache_misses, 40u);

  util::Result<sta::TimingSummary> second = timer.analyze();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().cache_hits, 40u);
  EXPECT_EQ(second.value().cache_misses, 0u);
  // A cache-served run is the same run, bit for bit.
  EXPECT_EQ(bits(first.value().wns), bits(second.value().wns));
  EXPECT_EQ(bits(first.value().tns), bits(second.value().tns));
  EXPECT_EQ(timer.cache().counters().hits, 40u);
  EXPECT_EQ(timer.cache().counters().stores, 40u);

  // The counters also surface through the run's diagnostics.
  bool saw_cache_line = false;
  for (const util::Diagnostic& d : timer.result()->diagnostics.entries()) {
    if (d.message.find("corpus cache:") != std::string::npos) saw_cache_line = true;
  }
  EXPECT_TRUE(saw_cache_line);
}

TEST(TimerEdit, WireEditRetimesInPlaceBitwiseEqual) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(32, 7)).is_ok());
  ASSERT_TRUE(timer.analyze().is_ok());

  Timer::Edit edit = timer.edit();
  ASSERT_TRUE(edit.set_net_section_values("n0_1", "s2", {55.0, 0.0, 30e-15}).is_ok());
  ASSERT_TRUE(edit.set_net_section_values("n1_2", "s0", {80.0, 0.5e-12, 12e-15}).is_ok());
  EXPECT_EQ(edit.pending(), 2u);

  util::Result<Timer::EditOutcome> outcome = edit.commit();
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome.value().incremental);
  EXPECT_GT(outcome.value().stats.forward_retimed, 0u);
  ASSERT_NE(timer.result(), nullptr);
  expect_bitwise_equal(*timer.result(), oracle(*timer.design()));
}

TEST(TimerEdit, CellSwapPortRequiredAndClockRetimeBitwiseEqual) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(32, 11)).is_ok());
  ASSERT_TRUE(timer.analyze().is_ok());

  Timer::Edit edit = timer.edit();
  ASSERT_TRUE(edit.set_cell("u0_1", "buf_x4").is_ok());
  ASSERT_TRUE(edit.set_port_required("out0", 1.1e-9).is_ok());
  ASSERT_TRUE(edit.set_clock_period(1.7e-9).is_ok());
  util::Result<Timer::EditOutcome> outcome = edit.commit();
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome.value().incremental);
  ASSERT_NE(timer.result(), nullptr);
  expect_bitwise_equal(*timer.result(), oracle(*timer.design()));

  const sta::Design& design = *timer.design();
  EXPECT_EQ(design.clock_period, 1.7e-9);
  const int pi = design.find_port("out0");
  ASSERT_GE(pi, 0);
  EXPECT_TRUE(design.ports[static_cast<std::size_t>(pi)].has_required);
}

TEST(TimerEdit, IdenticalValuesCutOffAtTheFrontier) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(24, 5)).is_ok());
  ASSERT_TRUE(timer.analyze().is_ok());

  // Re-write a section with its existing raw wire values: the recomputed
  // forward half is bitwise-identical, so propagation stops at the net.
  const sta::Design& design = *timer.design();
  const int ni = design.find_net("n0_0");
  ASSERT_GE(ni, 0);
  const sta::Net& net = design.nets[static_cast<std::size_t>(ni)];
  const circuit::SectionId sid = net.tree.find_by_name("s1");
  ASSERT_GE(sid, 0);
  circuit::SectionValues wire = net.tree.section(sid).v;
  // section(sid).v holds the FOLDED capacitance; undo the pin-cap fold so
  // the edit's re-fold lands on the same bits.
  for (const sta::Net::Tap& tap : net.taps) {
    if (tap.node == sid && !tap.is_port) {
      const sta::Instance& inst = design.instances[static_cast<std::size_t>(tap.index)];
      wire.capacitance -= design.library.cell(static_cast<std::size_t>(inst.cell)).input_cap;
    }
  }

  Timer::Edit edit = timer.edit();
  ASSERT_TRUE(edit.set_net_section_values("n0_0", "s1", wire).is_ok());
  util::Result<Timer::EditOutcome> outcome = edit.commit();
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome.value().incremental);
  EXPECT_EQ(outcome.value().stats.forward_retimed, 0u);
  EXPECT_GE(outcome.value().stats.frontier_cutoffs, 1u);
  expect_bitwise_equal(*timer.result(), oracle(*timer.design()));
}

TEST(TimerEdit, CommitWithoutPriorAnalysisIsNotIncremental) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(16, 2)).is_ok());
  Timer::Edit edit = timer.edit();
  ASSERT_TRUE(edit.set_net_section_values("n0_0", "s0", {42.0, 0.0, 10e-15}).is_ok());
  util::Result<Timer::EditOutcome> outcome = edit.commit();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome.value().incremental);
  EXPECT_EQ(timer.result(), nullptr);
  // The commit restamped the edited net, so the follow-up full analyze
  // serves it (and everything else untouched-but-never-analyzed misses).
  util::Result<sta::TimingSummary> summary = timer.analyze();
  ASSERT_TRUE(summary.is_ok());
  EXPECT_EQ(summary.value().cache_hits, 1u);
}

TEST(TimerEdit, OpsValidateAtRecordTime) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(16, 2)).is_ok());
  Timer::Edit edit = timer.edit();
  EXPECT_EQ(edit.set_net_section_values("nope", "s0", {}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_net_section_values("n0_0", "nope", {}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_net_section_values("n0_0", "s0", {-1.0, 0.0, 0.0}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_cell("nope", "buf_x1").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_cell("u0_0", "nope").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_port_required("nope", 1e-9).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_port_required("in0", 1e-9).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.set_clock_period(-1.0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(edit.pending(), 0u);  // nothing recorded by rejected ops

  // A rejected op sequence commits cleanly as a no-op transaction.
  util::Result<Timer::EditOutcome> outcome = edit.commit();
  ASSERT_TRUE(outcome.is_ok());

  // The handle is consumed: further ops and commits fail.
  EXPECT_EQ(edit.set_clock_period(1e-9).code(), ErrorCode::kTransactionState);
  EXPECT_EQ(edit.commit().status().code(), ErrorCode::kTransactionState);
}

TEST(TimerEdit, StaleHandleFailsAfterReload) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(16, 2)).is_ok());
  Timer::Edit edit = timer.edit();
  ASSERT_TRUE(edit.set_clock_period(1e-9).is_ok());
  ASSERT_TRUE(timer.load(synthetic(16, 3)).is_ok());  // swaps the design
  EXPECT_EQ(edit.commit().status().code(), ErrorCode::kInvalidArgument);
}

TEST(TimerEdit, AbandonedHandleAppliesNothing) {
  Timer timer;
  ASSERT_TRUE(timer.load(synthetic(16, 4)).is_ok());
  ASSERT_TRUE(timer.analyze().is_ok());
  const sta::TimingResult before = *timer.result();
  const std::uint64_t epoch = timer.design()->epoch;
  {
    Timer::Edit edit = timer.edit();
    ASSERT_TRUE(edit.set_net_section_values("n0_0", "s0", {99.0, 0.0, 40e-15}).is_ok());
    // no commit
  }
  EXPECT_EQ(timer.design()->epoch, epoch);
  expect_bitwise_equal(*timer.result(), before);
}

TEST(UpdateChecked, CacheMissFailsWithInvalidArgument) {
  sta::Design design = synthetic(16, 6);
  util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
  ASSERT_TRUE(graph.is_ok());
  util::Result<sta::TimingResult> result = graph.value().analyze_checked();
  ASSERT_TRUE(result.is_ok());

  sta::CorpusCache empty;  // covers nothing
  sta::UpdateSeeds seeds;
  seeds.forward_nets.push_back(0);
  sta::TimingResult updated = result.value();
  util::Result<sta::UpdateStats> stats = graph.value().update_checked(updated, empty, seeds);
  EXPECT_EQ(stats.status().code(), ErrorCode::kInvalidArgument);
}

TEST(UpdateChecked, SeedOutOfRangeIsRejected) {
  sta::Design design = synthetic(16, 6);
  util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
  ASSERT_TRUE(graph.is_ok());
  sta::AnalyzeOptions options;
  sta::CorpusCache cache;
  options.cache = &cache;
  util::Result<sta::TimingResult> result = graph.value().analyze_checked(options);
  ASSERT_TRUE(result.is_ok());

  sta::TimingResult updated = result.value();
  sta::UpdateSeeds seeds;
  seeds.forward_nets.push_back(999);
  EXPECT_EQ(graph.value().update_checked(updated, cache, seeds).status().code(),
            ErrorCode::kInvalidArgument);
  seeds.forward_nets.assign(1, 0);
  seeds.backward_nets.push_back(-3);
  EXPECT_EQ(graph.value().update_checked(updated, cache, seeds).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(UpdateChecked, EmptySeedsAreANoOp) {
  sta::Design design = synthetic(16, 9);
  util::Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
  ASSERT_TRUE(graph.is_ok());
  sta::AnalyzeOptions options;
  sta::CorpusCache cache;
  options.cache = &cache;
  util::Result<sta::TimingResult> result = graph.value().analyze_checked(options);
  ASSERT_TRUE(result.is_ok());

  sta::TimingResult updated = result.value();
  util::Result<sta::UpdateStats> stats = graph.value().update_checked(updated, cache, {});
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_TRUE(stats.value().stop_status.is_ok());
  EXPECT_EQ(stats.value().forward_retimed, 0u);
  EXPECT_EQ(stats.value().backward_retimed, 0u);
  expect_bitwise_equal(updated, result.value());
}

}  // namespace
}  // namespace relmore
