#include "relmore/sta/design.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "relmore/sta/synthetic.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {
namespace {

using util::DiagnosticsReport;
using util::ErrorCode;
using util::FaultError;

/// The golden 3-stage corpus the timing tests hand-compute against:
/// clk -> n0 -> u0(g1) -> n1 -> u1(g2) -> n2 -> out.
constexpr const char* kGolden = R"(design golden
cell g1 r=1k cap=10f intrinsic=1p slewgain=0 slewfactor=0
cell g2 r=2k cap=10f intrinsic=5p slewgain=0 slewfactor=0
net n0
section s0 - R=1k L=0 C=10f
section s1 s0 R=1k L=0 C=10f
end
net n1
section s0 - R=500 L=0 C=20f
end
net n2
section s0 - R=400 L=0 C=25f
end
input clk n0 at=0 slew=0
output out n2:s0 required=200p
inst u0 g1 n1 n0:s1
inst u1 g2 n2 n1:s0
clock 1n
)";

util::Result<Design> parse(const std::string& text, DiagnosticsReport* report = nullptr) {
  std::istringstream is(text);
  return read_design_checked(is, generic_library(), report);
}

TEST(ReadDesign, GoldenParseResolvesEverything) {
  DiagnosticsReport report;
  util::Result<Design> r = parse(kGolden, &report);
  ASSERT_TRUE(r.is_ok()) << report.to_string();
  EXPECT_EQ(report.error_count(), 0u);
  const Design d = std::move(r).value();

  EXPECT_EQ(d.name, "golden");
  ASSERT_EQ(d.nets.size(), 3u);
  ASSERT_EQ(d.instances.size(), 2u);
  ASSERT_EQ(d.ports.size(), 2u);
  EXPECT_EQ(d.endpoint_count(), 1u);
  EXPECT_NEAR(d.clock_period, 1e-9, 1e-21);
  EXPECT_GE(d.library.find("g1"), 0);
  EXPECT_GE(d.library.find("buf_x1"), 0);  // base library still present

  const int n0 = d.find_net("n0");
  const int n1 = d.find_net("n1");
  const int n2 = d.find_net("n2");
  ASSERT_GE(n0, 0);
  ASSERT_GE(n1, 0);
  ASSERT_GE(n2, 0);
  EXPECT_LT(d.find_net("nope"), 0);

  // Drivers: n0 by the clk port, n1/n2 by the instances.
  EXPECT_EQ(d.nets[n0].driver_kind, DriverKind::kPort);
  EXPECT_EQ(d.nets[n0].driver_index, d.find_port("clk"));
  EXPECT_EQ(d.nets[n1].driver_kind, DriverKind::kInstance);
  EXPECT_EQ(d.nets[n2].driver_kind, DriverKind::kInstance);

  // Taps: u0's input pin on n0, u1's on n1, the out port on n2.
  ASSERT_EQ(d.nets[n0].taps.size(), 1u);
  EXPECT_FALSE(d.nets[n0].taps[0].is_port);
  EXPECT_EQ(d.instances[d.nets[n0].taps[0].index].name, "u0");
  ASSERT_EQ(d.nets[n2].taps.size(), 1u);
  EXPECT_TRUE(d.nets[n2].taps[0].is_port);
  EXPECT_EQ(d.ports[d.nets[n2].taps[0].index].name, "out");

  const int out = d.find_port("out");
  ASSERT_GE(out, 0);
  EXPECT_FALSE(d.ports[out].is_input);
  EXPECT_TRUE(d.ports[out].has_required);
  EXPECT_NEAR(d.ports[out].required, 200e-12, 1e-24);
}

TEST(ReadDesign, PinCapsFoldedBeforeSnapshot) {
  const Design d = std::move(parse(kGolden)).value();
  const Net& net0 = d.nets[static_cast<std::size_t>(d.find_net("n0"))];
  const circuit::SectionId s1 = net0.tree.find_by_name("s1");
  ASSERT_NE(s1, circuit::kInput);
  // 10 fF wire C + 10 fF g1 pin cap at the tap node.
  EXPECT_NEAR(net0.tree.section(s1).v.capacitance, 20e-15, 1e-27);
  EXPECT_NEAR(net0.total_cap, 30e-15, 1e-27);
  EXPECT_NEAR(d.nets[static_cast<std::size_t>(d.find_net("n1"))].total_cap, 30e-15, 1e-27);
  EXPECT_NEAR(d.nets[static_cast<std::size_t>(d.find_net("n2"))].total_cap, 25e-15, 1e-27);

  // Snapshots were taken after folding and stamped with the design epoch.
  EXPECT_EQ(d.epoch, 1u);
  for (const Net& net : d.nets) {
    EXPECT_EQ(net.epoch, d.epoch);
    ASSERT_EQ(net.flat.size(), net.tree.size());
    for (std::size_t i = 0; i < net.tree.size(); ++i) {
      EXPECT_DOUBLE_EQ(net.flat.capacitance()[i],
                       net.tree.section(static_cast<circuit::SectionId>(i)).v.capacitance);
    }
  }
}

TEST(ReadDesign, LevelizationOrdersNets) {
  Design d = std::move(parse(kGolden)).value();
  const int n0 = d.find_net("n0");
  const int n1 = d.find_net("n1");
  const int n2 = d.find_net("n2");
  EXPECT_EQ(d.nets[n0].level, 0);
  EXPECT_EQ(d.nets[n1].level, 1);
  EXPECT_EQ(d.nets[n2].level, 2);
  ASSERT_EQ(d.topo_nets.size(), 3u);
  EXPECT_EQ(d.topo_nets[0], n0);
  EXPECT_EQ(d.topo_nets[1], n1);
  EXPECT_EQ(d.topo_nets[2], n2);
}

TEST(ReadDesign, UnknownCellIsTaggedWithInstanceName) {
  DiagnosticsReport report;
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "input i a\noutput o a:s0\n"
      "inst u9 no_such_cell a a:s0\n",
      &report);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.status().net(), "u9");
  EXPECT_NE(r.status().message().find("unknown cell"), std::string::npos);
  bool tagged = false;
  for (const util::Diagnostic& diag : report.entries()) tagged = tagged || diag.net == "u9";
  EXPECT_TRUE(tagged);
}

TEST(ReadDesign, MalformedNetBlockIsTaggedWithNetNameAndAbsoluteLine) {
  DiagnosticsReport report;
  util::Result<Design> r = parse(
      "net bad\n"
      "section s0 - R=bogus L=0 C=1f\n"
      "end\n"
      "input i bad\noutput o bad:s0\n",
      &report);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().net(), "bad");
  ASSERT_FALSE(report.entries().empty());
  const util::Diagnostic& first = report.entries().front();
  EXPECT_EQ(first.net, "bad");
  EXPECT_EQ(first.line, 2);  // offset into the *design* file, not the block
}

TEST(ReadDesign, DuplicateNetRejected) {
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "input i a\noutput o a:s0\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDuplicateName);
  EXPECT_EQ(r.status().net(), "a");
}

TEST(ReadDesign, DuplicateInstanceRejected) {
  // Two instances named u0: previously accepted silently, with every
  // by-name lookup answering for whichever parsed first.
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net b\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net c\nsection s0 - R=1 L=0 C=1f\nend\n"
      "inst u0 buf_x1 b a:s0\n"
      "inst u0 buf_x1 c a:s0\n"
      "input i a\noutput o b:s0\noutput p c:s0\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDuplicateName);
  EXPECT_EQ(r.status().net(), "u0");
  EXPECT_NE(r.status().message().find("duplicate instance"), std::string::npos);
}

TEST(ReadDesign, DuplicatePortRejected) {
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net b\nsection s0 - R=1 L=0 C=1f\nend\n"
      "inst u0 buf_x1 b a:s0\n"
      "input i a\noutput o b:s0\noutput o a:s0\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDuplicateName);
  EXPECT_EQ(r.status().net(), "o");
  EXPECT_NE(r.status().message().find("duplicate port"), std::string::npos);
}

TEST(ReadDesign, DoubleDrivenNetRejected) {
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net b\nsection s0 - R=1 L=0 C=1f\nend\n"
      "inst u0 buf_x1 b a:s0\n"
      "input i a\ninput j b\noutput o b:s0\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("driven more than once"), std::string::npos);
}

TEST(ReadDesign, UndrivenNetRejected) {
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net b\nsection s0 - R=1 L=0 C=1f\nend\n"
      "input i a\noutput o a:s0\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().net(), "b");
  EXPECT_NE(r.status().message().find("undriven"), std::string::npos);
}

TEST(ReadDesign, CombinationalCycleRejected) {
  util::Result<Design> r = parse(
      "net n0\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net n1\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net n2\nsection s0 - R=1 L=0 C=1f\nend\n"
      "input i n0\noutput o n1:s0\n"
      "inst u0 buf_x1 n1 n2:s0\n"
      "inst u1 buf_x1 n2 n1:s0\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCycle);
  EXPECT_EQ(r.status().net(), "n1");
}

TEST(ReadDesign, MissingEndRejected) {
  util::Result<Design> r = parse("net a\nsection s0 - R=1 L=0 C=1f\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParseError);
  EXPECT_NE(r.status().message().find("missing 'end'"), std::string::npos);
}

TEST(ReadDesign, MissingPortsRejected) {
  util::Result<Design> r = parse("net a\nsection s0 - R=1 L=0 C=1f\nend\ninput i a\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("no output port"), std::string::npos);
}

TEST(ReadDesign, ReportCollectsEveryFinding) {
  DiagnosticsReport report;
  util::Result<Design> r = parse(
      "net a\nsection s0 - R=1 L=0 C=1f\nend\n"
      "net b\nsection s0 - R=1 L=0 C=1f\nend\n"
      "input i a\noutput o b:s0\n"
      "inst u0 ghost1 b a:s0\n"
      "inst u1 ghost2 b a:s0\n",
      &report);
  ASSERT_FALSE(r.is_ok());
  // Both unknown cells are reported, not only the first.
  EXPECT_GE(report.error_count(), 2u);
}

TEST(ReadDesign, ShimThrowsFaultError) {
  std::istringstream is("garbage directive\n");
  EXPECT_THROW((void)read_design(is), FaultError);
}

TEST(SyntheticDesign, LoadsAndFinalizes) {
  SyntheticSpec spec;
  spec.nets = 24;
  spec.seed = 3;
  spec.topo_classes = 4;
  spec.chain_depth = 4;
  util::Result<Design> r = make_synthetic_design_checked(spec);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const Design d = std::move(r).value();
  EXPECT_EQ(d.nets.size(), 24u);
  EXPECT_EQ(d.topo_nets.size(), d.nets.size());
  EXPECT_EQ(d.endpoint_count(), 6u);  // one output per 4-net chain
  EXPECT_NEAR(d.clock_period, 2e-9, 1e-21);

  SyntheticSpec bad;
  bad.nets = 1;
  EXPECT_FALSE(make_synthetic_design_checked(bad).is_ok());
}

}  // namespace
}  // namespace relmore::sta
