#include "relmore/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace relmore::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"zeta", "delay"});
  t.add_row({"0.5", "1.2"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("zeta"), std::string::npos);
  EXPECT_NE(s.find("1.2"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, NumericRowFormatting) {
  Table t({"x"});
  t.add_row_numeric({0.123456789}, 4);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("0.1235"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace relmore::util
