#include "relmore/util/polynomial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace relmore::util {
namespace {

TEST(Polynomial, EvaluatesHorner) {
  const Polynomial p{{1.0, -2.0, 3.0}};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p(2.0), 9.0);
}

TEST(Polynomial, TrimsTrailingZeros) {
  const Polynomial p{{1.0, 2.0, 0.0, 0.0}};
  EXPECT_EQ(p.degree(), 1);
}

TEST(Polynomial, DegreeOfConstant) {
  EXPECT_EQ(Polynomial{{5.0}}.degree(), 0);
  EXPECT_EQ(Polynomial{}.degree(), 0);
}

TEST(Polynomial, Derivative) {
  const Polynomial p{{1.0, -2.0, 3.0, 4.0}};
  const Polynomial d = p.derivative();
  ASSERT_EQ(d.degree(), 2);
  EXPECT_DOUBLE_EQ(d(0.0), -2.0);
  EXPECT_DOUBLE_EQ(d(1.0), -2.0 + 6.0 + 12.0);
}

TEST(Polynomial, ComplexEvaluation) {
  const Polynomial p{{1.0, 0.0, 1.0}};  // 1 + x^2
  const auto v = p(std::complex<double>{0.0, 1.0});
  EXPECT_NEAR(std::abs(v), 0.0, 1e-14);
}

TEST(PolynomialRoots, Quadratic) {
  const Polynomial p{{6.0, -5.0, 1.0}};  // (x-2)(x-3)
  const auto r = p.roots();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0].real(), 2.0, 1e-9);
  EXPECT_NEAR(r[1].real(), 3.0, 1e-9);
  EXPECT_NEAR(r[0].imag(), 0.0, 1e-9);
}

TEST(PolynomialRoots, ComplexPair) {
  const Polynomial p{{1.0, 0.0, 1.0}};  // roots +-i
  const auto r = p.roots();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0].imag(), -1.0, 1e-9);
  EXPECT_NEAR(r[1].imag(), 1.0, 1e-9);
  EXPECT_NEAR(r[0].real(), 0.0, 1e-9);
}

TEST(PolynomialRoots, StableSecondOrderCircuitPoles) {
  // 1 + b1 s + b2 s^2 with b1 = RC-like, b2 = LC-like values (tiny scales).
  const double b1 = 1e-10;
  const double b2 = 2e-21;
  const Polynomial p{{1.0, b1, b2}};
  const auto r = p.roots();
  ASSERT_EQ(r.size(), 2u);
  for (const auto& root : r) {
    EXPECT_LT(root.real(), 0.0);
    // Residual check: |p(root)| small relative to coefficient scale.
    EXPECT_LT(std::abs(p(root)), 1e-6);
  }
}

TEST(PolynomialRoots, QuinticKnownRoots) {
  // (x-1)(x-2)(x-3)(x-4)(x-5)
  const Polynomial p{{-120.0, 274.0, -225.0, 85.0, -15.0, 1.0}};
  auto r = p.roots();
  ASSERT_EQ(r.size(), 5u);
  std::sort(r.begin(), r.end(),
            [](const auto& a, const auto& b) { return a.real() < b.real(); });
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(r[static_cast<std::size_t>(i)].real(), i + 1.0, 1e-7);
    EXPECT_NEAR(r[static_cast<std::size_t>(i)].imag(), 0.0, 1e-7);
  }
}

TEST(PolynomialRoots, ThrowsOnZeroPolynomial) {
  EXPECT_THROW((void)Polynomial{{0.0}}.roots(), std::invalid_argument);
}

TEST(PolynomialRoots, ConstantHasNoRoots) {
  EXPECT_TRUE(Polynomial{{3.0}}.roots().empty());
}

// Property: roots of random-ish monic cubics satisfy |p(root)| ~ 0 and come
// in conjugate pairs.
class CubicRootSweep : public ::testing::TestWithParam<double> {};

TEST_P(CubicRootSweep, ResidualAndConjugacy) {
  const double a = GetParam();
  const Polynomial p{{a, -2.0 * a, 3.0, 1.0}};
  const auto roots = p.roots();
  ASSERT_EQ(roots.size(), 3u);
  double imag_sum = 0.0;
  for (const auto& r : roots) {
    EXPECT_LT(std::abs(p(r)), 1e-7 * (1.0 + std::abs(a)));
    imag_sum += r.imag();
  }
  EXPECT_NEAR(imag_sum, 0.0, 1e-8);  // conjugate symmetry
}

INSTANTIATE_TEST_SUITE_P(Polynomial, CubicRootSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 50.0));

}  // namespace
}  // namespace relmore::util
