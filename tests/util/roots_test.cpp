#include "relmore/util/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::util {
namespace {

TEST(Brent, FindsSimpleRoot) {
  const auto r = brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, std::sqrt(2.0), 1e-12);
}

TEST(Brent, FindsTranscendentalRoot) {
  const auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 0.7390851332151607, 1e-12);
}

TEST(Brent, RejectsInvalidBracket) {
  EXPECT_FALSE(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0).has_value());
}

TEST(Brent, AcceptsRootAtEndpoint) {
  const auto r = brent([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(Brent, SteepFunction) {
  const auto r = brent([](double x) { return std::exp(20.0 * x) - 5.0; }, -1.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, std::log(5.0) / 20.0, 1e-10);
}

TEST(Bisect, MatchesBrent) {
  const auto f = [](double x) { return x * x * x - x - 2.0; };
  const auto rb = brent(f, 1.0, 2.0);
  const auto ri = bisect(f, 1.0, 2.0);
  ASSERT_TRUE(rb.has_value());
  ASSERT_TRUE(ri.has_value());
  EXPECT_NEAR(*rb, *ri, 1e-9);
}

TEST(FindRootForward, ExpandsToBracket) {
  // Root at x = 100; initial step far too small.
  const auto r = find_root_forward([](double x) { return x - 100.0; }, 0.0, 0.5);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 100.0, 1e-9);
}

TEST(FindRootForward, RootAtStart) {
  const auto r = find_root_forward([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(FindRootForward, GivesUpWithoutSignChange) {
  EXPECT_FALSE(
      find_root_forward([](double) { return 1.0; }, 0.0, 1.0, 1.6, 20).has_value());
}

TEST(FindRootForward, RejectsNonPositiveStep) {
  EXPECT_FALSE(find_root_forward([](double x) { return x - 1.0; }, 0.0, 0.0).has_value());
}

// Property sweep: Brent finds sin roots at k*pi from tight brackets.
class BrentSinSweep : public ::testing::TestWithParam<int> {};

TEST_P(BrentSinSweep, FindsKPi) {
  const int k = GetParam();
  const double target = k * M_PI;
  const auto r = brent([](double x) { return std::sin(x); }, target - 1.0, target + 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, target, 1e-10 * (1.0 + target));
}

INSTANTIATE_TEST_SUITE_P(Roots, BrentSinSweep, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace relmore::util
