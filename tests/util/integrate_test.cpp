#include "relmore/util/integrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::util {
namespace {

TEST(IntegrateOde, ExponentialDecay) {
  const OdeRhs rhs = [](double, const std::vector<double>& y, std::vector<double>& dy) {
    dy[0] = -y[0];
  };
  const auto y = integrate_ode(rhs, 0.0, {1.0}, 3.0);
  EXPECT_NEAR(y[0], std::exp(-3.0), 1e-8);
}

TEST(IntegrateOde, HarmonicOscillatorEnergyConserved) {
  const OdeRhs rhs = [](double, const std::vector<double>& y, std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = -y[0];
  };
  const auto y = integrate_ode(rhs, 0.0, {1.0, 0.0}, 10.0 * M_PI);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

TEST(IntegrateOde, DampedSecondOrderMatchesAnalytic) {
  // v'' + 2 zeta v' + v = 1 (omega_n = 1), zeta = 0.5, from rest.
  const double zeta = 0.5;
  const OdeRhs rhs = [&](double, const std::vector<double>& y, std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = 1.0 - y[0] - 2.0 * zeta * y[1];
  };
  const double t = 4.0;
  const auto y = integrate_ode(rhs, 0.0, {0.0, 0.0}, t);
  const double wd = std::sqrt(1.0 - zeta * zeta);
  const double expected =
      1.0 - std::exp(-zeta * t) * (std::cos(wd * t) + zeta / wd * std::sin(wd * t));
  EXPECT_NEAR(y[0], expected, 1e-8);
}

TEST(IntegrateOde, ObserverSeesMonotoneTime) {
  const OdeRhs rhs = [](double, const std::vector<double>& y, std::vector<double>& dy) {
    dy[0] = -y[0];
  };
  double last_t = -1.0;
  int calls = 0;
  (void)integrate_ode(rhs, 0.0, {1.0}, 1.0, {},  // consumed via the observer
                [&](double t, const std::vector<double>&) {
                  EXPECT_GT(t, last_t - 1e-15);
                  last_t = t;
                  ++calls;
                });
  EXPECT_GT(calls, 2);
  EXPECT_DOUBLE_EQ(last_t, 1.0);
}

TEST(IntegrateOde, ZeroSpanReturnsInitialState) {
  const OdeRhs rhs = [](double, const std::vector<double>&, std::vector<double>& dy) {
    dy[0] = 1.0;
  };
  const auto y = integrate_ode(rhs, 2.0, {7.0}, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
}

TEST(IntegrateOde, RejectsBackwardSpan) {
  const OdeRhs rhs = [](double, const std::vector<double>&, std::vector<double>& dy) {
    dy[0] = 0.0;
  };
  EXPECT_THROW(integrate_ode(rhs, 1.0, {0.0}, 0.0), std::invalid_argument);
}

TEST(IntegrateQuad, PolynomialExact) {
  const double v = integrate_quad([](double x) { return 3.0 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 8.0, 1e-10);
}

TEST(IntegrateQuad, OscillatoryIntegrand) {
  const double v = integrate_quad([](double x) { return std::sin(x); }, 0.0, M_PI);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(IntegrateQuad, EmptyInterval) {
  EXPECT_DOUBLE_EQ(integrate_quad([](double x) { return x; }, 1.0, 1.0), 0.0);
}

}  // namespace
}  // namespace relmore::util
