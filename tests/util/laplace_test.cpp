#include "relmore/util/laplace.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::util {
namespace {

using C = std::complex<double>;

TEST(Laplace, InvertsSimpleExponential) {
  // 1/(s+a) <-> e^{-a t}.
  const double a = 3.0;
  const auto F = [a](C s) { return 1.0 / (s + a); };
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(invert_laplace_talbot(F, t), std::exp(-a * t), 1e-8) << "t=" << t;
  }
}

TEST(Laplace, InvertsStepThroughPole) {
  // 1/(s(s+a)) <-> (1 - e^{-a t})/a.
  const double a = 2.0;
  const auto F = [a](C s) { return 1.0 / (s * (s + a)); };
  for (double t : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(invert_laplace_talbot(F, t), (1.0 - std::exp(-a * t)) / a, 1e-8);
  }
}

TEST(Laplace, InvertsUnderdampedSecondOrderStep) {
  // Step response of 1/(1 + 2 z s + s^2), z = 0.4 (omega_n = 1).
  const double z = 0.4;
  const auto F = [z](C s) { return 1.0 / (s * (1.0 + 2.0 * z * s + s * s)); };
  const double wd = std::sqrt(1.0 - z * z);
  for (double t : {0.5, 2.0, 5.0, 10.0}) {
    const double expected =
        1.0 - std::exp(-z * t) * (std::cos(wd * t) + z / wd * std::sin(wd * t));
    EXPECT_NEAR(invert_laplace_talbot(F, t), expected, 1e-7) << "t=" << t;
  }
}

TEST(Laplace, InvertsRampKernel) {
  // 1/s^2 <-> t.
  const auto F = [](C s) { return 1.0 / (s * s); };
  for (double t : {0.3, 1.7}) {
    EXPECT_NEAR(invert_laplace_talbot(F, t), t, 1e-8 * (1.0 + t));
  }
}

TEST(Laplace, MoreTermsMoreAccuracy) {
  const double a = 1.0;
  const auto F = [a](C s) { return 1.0 / (s + a); };
  const double exact = std::exp(-2.0);
  const double coarse = std::abs(invert_laplace_talbot(F, 2.0, 8) - exact);
  const double fine = std::abs(invert_laplace_talbot(F, 2.0, 48) - exact);
  EXPECT_LT(fine, coarse + 1e-15);
}

TEST(Laplace, RejectsBadArguments) {
  const auto F = [](C s) { return 1.0 / s; };
  EXPECT_THROW((void)invert_laplace_talbot(F, 0.0), std::invalid_argument);
  EXPECT_THROW((void)invert_laplace_talbot(F, -1.0), std::invalid_argument);
  EXPECT_THROW((void)invert_laplace_talbot(F, 1.0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::util
