#include "relmore/util/minimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::util {
namespace {

TEST(MinimizeGolden, Parabola) {
  const auto r = minimize_golden([](double x) { return (x - 2.0) * (x - 2.0) + 1.0; }, -10.0,
                                 10.0);
  EXPECT_NEAR(r.x, 2.0, 1e-7);
  EXPECT_NEAR(r.f, 1.0, 1e-12);
  EXPECT_GT(r.evaluations, 2);
}

TEST(MinimizeGolden, MinimumAtBoundary) {
  const auto r = minimize_golden([](double x) { return x; }, 0.0, 5.0);
  EXPECT_NEAR(r.x, 0.0, 1e-6);
}

TEST(MinimizeGolden, NonPolynomialObjective) {
  // min of x + 1/x on (0, inf) is at x = 1.
  const auto r = minimize_golden([](double x) { return x + 1.0 / x; }, 0.1, 10.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
  EXPECT_NEAR(r.f, 2.0, 1e-10);
}

TEST(MinimizeGolden, RejectsInvertedInterval) {
  EXPECT_THROW((void)minimize_golden([](double x) { return x; }, 1.0, 0.0), std::invalid_argument);
}

TEST(CoordinateDescent, SeparableQuadratic) {
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
  };
  const auto r = minimize_coordinate_descent(f, {0.0, 0.0}, {-5.0, -5.0}, {5.0, 5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], -0.5, 1e-4);
  EXPECT_NEAR(r.f, 0.0, 1e-7);
}

TEST(CoordinateDescent, CoupledQuadratic) {
  // Rotated bowl: cross terms require multiple sweeps.
  const auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] + 0.8 * x[0] * x[1] - x[0] - x[1];
  };
  const auto r = minimize_coordinate_descent(f, {2.0, -2.0}, {-5.0, -5.0}, {5.0, 5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.sweeps, 1);
  // Analytic optimum: gradient zero => (2 + 0.8) x* = 1 with symmetry.
  EXPECT_NEAR(r.x[0], 1.0 / 2.8, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0 / 2.8, 1e-3);
}

TEST(CoordinateDescent, RespectsBounds) {
  const auto f = [](const std::vector<double>& x) { return -x[0]; };  // pushes to hi
  const auto r = minimize_coordinate_descent(f, {0.0}, {-1.0}, {3.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
}

TEST(CoordinateDescent, ValidatesInputs) {
  const auto f = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_THROW(minimize_coordinate_descent(f, {0.0}, {1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(minimize_coordinate_descent(f, {5.0}, {0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(minimize_coordinate_descent(f, {0.0}, {0.0, 1.0}, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace relmore::util
