#include "relmore/util/units.hpp"

#include <gtest/gtest.h>

namespace relmore::util {
namespace {

TEST(Units, ResistanceSuffixes) {
  EXPECT_DOUBLE_EQ(25.0_ohm, 25.0);
  EXPECT_DOUBLE_EQ(2.0_kohm, 2000.0);
}

TEST(Units, InductanceSuffixes) {
  EXPECT_DOUBLE_EQ(2.0_nH, 2.0e-9);
  EXPECT_DOUBLE_EQ(1.0_uH, 1.0e-6);
  EXPECT_DOUBLE_EQ(3.0_pH, 3.0e-12);
  EXPECT_DOUBLE_EQ(1.0_mH, 1.0e-3);
  EXPECT_DOUBLE_EQ(1.0_H, 1.0);
}

TEST(Units, CapacitanceSuffixes) {
  EXPECT_DOUBLE_EQ(0.2_pF, 0.2e-12);
  EXPECT_DOUBLE_EQ(5.0_fF, 5.0e-15);
  EXPECT_DOUBLE_EQ(1.0_nF, 1.0e-9);
  EXPECT_DOUBLE_EQ(1.0_uF, 1.0e-6);
  EXPECT_DOUBLE_EQ(1.0_F, 1.0);
}

TEST(Units, TimeSuffixes) {
  EXPECT_DOUBLE_EQ(1.0_ns, 1.0e-9);
  EXPECT_DOUBLE_EQ(2.5_ps, 2.5e-12);
  EXPECT_DOUBLE_EQ(1.0_us, 1.0e-6);
  EXPECT_DOUBLE_EQ(1.0_ms, 1.0e-3);
  EXPECT_DOUBLE_EQ(1.0_s, 1.0);
}

TEST(Units, VoltageSuffixes) {
  EXPECT_DOUBLE_EQ(1.8_V, 1.8);
  EXPECT_DOUBLE_EQ(250.0_mV, 0.25);
}

TEST(Units, ComposeIntoTimeConstants) {
  // tau = RC: 25 ohm * 0.2 pF = 5 ps.
  EXPECT_DOUBLE_EQ(25.0_ohm * 0.2_pF, 5.0_ps);
  // sqrt(LC) has time units: 2 nH * 0.2 pF = (20 ps)^2 * ... check product.
  EXPECT_DOUBLE_EQ(2.0_nH * 0.2_pF, 4.0e-22);
}

}  // namespace
}  // namespace relmore::util
