#include "relmore/util/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::util {
namespace {

TEST(LinearLeastSquares, ExactLineFit) {
  // y = 3 + 2x sampled exactly.
  std::vector<std::vector<double>> A;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    const double x = i;
    A.push_back({1.0, x});
    y.push_back(3.0 + 2.0 * x);
  }
  const auto p = linear_least_squares(A, y);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 3.0, 1e-10);
  EXPECT_NEAR(p[1], 2.0, 1e-10);
}

TEST(LinearLeastSquares, OverdeterminedAveragesNoise) {
  // y = 1 with symmetric +-0.5 perturbations; LS should recover 1.
  std::vector<std::vector<double>> A;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    A.push_back({1.0});
    y.push_back(1.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto p = linear_least_squares(A, y);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(LinearLeastSquares, RejectsShapeMismatch) {
  EXPECT_THROW(linear_least_squares({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(linear_least_squares({}, {}), std::invalid_argument);
}

TEST(FitNonlinear, RecoversExponentialDecay) {
  // y = 2 e^{-x/0.7} + 0.3 x, the exact functional form used by the paper
  // refits (eed::fit).
  const auto model = [](double x, const std::vector<double>& p) {
    return p[0] * std::exp(-x / p[1]) + p[2] * x;
  };
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 60; ++i) {
    const double x = 0.05 * i;
    xs.push_back(x);
    ys.push_back(model(x, {2.0, 0.7, 0.3}));
  }
  const FitResult r = fit_nonlinear(model, xs, ys, {1.0, 1.0, 1.0});
  ASSERT_EQ(r.params.size(), 3u);
  EXPECT_NEAR(r.params[0], 2.0, 1e-6);
  EXPECT_NEAR(r.params[1], 0.7, 1e-6);
  EXPECT_NEAR(r.params[2], 0.3, 1e-6);
  EXPECT_LT(r.rms_residual, 1e-8);
}

TEST(FitNonlinear, ReportsResiduals) {
  const auto model = [](double x, const std::vector<double>& p) { return p[0] * x; };
  // y = x + bounded disturbance: best fit slope stays near 1.
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys{1.1, 1.9, 3.1, 3.9};
  const FitResult r = fit_nonlinear(model, xs, ys, {0.5});
  EXPECT_NEAR(r.params[0], 1.0, 0.05);
  EXPECT_GT(r.max_abs_residual, 0.0);
  EXPECT_GE(r.max_abs_residual, r.rms_residual);
}

TEST(FitNonlinear, RejectsEmptyData) {
  const auto model = [](double, const std::vector<double>& p) { return p[0]; };
  EXPECT_THROW(fit_nonlinear(model, {}, {}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::util
