#include "relmore/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace {

using relmore::util::Arena;
using relmore::util::ArenaScope;

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(ArenaTest, GrabsAreAlignedAndDisjoint) {
  Arena arena;
  const ArenaScope scope(arena);
  double* a = arena.grab<double>(7);
  double* b = arena.grab<double>(100);
  int* c = arena.grab<int>(3);
  EXPECT_TRUE(aligned64(a));
  EXPECT_TRUE(aligned64(b));
  EXPECT_TRUE(aligned64(c));
  // Writing one block must not disturb another.
  for (int i = 0; i < 7; ++i) a[i] = 1.0 + i;
  for (int i = 0; i < 100; ++i) b[i] = -2.0 * i;
  for (int i = 0; i < 3; ++i) c[i] = 42 + i;
  for (int i = 0; i < 7; ++i) EXPECT_EQ(a[i], 1.0 + i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b[i], -2.0 * i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(c[i], 42 + i);
}

TEST(ArenaTest, ScopeRewindReusesMemoryWithoutGrowth) {
  Arena arena;
  void* first = nullptr;
  {
    const ArenaScope scope(arena);
    first = arena.grab<double>(512);
  }
  const std::size_t after_one = arena.capacity();
  for (int round = 0; round < 100; ++round) {
    const ArenaScope scope(arena);
    void* again = arena.grab<double>(512);
    EXPECT_EQ(again, first);
  }
  EXPECT_EQ(arena.capacity(), after_one);
}

TEST(ArenaTest, GrowsAcrossSlabsAndKeepsOldBlocksValid) {
  Arena arena;
  const ArenaScope scope(arena);
  // Force several slab growths while holding earlier blocks live.
  std::vector<double*> blocks;
  std::vector<std::size_t> sizes;
  for (int round = 0; round < 8; ++round) {
    const std::size_t count = std::size_t{4096} << round;
    double* p = arena.grab<double>(count);
    for (std::size_t i = 0; i < count; i += 997) p[i] = round + i * 1e-9;
    blocks.push_back(p);
    sizes.push_back(count);
  }
  for (std::size_t r = 0; r < blocks.size(); ++r) {
    for (std::size_t i = 0; i < sizes[r]; i += 997) {
      EXPECT_EQ(blocks[r][i], static_cast<double>(r) + i * 1e-9);
    }
  }
}

TEST(ArenaTest, NestedScopesRewindStackLike) {
  Arena arena;
  const ArenaScope outer(arena);
  double* a = arena.grab<double>(16);
  a[0] = 5.0;
  void* inner_first = nullptr;
  {
    const ArenaScope inner(arena);
    inner_first = arena.grab<double>(16);
  }
  void* again = arena.grab<double>(16);
  EXPECT_EQ(again, inner_first);  // inner rewind released only inner grabs
  EXPECT_EQ(a[0], 5.0);
}

TEST(ArenaTest, EmptyGrabReturnsNonNull) {
  Arena arena;
  const ArenaScope scope(arena);
  EXPECT_NE(arena.grab<double>(0), nullptr);
}

TEST(ArenaTest, ThreadArenaIsPerThread) {
  Arena* main_arena = &relmore::util::thread_arena();
  Arena* worker_arena = nullptr;
  std::thread worker([&] { worker_arena = &relmore::util::thread_arena(); });
  worker.join();
  EXPECT_NE(main_arena, worker_arena);
}

}  // namespace
