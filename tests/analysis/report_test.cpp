#include "relmore/analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"

namespace relmore::analysis {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(Report, RowPerNode) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const auto rows = tree_timing_report(t);
  ASSERT_EQ(rows.size(), t.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].node, static_cast<SectionId>(i));
    EXPECT_GT(rows[i].delay_50, 0.0);
    EXPECT_GT(rows[i].rise_time, 0.0);
    EXPECT_GT(rows[i].settling_time, 0.0);
  }
}

TEST(Report, MarksSinks) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const auto rows = tree_timing_report(t);
  const auto leaves = t.leaves();
  int sink_count = 0;
  for (const auto& r : rows) {
    if (r.is_sink) ++sink_count;
  }
  EXPECT_EQ(static_cast<std::size_t>(sink_count), leaves.size());
  EXPECT_TRUE(rows[static_cast<std::size_t>(out)].is_sink);
  EXPECT_FALSE(rows[0].is_sink);
}

TEST(Report, ValuesMatchDirectCalls) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const auto rows = tree_timing_report(t);
  const auto model = eed::analyze(t);
  const auto& row = rows[static_cast<std::size_t>(out)];
  EXPECT_DOUBLE_EQ(row.delay_50, eed::delay_50(model.at(out)));
  EXPECT_DOUBLE_EQ(row.rise_time, eed::rise_time(model.at(out)));
  EXPECT_DOUBLE_EQ(row.wyatt_delay, eed::wyatt_delay_50(model.at(out).sum_rc));
}

TEST(Report, TableRenders) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const auto table = timing_table(tree_timing_report(t));
  EXPECT_EQ(table.rows(), t.size());
  std::ostringstream os;
  table.print(os, "report");
  EXPECT_NE(os.str().find("t50 [ps]"), std::string::npos);
  EXPECT_NE(os.str().find("O"), std::string::npos);
  EXPECT_THROW(timing_table(tree_timing_report(t), 0.0), std::invalid_argument);
}

TEST(Report, SkewZeroOnBalancedTree) {
  const RlcTree h = circuit::make_h_tree(4, {40.0, 4e-9, 0.4e-12});
  const SkewSummary s = sink_skew(h);
  EXPECT_NEAR(s.skew(), 0.0, 1e-16);
  EXPECT_GT(s.min_delay, 0.0);
}

TEST(Report, SkewDetectsLoadMismatch) {
  RlcTree h = circuit::make_h_tree(3, {40.0, 4e-9, 0.4e-12});
  const auto sinks = h.leaves();
  h.values(sinks.front()).capacitance *= 2.0;
  const SkewSummary s = sink_skew(h);
  EXPECT_GT(s.skew(), 0.0);
  EXPECT_EQ(s.slowest, sinks.front());
}

TEST(Report, RejectsEmptyTree) {
  EXPECT_THROW(tree_timing_report(RlcTree{}), std::invalid_argument);
  EXPECT_THROW(sink_skew(RlcTree{}), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::analysis
