#include "relmore/analysis/compare.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"

namespace relmore::analysis {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(ZetaTargeting, HitsTargetExactly) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const double factor = scale_inductance_for_zeta(t, 6, 0.5);
  EXPECT_GT(factor, 0.0);
  const auto model = eed::analyze(t);
  EXPECT_NEAR(model.at(6).zeta, 0.5, 1e-9);
}

TEST(ZetaTargeting, RejectsBadTargets) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  EXPECT_THROW(scale_inductance_for_zeta(t, 6, 0.0), std::invalid_argument);
  RlcTree rc = circuit::make_line(2, {100.0, 0.0, 1e-12});
  EXPECT_THROW(scale_inductance_for_zeta(rc, 1, 0.5), std::invalid_argument);
}

TEST(ReferenceWaveform, ModalAndTreeEngineAgree) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  // Small strict-RLC tree uses the modal path; force the tree-engine path
  // by querying through a large horizon helper comparison instead:
  const sim::Waveform ref =
      reference_waveform(t, 6, sim::StepSource{1.0}, 5e-9, 501);
  EXPECT_NEAR(ref.final_value(), 1.0, 2e-2);
  EXPECT_NEAR(ref.values().front(), 0.0, 1e-12);
}

TEST(ReferenceWaveform, FallsBackForRcTrees) {
  const RlcTree rc = circuit::make_balanced_tree(3, 2, {100.0, 0.0, 0.1e-12});
  const sim::Waveform ref =
      reference_waveform(rc, 6, sim::StepSource{1.0}, 2e-10, 301);
  EXPECT_GT(ref.final_value(), 0.5);
  EXPECT_LE(ref.max_value(), 1.0 + 1e-6);  // RC: no overshoot
}

TEST(ReferenceWaveform, RejectsBadHorizon) {
  const RlcTree t = circuit::make_line(1, {10.0, 1e-9, 1e-12});
  EXPECT_THROW(reference_waveform(t, 0, sim::StepSource{1.0}, 0.0), std::invalid_argument);
}

TEST(SuggestHorizon, LongEnoughToSettle) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const auto model = eed::analyze(t);
  const double h = suggest_horizon(model.at(6));
  const sim::Waveform ref = reference_waveform(t, 6, sim::StepSource{1.0}, h, 1001);
  EXPECT_NEAR(ref.final_value(), 1.0, 0.02);
}

TEST(CompareStep, BalancedFig5DelayErrorSmall) {
  // The paper's headline: < 4% delay error on the balanced Fig. 5 tree.
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  scale_inductance_for_zeta(t, 6, 0.8);
  const StepComparison c = compare_step_response(t, 6);
  EXPECT_NEAR(c.zeta, 0.8, 1e-9);
  EXPECT_GT(c.ref_delay_50, 0.0);
  EXPECT_LT(c.delay_err_pct, 5.0);
}

TEST(CompareStep, PopulatesAllBaselines) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const StepComparison c = compare_step_response(t, 6);
  EXPECT_GT(c.eed_delay_50, 0.0);
  EXPECT_GT(c.eed_delay_exact, 0.0);
  EXPECT_GT(c.wyatt_delay_50, 0.0);
  EXPECT_GT(c.elmore_delay_50, c.wyatt_delay_50);  // tau > ln2 tau
  EXPECT_GT(c.eed_rise, 0.0);
  EXPECT_GE(c.waveform_max_err, 0.0);
}

TEST(CompareStep, UnderdampedNodeReportsOvershoot) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  scale_inductance_for_zeta(t, 6, 0.4);
  const StepComparison c = compare_step_response(t, 6);
  EXPECT_GT(c.eed_overshoot_pct, 10.0);
  EXPECT_GT(c.ref_overshoot_pct, 5.0);
}

TEST(CompareStep, WyattWorseThanEedWhenInductanceDominates) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  scale_inductance_for_zeta(t, 6, 0.35);
  const StepComparison c = compare_step_response(t, 6);
  EXPECT_LT(c.delay_err_pct, c.wyatt_err_pct);
}

}  // namespace
}  // namespace relmore::analysis
