#include "relmore/analysis/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"

namespace relmore::analysis {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

RlcTree test_tree(SectionId* out) { return circuit::make_fig8_tree(out); }

TEST(Variation, DeterministicForSeed) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  const VariationSpec spec;
  const MonteCarloOptions opts{spec, 200, 7, {}};
  const auto a = monte_carlo_delay(t, out, opts);
  const auto b = monte_carlo_delay(t, out, opts);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
  EXPECT_DOUBLE_EQ(a.q95, b.q95);
}

TEST(Variation, ZeroSigmaCollapsesToNominal) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  VariationSpec spec;
  spec.sigma_resistance = 0.0;
  spec.sigma_inductance = 0.0;
  spec.sigma_capacitance = 0.0;
  const auto d = monte_carlo_delay(t, out, MonteCarloOptions{spec, 50, 1, {}});
  EXPECT_NEAR(d.stddev, 0.0, 1e-12 * d.nominal);
  EXPECT_NEAR(d.mean, d.nominal, 1e-12 * d.nominal);
  EXPECT_DOUBLE_EQ(d.min, d.max);
}

TEST(Variation, StatisticsAreOrdered) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  const auto d = monte_carlo_delay(t, out, MonteCarloOptions{VariationSpec{}, 500, 3, {}});
  EXPECT_LE(d.min, d.mean);
  EXPECT_LE(d.mean, d.max);
  EXPECT_GE(d.q95, d.mean - d.stddev);
  EXPECT_LE(d.q95, d.max);
  EXPECT_GT(d.stddev, 0.0);
  // Mean near nominal for moderate sigmas.
  EXPECT_NEAR(d.mean, d.nominal, 0.1 * d.nominal);
}

TEST(Variation, SpreadGrowsWithSigma) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  VariationSpec small;
  small.sigma_resistance = small.sigma_capacitance = 0.02;
  small.sigma_inductance = 0.01;
  VariationSpec large;
  large.sigma_resistance = large.sigma_capacitance = 0.15;
  large.sigma_inductance = 0.08;
  const auto ds = monte_carlo_delay(t, out, MonteCarloOptions{small, 400, 5, {}});
  const auto dl = monte_carlo_delay(t, out, MonteCarloOptions{large, 400, 5, {}});
  EXPECT_GT(dl.stddev, 3.0 * ds.stddev);
}

TEST(Variation, LinearEstimateTracksMonteCarloForSmallSigma) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  VariationSpec spec;
  spec.sigma_resistance = 0.03;
  spec.sigma_inductance = 0.02;
  spec.sigma_capacitance = 0.03;
  const double linear = delay_stddev_linear(t, out, spec);
  const auto mc = monte_carlo_delay(t, out, MonteCarloOptions{spec, 4000, 17, {}});
  EXPECT_NEAR(linear, mc.stddev, 0.2 * mc.stddev);
}

TEST(Variation, BitwiseIdenticalAcrossThreadsAndLaneWidths) {
  // The contract the batched rewire must keep: per-sample RNG seeding plus
  // lane-faithful kernels make the statistics a pure function of (tree,
  // spec, samples, seed) — not of the execution plan. 97 samples is not
  // divisible by any lane width, so ragged tail groups are exercised.
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  VariationSpec spec;
  spec.sigma_resistance = 0.08;
  spec.sigma_inductance = 0.05;
  spec.sigma_capacitance = 0.08;
  const auto base = monte_carlo_delay(t, out, MonteCarloOptions{spec, 97, 11, {1, 1}});
  for (const unsigned threads : {1u, 4u}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      const auto got = monte_carlo_delay(t, out, MonteCarloOptions{spec, 97, 11, {threads, lanes}});
      EXPECT_EQ(got.mean, base.mean) << "threads " << threads << " lanes " << lanes;
      EXPECT_EQ(got.stddev, base.stddev) << "threads " << threads << " lanes " << lanes;
      EXPECT_EQ(got.q95, base.q95) << "threads " << threads << " lanes " << lanes;
      EXPECT_EQ(got.min, base.min) << "threads " << threads << " lanes " << lanes;
      EXPECT_EQ(got.max, base.max) << "threads " << threads << " lanes " << lanes;
    }
  }
}

TEST(Variation, RejectsTooFewSamples) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  EXPECT_THROW(monte_carlo_delay(t, out, MonteCarloOptions{VariationSpec{}, 1, 0, {}}),
               std::invalid_argument);
}

TEST(Variation, LinearEstimateZeroForZeroSigma) {
  SectionId out = circuit::kInput;
  const RlcTree t = test_tree(&out);
  VariationSpec spec;
  spec.sigma_resistance = 0.0;
  spec.sigma_inductance = 0.0;
  spec.sigma_capacitance = 0.0;
  EXPECT_DOUBLE_EQ(delay_stddev_linear(t, out, spec), 0.0);
}

}  // namespace
}  // namespace relmore::analysis
