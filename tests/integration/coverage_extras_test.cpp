#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "relmore/analysis/compare.hpp"
#include "relmore/analysis/report.hpp"
#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/netlist.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/eed/frequency.hpp"
#include "relmore/linalg/eigen.hpp"
#include "relmore/moments/pole_residue.hpp"
#include "relmore/sim/adaptive.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/state_space.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(CoverageExtras, EigenTrivialSizes) {
  const linalg::Matrix one = linalg::Matrix::from_rows({{-3.5}});
  const auto v1 = linalg::eigenvalues(one);
  ASSERT_EQ(v1.size(), 1u);
  EXPECT_NEAR(v1[0].real(), -3.5, 1e-14);
  const auto id = linalg::eigenvalues(linalg::Matrix::identity(4));
  for (const auto& v : id) EXPECT_NEAR(v.real(), 1.0, 1e-10);
}

TEST(CoverageExtras, EigenJordanBlockEigenvaluesCorrect) {
  // Defective matrix [[2,1],[0,2]]: eigenvalues are both 2 even though the
  // eigenvector basis is deficient (eigen_decompose guards the division).
  const linalg::Matrix j = linalg::Matrix::from_rows({{2.0, 1.0}, {0.0, 2.0}});
  const auto vals = linalg::eigenvalues(j);
  for (const auto& v : vals) {
    EXPECT_NEAR(v.real(), 2.0, 1e-9);
    EXPECT_NEAR(v.imag(), 0.0, 1e-9);
  }
}

/// Frequency-domain property sweep: the 2-pole model's |H| tracks the
/// exact tree transfer at the sink up to ~the natural frequency, for all
/// damping levels of the Fig. 5 tree.
class FrequencyTrackingSweep : public ::testing::TestWithParam<double> {};

TEST_P(FrequencyTrackingSweep, ModelTracksExactBelowResonance) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  analysis::scale_inductance_for_zeta(t, 6, GetParam());
  const auto model = eed::analyze(t);
  const auto& nm = model.at(6);
  const sim::ModalSolver exact(t);
  for (double frac : {0.05, 0.15, 0.3}) {
    const double w = frac * nm.omega_n;
    const double mag_model = std::abs(eed::transfer_function(nm, w));
    const double mag_exact = std::abs(exact.transfer(6, w));
    EXPECT_NEAR(mag_model, mag_exact, 0.05 * mag_exact + 0.01)
        << "zeta=" << GetParam() << " frac=" << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(Integration, FrequencyTrackingSweep,
                         ::testing::Values(0.5, 0.8, 1.2, 2.0));

TEST(CoverageExtras, SpiceRoundTripPreservesHTreeTiming) {
  const RlcTree h = circuit::make_h_tree(3, {40.0, 4e-9, 0.4e-12});
  std::stringstream deck;
  circuit::write_spice(h, deck);
  const RlcTree back = circuit::read_spice(deck);
  ASSERT_EQ(back.size(), h.size());
  const auto skew_a = analysis::sink_skew(h);
  const auto skew_b = analysis::sink_skew(back);
  EXPECT_NEAR(skew_a.min_delay, skew_b.min_delay, 1e-9 * skew_a.min_delay);
  EXPECT_NEAR(skew_a.skew(), skew_b.skew(), 1e-20);
}

TEST(CoverageExtras, CombTreeTimingSane) {
  const RlcTree comb =
      circuit::make_comb_tree(6, {30.0, 1.5e-9, 0.1e-12}, {8.0, 0.4e-9, 0.25e-12});
  const auto rows = analysis::tree_timing_report(comb);
  // Teeth further down the spine are strictly slower.
  double prev = 0.0;
  for (const auto& r : rows) {
    if (!r.is_sink) continue;
    EXPECT_GT(r.delay_50, prev);
    prev = r.delay_50;
  }
}

TEST(CoverageExtras, AdaptiveHandlesExponentialSource) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  sim::AdaptiveOptions opts;
  opts.t_stop = 6e-9;
  opts.tol = 1e-4;
  const auto res = sim::simulate_tree_adaptive(t, sim::ExpSource{1.0, 0.5e-9}, opts);
  const sim::ModalSolver exact(t);
  const auto w = res.waveform(6);
  const auto ref = exact.response_waveform(6, sim::ExpSource{1.0, 0.5e-9}, w.times());
  EXPECT_LT(w.max_abs_difference(ref), 5e-3);
}

TEST(CoverageExtras, MeasurementOnAweWaveformMatchesClosedForms) {
  // Chain: moments -> AWE q=2 -> waveform -> measurement should agree with
  // the EED closed forms on a single section (both exact there).
  RlcTree t;
  t.add_section(circuit::kInput, 40.0, 2e-9, 0.5e-12);
  const auto models = moments::awe_models_for_tree(t, 2);
  const auto nm = eed::analyze(t).at(0);
  const double horizon = analysis::suggest_horizon(nm);
  const auto grid = sim::uniform_grid(horizon, 8001);
  const auto w = models[0].step_waveform(grid, 1.0);
  const auto m = sim::measure_rising(w, 1.0);
  EXPECT_NEAR(m.delay_50, eed::delay_50_exact(nm), 2e-3 * eed::delay_50_exact(nm) + 1e-13);
  EXPECT_NEAR(m.rise_10_90, eed::rise_time_exact(nm),
              2e-3 * eed::rise_time_exact(nm) + 1e-13);
  if (nm.underdamped()) {
    EXPECT_NEAR(m.overshoot_pct, eed::overshoot_pct(nm, 1), 0.2);
  }
}

TEST(CoverageExtras, TimingReportConsistentWithSkewBalanceTargets) {
  RlcTree h = circuit::make_h_tree(3, {40.0, 4e-9, 0.4e-12});
  h.values(h.leaves()[1]).capacitance *= 1.1;
  const auto before = analysis::sink_skew(h);
  const auto rows = analysis::tree_timing_report(h);
  // The report's max sink delay equals the skew summary's slowest delay.
  double max_sink = 0.0;
  for (const auto& r : rows) {
    if (r.is_sink) max_sink = std::max(max_sink, r.delay_50);
  }
  EXPECT_NEAR(max_sink, before.max_delay, 1e-20);
}

}  // namespace
}  // namespace relmore
