#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/util/laplace.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Fourth independent reference path: numerically invert the *exact*
/// Laplace-domain transfer function (from the state-space resolvent) with
/// the Talbot contour, and compare against the modal time-domain solution.
/// The two share only the state matrix itself — the Talbot path never sees
/// eigenvalues, and the modal path never sees the contour.
TEST(LaplaceCross, TalbotStepMatchesModalOnFig5) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const sim::ModalSolver modal(t);
  const auto node7 = static_cast<SectionId>(6);

  const auto step_s = [&](std::complex<double> s) {
    return modal.transfer_laplace(node7, s) / s;  // step input: H(s)/s
  };
  const auto grid = sim::uniform_grid(4e-9, 17);
  const auto exact = modal.response(node7, sim::StepSource{1.0}, grid);
  for (std::size_t i = 1; i < grid.size(); ++i) {  // Talbot needs t > 0
    // This response is strongly oscillatory (|Im p|*t up to ~50 rad);
    // fixed-Talbot in double precision bottoms out near 1e-3 there
    // (rounding grows as e^{2M/5} while truncation shrinks with M). The
    // value of this test is the independent structural cross-check, not
    // precision — tests/util/laplace_test.cpp covers accuracy on smooth
    // transforms.
    const double talbot = util::invert_laplace_talbot(step_s, grid[i], 64);
    EXPECT_NEAR(talbot, exact[i], 2e-3) << "t=" << grid[i];
  }
}

TEST(LaplaceCross, TalbotExponentialInputMatchesModal) {
  const RlcTree t = circuit::make_fig8_tree(nullptr);
  const SectionId out = t.find_by_name("O");
  const sim::ModalSolver modal(t);
  const double tau = 0.5e-9;
  const auto in_s = [&](std::complex<double> s) {
    // V(1 - e^{-t/tau}) <-> 1/s - 1/(s + 1/tau).
    return modal.transfer_laplace(out, s) * (1.0 / s - 1.0 / (s + 1.0 / tau));
  };
  const auto grid = sim::uniform_grid(5e-9, 11);
  const auto exact = modal.response(out, sim::ExpSource{1.0, tau}, grid);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double talbot = util::invert_laplace_talbot(in_s, grid[i], 64);
    EXPECT_NEAR(talbot, exact[i], 2e-3) << "t=" << grid[i];
  }
}

}  // namespace
}  // namespace relmore
