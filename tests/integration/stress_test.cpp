#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/netlist.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/linalg/eigen.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Trapezoidal integration is A-stable: even with a timestep 1000x larger
/// than the fastest time constant the solution must stay bounded (it will
/// be inaccurate and ring numerically, but never blow up).
TEST(Stress, TrapezoidalAStableUnderHugeTimestep) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  sim::TransientOptions opts;
  opts.t_stop = 2e-6;  // thousands of natural periods
  opts.dt = 2e-9;      // ~100x the fastest sqrt(LC)
  const auto res = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto w = res.waveform(static_cast<SectionId>(i));
    EXPECT_LT(w.max_value(), 10.0) << "node " << i;
    EXPECT_GT(w.min_value(), -10.0) << "node " << i;
    EXPECT_NEAR(w.final_value(), 1.0, 0.05) << "node " << i;
  }
}

/// Extreme element ratios: femtofarad loads against kilohm drivers and
/// microhenry inductors must not break the O(n) analysis.
TEST(Stress, ExtremeElementRatiosStayFinite) {
  RlcTree t;
  const SectionId a = t.add_section(circuit::kInput, 1e4, 1e-6, 1e-18);
  const SectionId b = t.add_section(a, 1e-3, 1e-15, 1e-9);
  const auto model = eed::analyze(t);
  for (const auto id : {a, b}) {
    const auto& nm = model.at(id);
    EXPECT_TRUE(std::isfinite(nm.zeta));
    EXPECT_TRUE(std::isfinite(eed::delay_50(nm)));
    EXPECT_GT(eed::delay_50(nm), 0.0);
  }
}

/// Deep path: a 512-section line exercises the recursion-free traversals.
TEST(Stress, VeryDeepLine) {
  const RlcTree t = circuit::make_line(512, {1.0, 0.05e-9, 0.01e-12});
  const auto model = eed::analyze(t);
  const auto sink = static_cast<SectionId>(511);
  EXPECT_TRUE(std::isfinite(model.at(sink).zeta));
  EXPECT_GT(model.at(sink).sum_rc, model.at(0).sum_rc);
  EXPECT_EQ(t.depth(), 512);
  EXPECT_EQ(t.path_from_input(sink).size(), 512u);
}

/// Wide tree: 1 + 256 star exercises the child-list handling.
TEST(Stress, VeryWideStar) {
  RlcTree t;
  const SectionId hub = t.add_section(circuit::kInput, 10.0, 1e-9, 0.1e-12);
  for (int i = 0; i < 256; ++i) t.add_section(hub, 20.0, 1e-9, 0.05e-12);
  EXPECT_EQ(t.children(hub).size(), 256u);
  const auto model = eed::analyze(t);
  // The hub sees all 257 capacitors.
  EXPECT_NEAR(model.load_capacitance[0], 0.1e-12 + 256 * 0.05e-12, 1e-18);
}

/// Netlist parser fuzz: every malformed deck throws std::invalid_argument
/// (never crashes, never silently succeeds).
TEST(Stress, NetlistParserRejectsGarbageGracefully) {
  const char* bad_cases[] = {
      "section\n",                                  // missing fields
      "section a - R=1 L=0\n",                      // too few pairs
      "section a - R=1 L=0 C=1 extra=2\n",          // too many pairs
      "section a - R=one L=0 C=1\n",                // bad number
      "section a b R=1 L=0 C=1\n",                  // unknown parent
      "nonsense a - R=1 L=0 C=1\n",                 // wrong keyword
      "section a - R=-5 L=0 C=1\n",                 // negative element
      "section a - Q=1 L=0 C=1\n",                  // unknown key
  };
  for (const char* deck : bad_cases) {
    std::istringstream is(deck);
    EXPECT_THROW(circuit::read_tree_netlist(is), std::invalid_argument) << deck;
  }
}

TEST(Stress, SpiceParserRejectsGarbageGracefully) {
  const char* bad_cases[] = {
      "R1 in\n",                          // missing operands
      "D1 in out 1\n",                    // unsupported element
      "V1 in 0 PWL(0 0)\nR1 in a xyz\n",  // bad value
      "R1 a b 100\nC1 b 0 1p\n",          // no input reference
  };
  for (const char* deck : bad_cases) {
    std::istringstream is(deck);
    EXPECT_THROW(circuit::read_spice(is), std::invalid_argument) << deck;
  }
}

/// Eigen solver on a badly scaled circuit-like matrix (entries spanning
/// 1e-12 .. 1e12): eigenvalues must still satisfy the residual bound.
TEST(Stress, EigenSolverBadlyScaledMatrix) {
  RlcTree t;
  t.add_section(circuit::kInput, 1e3, 1e-6, 1e-15);
  t.add_section(0, 1e-1, 1e-12, 1e-9);
  const sim::StateSpace ss = sim::build_state_space(t);
  const auto es = linalg::eigen_decompose(ss.A);
  double scale = ss.A.max_abs();
  for (std::size_t k = 0; k < es.values.size(); ++k) {
    double residual = 0.0;
    for (std::size_t i = 0; i < ss.A.rows(); ++i) {
      linalg::Complex acc{0.0, 0.0};
      for (std::size_t j = 0; j < ss.A.cols(); ++j) acc += ss.A(i, j) * es.vectors[k][j];
      residual = std::max(residual, std::abs(acc - es.values[k] * es.vectors[k][i]));
    }
    EXPECT_LT(residual, 1e-8 * scale) << "pair " << k;
    EXPECT_LE(es.values[k].real(), 1e-8 * scale);  // passive circuit: stable
  }
}

/// Sources behave at boundary instants and huge times.
TEST(Stress, SourceBoundaryBehaviour) {
  const sim::Source ramp = sim::RampSource{1.0, 0.0};  // zero-rise ramp
  EXPECT_DOUBLE_EQ(sim::source_value(ramp, 1e-15), 1.0);
  const sim::Source pwl = sim::PwlSource{{{1e-9, 0.5}, {1e-9, 0.7}}};  // duplicate t
  EXPECT_DOUBLE_EQ(sim::source_value(pwl, 1e-9), 0.5);
  EXPECT_DOUBLE_EQ(sim::source_value(pwl, 2e-9), 0.7);
  const sim::Source exp_src = sim::ExpSource{2.0, 1e-12};
  EXPECT_DOUBLE_EQ(sim::source_value(exp_src, 1.0), 2.0);  // no overflow at huge t/tau
}

/// Scaled-response functions at extreme zeta.
TEST(Stress, ScaledResponsesExtremeZeta) {
  EXPECT_NEAR(eed::scaled_step_response(1e4, 1e6), 1.0, 1e-3);
  EXPECT_TRUE(std::isfinite(eed::scaled_delay_exact(100.0)));
  EXPECT_NEAR(eed::scaled_delay_exact(100.0), 2.0 * 100.0 * std::log(2.0),
              0.01 * 2.0 * 100.0 * std::log(2.0));
  EXPECT_TRUE(std::isfinite(eed::scaled_rise_fitted(1e3)));
}

}  // namespace
}  // namespace relmore
