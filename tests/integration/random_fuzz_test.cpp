#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/linalg/matrix.hpp"
#include "relmore/moments/tree_moments.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/mna.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

circuit::RandomTreeSpec strict_rlc_spec() {
  circuit::RandomTreeSpec spec;
  spec.min_sections = 3;
  spec.max_sections = 18;
  spec.inductance_lo = 0.1e-9;  // strictly positive L for the modal solver
  return spec;
}

/// Fuzz: the two companion-model engines agree on random trees.
class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, TreeAndMnaAgree) {
  const RlcTree t = circuit::make_random_tree(strict_rlc_spec(), GetParam());
  const auto model = eed::analyze(t);
  // Pick the deepest sink for the longest dynamics.
  SectionId sink = t.leaves().front();
  for (SectionId s : t.leaves()) {
    if (model.at(s).sum_rc > model.at(sink).sum_rc) sink = s;
  }
  sim::TransientOptions opts;
  const double horizon =
      10.0 * std::max(model.at(sink).sum_rc, 2.0 / model.at(sink).omega_n);
  opts.t_stop = horizon;
  opts.dt = horizon / 20000.0;
  const auto a = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto b = sim::simulate_mna(t, sim::StepSource{1.0}, opts);
  EXPECT_LT(a.waveform(sink).max_abs_difference(b.waveform(sink)), 1e-7)
      << "seed " << GetParam() << " sections " << t.size();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EngineFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u, 707u, 808u));

/// Property: exact tree moments equal the state-space moments
/// m_k = -c^T A^{-(k+1)} b for every node and order — two completely
/// independent derivations (path-tracing vs matrix resolvent expansion).
class MomentFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MomentFuzz, PathTracingMatchesResolventExpansion) {
  const RlcTree t = circuit::make_random_tree(strict_rlc_spec(), GetParam());
  const int max_order = 4;
  const auto m = moments::tree_moments(t, max_order);

  const sim::StateSpace ss = sim::build_state_space(t);
  const linalg::LuFactor lu(ss.A);
  // Iterate v_{k+1} = A^{-1} v_k starting from v_0 = A^{-1} b;
  // then m_k(node) = -v_{k}[voltage_index(node)] ... with v_k = A^{-(k+1)} b.
  std::vector<double> v = lu.solve(ss.b);
  for (int k = 0; k <= max_order; ++k) {
    for (std::size_t node = 0; node < t.size(); ++node) {
      const double expected = -v[ss.voltage_index(static_cast<SectionId>(node))];
      const double got = m[static_cast<std::size_t>(k)][node];
      const double scale = std::max(std::abs(expected), 1e-300);
      EXPECT_LT(std::abs(got - expected) / scale, 1e-8)
          << "seed " << GetParam() << " node " << node << " order " << k;
    }
    v = lu.solve(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, MomentFuzz, ::testing::Values(11u, 22u, 33u, 44u, 55u));

/// Property: on random trees the EED closed-form delay is finite, positive,
/// ordered (downstream nodes are slower along any path), and within a sane
/// factor of the simulator at the sinks.
class DelayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelayFuzz, ClosedFormSaneAndOrdered) {
  const RlcTree t = circuit::make_random_tree(strict_rlc_spec(), GetParam());
  const auto model = eed::analyze(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    const double d = eed::delay_50(model.at(id));
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GT(d, 0.0);
    const SectionId parent = t.section(id).parent;
    if (parent != circuit::kInput) {
      EXPECT_GE(model.at(id).sum_rc, model.at(parent).sum_rc);
      EXPECT_GE(model.at(id).sum_lc, model.at(parent).sum_lc);
    }
  }
  // Spot check one sink against the modal reference.
  const SectionId sink = t.leaves().back();
  const auto& nm = model.at(sink);
  const double horizon = 10.0 * std::max(nm.sum_rc, 3.0 / (std::min(nm.zeta, 1.0) *
                                                           nm.omega_n));
  const sim::ModalSolver solver(t);
  const auto grid = sim::uniform_grid(horizon, 4001);
  const sim::Waveform ref = solver.response_waveform(sink, sim::StepSource{1.0}, grid);
  const double ref_delay = sim::measure_rising(ref, 1.0).delay_50;
  if (ref_delay > 0.0) {
    const double d = eed::delay_50(nm);
    EXPECT_GT(d, 0.2 * ref_delay) << "seed " << GetParam();
    EXPECT_LT(d, 5.0 * ref_delay) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DelayFuzz,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u, 57u, 67u));

/// Fuzz including degenerate (RC-only) sections: companion engines must
/// handle L = 0 gracefully and produce monotone RC responses.
class RcFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RcFuzz, RcTreesMonotone) {
  circuit::RandomTreeSpec spec = strict_rlc_spec();
  spec.inductance_lo = 0.0;
  spec.inductance_hi = 0.0;
  const RlcTree t = circuit::make_random_tree(spec, GetParam());
  const auto model = eed::analyze(t);
  const SectionId sink = t.leaves().front();
  sim::TransientOptions opts;
  // RC settling is governed by the slowest node; 20x its Elmore constant
  // reaches the supply to well under 0.1%.
  double slowest = 0.0;
  for (const auto& nm : model.nodes) slowest = std::max(slowest, nm.sum_rc);
  opts.t_stop = 20.0 * slowest;
  opts.dt = opts.t_stop / 10000.0;
  const auto res = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto w = res.waveform(sink);
  EXPECT_LE(w.max_value(), 1.0 + 1e-9) << "seed " << GetParam();
  EXPECT_GE(w.min_value(), -1e-9);
  EXPECT_NEAR(w.final_value(), 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RcFuzz, ::testing::Values(3u, 13u, 23u, 33u));

}  // namespace
}  // namespace relmore
