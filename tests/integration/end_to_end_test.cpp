#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "relmore/analysis/compare.hpp"
#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/netlist.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/sim/measure.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Full user journey: netlist in -> analysis -> closed-form metrics ->
/// validation against simulation.
TEST(EndToEnd, NetlistToTimingReport) {
  std::istringstream netlist(
      "section trunk -     R=20 L=1.5n C=0.1p\n"
      "section left  trunk R=30 L=2n   C=0.2p\n"
      "section right trunk R=25 L=1.8n C=0.15p\n"
      "section sink  right R=15 L=2.2n C=0.3p\n");
  const RlcTree tree = circuit::read_tree_netlist(netlist);
  const SectionId sink = tree.find_by_name("sink");
  ASSERT_NE(sink, circuit::kInput);

  const eed::TreeModel model = eed::analyze(tree);
  const eed::NodeModel& nm = model.at(sink);
  EXPECT_GT(nm.zeta, 0.0);
  EXPECT_TRUE(std::isfinite(nm.omega_n));

  const double delay = eed::delay_50(nm);
  const double rise = eed::rise_time(nm);
  EXPECT_GT(delay, 0.0);
  EXPECT_GT(rise, delay * 0.3);

  // Validate the closed forms against the reference simulation.
  const analysis::StepComparison cmp = analysis::compare_step_response(tree, sink);
  EXPECT_LT(cmp.delay_err_pct, 15.0);
  // Waveform error on this hand-built (unbalanced) tree peaks near the
  // first overshoot; the delay/rise macro features stay tight.
  EXPECT_LT(cmp.waveform_max_err, 0.3);
}

TEST(EndToEnd, SpiceExportReimportPreservesTiming) {
  SectionId out = circuit::kInput;
  const RlcTree original = circuit::make_fig8_tree(&out);
  std::stringstream deck;
  circuit::write_spice(original, deck);
  const RlcTree reimported = circuit::read_spice(deck);

  const auto m1 = eed::analyze(original);
  const auto m2 = eed::analyze(reimported);
  // Node numbering may differ; compare the multiset of sink delays via sums.
  double d1 = 0.0;
  for (SectionId s : original.leaves()) d1 += eed::delay_50(m1.at(s));
  double d2 = 0.0;
  for (SectionId s : reimported.leaves()) d2 += eed::delay_50(m2.at(s));
  EXPECT_NEAR(d1, d2, 1e-12 * std::abs(d1));
}

TEST(EndToEnd, ClockTreeSkewIsZeroOnSymmetricHTree) {
  const RlcTree h = circuit::make_h_tree(4, {40.0, 4e-9, 0.4e-12});
  const auto model = eed::analyze(h);
  const auto sinks = h.leaves();
  double min_d = 1e300;
  double max_d = -1e300;
  for (SectionId s : sinks) {
    const double d = eed::delay_50(model.at(s));
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_NEAR(max_d - min_d, 0.0, 1e-15);  // perfectly balanced => zero skew
}

TEST(EndToEnd, WireSizingImprovesDelayMonotonically) {
  // Widening a wire (R/w, L/w roughly, C*w) changes delay; the continuous
  // closed form supports optimization loops — verify it responds smoothly.
  double prev_delay = 1e300;
  bool decreased_once = false;
  for (double w = 1.0; w <= 4.0; w += 0.5) {
    RlcTree t;
    t.add_section(circuit::kInput, 100.0 / w, 2e-9 / w, 0.1e-12 * w, "wire");
    t.add_section(0, 5.0, 0.1e-9, 0.5e-12, "load");
    const auto model = eed::analyze(t);
    const double d = eed::delay_50(model.at(1));
    EXPECT_TRUE(std::isfinite(d));
    if (d < prev_delay) decreased_once = true;
    prev_delay = d;
  }
  EXPECT_TRUE(decreased_once);
}

TEST(EndToEnd, ElmoreFidelityRankingPreserved) {
  // The paper's fidelity argument: rankings by the closed form should
  // match rankings by simulation. Construct three candidate routes with
  // different wire lengths and check the order agrees.
  std::vector<double> eed_delays;
  std::vector<double> sim_delays;
  for (int sections : {2, 4, 6}) {
    const RlcTree t = circuit::make_line(sections, {20.0, 1e-9, 0.1e-12});
    const auto sink = static_cast<SectionId>(sections - 1);
    const auto model = eed::analyze(t);
    eed_delays.push_back(eed::delay_50(model.at(sink)));
    const analysis::StepComparison cmp = analysis::compare_step_response(t, sink);
    sim_delays.push_back(cmp.ref_delay_50);
  }
  EXPECT_LT(eed_delays[0], eed_delays[1]);
  EXPECT_LT(eed_delays[1], eed_delays[2]);
  EXPECT_LT(sim_delays[0], sim_delays[1]);
  EXPECT_LT(sim_delays[1], sim_delays[2]);
}

}  // namespace
}  // namespace relmore
