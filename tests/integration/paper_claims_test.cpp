#include <gtest/gtest.h>

#include <cmath>

#include "relmore/analysis/compare.hpp"
#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/moments/tree_moments.hpp"
#include "relmore/sim/measure.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Paper Section II/III: the second-order model's first moment equals the
/// exact first moment; the second is the paper's eq. 28 approximation.
TEST(PaperClaims, FirstMomentMatchedExactly) {
  const RlcTree t = circuit::make_fig8_tree(nullptr);
  const auto moments = moments::tree_moments(t, 1);
  const auto model = eed::analyze(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    // m1 of 1/(1 + 2 zeta/wn s + s^2/wn^2) is -2 zeta/wn = -(sum RC).
    const double m1_model = -2.0 * model.nodes[i].zeta / model.nodes[i].omega_n;
    EXPECT_NEAR(m1_model, moments[1][i], 1e-9 * std::abs(moments[1][i])) << "node " << i;
  }
}

/// Paper Section IV: for large zeta the closed forms reduce to the Elmore
/// (Wyatt) delay — "the general solutions ... include the Elmore (Wyatt)
/// delay for the special case of an RC tree".
TEST(PaperClaims, ReducesToWyattForLowInductance) {
  RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  circuit::scale_inductances(t, 1e-6);  // nearly pure RC
  const auto model = eed::analyze(t);
  const auto& node = model.at(6);
  EXPECT_GT(node.zeta, 50.0);
  EXPECT_NEAR(eed::delay_50(node), eed::wyatt_delay_50(node.sum_rc),
              0.02 * eed::wyatt_delay_50(node.sum_rc));
  EXPECT_NEAR(eed::rise_time(node), eed::wyatt_rise_time(node.sum_rc),
              0.05 * eed::wyatt_rise_time(node.sum_rc));
}

/// Paper abstract: "the solutions are always stable" — the second-order
/// model has poles in the left half plane for every physical tree.
TEST(PaperClaims, AlwaysStable) {
  for (double l_scale : {0.1, 1.0, 10.0, 100.0}) {
    RlcTree t = circuit::make_balanced_tree(4, 2, {5.0, 1e-9, 0.1e-12});
    circuit::scale_inductances(t, l_scale);
    const auto model = eed::analyze(t);
    for (const auto& node : model.nodes) {
      // Both poles of 1/(1 + 2z/wn s + s^2/wn^2) have real part -z*wn < 0.
      EXPECT_GT(node.zeta, 0.0);
      EXPECT_GT(node.omega_n, 0.0);
    }
  }
}

/// Paper §V-A: accuracy improves as the input rise time increases; the
/// step input is the worst case.
TEST(PaperClaims, SlowerInputsAreMoreAccurate) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const auto model = eed::analyze(t);
  const auto& nm = model.at(out);
  const double horizon = analysis::suggest_horizon(nm) + 6e-9;
  const auto grid = sim::uniform_grid(horizon, 1501);

  std::vector<double> errors;
  for (double tau : {1e-12, 0.5e-9, 2e-9}) {
    const sim::Waveform ref =
        analysis::reference_waveform(t, out, sim::ExpSource{1.0, tau}, horizon, 1501);
    const sim::Waveform closed = eed::exp_input_waveform(nm, grid, 1.0, tau);
    errors.push_back(ref.max_abs_difference(closed));
  }
  EXPECT_GT(errors[0], errors[1]);
  EXPECT_GT(errors[1], errors[2]);
}

/// Paper §V-B: balanced-tree accuracy headline, < 4% delay error. The
/// paper's exact component values were lost in the available text; with
/// our substituted values (DESIGN.md §4) the error stays below 5% across
/// the damping sweep — same ballpark, same shape (worst when most
/// underdamped, excellent when overdamped).
TEST(PaperClaims, BalancedFig5Within4Percent) {
  double worst = 0.0;
  for (double target_zeta : {0.5, 0.8, 1.2, 2.0}) {
    RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
    analysis::scale_inductance_for_zeta(t, 6, target_zeta);
    const analysis::StepComparison c = analysis::compare_step_response(t, 6);
    EXPECT_LT(c.delay_err_pct, 5.0) << "zeta=" << target_zeta;
    worst = std::max(worst, c.delay_err_pct);
    // The RC-only Wyatt model must be far worse when underdamped.
    if (target_zeta < 1.0) {
      EXPECT_GT(c.wyatt_err_pct, c.delay_err_pct);
    }
  }
  EXPECT_GT(worst, 0.1);  // sanity: we are measuring something real
}

/// Paper §V-B: asymmetric trees degrade accuracy (up to ~20%), and the
/// error grows with the asym parameter.
TEST(PaperClaims, AsymmetryDegradesAccuracy) {
  std::vector<double> errs;
  for (double asym : {1.0, 4.0, 8.0}) {
    RlcTree t = circuit::make_asymmetric_tree(3, asym, {25.0, 2e-9, 0.2e-12});
    // Observe the deepest right-most sink (the lighter path).
    const SectionId sink = t.leaves().back();
    analysis::scale_inductance_for_zeta(t, sink, 0.9);
    const analysis::StepComparison c = analysis::compare_step_response(t, sink);
    errs.push_back(c.delay_err_pct);
  }
  EXPECT_LT(errs[0], 4.0);
  EXPECT_GT(errs[2], errs[0]);  // more asymmetry, more error
  EXPECT_LT(errs[2], 30.0);     // same ballpark cap as the paper's ~20%
}

/// Paper §V-C: for the same 16 sinks, a branching factor of 16 is more
/// accurate than a binary tree (more pole/zero cancellation per level).
TEST(PaperClaims, HigherBranchingFactorMoreAccurate) {
  RlcTree binary = circuit::make_balanced_tree(5, 2, {25.0, 2e-9, 0.2e-12});
  RlcTree wide = circuit::make_balanced_tree(2, 16, {25.0, 2e-9, 0.2e-12});
  const SectionId sink_b = binary.leaves().front();
  const SectionId sink_w = wide.leaves().front();
  analysis::scale_inductance_for_zeta(binary, sink_b, 0.8);
  analysis::scale_inductance_for_zeta(wide, sink_w, 0.8);
  const auto cb = analysis::compare_step_response(binary, sink_b);
  const auto cw = analysis::compare_step_response(wide, sink_w);
  EXPECT_LT(cw.waveform_max_err, cb.waveform_max_err);
}

/// Paper §V-D + §V-F: deeper trees have higher-order transfer functions,
/// so more of the response lives in harmonics the 2-pole model cannot
/// carry. With the sink damping matched across depths, this shows up as a
/// growing count of residual (sim − model) oscillations; the *peak* error
/// does not grow because deeper uniform trees are also more damped (see
/// EXPERIMENTS.md, Fig. 14 discussion).
TEST(PaperClaims, DepthIncreasesUnmodeledHarmonics) {
  std::vector<int> sign_changes;
  for (int levels : {2, 6}) {
    RlcTree t = circuit::make_balanced_tree(levels, 2, {25.0, 2e-9, 0.2e-12});
    const SectionId sink = t.leaves().front();
    analysis::scale_inductance_for_zeta(t, sink, 0.8);
    const auto model = eed::analyze(t);
    const auto& nm = model.at(sink);
    const double horizon = analysis::suggest_horizon(nm);
    const sim::Waveform ref =
        analysis::reference_waveform(t, sink, sim::StepSource{1.0}, horizon, 3001);
    const sim::Waveform eed_w = eed::step_waveform(nm, ref.times(), 1.0);
    int count = 0;
    double prev = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const double d = ref.values()[i] - eed_w.values()[i];
      if (prev != 0.0 && d != 0.0 && ((prev > 0) != (d > 0))) ++count;
      if (d != 0.0) prev = d;
    }
    sign_changes.push_back(count);
  }
  EXPECT_GT(sign_changes[1], sign_changes[0]);
}

/// Paper §V-E: error is smallest at the sinks ("typically the location of
/// greatest interest"), larger toward the source.
TEST(PaperClaims, SinksMoreAccurateThanUpstreamNodes) {
  RlcTree t = circuit::make_balanced_tree(5, 2, {25.0, 2e-9, 0.2e-12});
  const SectionId sink = t.leaves().front();
  analysis::scale_inductance_for_zeta(t, sink, 0.8);
  const auto c_sink = analysis::compare_step_response(t, sink);
  const auto c_root = analysis::compare_step_response(t, 0);
  EXPECT_LT(c_sink.waveform_max_err, c_root.waveform_max_err);
}

/// Appendix: the whole-tree analysis costs exactly 2N multiplications.
TEST(PaperClaims, ComplexityTwoMultiplicationsPerSection) {
  const RlcTree t = circuit::make_balanced_tree(7, 2, {10.0, 1e-9, 0.1e-12});
  const eed::AnalyzeStats stats = eed::analyze_counting(t).stats;
  EXPECT_EQ(stats.multiplications, 2u * t.size());
  EXPECT_EQ(stats.nodes, t.size());
  EXPECT_EQ(t.size(), 127u);
}

}  // namespace
}  // namespace relmore
