#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/sim/mna.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/tree_transient.hpp"
#include "relmore/util/integrate.hpp"

namespace relmore {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Three-way agreement between independently-derived engines is this
/// repository's substitute for the paper's proprietary AS/X reference
/// (DESIGN.md §4): trapezoidal Norton sweeps, MNA matrix stamps, and the
/// exact modal solution share no code paths beyond the tree itself.
class ThreeEngineAgreement : public ::testing::TestWithParam<double> {};

TEST_P(ThreeEngineAgreement, StepResponsesCoincide) {
  const double l_nh = GetParam();
  const RlcTree t = circuit::make_fig5_tree({25.0, l_nh * 1e-9, 0.2e-12}, nullptr);
  const auto node7 = static_cast<SectionId>(6);

  sim::TransientOptions opts;
  opts.t_stop = 8e-9 * std::sqrt(std::max(1.0, l_nh));
  opts.dt = opts.t_stop / 20000.0;

  const auto tree_res = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto mna_res = sim::simulate_mna(t, sim::StepSource{1.0}, opts);
  const sim::ModalSolver modal(t);
  const auto grid = sim::uniform_grid(opts.t_stop, 801);
  const sim::Waveform w_modal = modal.response_waveform(node7, sim::StepSource{1.0}, grid);
  const sim::Waveform w_tree = tree_res.waveform(node7);
  const sim::Waveform w_mna = mna_res.waveform(node7);

  // Tree vs MNA: identical discretization, so near machine precision.
  EXPECT_LT(w_tree.max_abs_difference(w_mna), 1e-8);
  // Discretized vs exact: bounded by the trapezoidal truncation error.
  EXPECT_LT(w_modal.max_abs_difference(w_tree), 3e-3);
}

INSTANTIATE_TEST_SUITE_P(Integration, ThreeEngineAgreement,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

/// A fourth, even more independent check: raw RK45 on the state-space ODE.
TEST(CrossEngine, Rk45MatchesModalOnLine) {
  const RlcTree t = circuit::make_line(4, {15.0, 1.2e-9, 0.12e-12});
  const sim::StateSpace ss = sim::build_state_space(t);
  const std::size_t m = ss.A.rows();
  const util::OdeRhs rhs = [&](double, const std::vector<double>& y,
                               std::vector<double>& dy) {
    for (std::size_t i = 0; i < m; ++i) {
      double acc = ss.b[i];  // unit step input
      for (std::size_t j = 0; j < m; ++j) acc += ss.A(i, j) * y[j];
      dy[i] = acc;
    }
  };
  const double t_stop = 4e-9;
  const auto y = util::integrate_ode(rhs, 0.0, std::vector<double>(m, 0.0), t_stop);

  const sim::ModalSolver modal(t);
  const std::vector<double> at{t_stop};
  const auto v = modal.response(3, sim::StepSource{1.0}, at);
  EXPECT_NEAR(y[ss.voltage_index(3)], v[0], 1e-6);
}

TEST(CrossEngine, DegenerateSectionsOnlyOnCompanionEngines) {
  // Mixed tree: one section has L = 0 — modal must refuse, companions agree.
  RlcTree t;
  const SectionId a = t.add_section(circuit::kInput, 20.0, 1e-9, 0.1e-12);
  t.add_section(a, 50.0, 0.0, 0.2e-12);
  EXPECT_THROW(sim::ModalSolver{t}, std::invalid_argument);

  sim::TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 1e-13;
  const auto r1 = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto r2 = sim::simulate_mna(t, sim::StepSource{1.0}, opts);
  EXPECT_LT(r1.waveform(1).max_abs_difference(r2.waveform(1)), 1e-8);
}

TEST(CrossEngine, LargeTreeEnginesAgree) {
  // 6-level binary balanced tree (63 sections) — big enough to stress the
  // O(n) sweeps, still cheap for dense MNA.
  const RlcTree t = circuit::make_balanced_tree(6, 2, {10.0, 0.8e-9, 0.08e-12});
  sim::TransientOptions opts;
  opts.t_stop = 6e-9;
  opts.dt = 5e-13;
  const auto r1 = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
  const auto r2 = sim::simulate_mna(t, sim::StepSource{1.0}, opts);
  const auto sink = t.leaves().back();
  EXPECT_LT(r1.waveform(sink).max_abs_difference(r2.waveform(sink)), 1e-7);
}

TEST(CrossEngine, ExponentialInputAgreement) {
  const RlcTree t = circuit::make_fig8_tree(nullptr);
  const SectionId out = t.find_by_name("O");
  const sim::Source src = sim::ExpSource{1.0, 0.3e-9};
  sim::TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.dt = 2e-13;
  const auto r1 = sim::simulate_tree(t, src, opts);
  const sim::ModalSolver modal(t);
  const auto grid = sim::uniform_grid(opts.t_stop, 501);
  const sim::Waveform w_modal = modal.response_waveform(out, src, grid);
  EXPECT_LT(w_modal.max_abs_difference(r1.waveform(out)), 3e-3);
}

}  // namespace
}  // namespace relmore
