#include "relmore/opt/wire_sizing.hpp"

#include <gtest/gtest.h>

#include "relmore/analysis/compare.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/sim/measure.hpp"

namespace relmore::opt {
namespace {

WireSizingProblem small_problem() {
  WireSizingProblem p;
  p.segments = 4;
  return p;
}

TEST(WireSizing, BuildsExpectedTopology) {
  const WireSizingProblem p = small_problem();
  const auto tree = build_sized_line(p, {1.0, 1.0, 1.0, 1.0});
  // driver + 4 segments + load
  EXPECT_EQ(tree.size(), 6u);
  EXPECT_EQ(tree.section(0).name, "driver");
  EXPECT_EQ(tree.section(5).name, "load");
  EXPECT_DOUBLE_EQ(tree.section(0).v.resistance, p.driver_resistance);
  EXPECT_DOUBLE_EQ(tree.section(5).v.capacitance, p.load_capacitance);
}

TEST(WireSizing, WidthModelAppliesPerSegment) {
  const WireSizingProblem p = small_problem();
  const auto tree = build_sized_line(p, {2.0, 1.0, 1.0, 1.0});
  // Segment 0 at w=2: R halves, C = area*2 + fringe.
  EXPECT_DOUBLE_EQ(tree.section(1).v.resistance, p.unit_resistance / 2.0);
  EXPECT_DOUBLE_EQ(tree.section(1).v.capacitance,
                   p.unit_area_cap * 2.0 + p.unit_fringe_cap);
  // Weak L(w) reduction at w=2.
  EXPECT_LT(tree.section(1).v.inductance, p.unit_inductance);
  EXPECT_GT(tree.section(1).v.inductance, 0.5 * p.unit_inductance);
}

TEST(WireSizing, ValidatesInputs) {
  WireSizingProblem bad = small_problem();
  bad.segments = 0;
  EXPECT_THROW(build_sized_line(bad, {}), std::invalid_argument);
  const WireSizingProblem p = small_problem();
  EXPECT_THROW(build_sized_line(p, {1.0}), std::invalid_argument);
  EXPECT_THROW(build_sized_line(p, {1.0, 1.0, 0.0, 1.0}), std::invalid_argument);
}

TEST(WireSizing, OptimizerImprovesOnUniform) {
  const WireSizingProblem p = small_problem();
  const std::vector<double> uniform(4, 1.0);
  for (DelayModel model : {DelayModel::kWyattRc, DelayModel::kEquivalentElmore}) {
    const double base = sized_line_delay(p, uniform, model);
    const WireSizingResult r = optimize_wire_sizing(p, model);
    EXPECT_LE(r.delay, base);
    EXPECT_TRUE(r.converged);
    for (double w : r.widths) {
      EXPECT_GE(w, p.width_min);
      EXPECT_LE(w, p.width_max);
    }
  }
}

TEST(WireSizing, RcOptimumTapersFromSource) {
  // Classic RC wire-sizing result [18]: optimal widths decrease toward the
  // sink (wide near the driver, narrow near the load).
  WireSizingProblem p = small_problem();
  p.unit_inductance = 0.0;  // pure RC sizing
  const WireSizingResult r = optimize_wire_sizing(p, DelayModel::kWyattRc);
  for (std::size_t i = 1; i < r.widths.size(); ++i) {
    EXPECT_LE(r.widths[i], r.widths[i - 1] + 1e-3) << "segment " << i;
  }
}

TEST(WireSizing, EedOptimumBeatsRcOptimumUnderSimulation) {
  // Size the wire under each model, then score both choices with the
  // reference simulator: the inductance-aware model must not be worse.
  const WireSizingProblem p = small_problem();
  const WireSizingResult rc = optimize_wire_sizing(p, DelayModel::kWyattRc);
  const WireSizingResult ed = optimize_wire_sizing(p, DelayModel::kEquivalentElmore);

  const auto simulate = [&](const std::vector<double>& widths) {
    const auto tree = build_sized_line(p, widths);
    const auto sink = static_cast<circuit::SectionId>(tree.size() - 1);
    const auto cmp = analysis::compare_step_response(tree, sink);
    return cmp.ref_delay_50;
  };
  const double sim_rc = simulate(rc.widths);
  const double sim_ed = simulate(ed.widths);
  EXPECT_LE(sim_ed, sim_rc * 1.02);  // within noise or better
}

TEST(WireSizing, BatchedCandidateSweepMatchesScalarBitwise) {
  // sized_line_delays puts one candidate per kernel lane; every lane runs
  // the scalar pass's operations in the scalar order, so each delay must
  // be bitwise equal to the one-at-a-time sized_line_delay path.
  const WireSizingProblem p = small_problem();
  std::vector<std::vector<double>> candidates;
  for (int i = 0; i < 11; ++i) {  // 11 candidates: ragged lane-group tail
    std::vector<double> w(4, 1.0);
    w[static_cast<std::size_t>(i) % 4] = 0.5 + 0.3 * static_cast<double>(i);
    candidates.push_back(w);
  }
  for (DelayModel model : {DelayModel::kWyattRc, DelayModel::kEquivalentElmore}) {
    const std::vector<double> batched = sized_line_delays(p, candidates, model);
    ASSERT_EQ(batched.size(), candidates.size());
    for (std::size_t s = 0; s < candidates.size(); ++s) {
      EXPECT_EQ(batched[s], sized_line_delay(p, candidates[s], model))
          << "candidate " << s << " model " << static_cast<int>(model);
    }
  }
}

TEST(WireSizing, BatchedSweepComposesWithPool) {
  const WireSizingProblem p = small_problem();
  std::vector<std::vector<double>> candidates(9, std::vector<double>(4, 1.0));
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    candidates[s][0] = 0.6 + 0.2 * static_cast<double>(s);
  }
  const std::vector<double> serial =
      sized_line_delays(p, candidates, DelayModel::kEquivalentElmore);
  engine::BatchAnalyzer pool(4);
  const std::vector<double> pooled =
      sized_line_delays(p, candidates, DelayModel::kEquivalentElmore, &pool);
  EXPECT_EQ(serial, pooled);
}

TEST(WireSizing, BatchedOptimizerMatchesScalarOptimizer) {
  const WireSizingProblem p = small_problem();
  const WireSizingResult scalar = optimize_wire_sizing(p, DelayModel::kEquivalentElmore);
  const WireSizingResult batched = optimize_wire_sizing_batched(p, DelayModel::kEquivalentElmore);
  ASSERT_EQ(batched.widths.size(), scalar.widths.size());
  for (const double w : batched.widths) {
    EXPECT_GE(w, p.width_min);
    EXPECT_LE(w, p.width_max);
  }
  // Different search strategies, same objective: the batched grid sweep
  // must land within a percent of the golden-section optimum.
  EXPECT_NEAR(batched.delay, scalar.delay, 0.01 * scalar.delay);
  EXPECT_LE(batched.delay,
            sized_line_delay(p, std::vector<double>(4, 1.0), DelayModel::kEquivalentElmore));
}

TEST(WireSizing, BatchedSweepRejectsBadInput) {
  const WireSizingProblem p = small_problem();
  EXPECT_TRUE(sized_line_delays(p, {}, DelayModel::kEquivalentElmore).empty());
  EXPECT_THROW(
      (void)sized_line_delays(p, {{1.0, 1.0}}, DelayModel::kEquivalentElmore),
      std::invalid_argument);  // wrong width count
  BatchedSizingOptions bad;
  bad.grid = 1;
  EXPECT_THROW((void)optimize_wire_sizing_batched(p, DelayModel::kEquivalentElmore, bad),
               std::invalid_argument);
}

TEST(WireSizing, ModelEnumIsExhaustive) {
  const WireSizingProblem p = small_problem();
  const std::vector<double> w(4, 1.0);
  EXPECT_GT(sized_line_delay(p, w, DelayModel::kWyattRc), 0.0);
  EXPECT_GT(sized_line_delay(p, w, DelayModel::kEquivalentElmore), 0.0);
}

}  // namespace
}  // namespace relmore::opt
