#include "relmore/opt/path_timing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::opt {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

PathStage make_stage(double scale) {
  PathStage st;
  st.tree = circuit::make_line(4, {20.0 * scale, 1.5e-9 * scale, 0.15e-12 * scale});
  st.sink = 3;
  st.intrinsic_delay = 5e-12;
  return st;
}

TEST(PathTiming, StepStageMatchesClosedForms) {
  const PathStage st = make_stage(1.0);
  const auto model = eed::analyze(st.tree);
  const StageTiming t = time_stage(model.at(st.sink), 0.0);
  EXPECT_DOUBLE_EQ(t.delay, eed::delay_50(model.at(st.sink)));
  EXPECT_DOUBLE_EQ(t.output_rise, eed::rise_time(model.at(st.sink)));
}

TEST(PathTiming, SlowInputAddsNearZeroStageDelayLag) {
  // With a very slow ramp, 50%-to-50% delay approaches the Elmore lag
  // (the output tracks the input shifted by sum RC).
  const PathStage st = make_stage(1.0);
  const auto model = eed::analyze(st.tree);
  const auto& nm = model.at(st.sink);
  const double slow = 500.0 * nm.sum_rc;
  const StageTiming t = time_stage(nm, slow);
  EXPECT_NEAR(t.delay, nm.sum_rc, 0.05 * nm.sum_rc);
  // Output rise approaches the input rise (0.8 of it measured 10-90).
  EXPECT_NEAR(t.output_rise, 0.8 * slow, 0.05 * slow);
}

TEST(PathTiming, RampInputMovesDelayTowardElmoreLag) {
  // Under the 50-50 convention, slowing the input edge moves an
  // underdamped stage's delay from the step value toward the Elmore lag
  // (sum RC) — finite edges excite less of the inductive slow-down — and
  // always stretches the output edge.
  const PathStage st = make_stage(1.0);
  const auto model = eed::analyze(st.tree);
  const auto& nm = model.at(st.sink);
  const StageTiming step = time_stage(nm, 0.0);
  const StageTiming ramp = time_stage(nm, 4.0 * eed::rise_time(nm));
  EXPECT_LT(ramp.delay, step.delay);
  EXPECT_GT(ramp.delay, 0.9 * nm.sum_rc);
  EXPECT_GT(ramp.output_rise, step.output_rise);
}

TEST(PathTiming, PathAccumulatesStages) {
  const std::vector<PathStage> path{make_stage(1.0), make_stage(0.7), make_stage(1.3)};
  const PathTiming t = time_path(path);
  ASSERT_EQ(t.stages.size(), 3u);
  double sum = 0.0;
  for (const auto& s : t.stages) sum += s.delay;
  EXPECT_DOUBLE_EQ(t.total_delay, sum);
  // Slew propagates: stage 1 input rise equals stage 0 output rise.
  EXPECT_DOUBLE_EQ(t.stages[1].input_rise, t.stages[0].output_rise);
  EXPECT_DOUBLE_EQ(t.stages[2].input_rise, t.stages[1].output_rise);
  EXPECT_DOUBLE_EQ(t.stages[0].input_rise, 0.0);
}

TEST(PathTiming, SlewPropagationChangesDownstreamTiming) {
  // Ignoring the input slew (step-driving every stage) underestimates the
  // per-stage rise; the propagated path must differ from the naive sum.
  const std::vector<PathStage> path{make_stage(1.0), make_stage(1.0)};
  const PathTiming propagated = time_path(path);
  const auto model = eed::analyze(path[1].tree);
  const StageTiming naive = time_stage(model.at(path[1].sink), 0.0);
  EXPECT_NE(propagated.stages[1].delay, naive.delay + path[1].intrinsic_delay);
  EXPECT_GT(propagated.stages[1].output_rise, naive.output_rise);
}

TEST(PathTiming, MatchesSimulatedTwoStagePath) {
  // Simulate the two-stage path as stage-by-stage linear circuits driving
  // ramps and compare the propagated closed-form total delay.
  const std::vector<PathStage> path{make_stage(1.0), make_stage(1.0)};
  const PathTiming t = time_path(path);

  // Stage 1 simulated with a ramp input of the closed-form output rise.
  const auto model1 = eed::analyze(path[1].tree);
  const double rise_in = t.stages[0].output_rise;
  sim::TransientOptions opts;
  opts.t_stop = 40.0 * model1.at(path[1].sink).sum_rc + 6.0 * rise_in;
  opts.dt = opts.t_stop / 40000.0;
  const auto res =
      sim::simulate_tree(path[1].tree, sim::RampSource{1.0, rise_in}, opts);
  const double sim_t50 = res.waveform(path[1].sink).first_rise_crossing(0.5);
  const double sim_stage_delay = sim_t50 - 0.5 * rise_in + path[1].intrinsic_delay;
  EXPECT_NEAR(t.stages[1].delay, sim_stage_delay,
              0.15 * sim_stage_delay + 2e-12);
}

TEST(PathTiming, ValidatesInputs) {
  EXPECT_THROW(time_path({}), std::invalid_argument);
  std::vector<PathStage> bad(1);
  EXPECT_THROW(time_path(bad), std::invalid_argument);
  const PathStage st = make_stage(1.0);
  const auto model = eed::analyze(st.tree);
  EXPECT_THROW(time_stage(model.at(st.sink), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::opt
