#include "relmore/opt/skew_balance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/analysis/report.hpp"
#include "relmore/circuit/builders.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::opt {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

RlcTree mismatched_h_tree() {
  RlcTree h = circuit::make_h_tree(3, {40.0, 4e-9, 0.4e-12});
  // Perturb two quadrants: one heavier load, one lighter wire. The
  // mismatch is kept mild enough that narrowing-only sizing can close it
  // (larger mismatches clamp at the width floor — covered separately in
  // RespectsWidthFloor).
  const auto sinks = h.leaves();
  h.values(sinks[0]).capacitance *= 1.12;
  h.values(sinks[2]).resistance *= 0.92;
  return h;
}

TEST(SkewBalance, ReducesSkewByLargeFactor) {
  RlcTree h = mismatched_h_tree();
  const SkewBalanceResult r = balance_skew(h);
  EXPECT_GT(r.skew_before, 0.0);
  EXPECT_LT(r.skew_after, r.skew_before / 5.0);
}

TEST(SkewBalance, SlowestSinkUntouched) {
  RlcTree h = mismatched_h_tree();
  const analysis::SkewSummary before = analysis::sink_skew(h);
  const auto sinks = h.leaves();
  const SkewBalanceResult r = balance_skew(h);
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (sinks[i] == before.slowest) {
      EXPECT_DOUBLE_EQ(r.sink_widths[i], 1.0);
    } else {
      EXPECT_LE(r.sink_widths[i], 1.0);
    }
  }
}

TEST(SkewBalance, BalancedTreeIsNoOp) {
  RlcTree h = circuit::make_h_tree(3, {40.0, 4e-9, 0.4e-12});
  const SkewBalanceResult r = balance_skew(h);
  EXPECT_NEAR(r.skew_after, 0.0, 1e-15);
  for (double w : r.sink_widths) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(SkewBalance, ImprovementHoldsUnderSimulation) {
  // The optimization ran on the closed form; verify the *simulated* skew
  // also improved (the fidelity property in action).
  RlcTree before_tree = mismatched_h_tree();
  RlcTree after_tree = mismatched_h_tree();
  balance_skew(after_tree);

  const auto simulated_skew = [](const RlcTree& t) {
    sim::TransientOptions opts;
    opts.t_stop = 30e-9;
    opts.dt = 3e-12;
    const auto res = sim::simulate_tree(t, sim::StepSource{1.0}, opts);
    double lo = 1e300;
    double hi = -1e300;
    for (const SectionId s : t.leaves()) {
      const double d = res.waveform(s).first_rise_crossing(0.5);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    return hi - lo;
  };
  const double sim_before = simulated_skew(before_tree);
  const double sim_after = simulated_skew(after_tree);
  EXPECT_LT(sim_after, 0.5 * sim_before);
}

TEST(SkewBalance, RespectsWidthFloor) {
  // An extreme mismatch cannot be fully balanced; widths clamp at the floor.
  RlcTree h = circuit::make_h_tree(2, {40.0, 4e-9, 0.4e-12});
  const auto sinks = h.leaves();
  h.values(sinks[0]).capacitance *= 30.0;  // hopelessly slow quadrant
  SkewBalanceOptions opts;
  opts.width_min = 0.6;
  const SkewBalanceResult r = balance_skew(h, opts);
  EXPECT_GT(r.skew_after, 0.0);  // cannot fully close the gap
  bool clamped = false;
  for (double w : r.sink_widths) {
    EXPECT_GE(w, opts.width_min - 1e-12);
    if (std::abs(w - opts.width_min) < 1e-9) clamped = true;
  }
  EXPECT_TRUE(clamped);
  EXPECT_LE(r.skew_after, r.skew_before);
}

TEST(SkewBalance, ValidatesInputs) {
  RlcTree h = circuit::make_h_tree(2, {40.0, 4e-9, 0.4e-12});
  SkewBalanceOptions bad;
  bad.width_min = 0.0;
  EXPECT_THROW(balance_skew(h, bad), std::invalid_argument);
  bad.width_min = 1.5;
  EXPECT_THROW(balance_skew(h, bad), std::invalid_argument);
  RlcTree empty;
  EXPECT_THROW(balance_skew(empty), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::opt
