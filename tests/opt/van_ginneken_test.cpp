#include "relmore/opt/van_ginneken.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/segmentation.hpp"
#include "relmore/eed/eed.hpp"

namespace relmore::opt {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// A long RC line where buffering is clearly profitable.
RlcTree long_line(int sections) {
  return circuit::make_line(sections, {150.0, 0.2e-9, 0.3e-12});
}

Driver repeater() { return unit_inverter().sized(32.0); }

TEST(VanGinneken, UnbufferedMatchesElmoreDelay) {
  // With a buffer too expensive to ever use, the DP must return the plain
  // Elmore source RAT: -(source R * total C + sum of section terms).
  const RlcTree t = long_line(4);
  Driver expensive = repeater();
  expensive.intrinsic_delay = 1.0;  // one second: never worth it
  const double rs = 50.0;
  const VanGinnekenResult r = van_ginneken(t, expensive, rs);
  EXPECT_EQ(r.buffer_count, 0);
  const auto model = eed::analyze(t);
  const double elmore_path = model.at(3).sum_rc + rs * t.total_capacitance();
  EXPECT_NEAR(-r.source_rat, elmore_path, 1e-15 + 1e-9 * elmore_path);
}

TEST(VanGinneken, BuffersImproveLongLine) {
  const RlcTree t = long_line(12);
  const double rs = 50.0;
  Driver expensive = repeater();
  expensive.intrinsic_delay = 1.0;
  const VanGinnekenResult without = van_ginneken(t, expensive, rs);
  const VanGinnekenResult with = van_ginneken(t, repeater(), rs);
  EXPECT_GT(with.buffer_count, 0);
  EXPECT_GT(with.source_rat, without.source_rat);
}

TEST(VanGinneken, CandidateCountStaysPolynomial) {
  // Pruning keeps the list linear-ish; without it the count explodes.
  const RlcTree t = circuit::make_balanced_tree(5, 2, {100.0, 0.1e-9, 0.1e-12});
  const VanGinnekenResult r = van_ginneken(t, repeater(), 50.0);
  EXPECT_LT(r.candidates_explored, 100u * t.size());
}

TEST(VanGinneken, RespectsSinkRequiredTimes) {
  // Giving one sink a large negative RAT (tight deadline) forces the DP to
  // a solution whose source RAT reflects it.
  const RlcTree t = circuit::make_balanced_tree(3, 2, {100.0, 0.1e-9, 0.1e-12});
  std::vector<double> rat(t.size(), 0.0);
  const VanGinnekenResult relaxed = van_ginneken(t, repeater(), 50.0, rat);
  rat[static_cast<std::size_t>(t.leaves().front())] = -1e-9;
  const VanGinnekenResult tight = van_ginneken(t, repeater(), 50.0, rat);
  EXPECT_LT(tight.source_rat, relaxed.source_rat);
  EXPECT_NEAR(tight.source_rat, relaxed.source_rat - 1e-9, 0.3e-9);
}

TEST(VanGinneken, ValidatesInputs) {
  EXPECT_THROW(van_ginneken(RlcTree{}, repeater(), 50.0), std::invalid_argument);
  const RlcTree t = long_line(3);
  EXPECT_THROW(van_ginneken(t, repeater(), 50.0, {0.0}), std::invalid_argument);
}

TEST(EvaluateBufferedTree, UnbufferedWorstSinkMatchesModel) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const std::vector<bool> none(t.size(), false);
  const double rs = 30.0;
  const double d = evaluate_buffered_tree(t, none, repeater(), rs, DelayModel::kWyattRc);
  // Stage = whole tree with the source resistance as driver.
  RlcTree staged;
  const SectionId drv = staged.add_section(circuit::kInput, {rs, 0.0, 0.0});
  // Rebuild manually: same sections shifted by one.
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto& s = t.section(static_cast<SectionId>(i));
    staged.add_section(s.parent == circuit::kInput ? drv
                                                   : static_cast<SectionId>(s.parent + 1),
                       s.v);
  }
  const auto model = eed::analyze(staged);
  double worst = 0.0;
  for (SectionId leaf : staged.leaves()) {
    worst = std::max(worst, eed::wyatt_delay_50(model.at(leaf).sum_rc));
  }
  EXPECT_NEAR(d, worst, 1e-15 + 1e-9 * worst);
}

TEST(EvaluateBufferedTree, DpChoiceBeatsUnbufferedUnderRc) {
  const RlcTree t = long_line(12);
  const double rs = 50.0;
  const VanGinnekenResult r = van_ginneken(t, repeater(), rs);
  ASSERT_GT(r.buffer_count, 0);
  const std::vector<bool> none(t.size(), false);
  const double unbuf = evaluate_buffered_tree(t, none, repeater(), rs, DelayModel::kWyattRc);
  const double buf =
      evaluate_buffered_tree(t, r.buffered, repeater(), rs, DelayModel::kWyattRc);
  EXPECT_LT(buf, unbuf);
}

TEST(EvaluateBufferedTree, EedRescoringDiffersFromRc) {
  // On an inductive line the RLC-aware stage delays differ from the RC
  // ones — the gap this library quantifies.
  RlcTree t = circuit::make_line(8, {30.0, 2e-9, 0.2e-12});
  const double rs = 30.0;
  const VanGinnekenResult r = van_ginneken(t, repeater(), rs);
  const double rc = evaluate_buffered_tree(t, r.buffered, repeater(), rs,
                                           DelayModel::kWyattRc);
  const double eed = evaluate_buffered_tree(t, r.buffered, repeater(), rs,
                                            DelayModel::kEquivalentElmore);
  EXPECT_GT(std::abs(eed - rc), 0.02 * rc);
}

TEST(EvaluateBufferedTree, RejectsBufferAtLeaf) {
  const RlcTree t = long_line(3);
  std::vector<bool> bad(t.size(), false);
  bad[2] = true;  // leaf
  EXPECT_THROW(evaluate_buffered_tree(t, bad, repeater(), 50.0, DelayModel::kWyattRc),
               std::invalid_argument);
  EXPECT_THROW(evaluate_buffered_tree(t, {true}, repeater(), 50.0, DelayModel::kWyattRc),
               std::invalid_argument);
}

}  // namespace
}  // namespace relmore::opt
