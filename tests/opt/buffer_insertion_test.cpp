#include "relmore/opt/buffer_insertion.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::opt {
namespace {

BufferInsertionProblem small_problem() {
  BufferInsertionProblem p;
  p.wire = circuit::global_wire_spec();
  p.wire.length_m = 4e-3;  // 4 mm global route
  p.slots = 3;
  p.buffer = unit_inverter().sized(16.0);
  p.source_resistance = 40.0;
  p.sink_capacitance = 60e-15;
  p.segments_per_span = 3;
  return p;
}

TEST(BufferInsertion, EmptySolutionIsSingleStage) {
  const BufferInsertionProblem p = small_problem();
  const double d = evaluate_solution(p, {false, false, false}, DelayModel::kEquivalentElmore);
  EXPECT_GT(d, 0.0);
  // No buffers -> no intrinsic delay contributions.
  const double d_rc = evaluate_solution(p, {false, false, false}, DelayModel::kWyattRc);
  EXPECT_GT(d_rc, 0.0);
}

TEST(BufferInsertion, FullyBufferedAddsIntrinsicDelays) {
  const BufferInsertionProblem p = small_problem();
  const double none = evaluate_solution(p, {false, false, false}, DelayModel::kWyattRc);
  const double all = evaluate_solution(p, {true, true, true}, DelayModel::kWyattRc);
  // All-buffered pays 3 intrinsic delays; whether it wins depends on the
  // wire, but the evaluation must include them.
  EXPECT_GT(all, 3.0 * p.buffer.intrinsic_delay * 0.99);
  EXPECT_GT(none, 0.0);
}

TEST(BufferInsertion, ValidatesInputs) {
  BufferInsertionProblem bad = small_problem();
  bad.slots = 0;
  EXPECT_THROW(evaluate_solution(bad, {}, DelayModel::kWyattRc), std::invalid_argument);
  const BufferInsertionProblem p = small_problem();
  EXPECT_THROW(evaluate_solution(p, {true}, DelayModel::kWyattRc), std::invalid_argument);
  BufferInsertionProblem bad_len = small_problem();
  bad_len.wire.length_m = 0.0;
  EXPECT_THROW(evaluate_solution(bad_len, {false, false, false}, DelayModel::kWyattRc),
               std::invalid_argument);
}

TEST(BufferInsertion, ExhaustiveFindsMinimum) {
  const BufferInsertionProblem p = small_problem();
  const BufferSolution best = optimize_buffers_exhaustive(p, DelayModel::kEquivalentElmore);
  ASSERT_EQ(best.buffered.size(), 3u);
  // Verify optimality by re-enumerating.
  for (unsigned mask = 0; mask < 8; ++mask) {
    std::vector<bool> cand{(mask & 1u) != 0, (mask & 2u) != 0, (mask & 4u) != 0};
    EXPECT_GE(evaluate_solution(p, cand, DelayModel::kEquivalentElmore),
              best.delay - 1e-18);
  }
}

TEST(BufferInsertion, SimulatedEvaluationClosesLoop) {
  const BufferInsertionProblem p = small_problem();
  const std::vector<bool> cand{false, true, false};
  const double model = evaluate_solution(p, cand, DelayModel::kEquivalentElmore);
  const double sim = evaluate_solution_simulated(p, cand);
  EXPECT_GT(sim, 0.0);
  // Closed form tracks the simulator within tens of percent on this
  // underdamped route (the RC model is far worse; see the fidelity test).
  EXPECT_NEAR(model, sim, 0.4 * sim);
}

TEST(BufferInsertion, EedFidelityAtLeastRcFidelity) {
  // The paper's core pitch: design decisions made with the RLC-aware
  // closed form rank candidates like the simulator does.
  const BufferInsertionProblem p = small_problem();
  const double fid_eed = ranking_fidelity(p, DelayModel::kEquivalentElmore);
  const double fid_rc = ranking_fidelity(p, DelayModel::kWyattRc);
  EXPECT_GE(fid_eed, fid_rc - 0.05);
  EXPECT_GT(fid_eed, 0.6);
}

TEST(BufferInsertion, RejectsTooManySlots) {
  BufferInsertionProblem p = small_problem();
  p.slots = 21;
  EXPECT_THROW(optimize_buffers_exhaustive(p, DelayModel::kWyattRc), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::opt
