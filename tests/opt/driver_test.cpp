#include "relmore/opt/driver.hpp"

#include <gtest/gtest.h>

namespace relmore::opt {
namespace {

TEST(Driver, SizingScalesRAndC) {
  const Driver base{1000.0, 2e-15, 10e-12};
  const Driver big = base.sized(4.0);
  EXPECT_DOUBLE_EQ(big.output_resistance, 250.0);
  EXPECT_DOUBLE_EQ(big.input_capacitance, 8e-15);
  EXPECT_DOUBLE_EQ(big.intrinsic_delay, 10e-12);
}

TEST(Driver, SizingRejectsNonPositive) {
  EXPECT_THROW((void)unit_inverter().sized(0.0), std::invalid_argument);
  EXPECT_THROW((void)unit_inverter().sized(-2.0), std::invalid_argument);
}

TEST(Driver, RCProductInvariantUnderSizing) {
  const Driver base = unit_inverter();
  const Driver s = base.sized(8.0);
  EXPECT_DOUBLE_EQ(base.output_resistance * base.input_capacitance,
                   s.output_resistance * s.input_capacitance);
}

TEST(Driver, GeometricLibraryDoubles) {
  const auto lib = geometric_library(unit_inverter(), 4);
  ASSERT_EQ(lib.size(), 4u);
  for (std::size_t i = 1; i < lib.size(); ++i) {
    EXPECT_DOUBLE_EQ(lib[i].output_resistance, lib[i - 1].output_resistance / 2.0);
    EXPECT_DOUBLE_EQ(lib[i].input_capacitance, lib[i - 1].input_capacitance * 2.0);
  }
  EXPECT_THROW(geometric_library(unit_inverter(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::opt
