* A small SPICE-subset deck exercising the reader: series R-L chains with
* grounded caps, mixed with an RC-only stub, driven by a PWL source.
Vin in 0 PWL(0 0 1p 1)
R1 in m1 20
L1 m1 n1 1.5n
C1 n1 0 0.1p
R2 n1 m2 15
L2 m2 n2 2n
C2 n2 0 0.12p
R3 n2 n3 25
C3 n3 0 0.2p
R4 n1 m4 12
L4 m4 n4 2.5n
C4 n4 0 0.3p
.end
