#include "relmore/linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace relmore::linalg {
namespace {

std::vector<Complex> sorted(std::vector<Complex> v) {
  std::sort(v.begin(), v.end(), [](const Complex& a, const Complex& b) {
    if (a.real() != b.real()) return a.real() < b.real();
    return a.imag() < b.imag();
  });
  return v;
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix a = Matrix::from_rows({{3.0, 0.0}, {0.0, -1.0}});
  const auto vals = sorted(eigenvalues(a));
  EXPECT_NEAR(vals[0].real(), -1.0, 1e-10);
  EXPECT_NEAR(vals[1].real(), 3.0, 1e-10);
}

TEST(Eigen, RotationGivesComplexPair) {
  // [[0,-1],[1,0]] has eigenvalues +-i.
  const Matrix a = Matrix::from_rows({{0.0, -1.0}, {1.0, 0.0}});
  const auto vals = sorted(eigenvalues(a));
  EXPECT_NEAR(vals[0].real(), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(vals[0].imag()), 1.0, 1e-10);
  EXPECT_NEAR(vals[0].imag() + vals[1].imag(), 0.0, 1e-10);
}

TEST(Eigen, KnownNonsymmetric3x3) {
  // Companion matrix of (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  const Matrix a = Matrix::from_rows({{0.0, 0.0, 6.0}, {1.0, 0.0, -11.0}, {0.0, 1.0, 6.0}});
  auto vals = sorted(eigenvalues(a));
  EXPECT_NEAR(vals[0].real(), 1.0, 1e-8);
  EXPECT_NEAR(vals[1].real(), 2.0, 1e-8);
  EXPECT_NEAR(vals[2].real(), 3.0, 1e-8);
}

TEST(Eigen, DampedOscillatorPoles) {
  // x' = A x for v'' + 2*0.3 v' + v = 0: poles -0.3 +- i sqrt(1-0.09).
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {-1.0, -0.6}});
  const auto vals = eigenvalues(a);
  for (const auto& v : vals) {
    EXPECT_NEAR(v.real(), -0.3, 1e-10);
    EXPECT_NEAR(std::abs(v.imag()), std::sqrt(1.0 - 0.09), 1e-10);
  }
}

TEST(Eigen, EigenvectorResidual) {
  const Matrix a =
      Matrix::from_rows({{2.0, 1.0, 0.0}, {0.5, 2.0, 1.0}, {0.0, 0.5, 2.0}});
  const EigenSystem es = eigen_decompose(a);
  ASSERT_EQ(es.values.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    // ||A v - lambda v|| should be ~ machine epsilon * scale.
    double residual = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      Complex acc{0.0, 0.0};
      for (std::size_t j = 0; j < 3; ++j) acc += a(i, j) * es.vectors[k][j];
      residual = std::max(residual, std::abs(acc - es.values[k] * es.vectors[k][i]));
    }
    EXPECT_LT(residual, 1e-9);
  }
}

TEST(Eigen, HessenbergReductionPreservesSpectrumLarge) {
  // Tridiagonal Toeplitz matrix: known eigenvalues 2 + 2cos(k pi/(n+1)).
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i, i + 1) = 1.0;
      a(i + 1, i) = 1.0;
    }
  }
  auto vals = sorted(eigenvalues(a));
  std::vector<double> expected;
  for (std::size_t k = 1; k <= n; ++k) {
    expected.push_back(2.0 + 2.0 * std::cos(static_cast<double>(k) * M_PI /
                                            static_cast<double>(n + 1)));
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(vals[k].real(), expected[k], 1e-8);
    EXPECT_NEAR(vals[k].imag(), 0.0, 1e-8);
  }
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(eigenvalues(Matrix(2, 3)), std::invalid_argument);
}

TEST(SolveComplex, KnownSystem) {
  std::vector<std::vector<Complex>> m{{Complex{1.0, 0.0}, Complex{0.0, 1.0}},
                                      {Complex{0.0, -1.0}, Complex{2.0, 0.0}}};
  // Solution x = (1, i): b = (1 + i*i, -i*1 + 2i) = (0, i).
  const auto x = solve_complex(m, {Complex{0.0, 0.0}, Complex{0.0, 1.0}});
  EXPECT_NEAR(std::abs(x[0] - Complex{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - Complex{0.0, 1.0}), 0.0, 1e-12);
}

TEST(SolveComplex, ThrowsOnSingular) {
  std::vector<std::vector<Complex>> m{{Complex{1.0, 0.0}, Complex{2.0, 0.0}},
                                      {Complex{2.0, 0.0}, Complex{4.0, 0.0}}};
  EXPECT_THROW(solve_complex(m, {Complex{1.0, 0.0}, Complex{1.0, 0.0}}), std::runtime_error);
}

// Property sweep: eigen-decomposition of scaled stable circuit-like
// matrices reconstructs A v = lambda v across sizes.
class EigenResidualSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenResidualSweep, DecompositionResidual) {
  const std::size_t n = GetParam();
  Matrix a(n, n);
  // Nonsymmetric banded matrix with deterministic entries.
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = -2.0 - 0.1 * static_cast<double>(i);
    if (i + 1 < n) {
      a(i, i + 1) = 1.0 + 0.05 * static_cast<double>(i);
      a(i + 1, i) = -0.7;
    }
  }
  const EigenSystem es = eigen_decompose(a);
  ASSERT_EQ(es.values.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    double residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      Complex acc{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * es.vectors[k][j];
      residual = std::max(residual, std::abs(acc - es.values[k] * es.vectors[k][i]));
    }
    EXPECT_LT(residual, 1e-8) << "eigenpair " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Linalg, EigenResidualSweep,
                         ::testing::Values(2u, 3u, 6u, 10u, 20u, 40u));

}  // namespace
}  // namespace relmore::linalg
