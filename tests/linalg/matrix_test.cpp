#include "relmore/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::linalg {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, MultiplyMatrix) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, MultiplyVector) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto y = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, Transposed) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0, 3.0}});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{3.0, 4.0}});
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(3, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a * std::vector<double>{1.0}, std::invalid_argument);
}

TEST(LuFactor, SolvesKnownSystem) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const LuFactor lu(a);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuFactor, SolvesWithPivoting) {
  // Leading zero forces a row swap.
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const LuFactor lu(a);
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(LuFactor, Determinant) {
  const Matrix a = Matrix::from_rows({{2.0, 0.0}, {0.0, 3.0}});
  EXPECT_NEAR(LuFactor(a).determinant(), 6.0, 1e-12);
  const Matrix swapped = Matrix::from_rows({{0.0, 3.0}, {2.0, 0.0}});
  EXPECT_NEAR(LuFactor(swapped).determinant(), -6.0, 1e-12);
}

TEST(LuFactor, ThrowsOnSingular) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW(LuFactor{a}, std::runtime_error);
}

TEST(LuFactor, ThrowsOnNonSquare) {
  EXPECT_THROW(LuFactor{Matrix(2, 3)}, std::invalid_argument);
}

// Property sweep: random-structured SPD-ish systems solve to residual ~ 0.
class LuSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSweep, ResidualSmall) {
  const std::size_t n = GetParam();
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = 1.0 / (1.0 + static_cast<double>(r + c));  // Hilbert-like
    }
    a(r, r) += 2.0;  // diagonally dominant -> well conditioned
  }
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i));
  const auto x = LuFactor(a).solve(b);
  const auto r = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Linalg, LuSweep, ::testing::Values(1u, 2u, 5u, 10u, 25u, 60u));

}  // namespace
}  // namespace relmore::linalg
