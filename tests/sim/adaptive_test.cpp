#include "relmore/sim/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/tree_stepper.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(Adaptive, MatchesModalReferenceWithinTolerance) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  AdaptiveOptions opts;
  opts.t_stop = 5e-9;
  opts.tol = 1e-4;
  const TransientResult res = simulate_tree_adaptive(t, StepSource{1.0}, opts);
  const ModalSolver exact(t);
  const auto node7 = static_cast<SectionId>(6);
  const Waveform w = res.waveform(node7);
  const Waveform ref = exact.response_waveform(node7, StepSource{1.0}, w.times());
  // Global error accumulates beyond the per-step tolerance; stays bounded.
  EXPECT_LT(w.max_abs_difference(ref), 50.0 * opts.tol);
}

TEST(Adaptive, TighterToleranceIsMoreAccurate) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const ModalSolver exact(t);
  const auto node7 = static_cast<SectionId>(6);
  double prev_err = 1e300;
  for (double tol : {1e-2, 1e-4, 1e-6}) {
    AdaptiveOptions opts;
    opts.t_stop = 5e-9;
    opts.tol = tol;
    const TransientResult res = simulate_tree_adaptive(t, StepSource{1.0}, opts);
    const Waveform w = res.waveform(node7);
    const Waveform ref = exact.response_waveform(node7, StepSource{1.0}, w.times());
    const double err = w.max_abs_difference(ref);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(Adaptive, UsesFewerStepsThanFixedForSameAccuracy) {
  // After the transient dies out the controller should stretch the step.
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  AdaptiveOptions opts;
  opts.t_stop = 50e-9;  // mostly settled tail
  opts.tol = 1e-4;
  const TransientResult res = simulate_tree_adaptive(t, StepSource{1.0}, opts);
  // Fixed-step at the adaptive run's *smallest* step would need many more.
  double min_h = 1e300;
  double max_h = 0.0;
  for (std::size_t i = 1; i < res.time.size(); ++i) {
    min_h = std::min(min_h, res.time[i] - res.time[i - 1]);
    max_h = std::max(max_h, res.time[i] - res.time[i - 1]);
  }
  EXPECT_GT(max_h / min_h, 5.0);  // the step really adapts
  EXPECT_LT(res.time.size(), static_cast<std::size_t>(opts.t_stop / min_h));
}

TEST(Adaptive, TimeGridIsStrictlyIncreasingAndEndsAtStop) {
  const RlcTree t = circuit::make_line(3, {20.0, 1e-9, 0.1e-12});
  AdaptiveOptions opts;
  opts.t_stop = 2e-9;
  opts.tol = 1e-4;
  const TransientResult res = simulate_tree_adaptive(t, StepSource{1.0}, opts);
  for (std::size_t i = 1; i < res.time.size(); ++i) {
    EXPECT_GT(res.time[i], res.time[i - 1]);
  }
  EXPECT_NEAR(res.time.back(), opts.t_stop, 1e-18);
  EXPECT_DOUBLE_EQ(res.time.front(), 0.0);
}

TEST(Adaptive, HandlesRcTrees) {
  const RlcTree t = circuit::make_balanced_tree(3, 2, {100.0, 0.0, 0.1e-12});
  AdaptiveOptions opts;
  opts.t_stop = 1.2e-9;  // ~11x the sink's Elmore constant
  opts.tol = 1e-5;
  const TransientResult res = simulate_tree_adaptive(t, StepSource{1.0}, opts);
  EXPECT_NEAR(res.waveform(6).final_value(), 1.0, 5e-3);
  EXPECT_LE(res.waveform(6).max_value(), 1.0 + 1e-6);
}

TEST(Adaptive, RejectsBadOptions) {
  const RlcTree t = circuit::make_line(1, {10.0, 1e-9, 0.1e-12});
  EXPECT_THROW(simulate_tree_adaptive(t, StepSource{1.0}, {}), std::invalid_argument);
  AdaptiveOptions opts;
  opts.t_stop = 1e-9;
  opts.tol = -1.0;
  EXPECT_THROW(simulate_tree_adaptive(t, StepSource{1.0}, opts), std::invalid_argument);
  opts.tol = 1e-4;
  opts.dt_min = 1.0;
  opts.dt_max = 0.5;
  EXPECT_THROW(simulate_tree_adaptive(t, StepSource{1.0}, opts), std::invalid_argument);
  EXPECT_THROW(simulate_tree_adaptive(RlcTree{}, StepSource{1.0}, opts),
               std::invalid_argument);
}

TEST(TreeStepper, StateRoundTrip) {
  const RlcTree t = circuit::make_line(2, {20.0, 1e-9, 0.1e-12});
  TreeStepper s(t);
  s.step(1e-12, 1.0, TreeStepper::Method::kBackwardEuler);
  const TreeStepper::State saved = s.state();
  s.step(1e-12, 1.0, TreeStepper::Method::kTrapezoidal);
  const double after_two = s.voltages()[1];
  s.set_state(saved);
  s.step(1e-12, 1.0, TreeStepper::Method::kTrapezoidal);
  EXPECT_DOUBLE_EQ(s.voltages()[1], after_two);  // rollback is exact
  EXPECT_THROW(s.step(0.0, 1.0, TreeStepper::Method::kTrapezoidal), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::sim
