#include "relmore/sim/waveform.hpp"

#include <gtest/gtest.h>

namespace relmore::sim {
namespace {

Waveform ramp01() {
  return Waveform({0.0, 1.0, 2.0, 3.0}, {0.0, 0.5, 1.0, 1.0});
}

TEST(Waveform, ConstructionValidation) {
  EXPECT_THROW(Waveform({0.0, 1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({1.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({2.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(Waveform, InterpolatesLinearly) {
  const Waveform w = ramp01();
  EXPECT_DOUBLE_EQ(w.value_at(0.5), 0.25);
  EXPECT_DOUBLE_EQ(w.value_at(1.5), 0.75);
}

TEST(Waveform, ClampsOutsideRange) {
  const Waveform w = ramp01();
  EXPECT_DOUBLE_EQ(w.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value_at(10.0), 1.0);
}

TEST(Waveform, FirstRiseCrossing) {
  const Waveform w = ramp01();
  EXPECT_DOUBLE_EQ(w.first_rise_crossing(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.first_rise_crossing(0.25), 0.5);
  EXPECT_LT(w.first_rise_crossing(2.0), 0.0);  // never crossed
}

TEST(Waveform, FirstRiseCrossingAtStart) {
  const Waveform w({0.0, 1.0}, {0.7, 0.9});
  EXPECT_DOUBLE_EQ(w.first_rise_crossing(0.5), 0.0);
}

TEST(Waveform, ExtremaAndFinal) {
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 1.4, 1.0});
  EXPECT_DOUBLE_EQ(w.max_value(), 1.4);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(w.final_value(), 1.0);
  EXPECT_DOUBLE_EQ(w.t_begin(), 0.0);
  EXPECT_DOUBLE_EQ(w.t_end(), 2.0);
}

TEST(Waveform, MaxAbsDifference) {
  const Waveform a({0.0, 1.0, 2.0}, {0.0, 1.0, 2.0});
  const Waveform b({0.0, 1.0, 2.0}, {0.0, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(a.max_abs_difference(b), 0.5);
  EXPECT_DOUBLE_EQ(a.max_abs_difference(a), 0.0);
}

TEST(Waveform, EmptyThrowsOnQueries) {
  const Waveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_THROW((void)w.value_at(0.0), std::logic_error);
  EXPECT_THROW((void)w.max_value(), std::logic_error);
}

TEST(UniformGrid, SpansZeroToStop) {
  const auto g = uniform_grid(2.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 2.0);
  EXPECT_DOUBLE_EQ(g[1], 0.5);
}

TEST(UniformGrid, RejectsBadArgs) {
  EXPECT_THROW(uniform_grid(0.0, 10), std::invalid_argument);
  EXPECT_THROW(uniform_grid(1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::sim
