#include "relmore/sim/state_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(StateSpace, BuildsCorrectDimensions) {
  const RlcTree t = circuit::make_line(3, {10.0, 1e-9, 0.1e-12});
  const StateSpace ss = build_state_space(t);
  EXPECT_EQ(ss.A.rows(), 6u);
  EXPECT_EQ(ss.b.size(), 6u);
  EXPECT_EQ(ss.sections, 3u);
  EXPECT_DOUBLE_EQ(ss.b[ss.current_index(0)], 1.0 / 1e-9);
  EXPECT_DOUBLE_EQ(ss.b[ss.voltage_index(0)], 0.0);
}

TEST(StateSpace, RejectsDegenerateSections) {
  RlcTree rc;
  rc.add_section(circuit::kInput, 1.0, 0.0, 1e-12);
  EXPECT_THROW(build_state_space(rc), std::invalid_argument);
  RlcTree no_cap;
  no_cap.add_section(circuit::kInput, 1.0, 1e-9, 0.0);
  EXPECT_THROW(build_state_space(no_cap), std::invalid_argument);
}

TEST(ModalSolver, SingleSectionPolesAnalytic) {
  RlcTree t;
  const double r = 50.0;
  const double l = 2e-9;
  const double c = 0.5e-12;
  t.add_section(circuit::kInput, r, l, c);
  const ModalSolver solver(t);
  // Poles of s^2 LC + s RC + 1: s = (-R +- sqrt(R^2 - 4L/C)) / (2L).
  const double disc = r * r - 4.0 * l / c;
  ASSERT_LT(disc, 0.0);  // underdamped choice
  const double re = -r / (2.0 * l);
  const double im = std::sqrt(-disc) / (2.0 * l);
  ASSERT_EQ(solver.poles().size(), 2u);
  for (const auto& p : solver.poles()) {
    EXPECT_NEAR(p.real(), re, std::abs(re) * 1e-9);
    EXPECT_NEAR(std::abs(p.imag()), im, im * 1e-9);
  }
}

TEST(ModalSolver, StepResponseMatchesAnalyticSingleSection) {
  RlcTree t;
  const double r = 20.0;
  const double l = 5e-9;
  const double c = 1e-12;
  t.add_section(circuit::kInput, r, l, c);
  const ModalSolver solver(t);
  const double wn = 1.0 / std::sqrt(l * c);
  const double zeta = r / 2.0 * std::sqrt(c / l);
  const double wd = wn * std::sqrt(1.0 - zeta * zeta);
  const auto grid = uniform_grid(10.0 / (zeta * wn), 200);
  const auto v = solver.response(0, StepSource{1.0}, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double tt = grid[i];
    const double expected =
        tt <= 0.0 ? 0.0
                  : 1.0 - std::exp(-zeta * wn * tt) *
                              (std::cos(wd * tt) + zeta * wn / wd * std::sin(wd * tt));
    EXPECT_NEAR(v[i], expected, 1e-9) << "t=" << tt;
  }
}

TEST(ModalSolver, AgreesWithTreeEngineOnFig5) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const ModalSolver solver(t);
  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.dt = 2.5e-13;
  const auto res = simulate_tree(t, StepSource{1.0}, opts);
  const auto node7 = static_cast<SectionId>(6);
  const Waveform sim_w = res.waveform(node7);
  const Waveform modal_w =
      solver.response_waveform(node7, StepSource{1.0}, uniform_grid(opts.t_stop, 501));
  EXPECT_LT(modal_w.max_abs_difference(sim_w), 2e-3);
}

TEST(ModalSolver, ExponentialInputMatchesTreeEngine) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const ModalSolver solver(t);
  const Source src = ExpSource{1.0, 0.5e-9};
  TransientOptions opts;
  opts.t_stop = 6e-9;
  opts.dt = 2.5e-13;
  const auto res = simulate_tree(t, src, opts);
  const auto node7 = static_cast<SectionId>(6);
  const Waveform modal_w =
      solver.response_waveform(node7, src, uniform_grid(opts.t_stop, 401));
  EXPECT_LT(modal_w.max_abs_difference(res.waveform(node7)), 2e-3);
}

TEST(ModalSolver, RampInputMatchesTreeEngine) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const ModalSolver solver(t);
  const Source src = RampSource{1.0, 1e-9};
  TransientOptions opts;
  opts.t_stop = 6e-9;
  opts.dt = 2.5e-13;
  const auto res = simulate_tree(t, src, opts);
  const auto node7 = static_cast<SectionId>(6);
  const Waveform modal_w =
      solver.response_waveform(node7, src, uniform_grid(opts.t_stop, 401));
  EXPECT_LT(modal_w.max_abs_difference(res.waveform(node7)), 2e-3);
}

TEST(ModalSolver, PwlInputMatchesTreeEngine) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const ModalSolver solver(t);
  const Source src = PwlSource{{{0.0, 0.0}, {0.5e-9, 0.8}, {1.0e-9, 0.4}, {2.0e-9, 1.0}}};
  TransientOptions opts;
  opts.t_stop = 7e-9;
  opts.dt = 2.5e-13;
  const auto res = simulate_tree(t, src, opts);
  const auto node7 = static_cast<SectionId>(6);
  const Waveform modal_w =
      solver.response_waveform(node7, src, uniform_grid(opts.t_stop, 401));
  EXPECT_LT(modal_w.max_abs_difference(res.waveform(node7)), 2e-3);
}

TEST(ModalSolver, AllPolesStable) {
  const RlcTree t = circuit::make_balanced_tree(4, 2, {15.0, 1e-9, 0.15e-12});
  const ModalSolver solver(t);
  for (const auto& p : solver.poles()) {
    EXPECT_LT(p.real(), 0.0);
  }
}

TEST(ModalSolver, StepSettlesToSupply) {
  const RlcTree t = circuit::make_balanced_tree(3, 2, {25.0, 1e-9, 0.2e-12});
  const ModalSolver solver(t);
  const std::vector<double> late{50e-9};
  const auto v = solver.response(6, StepSource{1.8}, late);
  EXPECT_NEAR(v[0], 1.8, 1e-6);
}

}  // namespace
}  // namespace relmore::sim
