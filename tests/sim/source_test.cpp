#include "relmore/sim/source.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::sim {
namespace {

TEST(Source, Step) {
  const Source s = StepSource{2.5};
  EXPECT_DOUBLE_EQ(source_value(s, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(source_value(s, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(source_value(s, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(source_final_value(s), 2.5);
}

TEST(Source, Ramp) {
  const Source s = RampSource{1.0, 2.0};
  EXPECT_DOUBLE_EQ(source_value(s, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(source_value(s, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(source_value(s, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(source_value(s, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(source_final_value(s), 1.0);
}

TEST(Source, Exponential) {
  const Source s = ExpSource{1.0, 1.0};
  EXPECT_DOUBLE_EQ(source_value(s, 0.0), 0.0);
  EXPECT_NEAR(source_value(s, 1.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(source_value(s, 50.0), 1.0, 1e-12);
  // The paper: 90% rise time of the exponential input is 2.3 tau.
  EXPECT_NEAR(source_value(s, 2.302585), 0.9, 1e-6);
}

TEST(Source, PwlInterpolation) {
  const Source s = PwlSource{{{0.0, 0.0}, {1.0, 1.0}, {3.0, 0.5}}};
  EXPECT_DOUBLE_EQ(source_value(s, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(source_value(s, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(source_value(s, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(source_value(s, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(source_final_value(s), 0.5);
}

TEST(Source, PwlEmptyThrows) {
  const Source s = PwlSource{};
  EXPECT_THROW((void)source_value(s, 0.0), std::invalid_argument);
  EXPECT_THROW((void)source_final_value(s), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::sim
