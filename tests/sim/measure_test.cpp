#include "relmore/sim/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace relmore::sim {
namespace {

/// Exponential RC-like rise sampled densely.
Waveform exp_rise(double tau, double t_stop, std::size_t n) {
  auto t = uniform_grid(t_stop, n);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1.0 - std::exp(-t[i] / tau);
  return Waveform(std::move(t), std::move(v));
}

/// Underdamped second-order step response (omega_n = 1).
Waveform ringing(double zeta, double t_stop, std::size_t n) {
  auto t = uniform_grid(t_stop, n);
  std::vector<double> v(n);
  const double wd = std::sqrt(1.0 - zeta * zeta);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 - std::exp(-zeta * t[i]) *
                     (std::cos(wd * t[i]) + zeta / wd * std::sin(wd * t[i]));
  }
  return Waveform(std::move(t), std::move(v));
}

TEST(Measure, ExponentialDelayAndRise) {
  const Waveform w = exp_rise(1.0, 12.0, 4001);
  const TimingMeasurement m = measure_rising(w, 1.0);
  EXPECT_NEAR(m.delay_50, std::log(2.0), 1e-3);
  EXPECT_NEAR(m.rise_10_90, std::log(9.0), 1e-3);
  EXPECT_NEAR(m.overshoot_pct, 0.0, 1e-9);
  EXPECT_GT(m.settling_time, 0.0);
  EXPECT_NEAR(m.settling_time, std::log(10.0), 1e-2);  // enters +-10% band
}

TEST(Measure, UnderdampedOvershootMatchesTheory) {
  const double zeta = 0.3;
  const Waveform w = ringing(zeta, 40.0, 20001);
  const TimingMeasurement m = measure_rising(w, 1.0);
  const double expected_peak = 100.0 * std::exp(-M_PI * zeta / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(m.overshoot_pct, expected_peak, 0.05);
  EXPECT_NEAR(m.peak_time, M_PI / std::sqrt(1.0 - zeta * zeta), 1e-2);
  EXPECT_GT(m.settling_time, m.peak_time);
}

TEST(Measure, SettlingDetectsLastExcursion) {
  // Waveform that leaves the band again late.
  Waveform w({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 1.0, 1.3, 1.0});
  const auto ts = settling_time(w, 1.0, 0.1);
  ASSERT_TRUE(ts.has_value());
  EXPECT_GT(*ts, 3.0);
}

TEST(Measure, SettlingNulloptWhenEndsOutside) {
  Waveform w({0.0, 1.0}, {0.0, 0.5});
  EXPECT_FALSE(settling_time(w, 1.0, 0.1).has_value());
}

TEST(Measure, SettlingAtStartWhenAlwaysInBand) {
  Waveform w({0.0, 1.0}, {0.95, 1.0});
  const auto ts = settling_time(w, 1.0, 0.1);
  ASSERT_TRUE(ts.has_value());
  EXPECT_DOUBLE_EQ(*ts, 0.0);
}

TEST(Measure, SettlingNulloptWhenFinalValueDegenerate) {
  // v_final == 0 collapses the +-band to a point; the contract is nullopt,
  // not a spurious "settled at t=0" from the zero-width band.
  Waveform w({0.0, 1.0, 2.0}, {0.0, 0.0, 0.0});
  EXPECT_FALSE(settling_time(w, 0.0, 0.1).has_value());
  const double nan = std::nan("");
  EXPECT_FALSE(settling_time(w, nan, 0.1).has_value());
  EXPECT_FALSE(settling_time(w, std::numeric_limits<double>::infinity(), 0.1).has_value());
  // Negative finals still work (falling waveforms measured externally).
  Waveform down({0.0, 1.0}, {-0.95, -1.0});
  EXPECT_TRUE(settling_time(down, -1.0, 0.1).has_value());
}

TEST(Measure, RejectsBadInputs) {
  EXPECT_THROW((void)measure_rising(Waveform{}, 1.0), std::invalid_argument);
  Waveform w({0.0, 1.0}, {0.0, 1.0});
  EXPECT_THROW((void)measure_rising(w, 0.0), std::invalid_argument);
  EXPECT_THROW((void)settling_time(Waveform{}, 1.0, 0.1), std::invalid_argument);
}

TEST(Measure, NeverCrossingReportsNegative) {
  Waveform w({0.0, 1.0}, {0.0, 0.2});
  const TimingMeasurement m = measure_rising(w, 1.0);
  EXPECT_LT(m.delay_50, 0.0);
  EXPECT_LT(m.rise_10_90, 0.0);
}

}  // namespace
}  // namespace relmore::sim
