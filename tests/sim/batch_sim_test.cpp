// BatchSimulator contract tests, in the engine::BatchedAnalyzer style:
// every lane of every lane-group must be bitwise-equal to a scalar
// FlatStepper run of that lane's (values, source), for every supported
// lane width and independent of the thread pool.

#include "relmore/sim/batch_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/sim/flat_stepper.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {
namespace {

using circuit::FlatTree;
using circuit::RlcTree;
using circuit::SectionId;

struct RunSpec {
  std::vector<double> r, l, c;
  Source src;
};

/// Heterogeneous runs over one topology: per-run value scaling, one RC run
/// (all inductances zero), one run with a zero-capacitance leaf (exercises
/// the g_node = 0 select lanes), and a rotating source mix.
std::vector<RunSpec> make_runs(const RlcTree& base, std::size_t count) {
  const std::size_t n = base.size();
  std::vector<RunSpec> runs(count);
  for (std::size_t s = 0; s < count; ++s) {
    RunSpec& run = runs[s];
    run.r.resize(n);
    run.l.resize(n);
    run.c.resize(n);
    const double f = 0.85 + 0.03 * static_cast<double>(s);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& v = base.section(static_cast<SectionId>(i)).v;
      run.r[i] = v.resistance * f;
      run.l[i] = s == 3 ? 0.0 : v.inductance * (2.0 - f);
      run.c[i] = v.capacitance * f;
    }
    if (s == 5) run.c[n - 1] = 0.0;
    switch (s % 4) {
      case 0: run.src = StepSource{1.0}; break;
      case 1: run.src = RampSource{1.0, 0.4e-9}; break;
      case 2: run.src = ExpSource{1.0, 0.3e-9}; break;
      default: run.src = PwlSource{{{0.0, 0.0}, {0.5e-9, 0.8}, {1.5e-9, 1.0}}}; break;
    }
  }
  return runs;
}

/// Scalar reference: a FlatTree per run, simulated through simulate_tree.
std::vector<TransientResult> scalar_reference(const RlcTree& base,
                                              const std::vector<RunSpec>& runs,
                                              const TransientOptions& opts) {
  std::vector<TransientResult> out;
  out.reserve(runs.size());
  for (const RunSpec& run : runs) {
    RlcTree tree = base;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      tree.values(static_cast<SectionId>(i)) = {run.r[i], run.l[i], run.c[i]};
    }
    out.push_back(simulate_tree(FlatTree(tree), run.src, opts));
  }
  return out;
}

TEST(BatchSimulator, LanesBitwiseEqualScalarAcrossWidthsAndThreads) {
  const RlcTree base = circuit::make_balanced_tree(3, 2, {40.0, 0.8e-9, 0.15e-12});
  const std::size_t n = base.size();
  const std::size_t kRuns = 13;  // not a multiple of any lane width: padding in play
  const std::vector<RunSpec> runs = make_runs(base, kRuns);

  TransientOptions opts;
  opts.t_stop = 1.5e-9;
  opts.dt = suggest_timestep(base, 0.05);
  const SectionId mid = static_cast<SectionId>(n / 2);
  const SectionId last = static_cast<SectionId>(n - 1);
  opts.probes = {SectionId{0}, mid, last};

  const std::vector<TransientResult> ref = scalar_reference(base, runs, opts);

  engine::BatchAnalyzer pool_one(1);
  engine::BatchAnalyzer pool_four(4);
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    BatchSimulator bs(FlatTree(base), w);
    EXPECT_EQ(bs.lane_width(), w);
    bs.resize(kRuns);
    EXPECT_EQ(bs.lane_groups(), (kRuns + w - 1) / w);
    for (std::size_t s = 0; s < kRuns; ++s) {
      bs.set_run(s, runs[s].r.data(), runs[s].l.data(), runs[s].c.data());
      bs.set_source(s, runs[s].src);
    }
    for (engine::BatchAnalyzer* pool : {static_cast<engine::BatchAnalyzer*>(nullptr),
                                        &pool_one, &pool_four}) {
      const BatchTransientResult res = bs.simulate(opts, pool);
      ASSERT_EQ(res.runs(), kRuns);
      ASSERT_EQ(res.probe_ids(), opts.probes);
      ASSERT_EQ(res.time(), ref[0].time);
      for (std::size_t s = 0; s < kRuns; ++s) {
        for (std::size_t row = 0; row < opts.probes.size(); ++row) {
          const SectionId node = opts.probes[row];
          for (std::size_t k = 0; k < res.time().size(); ++k) {
            ASSERT_EQ(res.voltage(s, node, k), ref[s].node_voltage[row][k])
                << "w=" << w << " run=" << s << " node=" << node << " step=" << k
                << " pool=" << (pool != nullptr ? pool->thread_count() : 0u);
          }
        }
      }
    }
  }
}

TEST(BatchSimulator, FullRecordingAndWaveformMatchScalar) {
  const RlcTree base = circuit::make_line(7, {30.0, 1e-9, 0.2e-12});
  const std::size_t kRuns = 5;
  const std::vector<RunSpec> runs = make_runs(base, kRuns);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = suggest_timestep(base, 0.05);  // empty probes: record everything
  const std::vector<TransientResult> ref = scalar_reference(base, runs, opts);

  BatchSimulator bs{FlatTree(base)};  // default lane width
  bs.resize(kRuns);
  for (std::size_t s = 0; s < kRuns; ++s) {
    bs.set_run(s, runs[s].r.data(), runs[s].l.data(), runs[s].c.data());
    bs.set_source(s, runs[s].src);
  }
  const BatchTransientResult res = bs.simulate(opts);
  ASSERT_EQ(res.probe_ids().size(), base.size());
  for (std::size_t s = 0; s < kRuns; ++s) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      const Waveform wave = res.waveform(s, static_cast<SectionId>(i));
      const std::vector<double>& want = ref[s].node_voltage[i];
      ASSERT_EQ(wave.values().size(), want.size());
      for (std::size_t k = 0; k < want.size(); ++k) {
        ASSERT_EQ(wave.values()[k], want[k]) << "run=" << s << " node=" << i << " step=" << k;
      }
    }
  }
}

TEST(BatchSimulator, FirstCrossingsBitwiseMatchScalarStreaming) {
  const RlcTree base = circuit::make_balanced_tree(3, 2, {45.0, 1.2e-9, 0.2e-12});
  const std::size_t kRuns = 11;
  const std::vector<RunSpec> runs = make_runs(base, kRuns);
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = suggest_timestep(base, 0.05);
  const SectionId probe = static_cast<SectionId>(base.size() - 1);

  engine::BatchAnalyzer pool(3);
  for (const double threshold : {0.5, 0.95, 3.0, 0.0}) {
    std::vector<double> want(kRuns);
    for (std::size_t s = 0; s < kRuns; ++s) {
      RlcTree tree = base;
      for (std::size_t i = 0; i < tree.size(); ++i) {
        tree.values(static_cast<SectionId>(i)) = {runs[s].r[i], runs[s].l[i], runs[s].c[i]};
      }
      want[s] =
          simulate_first_crossings(FlatTree(tree), runs[s].src, opts, {probe}, threshold)
              .front();
    }
    for (const std::size_t w : {std::size_t{2}, std::size_t{8}}) {
      BatchSimulator bs(FlatTree(base), w);
      bs.resize(kRuns);
      for (std::size_t s = 0; s < kRuns; ++s) {
        bs.set_run(s, runs[s].r.data(), runs[s].l.data(), runs[s].c.data());
        bs.set_source(s, runs[s].src);
      }
      const std::vector<double> serial = bs.first_crossings(opts, probe, threshold);
      const std::vector<double> pooled = bs.first_crossings(opts, probe, threshold, &pool);
      ASSERT_EQ(serial.size(), kRuns);
      for (std::size_t s = 0; s < kRuns; ++s) {
        EXPECT_EQ(serial[s], want[s]) << "w=" << w << " run=" << s << " th=" << threshold;
        EXPECT_EQ(pooled[s], want[s]) << "w=" << w << " run=" << s << " th=" << threshold;
      }
    }
  }
}

TEST(BatchSimulator, RejectsBadArguments) {
  const RlcTree base = circuit::make_line(4, {20.0, 0.5e-9, 0.1e-12});
  EXPECT_THROW(BatchSimulator(FlatTree(base), 3), std::invalid_argument);
  EXPECT_THROW(BatchSimulator(FlatTree(RlcTree{})), std::invalid_argument);

  BatchSimulator bs(FlatTree(base), 4);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-12;
  EXPECT_THROW((void)bs.simulate(opts), std::invalid_argument);  // no runs yet

  bs.resize(3);
  EXPECT_THROW(bs.set_source(3, StepSource{1.0}), std::out_of_range);
  std::vector<double> vals(base.size(), 1.0);
  EXPECT_THROW(bs.set_run(3, vals.data(), vals.data(), vals.data()), std::out_of_range);
  EXPECT_THROW(bs.set_run_section(0, static_cast<SectionId>(base.size()), {1.0, 0.0, 1e-15}),
               std::out_of_range);

  TransientOptions bad = opts;
  bad.probes = {static_cast<SectionId>(base.size())};
  EXPECT_THROW((void)bs.simulate(bad), std::out_of_range);
  EXPECT_THROW((void)bs.first_crossings(opts, static_cast<SectionId>(base.size()), 0.5),
               std::out_of_range);
  TransientOptions zero;
  EXPECT_THROW((void)bs.simulate(zero), std::invalid_argument);

  const BatchTransientResult res = bs.simulate(opts);
  EXPECT_THROW((void)res.voltage(3, SectionId{0}, 0), std::out_of_range);
  EXPECT_THROW((void)res.voltage(0, SectionId{0}, res.time().size()), std::out_of_range);
  EXPECT_THROW((void)res.voltage(0, static_cast<SectionId>(base.size()), 0),
               std::out_of_range);
}

TEST(BatchSimulator, SetRunSectionOverwritesOneSlot) {
  const RlcTree base = circuit::make_line(5, {25.0, 0.8e-9, 0.12e-12});
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = suggest_timestep(base, 0.05);
  opts.probes = {static_cast<SectionId>(base.size() - 1)};

  // Reference: run 1 with section 2 swapped to heavier values.
  RlcTree edited = base;
  edited.values(SectionId{2}) = {80.0, 2e-9, 0.4e-12};
  const TransientResult want = simulate_tree(FlatTree(edited), StepSource{1.0}, opts);

  BatchSimulator bs(FlatTree(base), 2);
  bs.resize(2);
  bs.set_run_section(1, SectionId{2}, {80.0, 2e-9, 0.4e-12});
  const BatchTransientResult res = bs.simulate(opts);
  for (std::size_t k = 0; k < res.time().size(); ++k) {
    ASSERT_EQ(res.voltage(1, opts.probes[0], k), want.node_voltage[0][k]);
  }
  // Run 0 keeps the nominal snapshot values.
  const TransientResult nominal = simulate_tree(FlatTree(base), StepSource{1.0}, opts);
  for (std::size_t k = 0; k < res.time().size(); ++k) {
    ASSERT_EQ(res.voltage(0, opts.probes[0], k), nominal.node_voltage[0][k]);
  }
}

}  // namespace
}  // namespace relmore::sim
