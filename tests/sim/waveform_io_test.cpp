#include "relmore/sim/waveform_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace relmore::sim {
namespace {

TEST(WaveformIo, RoundTrip) {
  const Waveform w({0.0, 1e-12, 2e-12}, {0.0, 0.5, 1.0});
  std::stringstream ss;
  write_waveform_csv(w, ss, "vout");
  const Waveform back = read_waveform_csv(ss);
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.times()[i], w.times()[i]);
    EXPECT_DOUBLE_EQ(back.values()[i], w.values()[i]);
  }
}

TEST(WaveformIo, HeaderIncludesLabel) {
  const Waveform w({0.0, 1.0}, {0.0, 1.0});
  std::ostringstream os;
  write_waveform_csv(w, os, "sink7");
  EXPECT_EQ(os.str().substr(0, 11), "time,sink7\n");
}

TEST(WaveformIo, ReadsWithoutHeader) {
  std::istringstream is("0,0.1\n1e-12,0.5\n");
  const Waveform w = read_waveform_csv(is);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.values()[0], 0.1);
}

TEST(WaveformIo, IgnoresExtraColumns) {
  std::istringstream is("time,v,extra\n0,0.1,9\n1e-12,0.5,9\n");
  const Waveform w = read_waveform_csv(is);
  ASSERT_EQ(w.size(), 2u);
}

TEST(WaveformIo, RejectsMalformedRows) {
  std::istringstream one_col("0\n1\n");
  EXPECT_THROW(read_waveform_csv(one_col), std::invalid_argument);
  std::istringstream bad_num("time,v\n0,0.1\nx,y\n");
  EXPECT_THROW(read_waveform_csv(bad_num), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW(read_waveform_csv(empty), std::invalid_argument);
  std::istringstream non_monotone("0,0\n0,1\n");
  EXPECT_THROW(read_waveform_csv(non_monotone), std::invalid_argument);
}

TEST(WaveformIo, TransientCsvHasAllNodes) {
  TransientResult res;
  res.time = {0.0, 1e-12};
  res.node_voltage = {{0.0, 0.5}, {0.0, 0.2}};
  std::ostringstream os;
  write_transient_csv(res, os, {"a", "b"});
  const std::string s = os.str();
  EXPECT_EQ(s.substr(0, 9), "time,a,b\n");
  EXPECT_NE(s.find("0.5"), std::string::npos);
  EXPECT_NE(s.find("0.2"), std::string::npos);
}

TEST(WaveformIo, TransientCsvDefaultLabels) {
  TransientResult res;
  res.time = {0.0, 1e-12};
  res.node_voltage = {{0.0, 0.5}};
  std::ostringstream os;
  write_transient_csv(res, os);
  EXPECT_EQ(os.str().substr(0, 8), "time,n0\n");
  EXPECT_THROW(write_transient_csv(res, os, {"a", "b"}), std::invalid_argument);
}

}  // namespace
}  // namespace relmore::sim
