#include "relmore/sim/tree_transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/sim/mna.hpp"

namespace relmore::sim {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Single RC section: analytic step response 1 - e^{-t/RC}.
TEST(TreeTransient, SingleRcSectionMatchesAnalytic) {
  RlcTree t;
  const double r = 100.0;
  const double c = 1e-12;
  t.add_section(circuit::kInput, r, 0.0, c);
  TransientOptions opts;
  opts.t_stop = 10.0 * r * c;
  opts.dt = r * c / 400.0;
  const auto res = simulate_tree(t, StepSource{1.0}, opts);
  const Waveform w = res.waveform(0);
  for (double frac : {1.0, 2.0, 5.0}) {
    const double tt = frac * r * c;
    EXPECT_NEAR(w.value_at(tt), 1.0 - std::exp(-frac), 2e-4) << "at t=" << frac << " RC";
  }
}

/// Single underdamped RLC section: analytic second-order response is exact
/// for a one-section tree.
TEST(TreeTransient, SingleRlcSectionMatchesAnalytic) {
  RlcTree t;
  const double r = 20.0;
  const double l = 5e-9;
  const double c = 1e-12;
  t.add_section(circuit::kInput, r, l, c);
  const double wn = 1.0 / std::sqrt(l * c);
  const double zeta = r / 2.0 * std::sqrt(c / l);
  ASSERT_LT(zeta, 1.0);
  TransientOptions opts;
  opts.t_stop = 12.0 / (zeta * wn);
  opts.dt = 1.0 / (wn * 400.0);
  const auto res = simulate_tree(t, StepSource{1.0}, opts);
  const Waveform w = res.waveform(0);
  const double wd = wn * std::sqrt(1.0 - zeta * zeta);
  for (double tt = opts.t_stop / 50.0; tt < opts.t_stop; tt += opts.t_stop / 23.0) {
    const double expected =
        1.0 - std::exp(-zeta * wn * tt) *
                  (std::cos(wd * tt) + zeta * wn / wd * std::sin(wd * tt));
    EXPECT_NEAR(w.value_at(tt), expected, 3e-3) << "t=" << tt;
  }
}

TEST(TreeTransient, FinalValueIsSupply) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.dt = 1e-13;
  const auto res = simulate_tree(t, StepSource{1.8}, opts);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(res.waveform(static_cast<SectionId>(i)).final_value(), 1.8, 1e-3)
        << "node " << i;
  }
}

TEST(TreeTransient, ZeroInputStaysZero) {
  const RlcTree t = circuit::make_line(3, {10.0, 1e-9, 0.1e-12});
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-12;
  const auto res = simulate_tree(t, PwlSource{{{0.0, 0.0}, {1.0, 0.0}}}, opts);
  EXPECT_DOUBLE_EQ(res.waveform(2).max_value(), 0.0);
}

TEST(TreeTransient, OvershootBoundedAndSettles) {
  // Passivity sanity: a single second-order system at most doubles, but
  // ladder/tree networks superpose reflections, so interior overshoots can
  // exceed 2x slightly. Bound loosely, and require settling to the supply.
  const RlcTree t = circuit::make_balanced_tree(3, 2, {1.0, 2e-9, 0.2e-12});
  TransientOptions opts;
  opts.t_stop = 200e-9;
  opts.dt = 2e-13;
  const auto res = simulate_tree(t, StepSource{1.0}, opts);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(res.waveform(static_cast<SectionId>(i)).max_value(), 2.5);
    EXPECT_GE(res.waveform(static_cast<SectionId>(i)).min_value(), -1.0);
    EXPECT_NEAR(res.waveform(static_cast<SectionId>(i)).final_value(), 1.0, 0.02);
  }
}

TEST(TreeTransient, RejectsBadOptions) {
  const RlcTree t = circuit::make_line(1, {1.0, 0.0, 1e-12});
  EXPECT_THROW(simulate_tree(t, StepSource{1.0}, {}), std::invalid_argument);
  TransientOptions opts;
  opts.t_stop = -1.0;
  opts.dt = 1.0;
  EXPECT_THROW(simulate_tree(t, StepSource{1.0}, opts), std::invalid_argument);
  EXPECT_THROW(simulate_tree(RlcTree{}, StepSource{1.0}, opts), std::invalid_argument);
}

TEST(SuggestTimestep, ScalesWithFastestSection) {
  const RlcTree t = circuit::make_line(2, {10.0, 1e-9, 0.1e-12});
  const double dt = suggest_timestep(t, 0.02);
  EXPECT_GT(dt, 0.0);
  EXPECT_LT(dt, std::sqrt(1e-9 * 0.1e-12));
  RlcTree degenerate;
  degenerate.add_section(circuit::kInput, 1.0, 0.0, 0.0);
  EXPECT_THROW(suggest_timestep(degenerate, 0.02), std::invalid_argument);
}

/// MNA engine agrees with the specialized tree engine on a branchy tree.
TEST(MnaTransient, AgreesWithTreeEngine) {
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  TransientOptions opts;
  opts.t_stop = 3e-9;
  opts.dt = 5e-13;
  const auto res_tree = simulate_tree(t, StepSource{1.0}, opts);
  const auto res_mna = simulate_mna(t, StepSource{1.0}, opts);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    const double err = res_tree.waveform(id).max_abs_difference(res_mna.waveform(id));
    EXPECT_LT(err, 1e-8) << "node " << i;
  }
}

TEST(MnaTransient, HandlesZeroInductanceSections) {
  // RC tree (L = 0 rows make E singular; descriptor form must still solve).
  const RlcTree t = circuit::make_balanced_tree(3, 2, {100.0, 0.0, 0.1e-12});
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-12;
  const auto res = simulate_mna(t, StepSource{1.0}, opts);
  EXPECT_NEAR(res.waveform(6).final_value(), 1.0, 1e-3);
  // RC responses are monotone in [0, 1].
  EXPECT_LE(res.waveform(6).max_value(), 1.0 + 1e-6);
}

TEST(MnaTransient, BuildsExpectedDimensions) {
  const RlcTree t = circuit::make_line(3, {1.0, 1e-9, 1e-12});
  const MnaSystem sys = build_mna(t);
  EXPECT_EQ(sys.E.rows(), 6u);
  EXPECT_EQ(sys.F.cols(), 6u);
  EXPECT_EQ(sys.g.size(), 6u);
  EXPECT_DOUBLE_EQ(sys.g[3], 1.0);  // root branch equation driven by input
}

TEST(MnaTransient, StampsMatchCircuitLaw) {
  // Verify individual stamps on a two-section branchy tree:
  //   node rows:   C_i v_i' = j_i - sum(children j)
  //   branch rows: L_i j_i' = v_parent - v_i - R_i j_i
  RlcTree t;
  const SectionId a = t.add_section(circuit::kInput, 7.0, 3e-9, 2e-12);
  const SectionId b = t.add_section(a, 11.0, 5e-9, 4e-12);
  const MnaSystem sys = build_mna(t);
  const std::size_t n = 2;
  // Node row of a: E(a,a)=C_a, F(a, n+a)=+1, F(a, n+b)=-1.
  EXPECT_DOUBLE_EQ(sys.E(0, 0), 2e-12);
  EXPECT_DOUBLE_EQ(sys.F(0, n + 0), 1.0);
  EXPECT_DOUBLE_EQ(sys.F(0, n + 1), -1.0);
  // Branch row of b: E(n+b,n+b)=L_b, F(n+b, a)=+1, F(n+b, b)=-1,
  // F(n+b, n+b) = -R_b.
  EXPECT_DOUBLE_EQ(sys.E(n + 1, n + 1), 5e-9);
  EXPECT_DOUBLE_EQ(sys.F(n + 1, static_cast<std::size_t>(a)), 1.0);
  EXPECT_DOUBLE_EQ(sys.F(n + 1, static_cast<std::size_t>(b)), -1.0);
  EXPECT_DOUBLE_EQ(sys.F(n + 1, n + 1), -11.0);
  // Root branch of a is driven by the source.
  EXPECT_DOUBLE_EQ(sys.g[n + 0], 1.0);
  EXPECT_DOUBLE_EQ(sys.g[0], 0.0);
}

TEST(MnaTransient, SteadyStateSatisfiesDc) {
  // At steady state F x + g u = 0 must hold with x = [u..u, 0..0].
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const MnaSystem sys = build_mna(t);
  const std::size_t n = t.size();
  std::vector<double> x(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0;  // all nodes at the supply
  const auto fx = sys.F * x;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    EXPECT_NEAR(fx[i] + sys.g[i] * 1.0, 0.0, 1e-12) << "row " << i;
  }
}

/// Property sweep: both engines agree across damping regimes.
class EngineAgreementSweep : public ::testing::TestWithParam<double> {};

TEST_P(EngineAgreementSweep, TreeVsMna) {
  const double l_scale = GetParam();
  RlcTree t = circuit::make_fig5_tree({25.0, 1e-9, 0.2e-12}, nullptr);
  circuit::scale_inductances(t, l_scale);
  TransientOptions opts;
  opts.t_stop = 6e-9 * std::sqrt(std::max(1.0, l_scale));
  opts.dt = opts.t_stop / 8000.0;
  const auto a = simulate_tree(t, StepSource{1.0}, opts);
  const auto b = simulate_mna(t, StepSource{1.0}, opts);
  const auto node7 = static_cast<SectionId>(6);
  EXPECT_LT(a.waveform(node7).max_abs_difference(b.waveform(node7)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sim, EngineAgreementSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace relmore::sim
