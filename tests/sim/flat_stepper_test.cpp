// FlatStepper equivalence and API tests. The headline property: the SoA
// stepper with hoisted per-(h, method) factorizations is *bitwise*
// identical to the AoS TreeStepper oracle on random trees — which makes
// the ISSUE's ≤1-ulp-per-step contract hold with zero ulps.

#include "relmore/sim/flat_stepper.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/sim/adaptive.hpp"
#include "relmore/sim/tree_stepper.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {
namespace {

using circuit::FlatTree;
using circuit::RlcTree;
using circuit::SectionId;

Source pick_source(circuit::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return StepSource{0.5 + rng.uniform()};
    case 1: return RampSource{1.0, 0.2e-9 + 0.8e-9 * rng.uniform()};
    case 2: return ExpSource{1.0, 0.1e-9 + 0.5e-9 * rng.uniform()};
    default:
      return PwlSource{{{0.0, 0.0}, {0.3e-9, 0.7}, {0.9e-9, 0.4}, {2.0e-9, 1.0}}};
  }
}

TreeStepper::Method oracle_method(FlatStepper::Method m) {
  return m == FlatStepper::Method::kTrapezoidal ? TreeStepper::Method::kTrapezoidal
                                                : TreeStepper::Method::kBackwardEuler;
}

// ≥100 random trees (RLC and RC mix) x random (h, method schedule,
// source), with a mid-run step-size change to exercise the factor cache.
// Every component of the advanced state must match the oracle exactly.
TEST(FlatStepper, BitwiseMatchesTreeStepperOnRandomTrees) {
  circuit::RandomTreeSpec rlc;
  circuit::RandomTreeSpec rc = rlc;
  rc.inductance_lo = rc.inductance_hi = 0.0;

  int cases = 0;
  for (std::uint64_t seed = 0; seed < 110; ++seed) {
    const RlcTree tree = make_random_tree(seed % 3 == 0 ? rc : rlc, seed);
    const FlatTree flat(tree);
    circuit::Rng rng(seed * 7919 + 17);
    const double h1 = suggest_timestep(tree, 0.01 + 0.2 * rng.uniform());
    const double h2 = 0.5 * h1;
    const Source src = pick_source(rng);
    const int be_steps = rng.uniform_int(0, 3);

    TreeStepper oracle(tree);
    FlatStepper fast(flat);
    for (int k = 1; k <= 32; ++k) {
      const double h = k <= 16 ? h1 : h2;
      const double t = fast.time() + h;
      const double vin = source_value(src, t);
      const auto method = k > be_steps ? FlatStepper::Method::kTrapezoidal
                                       : FlatStepper::Method::kBackwardEuler;
      oracle.step(h, vin, oracle_method(method));
      fast.step(h, vin, method);
      ASSERT_EQ(oracle.time(), fast.time());
      for (std::size_t i = 0; i < tree.size(); ++i) {
        ASSERT_EQ(oracle.voltages()[i], fast.voltages()[i])
            << "v_node seed=" << seed << " step=" << k << " node=" << i;
        ASSERT_EQ(oracle.state().i_l[i], fast.state().i_l[i])
            << "i_l seed=" << seed << " step=" << k << " node=" << i;
        ASSERT_EQ(oracle.state().v_l[i], fast.state().v_l[i])
            << "v_l seed=" << seed << " step=" << k << " node=" << i;
        ASSERT_EQ(oracle.state().i_c[i], fast.state().i_c[i])
            << "i_c seed=" << seed << " step=" << k << " node=" << i;
      }
    }
    ++cases;
  }
  EXPECT_GE(cases, 100);
}

TEST(FlatStepper, StepFromMatchesStepAndLeavesSourceUntouched) {
  const RlcTree tree = circuit::make_line(9, {25.0, 1e-9, 0.2e-12});
  const FlatTree flat(tree);
  const double h = suggest_timestep(tree, 0.05);

  FlatStepper walker(flat);
  for (int k = 1; k <= 5; ++k) {
    walker.step(h, 1.0, FlatStepper::Method::kTrapezoidal);
  }
  const FlatStepper::State checkpoint = walker.state();

  // step_from(checkpoint) must equal set_state(checkpoint) + step().
  FlatStepper by_copy(flat);
  by_copy.set_state(checkpoint);
  by_copy.step(h, 1.0, FlatStepper::Method::kTrapezoidal);

  FlatStepper by_ref(flat);
  by_ref.step_from(checkpoint, h, 1.0, FlatStepper::Method::kTrapezoidal);

  EXPECT_EQ(by_copy.time(), by_ref.time());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(by_copy.voltages()[i], by_ref.voltages()[i]);
    EXPECT_EQ(by_copy.state().i_c[i], by_ref.state().i_c[i]);
  }
  // The checkpoint is read-only to step_from.
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(checkpoint.v_node[i], walker.state().v_node[i]);
  }

  // Degenerate aliasing case: stepping from one's own state is step().
  FlatStepper self(flat);
  self.set_state(checkpoint);
  self.step_from(self.state(), h, 1.0, FlatStepper::Method::kTrapezoidal);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(by_copy.voltages()[i], self.voltages()[i]);
  }
}

TEST(FlatStepper, SwapStateExchangesStates) {
  const RlcTree tree = circuit::make_line(4, {50.0, 0.0, 0.1e-12});
  const FlatTree flat(tree);
  FlatStepper a(flat);
  FlatStepper b(flat);
  a.step(1e-12, 1.0, FlatStepper::Method::kBackwardEuler);
  const FlatStepper::State was_a = a.state();
  const FlatStepper::State was_b = b.state();
  a.swap_state(b);
  EXPECT_EQ(a.time(), was_b.time);
  EXPECT_EQ(b.time(), was_a.time);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(a.voltages()[i], was_b.v_node[i]);
    EXPECT_EQ(b.voltages()[i], was_a.v_node[i]);
  }
}

TEST(FlatStepper, RejectsBadInputs) {
  const RlcTree tree = circuit::make_line(3, {10.0, 1e-9, 0.1e-12});
  const FlatTree flat(tree);
  FlatStepper s(flat);
  EXPECT_THROW(s.step(0.0, 1.0, FlatStepper::Method::kTrapezoidal), std::invalid_argument);
  EXPECT_THROW(s.step(-1e-12, 1.0, FlatStepper::Method::kBackwardEuler),
               std::invalid_argument);
  FlatStepper::State bad;
  bad.i_l.assign(2, 0.0);
  bad.v_l.assign(3, 0.0);
  bad.i_c.assign(3, 0.0);
  bad.v_node.assign(3, 0.0);
  EXPECT_THROW(s.set_state(bad), std::invalid_argument);
  EXPECT_THROW(s.step_from(bad, 1e-12, 1.0, FlatStepper::Method::kTrapezoidal),
               std::invalid_argument);
  const RlcTree empty;
  EXPECT_THROW(FlatStepper{FlatTree(empty)}, std::invalid_argument);
}

// The per-(h, method) factorization is built exactly once per distinct
// pair while it stays cached — the point of optimization (1).
TEST(FlatStepper, FactorizationCacheIsReused) {
  const RlcTree tree = circuit::make_line(6, {20.0, 0.5e-9, 0.2e-12});
  const FlatTree flat(tree);
  const double h = suggest_timestep(tree, 0.02);
  FlatStepper s(flat);
  EXPECT_EQ(s.factorizations_built(), 0u);
  for (int k = 0; k < 10; ++k) s.step(h, 1.0, FlatStepper::Method::kBackwardEuler);
  EXPECT_EQ(s.factorizations_built(), 1u);
  for (int k = 0; k < 10; ++k) s.step(h, 1.0, FlatStepper::Method::kTrapezoidal);
  EXPECT_EQ(s.factorizations_built(), 2u);
  // Same pair again: still cached (capacity is two — exactly the fixed-step
  // engine's working set).
  s.step(h, 1.0, FlatStepper::Method::kBackwardEuler);
  EXPECT_EQ(s.factorizations_built(), 2u);
  // A third pair evicts one entry.
  s.step(0.5 * h, 1.0, FlatStepper::Method::kTrapezoidal);
  EXPECT_EQ(s.factorizations_built(), 3u);
}

// Probe-selective recording returns exactly the corresponding rows of the
// full recording, bit for bit, and maps waveform() lookups by id.
TEST(SimulateTree, ProbeRowsMatchFullRecordingBitwise) {
  const RlcTree tree = circuit::make_balanced_tree(3, 2, {40.0, 0.8e-9, 0.15e-12});
  const FlatTree flat(tree);
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = suggest_timestep(tree, 0.05);

  const TransientResult full = simulate_tree(flat, StepSource{1.0}, opts);
  ASSERT_TRUE(full.probe_ids.empty());
  ASSERT_EQ(full.node_voltage.size(), tree.size());

  const SectionId last = static_cast<SectionId>(tree.size() - 1);
  opts.probes = {last, SectionId{0}};
  const TransientResult probed = simulate_tree(flat, StepSource{1.0}, opts);
  ASSERT_EQ(probed.node_voltage.size(), 2u);
  ASSERT_EQ(probed.probe_ids, opts.probes);
  ASSERT_EQ(probed.time, full.time);
  for (std::size_t k = 0; k < full.time.size(); ++k) {
    EXPECT_EQ(probed.node_voltage[0][k], full.node_voltage[static_cast<std::size_t>(last)][k]);
    EXPECT_EQ(probed.node_voltage[1][k], full.node_voltage[0][k]);
  }
  EXPECT_TRUE(probed.records(last));
  EXPECT_FALSE(probed.records(SectionId{1}));
  EXPECT_NO_THROW(probed.waveform(last));
  EXPECT_THROW(probed.waveform(SectionId{1}), std::out_of_range);
  EXPECT_THROW([&] {
    TransientOptions bad = opts;
    bad.probes = {static_cast<SectionId>(tree.size())};
    (void)simulate_tree(flat, StepSource{1.0}, bad);
  }(), std::out_of_range);

  // The RlcTree overload is the same engine.
  const TransientResult via_rlc = simulate_tree(tree, StepSource{1.0}, opts);
  for (std::size_t k = 0; k < full.time.size(); ++k) {
    EXPECT_EQ(via_rlc.node_voltage[0][k], probed.node_voltage[0][k]);
  }
}

// The streaming crossing path replicates Waveform::first_rise_crossing
// bitwise: interior crossings, the no-crossing −1, and the t=0 fallback
// for thresholds at or below the initial value.
TEST(SimulateFirstCrossings, MatchesRecordedWaveformCrossings) {
  circuit::RandomTreeSpec spec;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const RlcTree tree = make_random_tree(spec, seed + 1000);
    const FlatTree flat(tree);
    TransientOptions opts;
    opts.t_stop = 3e-9;
    opts.dt = suggest_timestep(tree, 0.05);
    const SectionId leaf = flat.leaves().back();
    const SectionId root = SectionId{0};

    const TransientResult rec = simulate_tree(flat, StepSource{1.0}, opts);
    for (const double threshold : {0.5, 0.9, 2.0, 0.0}) {
      const std::vector<double> cross =
          simulate_first_crossings(flat, StepSource{1.0}, opts, {leaf, root}, threshold);
      ASSERT_EQ(cross.size(), 2u);
      EXPECT_EQ(cross[0], rec.waveform(leaf).first_rise_crossing(threshold))
          << "seed=" << seed << " threshold=" << threshold;
      EXPECT_EQ(cross[1], rec.waveform(root).first_rise_crossing(threshold))
          << "seed=" << seed << " threshold=" << threshold;
    }
  }
}

// The restructured zero-copy adaptive driver: probe-selective rows equal
// the full run's rows on the identical accepted-step grid.
TEST(SimulateTreeAdaptive, ProbeSelectiveMatchesFullRun) {
  const RlcTree tree = circuit::make_line(12, {30.0, 1.2e-9, 0.25e-12});
  AdaptiveOptions opts;
  opts.t_stop = 4e-9;
  opts.tol = 1e-4;

  const TransientResult full = simulate_tree_adaptive(tree, StepSource{1.0}, opts);
  const SectionId sink = static_cast<SectionId>(tree.size() - 1);
  opts.probes = {sink};
  const TransientResult probed = simulate_tree_adaptive(tree, StepSource{1.0}, opts);

  ASSERT_EQ(probed.time, full.time);
  ASSERT_EQ(probed.node_voltage.size(), 1u);
  for (std::size_t k = 0; k < full.time.size(); ++k) {
    EXPECT_EQ(probed.node_voltage[0][k],
              full.node_voltage[static_cast<std::size_t>(sink)][k]);
  }
}

}  // namespace
}  // namespace relmore::sim
