/// \file sim_tiling_property_test.cpp
/// Property tests for the tile-blocked transient kernels: over (lane
/// width, tile size, thread count) draws — degenerate tiles included —
/// every BatchSimulator configuration must stay *bitwise* equal to the
/// scalar FlatStepper oracle. The tiled downward sweep and the
/// tile-sink probe drain may only change the order sections are
/// touched within a step, never any accumulation order, so ASSERT_EQ
/// on raw voltages is the contract.

#include "relmore/sim/batch_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/sim/flat_stepper.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {
namespace {

using circuit::FlatTree;
using circuit::RlcTree;
using circuit::SectionId;

struct RunSpec {
  std::vector<double> r, l, c;
  Source src;
};

/// Heterogeneous runs: per-run scaling, one pure-RC run, one
/// zero-capacitance leaf, rotating source kinds.
std::vector<RunSpec> make_runs(const RlcTree& base, std::size_t count) {
  const std::size_t n = base.size();
  std::vector<RunSpec> runs(count);
  for (std::size_t s = 0; s < count; ++s) {
    RunSpec& run = runs[s];
    run.r.resize(n);
    run.l.resize(n);
    run.c.resize(n);
    const double f = 0.85 + 0.02 * static_cast<double>(s);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& v = base.section(static_cast<SectionId>(i)).v;
      run.r[i] = v.resistance * f;
      run.l[i] = s == 3 ? 0.0 : v.inductance * (2.0 - f);
      run.c[i] = v.capacitance * f;
    }
    if (s == 5) run.c[n - 1] = 0.0;
    switch (s % 3) {
      case 0: run.src = StepSource{1.0}; break;
      case 1: run.src = RampSource{1.0, 0.4e-9}; break;
      default: run.src = ExpSource{1.0, 0.3e-9}; break;
    }
  }
  return runs;
}

TEST(SimTilingProperty, SimulateBitwiseEqualScalarAcrossTilesWidthsThreads) {
  const RlcTree base = circuit::make_balanced_tree(6, 2, {35.0, 0.9e-9, 0.15e-12});
  const std::size_t n = base.size();
  const std::size_t kRuns = 11;  // ragged tail at every width
  const std::vector<RunSpec> runs = make_runs(base, kRuns);

  TransientOptions opts;
  opts.t_stop = 1.2e-9;
  opts.dt = suggest_timestep(base, 0.05);
  opts.probes = {SectionId{0}, static_cast<SectionId>(n / 2), static_cast<SectionId>(n - 1)};

  // Scalar oracle per run.
  std::vector<TransientResult> ref;
  ref.reserve(kRuns);
  for (const RunSpec& run : runs) {
    RlcTree tree = base;
    for (std::size_t i = 0; i < n; ++i) {
      tree.values(static_cast<SectionId>(i)) = {run.r[i], run.l[i], run.c[i]};
    }
    ref.push_back(simulate_tree(FlatTree(tree), run.src, opts));
  }

  engine::BatchAnalyzer pool(3);
  // Tiles: single-row (maximal sink traffic), a ragged interior size,
  // >= n (one whole-tree tile), and 0 (auto via engine::KernelTuner).
  const std::size_t tiles[] = {1, 9, n + 7, 0};
  for (const std::size_t w : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    BatchSimulator bs(FlatTree(base), w);
    bs.resize(kRuns);
    for (std::size_t s = 0; s < kRuns; ++s) {
      bs.set_run(s, runs[s].r.data(), runs[s].l.data(), runs[s].c.data());
      bs.set_source(s, runs[s].src);
    }
    for (const std::size_t tile : tiles) {
      bs.set_tile_rows(tile);
      EXPECT_EQ(bs.tile_rows(), tile);
      for (engine::BatchAnalyzer* p :
           {static_cast<engine::BatchAnalyzer*>(nullptr), &pool}) {
        const BatchTransientResult res = bs.simulate(opts, p);
        for (std::size_t s = 0; s < kRuns; ++s) {
          for (std::size_t row = 0; row < opts.probes.size(); ++row) {
            const SectionId node = opts.probes[row];
            for (std::size_t k = 0; k < res.time().size(); ++k) {
              ASSERT_EQ(res.voltage(s, node, k), ref[s].node_voltage[row][k])
                  << "w=" << w << " tile=" << tile << " run=" << s << " node=" << node
                  << " step=" << k;
            }
          }
        }
      }
    }
  }
}

TEST(SimTilingProperty, FullRecordingDrainsEverySectionUnderTinyTiles) {
  // Empty probe list records all n sections: the drain cursor must walk
  // the full id range through every tile boundary.
  const RlcTree base = circuit::make_balanced_tree(5, 2, {30.0, 1e-9, 0.2e-12});
  const std::size_t kRuns = 6;
  const std::vector<RunSpec> runs = make_runs(base, kRuns);
  TransientOptions opts;
  opts.t_stop = 0.8e-9;
  opts.dt = suggest_timestep(base, 0.05);

  std::vector<TransientResult> ref;
  ref.reserve(kRuns);
  for (const RunSpec& run : runs) {
    RlcTree tree = base;
    for (std::size_t i = 0; i < base.size(); ++i) {
      tree.values(static_cast<SectionId>(i)) = {run.r[i], run.l[i], run.c[i]};
    }
    ref.push_back(simulate_tree(FlatTree(tree), run.src, opts));
  }

  BatchSimulator bs(FlatTree(base), 4);
  bs.resize(kRuns);
  for (std::size_t s = 0; s < kRuns; ++s) {
    bs.set_run(s, runs[s].r.data(), runs[s].l.data(), runs[s].c.data());
    bs.set_source(s, runs[s].src);
  }
  for (const std::size_t tile : {std::size_t{1}, std::size_t{5}, std::size_t{0}}) {
    bs.set_tile_rows(tile);
    const BatchTransientResult res = bs.simulate(opts);
    for (std::size_t s = 0; s < kRuns; ++s) {
      for (std::size_t i = 0; i < base.size(); ++i) {
        const auto node = static_cast<SectionId>(i);
        for (std::size_t k = 0; k < res.time().size(); ++k) {
          ASSERT_EQ(res.voltage(s, node, k), ref[s].node_voltage[i][k])
              << "tile=" << tile << " run=" << s << " node=" << i << " step=" << k;
        }
      }
    }
  }
}

TEST(SimTilingProperty, FirstCrossingsBitwiseEqualAcrossTiles) {
  const RlcTree base = circuit::make_balanced_tree(5, 2, {45.0, 1.1e-9, 0.18e-12});
  const std::size_t kRuns = 9;
  const std::vector<RunSpec> runs = make_runs(base, kRuns);
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = suggest_timestep(base, 0.05);
  const auto probe = static_cast<SectionId>(base.size() - 1);

  std::vector<double> want(kRuns);
  for (std::size_t s = 0; s < kRuns; ++s) {
    RlcTree tree = base;
    for (std::size_t i = 0; i < base.size(); ++i) {
      tree.values(static_cast<SectionId>(i)) = {runs[s].r[i], runs[s].l[i], runs[s].c[i]};
    }
    want[s] =
        simulate_first_crossings(FlatTree(tree), runs[s].src, opts, {probe}, 0.5).front();
  }

  engine::BatchAnalyzer pool(2);
  BatchSimulator bs(FlatTree(base), 8);
  bs.resize(kRuns);
  for (std::size_t s = 0; s < kRuns; ++s) {
    bs.set_run(s, runs[s].r.data(), runs[s].l.data(), runs[s].c.data());
    bs.set_source(s, runs[s].src);
  }
  for (const std::size_t tile : {std::size_t{1}, std::size_t{7}, std::size_t{1000}, std::size_t{0}}) {
    bs.set_tile_rows(tile);
    const std::vector<double> serial = bs.first_crossings(opts, probe, 0.5);
    const std::vector<double> pooled = bs.first_crossings(opts, probe, 0.5, &pool);
    for (std::size_t s = 0; s < kRuns; ++s) {
      EXPECT_EQ(serial[s], want[s]) << "tile=" << tile << " run=" << s;
      EXPECT_EQ(pooled[s], want[s]) << "tile=" << tile << " run=" << s;
    }
  }
}

}  // namespace
}  // namespace relmore::sim
