#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/batch.hpp"

namespace {

using namespace relmore;

TEST(BatchAnalyzer, ThreadCountDefaultsToAtLeastOne) {
  const engine::BatchAnalyzer pool;
  EXPECT_GE(pool.thread_count(), 1u);
  const engine::BatchAnalyzer one(1);
  EXPECT_EQ(one.thread_count(), 1u);
}

TEST(BatchAnalyzer, ParallelForVisitsEveryIndexExactlyOnce) {
  engine::BatchAnalyzer pool(4);
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(BatchAnalyzer, ParallelForZeroCountIsNoop) {
  engine::BatchAnalyzer pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "fn called for empty range"; });
}

TEST(BatchAnalyzer, ParallelForReusableAcrossCalls) {
  engine::BatchAnalyzer pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(BatchAnalyzer, ParallelChunksCoverRangeWithoutOverlap) {
  engine::BatchAnalyzer pool(4);
  const std::size_t count = 103;  // deliberately not divisible by the pool size
  std::vector<std::atomic<int>> hits(count);
  std::atomic<unsigned> chunks{0};
  pool.parallel_chunks(count, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ++chunks;
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_LE(chunks.load(), pool.thread_count());
}

TEST(BatchAnalyzer, AnalyzeAllMatchesSequentialAnalyze) {
  std::vector<circuit::RlcTree> trees;
  circuit::RandomTreeSpec spec;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    trees.push_back(circuit::make_random_tree(spec, seed));
  }
  engine::BatchAnalyzer pool;
  const std::vector<eed::TreeModel> batched = pool.analyze_all(trees);
  ASSERT_EQ(batched.size(), trees.size());
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const eed::TreeModel fresh = eed::analyze(trees[t]);
    ASSERT_EQ(batched[t].nodes.size(), fresh.nodes.size());
    for (std::size_t i = 0; i < fresh.nodes.size(); ++i) {
      EXPECT_EQ(batched[t].nodes[i].sum_rc, fresh.nodes[i].sum_rc);
      EXPECT_EQ(batched[t].nodes[i].sum_lc, fresh.nodes[i].sum_lc);
    }
  }
}

TEST(BatchAnalyzer, FirstExceptionPropagatesToCaller) {
  engine::BatchAnalyzer pool(2);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("task 17 failed");
                                 }),
               std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

}  // namespace
