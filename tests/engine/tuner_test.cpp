/// \file tuner_test.cpp
/// KernelTuner unit tests: the RELMORE_TUNE grammar (exposed via
/// parse_tune so malformed forms are coverable without env games) and
/// the shape of auto-calibrated plans. The env-read paths themselves
/// live in dedicated single-process binaries (tune_env_test,
/// tune_reject_test) because the variable is read once per process.

#include "relmore/engine/tuner.hpp"

#include <gtest/gtest.h>

#include <cstddef>

namespace relmore::engine {
namespace {

TEST(KernelTunerParse, AcceptsWellFormedPlans) {
  const auto p1 = KernelTuner::parse_tune("4x2048");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->lane_width, 4u);
  EXPECT_EQ(p1->tile_rows, 2048u);

  const auto p2 = KernelTuner::parse_tune("1x0");  // T=0: forced untiled
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->lane_width, 1u);
  EXPECT_EQ(p2->tile_rows, 0u);

  const auto p3 = KernelTuner::parse_tune("8x4194304");  // max tile
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->lane_width, 8u);
  EXPECT_EQ(p3->tile_rows, std::size_t{4194304});
}

TEST(KernelTunerParse, RejectsEveryMalformedShape) {
  for (const char* bad :
       {"", "x", "4", "4x", "x64", "3x64", "5x64", "0x64", "-4x64", "4x-1",
        "4x4194305", "4y64", "4x64x4", "4x64 ", "banana", "4xbanana",
        "99999999999999999999x64", "4x99999999999999999999", "2.5x64"}) {
    EXPECT_FALSE(KernelTuner::parse_tune(bad).has_value()) << "accepted \"" << bad << "\"";
  }
  EXPECT_FALSE(KernelTuner::parse_tune(nullptr).has_value());
}

TEST(KernelTuner, PlansMatchLaneCountAndTreeSize) {
  const KernelTuner& tuner = KernelTuner::instance();
  if (tuner.forced()) GTEST_SKIP() << "RELMORE_TUNE set in this environment";

  // Width never exceeds the known lane count; unknown (0) gets the
  // preferred width.
  EXPECT_EQ(tuner.analysis_plan(1000, 1).lane_width, 1u);
  EXPECT_EQ(tuner.analysis_plan(1000, 2).lane_width, 2u);
  EXPECT_EQ(tuner.analysis_plan(1000, 3).lane_width, 2u);
  EXPECT_EQ(tuner.analysis_plan(1000, 7).lane_width, 4u);
  EXPECT_EQ(tuner.analysis_plan(1000, 256).lane_width, 4u);
  EXPECT_EQ(tuner.analysis_plan(1000, 0).lane_width, 4u);
  EXPECT_EQ(tuner.sim_plan(1000, 2).lane_width, 2u);
  EXPECT_EQ(tuner.sim_plan(1000, 0).lane_width, 4u);

  // Cache geometry is probed (or falls back) to something sane.
  EXPECT_GE(tuner.l1_bytes(), std::size_t{16} * 1024);
  EXPECT_GE(tuner.l2_bytes(), std::size_t{256} * 1024);

  // Small trees fit: untiled. Far-beyond-L2 trees: a bounded tile, never
  // below the restart-overhead floor, never the whole tree.
  EXPECT_EQ(tuner.analysis_plan(64, 256).tile_rows, 0u);
  const std::size_t huge = std::size_t{1} << 22;
  const std::size_t tile = tuner.analysis_plan(huge, 256).tile_rows;
  EXPECT_GE(tile, 256u);
  EXPECT_LT(tile, huge);
  const std::size_t sim_tile = tuner.sim_plan(huge, 256).tile_rows;
  EXPECT_GE(sim_tile, 256u);
  EXPECT_LT(sim_tile, huge);
  // The sim step touches more state per section, so its tile is no
  // larger than the analysis tile at the same shape.
  EXPECT_LE(sim_tile, tile);
}

}  // namespace
}  // namespace relmore::engine
