/// \file tune_reject_test.cpp
/// Malformed RELMORE_TUNE values must be rejected loudly and fall back
/// to auto-calibration — never crash, never half-apply. Own binary for
/// the same reason as tune_env_test: the variable is read exactly once
/// per process, so the bad value is planted by a file-scope initializer
/// before main().

#include <cstdlib>

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/tuner.hpp"

namespace {

using namespace relmore;

const bool kEnvPlanted = [] {
  setenv("RELMORE_TUNE", "8x64banana", 1);
  return true;
}();

TEST(TuneReject, MalformedOverrideFallsBackToAutoCalibration) {
  ASSERT_TRUE(kEnvPlanted);
  const engine::KernelTuner& tuner = engine::KernelTuner::instance();
  EXPECT_FALSE(tuner.forced());
  // Auto plans, not the half-parseable "8x64" prefix.
  EXPECT_EQ(tuner.analysis_plan(1000, 256).lane_width, 4u);
  EXPECT_EQ(tuner.analysis_plan(1000, 256).tile_rows, 0u);

  // Kernels construct and run normally on the fallback plan.
  const circuit::RlcTree tree = circuit::make_balanced_tree(4, 2, {20.0, 1e-9, 0.1e-12});
  engine::BatchedAnalyzer batch(circuit::FlatTree(tree), 0);
  EXPECT_EQ(batch.lane_width(), 4u);
  batch.resize(3);
  const engine::BatchedModels models = batch.analyze();
  EXPECT_GT(models.sum_rc(0, 0), 0.0);
}

}  // namespace
