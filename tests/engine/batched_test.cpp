/// \file batched_test.cpp
/// The batched same-topology kernel against scalar ground truth. The
/// property test pins BatchedAnalyzer to scalar `eed::analyze` within
/// 1 ulp across 100 random (topology, sample-set) pairs — covering S=1,
/// S not divisible by the lane width, pure-RC (L=0) lanes next to
/// underdamped lanes, and all supported lane widths. (By construction
/// each lane runs the scalar pass's operations in its association order,
/// so the match is in fact bitwise; 1 ulp is the promised contract.)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/eed/second_order.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"

namespace {

using namespace relmore;
using circuit::SectionId;
using circuit::SectionValues;

bool ulp_close(double a, double b) {
  if (a == b) return true;  // includes matching infinities
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::nextafter(a, b) == b;
}

/// One sample's values for the property test: the tree's nominals
/// log-uniformly perturbed; every third sample is made pure RC (L = 0) so
/// degenerate lanes sit next to underdamped ones inside a lane group.
void draw_sample(const circuit::RlcTree& tree, std::size_t s, circuit::Rng& rng,
                 std::vector<double>& r, std::vector<double>& l, std::vector<double>& c) {
  const bool pure_rc = s % 3 == 2;
  for (std::size_t k = 0; k < tree.size(); ++k) {
    const SectionValues& v = tree.section(static_cast<SectionId>(k)).v;
    r[k] = v.resistance * rng.log_uniform(0.25, 4.0);
    l[k] = pure_rc ? 0.0 : v.inductance * rng.log_uniform(0.25, 4.0);
    c[k] = v.capacitance * rng.log_uniform(0.25, 4.0);
  }
}

TEST(Batched, MatchesScalarAnalyzeTo1UlpOver100RandomPairs) {
  circuit::RandomTreeSpec spec;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const circuit::RlcTree tree = circuit::make_random_tree(spec, seed);
    const circuit::FlatTree flat(tree);
    const std::size_t n = tree.size();
    // S cycles through 1, 2, ..., 13: exercises S=1 and S % W != 0 for
    // every supported lane width.
    const std::size_t samples = 1 + (seed - 1) % 13;

    // Draw the sample set once; all lane widths consume identical values.
    std::vector<std::vector<double>> rv(samples), lv(samples), cv(samples);
    circuit::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
    for (std::size_t s = 0; s < samples; ++s) {
      rv[s].resize(n);
      lv[s].resize(n);
      cv[s].resize(n);
      draw_sample(tree, s, rng, rv[s], lv[s], cv[s]);
    }

    // Scalar ground truth per sample.
    std::vector<eed::TreeModel> truth;
    truth.reserve(samples);
    circuit::RlcTree scratch = tree;
    for (std::size_t s = 0; s < samples; ++s) {
      for (std::size_t k = 0; k < n; ++k) {
        scratch.values(static_cast<SectionId>(k)) = {rv[s][k], lv[s][k], cv[s][k]};
      }
      truth.push_back(eed::analyze(scratch));
    }

    for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      engine::BatchedAnalyzer batch(flat, w);
      batch.resize(samples);
      for (std::size_t s = 0; s < samples; ++s) {
        batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
      }
      const engine::BatchedModels models = batch.analyze();
      for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t k = 0; k < n; ++k) {
          const auto id = static_cast<SectionId>(k);
          const eed::NodeModel want = truth[s].at(id);
          const eed::NodeModel got = models.node(s, id);
          EXPECT_TRUE(ulp_close(got.sum_rc, want.sum_rc))
              << "SR seed " << seed << " W " << w << " sample " << s << " node " << k << ": "
              << got.sum_rc << " vs " << want.sum_rc;
          EXPECT_TRUE(ulp_close(got.sum_lc, want.sum_lc))
              << "SL seed " << seed << " W " << w << " sample " << s << " node " << k;
          EXPECT_TRUE(ulp_close(got.zeta, want.zeta))
              << "zeta seed " << seed << " W " << w << " sample " << s << " node " << k;
          EXPECT_TRUE(ulp_close(got.omega_n, want.omega_n))
              << "omega seed " << seed << " W " << w << " sample " << s << " node " << k;
          EXPECT_TRUE(ulp_close(models.load_capacitance(s, id), truth[s].load_capacitance[k]))
              << "Ctot seed " << seed << " W " << w << " sample " << s << " node " << k;
        }
      }
    }
  }
}

TEST(Batched, AnalyzeNodesMatchesFullAnalyze) {
  const circuit::RlcTree tree = circuit::make_balanced_tree(5, 2, {12.0, 0.8e-9, 60e-15});
  const circuit::FlatTree flat(tree);
  engine::BatchedAnalyzer batch(flat, 4);
  batch.resize(6);
  for (std::size_t s = 0; s < 6; ++s) {
    batch.set_section(s, static_cast<SectionId>(s), {20.0 + static_cast<double>(s), 1e-9, 80e-15});
  }
  const std::vector<SectionId> subset = {0, 7, static_cast<SectionId>(tree.size() - 1)};
  const engine::BatchedModels full = batch.analyze();
  const engine::BatchedModels part = batch.analyze_nodes(subset);
  for (std::size_t s = 0; s < 6; ++s) {
    for (const SectionId id : subset) {
      EXPECT_EQ(part.sum_rc(s, id), full.sum_rc(s, id));
      EXPECT_EQ(part.sum_lc(s, id), full.sum_lc(s, id));
      EXPECT_EQ(part.load_capacitance(s, id), full.load_capacitance(s, id));
      EXPECT_EQ(part.delay_50(s, id), full.delay_50(s, id));
    }
  }
  // Uncovered nodes and out-of-range samples throw.
  EXPECT_THROW((void)part.sum_rc(0, 3), std::out_of_range);
  EXPECT_THROW((void)part.sum_rc(6, 0), std::out_of_range);
}

TEST(Batched, PoolCompositionIsBitwiseIdentical) {
  const circuit::RlcTree tree = circuit::make_balanced_tree(7, 2, {15.0, 1.2e-9, 45e-15});
  engine::BatchedAnalyzer batch(circuit::FlatTree(tree), 4);
  const std::size_t samples = 37;  // 10 lane groups, ragged tail
  batch.resize(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    batch.set_section(s, 0, {15.0 + static_cast<double>(s), 1.2e-9, 45e-15});
  }
  const SectionId sink = tree.leaves().back();
  const engine::BatchedModels serial = batch.analyze_nodes({sink});
  engine::BatchAnalyzer pool(4);
  const engine::BatchedModels pooled = batch.analyze_nodes({sink}, &pool);
  for (std::size_t s = 0; s < samples; ++s) {
    EXPECT_EQ(serial.sum_rc(s, sink), pooled.sum_rc(s, sink)) << "sample " << s;
    EXPECT_EQ(serial.sum_lc(s, sink), pooled.sum_lc(s, sink)) << "sample " << s;
  }
}

// The streaming (fused fill + analyze) path promises bitwise equality
// with the stored resize/set_sample/analyze_nodes path — same AoSoA
// block per group, same kernel — serial and pooled alike.
TEST(Batched, StreamIsBitwiseIdenticalToStoredPath) {
  const circuit::RlcTree tree =
      circuit::make_random_tree({.min_sections = 120, .max_sections = 180}, 2024);
  const circuit::FlatTree flat(tree);
  const std::size_t n = flat.size();
  const std::size_t samples = 29;  // ragged tail at every tested width
  std::vector<std::vector<double>> rv(samples), lv(samples), cv(samples);
  circuit::Rng rng(7);
  for (std::size_t s = 0; s < samples; ++s) {
    rv[s].resize(n);
    lv[s].resize(n);
    cv[s].resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      rv[s][k] = flat.resistance()[k] * (0.8 + 0.4 * rng.uniform());
      lv[s][k] = flat.inductance()[k] * (0.8 + 0.4 * rng.uniform());
      cv[s][k] = flat.capacitance()[k] * (0.8 + 0.4 * rng.uniform());
    }
  }
  const auto fill = [&](std::size_t s, double* r, double* l, double* c) {
    std::copy(rv[s].begin(), rv[s].end(), r);
    std::copy(lv[s].begin(), lv[s].end(), l);
    std::copy(cv[s].begin(), cv[s].end(), c);
  };
  const std::vector<SectionId> sinks = flat.leaves();
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    engine::BatchedAnalyzer batch(flat, w);
    batch.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
    }
    const engine::BatchedModels stored = batch.analyze_nodes(sinks);
    const engine::BatchedModels streamed = batch.analyze_stream(samples, fill, sinks);
    engine::BatchAnalyzer pool(3);
    const engine::BatchedModels pooled = batch.analyze_stream(samples, fill, sinks, &pool);
    for (std::size_t s = 0; s < samples; ++s) {
      for (const SectionId id : sinks) {
        EXPECT_EQ(stored.sum_rc(s, id), streamed.sum_rc(s, id)) << "W=" << w << " s=" << s;
        EXPECT_EQ(stored.sum_lc(s, id), streamed.sum_lc(s, id)) << "W=" << w << " s=" << s;
        EXPECT_EQ(stored.load_capacitance(s, id), streamed.load_capacitance(s, id));
        EXPECT_EQ(streamed.sum_rc(s, id), pooled.sum_rc(s, id)) << "W=" << w << " s=" << s;
        EXPECT_EQ(streamed.sum_lc(s, id), pooled.sum_lc(s, id)) << "W=" << w << " s=" << s;
      }
    }
  }
}

TEST(Batched, StreamValidatesFilledValues) {
  const circuit::RlcTree tree = circuit::make_line(8, {10.0, 1e-9, 50e-15});
  engine::BatchedAnalyzer batch(circuit::FlatTree(tree), 4);
  const auto bad_fill = [&](std::size_t, double* r, double* l, double* c) {
    for (std::size_t k = 0; k < tree.size(); ++k) {
      r[k] = 1.0;
      l[k] = 0.0;
      c[k] = 1e-15;
    }
    r[3] = -1.0;
  };
  EXPECT_THROW(
      {
        const auto m = batch.analyze_stream(5, bad_fill, {});
        (void)m;
      },
      std::invalid_argument);
  EXPECT_THROW(
      {
        const auto m =
            batch.analyze_stream(0, [](std::size_t, double*, double*, double*) {}, {});
        (void)m;
      },
      std::invalid_argument);
}

TEST(Batched, NominalSamplesMatchNominalTree) {
  SectionId out = circuit::kInput;
  const circuit::RlcTree tree = circuit::make_fig8_tree(&out);
  engine::BatchedAnalyzer batch{circuit::FlatTree(tree)};
  batch.resize(3);  // resize() fills every sample with the snapshot's nominals
  const eed::TreeModel want = eed::analyze(tree);
  const engine::BatchedModels got = batch.analyze();
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t k = 0; k < tree.size(); ++k) {
      const auto id = static_cast<SectionId>(k);
      EXPECT_EQ(got.sum_rc(s, id), want.at(id).sum_rc);
      EXPECT_EQ(got.sum_lc(s, id), want.at(id).sum_lc);
    }
  }
  EXPECT_EQ(got.delay_50(0, out), eed::delay_50(want.at(out)));
}

TEST(Batched, ValidatesInputs) {
  const circuit::RlcTree tree = circuit::make_line(4, {10.0, 1e-9, 50e-15});
  const circuit::FlatTree flat(tree);
  EXPECT_THROW(engine::BatchedAnalyzer(flat, 3), std::invalid_argument);
  EXPECT_THROW(engine::BatchedAnalyzer(circuit::FlatTree(circuit::RlcTree{})),
               std::invalid_argument);

  engine::BatchedAnalyzer batch(flat, 4);
  EXPECT_THROW((void)batch.analyze(), std::invalid_argument);  // no samples yet
  batch.resize(2);
  EXPECT_EQ(batch.samples(), 2u);
  EXPECT_EQ(batch.lane_groups(), 1u);
  EXPECT_THROW(batch.set_section(2, 0, {1.0, 0.0, 0.0}), std::out_of_range);
  EXPECT_THROW(batch.set_section(0, 99, {1.0, 0.0, 0.0}), std::out_of_range);
  EXPECT_THROW(batch.set_section(0, 0, {-1.0, 0.0, 0.0}), std::invalid_argument);
  std::vector<double> r(4, 1.0), l(4, 0.0), c(4, -1e-15);
  EXPECT_THROW(batch.set_sample(0, r.data(), l.data(), c.data()), std::invalid_argument);
  EXPECT_THROW((void)batch.analyze_nodes({99}), std::out_of_range);
}

TEST(FlatTree, SnapshotsTopologyValuesAndColdNames) {
  SectionId out = circuit::kInput;
  const circuit::RlcTree tree = circuit::make_fig8_tree(&out);
  const circuit::FlatTree flat(tree);
  ASSERT_EQ(flat.size(), tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    EXPECT_EQ(flat.parent()[i], tree.section(id).parent);
    EXPECT_EQ(flat.resistance()[i], tree.section(id).v.resistance);
    EXPECT_EQ(flat.inductance()[i], tree.section(id).v.inductance);
    EXPECT_EQ(flat.capacitance()[i], tree.section(id).v.capacitance);
    EXPECT_EQ(flat.names()[i], tree.section(id).name);
    EXPECT_EQ(flat.level()[i], tree.level(id));
    EXPECT_EQ(flat.child_count()[i], static_cast<int>(tree.children(id).size()));
  }
  EXPECT_EQ(flat.depth(), tree.depth());
  EXPECT_EQ(flat.leaves(), tree.leaves());
  EXPECT_EQ(flat.find_by_name("O"), tree.find_by_name("O"));
  EXPECT_EQ(flat.find_by_name("no-such-name"), circuit::kInput);
}

TEST(FlatTree, ScalarAnalyzeOverloadIsBitwiseEqual) {
  circuit::RandomTreeSpec spec;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const circuit::RlcTree tree = circuit::make_random_tree(spec, seed);
    const eed::TreeModel aos = eed::analyze(tree);
    const eed::TreeModel soa = eed::analyze(circuit::FlatTree(tree));
    ASSERT_EQ(aos.nodes.size(), soa.nodes.size());
    for (std::size_t i = 0; i < aos.nodes.size(); ++i) {
      EXPECT_EQ(aos.nodes[i].sum_rc, soa.nodes[i].sum_rc) << "seed " << seed << " node " << i;
      EXPECT_EQ(aos.nodes[i].sum_lc, soa.nodes[i].sum_lc) << "seed " << seed << " node " << i;
      EXPECT_EQ(aos.load_capacitance[i], soa.load_capacitance[i]);
    }
  }
}

}  // namespace
