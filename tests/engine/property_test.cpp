/// \file property_test.cpp
/// Property test for the incremental engine: over 100 seeded random trees,
/// apply a random sequence of edits (value changes, batches, grafts,
/// prunes) with interleaved point queries, and check that the engine's
/// cached (SR, SL, zeta, omega_n) stay within 1 ulp of a fresh
/// `eed::analyze` of the edited tree. (By construction the engine re-sums
/// in the fresh pass's association order, so the match is in fact bitwise;
/// the 1-ulp bound is the contract we promise.)

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/timing_engine.hpp"

namespace {

using namespace relmore;
using circuit::SectionId;
using circuit::SectionValues;

bool ulp_close(double a, double b) {
  if (a == b) return true;  // exact match, including matching infinities
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::nextafter(a, b) == b;  // within one ulp
}

void check_against_fresh(const engine::TimingEngine& eng, std::uint64_t seed, int op) {
  const eed::TreeModel fresh = eed::analyze(eng.tree());
  const eed::TreeModel cached = eng.model();
  ASSERT_EQ(cached.nodes.size(), fresh.nodes.size());
  for (std::size_t i = 0; i < fresh.nodes.size(); ++i) {
    if (!eng.alive(static_cast<SectionId>(i))) continue;
    const eed::NodeModel& c = cached.nodes[i];
    const eed::NodeModel& f = fresh.nodes[i];
    EXPECT_TRUE(ulp_close(c.sum_rc, f.sum_rc))
        << "SR node " << i << " seed " << seed << " op " << op << ": " << c.sum_rc
        << " vs " << f.sum_rc;
    EXPECT_TRUE(ulp_close(c.sum_lc, f.sum_lc))
        << "SL node " << i << " seed " << seed << " op " << op;
    EXPECT_TRUE(ulp_close(c.zeta, f.zeta)) << "zeta node " << i << " seed " << seed;
    EXPECT_TRUE(ulp_close(c.omega_n, f.omega_n)) << "omega_n node " << i << " seed " << seed;
    EXPECT_TRUE(ulp_close(cached.load_capacitance[i], fresh.load_capacitance[i]))
        << "Ctot node " << i << " seed " << seed;
  }
}

std::vector<SectionId> alive_ids(const engine::TimingEngine& eng) {
  std::vector<SectionId> ids;
  for (std::size_t i = 0; i < eng.size(); ++i) {
    if (eng.alive(static_cast<SectionId>(i))) ids.push_back(static_cast<SectionId>(i));
  }
  return ids;
}

SectionValues perturbed(const SectionValues& v, circuit::Rng& rng) {
  SectionValues out;
  out.resistance = v.resistance * rng.log_uniform(0.25, 4.0);
  out.inductance = v.inductance * rng.log_uniform(0.25, 4.0);
  out.capacitance = v.capacitance * rng.log_uniform(0.25, 4.0);
  return out;
}

TEST(EngineProperty, RandomEditSequencesMatchFreshAnalyzeTo1Ulp) {
  circuit::RandomTreeSpec tree_spec;
  circuit::RandomTreeSpec graft_spec;
  graft_spec.min_sections = 3;
  graft_spec.max_sections = 8;

  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    engine::TimingEngine eng(circuit::make_random_tree(tree_spec, seed));
    circuit::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    int grafts_left = 3;

    const int ops = 30;
    for (int op = 0; op < ops; ++op) {
      const std::vector<SectionId> ids = alive_ids(eng);
      ASSERT_FALSE(ids.empty());
      const int kind = rng.uniform_int(0, 9);
      if (kind <= 4) {
        // Point edit of one alive section.
        const SectionId id = ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(ids.size()) - 1))];
        eng.set_section_values(id, perturbed(eng.tree().section(id).v, rng));
      } else if (kind <= 6) {
        // Batch of random size — small batches propagate, big ones take the
        // dense fallback; both must land on the same state.
        const int count = rng.uniform_int(1, static_cast<int>(ids.size()));
        std::vector<engine::Edit> edits(static_cast<std::size_t>(count));
        for (auto& e : edits) {
          e.id = ids[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(ids.size()) - 1))];
          e.v = perturbed(eng.tree().section(e.id).v, rng);
        }
        eng.apply_edits(edits);
      } else if (kind == 7) {
        // Interleaved point query: must agree with a fresh analysis even
        // when the rest of the tree is stale.
        const SectionId id = ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(ids.size()) - 1))];
        const eed::NodeModel fresh_node = eed::analyze(eng.tree()).at(id);
        const eed::NodeModel got = eng.node(id);
        EXPECT_TRUE(ulp_close(got.sum_rc, fresh_node.sum_rc)) << "seed " << seed;
        EXPECT_TRUE(ulp_close(got.sum_lc, fresh_node.sum_lc)) << "seed " << seed;
      } else if (kind == 8 && grafts_left > 0) {
        --grafts_left;
        const SectionId parent =
            rng.uniform() < 0.2 ? circuit::kInput
                                : ids[static_cast<std::size_t>(
                                      rng.uniform_int(0, static_cast<int>(ids.size()) - 1))];
        eng.graft(parent, circuit::make_random_tree(graft_spec, seed * 1000 + static_cast<std::uint64_t>(op)));
      } else if (kind == 9 && ids.size() > 1) {
        // Prune any alive section except id 0, so the tree never goes fully
        // dead mid-sequence.
        const SectionId victim = ids[static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<int>(ids.size()) - 1))];
        eng.prune(victim);
      }
      if (op % 10 == 9) check_against_fresh(eng, seed, op);
    }
    check_against_fresh(eng, seed, ops);
  }
}

}  // namespace
