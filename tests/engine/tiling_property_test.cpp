/// \file tiling_property_test.cpp
/// Property tests for the working-set-tiled batched analysis kernels:
/// over random (topology, sample-set, lane width, tile size, thread
/// count) draws — degenerate tiles included — every configuration must
/// be *bitwise* equal to the scalar eed::analyze oracle. Tiling and the
/// path-walk fast path may only change the order sections are touched,
/// never the order any reduction accumulates, so EXPECT_EQ on the raw
/// doubles is the contract, not a tolerance.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"

namespace {

using namespace relmore;
using circuit::SectionId;

/// Log-uniform per-sample perturbation of the tree's nominals; every
/// third sample pure RC so degenerate lanes share groups with
/// underdamped ones.
void draw_sample(const circuit::FlatTree& flat, std::size_t s, circuit::Rng& rng,
                 std::vector<double>& r, std::vector<double>& l, std::vector<double>& c) {
  const bool pure_rc = s % 3 == 2;
  for (std::size_t k = 0; k < flat.size(); ++k) {
    r[k] = flat.resistance()[k] * rng.log_uniform(0.25, 4.0);
    l[k] = pure_rc ? 0.0 : flat.inductance()[k] * rng.log_uniform(0.25, 4.0);
    c[k] = flat.capacitance()[k] * rng.log_uniform(0.25, 4.0);
  }
}

/// The tile sizes a draw exercises: forced single-row tiles, a random
/// interior size, tile >= n (one degenerate whole-tree tile), and 0
/// (auto — whatever engine::KernelTuner picks for this shape).
std::vector<std::size_t> tile_draws(std::size_t n, circuit::Rng& rng) {
  return {std::size_t{1}, static_cast<std::size_t>(rng.uniform_int(2, static_cast<int>(n))),
          n + static_cast<std::size_t>(rng.uniform_int(0, 64)), std::size_t{0}};
}

TEST(TilingProperty, AnalyzeBitwiseEqualsScalarAcrossTilesWidthsThreads) {
  engine::BatchAnalyzer pool(3);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const circuit::RlcTree tree = circuit::make_random_tree(
        {.min_sections = 40, .max_sections = 300}, seed + 5000);
    const circuit::FlatTree flat(tree);
    const std::size_t n = flat.size();
    const std::size_t samples = 1 + (seed * 7) % 13;
    circuit::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 3);

    std::vector<std::vector<double>> rv(samples), lv(samples), cv(samples);
    std::vector<eed::TreeModel> truth(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      rv[s].resize(n);
      lv[s].resize(n);
      cv[s].resize(n);
      draw_sample(flat, s, rng, rv[s], lv[s], cv[s]);
      eed::analyze_values(flat, rv[s].data(), lv[s].data(), cv[s].data(), truth[s]);
    }

    const std::size_t widths[] = {1, 2, 4, 8};
    const std::size_t w = widths[seed % 4];
    engine::BatchedAnalyzer batch(flat, w);
    batch.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
    }
    for (const std::size_t tile : tile_draws(n, rng)) {
      batch.set_tile_rows(tile);
      EXPECT_EQ(batch.tile_rows(), tile);
      for (engine::BatchAnalyzer* p :
           {static_cast<engine::BatchAnalyzer*>(nullptr), &pool}) {
        const engine::BatchedModels models = batch.analyze(p);
        for (std::size_t s = 0; s < samples; ++s) {
          for (std::size_t k = 0; k < n; ++k) {
            const auto id = static_cast<SectionId>(k);
            ASSERT_EQ(models.sum_rc(s, id), truth[s].at(id).sum_rc)
                << "seed " << seed << " W " << w << " tile " << tile << " s " << s << " k " << k;
            ASSERT_EQ(models.sum_lc(s, id), truth[s].at(id).sum_lc)
                << "seed " << seed << " W " << w << " tile " << tile << " s " << s << " k " << k;
            ASSERT_EQ(models.load_capacitance(s, id), truth[s].load_capacitance[k])
                << "seed " << seed << " W " << w << " tile " << tile << " s " << s << " k " << k;
          }
        }
      }
    }
  }
}

TEST(TilingProperty, AnalyzeNodesPathWalkAndSweepBitwiseEqualScalar) {
  // Sparse queries (root + one deep leaf) take the path-walk fast path;
  // the all-leaves query takes the tiled downward sweep with a sorted
  // drain. Both must reproduce the scalar oracle exactly under every
  // tile setting.
  engine::BatchAnalyzer pool(2);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const circuit::RlcTree tree = circuit::make_random_tree(
        {.min_sections = 60, .max_sections = 250}, seed + 9000);
    const circuit::FlatTree flat(tree);
    const std::size_t n = flat.size();
    const std::size_t samples = 5;
    circuit::Rng rng(seed * 1234567 + 89);

    std::vector<std::vector<double>> rv(samples), lv(samples), cv(samples);
    std::vector<eed::TreeModel> truth(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      rv[s].resize(n);
      lv[s].resize(n);
      cv[s].resize(n);
      draw_sample(flat, s, rng, rv[s], lv[s], cv[s]);
      eed::analyze_values(flat, rv[s].data(), lv[s].data(), cv[s].data(), truth[s]);
    }

    const std::vector<SectionId> sparse = {SectionId{0}, flat.leaves().back()};
    const std::vector<SectionId>& dense = flat.leaves();
    engine::BatchedAnalyzer batch(flat, 4);
    batch.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
    }
    for (const std::size_t tile : tile_draws(n, rng)) {
      batch.set_tile_rows(tile);
      for (const std::vector<SectionId>* ids : {&sparse, &dense}) {
        const engine::BatchedModels serial = batch.analyze_nodes(*ids);
        const engine::BatchedModels pooled = batch.analyze_nodes(*ids, &pool);
        for (std::size_t s = 0; s < samples; ++s) {
          for (const SectionId id : *ids) {
            ASSERT_EQ(serial.sum_rc(s, id), truth[s].at(id).sum_rc)
                << "seed " << seed << " tile " << tile << " s " << s << " id " << id;
            ASSERT_EQ(serial.sum_lc(s, id), truth[s].at(id).sum_lc)
                << "seed " << seed << " tile " << tile << " s " << s << " id " << id;
            ASSERT_EQ(pooled.sum_rc(s, id), serial.sum_rc(s, id));
            ASSERT_EQ(pooled.sum_lc(s, id), serial.sum_lc(s, id));
          }
        }
      }
    }
  }
}

TEST(TilingProperty, StreamBitwiseEqualsStoredUnderEveryTile) {
  const circuit::RlcTree tree = circuit::make_random_tree(
      {.min_sections = 150, .max_sections = 200}, 424242);
  const circuit::FlatTree flat(tree);
  const std::size_t n = flat.size();
  const std::size_t samples = 23;
  circuit::Rng rng(11);
  std::vector<std::vector<double>> rv(samples), lv(samples), cv(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    rv[s].resize(n);
    lv[s].resize(n);
    cv[s].resize(n);
    draw_sample(flat, s, rng, rv[s], lv[s], cv[s]);
  }
  const auto fill = [&](std::size_t s, double* r, double* l, double* c) {
    std::copy(rv[s].begin(), rv[s].end(), r);
    std::copy(lv[s].begin(), lv[s].end(), l);
    std::copy(cv[s].begin(), cv[s].end(), c);
  };
  const std::vector<SectionId> sinks = flat.leaves();
  engine::BatchAnalyzer pool(3);
  for (const std::size_t w : {std::size_t{2}, std::size_t{8}}) {
    engine::BatchedAnalyzer batch(flat, w);
    batch.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      batch.set_sample(s, rv[s].data(), lv[s].data(), cv[s].data());
    }
    for (const std::size_t tile : tile_draws(n, rng)) {
      batch.set_tile_rows(tile);
      const engine::BatchedModels stored = batch.analyze_nodes(sinks);
      const engine::BatchedModels streamed = batch.analyze_stream(samples, fill, sinks);
      const engine::BatchedModels pooled = batch.analyze_stream(samples, fill, sinks, &pool);
      for (std::size_t s = 0; s < samples; ++s) {
        for (const SectionId id : sinks) {
          ASSERT_EQ(stored.sum_rc(s, id), streamed.sum_rc(s, id))
              << "W " << w << " tile " << tile << " s " << s;
          ASSERT_EQ(stored.sum_lc(s, id), streamed.sum_lc(s, id))
              << "W " << w << " tile " << tile << " s " << s;
          ASSERT_EQ(streamed.sum_rc(s, id), pooled.sum_rc(s, id))
              << "W " << w << " tile " << tile << " s " << s;
        }
      }
    }
  }
}

}  // namespace
