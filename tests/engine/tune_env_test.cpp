/// \file tune_env_test.cpp
/// The RELMORE_TUNE override end-to-end. The tuner reads the variable
/// exactly once per process (std::call_once), so this test lives in its
/// own binary: a file-scope initializer plants RELMORE_TUNE=2x4 before
/// main() — and therefore before any KernelTuner::instance() call — and
/// every test here asserts against that forced plan. The deliberately
/// tiny tile (4 rows) hammers tile boundaries; results must still be
/// bitwise-equal to the scalar oracle.

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/flat_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/tuner.hpp"
#include "relmore/sim/batch_sim.hpp"
#include "relmore/sim/flat_stepper.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace {

using namespace relmore;
using circuit::SectionId;

const bool kEnvPlanted = [] {
  setenv("RELMORE_TUNE", "2x4", 1);
  return true;
}();

TEST(TuneEnv, ForcedPlanPinsEveryBucket) {
  ASSERT_TRUE(kEnvPlanted);
  const engine::KernelTuner& tuner = engine::KernelTuner::instance();
  ASSERT_TRUE(tuner.forced());
  for (const std::size_t sections : {std::size_t{8}, std::size_t{100000}}) {
    for (const std::size_t lanes : {std::size_t{0}, std::size_t{1}, std::size_t{512}}) {
      const engine::KernelPlan ap = tuner.analysis_plan(sections, lanes);
      EXPECT_EQ(ap.lane_width, 2u);
      EXPECT_EQ(ap.tile_rows, 4u);
      const engine::KernelPlan sp = tuner.sim_plan(sections, lanes);
      EXPECT_EQ(sp.lane_width, 2u);
      EXPECT_EQ(sp.tile_rows, 4u);
    }
  }
}

TEST(TuneEnv, AutoWidthCallersInheritTheForcedPlanBitwiseEqual) {
  const circuit::RlcTree tree = circuit::make_balanced_tree(6, 2, {25.0, 1e-9, 0.12e-12});
  const circuit::FlatTree flat(tree);
  const std::size_t n = flat.size();

  // Analysis: width 0 resolves to the forced W=2, tile 4; output must
  // match the scalar oracle exactly.
  engine::BatchedAnalyzer batch(flat, 0);
  EXPECT_EQ(batch.lane_width(), 2u);
  batch.resize(5);
  const eed::TreeModel want = eed::analyze(flat);
  const engine::BatchedModels got = batch.analyze();
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t k = 0; k < n; ++k) {
      const auto id = static_cast<SectionId>(k);
      ASSERT_EQ(got.sum_rc(s, id), want.at(id).sum_rc) << "s " << s << " k " << k;
      ASSERT_EQ(got.sum_lc(s, id), want.at(id).sum_lc) << "s " << s << " k " << k;
    }
  }

  // An explicit width still beats the override.
  engine::BatchedAnalyzer wide(flat, 8);
  EXPECT_EQ(wide.lane_width(), 8u);

  // Simulation: same resolution rule, same bitwise contract.
  sim::BatchSimulator bs(flat, 0);
  EXPECT_EQ(bs.lane_width(), 2u);
  bs.resize(3);
  sim::TransientOptions opts;
  opts.dt = sim::suggest_timestep(tree, 0.05);
  opts.t_stop = 200.0 * opts.dt;
  opts.probes = {static_cast<SectionId>(n - 1)};
  const sim::TransientResult ref = sim::simulate_tree(flat, sim::StepSource{1.0}, opts);
  const sim::BatchTransientResult res = bs.simulate(opts);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t k = 0; k < res.time().size(); ++k) {
      ASSERT_EQ(res.voltage(s, opts.probes[0], k), ref.node_voltage[0][k])
          << "run " << s << " step " << k;
    }
  }
}

}  // namespace
