#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/eed/second_order.hpp"
#include "relmore/engine/timing_engine.hpp"

namespace {

using namespace relmore;
using circuit::SectionId;
using circuit::SectionValues;

void expect_node_eq(const eed::NodeModel& a, const eed::NodeModel& b) {
  EXPECT_EQ(a.sum_rc, b.sum_rc);
  EXPECT_EQ(a.sum_lc, b.sum_lc);
  EXPECT_EQ(a.zeta, b.zeta);
  EXPECT_EQ(a.omega_n, b.omega_n);
}

void expect_matches_fresh_analysis(const engine::TimingEngine& eng) {
  const eed::TreeModel fresh = eed::analyze(eng.tree());
  const eed::TreeModel cached = eng.model();
  ASSERT_EQ(fresh.nodes.size(), cached.nodes.size());
  for (std::size_t i = 0; i < fresh.nodes.size(); ++i) {
    expect_node_eq(cached.nodes[i], fresh.nodes[i]);
    EXPECT_EQ(cached.load_capacitance[i], fresh.load_capacitance[i]);
  }
}

TEST(TimingEngine, FreshEngineMatchesAnalyzeBitwise) {
  const engine::TimingEngine eng(circuit::make_fig8_tree());
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, EmptyTreeThrows) {
  EXPECT_THROW(engine::TimingEngine{circuit::RlcTree{}}, std::invalid_argument);
}

TEST(TimingEngine, SingleEditMatchesFreshAnalyze) {
  SectionId out = circuit::kInput;
  engine::TimingEngine eng(circuit::make_fig8_tree(&out));
  SectionValues v = eng.tree().section(out).v;
  v.capacitance *= 3.0;
  v.resistance *= 0.5;
  eng.set_section_values(out, v);
  expect_matches_fresh_analysis(eng);
  const eed::TreeModel fresh = eed::analyze(eng.tree());
  EXPECT_EQ(eng.delay_50(out), eed::delay_50(fresh.at(out)));
}

TEST(TimingEngine, PointQueryMatchesWholeTreeModel) {
  engine::TimingEngine eng(circuit::make_balanced_tree(5, 2, {25.0, 2e-9, 0.2e-12}));
  const SectionId sink = eng.tree().leaves().back();
  SectionValues v = eng.tree().section(0).v;
  v.inductance *= 2.0;
  eng.set_section_values(0, v);
  const eed::NodeModel via_query = eng.node(sink);
  const eed::NodeModel via_model = eng.model().at(sink);
  expect_node_eq(via_query, via_model);
}

TEST(TimingEngine, EditCostIsPathNotTree) {
  const int n = 64;
  engine::TimingEngine eng(circuit::make_line(n, {10.0, 1e-9, 0.1e-12}));
  eng.reset_counters();

  // A capacitance edit at depth d touches exactly the d-section root path.
  const SectionId mid = 9;  // depth 10 in a line
  SectionValues v = eng.tree().section(mid).v;
  v.capacitance *= 1.5;
  eng.set_section_values(mid, v);
  EXPECT_EQ(eng.counters().incremental_edits, 1u);
  EXPECT_EQ(eng.counters().edit_nodes_touched, 10u);
  EXPECT_EQ(eng.counters().full_recomputes, 0u);

  // An R/L-only edit leaves every subtree capacitance alone: O(1).
  v.capacitance = eng.tree().section(mid).v.capacitance;
  v.resistance *= 2.0;
  eng.set_section_values(mid, v);
  EXPECT_EQ(eng.counters().incremental_edits, 2u);
  EXPECT_EQ(eng.counters().edit_nodes_touched, 11u);
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, QueryWalksOnlyStalePrefixes) {
  const int n = 32;
  engine::TimingEngine eng(circuit::make_line(n, {10.0, 1e-9, 0.1e-12}));
  const SectionId sink = static_cast<SectionId>(n - 1);
  SectionValues v = eng.tree().section(sink).v;
  v.capacitance *= 2.0;
  eng.set_section_values(sink, v);
  eng.reset_counters();

  (void)eng.node(sink);  // refreshes the whole root path
  EXPECT_EQ(eng.counters().query_nodes_walked, static_cast<std::uint64_t>(n));
  (void)eng.node(sink);  // now fresh: no walking
  EXPECT_EQ(eng.counters().query_nodes_walked, static_cast<std::uint64_t>(n));
  EXPECT_EQ(eng.counters().queries, 2u);
}

TEST(TimingEngine, DenseBatchFallsBackToFullRecompute) {
  engine::TimingEngine eng(circuit::make_balanced_tree(4, 2, {25.0, 2e-9, 0.2e-12}));
  eng.reset_counters();
  std::vector<engine::Edit> edits(eng.size());
  for (std::size_t i = 0; i < eng.size(); ++i) {
    edits[i].id = static_cast<SectionId>(i);
    edits[i].v = eng.tree().section(edits[i].id).v;
    edits[i].v.capacitance *= 1.1;
  }
  eng.apply_edits(edits);
  EXPECT_EQ(eng.counters().full_recomputes, 1u);
  EXPECT_EQ(eng.counters().incremental_edits, 0u);
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, SparseBatchStaysIncremental) {
  engine::TimingEngine eng(circuit::make_balanced_tree(5, 2, {25.0, 2e-9, 0.2e-12}));
  eng.reset_counters();
  std::vector<engine::Edit> edits(2);
  edits[0].id = 0;
  edits[0].v = eng.tree().section(0).v;
  edits[0].v.resistance *= 2.0;
  edits[1].id = 1;
  edits[1].v = eng.tree().section(1).v;
  edits[1].v.capacitance *= 2.0;
  eng.apply_edits(edits);
  EXPECT_EQ(eng.counters().full_recomputes, 0u);
  EXPECT_EQ(eng.counters().incremental_edits, 2u);
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, GraftAppendsSubtreeAndMatches) {
  engine::TimingEngine eng(circuit::make_line(4, {10.0, 1e-9, 0.1e-12}));
  const std::size_t before = eng.size();
  const circuit::RlcTree sub = circuit::make_balanced_tree(3, 2, {5.0, 0.5e-9, 0.05e-12});
  const std::vector<SectionId> ids = eng.graft(2, sub);
  ASSERT_EQ(ids.size(), sub.size());
  EXPECT_EQ(eng.size(), before + sub.size());
  for (std::size_t s = 0; s < sub.size(); ++s) {
    EXPECT_EQ(eng.tree().section(ids[s]).v.capacitance,
              sub.section(static_cast<SectionId>(s)).v.capacitance);
  }
  // The grafted root's parent is the attachment point.
  EXPECT_EQ(eng.tree().section(ids[0]).parent, 2);
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, GraftAtInputAddsNewRoot) {
  engine::TimingEngine eng(circuit::make_line(3, {10.0, 1e-9, 0.1e-12}));
  const std::vector<SectionId> ids =
      eng.graft(circuit::kInput, circuit::make_line(2, {5.0, 0.5e-9, 0.05e-12}));
  EXPECT_EQ(eng.tree().section(ids[0]).parent, circuit::kInput);
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, PruneDetachesSubtreeElectrically) {
  // Balanced binary tree: prune one level-2 child; the survivors must match
  // a fresh analysis of the tombstoned tree, and the pruned node's load no
  // longer reaches the root.
  engine::TimingEngine eng(circuit::make_balanced_tree(4, 2, {25.0, 2e-9, 0.2e-12}));
  const double load_before = eng.load_capacitance(0);
  const SectionId victim = eng.tree().children(0).front();
  eng.prune(victim);
  EXPECT_FALSE(eng.alive(victim));
  EXPECT_TRUE(eng.alive(0));
  for (const SectionId c : eng.tree().children(victim)) EXPECT_FALSE(eng.alive(c));
  EXPECT_LT(eng.load_capacitance(0), load_before);
  EXPECT_THROW((void)eng.node(victim), std::invalid_argument);
  EXPECT_THROW(eng.set_section_values(victim, SectionValues{}), std::invalid_argument);
  expect_matches_fresh_analysis(eng);
}

TEST(TimingEngine, OutOfRangeIdsThrow) {
  engine::TimingEngine eng(circuit::make_line(3, {10.0, 1e-9, 0.1e-12}));
  EXPECT_THROW((void)eng.node(-1), std::out_of_range);
  EXPECT_THROW((void)eng.node(3), std::out_of_range);
  EXPECT_THROW((void)eng.alive(99), std::out_of_range);
  EXPECT_THROW(eng.set_section_values(7, SectionValues{}), std::out_of_range);
}

TEST(TimingEngine, NegativeValuesThrow) {
  engine::TimingEngine eng(circuit::make_line(3, {10.0, 1e-9, 0.1e-12}));
  EXPECT_THROW(eng.set_section_values(0, SectionValues{-1.0, 0.0, 0.0}),
               std::invalid_argument);
  std::vector<engine::Edit> edits(1);
  edits[0].id = 0;
  edits[0].v = SectionValues{1.0, 0.0, -1e-15};
  EXPECT_THROW(eng.apply_edits(edits), std::invalid_argument);
}

TEST(TimingEngine, LoadCapacitanceMatchesAnalyze) {
  const circuit::RlcTree tree = circuit::make_balanced_tree(4, 3, {25.0, 2e-9, 0.2e-12});
  const engine::TimingEngine eng(tree);
  const eed::TreeModel fresh = eed::analyze(tree);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(eng.load_capacitance(static_cast<SectionId>(i)), fresh.load_capacitance[i]);
  }
}

TEST(TimingEngine, RcTreeQueriesStayPureRc) {
  engine::TimingEngine eng(circuit::make_line(5, {10.0, 0.0, 0.1e-12}));
  const eed::NodeModel nm = eng.node(4);
  EXPECT_TRUE(std::isinf(nm.zeta));
  EXPECT_TRUE(std::isinf(nm.omega_n));
  EXPECT_GT(nm.sum_rc, 0.0);
  EXPECT_EQ(nm.sum_lc, 0.0);
}

}  // namespace
