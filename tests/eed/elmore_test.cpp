#include "relmore/eed/elmore.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/model.hpp"

namespace relmore::eed {
namespace {

TEST(Elmore, TimeConstantsMatchModelSums) {
  const circuit::RlcTree t = circuit::make_fig8_tree(nullptr);
  const auto tau = elmore_time_constants(t);
  const TreeModel m = analyze(t);
  ASSERT_EQ(tau.size(), t.size());
  for (std::size_t i = 0; i < tau.size(); ++i) {
    EXPECT_DOUBLE_EQ(tau[i], m.nodes[i].sum_rc);
  }
}

TEST(Elmore, RubinsteinPenfieldTwoSectionLine) {
  // Classic hand calculation: R1=R2=R, C1=C2=C.
  // tau(node1) = R(C1+C2) = 2RC; tau(node2) = R*2C + R*C = 3RC.
  circuit::RlcTree t = circuit::make_line(2, {100.0, 0.0, 1e-12});
  const auto tau = elmore_time_constants(t);
  EXPECT_NEAR(tau[0], 2.0 * 100.0 * 1e-12, 1e-24);
  EXPECT_NEAR(tau[1], 3.0 * 100.0 * 1e-12, 1e-24);
}

TEST(Elmore, IgnoresInductance) {
  // The RC baselines must be invariant under inductance scaling — that is
  // exactly the blind spot the paper fixes.
  circuit::RlcTree t = circuit::make_fig5_tree({25.0, 1e-9, 0.2e-12}, nullptr);
  const auto tau1 = elmore_time_constants(t);
  circuit::scale_inductances(t, 100.0);
  const auto tau2 = elmore_time_constants(t);
  for (std::size_t i = 0; i < tau1.size(); ++i) EXPECT_DOUBLE_EQ(tau1[i], tau2[i]);
}

TEST(Elmore, DelayFormulas) {
  const double tau = 2e-10;
  EXPECT_DOUBLE_EQ(elmore_delay_50(tau), tau);
  EXPECT_NEAR(wyatt_delay_50(tau), 0.693 * tau, 1e-3 * tau);
  EXPECT_NEAR(wyatt_rise_time(tau), 2.197 * tau, 1e-3 * tau);
}

TEST(Elmore, WyattStepResponse) {
  const double tau = 1e-9;
  EXPECT_DOUBLE_EQ(wyatt_step_response(tau, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(wyatt_step_response(tau, -1.0), 0.0);
  EXPECT_NEAR(wyatt_step_response(tau, tau, 2.0), 2.0 * (1.0 - std::exp(-1.0)), 1e-12);
  // 50% crossing at ln2 tau by construction.
  EXPECT_NEAR(wyatt_step_response(tau, wyatt_delay_50(tau)), 0.5, 1e-12);
}

}  // namespace
}  // namespace relmore::eed
