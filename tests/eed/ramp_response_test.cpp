#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "relmore/eed/response.hpp"
#include "relmore/eed/second_order.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::eed {
namespace {

NodeModel node_with(double zeta, double omega_n) {
  NodeModel n;
  n.zeta = zeta;
  n.omega_n = omega_n;
  n.sum_rc = 2.0 * zeta / omega_n;
  n.sum_lc = 1.0 / (omega_n * omega_n);
  return n;
}

TEST(RampResponse, ZeroRiseIsStep) {
  const NodeModel n = node_with(0.5, 1e9);
  for (double t : {0.5e-9, 2e-9}) {
    EXPECT_DOUBLE_EQ(ramp_input_response(n, t, 1.0, 0.0), step_response(n, t, 1.0));
  }
}

TEST(RampResponse, StartsAtZero) {
  const NodeModel n = node_with(0.5, 1e9);
  EXPECT_DOUBLE_EQ(ramp_input_response(n, 0.0, 1.0, 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(ramp_input_response(n, -1e-9, 1.0, 1e-9), 0.0);
}

TEST(RampResponse, SettlesAtSupply) {
  for (double zeta : {0.4, 1.0, 2.0}) {
    const NodeModel n = node_with(zeta, 1e9);
    EXPECT_NEAR(ramp_input_response(n, 300e-9, 1.8, 1e-9), 1.8, 1e-5) << zeta;
  }
}

TEST(RampResponse, MatchesOdeIntegration) {
  const double rise = 0.8e-9;
  for (double zeta : {0.4, 1.0, 1.8}) {
    const NodeModel n = node_with(zeta, 2e9);
    const auto grid = sim::uniform_grid(6e-9, 61);
    const sim::Waveform closed = ramp_input_waveform(n, grid, 1.0, rise);
    const sim::Waveform ode =
        arbitrary_input_waveform(n, sim::RampSource{1.0, rise}, grid);
    EXPECT_LT(closed.max_abs_difference(ode), 1e-7) << "zeta=" << zeta;
  }
}

TEST(RampResponse, RcLimitMatchesOde) {
  NodeModel rc;
  rc.sum_rc = 0.5e-9;
  rc.sum_lc = 0.0;
  rc.zeta = std::numeric_limits<double>::infinity();
  rc.omega_n = std::numeric_limits<double>::infinity();
  const double rise = 1e-9;
  const auto grid = sim::uniform_grid(6e-9, 61);
  const sim::Waveform closed = ramp_input_waveform(rc, grid, 1.0, rise);
  const sim::Waveform ode = arbitrary_input_waveform(rc, sim::RampSource{1.0, rise}, grid);
  EXPECT_LT(closed.max_abs_difference(ode), 1e-7);
}

TEST(RampResponse, SlowerRampReducesOvershoot) {
  // Same physics the paper notes for exponential inputs (§V-A): slower
  // edges excite less of the resonance.
  const NodeModel n = node_with(0.3, 1e9);
  const auto grid = sim::uniform_grid(60e-9, 2001);
  const double fast_peak = ramp_input_waveform(n, grid, 1.0, 0.1e-9).max_value();
  const double slow_peak = ramp_input_waveform(n, grid, 1.0, 20e-9).max_value();
  EXPECT_GT(fast_peak, 1.2);
  EXPECT_LT(slow_peak, fast_peak);
  EXPECT_LT(slow_peak, 1.1);
}

TEST(RampResponse, LinearRegionTracksRampWithLag) {
  // Well into a long ramp, the output follows the input delayed by the
  // first moment (sum RC) — a classic interconnect rule of thumb.
  const NodeModel n = node_with(1.5, 5e9);
  const double rise = 100e-9;  // much slower than 1/omega_n
  const double slope = 1.0 / rise;
  const double t = 50e-9;
  const double expected = slope * (t - n.sum_rc);
  EXPECT_NEAR(ramp_input_response(n, t, 1.0, rise), expected, 1e-4);
}

}  // namespace
}  // namespace relmore::eed
