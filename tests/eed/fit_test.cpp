#include "relmore/eed/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace relmore::eed {
namespace {

TEST(Fit, DelayRefitCloseToPaperCoefficients) {
  // Re-deriving the paper's eq. (33) fit from scratch should land near the
  // published constants (1.047, 0.85, 1.39) — they fitted the same curve.
  const ScaledFitReport rep = fit_scaled_delay();
  EXPECT_NEAR(rep.coeffs.a, 1.047, 0.08);
  EXPECT_NEAR(rep.coeffs.b, 0.85, 0.12);
  EXPECT_NEAR(rep.coeffs.c, 1.39, 0.06);
  EXPECT_LT(rep.rms_residual, 0.03);
}

TEST(Fit, RiseRefitMatchesStoredCoefficients) {
  // The constants shipped in rise_fit_refit() are the output of this very
  // fit; this test pins them so drift is caught.
  const ScaledFitReport rep = fit_scaled_rise();
  const FitCoefficients stored = rise_fit_refit();
  EXPECT_NEAR(rep.coeffs.a, stored.a, 0.02);
  EXPECT_NEAR(rep.coeffs.b, stored.b, 0.02);
  EXPECT_NEAR(rep.coeffs.c, stored.c, 0.02);
  EXPECT_NEAR(rep.coeffs.p, stored.p, 0.02);
  EXPECT_NEAR(rep.coeffs.d, stored.d, 0.02);
  EXPECT_LT(rep.rms_residual, 0.08);
  // The anchored offset makes the fit exact in the pure-LC limit.
  EXPECT_NEAR(rep.coeffs(0.0), scaled_rise_exact(0.0), 1e-9);
}

TEST(Fit, ResidualsSmallRelativeToMetric) {
  const ScaledFitReport d = fit_scaled_delay();
  // Scaled delay spans ~[1, 5] on zeta in [0,3]; fit is a few percent.
  EXPECT_LT(d.max_abs_residual, 0.12);
}

TEST(Fit, RespectsCustomRange) {
  // Fitting only the overdamped tail should push the linear slope toward
  // the asymptotic 2 ln2 = 1.386.
  const ScaledFitReport rep = fit_scaled_delay(1.5, 4.0, 61);
  EXPECT_NEAR(rep.coeffs.c, 2.0 * std::log(2.0), 0.05);
}

TEST(Fit, RejectsBadParameters) {
  EXPECT_THROW((void)fit_scaled_delay(1.0, 0.5, 50), std::invalid_argument);
  EXPECT_THROW((void)fit_scaled_delay(0.0, 3.0, 2), std::invalid_argument);
  EXPECT_THROW((void)fit_scaled_rise(-1.0, 3.0, 50), std::invalid_argument);
}

TEST(Fit, PaperDelayCoefficientsAnchorChecks) {
  // The published coefficients encode two physical anchors.
  const FitCoefficients paper = delay_fit_paper();
  EXPECT_NEAR(paper(0.0), M_PI / 3.0, 0.01);               // pure LC delay
  const double big = 5.0;
  EXPECT_NEAR(paper(big) / big, 2.0 * std::log(2.0), 0.02);  // RC slope
}

}  // namespace
}  // namespace relmore::eed
