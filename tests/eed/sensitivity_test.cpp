#include "relmore/eed/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/eed.hpp"

namespace relmore::eed {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

/// Central finite difference of the fitted delay w.r.t. one element.
double fd_delay(RlcTree tree, SectionId node, SectionId k, int element, double h_rel) {
  auto& v = tree.values(k);
  double* field = element == 0 ? &v.resistance : element == 1 ? &v.inductance
                                                              : &v.capacitance;
  const double nominal = *field;
  const double h = h_rel * (nominal > 0.0 ? nominal : 1e-15);
  *field = nominal + h;
  const double up = delay_50(analyze(tree).at(node));
  *field = nominal - h;
  const double dn = delay_50(analyze(tree).at(node));
  *field = nominal;
  return (up - dn) / (2.0 * h);
}

TEST(Sensitivity, FittedDerivativeMatchesFiniteDifference) {
  for (double zeta : {0.3, 0.8, 1.5, 3.0}) {
    const double h = 1e-6;
    const double fd = (scaled_delay_fitted(zeta + h) - scaled_delay_fitted(zeta - h)) /
                      (2.0 * h);
    EXPECT_NEAR(scaled_delay_fitted_derivative(zeta), fd, 1e-6) << "zeta=" << zeta;
  }
}

TEST(Sensitivity, GradientMatchesFiniteDifferenceOnFig8) {
  SectionId out = circuit::kInput;
  const RlcTree tree = circuit::make_fig8_tree(&out);
  const SensitivityReport rep = delay_sensitivity(tree, out);
  ASSERT_EQ(rep.sections.size(), tree.size());
  for (std::size_t k = 0; k < tree.size(); ++k) {
    const auto id = static_cast<SectionId>(k);
    const double fr = fd_delay(tree, out, id, 0, 1e-5);
    const double fl = fd_delay(tree, out, id, 1, 1e-5);
    const double fc = fd_delay(tree, out, id, 2, 1e-5);
    const auto& s = rep.sections[k];
    const double scale = std::abs(rep.delay);
    EXPECT_NEAR(s.d_resistance * 1.0, fr, 1e-4 * scale / 1.0 + std::abs(fr) * 1e-4)
        << "R, section " << k;
    EXPECT_NEAR(s.d_inductance, fl, std::abs(fl) * 1e-3 + 1e-9 * scale) << "L, section " << k;
    EXPECT_NEAR(s.d_capacitance, fc, std::abs(fc) * 1e-3 + 1e-9 * scale) << "C, section " << k;
  }
}

TEST(Sensitivity, OffPathResistanceHasZeroSensitivity) {
  // R and L of sections off the observation path do not enter SR/SL.
  RlcTree t;
  const SectionId root = t.add_section(circuit::kInput, 10.0, 1e-9, 0.1e-12);
  const SectionId obs = t.add_section(root, 20.0, 2e-9, 0.2e-12, "obs");
  const SectionId side = t.add_section(root, 30.0, 3e-9, 0.3e-12, "side");
  const SensitivityReport rep = delay_sensitivity(t, obs);
  EXPECT_DOUBLE_EQ(rep.sections[static_cast<std::size_t>(side)].d_resistance, 0.0);
  EXPECT_DOUBLE_EQ(rep.sections[static_cast<std::size_t>(side)].d_inductance, 0.0);
  // But its capacitance loads the shared root: nonzero C sensitivity.
  EXPECT_GT(rep.sections[static_cast<std::size_t>(side)].d_capacitance, 0.0);
}

TEST(Sensitivity, SiblingSubtreeCapacitanceUsesSharedPrefixOnly) {
  // The common resistance for a sibling's capacitor is the shared prefix:
  // here only the root section.
  RlcTree t;
  const SectionId root = t.add_section(circuit::kInput, 10.0, 1e-9, 0.1e-12);
  const SectionId obs = t.add_section(root, 20.0, 2e-9, 0.2e-12);
  const SectionId side = t.add_section(root, 30.0, 3e-9, 0.3e-12);
  const SectionId side_leaf = t.add_section(side, 40.0, 4e-9, 0.4e-12);
  const SensitivityReport rep = delay_sensitivity(t, obs);
  // dSR/dC for side and side_leaf both equal R(root) = 10; the deeper
  // sibling node adds nothing because the paths diverge at the root.
  const double d_dsr_ratio = rep.sections[static_cast<std::size_t>(side_leaf)].d_capacitance /
                             rep.sections[static_cast<std::size_t>(side)].d_capacitance;
  EXPECT_NEAR(d_dsr_ratio, 1.0, 1e-12);
}

TEST(Sensitivity, RcLimitUsesWyattSlope) {
  RlcTree t = circuit::make_line(3, {100.0, 0.0, 1e-12});
  const SensitivityReport rep = delay_sensitivity(t, 2);
  // D = ln2 * SR; dD/dR_0 = ln2 * (total downstream C of section 0).
  EXPECT_NEAR(rep.sections[0].d_resistance, std::log(2.0) * 3e-12, 1e-18);
  EXPECT_DOUBLE_EQ(rep.sections[0].d_inductance, 0.0);
}

TEST(Sensitivity, WideningDownstreamCapacitanceAlwaysHurts) {
  // dD/dC_k >= 0 for every k: adding load capacitance anywhere never
  // speeds up a node (for physical damping levels).
  SectionId out = circuit::kInput;
  const RlcTree tree = circuit::make_fig8_tree(&out);
  const SensitivityReport rep = delay_sensitivity(tree, out);
  for (std::size_t k = 0; k < tree.size(); ++k) {
    EXPECT_GE(rep.sections[k].d_capacitance, 0.0) << "section " << k;
  }
}

/// Property sweep: gradient matches finite differences on random trees.
class SensitivityFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SensitivityFuzz, MatchesFiniteDifference) {
  circuit::RandomTreeSpec spec;
  spec.min_sections = 4;
  spec.max_sections = 14;
  spec.inductance_lo = 0.2e-9;
  const RlcTree tree = circuit::make_random_tree(spec, GetParam());
  const SectionId sink = tree.leaves().back();
  const SensitivityReport rep = delay_sensitivity(tree, sink);
  // Check a few sections: the sink itself, the root, and a mid section.
  for (const SectionId k :
       {static_cast<SectionId>(0), sink, static_cast<SectionId>(tree.size() / 2)}) {
    for (int elem = 0; elem < 3; ++elem) {
      const double fd = fd_delay(tree, sink, k, elem, 1e-5);
      const double an = elem == 0 ? rep.sections[static_cast<std::size_t>(k)].d_resistance
                        : elem == 1 ? rep.sections[static_cast<std::size_t>(k)].d_inductance
                                    : rep.sections[static_cast<std::size_t>(k)].d_capacitance;
      EXPECT_NEAR(an, fd, std::abs(fd) * 1e-3 + 1e-6 * std::abs(rep.delay))
          << "seed " << GetParam() << " section " << k << " elem " << elem;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Eed, SensitivityFuzz, ::testing::Values(2u, 4u, 6u, 8u, 10u));

}  // namespace
}  // namespace relmore::eed
