#include "relmore/eed/frequency.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/sim/state_space.hpp"

namespace relmore::eed {
namespace {

NodeModel node_with(double zeta, double omega_n) {
  NodeModel n;
  n.zeta = zeta;
  n.omega_n = omega_n;
  n.sum_rc = 2.0 * zeta / omega_n;
  n.sum_lc = 1.0 / (omega_n * omega_n);
  return n;
}

TEST(Frequency, DcGainIsUnity) {
  const NodeModel n = node_with(0.6, 1e10);
  EXPECT_NEAR(std::abs(transfer_function(n, 0.0)), 1.0, 1e-15);
  EXPECT_NEAR(magnitude_db(n, 1.0), 0.0, 1e-6);
  EXPECT_NEAR(phase_deg(n, 0.0), 0.0, 1e-12);
}

TEST(Frequency, MinusNinetyDegreesAtOmegaN) {
  // At w = wn the real part of the denominator vanishes: phase = -90 deg.
  const NodeModel n = node_with(0.4, 2e9);
  EXPECT_NEAR(phase_deg(n, n.omega_n), -90.0, 1e-9);
}

TEST(Frequency, HighFrequencyRollsOffMinus40dBPerDecade) {
  const NodeModel n = node_with(0.7, 1e9);
  const double m1 = magnitude_db(n, 100.0 * n.omega_n);
  const double m2 = magnitude_db(n, 1000.0 * n.omega_n);
  EXPECT_NEAR(m2 - m1, -40.0, 0.1);
}

TEST(Frequency, ResonantPeakFormulas) {
  const NodeModel n = node_with(0.3, 5e9);
  ASSERT_TRUE(has_resonant_peak(n));
  const double wr = peak_frequency(n);
  EXPECT_NEAR(wr, 5e9 * std::sqrt(1.0 - 2.0 * 0.09), 1.0);
  const double mr = peak_magnitude(n);
  EXPECT_NEAR(std::abs(transfer_function(n, wr)), mr, 1e-9);
  // The peak really is the maximum: neighbors are lower.
  EXPECT_GT(mr, std::abs(transfer_function(n, wr * 0.9)));
  EXPECT_GT(mr, std::abs(transfer_function(n, wr * 1.1)));
}

TEST(Frequency, NoPeakAboveCriticalZeta) {
  const NodeModel n = node_with(0.8, 1e9);
  EXPECT_FALSE(has_resonant_peak(n));
  EXPECT_THROW((void)peak_frequency(n), std::invalid_argument);
  EXPECT_THROW((void)peak_magnitude(n), std::invalid_argument);
}

TEST(Frequency, BandwidthIsMinus3dBPoint) {
  for (double zeta : {0.3, 0.7, 1.5}) {
    const NodeModel n = node_with(zeta, 1e9);
    const double w3 = bandwidth_3db(n);
    EXPECT_NEAR(magnitude_db(n, w3), -3.0103, 1e-3) << "zeta=" << zeta;
  }
}

TEST(Frequency, RcLimitSinglePole) {
  NodeModel rc;
  rc.sum_rc = 1e-9;
  rc.sum_lc = 0.0;
  rc.zeta = std::numeric_limits<double>::infinity();
  rc.omega_n = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(bandwidth_3db(rc), 1e9, 1.0);
  EXPECT_NEAR(std::abs(transfer_function(rc, 1e9)), M_SQRT1_2, 1e-9);
  EXPECT_NEAR(phase_deg(rc, 1e9), -45.0, 1e-9);
  EXPECT_FALSE(has_resonant_peak(rc));
}

TEST(Frequency, BodeSweepIsLogSpacedAndMonotoneFrequencies) {
  const NodeModel n = node_with(0.5, 1e9);
  const auto pts = bode_sweep(n, 1e7, 1e11, 41);
  ASSERT_EQ(pts.size(), 41u);
  EXPECT_NEAR(pts.front().omega, 1e7, 1.0);
  EXPECT_NEAR(pts.back().omega, 1e11, 1e3);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].omega, pts[i - 1].omega);
    // Log spacing: constant ratio.
    if (i >= 2) {
      EXPECT_NEAR(pts[i].omega / pts[i - 1].omega, pts[1].omega / pts[0].omega, 1e-6);
    }
  }
}

TEST(Frequency, RejectsBadArguments) {
  const NodeModel n = node_with(0.5, 1e9);
  EXPECT_THROW((void)transfer_function(n, -1.0), std::invalid_argument);
  EXPECT_THROW(bode_sweep(n, 0.0, 1e9, 10), std::invalid_argument);
  EXPECT_THROW(bode_sweep(n, 1e9, 1e8, 10), std::invalid_argument);
  EXPECT_THROW(bode_sweep(n, 1e8, 1e9, 1), std::invalid_argument);
}

TEST(Frequency, MatchesExactTransferAtLowFrequency) {
  // Below the first resonance the 2nd-order model should track the exact
  // state-space transfer function of the full tree.
  const circuit::RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const auto model = analyze(t);
  const auto& nm = model.at(6);
  const sim::ModalSolver exact(t);
  for (double frac : {0.05, 0.1, 0.2}) {
    const double w = frac * nm.omega_n;
    const auto h_model = transfer_function(nm, w);
    const auto h_exact = exact.transfer(6, w);
    EXPECT_NEAR(std::abs(h_model - h_exact), 0.0, 0.02) << "w=" << w;
  }
}

TEST(Frequency, ExactTransferDcGainUnity) {
  const circuit::RlcTree t = circuit::make_fig8_tree(nullptr);
  const sim::ModalSolver exact(t);
  const auto h0 = exact.transfer(t.find_by_name("O"), 0.0);
  EXPECT_NEAR(h0.real(), 1.0, 1e-9);
  EXPECT_NEAR(h0.imag(), 0.0, 1e-9);
}

}  // namespace
}  // namespace relmore::eed
