#include "relmore/eed/second_order.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace relmore::eed {
namespace {

TEST(ScaledResponse, StartsAtZeroEndsAtOne) {
  for (double zeta : {0.0, 0.2, 0.7, 1.0, 1.5, 3.0}) {
    EXPECT_DOUBLE_EQ(scaled_step_response(zeta, 0.0), 0.0) << zeta;
    EXPECT_DOUBLE_EQ(scaled_step_response(zeta, -1.0), 0.0) << zeta;
    const double late = zeta >= 1.0 ? 400.0 * zeta : 200.0 / std::max(zeta, 0.05);
    if (zeta > 0.0) {
      EXPECT_NEAR(scaled_step_response(zeta, late), 1.0, 1e-6) << zeta;
    }
  }
}

TEST(ScaledResponse, PureLcOscillates) {
  // zeta = 0: v = 1 - cos(t').
  for (double tp : {0.3, 1.0, 2.0, M_PI}) {
    EXPECT_NEAR(scaled_step_response(0.0, tp), 1.0 - std::cos(tp), 1e-12);
  }
  // Peak value 2 at t' = pi.
  EXPECT_NEAR(scaled_step_response(0.0, M_PI), 2.0, 1e-12);
}

TEST(ScaledResponse, ContinuousAcrossCriticalDamping) {
  for (double tp : {0.5, 1.0, 2.0, 5.0}) {
    const double below = scaled_step_response(1.0 - 1e-6, tp);
    const double at = scaled_step_response(1.0, tp);
    const double above = scaled_step_response(1.0 + 1e-6, tp);
    EXPECT_NEAR(below, at, 1e-5) << "t'=" << tp;
    EXPECT_NEAR(above, at, 1e-5) << "t'=" << tp;
  }
}

TEST(ScaledResponse, OverdampedMonotone) {
  double prev = -1.0;
  for (double tp = 0.0; tp < 50.0; tp += 0.25) {
    const double v = scaled_step_response(2.0, tp);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(ScaledResponse, LargeArgumentOverflowGuard) {
  // Very overdamped, very late: must not overflow to NaN/inf.
  const double v = scaled_step_response(50.0, 5000.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(ScaledResponse, RejectsNegativeZeta) {
  EXPECT_THROW(scaled_step_response(-0.1, 1.0), std::invalid_argument);
}

TEST(ScaledDerivative, MatchesFiniteDifference) {
  for (double zeta : {0.3, 1.0, 2.5}) {
    for (double tp : {0.4, 1.3, 3.0}) {
      const double h = 1e-6;
      const double fd =
          (scaled_step_response(zeta, tp + h) - scaled_step_response(zeta, tp - h)) / (2 * h);
      EXPECT_NEAR(scaled_step_derivative(zeta, tp), fd, 1e-6) << zeta << " " << tp;
    }
  }
}

TEST(ScaledDelay, PureLcIsPiOverThree) {
  // 1 - cos(t') = 0.5 at t' = pi/3 — the paper's 1.047 anchor.
  EXPECT_NEAR(scaled_delay_exact(0.0), M_PI / 3.0, 1e-10);
}

TEST(ScaledDelay, RcLimitApproachesWyatt) {
  // Large zeta: dominant pole at -1/(2 zeta) (scaled), so t'_50 -> 2 zeta ln2.
  const double zeta = 20.0;
  EXPECT_NEAR(scaled_delay_exact(zeta), 2.0 * zeta * std::log(2.0), 0.02 * zeta);
}

TEST(ScaledRise, PureLcAnchor) {
  // 1 - cos(t'): t10 = acos(0.9), t90 = acos(0.1).
  EXPECT_NEAR(scaled_rise_exact(0.0), std::acos(0.1) - std::acos(0.9), 1e-10);
}

TEST(ScaledDelay, PaperFitAccurateWithinTwoPercentPlusOffset) {
  // Paper Fig. 6: the fit tracks the exact curve closely over [0, 3].
  for (double zeta = 0.0; zeta <= 3.0; zeta += 0.1) {
    const double exact = scaled_delay_exact(zeta);
    const double fit = scaled_delay_fitted(zeta);
    EXPECT_NEAR(fit, exact, 0.04 + 0.03 * exact) << "zeta=" << zeta;
  }
}

TEST(ScaledRise, RefitAccurate) {
  for (double zeta = 0.0; zeta <= 3.0; zeta += 0.1) {
    const double exact = scaled_rise_exact(zeta);
    const double fit = scaled_rise_fitted(zeta);
    EXPECT_NEAR(fit, exact, 0.08 + 0.05 * exact) << "zeta=" << zeta;
  }
}

TEST(ScaledRise, DominantPoleTailAccurate) {
  // Beyond the fitted domain the dominant-pole form takes over and tracks
  // the exact curve to a fraction of a percent.
  for (double zeta : {3.5, 5.0, 10.0, 20.0}) {
    const double exact = scaled_rise_exact(zeta);
    EXPECT_NEAR(scaled_rise_fitted(zeta), exact, 0.01 * exact) << "zeta=" << zeta;
  }
  // Seam continuity at zeta = 3 within 1%.
  EXPECT_NEAR(scaled_rise_fitted(3.0 + 1e-9), scaled_rise_fitted(3.0),
              0.01 * scaled_rise_fitted(3.0));
}

TEST(ScaledCrossing, RejectsBadFraction) {
  EXPECT_THROW(scaled_crossing_exact(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(scaled_crossing_exact(1.0, 1.0), std::invalid_argument);
}

TEST(NodeMetrics, RcLimitReducesToWyatt) {
  NodeModel rc;
  rc.sum_rc = 1e-10;
  rc.sum_lc = 0.0;
  rc.zeta = std::numeric_limits<double>::infinity();
  rc.omega_n = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(delay_50(rc), std::log(2.0) * 1e-10, 1e-22);
  EXPECT_NEAR(delay_50_exact(rc), std::log(2.0) * 1e-10, 1e-22);
  EXPECT_NEAR(rise_time(rc), std::log(9.0) * 1e-10, 1e-22);
  EXPECT_NEAR(rise_time_exact(rc), std::log(9.0) * 1e-10, 1e-22);
}

TEST(NodeMetrics, PhysicalScalingByOmegaN) {
  NodeModel n;
  n.zeta = 0.6;
  n.omega_n = 2.0e9;
  n.sum_rc = 2.0 * n.zeta / n.omega_n;
  n.sum_lc = 1.0 / (n.omega_n * n.omega_n);
  EXPECT_NEAR(delay_50_exact(n), scaled_delay_exact(0.6) / 2.0e9, 1e-18);
  EXPECT_NEAR(rise_time_exact(n), scaled_rise_exact(0.6) / 2.0e9, 1e-18);
}

TEST(Overshoot, MatchesClassicFormula) {
  NodeModel n;
  n.zeta = 0.4;
  n.omega_n = 1.0e9;
  const double wd = std::sqrt(1.0 - 0.16);
  EXPECT_NEAR(overshoot_pct(n, 1), 100.0 * std::exp(-M_PI * 0.4 / wd), 1e-9);
  EXPECT_NEAR(overshoot_pct(n, 2), 100.0 * std::exp(-2.0 * M_PI * 0.4 / wd), 1e-9);
  EXPECT_NEAR(overshoot_time(n, 1), M_PI / (1.0e9 * wd), 1e-20);
}

TEST(Overshoot, FirstPeakMatchesResponseMaximum) {
  // The response evaluated at overshoot_time(1) equals 1 + overshoot.
  NodeModel n;
  n.zeta = 0.3;
  n.omega_n = 1.0;
  const double t1 = overshoot_time(n, 1);
  const double v = scaled_step_response(n.zeta, n.omega_n * t1);
  EXPECT_NEAR(v, 1.0 + overshoot_pct(n, 1) / 100.0, 1e-9);
}

TEST(Overshoot, RejectsInvalid) {
  NodeModel n;
  n.zeta = 1.2;
  n.omega_n = 1.0;
  EXPECT_THROW(overshoot_pct(n, 1), std::invalid_argument);
  n.zeta = 0.5;
  EXPECT_THROW(overshoot_pct(n, 0), std::invalid_argument);
  EXPECT_THROW(overshoot_time(n, -1), std::invalid_argument);
}

TEST(Settling, UnderdampedEnvelope) {
  NodeModel n;
  n.zeta = 0.5;
  n.omega_n = 1.0;
  const double ts = settling_time(n, 0.1);
  // After ts, every extremum is within 10%.
  const double wd = std::sqrt(1.0 - 0.25);
  const int n_first = static_cast<int>(std::round(ts * wd / M_PI));
  EXPECT_LE(overshoot_pct(n, n_first), 10.0 + 1e-9);
  if (n_first > 1) {
    EXPECT_GT(overshoot_pct(n, n_first - 1), 10.0);
  }
}

TEST(Settling, MonotoneCaseCrossesBand) {
  NodeModel n;
  n.zeta = 2.0;
  n.omega_n = 1.0;
  const double ts = settling_time(n, 0.1);
  EXPECT_NEAR(scaled_step_response(2.0, ts), 0.9, 1e-9);
}

TEST(Settling, UndampedNeverSettles) {
  NodeModel n;
  n.zeta = 0.0;
  n.omega_n = 1.0;
  EXPECT_TRUE(std::isinf(settling_time(n, 0.1)));
}

TEST(Settling, RejectsBadBand) {
  NodeModel n;
  n.zeta = 0.5;
  n.omega_n = 1.0;
  EXPECT_THROW(settling_time(n, 0.0), std::invalid_argument);
  EXPECT_THROW(settling_time(n, 1.0), std::invalid_argument);
}

// Property sweep: the exact scaled metrics interpolate between the LC and
// RC anchors and are monotone in zeta.
class MetricMonotoneSweep : public ::testing::TestWithParam<double> {};

TEST_P(MetricMonotoneSweep, DelayIncreasesWithZeta) {
  const double z = GetParam();
  EXPECT_GT(scaled_delay_exact(z + 0.1), scaled_delay_exact(z));
  EXPECT_GT(scaled_rise_exact(z + 0.1), scaled_rise_exact(z));
}

INSTANTIATE_TEST_SUITE_P(SecondOrder, MetricMonotoneSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95, 1.05, 1.5, 2.0, 2.5));

}  // namespace
}  // namespace relmore::eed
