#include <gtest/gtest.h>

#include <cmath>

#include "relmore/eed/response.hpp"
#include "relmore/eed/second_order.hpp"

namespace relmore::eed {
namespace {

NodeModel node_with(double zeta, double omega_n = 1.0e9) {
  NodeModel n;
  n.zeta = zeta;
  n.omega_n = omega_n;
  n.sum_rc = 2.0 * zeta / omega_n;
  n.sum_lc = 1.0 / (omega_n * omega_n);
  return n;
}

/// Property sweep over the underdamped range: every closed-form signal
/// characterization statement of Section IV holds against the response
/// formula itself.
class UnderdampedProperties : public ::testing::TestWithParam<double> {};

TEST_P(UnderdampedProperties, ExtremaSitWhereEq40Says) {
  const double zeta = GetParam();
  const NodeModel n = node_with(zeta);
  for (int k = 1; k <= 4; ++k) {
    const double tk = overshoot_time(n, k);
    // The derivative of the step response vanishes at every extremum.
    EXPECT_NEAR(scaled_step_derivative(zeta, n.omega_n * tk), 0.0, 1e-9) << "k=" << k;
  }
}

TEST_P(UnderdampedProperties, OvershootsAlternateAndDecay) {
  const double zeta = GetParam();
  const NodeModel n = node_with(zeta);
  for (int k = 1; k <= 4; ++k) {
    const double excursion = overshoot_pct(n, k);
    EXPECT_GT(excursion, 0.0);
    if (k > 1) {
      EXPECT_LT(excursion, overshoot_pct(n, k - 1));
    }
    const double v = step_response(n, overshoot_time(n, k), 1.0);
    const double expected = 1.0 + (k % 2 == 1 ? 1.0 : -1.0) * excursion / 100.0;
    EXPECT_NEAR(v, expected, 1e-9) << "k=" << k;
  }
}

TEST_P(UnderdampedProperties, AfterSettlingAllExtremaInsideBand) {
  const double zeta = GetParam();
  const NodeModel n = node_with(zeta);
  const double band = 0.1;
  const double ts = settling_time(n, band);
  // Check the next several extrema after ts.
  for (int k = 1; k <= 30; ++k) {
    const double tk = overshoot_time(n, k);
    if (tk < ts - 1e-18) continue;
    const double v = step_response(n, tk, 1.0);
    EXPECT_LE(std::abs(v - 1.0), band + 1e-9) << "k=" << k;
  }
}

TEST_P(UnderdampedProperties, DelayBeforeFirstPeakAndRiseOrdering) {
  const double zeta = GetParam();
  const NodeModel n = node_with(zeta);
  const double d = delay_50_exact(n);
  const double t1 = overshoot_time(n, 1);
  EXPECT_LT(d, t1);
  EXPECT_LT(rise_time_exact(n), t1);  // 90% crossed before the peak
  EXPECT_LT(d, settling_time(n));
}

TEST_P(UnderdampedProperties, FrequencyAndTimeOvershootConsistent) {
  // The first overshoot (eq. 39) and the resonance peak both grow as zeta
  // falls; check the monotone link on neighbors.
  const double zeta = GetParam();
  const NodeModel lo = node_with(zeta);
  const NodeModel hi = node_with(std::min(zeta + 0.1, 0.99));
  EXPECT_GT(overshoot_pct(lo, 1), overshoot_pct(hi, 1) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SecondOrder, UnderdampedProperties,
                         ::testing::Values(0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.85));

/// Sweep across all damping regimes: ordering and consistency of the
/// closed-form metrics.
class AllDampingProperties : public ::testing::TestWithParam<double> {};

TEST_P(AllDampingProperties, CrossingsOrdered) {
  const double zeta = GetParam();
  const double t10 = scaled_crossing_exact(zeta, 0.1);
  const double t50 = scaled_crossing_exact(zeta, 0.5);
  const double t90 = scaled_crossing_exact(zeta, 0.9);
  EXPECT_LT(t10, t50);
  EXPECT_LT(t50, t90);
  EXPECT_NEAR(t90 - t10, scaled_rise_exact(zeta), 1e-10);
  EXPECT_NEAR(t50, scaled_delay_exact(zeta), 1e-10);
}

TEST_P(AllDampingProperties, ResponseAtCrossingsMatchesLevels) {
  const double zeta = GetParam();
  for (double frac : {0.1, 0.5, 0.9}) {
    const double t = scaled_crossing_exact(zeta, frac);
    EXPECT_NEAR(scaled_step_response(zeta, t), frac, 1e-9);
  }
}

TEST_P(AllDampingProperties, PhysicalAndScaledConsistent) {
  const double zeta = GetParam();
  const NodeModel n = node_with(zeta, 3.7e9);
  EXPECT_NEAR(delay_50_exact(n) * n.omega_n, scaled_delay_exact(zeta), 1e-9);
  EXPECT_NEAR(rise_time_exact(n) * n.omega_n, scaled_rise_exact(zeta), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SecondOrder, AllDampingProperties,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0, 1.3, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace relmore::eed
