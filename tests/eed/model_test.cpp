#include "relmore/eed/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"

namespace relmore::eed {
namespace {

using circuit::RlcTree;
using circuit::SectionId;

TEST(Model, SingleSectionMatchesPaperEq14And15) {
  // Paper eqs. 14-15: for a single RLC section, zeta = (R/2) sqrt(C/L),
  // omega_n = 1/sqrt(LC).
  RlcTree t;
  const double r = 30.0;
  const double l = 4e-9;
  const double c = 0.25e-12;
  t.add_section(circuit::kInput, r, l, c);
  const TreeModel m = analyze(t);
  EXPECT_NEAR(m.at(0).zeta, r / 2.0 * std::sqrt(c / l), 1e-12);
  EXPECT_NEAR(m.at(0).omega_n, 1.0 / std::sqrt(l * c), 1.0);
  EXPECT_NEAR(m.at(0).sum_rc, r * c, 1e-24);
  EXPECT_NEAR(m.at(0).sum_lc, l * c, 1e-33);
}

TEST(Model, SumRcMatchesBruteForceElmore) {
  // Brute force: SR_i = sum over caps k of C_k * (common path resistance).
  SectionId out = circuit::kInput;
  const RlcTree t = circuit::make_fig8_tree(&out);
  const TreeModel m = analyze(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    const auto path_i = t.path_from_input(id);
    double sr = 0.0;
    double sl = 0.0;
    for (std::size_t k = 0; k < t.size(); ++k) {
      const auto path_k = t.path_from_input(static_cast<SectionId>(k));
      double r_common = 0.0;
      double l_common = 0.0;
      for (std::size_t d = 0; d < std::min(path_i.size(), path_k.size()); ++d) {
        if (path_i[d] != path_k[d]) break;
        r_common += t.section(path_i[d]).v.resistance;
        l_common += t.section(path_i[d]).v.inductance;
      }
      sr += t.section(static_cast<SectionId>(k)).v.capacitance * r_common;
      sl += t.section(static_cast<SectionId>(k)).v.capacitance * l_common;
    }
    EXPECT_NEAR(m.at(id).sum_rc, sr, 1e-12 * sr) << "node " << i;
    EXPECT_NEAR(m.at(id).sum_lc, sl, 1e-12 * sl) << "node " << i;
  }
}

TEST(Model, LoadCapacitanceIsSubtreeSum) {
  const RlcTree t = circuit::make_fig5_tree({25.0, 2e-9, 0.2e-12}, nullptr);
  const TreeModel m = analyze(t);
  // Root sees all 7 capacitors.
  EXPECT_NEAR(m.load_capacitance[0], 7.0 * 0.2e-12, 1e-25);
  // A leaf sees only its own.
  EXPECT_NEAR(m.load_capacitance[6], 0.2e-12, 1e-25);
  // Level-2 section sees itself + 2 leaves.
  EXPECT_NEAR(m.load_capacitance[1], 3.0 * 0.2e-12, 1e-25);
}

TEST(Model, PureRcNodeDegeneratesToElmore) {
  RlcTree t;
  t.add_section(circuit::kInput, 100.0, 0.0, 1e-12);
  const TreeModel m = analyze(t);
  EXPECT_FALSE(std::isfinite(m.at(0).zeta));
  EXPECT_FALSE(std::isfinite(m.at(0).omega_n));
  EXPECT_NEAR(m.at(0).sum_rc, 100.0 * 1e-12, 1e-24);
  EXPECT_FALSE(m.at(0).underdamped());
}

TEST(Model, ZetaDecreasesWithInductance) {
  // Paper: "as the inductance increases, zeta decreases".
  RlcTree t1 = circuit::make_fig5_tree({25.0, 1e-9, 0.2e-12}, nullptr);
  RlcTree t2 = circuit::make_fig5_tree({25.0, 4e-9, 0.2e-12}, nullptr);
  EXPECT_GT(analyze(t1).at(6).zeta, analyze(t2).at(6).zeta);
}

TEST(Model, ZetaScalesAsInverseSqrtL) {
  RlcTree t = circuit::make_fig5_tree({25.0, 1e-9, 0.2e-12}, nullptr);
  const double z1 = analyze(t).at(6).zeta;
  circuit::scale_inductances(t, 4.0);
  const double z2 = analyze(t).at(6).zeta;
  EXPECT_NEAR(z2, z1 / 2.0, 1e-12);
}

TEST(Model, MultiplicationCountIsTwoPerSection) {
  // The Appendix claims 2N multiplications for the summations.
  for (int levels : {2, 3, 4, 5}) {
    const RlcTree t = circuit::make_balanced_tree(levels, 2, {10.0, 1e-9, 0.1e-12});
    const AnalyzeStats stats = analyze_counting(t).stats;
    EXPECT_EQ(stats.multiplications, 2u * t.size()) << "levels=" << levels;
    EXPECT_EQ(stats.nodes, t.size()) << "levels=" << levels;
  }
}

TEST(Model, RejectsEmptyTree) {
  EXPECT_THROW(analyze(RlcTree{}), std::invalid_argument);
}

TEST(Model, DownstreamNodesHaveLargerSums) {
  // SR and SL accumulate along any root-to-leaf path.
  const RlcTree t = circuit::make_line(5, {10.0, 1e-9, 0.1e-12});
  const TreeModel m = analyze(t);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(m.nodes[i].sum_rc, m.nodes[i - 1].sum_rc);
    EXPECT_GT(m.nodes[i].sum_lc, m.nodes[i - 1].sum_lc);
  }
}

// Property sweep: on balanced trees every sink has the same (zeta, omega_n).
class BalancedSinkSweep : public ::testing::TestWithParam<int> {};

TEST_P(BalancedSinkSweep, SinksIdentical) {
  const RlcTree t = circuit::make_balanced_tree(4, GetParam(), {20.0, 1.5e-9, 0.15e-12});
  const TreeModel m = analyze(t);
  const auto sinks = t.leaves();
  const NodeModel& ref = m.at(sinks.front());
  for (const SectionId s : sinks) {
    EXPECT_NEAR(m.at(s).zeta, ref.zeta, 1e-12);
    EXPECT_NEAR(m.at(s).omega_n, ref.omega_n, ref.omega_n * 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Model, BalancedSinkSweep, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace relmore::eed
