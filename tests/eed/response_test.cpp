#include "relmore/eed/response.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "relmore/eed/second_order.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::eed {
namespace {

NodeModel underdamped_node() {
  NodeModel n;
  n.zeta = 0.5;
  n.omega_n = 1.0e9;
  n.sum_rc = 2.0 * n.zeta / n.omega_n;
  n.sum_lc = 1.0 / (n.omega_n * n.omega_n);
  return n;
}

NodeModel overdamped_node() {
  NodeModel n;
  n.zeta = 1.8;
  n.omega_n = 1.0e9;
  n.sum_rc = 2.0 * n.zeta / n.omega_n;
  n.sum_lc = 1.0 / (n.omega_n * n.omega_n);
  return n;
}

NodeModel rc_node() {
  NodeModel n;
  n.sum_rc = 1e-9;
  n.sum_lc = 0.0;
  n.zeta = std::numeric_limits<double>::infinity();
  n.omega_n = std::numeric_limits<double>::infinity();
  return n;
}

TEST(StepResponse, MatchesScaledForm) {
  const NodeModel n = underdamped_node();
  for (double t : {0.2e-9, 1.0e-9, 3.0e-9}) {
    EXPECT_NEAR(step_response(n, t, 2.0),
                2.0 * scaled_step_response(n.zeta, n.omega_n * t), 1e-12);
  }
  EXPECT_DOUBLE_EQ(step_response(n, -1e-9, 2.0), 0.0);
}

TEST(StepResponse, RcLimitIsExponential) {
  const NodeModel n = rc_node();
  EXPECT_NEAR(step_response(n, 1e-9, 1.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(ExpInput, ReducesTowardStepForTinyTau) {
  const NodeModel n = underdamped_node();
  for (double t : {0.5e-9, 1.5e-9, 4.0e-9}) {
    EXPECT_NEAR(exp_input_response(n, t, 1.0, 1e-15), step_response(n, t, 1.0), 1e-4);
  }
}

TEST(ExpInput, StartsAtZeroSettlesAtSupply) {
  for (const NodeModel& n : {underdamped_node(), overdamped_node()}) {
    EXPECT_NEAR(exp_input_response(n, 0.0, 1.8, 0.5e-9), 0.0, 1e-12);
    EXPECT_NEAR(exp_input_response(n, 200.0e-9, 1.8, 0.5e-9), 1.8, 1e-6);
  }
}

TEST(ExpInput, MatchesOdeIntegration) {
  // Cross-check closed form (eq. 44) against RK45 on the same model.
  const double tau = 0.7e-9;
  for (const NodeModel& n : {underdamped_node(), overdamped_node()}) {
    const auto grid = sim::uniform_grid(8.0e-9, 81);
    const sim::Waveform closed = exp_input_waveform(n, grid, 1.0, tau);
    const sim::Waveform ode =
        arbitrary_input_waveform(n, sim::ExpSource{1.0, tau}, grid);
    EXPECT_LT(closed.max_abs_difference(ode), 1e-7);
  }
}

TEST(ExpInput, RcLimitTwoTimeConstants) {
  const NodeModel n = rc_node();
  const double tau = 0.4e-9;
  const double T = n.sum_rc;
  const double t = 1.3e-9;
  const double expected =
      1.0 - (T * std::exp(-t / T) - tau * std::exp(-t / tau)) / (T - tau);
  EXPECT_NEAR(exp_input_response(n, t, 1.0, tau), expected, 1e-12);
}

TEST(ExpInput, RcLimitEqualTimeConstants) {
  const NodeModel n = rc_node();
  const double t = 2.0e-9;
  const double T = n.sum_rc;
  const double expected = 1.0 - std::exp(-t / T) * (1.0 + t / T);
  EXPECT_NEAR(exp_input_response(n, t, 1.0, T), expected, 1e-9);
}

TEST(ExpInput, SurvivesPoleCollision) {
  // tau = 1/(zeta omega_n) can collide with a real pole; the guard must
  // keep the result finite and close to neighboring tau values.
  const NodeModel n = overdamped_node();
  auto [p1_zeta] = std::tuple{n.zeta - std::sqrt(n.zeta * n.zeta - 1.0)};
  const double pole_mag = n.omega_n * p1_zeta;
  const double tau = 1.0 / pole_mag;
  const double v = exp_input_response(n, 2.0e-9, 1.0, tau);
  EXPECT_TRUE(std::isfinite(v));
  const double v_near = exp_input_response(n, 2.0e-9, 1.0, tau * 1.001);
  EXPECT_NEAR(v, v_near, 5e-3);
}

TEST(ExpInput, RejectsBadTau) {
  EXPECT_THROW((void)exp_input_response(underdamped_node(), 1e-9, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ArbitraryInput, StepMatchesClosedForm) {
  const NodeModel n = underdamped_node();
  const auto grid = sim::uniform_grid(8.0e-9, 81);
  const sim::Waveform ode = arbitrary_input_waveform(n, sim::StepSource{1.0}, grid);
  const sim::Waveform closed = step_waveform(n, grid, 1.0);
  EXPECT_LT(ode.max_abs_difference(closed), 1e-6);
}

TEST(ArbitraryInput, RcNodeRampFollowsInput) {
  // A slow ramp through a fast RC: output tracks input minus T*slope lag.
  const NodeModel n = rc_node();
  const double rise = 50.0e-9;  // much slower than T = 1 ns
  const auto grid = sim::uniform_grid(rise, 51);
  const sim::Waveform w =
      arbitrary_input_waveform(n, sim::RampSource{1.0, rise}, grid);
  const double slope = 1.0 / rise;
  const double mid = w.value_at(25.0e-9);
  EXPECT_NEAR(mid, slope * (25.0e-9 - n.sum_rc), 1e-3);
}

TEST(ArbitraryInput, RejectsEmptyAndDecreasingTimes) {
  const NodeModel n = underdamped_node();
  EXPECT_THROW(arbitrary_input_waveform(n, sim::StepSource{1.0}, {}),
               std::invalid_argument);
  EXPECT_THROW(arbitrary_input_waveform(n, sim::StepSource{1.0}, {1e-9, 0.5e-9}),
               std::invalid_argument);
}

TEST(Waveforms, SampleConsistently) {
  const NodeModel n = underdamped_node();
  const auto grid = sim::uniform_grid(5e-9, 11);
  const sim::Waveform w = step_waveform(n, grid, 1.5);
  ASSERT_EQ(w.size(), 11u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(w.values()[i], step_response(n, grid[i], 1.5));
  }
}

}  // namespace
}  // namespace relmore::eed
