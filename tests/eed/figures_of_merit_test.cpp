#include "relmore/eed/figures_of_merit.hpp"

#include "relmore/eed/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relmore/circuit/builders.hpp"

namespace relmore::eed {
namespace {

TEST(FiguresOfMerit, FastEdgeLowResistanceMatters) {
  // 1 mm global wire, 10 ps edge: squarely in the inductance window
  // (time of flight 2*sqrt(LC) ~ 17 ps exceeds the edge).
  const auto fom = assess_wire(circuit::global_wire_spec(), 10e-12);
  EXPECT_LT(fom.edge_ratio, 1.0);
  EXPECT_LT(fom.damping_ratio, 1.0);
  EXPECT_TRUE(fom.inductance_matters);
}

TEST(FiguresOfMerit, SlowEdgeDoesNotMatter) {
  const auto fom = assess_wire(circuit::global_wire_spec(), 5e-9);
  EXPECT_GT(fom.edge_ratio, 1.0);
  EXPECT_FALSE(fom.inductance_matters);
}

TEST(FiguresOfMerit, ResistiveLocalWireDoesNotMatter) {
  // Thin local wire: damped regardless of edge rate.
  const auto fom = assess_wire(circuit::local_wire_spec(), 20e-12);
  EXPECT_GT(fom.damping_ratio, 1.0);
  EXPECT_FALSE(fom.inductance_matters);
}

TEST(FiguresOfMerit, DampingRatioIsSinglePiZeta) {
  // (R/2) sqrt(C/L) equals the single-section zeta of the lumped line.
  const double r = 30.0;
  const double l = 2e-9;
  const double c = 0.4e-12;
  const auto fom = assess_line(r, l, c, 10e-12);
  EXPECT_NEAR(fom.damping_ratio, r / 2.0 * std::sqrt(c / l), 1e-15);
}

TEST(FiguresOfMerit, RejectsBadInputs) {
  EXPECT_THROW(assess_line(1.0, 0.0, 1e-12, 1e-12), std::invalid_argument);
  EXPECT_THROW(assess_line(1.0, 1e-9, 0.0, 1e-12), std::invalid_argument);
  EXPECT_THROW(assess_line(-1.0, 1e-9, 1e-12, 1e-12), std::invalid_argument);
  EXPECT_THROW(assess_line(1.0, 1e-9, 1e-12, -1.0), std::invalid_argument);
  circuit::WireSpec zero = circuit::global_wire_spec();
  zero.length_m = 0.0;
  EXPECT_THROW(assess_wire(zero, 1e-12), std::invalid_argument);
  EXPECT_THROW(assess_tree(circuit::RlcTree{}, 1e-12), std::invalid_argument);
}

TEST(FiguresOfMerit, TreeScreenUsesWorstSink) {
  const circuit::RlcTree t = circuit::make_fig5_tree({5.0, 2e-9, 0.2e-12}, nullptr);
  const auto fast = assess_tree(t, 5e-12);
  EXPECT_TRUE(fast.inductance_matters);
  const auto slow = assess_tree(t, 10e-9);
  EXPECT_FALSE(slow.inductance_matters);
}

TEST(FiguresOfMerit, RcTreeNeverMatters) {
  const circuit::RlcTree rc = circuit::make_balanced_tree(3, 2, {100.0, 0.0, 0.1e-12});
  const auto fom = assess_tree(rc, 1e-15);
  EXPECT_FALSE(fom.inductance_matters);
  EXPECT_TRUE(std::isinf(fom.damping_ratio));
}

TEST(FiguresOfMerit, ScreenAgreesWithDampingOfEedModel) {
  // When the screen says "matters", the EED model should indeed be
  // underdamped at the worst sink, and vice versa for heavy damping.
  circuit::RlcTree lively = circuit::make_fig5_tree({5.0, 4e-9, 0.2e-12}, nullptr);
  EXPECT_TRUE(assess_tree(lively, 1e-12).inductance_matters);
  const auto model = analyze(lively);
  EXPECT_TRUE(model.at(6).underdamped());

  circuit::RlcTree damped = circuit::make_fig5_tree({200.0, 0.1e-9, 0.2e-12}, nullptr);
  EXPECT_FALSE(assess_tree(damped, 1e-12).inductance_matters);
  EXPECT_FALSE(analyze(damped).at(6).underdamped());
}

}  // namespace
}  // namespace relmore::eed
