#!/usr/bin/env python3
"""relmore-lint: repo-specific static checks for the relmore contracts.

The repo promises three things no general-purpose tool checks for us:

  R1  Every `Status`/`Result<T>` an API hands back is consumed. The PR 6
      `_checked` convention makes error handling explicit *only* if call
      sites actually look at the result; a statement-level call that drops
      it is a silent-wrong-answer bug at corpus scale. The rule also bans
      call sites of `[[deprecated]]` positional overloads: the compiler
      merely warns, the lint fails.

  R2  The AoSoA lane loops stay bitwise-reproducible. `-ffp-contract=off`
      and fixed association order are the contract; any order-dependent or
      contraction-sensitive construct (`std::reduce`, `std::fma`,
      `#pragma omp simd reduction` over FP, per-function fast-math
      attributes) inside a lane file silently breaks it on the next
      compiler upgrade.

  R3  The per-step / per-lane hot loops do not allocate, lock, or throw.
      Regions are delimited in-source:

          // relmore-lint: begin-hot-loop(<name>)
          ...
          // relmore-lint: end-hot-loop

      and the kernel files are *required* to carry at least one region, so
      deleting the markers is itself a violation.

Suppression policy (see docs/static-analysis.md): a finding is silenced
only by an on-line annotation naming the rule, e.g.

    some_call();  // relmore-lint: allow(R1) reason...

Usage:
    relmore_lint.py [--repo-root DIR] [--compile-commands FILE]
                    [--rules R1,R2,R3] [paths...]

With no paths, lints every TU listed in compile_commands.json that lives
under src/, bench/, or examples/ (plus all headers under src/); without a
compile_commands.json it falls back to walking those directories. Exits 0
when clean, 1 on violations, 2 on usage errors. Python 3 stdlib only — no
libclang in the loop, so it runs anywhere the repo builds.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Configuration: the repo-specific scope of each rule.
# --------------------------------------------------------------------------

# Directories (relative to the repo root) whose code rule R1 covers.
R1_DIRS = ("src", "bench", "examples")

# Files whose lane loops carry the bitwise-reproducibility contract (R2).
# Matched as suffixes of the repo-relative path.
LANE_FILE_PATTERNS = (
    "src/engine/batched.cpp",
    "src/sim/",  # every sim TU: flat_stepper, batch_sim, tree_transient, ...
    "src/sta/design.cpp",
)

# Kernel files that must contain at least one hot-loop region (R3 meta rule).
REQUIRED_MARKER_FILES = (
    "src/engine/batched.cpp",
    "src/sim/flat_stepper.cpp",
    "src/sim/batch_sim.cpp",
)

# Functions whose return value is a Status/Result by *convention*, indexed
# even when the declaration is not visible to the signature scan.
CONVENTION_RESULT_SUFFIXES = ("_checked",)

# Identifiers banned inside a hot-loop region, by category (R3).
HOT_LOOP_BANNED = {
    "allocation": {
        "new", "delete", "malloc", "calloc", "realloc", "free",
        "push_back", "emplace_back", "emplace", "resize", "reserve",
        "shrink_to_fit", "make_unique", "make_shared", "string", "to_string",
    },
    "locking": {
        "mutex", "lock", "unlock", "try_lock", "lock_guard", "unique_lock",
        "scoped_lock", "shared_lock", "condition_variable", "call_once",
    },
    "throwing": {"throw"},
}

# Order-dependent / contraction-sensitive constructs banned in lane files
# (R2). Matched against stripped code text.
R2_BANNED_CALLS = (
    "std::reduce", "std::transform_reduce", "std::inner_product",
    "std::fma", "fmaf", "__builtin_fma",
)
R2_BANNED_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+omp\s.*\breduction\s*\(|"      # omp FP reductions
    r'_Pragma\s*\(\s*"omp[^"]*\breduction\b|'      # same, operator form
    r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON|"       # re-enabling contraction
    r"#\s*pragma\s+GCC\s+optimize|"                # per-function fast-math
    r"__attribute__\s*\(\s*\(\s*optimize"
)

DIRECTIVE_RE = re.compile(r"//\s*relmore-lint:\s*(.+?)\s*$")

# --------------------------------------------------------------------------
# Lexing helpers
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving offsets.

    Every replaced character becomes a space (newlines survive), so byte
    offsets and line numbers in the stripped text match the original.
    Handles //, /* */, "..." with escapes, '...' and raw strings R"delim(...)delim".
    """
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(i, j)
            i = j
        elif c == '"':
            # Raw string?
            m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i - 1 : i + 18]) if i >= 1 else None
            if i >= 1 and text[i - 1] == "R" and m:
                delim = m.group(1)
                close = ')' + delim + '"'
                j = text.find(close, i + 1)
                j = n if j < 0 else j + len(close)
                blank(i, j)
                i = j
            else:
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
                blank(i, j)
                i = j
        elif c == "'":
            # Skip digit separators (1'000'000): a quote sandwiched in digits.
            if i > 0 and text[i - 1].isalnum() and i + 1 < n and text[i + 1].isalnum() and (
                text[i - 1].isdigit() or text[i - 1] in "abcdefABCDEF"
            ):
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(i, j)
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def match_paren(text: str, open_idx: int) -> int:
    """Index just past the `)` matching text[open_idx] == '('; -1 if unbalanced."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def prev_significant(text: str, idx: int) -> tuple[str, int]:
    """Last non-whitespace char before idx (and its index); ('', -1) at BOF."""
    i = idx - 1
    while i >= 0 and text[i] in " \t\n\r":
        i -= 1
    return (text[i], i) if i >= 0 else ("", -1)


def next_significant(text: str, idx: int) -> tuple[str, int]:
    i = idx
    n = len(text)
    while i < n and text[i] in " \t\n\r":
        i += 1
    return (text[i], i) if i < n else ("", -1)


def _match_group_back(text: str, close_idx: int) -> int:
    """Offset of the opener matching the `)`/`]` at close_idx; -1 if none."""
    close = text[close_idx]
    opener = "(" if close == ")" else "["
    depth = 0
    k = close_idx
    while k >= 0:
        if text[k] == close:
            depth += 1
        elif text[k] == opener:
            depth -= 1
            if depth == 0:
                return k
        k -= 1
    return -1


def _consume_ident_back(text: str, end_idx: int) -> int:
    """Start offset of the identifier whose last char is at end_idx."""
    k = end_idx
    while k >= 0 and (text[k].isalnum() or text[k] == "_"):
        k -= 1
    return k + 1


def walk_back_callee_chain(text: str, name_start: int) -> int:
    """Start offset of the full postfix expression ending at the callee name.

    Walks left over member/scope connectors (`::`, `.`, `->`) and the
    postfix expressions they join — identifiers and matched `()`/`[]`
    groups with their callee names — so `graph.value().analyze_checked`
    resolves to the offset of `graph`. An identifier NOT joined by a
    connector (e.g. the return type in a declaration, or the `return`
    keyword) stops the walk: the chain must not leak across expression
    boundaries.
    """
    i = name_start
    while True:
        c, j = prev_significant(text, i)
        if c == ":" and j > 0 and text[j - 1] == ":":
            before = j - 2
        elif c == ".":
            before = j - 1
        elif c == ">" and j > 0 and text[j - 1] == "-":
            before = j - 2
        else:
            return i
        # Consume the postfix expression that ends just before the connector:
        # trailing groups first (`foo(...)`, `arr[...]`), then the head name.
        k = before + 1
        while True:
            c2, j2 = prev_significant(text, k)
            if c2 in ")]":
                g = _match_group_back(text, j2)
                if g < 0:
                    return i
                k = g
                c3, j3 = prev_significant(text, k)
                if c3 and (c3.isalnum() or c3 == "_"):
                    k = _consume_ident_back(text, j3)
                i = k
                break
            if c2 and (c2.isalnum() or c2 == "_"):
                i = _consume_ident_back(text, j2)
                break
            return i


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str           # as given (for reporting)
    rel: str            # repo-relative, '/'-separated
    text: str           # raw
    stripped: str       # comments/strings blanked
    directives: dict[int, list[str]] = field(default_factory=dict)  # line -> directives

    def allows(self, line: int, rule: str) -> bool:
        for d in self.directives.get(line, []):
            m = re.match(r"allow\(([\w,\s]+)\)", d)
            if m and rule in {r.strip() for r in m.group(1).split(",")}:
                return True
        return False

    def has_directive(self, directive: str) -> bool:
        return any(d.startswith(directive) for ds in self.directives.values() for d in ds)


def load_source(path: str, repo_root: str) -> SourceFile:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    rel = os.path.relpath(os.path.abspath(path), repo_root).replace(os.sep, "/")
    sf = SourceFile(path=path, rel=rel, text=text, stripped=strip_comments_and_strings(text))
    for lineno, line in enumerate(text.splitlines(), 1):
        m = DIRECTIVE_RE.search(line)
        if m:
            sf.directives.setdefault(lineno, []).append(m.group(1))
    return sf


# --------------------------------------------------------------------------
# Signature index (drives R1)
# --------------------------------------------------------------------------

RESULT_DECL_RE = re.compile(
    r"\b(?:util\s*::\s*)?(?:Result\s*<[^;{}()]{1,200}?>|Status)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)?"          # optional class qualifier (defs)
    r"([A-Za-z_]\w*)\s*\("
)

DEPRECATED_RE = re.compile(r"\[\[\s*deprecated\b")


@dataclass
class DeprecatedOverload:
    name: str
    min_arity: int
    max_arity: int
    decl_rel: str
    decl_line: int


@dataclass
class SignatureIndex:
    result_returning: set[str] = field(default_factory=set)
    deprecated: list[DeprecatedOverload] = field(default_factory=list)
    # Arity ranges of the *non*-deprecated overloads sharing a deprecated name.
    fresh_arities: dict[str, set[int]] = field(default_factory=dict)


def count_params(params: str) -> tuple[int, int]:
    """(min_arity, max_arity) of a parameter-list string (no outer parens)."""
    if not params.strip():
        return (0, 0)
    depth_round = depth_angle = depth_brace = 0
    parts, cur = [], []
    for ch in params:
        if ch == "(":
            depth_round += 1
        elif ch == ")":
            depth_round -= 1
        elif ch == "<":
            depth_angle += 1
        elif ch == ">":
            depth_angle = max(0, depth_angle - 1)
        elif ch == "{":
            depth_brace += 1
        elif ch == "}":
            depth_brace -= 1
        elif ch == "," and depth_round == depth_angle == depth_brace == 0:
            parts.append("".join(cur))
            cur = []
            continue
        cur.append(ch)
    parts.append("".join(cur))
    max_arity = len(parts)
    defaulted = sum(1 for p in parts if "=" in p)
    return (max_arity - defaulted, max_arity)


def index_signatures(files: list[SourceFile]) -> SignatureIndex:
    idx = SignatureIndex()
    for sf in files:
        s = sf.stripped
        for m in RESULT_DECL_RE.finditer(s):
            idx.result_returning.add(m.group(1))
        # Deprecated declarations: attribute, then the next function name + params.
        for m in DEPRECATED_RE.finditer(s):
            # The attribute may carry a (blanked) message: skip to the closing ]].
            close = s.find("]]", m.start())
            if close < 0:
                continue
            tail = s[close + 2 : close + 600]
            dm = re.search(r"([A-Za-z_]\w*)\s*\(", tail)
            if not dm:
                continue
            name = dm.group(1)
            open_idx = close + 2 + dm.end() - 1
            end = match_paren(s, open_idx)
            if end < 0:
                continue
            lo, hi = count_params(s[open_idx + 1 : end - 1])
            idx.deprecated.append(
                DeprecatedOverload(name, lo, hi, sf.rel, line_of(s, m.start()))
            )
        # Arity ranges of non-deprecated overloads of those names come in a
        # second pass below (needs the deprecated set complete first).
    dep_names = {d.name for d in idx.deprecated}
    if dep_names:
        dep_spans: dict[str, list[tuple[int, int]]] = {}
        for d in idx.deprecated:
            dep_spans.setdefault(d.name, [])
        for sf in files:
            s = sf.stripped
            for name in dep_names:
                for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", s):
                    # A declaration (not a call): preceded by an identifier or
                    # `>` (return type) and followed, after the param list, by
                    # `;` or `{` — heuristic, only used to learn arities.
                    c, j = prev_significant(s, m.start())
                    if not (c and (c.isalnum() or c in "_>&")):
                        continue
                    end = match_paren(s, s.index("(", m.start()))
                    if end < 0:
                        continue
                    nxt, _ = next_significant(s, end)
                    if nxt not in ";{" :
                        continue
                    # Deprecated or not? Look back a bit for the attribute.
                    back = s[max(0, m.start() - 400) : m.start()]
                    if DEPRECATED_RE.search(back):
                        continue
                    lo, hi = count_params(s[s.index("(", m.start()) + 1 : end - 1])
                    idx.fresh_arities.setdefault(name, set()).update(range(lo, hi + 1))
    return idx


# --------------------------------------------------------------------------
# R1: discarded results + deprecated call sites
# --------------------------------------------------------------------------


def is_result_name(name: str, idx: SignatureIndex) -> bool:
    if name in idx.result_returning:
        return True
    return any(name.endswith(sfx) for sfx in CONVENTION_RESULT_SUFFIXES)


def check_r1(sf: SourceFile, idx: SignatureIndex) -> list[Finding]:
    findings: list[Finding] = []
    if not sf.rel.startswith(R1_DIRS) and not sf.has_directive("fixture"):
        return findings
    s = sf.stripped
    for m in IDENT_RE.finditer(s):
        name = m.group(0)
        open_idx = m.end()
        nxt, open_at = next_significant(s, open_idx)
        if nxt != "(":
            continue
        interesting = is_result_name(name, idx)
        dep = [d for d in idx.deprecated if d.name == name]
        if not interesting and not dep:
            continue
        end = match_paren(s, open_at)
        if end < 0:
            continue
        line = line_of(s, m.start())

        # --- deprecated-overload call sites ------------------------------
        for d in dep:
            if sf.rel == d.decl_rel:
                continue  # the declaring header itself
            # Is this a declaration? (learned-arity pass used the same test)
            c, _ = prev_significant(s, walk_back_callee_chain(s, m.start()))
            lo, hi = count_params(s[open_at + 1 : end - 1])
            arity = hi  # at a call site every argument is present
            if not (d.min_arity <= arity <= d.max_arity):
                continue
            pc, _ = prev_significant(s, m.start())
            if pc and (pc.isalnum() or pc in "_>&*~"):
                continue  # part of a declaration/definition, not a call
            fresh = idx.fresh_arities.get(name, set())
            if arity in fresh:
                # Ambiguous arity: the fresh overload takes an options struct
                # at the first diverging position; a braced init or a
                # *Options name there means the call is fine.
                args = s[open_at + 1 : end - 1]
                if "{" in args or "Options" in sf.text[open_at + 1 : end - 1]:
                    continue
            if sf.allows(line, "R1"):
                continue
            findings.append(Finding(
                sf.path, line, "R1",
                f"call of [[deprecated]] overload '{name}' (arity {arity}); "
                f"use the options-struct or _checked form "
                f"(declared {d.decl_rel}:{d.decl_line})",
            ))
            break

        if not interesting:
            continue

        # --- discarded Status/Result -------------------------------------
        # The value is used if the call expression is consumed by anything
        # other than an expression statement.
        nxt2, _ = next_significant(s, end)
        if nxt2 in ".[-":  # member access / index / '->' chains use the value
            continue
        if nxt2 != ";":
            continue  # operand of something (return, =, comparison, arg, ...)
        chain_start = walk_back_callee_chain(s, m.start())
        c, j = prev_significant(s, chain_start)
        # NOTE: ':' is NOT statement context — it is almost always the arm
        # of a ternary (`ok() ? a : b.status()`); labels are rare enough
        # that the false-negative is acceptable.
        statement_start = c in {";", "{", "}", ")", ""}
        if c and (c.isalnum() or c == "_"):
            # Preceded by an identifier/keyword: `return foo(...)`,
            # `Status s = ...` never reaches here (that's '='), but
            # `co_return`/`co_await` or a declaration `Status foo(...);`
            # land here — all of those consume or declare, not discard.
            statement_start = False
            # ... unless the identifier is a statement-like keyword: `else`.
            k = j
            while k >= 0 and (s[k].isalnum() or s[k] == "_"):
                k -= 1
            word = s[k + 1 : j + 1]
            if word in {"else", "do"}:
                statement_start = True
        if not statement_start:
            continue
        if c == ")":
            # `if (...) foo_checked();` → still a discard; but a C-style
            # cast `(void)foo()` is also a discard by policy. Either way
            # it's a finding; fall through.
            pass
        if sf.allows(line, "R1"):
            continue
        findings.append(Finding(
            sf.path, line, "R1",
            f"result of '{name}' (Status/Result-returning) is discarded; "
            "consume the Status/Result or branch on is_ok()",
        ))
    return findings


# --------------------------------------------------------------------------
# R2: FP-contraction / order-dependence in lane files
# --------------------------------------------------------------------------


def is_lane_file(sf: SourceFile) -> bool:
    if sf.has_directive("lane-file"):
        return True
    return any(
        sf.rel == p or (p.endswith("/") and sf.rel.startswith(p))
        for p in LANE_FILE_PATTERNS
    )


def check_r2(sf: SourceFile) -> list[Finding]:
    if not is_lane_file(sf):
        return []
    findings: list[Finding] = []
    s = sf.stripped
    for pat in R2_BANNED_CALLS:
        for m in re.finditer(re.escape(pat) + r"\s*\(", s):
            line = line_of(s, m.start())
            if sf.allows(line, "R2"):
                continue
            findings.append(Finding(
                sf.path, line, "R2",
                f"'{pat}' in a lane file: unspecified evaluation order / FP "
                "contraction breaks the bitwise-reproducibility contract "
                "(-ffp-contract=off, fixed association order)",
            ))
    # Pragmas live outside strings/comments in real code, but the operator
    # form _Pragma("...") IS a string — scan the raw text for both.
    for m in R2_BANNED_PRAGMA_RE.finditer(sf.text):
        line = line_of(sf.text, m.start())
        if sf.allows(line, "R2"):
            continue
        # Ignore matches inside comments (raw-text scan).
        if sf.stripped[m.start()] == " " and "_Pragma" not in m.group(0) and "#" not in m.group(0):
            continue
        line_text = sf.text.splitlines()[line - 1].lstrip()
        if line_text.startswith("//") or line_text.startswith("*") or line_text.startswith("///"):
            continue
        findings.append(Finding(
            sf.path, line, "R2",
            "order-dependent FP reduction or contraction pragma in a lane "
            "file (omp reduction / FP_CONTRACT ON / per-function optimize)",
        ))
    return findings


# --------------------------------------------------------------------------
# R3: hot-loop regions
# --------------------------------------------------------------------------

BEGIN_RE = re.compile(r"begin-hot-loop\((\w[\w-]*)\)")
END_RE = re.compile(r"end-hot-loop")


def check_r3(sf: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    # Collect regions from directives.
    marks: list[tuple[int, str, str]] = []  # (line, kind, name)
    for line, ds in sorted(sf.directives.items()):
        for d in ds:
            bm = BEGIN_RE.match(d)
            if bm:
                marks.append((line, "begin", bm.group(1)))
            elif END_RE.match(d):
                marks.append((line, "end", ""))
    regions: list[tuple[int, int, str]] = []
    open_mark: tuple[int, str] | None = None
    for line, kind, name in marks:
        if kind == "begin":
            if open_mark is not None:
                findings.append(Finding(sf.path, line, "R3",
                                        "nested/unterminated begin-hot-loop"))
            open_mark = (line, name)
        else:
            if open_mark is None:
                findings.append(Finding(sf.path, line, "R3",
                                        "end-hot-loop without a begin"))
            else:
                regions.append((open_mark[0], line, open_mark[1]))
                open_mark = None
    if open_mark is not None:
        findings.append(Finding(sf.path, open_mark[0], "R3",
                                f"begin-hot-loop({open_mark[1]}) never closed"))

    required = any(sf.rel == p for p in REQUIRED_MARKER_FILES) or sf.has_directive(
        "require-markers"
    )
    if required and not regions:
        findings.append(Finding(
            sf.path, 1, "R3",
            "kernel file must delimit its per-step/per-lane hot loops with "
            "begin-hot-loop/end-hot-loop markers (none found)",
        ))
    if not regions:
        return findings

    lines = sf.stripped.splitlines()
    banned = {w: cat for cat, words in HOT_LOOP_BANNED.items() for w in words}
    for begin, end, name in regions:
        for lineno in range(begin + 1, end):
            text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
            for m in IDENT_RE.finditer(text):
                word = m.group(0)
                cat = banned.get(word)
                if cat is None:
                    continue
                if sf.allows(lineno, "R3"):
                    continue
                findings.append(Finding(
                    sf.path, lineno, "R3",
                    f"'{word}' ({cat}) inside hot-loop region '{name}' "
                    f"(lines {begin}-{end}): per-step/per-lane code must not "
                    "allocate, lock, or throw",
                ))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def discover_files(repo_root: str, compile_commands: str | None) -> list[str]:
    paths: set[str] = set()
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                p = entry.get("file", "")
                if not os.path.isabs(p):
                    p = os.path.join(entry.get("directory", ""), p)
                p = os.path.abspath(p)
                rel = os.path.relpath(p, repo_root)
                if rel.startswith(R1_DIRS) and os.path.isfile(p):
                    paths.add(p)
    else:
        for d in R1_DIRS:
            root = os.path.join(repo_root, d)
            for dirpath, _, names in os.walk(root):
                for nm in names:
                    if nm.endswith((".cpp", ".cc", ".cxx")):
                        paths.add(os.path.join(dirpath, nm))
    # Headers under src/ always join the scan (inline code carries the same
    # contracts; they also feed the signature index).
    for dirpath, _, names in os.walk(os.path.join(repo_root, "src")):
        for nm in names:
            if nm.endswith((".hpp", ".h")):
                paths.add(os.path.join(dirpath, nm))
    return sorted(paths)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files to lint (default: repo scan)")
    ap.add_argument("--repo-root", default=None)
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json to enumerate TUs (default: "
                         "<repo-root>/build/compile_commands.json when present)")
    ap.add_argument("--rules", default="R1,R2,R3",
                    help="comma-separated subset of rules to run")
    args = ap.parse_args(argv)

    repo_root = os.path.abspath(args.repo_root or find_repo_root())
    cc = args.compile_commands
    if cc is None:
        default_cc = os.path.join(repo_root, "build", "compile_commands.json")
        cc = default_cc if os.path.isfile(default_cc) else None

    rules = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
    bad_rules = rules - {"R1", "R2", "R3"}
    if bad_rules:
        print(f"relmore-lint: unknown rules {sorted(bad_rules)}", file=sys.stderr)
        return 2

    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
        missing = [p for p in files if not os.path.isfile(p)]
        if missing:
            for p in missing:
                print(f"relmore-lint: no such file: {p}", file=sys.stderr)
            return 2
    else:
        files = discover_files(repo_root, cc)
    sources = [load_source(p, repo_root) for p in files]

    # The signature index always sees the repo's headers, even when only a
    # fixture file was passed, so R1 knows the Result/Status names.
    index_inputs = list(sources)
    seen = {sf.path for sf in sources}
    for dirpath, _, names in os.walk(os.path.join(repo_root, "src")):
        for nm in names:
            if nm.endswith((".hpp", ".h", ".cpp")):
                p = os.path.join(dirpath, nm)
                if p not in seen:
                    index_inputs.append(load_source(p, repo_root))
    idx = index_signatures(index_inputs)

    findings: list[Finding] = []
    for sf in sources:
        if "R1" in rules:
            findings.extend(check_r1(sf, idx))
        if "R2" in rules:
            findings.extend(check_r2(sf))
        if "R3" in rules:
            findings.extend(check_r3(sf))

    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    n_files = len(sources)
    if findings:
        print(f"relmore-lint: {len(findings)} finding(s) in {n_files} file(s)",
              file=sys.stderr)
        return 1
    print(f"relmore-lint: clean ({n_files} file(s), rules {','.join(sorted(rules))})",
          file=sys.stderr)
    return 0


def find_repo_root() -> str:
    d = os.path.abspath(os.path.dirname(__file__))
    while d != os.path.dirname(d):
        if os.path.isdir(os.path.join(d, ".git")) or os.path.isfile(
            os.path.join(d, "ROADMAP.md")
        ):
            return d
        d = os.path.dirname(d)
    return os.getcwd()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
