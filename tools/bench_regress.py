#!/usr/bin/env python3
"""Compare a fresh bench JSON against a committed baseline and fail on
regressions.

Both files are arrays of rows as written by bench/json_out.hpp:

    {"bench": ..., "n": ..., "samples": ..., "ns_per_section": ..., "speedup": ...}

Rows are keyed by (bench, n, samples). The compared quantity is the
*speedup* column — each bench's ratio against its own same-run scalar
baseline — because absolute ns/section depends on the recording machine
while the ratio is what the kernels actually promise. A cell regresses
when

    current_speedup < baseline_speedup * (1 - threshold)

Only keys present in both files are compared (a `--quick` CI run covers
a subset of the committed full grid); pass --require-all to also fail on
baseline keys missing from the current run. --current accepts several
files: each cell takes its best speedup across them, so CI can gate on
best-of-N quick runs and a single noisy run (CI runners are shared
machines) cannot fail the build on its own. Exit codes: 0 clean, 1
regression (or missing keys under --require-all), 2 usage/IO error.

Stdlib only — runs anywhere CI has a python3.
"""

from __future__ import annotations

import argparse
import json
import sys


def parse_rows(data, path):
    """Returns {(bench, n, samples): speedup} from decoded bench JSON.

    Malformed rows raise ValueError naming the row and the field — a
    truncated or hand-edited baseline must fail with a usable message,
    not a KeyError traceback.
    """
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of bench rows")
    cells = {}
    for i, row in enumerate(data):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: row {i} is not an object")
        for field in ("bench", "n", "samples", "speedup"):
            if field not in row:
                raise ValueError(f"{path}: row {i} is missing field '{field}'")
        try:
            key = (row["bench"], int(row["n"]), int(row["samples"]))
            speedup = float(row["speedup"])
        except (TypeError, ValueError) as err:
            raise ValueError(f"{path}: row {i} has a non-numeric field: {err}") from None
        if key in cells:
            raise ValueError(f"{path}: duplicate row key {key}")
        cells[key] = speedup
    return cells


def load_rows(path):
    """Returns {(bench, n, samples): speedup} from a bench JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return parse_rows(data, path)


def merge_best(cell_maps):
    """Per-cell best speedup across several runs of the same bench."""
    merged = {}
    for cells in cell_maps:
        for key, speedup in cells.items():
            if key not in merged or speedup > merged[key]:
                merged[key] = speedup
    return merged


def compare(baseline, current, threshold, require_all=False):
    """Returns (regressions, missing): lists of human-readable cell reports.

    `regressions` lists cells whose current speedup fell more than
    `threshold` (fractional) below the baseline; `missing` lists baseline
    keys absent from the current run (fatal only under require_all);
    `extra` names current cells with no baseline (informational: the grid
    grew, or a bench was renamed — never a traceback, never fatal).
    """
    regressions = []
    missing = []
    extra = [
        f"{key[0]} @ n={key[1]} S={key[2]}" for key in sorted(current) if key not in baseline
    ]
    for key in sorted(baseline):
        if key not in current:
            missing.append(f"{key[0]} @ n={key[1]} S={key[2]}")
            continue
        want = baseline[key]
        got = current[key]
        if got < want * (1.0 - threshold):
            regressions.append(
                f"{key[0]} @ n={key[1]} S={key[2]}: speedup {got:.3g} vs "
                f"baseline {want:.3g} ({(1.0 - got / want) * 100.0:.1f}% drop, "
                f"allowed {threshold * 100.0:.0f}%)"
            )
    if not require_all:
        missing = []
    return regressions, missing, extra


def delta_report(baseline, current):
    """One line per compared cell with the signed speedup delta.

    Printed whole when the gate fails, so triage sees every cell's
    movement at one glance — a 16% drop next to seven 1% wiggles reads
    very differently from a 16% drop next to seven 14% drops.
    """
    lines = []
    for key in sorted(baseline):
        if key not in current:
            continue
        want = baseline[key]
        got = current[key]
        pct = (got / want - 1.0) * 100.0
        lines.append(
            f"{key[0]} @ n={key[1]} S={key[2]}: speedup {got:.3g} vs {want:.3g} ({pct:+.1f}%)"
        )
    return lines


def self_test():
    base = {("k", 255, 256): 4.0, ("k", 1023, 256): 3.0, ("k", 16383, 256): 2.0}
    # Within threshold: 10% drop on one cell, improvement on another.
    ok = {("k", 255, 256): 3.6, ("k", 1023, 256): 3.5, ("k", 16383, 256): 2.0}
    regs, miss, _ = compare(base, ok, 0.15)
    assert regs == [] and miss == [], (regs, miss)
    # Beyond threshold: 20% drop must be reported for exactly that cell.
    bad = dict(ok)
    bad[("k", 1023, 256)] = 3.0 * 0.8
    regs, _, _ = compare(base, bad, 0.15)
    assert len(regs) == 1 and "n=1023" in regs[0], regs
    # Boundary: a drop of exactly the threshold is allowed.
    edge = {k: v * 0.85 for k, v in base.items()}
    regs, _, _ = compare(base, edge, 0.15)
    assert regs == [], regs
    # Subset runs pass by default, fail under require_all.
    subset = {("k", 255, 256): 4.0}
    regs, miss, _ = compare(base, subset, 0.15)
    assert regs == [] and miss == []
    _, miss, _ = compare(base, subset, 0.15, require_all=True)
    assert len(miss) == 2, miss
    # Extra keys in the current run never fail, but are named.
    grown = dict(base)
    grown[("k", 65535, 256)] = 1.5
    regs, miss, extra = compare(base, grown, 0.15, require_all=True)
    assert regs == [] and miss == []
    assert extra == ["k @ n=65535 S=256"], extra
    # Best-of-N: one noisy run is rescued by a clean sibling; a cell bad
    # in every run still fails.
    merged = merge_best([bad, ok])
    regs, _, _ = compare(base, merged, 0.15)
    assert regs == [], regs
    all_bad = merge_best([bad, dict(bad)])
    regs, _, _ = compare(base, all_bad, 0.15)
    assert len(regs) == 1, regs
    # The failure-mode delta report covers every compared cell with a
    # signed percentage, skipping cells absent from the current run.
    deltas = delta_report(base, subset)
    assert len(deltas) == 1 and "+0.0%" in deltas[0], deltas
    deltas = delta_report(base, bad)
    assert len(deltas) == 3, deltas
    assert any("-20.0%" in line for line in deltas), deltas
    assert any("-10.0%" in line for line in deltas), deltas
    # Malformed rows fail with the row index and field named, no KeyError.
    try:
        parse_rows([{"bench": "k", "n": 255, "samples": 256}], "f.json")
        raise AssertionError("missing field accepted")
    except ValueError as err:
        assert "row 0" in str(err) and "'speedup'" in str(err), err
    try:
        parse_rows([{"bench": "k", "n": "x", "samples": 256, "speedup": 2.0}], "f.json")
        raise AssertionError("non-numeric field accepted")
    except ValueError as err:
        assert "row 0" in str(err) and "non-numeric" in str(err), err
    try:
        parse_rows(["not-a-row"], "f.json")
        raise AssertionError("non-object row accepted")
    except ValueError as err:
        assert "row 0 is not an object" in str(err), err
    print("bench_regress: self-test ok")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="committed bench JSON (e.g. BENCH_batched.json)")
    parser.add_argument(
        "--current",
        nargs="+",
        help="freshly produced bench JSON(s); each cell takes its best speedup across them",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional speedup drop per cell (default 0.15)",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="also fail when baseline cells are missing from the current run",
    )
    parser.add_argument(
        "--self-test", action="store_true", help="run the built-in comparator checks and exit"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or use --self-test)")
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must be in [0, 1)")

    try:
        baseline = load_rows(args.baseline)
        current = merge_best([load_rows(p) for p in args.current])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"bench_regress: {err}", file=sys.stderr)
        return 2

    regressions, missing, extra = compare(baseline, current, args.threshold, args.require_all)
    compared = sum(1 for k in baseline if k in current)
    for line in extra:
        print(f"EXTRA     {line}  (no baseline cell; not compared)")
    for line in missing:
        print(f"MISSING   {line}")
    for line in regressions:
        print(f"REGRESSED {line}")
    if regressions or missing:
        # Full per-cell picture on failure: one DELTA line per compared
        # cell, not just the cells that tripped the threshold.
        for line in delta_report(baseline, current):
            print(f"DELTA     {line}")
        print(
            f"bench_regress: {len(regressions)} regression(s), {len(missing)} missing "
            f"cell(s) out of {compared} compared"
        )
        return 1
    print(f"bench_regress: clean ({compared} cells within {args.threshold * 100.0:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
