#pragma once

/// \file polynomial.hpp
/// Real-coefficient polynomials with complex root extraction.
///
/// Used by the AWE/Padé model (denominator roots = approximate poles) and by
/// the two-pole baseline. Roots are found with the Durand–Kerner
/// (Weierstrass) simultaneous iteration, which is robust for the low orders
/// (<= ~12) that interconnect macromodels need.

#include <complex>
#include <vector>

namespace relmore::util {

/// Polynomial `c[0] + c[1] x + ... + c[n] x^n` over the reals.
class Polynomial {
 public:
  Polynomial() = default;
  /// Coefficients in ascending-power order. Trailing zeros are trimmed.
  explicit Polynomial(std::vector<double> ascending_coeffs);

  /// Degree; the zero polynomial reports degree 0.
  [[nodiscard]] int degree() const;
  [[nodiscard]] const std::vector<double>& coeffs() const { return c_; }

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] std::complex<double> operator()(std::complex<double> x) const;

  [[nodiscard]] Polynomial derivative() const;

  /// All complex roots via Durand–Kerner. Conjugate symmetry is enforced on
  /// the result (imaginary parts below a relative tolerance are snapped to
  /// zero). Throws std::invalid_argument for the zero polynomial.
  [[nodiscard]] std::vector<std::complex<double>> roots(int max_iter = 500,
                                                        double tol = 1e-13) const;

 private:
  std::vector<double> c_{0.0};
};

}  // namespace relmore::util
