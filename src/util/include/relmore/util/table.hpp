#pragma once

/// \file table.hpp
/// Minimal text-table / CSV emitter used by the benchmark harness so every
/// figure-reproduction binary prints the same machine-readable rows.

#include <iosfwd>
#include <string>
#include <vector>

namespace relmore::util {

/// Column-aligned text table with an optional CSV rendering.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  void add_row_numeric(const std::vector<double>& cells, int precision = 6);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with padded columns, a header rule, and a leading title line.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Renders as CSV (header + rows).
  void print_csv(std::ostream& os) const;

  /// Formats a double with fixed significant digits (shared helper).
  static std::string fmt(double v, int precision = 6);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace relmore::util
