#pragma once

/// \file integrate.hpp
/// Adaptive Dormand–Prince RK45 ODE integration for small dense systems, and
/// adaptive Simpson quadrature. The ODE integrator is an *independent* cross
/// check for the circuit engines (it knows nothing about MNA or companion
/// models) and the driver for arbitrary-input responses of the second-order
/// macromodel.

#include <functional>
#include <vector>

namespace relmore::util {

/// dy/dt = f(t, y); f writes the derivative into `dydt` (same size as y).
using OdeRhs = std::function<void(double t, const std::vector<double>& y,
                                  std::vector<double>& dydt)>;

struct OdeOptions {
  double rel_tol = 1e-9;
  double abs_tol = 1e-12;
  double initial_step = 0.0;  ///< 0 = auto
  double max_step = 0.0;      ///< 0 = unbounded
  std::size_t max_steps = 2'000'000;
};

/// Integrates from (t0, y0) to t1, invoking `observe(t, y)` after every
/// accepted step (including the initial state). Returns the final state.
/// Throws std::runtime_error if the step count is exhausted.
[[nodiscard]] std::vector<double> integrate_ode(const OdeRhs& f, double t0, std::vector<double> y0, double t1,
                                  const OdeOptions& opts = {},
                                  const std::function<void(double, const std::vector<double>&)>&
                                      observe = nullptr);

/// Adaptive Simpson quadrature of f over [a, b].
[[nodiscard]] double integrate_quad(const std::function<double(double)>& f, double a, double b,
                      double tol = 1e-10, int max_depth = 40);

}  // namespace relmore::util
