#pragma once

/// \file deadline.hpp
/// Cooperative run control for long-running engine work: a steady-clock
/// `Deadline`, a thread-safe `CancelToken`, and the `RunControl` pair the
/// engines carry through their options structs.
///
/// Both primitives are *cooperative*: nothing is interrupted mid-kernel.
/// The batched engines poll `RunControl::stop_code()` at their natural
/// chunk boundaries (lane-group / tile-batch granularity — never inside
/// the R3 hot-loop regions), finish or skip whole units of work, and
/// surface `ErrorCode::kDeadlineExceeded` / `kCancelled` with
/// well-defined partial-result semantics: every unit completed before the
/// stop was observed is kept and bitwise-identical to an uninterrupted
/// run, every unit not started is reported incomplete.
///
/// A default-constructed Deadline never expires and a null CancelToken
/// never cancels, so the disarmed path costs one branch per chunk.

#include <atomic>
#include <chrono>

#include "relmore/util/diagnostics.hpp"

namespace relmore::util {

/// Absolute steady-clock expiry. Copyable value type; a default
/// constructed Deadline is "none" and never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;
  explicit Deadline(Clock::time_point at) : at_(at), armed_(true) {}

  /// Deadline `budget` from now ("finish within 50 ms").
  [[nodiscard]] static Deadline after(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }
  /// The never-expiring deadline (same as default construction).
  [[nodiscard]] static Deadline none() { return Deadline{}; }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool expired() const { return armed_ && Clock::now() >= at_; }
  [[nodiscard]] Clock::time_point time_point() const { return at_; }

 private:
  Clock::time_point at_{};
  bool armed_ = false;
};

/// Cooperative cancellation flag. One writer calls `cancel()`, any number
/// of workers poll `cancelled()`; the flag is latched (never reset) so a
/// late poll can't resurrect cancelled work. Shared by pointer — the
/// caller owns the token and must keep it alive for the duration of every
/// run it was handed to.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The (deadline, cancel) pair the engine options carry. Checked together
/// at chunk boundaries; cancellation wins when both have tripped (it is
/// the more deliberate signal).
struct RunControl {
  Deadline deadline;
  const CancelToken* cancel = nullptr;

  [[nodiscard]] bool armed() const {
    return deadline.armed() || cancel != nullptr;
  }

  /// kOk while the run may continue, else kCancelled / kDeadlineExceeded.
  [[nodiscard]] ErrorCode stop_code() const {
    if (cancel != nullptr && cancel->cancelled()) return ErrorCode::kCancelled;
    if (deadline.expired()) return ErrorCode::kDeadlineExceeded;
    return ErrorCode::kOk;
  }

  /// Status form of `stop_code()` with a uniform message, for surfacing
  /// through Result/DiagnosticsReport paths.
  [[nodiscard]] Status stop_status() const {
    switch (stop_code()) {
      case ErrorCode::kCancelled:
        return Status(ErrorCode::kCancelled, "run cancelled by caller");
      case ErrorCode::kDeadlineExceeded:
        return Status(ErrorCode::kDeadlineExceeded, "deadline exceeded");
      default:
        return Status::ok();
    }
  }
};

}  // namespace relmore::util
