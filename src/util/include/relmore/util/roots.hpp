#pragma once

/// \file roots.hpp
/// Scalar root finding: bracketed bisection and Brent's method.

#include <functional>
#include <optional>

namespace relmore::util {

/// Options controlling the iteration of a scalar root search.
struct RootOptions {
  double x_tol = 1e-13;    ///< absolute tolerance on the bracket width
  double f_tol = 0.0;      ///< stop when |f(x)| <= f_tol (0 = rely on x_tol)
  int max_iter = 200;      ///< iteration cap
};

/// Finds a root of `f` in the bracket [a, b] with Brent's method.
///
/// Requires f(a) and f(b) to have opposite signs (either may be zero).
/// Returns std::nullopt when the bracket is invalid or the iteration cap is
/// exceeded without convergence.
[[nodiscard]] std::optional<double> brent(const std::function<double(double)>& f, double a, double b,
                            const RootOptions& opts = {});

/// Plain bisection; slower than brent() but immune to pathological functions.
[[nodiscard]] std::optional<double> bisect(const std::function<double(double)>& f, double a, double b,
                             const RootOptions& opts = {});

/// Expands [a, b] geometrically to the right until f changes sign, then
/// finds the root with brent(). Useful for "first crossing after t=a"
/// searches where the right edge is unknown. `growth` scales the step each
/// attempt; gives up after `max_expand` expansions.
[[nodiscard]] std::optional<double> find_root_forward(const std::function<double(double)>& f, double a,
                                        double initial_step, double growth = 1.6,
                                        int max_expand = 200, const RootOptions& opts = {});

}  // namespace relmore::util
