#pragma once

/// \file fit.hpp
/// Least-squares fitting: linear (normal equations) and damped Gauss–Newton
/// (Levenberg) for small nonlinear models. Used to re-derive the paper's
/// curve-fit coefficients for the time-scaled 50% delay and rise time
/// (paper eqs. 33–34).

#include <functional>
#include <vector>

namespace relmore::util {

/// Result of a fit: parameter vector and residual quality.
struct FitResult {
  std::vector<double> params;
  double rms_residual = 0.0;
  double max_abs_residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Solves min ||A p - y||_2 where A is given row-major (rows x cols,
/// rows >= cols) via normal equations with partial-pivot Gaussian
/// elimination. Small dense problems only.
[[nodiscard]] std::vector<double> linear_least_squares(const std::vector<std::vector<double>>& A,
                                         const std::vector<double>& y);

/// Damped Gauss–Newton (Levenberg) fit of model(x, p) to samples (xs, ys).
/// The Jacobian is formed by forward differences. `p0` seeds the iteration.
[[nodiscard]] FitResult fit_nonlinear(const std::function<double(double, const std::vector<double>&)>& model,
                        const std::vector<double>& xs, const std::vector<double>& ys,
                        std::vector<double> p0, int max_iter = 200, double tol = 1e-12);

}  // namespace relmore::util
