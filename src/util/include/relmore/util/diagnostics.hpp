#pragma once

/// \file diagnostics.hpp
/// Error taxonomy of the analysis pipeline: structured status codes with
/// node/line context, a `Result<T>` carrier for exception-free APIs, fault
/// policies for the numerical guardrails, and the multi-entry diagnostics
/// report produced by `circuit::validate`.
///
/// The pipeline ingests user-supplied netlists and parameter samples; the
/// failure modes are known in advance (malformed decks, NaN/Inf/negative
/// element values, degenerate moment sums, structural corruption), so each
/// gets a stable `ErrorCode` instead of a bare exception string. Layers
/// that historically threw keep throwing — `FaultError` derives from
/// `std::invalid_argument` so every existing `catch` site and test stays
/// valid — while new call sites can use the `Result`-returning entry
/// points and branch on codes.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace relmore::util {

/// Stable machine-readable failure categories. Values are append-only;
/// `error_code_name` must be kept in sync.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  // --- structural (circuit::validate) -----------------------------------
  kEmptyTree,             ///< analysis entry fed a tree with no sections
  kInvalidParent,         ///< parent id out of range / not parent-before-child
  kCycle,                 ///< parent chain does not reach the input node
  kDuplicateName,         ///< two sections share a non-empty label
  // --- element values ----------------------------------------------------
  kNegativeValue,         ///< R, L, or C below zero
  kNonFiniteValue,        ///< R, L, or C is NaN or infinite
  kZeroTotalCapacitance,  ///< tree drives no load at all (warning)
  // --- resource limits ---------------------------------------------------
  kSizeLimit,             ///< section count above the configured ceiling
  kDepthLimit,            ///< tree depth above the configured ceiling
  // --- parsing -----------------------------------------------------------
  kParseError,            ///< malformed netlist/deck/value text
  kValueOutOfRange,       ///< magnitude does not fit in a double
  // --- runtime numerical faults (eed::analyze guardrails) ----------------
  kNonFiniteMoment,       ///< SR/SL/Ctot became NaN or Inf at some node
  kNegativeMoment,        ///< SL (or Ctot) went negative at some node
  // --- API usage ---------------------------------------------------------
  kInvalidArgument,       ///< generic bad call argument
  kPrunedSection,         ///< edit/query on a tombstoned section
  kTransactionState,      ///< begin/commit/rollback out of order
  // --- run control (util::Deadline / util::CancelToken) -------------------
  kDeadlineExceeded,      ///< work stopped at a steady-clock deadline
  kCancelled,             ///< work stopped by a cooperative CancelToken
  // --- resource / injected failures --------------------------------------
  kResourceExhausted,     ///< allocation (arena/workspace) failure
  kInjectedFault,         ///< deterministic util::FaultInjector fire
};

/// Short stable name of a code ("non-finite-value", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// How the numerical guardrails react to a detected fault.
enum class FaultPolicy : std::uint8_t {
  kThrow = 0,      ///< raise FaultError at the first faulted node/sample
  kClampAndFlag,   ///< clamp the degenerate value to its nearest valid
                   ///< limit (SL < 0 -> 0, non-finite -> 0), set the flag
  kSkipAndFlag,    ///< leave the computed value untouched, set the flag
};

[[nodiscard]] const char* fault_policy_name(FaultPolicy policy);

/// One finding: a code plus whatever context the producer had. `node` is a
/// circuit::SectionId when >= 0; `line` is a 1-based input line when >= 0;
/// `path` is the input->node section path ("s0/s3/O") when known; `net` is
/// the enclosing net or instance name when the finding came from a
/// design-level reader (corpus-scale fault reports are unusable without
/// it — "node 3" means nothing across 10^5 nets).
struct Diagnostic {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  int node = -1;
  int line = -1;
  std::string path;
  std::string net;       ///< enclosing net/instance name, when known
  bool warning = false;  ///< advisory only; never fails a validation

  /// "error [negative-value] in net 'clk0' at node 3 (s0/s3): ..." — one line.
  [[nodiscard]] std::string to_string() const;
};

/// Success-or-failure of one operation, with code + context. Cheap to copy
/// on success (empty message).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message, int node = -1, int line = -1)
      : code_(code), message_(std::move(message)), node_(node), line_(line) {}

  [[nodiscard]] static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] int line() const { return line_; }
  /// Enclosing net/instance name; empty when the failure has no design
  /// context (single-tree entry points).
  [[nodiscard]] const std::string& net() const { return net_; }

  /// Copy of this status tagged with a net/instance name (no-op on ok and
  /// on an already-tagged status — the innermost context wins).
  [[nodiscard]] Status with_net(const std::string& net) const {
    Status out = *this;
    if (!out.is_ok() && out.net_.empty()) out.net_ = net;
    return out;
  }

  /// "[parse-error] net 'clk0' line 4: ..." — one line, empty for ok.
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  int node_ = -1;
  int line_ = -1;
  std::string net_;
};

/// Structured exception shim: carries the Status of the failure while
/// remaining a std::invalid_argument, so pre-existing catch sites (and the
/// documented throwing contracts) keep working unchanged.
class FaultError : public std::invalid_argument {
 public:
  explicit FaultError(Status status)
      : std::invalid_argument(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] ErrorCode code() const { return status_.code(); }
  [[nodiscard]] int node() const { return status_.node(); }

 private:
  Status status_;
};

/// Value-or-Status. `value()` on a failed result throws the FaultError
/// shim; check `is_ok()` (or use `value_or`) on untrusted input paths.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    require();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require();
    return std::move(*value_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void require() const {
    if (!value_.has_value()) throw FaultError(status_);
  }

  std::optional<T> value_;
  Status status_;  ///< ok when value_ is set
};

/// Everything a validation pass found, errors and warnings both.
class DiagnosticsReport {
 public:
  void add(Diagnostic d) {
    if (!d.warning) ++errors_;
    entries_.push_back(std::move(d));
  }

  [[nodiscard]] const std::vector<Diagnostic>& entries() const { return entries_; }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] std::size_t warning_count() const { return entries_.size() - errors_; }
  /// True when no *errors* were found (warnings allowed).
  [[nodiscard]] bool is_ok() const { return errors_ == 0; }

  /// First error as a Status (ok() when the report is clean).
  [[nodiscard]] Status to_status() const;
  /// All entries, one line each.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> entries_;
  std::size_t errors_ = 0;
};

/// True for a finite, non-negative double — the validity predicate every
/// element-value guard in the pipeline uses. Written as a single composite
/// comparison so NaN (all comparisons false) fails it too.
[[nodiscard]] inline bool valid_element_value(double v) {
  return v >= 0.0 && v <= 1.7976931348623157e308;  // DBL_MAX
}

}  // namespace relmore::util
