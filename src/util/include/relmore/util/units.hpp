#pragma once

/// \file units.hpp
/// SI unit helpers for circuit quantities. All library quantities are plain
/// `double` in base SI units (ohm, henry, farad, second, volt); these literal
/// suffixes exist so example/test circuits read like a datasheet:
/// `25.0_ohm, 2.0_nH, 0.2_pF`.

namespace relmore::util {

// NOLINTBEGIN(google-runtime-int) — UDL operators require long double.
constexpr double operator""_ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kohm(long double v) { return static_cast<double>(v) * 1e3; }

constexpr double operator""_H(long double v) { return static_cast<double>(v); }
constexpr double operator""_mH(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uH(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nH(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pH(long double v) { return static_cast<double>(v) * 1e-12; }

constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nF(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }

constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }

constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
// NOLINTEND(google-runtime-int)

}  // namespace relmore::util
