#pragma once

/// \file laplace.hpp
/// Numerical inverse Laplace transform (fixed Talbot contour). Interconnect
/// macromodels live in the s-domain; Talbot inversion turns any transfer
/// function evaluable at complex s into a time-domain sample without
/// eigenvalue analysis or time stepping — a fourth, independent route to
/// reference waveforms (modal, trapezoidal, RK45 being the others).

#include <complex>
#include <functional>

namespace relmore::util {

/// F: the Laplace-domain function, evaluable at complex s with Re(s) along
/// the Talbot contour. Returns f(t) for t > 0. `terms` trades accuracy for
/// F-evaluations; 32 gives ~1e-8 for smooth, stable F. Throws
/// std::invalid_argument for t <= 0.
[[nodiscard]] double invert_laplace_talbot(const std::function<std::complex<double>(std::complex<double>)>& F,
                             double t, int terms = 32);

}  // namespace relmore::util
