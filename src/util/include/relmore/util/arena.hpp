#pragma once

/// \file arena.hpp
/// Bump-arena allocation for kernel group workspaces.
///
/// The batched kernels (engine::BatchedAnalyzer, sim::BatchSimulator) need
/// a few scratch blocks per lane-group task. At corpus scale — thousands
/// of same-topology net groups swept per timing pass — allocating those
/// blocks with `std::vector` per task churns the allocator: every group
/// pays a malloc/free pair (plus the zero-fill) for memory whose size and
/// lifetime are identical to the previous group's. An `Arena` instead
/// grabs from a slab that is reused across tasks: allocation is a pointer
/// bump, release is a scope-exit rewind, and the slab survives from one
/// group to the next.
///
/// Usage (the kernel-task pattern):
///
///   util::Arena& arena = util::thread_arena();
///   const util::ArenaScope scope(arena);       // rewinds at scope exit
///   double* scratch = arena.grab<double>(3 * n * w);
///
/// Blocks are 64-byte aligned (one cache line / one AVX-512 vector) and
/// uninitialized — kernel scratch is always fully written before it is
/// read, so the vector zero-fill the arena replaces was pure waste.
///
/// Thread safety: an Arena is single-threaded by design; `thread_arena()`
/// hands every thread (pool workers included) its own instance, so no
/// synchronization is needed and TSan stays silent. Scopes must nest
/// stack-like, which the RAII guard enforces structurally.

#include <cstddef>
#include <new>
#include <vector>

#include "relmore/util/fault_injector.hpp"

namespace relmore::util {

/// Grow-by-slab bump allocator. Memory is released only by rewinding (via
/// ArenaScope) or destroying the arena; individual grabs are never freed.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    for (const Slab& s : slabs_) {
      ::operator delete(s.data, std::align_val_t{kAlign});
    }
  }

  /// Returns an uninitialized, 64-byte-aligned block of `count` T. The
  /// block stays valid until the enclosing ArenaScope rewinds past it.
  template <typename T>
  [[nodiscard]] T* grab(std::size_t count) {
    static_assert(alignof(T) <= kAlign, "Arena alignment is 64 bytes");
    return static_cast<T*>(grab_bytes(count * sizeof(T)));
  }

  /// Total bytes currently owned (all slabs, grabbed or not).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }

 private:
  friend class ArenaScope;
  static constexpr std::size_t kAlign = 64;
  /// First slab size; later slabs double the total, so a workload's
  /// steady-state grab pattern settles into one slab after O(log) growths.
  static constexpr std::size_t kMinSlabBytes = std::size_t{1} << 16;

  struct Slab {
    void* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  struct Mark {
    std::size_t slab = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* grab_bytes(std::size_t bytes) {
    // Injection site: workspace allocation failure. Grabs happen once per
    // lane-group chunk (outside the R3 hot-loop regions), so the disarmed
    // cost is one relaxed load per chunk, not per node.
    if (fault_should_fire(FaultSite::kArenaAlloc)) throw std::bad_alloc{};
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes == 0) bytes = kAlign;  // distinct non-null blocks for empty grabs
    // Advance through retained slabs before growing: after a rewind the
    // early slabs are empty again and get refilled in order.
    while (active_ < slabs_.size()) {
      Slab& s = slabs_[active_];
      if (s.size - s.used >= bytes) {
        void* p = static_cast<char*>(s.data) + s.used;
        s.used += bytes;
        return p;
      }
      if (++active_ < slabs_.size()) slabs_[active_].used = 0;
    }
    std::size_t grow = capacity();
    grow = grow < kMinSlabBytes ? kMinSlabBytes : grow;
    if (grow < bytes) grow = bytes;
    Slab s;
    s.data = ::operator new(grow, std::align_val_t{kAlign});
    s.size = grow;
    s.used = bytes;
    slabs_.push_back(s);
    active_ = slabs_.size() - 1;
    return s.data;
  }

  [[nodiscard]] Mark mark() const {
    if (slabs_.empty()) return {};
    return {active_, active_ < slabs_.size() ? slabs_[active_].used : 0};
  }

  void rewind(Mark m) {
    if (slabs_.empty()) return;
    for (std::size_t i = m.slab; i < slabs_.size(); ++i) slabs_[i].used = 0;
    if (m.slab < slabs_.size()) slabs_[m.slab].used = m.used;
    active_ = m.slab;
  }

  std::vector<Slab> slabs_;
  std::size_t active_ = 0;
};

/// RAII rewind guard: grabs made while the scope is alive are released
/// (capacity retained) when it exits. Scopes nest stack-like.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.rewind(mark_); }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// The calling thread's arena. Pool workers each get their own, so group
/// tasks can grab scratch without synchronization; the slab persists
/// across tasks, which is the whole point at corpus scale.
inline Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace relmore::util
