#pragma once

/// \file fault_injector.hpp
/// Deterministic, seed-driven fault injection for the resilience tests.
///
/// Production failure modes — allocation failure, poisoned snapshot
/// values, slow or dying pool workers, truncated input decks — are rare
/// by construction, which makes the recovery paths the least-executed
/// code in the repo. The injector makes them executable on demand: each
/// *site* (an enum, not a string, so a typo is a compile error) is a
/// named point in the pipeline that asks `should_fire()` and, on true,
/// fails the way the real fault would (throws `std::bad_alloc`, writes a
/// NaN, sleeps, throws `FaultError(kInjectedFault)`, stops reading).
///
/// Determinism: a site armed as `every=N:seed=S:limit=K` fires on the
/// hits h with `h % N == splitmix64(S ^ site) % N`, at most K times. Hit
/// counters are process-global atomics, so the *number* of fires is
/// exact and reproducible for a fixed workload; *which* thread observes
/// a fire depends on scheduling (documented — the chaos harness asserts
/// counts and surfaced diagnostics, not attribution).
///
/// Cost when disarmed: one relaxed atomic load and branch per
/// `should_fire()` call. Sites live at chunk/task granularity (arena
/// grabs, task dispatch, parser lines) — never inside the R3 hot-loop
/// regions, which the lint enforces stays true.
///
/// Arming: `RELMORE_FAULTS=<site>:<spec>[,<site>:<spec>...]` in the
/// environment, read once per process at first use (the RELMORE_THREADS
/// convention: concurrent getenv/setenv is a POSIX data race, and every
/// component must agree on one configuration). Spec grammar per site:
/// `every=N` (fire every Nth hit, default 1), `seed=S` (phase seed,
/// default 0), `limit=K` (total fire cap, default unlimited). Malformed
/// specs are rejected loudly on stderr and ignored. Tests arm
/// programmatically via `arm_spec()` between runs instead.

#include <atomic>
#include <cstdint>
#include <string>

#include "relmore/util/diagnostics.hpp"

namespace relmore::util {

/// Injection points. Append-only; `fault_site_name` must stay in sync.
enum class FaultSite : std::uint8_t {
  kArenaAlloc = 0,  ///< util::Arena slab grab throws std::bad_alloc
  kSnapshotNan,     ///< batched snapshot fill poisons one section value
  kPoolDelay,       ///< engine::BatchAnalyzer worker sleeps before a task
  kPoolAbort,       ///< engine::BatchAnalyzer task throws FaultError
  kParseTruncate,   ///< sta::read_design_checked stops mid-deck
};
inline constexpr std::size_t kFaultSiteCount = 5;

/// Stable site name ("arena-alloc", ...), the RELMORE_FAULTS key.
[[nodiscard]] const char* fault_site_name(FaultSite site);

/// Process-global deterministic injection registry. All methods are
/// thread-safe; `should_fire` is wait-free when disarmed.
class FaultInjector {
 public:
  /// The process singleton. First call parses RELMORE_FAULTS (once).
  [[nodiscard]] static FaultInjector& instance();

  /// True when `site` should fail right now. Disarmed cost: one relaxed
  /// load. Each call counts as one hit of the site once anything is armed.
  [[nodiscard]] bool should_fire(FaultSite site) {
    return any_armed_.load(std::memory_order_relaxed) && should_fire_slow(site);
  }

  /// Arms sites from a spec string (same grammar as RELMORE_FAULTS,
  /// without the env read). Returns a Status naming the first malformed
  /// clause; already-parsed clauses stay armed. Counters reset.
  Status arm_spec(const std::string& spec);

  /// Disarms every site and zeroes all counters.
  void disarm_all();

  /// Fires of `site` so far (exact: never exceeds the armed limit).
  [[nodiscard]] std::uint64_t fire_count(FaultSite site) const;

  /// Status carried by thrown injected faults, naming the site.
  [[nodiscard]] static Status fire_status(FaultSite site);

 private:
  FaultInjector() = default;

  struct SiteState {
    std::atomic<bool> armed{false};
    std::uint64_t every = 1;
    std::uint64_t phase = 0;
    std::uint64_t limit = 0;  ///< 0 = unlimited
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };

  [[nodiscard]] bool should_fire_slow(FaultSite site);
  void parse_env_once();

  std::atomic<bool> any_armed_{false};
  SiteState sites_[kFaultSiteCount];
};

/// Shorthand for injection sites: `if (fault_should_fire(FaultSite::k...))`.
[[nodiscard]] inline bool fault_should_fire(FaultSite site) {
  return FaultInjector::instance().should_fire(site);
}

}  // namespace relmore::util
