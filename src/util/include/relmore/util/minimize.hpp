#pragma once

/// \file minimize.hpp
/// Scalar minimization (golden-section) and cyclic coordinate descent —
/// the optimization loops the closed-form delay models are designed to
/// live inside ("continuous ... useful for optimization", paper §IV).

#include <functional>
#include <vector>

namespace relmore::util {

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;
  double f = 0.0;
  int evaluations = 0;
};

/// Golden-section search for a minimum of a unimodal f on [a, b].
[[nodiscard]] MinimizeResult minimize_golden(const std::function<double(double)>& f, double a, double b,
                               double x_tol = 1e-9, int max_iter = 200);

/// Options for coordinate descent.
struct CoordinateDescentOptions {
  int max_sweeps = 60;
  double x_tol = 1e-6;       ///< per-coordinate golden-section tolerance
  double f_tol = 1e-12;      ///< stop when a full sweep improves less than this
};

/// Result of a multivariate minimization.
struct CoordinateDescentResult {
  std::vector<double> x;
  double f = 0.0;
  int sweeps = 0;
  bool converged = false;
};

/// Cyclic coordinate descent with golden-section line searches, boxed to
/// [lo[i], hi[i]] per coordinate. Suitable for the smooth, low-dimensional
/// sizing problems in relmore::opt; not a general NLP solver.
[[nodiscard]] CoordinateDescentResult minimize_coordinate_descent(
    const std::function<double(const std::vector<double>&)>& f, std::vector<double> x0,
    const std::vector<double>& lo, const std::vector<double>& hi,
    const CoordinateDescentOptions& opts = {});

}  // namespace relmore::util
