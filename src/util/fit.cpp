#include "relmore/util/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace relmore::util {

namespace {

/// Solves the square system M x = b in place with partial pivoting.
std::vector<double> solve_square(std::vector<std::vector<double>> M, std::vector<double> b) {
  const std::size_t n = M.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(M[r][col]) > std::abs(M[pivot][col])) pivot = r;
    }
    if (M[pivot][col] == 0.0) throw std::runtime_error("solve_square: singular matrix");
    std::swap(M[col], M[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = M[r][col] / M[col][col];
      for (std::size_t c = col; c < n; ++c) M[r][c] -= f * M[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= M[ri][c] * x[c];
    x[ri] = acc / M[ri][ri];
  }
  return x;
}

double rms(const std::vector<double>& r) {
  double s = 0.0;
  for (double v : r) s += v * v;
  return std::sqrt(s / static_cast<double>(r.size()));
}

}  // namespace

std::vector<double> linear_least_squares(const std::vector<std::vector<double>>& A,
                                         const std::vector<double>& y) {
  if (A.empty() || A.size() != y.size()) {
    throw std::invalid_argument("linear_least_squares: shape mismatch");
  }
  const std::size_t m = A.size();
  const std::size_t n = A[0].size();
  std::vector<std::vector<double>> AtA(n, std::vector<double>(n, 0.0));
  std::vector<double> Aty(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (A[r].size() != n) throw std::invalid_argument("linear_least_squares: ragged rows");
    for (std::size_t i = 0; i < n; ++i) {
      Aty[i] += A[r][i] * y[r];
      for (std::size_t j = 0; j < n; ++j) AtA[i][j] += A[r][i] * A[r][j];
    }
  }
  return solve_square(std::move(AtA), std::move(Aty));
}

FitResult fit_nonlinear(const std::function<double(double, const std::vector<double>&)>& model,
                        const std::vector<double>& xs, const std::vector<double>& ys,
                        std::vector<double> p0, int max_iter, double tol) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("fit_nonlinear: shape mismatch");
  }
  const std::size_t m = xs.size();
  const std::size_t np = p0.size();

  auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r(m);
    for (std::size_t i = 0; i < m; ++i) r[i] = model(xs[i], p) - ys[i];
    return r;
  };

  std::vector<double> p = std::move(p0);
  std::vector<double> r = residuals(p);
  double cost = rms(r);
  double lambda = 1e-3;
  FitResult out;

  for (int iter = 0; iter < max_iter; ++iter) {
    out.iterations = iter + 1;
    // Forward-difference Jacobian.
    std::vector<std::vector<double>> J(m, std::vector<double>(np));
    for (std::size_t j = 0; j < np; ++j) {
      const double h = 1e-7 * (1.0 + std::abs(p[j]));
      std::vector<double> pj = p;
      pj[j] += h;
      for (std::size_t i = 0; i < m; ++i) J[i][j] = (model(xs[i], pj) - (r[i] + ys[i])) / h;
    }
    // Normal equations with Levenberg damping: (JtJ + lambda diag) dp = -Jt r
    std::vector<std::vector<double>> JtJ(np, std::vector<double>(np, 0.0));
    std::vector<double> Jtr(np, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t a = 0; a < np; ++a) {
        Jtr[a] += J[i][a] * r[i];
        for (std::size_t b = 0; b < np; ++b) JtJ[a][b] += J[i][a] * J[i][b];
      }
    }
    bool improved = false;
    for (int attempt = 0; attempt < 12 && !improved; ++attempt) {
      auto M = JtJ;
      for (std::size_t a = 0; a < np; ++a) M[a][a] += lambda * (JtJ[a][a] + 1e-12);
      std::vector<double> rhs(np);
      for (std::size_t a = 0; a < np; ++a) rhs[a] = -Jtr[a];
      std::vector<double> dp;
      try {
        dp = solve_square(std::move(M), std::move(rhs));
      } catch (const std::runtime_error&) {
        lambda *= 10.0;
        continue;
      }
      std::vector<double> pn(np);
      for (std::size_t a = 0; a < np; ++a) pn[a] = p[a] + dp[a];
      const std::vector<double> rn = residuals(pn);
      const double cn = rms(rn);
      if (cn < cost) {
        double step = 0.0;
        for (double v : dp) step = std::max(step, std::abs(v));
        p = std::move(pn);
        r = rn;
        const double drop = cost - cn;
        cost = cn;
        lambda = std::max(lambda * 0.3, 1e-12);
        improved = true;
        if (step < tol || drop < tol * (1.0 + cost)) {
          out.converged = true;
        }
      } else {
        lambda *= 10.0;
      }
    }
    if (!improved || out.converged) {
      out.converged = out.converged || !improved;
      break;
    }
  }
  out.params = std::move(p);
  out.rms_residual = cost;
  out.max_abs_residual = 0.0;
  for (double v : r) out.max_abs_residual = std::max(out.max_abs_residual, std::abs(v));
  return out;
}

}  // namespace relmore::util
