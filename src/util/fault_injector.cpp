#include "relmore/util/fault_injector.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace relmore::util {

namespace {

/// splitmix64 finalizer — turns (seed ^ site) into a well-mixed phase so
/// two sites armed with the same seed do not fire in lockstep.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool site_from_name(const std::string& name, FaultSite* out) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == fault_site_name(site)) {
      *out = site;
      return true;
    }
  }
  return false;
}

/// Parses a non-negative integer field value; rejects trailing garbage.
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno != 0) return false;
  *out = parsed;
  return true;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kArenaAlloc: return "arena-alloc";
    case FaultSite::kSnapshotNan: return "snapshot-nan";
    case FaultSite::kPoolDelay: return "pool-delay";
    case FaultSite::kPoolAbort: return "pool-abort";
    case FaultSite::kParseTruncate: return "parse-truncate";
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  static std::once_flag once;
  std::call_once(once, [] { injector.parse_env_once(); });
  return injector;
}

void FaultInjector::parse_env_once() {
  const char* env = std::getenv("RELMORE_FAULTS");
  if (env == nullptr || *env == '\0') return;
  const Status parsed = arm_spec(env);
  if (!parsed.is_ok()) {
    std::fprintf(stderr,
                 "relmore: rejecting RELMORE_FAULTS clause: %s (grammar: "
                 "<site>:every=N[:seed=S][:limit=K], comma-separated)\n",
                 parsed.message().c_str());
  }
}

Status FaultInjector::arm_spec(const std::string& spec) {
  // Parse into staging first; publish per clause so valid clauses stick.
  std::size_t pos = 0;
  Status first_error = Status::ok();
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string clause =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (clause.empty()) continue;

    std::size_t colon = clause.find(':');
    const std::string name = clause.substr(0, colon);
    FaultSite site{};
    if (!site_from_name(name, &site)) {
      if (first_error.is_ok()) {
        first_error = Status(ErrorCode::kInvalidArgument,
                             "unknown fault site \"" + name + "\"");
      }
      continue;
    }
    std::uint64_t every = 0;  // mandatory: a bare site name is malformed
    std::uint64_t seed = 0;
    std::uint64_t limit = 0;
    bool clause_ok = true;
    while (colon != std::string::npos) {
      const std::size_t next = clause.find(':', colon + 1);
      const std::string field = clause.substr(
          colon + 1, next == std::string::npos ? std::string::npos : next - colon - 1);
      colon = next;
      const std::size_t eq = field.find('=');
      const std::string key = field.substr(0, eq);
      const std::string val = eq == std::string::npos ? "" : field.substr(eq + 1);
      std::uint64_t parsed = 0;
      if (!parse_u64(val, &parsed) || (key == "every" && parsed == 0)) {
        clause_ok = false;
      } else if (key == "every") {
        every = parsed;
      } else if (key == "seed") {
        seed = parsed;
      } else if (key == "limit") {
        limit = parsed;
      } else {
        clause_ok = false;
      }
      if (!clause_ok) {
        if (first_error.is_ok()) {
          first_error = Status(ErrorCode::kInvalidArgument,
                               "bad field \"" + field + "\" for site \"" + name + "\"");
        }
        break;
      }
    }
    if (!clause_ok) continue;
    if (every == 0) {
      if (first_error.is_ok()) {
        first_error = Status(ErrorCode::kInvalidArgument,
                             "site \"" + name + "\" is missing every=N");
      }
      continue;
    }

    SiteState& s = sites_[static_cast<std::size_t>(site)];
    // Quiesce readers of the config fields, then publish with release so
    // a should_fire that observes armed==true sees the matching config.
    s.armed.store(false, std::memory_order_relaxed);
    s.every = every;
    s.phase = splitmix64(seed ^ static_cast<std::uint64_t>(site)) % every;
    s.limit = limit;
    s.hits.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
    s.armed.store(true, std::memory_order_release);
    any_armed_.store(true, std::memory_order_release);
  }
  return first_error;
}

void FaultInjector::disarm_all() {
  any_armed_.store(false, std::memory_order_relaxed);
  for (SiteState& s : sites_) {
    s.armed.store(false, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t FaultInjector::fire_count(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].fires.load(std::memory_order_relaxed);
}

Status FaultInjector::fire_status(FaultSite site) {
  return Status(ErrorCode::kInjectedFault,
                std::string("injected fault at site ") + fault_site_name(site));
}

bool FaultInjector::should_fire_slow(FaultSite site) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  if (!s.armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  if (hit % s.every != s.phase) return false;
  if (s.limit == 0) {
    s.fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // CAS so fires never exceeds limit: fire_count() is exact, which the
  // chaos harness' "surfaced exactly once" assertion depends on.
  std::uint64_t f = s.fires.load(std::memory_order_relaxed);
  while (f < s.limit) {
    if (s.fires.compare_exchange_weak(f, f + 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace relmore::util
