#include "relmore/util/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace relmore::util {

Polynomial::Polynomial(std::vector<double> ascending_coeffs) : c_(std::move(ascending_coeffs)) {
  while (c_.size() > 1 && c_.back() == 0.0) c_.pop_back();
  if (c_.empty()) c_.push_back(0.0);
}

int Polynomial::degree() const { return static_cast<int>(c_.size()) - 1; }

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (auto it = c_.rbegin(); it != c_.rend(); ++it) acc = acc * x + *it;
  return acc;
}

std::complex<double> Polynomial::operator()(std::complex<double> x) const {
  std::complex<double> acc = 0.0;
  for (auto it = c_.rbegin(); it != c_.rend(); ++it) acc = acc * x + *it;
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (c_.size() <= 1) return Polynomial{{0.0}};
  std::vector<double> d(c_.size() - 1);
  for (std::size_t i = 1; i < c_.size(); ++i) d[i - 1] = c_[i] * static_cast<double>(i);
  return Polynomial{std::move(d)};
}

std::vector<std::complex<double>> Polynomial::roots(int max_iter, double tol) const {
  const int n = degree();
  if (n == 0) {
    if (c_[0] == 0.0) throw std::invalid_argument("Polynomial::roots: zero polynomial");
    return {};
  }
  // Normalize to monic.
  std::vector<double> a(c_.begin(), c_.end());
  const double lead = a.back();
  for (double& v : a) v /= lead;

  // Cauchy bound on root magnitude seeds the Durand–Kerner circle.
  double bound = 0.0;
  for (int i = 0; i < n; ++i) bound = std::max(bound, std::abs(a[static_cast<std::size_t>(i)]));
  bound += 1.0;

  std::vector<std::complex<double>> z(static_cast<std::size_t>(n));
  // Non-real seed angle avoids symmetry traps for real-coefficient inputs.
  const std::complex<double> seed = 0.4 * bound * std::polar(1.0, 0.9);
  for (int i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(i)] =
        seed * std::polar(1.0, 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n));
  }

  const Polynomial monic{a};
  for (int iter = 0; iter < max_iter; ++iter) {
    double max_step = 0.0;
    for (int i = 0; i < n; ++i) {
      std::complex<double> denom = 1.0;
      for (int j = 0; j < n; ++j) {
        if (j != i) denom *= (z[static_cast<std::size_t>(i)] - z[static_cast<std::size_t>(j)]);
      }
      if (denom == std::complex<double>{0.0, 0.0}) {
        // Perturb coincident iterates.
        z[static_cast<std::size_t>(i)] += 1e-8 * bound;
        continue;
      }
      const std::complex<double> step = monic(z[static_cast<std::size_t>(i)]) / denom;
      z[static_cast<std::size_t>(i)] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < tol * bound) break;
  }

  // Snap near-real roots and enforce conjugate pairing for presentation.
  for (auto& r : z) {
    if (std::abs(r.imag()) < 1e-9 * (1.0 + std::abs(r.real()))) r = {r.real(), 0.0};
  }
  std::sort(z.begin(), z.end(), [](const auto& p, const auto& q) {
    if (p.real() != q.real()) return p.real() < q.real();
    return p.imag() < q.imag();
  });
  return z;
}

}  // namespace relmore::util
