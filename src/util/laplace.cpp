#include "relmore/util/laplace.hpp"

#include <cmath>
#include <stdexcept>

namespace relmore::util {

double invert_laplace_talbot(
    const std::function<std::complex<double>(std::complex<double>)>& F, double t, int terms) {
  if (t <= 0.0) throw std::invalid_argument("invert_laplace_talbot: t must be positive");
  if (terms < 4) throw std::invalid_argument("invert_laplace_talbot: terms must be >= 4");
  // Fixed Talbot contour (Abate & Valko): s(theta) = r*theta*(cot(theta) + i),
  // theta in (-pi, pi), with r = 2*M/(5t). Midpoint rule over theta > 0,
  // doubling the real part by conjugate symmetry, plus the theta = 0 term.
  const int M = terms;
  const double r = 2.0 * static_cast<double>(M) / (5.0 * t);

  // theta = 0 term: s = r, ds/dtheta contributes weight 0.5 * e^{rt} F(r).
  double acc = 0.5 * std::exp(r * t) * F(std::complex<double>(r, 0.0)).real();

  for (int k = 1; k < M; ++k) {
    const double theta = static_cast<double>(k) * M_PI / static_cast<double>(M);
    const double cot = std::cos(theta) / std::sin(theta);
    const std::complex<double> s(r * theta * cot, r * theta);
    // sigma(theta) = theta + (theta*cot - 1)*cot  — the contour derivative factor.
    const double sigma = theta + (theta * cot - 1.0) * cot;
    const std::complex<double> integrand =
        std::exp(s * t) * F(s) * std::complex<double>(1.0, sigma);
    acc += integrand.real();
  }
  return acc * r / static_cast<double>(M);
}

}  // namespace relmore::util
