#include "relmore/util/integrate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace relmore::util {

namespace {

// Dormand–Prince 5(4) tableau.
constexpr double kC[7] = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
constexpr double kA[7][6] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
};
constexpr double kB5[7] = {35.0 / 384,     0.0,  500.0 / 1113, 125.0 / 192,
                           -2187.0 / 6784, 11.0 / 84, 0.0};
constexpr double kB4[7] = {5179.0 / 57600,  0.0,        7571.0 / 16695, 393.0 / 640,
                           -92097.0 / 339200, 187.0 / 2100, 1.0 / 40};

}  // namespace

std::vector<double> integrate_ode(
    const OdeRhs& f, double t0, std::vector<double> y0, double t1, const OdeOptions& opts,
    const std::function<void(double, const std::vector<double>&)>& observe) {
  if (t1 < t0) throw std::invalid_argument("integrate_ode: t1 < t0");
  const std::size_t n = y0.size();
  std::vector<double> y = std::move(y0);
  if (observe) observe(t0, y);
  if (t1 == t0) return y;

  double h = opts.initial_step > 0.0 ? opts.initial_step : (t1 - t0) / 1000.0;
  if (opts.max_step > 0.0) h = std::min(h, opts.max_step);
  double t = t0;

  std::vector<std::vector<double>> k(7, std::vector<double>(n));
  std::vector<double> ytmp(n);
  std::vector<double> y5(n);
  std::vector<double> y4(n);

  for (std::size_t step = 0; step < opts.max_steps; ++step) {
    if (t >= t1) return y;
    h = std::min(h, t1 - t);

    f(t, y, k[0]);
    for (int s = 1; s < 7; ++s) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (int j = 0; j < s; ++j) acc += h * kA[s][j] * k[static_cast<std::size_t>(j)][i];
        ytmp[i] = acc;
      }
      f(t + kC[s] * h, ytmp, k[static_cast<std::size_t>(s)]);
    }
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc5 = y[i];
      double acc4 = y[i];
      for (int s = 0; s < 7; ++s) {
        acc5 += h * kB5[s] * k[static_cast<std::size_t>(s)][i];
        acc4 += h * kB4[s] * k[static_cast<std::size_t>(s)][i];
      }
      y5[i] = acc5;
      y4[i] = acc4;
      const double sc = opts.abs_tol + opts.rel_tol * std::max(std::abs(y[i]), std::abs(acc5));
      const double e = (acc5 - acc4) / sc;
      err += e * e;
    }
    err = std::sqrt(err / static_cast<double>(n));

    if (err <= 1.0) {
      t += h;
      y.swap(y5);
      if (observe) observe(t, y);
    }
    const double safety = 0.9;
    double factor = err > 0.0 ? safety * std::pow(err, -0.2) : 5.0;
    factor = std::clamp(factor, 0.2, 5.0);
    h *= factor;
    if (opts.max_step > 0.0) h = std::min(h, opts.max_step);
    if (h < 1e-16 * (t1 - t0)) throw std::runtime_error("integrate_ode: step underflow");
  }
  throw std::runtime_error("integrate_ode: max step count exceeded");
}

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa, double b, double fb,
                double m, double fm, double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) return left + right + delta / 15.0;
  return adaptive(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate_quad(const std::function<double(double)>& f, double a, double b, double tol,
                      int max_depth) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

}  // namespace relmore::util
