#include "relmore/util/roots.hpp"

#include <algorithm>
#include <cmath>

namespace relmore::util {

namespace {

bool opposite_signs(double fa, double fb) {
  return (fa <= 0.0 && fb >= 0.0) || (fa >= 0.0 && fb <= 0.0);
}

}  // namespace

std::optional<double> bisect(const std::function<double(double)>& f, double a, double b,
                             const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (!opposite_signs(fa, fb)) return std::nullopt;
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  for (int i = 0; i < opts.max_iter; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0 || std::abs(b - a) < opts.x_tol ||
        (opts.f_tol > 0.0 && std::abs(fm) <= opts.f_tol)) {
      return m;
    }
    if (opposite_signs(fa, fm)) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  return 0.5 * (a + b);
}

std::optional<double> brent(const std::function<double(double)>& f, double a, double b,
                            const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (!opposite_signs(fa, fb)) return std::nullopt;
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;

  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;  // step taken two iterations ago
  double e = d;      // step taken last iteration

  for (int iter = 0; iter < opts.max_iter; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
                       0.5 * opts.x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 ||
        (opts.f_tol > 0.0 && std::abs(fb) <= opts.f_tol)) {
      return b;
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m;  // bisection
      e = m;
    } else {
      double p;
      double q;
      const double s = fb / fa;
      if (a == c) {
        // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // inverse quadratic interpolation
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
  }
  return b;
}

std::optional<double> find_root_forward(const std::function<double(double)>& f, double a,
                                        double initial_step, double growth, int max_expand,
                                        const RootOptions& opts) {
  if (initial_step <= 0.0) return std::nullopt;
  double lo = a;
  double flo = f(lo);
  if (flo == 0.0) return lo;
  double step = initial_step;
  for (int i = 0; i < max_expand; ++i) {
    const double hi = lo + step;
    const double fhi = f(hi);
    if ((flo <= 0.0 && fhi >= 0.0) || (flo >= 0.0 && fhi <= 0.0)) {
      return brent(f, lo, hi, opts);
    }
    lo = hi;
    flo = fhi;
    step *= growth;
  }
  return std::nullopt;
}

}  // namespace relmore::util
