#include "relmore/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace relmore::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(fmt(v, precision));
  add_row(std::move(out));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << v;
  return ss.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) w[c] = std::max(w[c], row[c].size());
  }
  if (!title.empty()) os << "## " << title << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(w[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace relmore::util
