#include "relmore/util/minimize.hpp"

#include <cmath>
#include <stdexcept>

namespace relmore::util {

MinimizeResult minimize_golden(const std::function<double(double)>& f, double a, double b,
                               double x_tol, int max_iter) {
  if (b < a) throw std::invalid_argument("minimize_golden: b < a");
  constexpr double kInvPhi = 0.6180339887498949;
  MinimizeResult out;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  out.evaluations = 2;
  for (int i = 0; i < max_iter && (b - a) > x_tol; ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++out.evaluations;
  }
  if (f1 <= f2) {
    out.x = x1;
    out.f = f1;
  } else {
    out.x = x2;
    out.f = f2;
  }
  return out;
}

CoordinateDescentResult minimize_coordinate_descent(
    const std::function<double(const std::vector<double>&)>& f, std::vector<double> x0,
    const std::vector<double>& lo, const std::vector<double>& hi,
    const CoordinateDescentOptions& opts) {
  const std::size_t n = x0.size();
  if (lo.size() != n || hi.size() != n) {
    throw std::invalid_argument("minimize_coordinate_descent: bound size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (hi[i] < lo[i]) throw std::invalid_argument("minimize_coordinate_descent: hi < lo");
    if (x0[i] < lo[i] || x0[i] > hi[i]) {
      throw std::invalid_argument("minimize_coordinate_descent: x0 out of bounds");
    }
  }
  CoordinateDescentResult out;
  out.x = std::move(x0);
  out.f = f(out.x);
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    out.sweeps = sweep + 1;
    const double before = out.f;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double>& x = out.x;
      const auto line = [&](double xi) {
        const double saved = x[i];
        x[i] = xi;
        const double v = f(x);
        x[i] = saved;
        return v;
      };
      const MinimizeResult m = minimize_golden(line, lo[i], hi[i], opts.x_tol);
      if (m.f < out.f) {
        x[i] = m.x;
        out.f = m.f;
      }
    }
    if (before - out.f < opts.f_tol * (1.0 + std::abs(before))) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace relmore::util
