#include "relmore/util/diagnostics.hpp"

namespace relmore::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kEmptyTree: return "empty-tree";
    case ErrorCode::kInvalidParent: return "invalid-parent";
    case ErrorCode::kCycle: return "cycle";
    case ErrorCode::kDuplicateName: return "duplicate-name";
    case ErrorCode::kNegativeValue: return "negative-value";
    case ErrorCode::kNonFiniteValue: return "non-finite-value";
    case ErrorCode::kZeroTotalCapacitance: return "zero-total-capacitance";
    case ErrorCode::kSizeLimit: return "size-limit";
    case ErrorCode::kDepthLimit: return "depth-limit";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kValueOutOfRange: return "value-out-of-range";
    case ErrorCode::kNonFiniteMoment: return "non-finite-moment";
    case ErrorCode::kNegativeMoment: return "negative-moment";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kPrunedSection: return "pruned-section";
    case ErrorCode::kTransactionState: return "transaction-state";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kInjectedFault: return "injected-fault";
  }
  return "unknown";
}

const char* fault_policy_name(FaultPolicy policy) {
  switch (policy) {
    case FaultPolicy::kThrow: return "throw";
    case FaultPolicy::kClampAndFlag: return "clamp-and-flag";
    case FaultPolicy::kSkipAndFlag: return "skip-and-flag";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = warning ? "warning [" : "error [";
  out += error_code_name(code);
  out += "]";
  if (!net.empty()) out += " in net '" + net + "'";
  if (node >= 0) {
    out += " at node " + std::to_string(node);
    if (!path.empty()) out += " (" + path + ")";
  }
  if (line >= 0) out += " at line " + std::to_string(line);
  out += ": " + message;
  return out;
}

std::string Status::to_string() const {
  if (is_ok()) return "";
  std::string out = "[";
  out += error_code_name(code_);
  out += "]";
  if (!net_.empty()) out += " net '" + net_ + "'";
  if (node_ >= 0) out += " node " + std::to_string(node_);
  if (line_ >= 0) out += " line " + std::to_string(line_);
  out += ": " + message_;
  return out;
}

Status DiagnosticsReport::to_status() const {
  for (const Diagnostic& d : entries_) {
    if (!d.warning) {
      return Status(d.code, d.to_string(), d.node, d.line).with_net(d.net);
    }
  }
  return Status::ok();
}

std::string DiagnosticsReport::to_string() const {
  std::string out;
  for (const Diagnostic& d : entries_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace relmore::util
