#include "relmore/opt/wire_sizing.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "relmore/eed/eed.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/minimize.hpp"

namespace relmore::opt {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

void check_problem(const WireSizingProblem& p) {
  if (p.segments < 1) throw std::invalid_argument("wire sizing: segments must be >= 1");
  if (p.width_min <= 0.0 || p.width_max < p.width_min) {
    throw std::invalid_argument("wire sizing: bad width bounds");
  }
}

circuit::SectionValues segment_values(const WireSizingProblem& p, double width) {
  if (width <= 0.0) throw std::invalid_argument("wire sizing: non-positive width");
  const double r = p.unit_resistance / width;
  const double l =
      p.unit_inductance * std::max(0.1, 1.0 - p.inductance_width_slope * std::log(width));
  const double c = p.unit_area_cap * width + p.unit_fringe_cap;
  return {r, l, c};
}

double delay_from_node(const eed::NodeModel& nm, DelayModel model) {
  switch (model) {
    case DelayModel::kWyattRc:
      return eed::wyatt_delay_50(nm.sum_rc);
    case DelayModel::kEquivalentElmore:
      return eed::delay_50(nm);
  }
  throw std::logic_error("wire sizing: unknown delay model");
}

}  // namespace

RlcTree build_sized_line(const WireSizingProblem& problem, const std::vector<double>& widths) {
  check_problem(problem);
  if (widths.size() != static_cast<std::size_t>(problem.segments)) {
    throw std::invalid_argument("build_sized_line: width count mismatch");
  }
  RlcTree tree;
  SectionId prev = tree.add_section(circuit::kInput,
                                    {problem.driver_resistance, 0.0, 0.0}, "driver");
  for (int i = 0; i < problem.segments; ++i) {
    const double w = widths[static_cast<std::size_t>(i)];
    prev = tree.add_section(prev, segment_values(problem, w), "seg" + std::to_string(i));
  }
  tree.add_section(prev, {1.0, 1e-14, problem.load_capacitance}, "load");
  return tree;
}

double sized_line_delay(const WireSizingProblem& problem, const std::vector<double>& widths,
                        DelayModel model) {
  const RlcTree tree = build_sized_line(problem, widths);
  const auto sink = static_cast<SectionId>(tree.size() - 1);
  const eed::TreeModel tm = eed::analyze(tree);
  return delay_from_node(tm.at(sink), model);
}

WireSizingResult optimize_wire_sizing(const WireSizingProblem& problem, DelayModel model) {
  check_problem(problem);
  const auto n = static_cast<std::size_t>(problem.segments);
  const std::vector<double> lo(n, problem.width_min);
  const std::vector<double> hi(n, problem.width_max);
  std::vector<double> x0(n, 1.0);
  for (double& w : x0) w = std::clamp(w, problem.width_min, problem.width_max);

  // Engine session over one tree for the whole search. Coordinate descent
  // probes one width at a time, so each objective evaluation edits only
  // the segments that moved since the previous probe — an O(path) delta
  // update instead of a per-probe tree rebuild and whole-line re-analysis.
  // Section ids: 0 = driver, 1..segments = wire, last = load (the sink).
  engine::TimingEngine eng(build_sized_line(problem, x0));
  const auto sink = static_cast<SectionId>(eng.size() - 1);
  std::vector<double> current = x0;
  const auto objective = [&](const std::vector<double>& widths) {
    for (std::size_t i = 0; i < n; ++i) {
      if (widths[i] != current[i]) {
        eng.set_section_values(static_cast<SectionId>(i) + 1,
                               segment_values(problem, widths[i]));
        current[i] = widths[i];
      }
    }
    return delay_from_node(eng.node(sink), model);
  };
  util::CoordinateDescentOptions opts;
  opts.max_sweeps = 40;
  opts.x_tol = 1e-4;
  const util::CoordinateDescentResult r =
      util::minimize_coordinate_descent(objective, std::move(x0), lo, hi, opts);

  WireSizingResult out;
  out.widths = r.x;
  out.delay = r.f;
  out.sweeps = r.sweeps;
  out.converged = r.converged;
  return out;
}

}  // namespace relmore::opt
