#include "relmore/opt/wire_sizing.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "relmore/eed/eed.hpp"
#include "relmore/util/minimize.hpp"

namespace relmore::opt {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

void check_problem(const WireSizingProblem& p) {
  if (p.segments < 1) throw std::invalid_argument("wire sizing: segments must be >= 1");
  if (p.width_min <= 0.0 || p.width_max < p.width_min) {
    throw std::invalid_argument("wire sizing: bad width bounds");
  }
}

}  // namespace

RlcTree build_sized_line(const WireSizingProblem& problem, const std::vector<double>& widths) {
  check_problem(problem);
  if (widths.size() != static_cast<std::size_t>(problem.segments)) {
    throw std::invalid_argument("build_sized_line: width count mismatch");
  }
  RlcTree tree;
  SectionId prev = tree.add_section(circuit::kInput,
                                    {problem.driver_resistance, 0.0, 0.0}, "driver");
  for (int i = 0; i < problem.segments; ++i) {
    const double w = widths[static_cast<std::size_t>(i)];
    if (w <= 0.0) throw std::invalid_argument("build_sized_line: non-positive width");
    const double r = problem.unit_resistance / w;
    const double l =
        problem.unit_inductance * std::max(0.1, 1.0 - problem.inductance_width_slope *
                                                          std::log(w));
    const double c = problem.unit_area_cap * w + problem.unit_fringe_cap;
    prev = tree.add_section(prev, {r, l, c}, "seg" + std::to_string(i));
  }
  tree.add_section(prev, {1.0, 1e-14, problem.load_capacitance}, "load");
  return tree;
}

double sized_line_delay(const WireSizingProblem& problem, const std::vector<double>& widths,
                        DelayModel model) {
  const RlcTree tree = build_sized_line(problem, widths);
  const auto sink = static_cast<SectionId>(tree.size() - 1);
  const eed::TreeModel tm = eed::analyze(tree);
  const eed::NodeModel& nm = tm.at(sink);
  switch (model) {
    case DelayModel::kWyattRc:
      return eed::wyatt_delay_50(nm.sum_rc);
    case DelayModel::kEquivalentElmore:
      return eed::delay_50(nm);
  }
  throw std::logic_error("sized_line_delay: unknown model");
}

WireSizingResult optimize_wire_sizing(const WireSizingProblem& problem, DelayModel model) {
  check_problem(problem);
  const auto n = static_cast<std::size_t>(problem.segments);
  const std::vector<double> lo(n, problem.width_min);
  const std::vector<double> hi(n, problem.width_max);
  std::vector<double> x0(n, 1.0);
  for (double& w : x0) w = std::clamp(w, problem.width_min, problem.width_max);

  const auto objective = [&](const std::vector<double>& widths) {
    return sized_line_delay(problem, widths, model);
  };
  util::CoordinateDescentOptions opts;
  opts.max_sweeps = 40;
  opts.x_tol = 1e-4;
  const util::CoordinateDescentResult r =
      util::minimize_coordinate_descent(objective, std::move(x0), lo, hi, opts);

  WireSizingResult out;
  out.widths = r.x;
  out.delay = r.f;
  out.sweeps = r.sweeps;
  out.converged = r.converged;
  return out;
}

}  // namespace relmore::opt
