#include "relmore/opt/wire_sizing.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/minimize.hpp"

namespace relmore::opt {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

void check_problem(const WireSizingProblem& p) {
  if (p.segments < 1) throw std::invalid_argument("wire sizing: segments must be >= 1");
  if (p.width_min <= 0.0 || p.width_max < p.width_min) {
    throw std::invalid_argument("wire sizing: bad width bounds");
  }
}

circuit::SectionValues segment_values(const WireSizingProblem& p, double width) {
  if (width <= 0.0) throw std::invalid_argument("wire sizing: non-positive width");
  const double r = p.unit_resistance / width;
  const double l =
      p.unit_inductance * std::max(0.1, 1.0 - p.inductance_width_slope * std::log(width));
  const double c = p.unit_area_cap * width + p.unit_fringe_cap;
  return {r, l, c};
}

double delay_from_node(const eed::NodeModel& nm, DelayModel model) {
  switch (model) {
    case DelayModel::kWyattRc:
      return eed::wyatt_delay_50(nm.sum_rc);
    case DelayModel::kEquivalentElmore:
      return eed::delay_50(nm);
  }
  throw std::logic_error("wire sizing: unknown delay model");
}

}  // namespace

RlcTree build_sized_line(const WireSizingProblem& problem, const std::vector<double>& widths) {
  check_problem(problem);
  if (widths.size() != static_cast<std::size_t>(problem.segments)) {
    throw std::invalid_argument("build_sized_line: width count mismatch");
  }
  RlcTree tree;
  SectionId prev = tree.add_section(circuit::kInput,
                                    {problem.driver_resistance, 0.0, 0.0}, "driver");
  for (int i = 0; i < problem.segments; ++i) {
    const double w = widths[static_cast<std::size_t>(i)];
    prev = tree.add_section(prev, segment_values(problem, w), "seg" + std::to_string(i));
  }
  tree.add_section(prev, {1.0, 1e-14, problem.load_capacitance}, "load");
  return tree;
}

double sized_line_delay(const WireSizingProblem& problem, const std::vector<double>& widths,
                        DelayModel model) {
  const RlcTree tree = build_sized_line(problem, widths);
  const auto sink = static_cast<SectionId>(tree.size() - 1);
  const eed::TreeModel tm = eed::analyze(tree);
  return delay_from_node(tm.at(sink), model);
}

std::vector<double> sized_line_delays(const WireSizingProblem& problem,
                                      const std::vector<std::vector<double>>& candidates,
                                      DelayModel model, engine::BatchAnalyzer* pool) {
  check_problem(problem);
  if (candidates.empty()) return {};
  const auto n = static_cast<std::size_t>(problem.segments);
  for (const auto& w : candidates) {
    if (w.size() != n) throw std::invalid_argument("sized_line_delays: width count mismatch");
  }
  // Driver (id 0) and load (last id) are width-independent; only the
  // segment sections 1..n vary per candidate.
  engine::BatchedAnalyzer batch(circuit::FlatTree(build_sized_line(problem, candidates[0])));
  const auto sink = static_cast<SectionId>(batch.sections() - 1);
  batch.resize(candidates.size());
  for (std::size_t s = 1; s < candidates.size(); ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      batch.set_section(s, static_cast<SectionId>(i) + 1,
                        segment_values(problem, candidates[s][i]));
    }
  }
  const engine::BatchedModels models = batch.analyze_nodes({sink}, pool);
  std::vector<double> delays(candidates.size());
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    delays[s] = delay_from_node(models.node(s, sink), model);
  }
  return delays;
}

WireSizingResult optimize_wire_sizing(const WireSizingProblem& problem, DelayModel model) {
  check_problem(problem);
  const auto n = static_cast<std::size_t>(problem.segments);
  const std::vector<double> lo(n, problem.width_min);
  const std::vector<double> hi(n, problem.width_max);
  std::vector<double> x0(n, 1.0);
  for (double& w : x0) w = std::clamp(w, problem.width_min, problem.width_max);

  // Engine session over one tree for the whole search. Coordinate descent
  // probes one width at a time, so each objective evaluation edits only
  // the segments that moved since the previous probe — an O(path) delta
  // update instead of a per-probe tree rebuild and whole-line re-analysis.
  // Section ids: 0 = driver, 1..segments = wire, last = load (the sink).
  engine::TimingEngine eng(build_sized_line(problem, x0));
  const auto sink = static_cast<SectionId>(eng.size() - 1);
  std::vector<double> current = x0;
  const auto objective = [&](const std::vector<double>& widths) {
    for (std::size_t i = 0; i < n; ++i) {
      if (widths[i] != current[i]) {
        eng.set_section_values(static_cast<SectionId>(i) + 1,
                               segment_values(problem, widths[i]));
        current[i] = widths[i];
      }
    }
    return delay_from_node(eng.node(sink), model);
  };
  util::CoordinateDescentOptions opts;
  opts.max_sweeps = 40;
  opts.x_tol = 1e-4;
  const util::CoordinateDescentResult r =
      util::minimize_coordinate_descent(objective, std::move(x0), lo, hi, opts);

  WireSizingResult out;
  out.widths = r.x;
  out.delay = r.f;
  out.sweeps = r.sweeps;
  out.converged = r.converged;
  return out;
}

WireSizingResult optimize_wire_sizing_batched(const WireSizingProblem& problem, DelayModel model,
                                              const BatchedSizingOptions& opts) {
  check_problem(problem);
  if (opts.grid < 2 || opts.refinements < 1 || opts.max_sweeps < 1) {
    throw std::invalid_argument("optimize_wire_sizing_batched: bad options");
  }
  const auto n = static_cast<std::size_t>(problem.segments);
  const auto grid = static_cast<std::size_t>(opts.grid);
  std::vector<double> x(n, std::clamp(1.0, problem.width_min, problem.width_max));
  double f = sized_line_delays(problem, {x}, model)[0];

  WireSizingResult out;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const double f_before = f;
    for (std::size_t j = 0; j < n; ++j) {
      double lo = problem.width_min;
      double hi = problem.width_max;
      double best_w = x[j];
      std::vector<std::vector<double>> candidates(grid, x);
      for (int round = 0; round < opts.refinements && hi - lo > opts.x_tol; ++round) {
        const double step = (hi - lo) / static_cast<double>(grid - 1);
        for (std::size_t k = 0; k < grid; ++k) {
          candidates[k][j] = lo + step * static_cast<double>(k);
        }
        const std::vector<double> delays = sized_line_delays(problem, candidates, model);
        std::size_t k_best = 0;
        for (std::size_t k = 1; k < grid; ++k) {
          if (delays[k] < delays[k_best]) k_best = k;
        }
        const double w_best = candidates[k_best][j];
        if (delays[k_best] < f) {
          f = delays[k_best];
          best_w = w_best;
        }
        lo = std::max(problem.width_min, w_best - step);
        hi = std::min(problem.width_max, w_best + step);
      }
      x[j] = best_w;
    }
    out.sweeps = sweep + 1;
    if (f_before - f < opts.f_tol) {
      out.converged = true;
      break;
    }
  }
  out.widths = std::move(x);
  out.delay = f;
  return out;
}

}  // namespace relmore::opt
