#pragma once

/// \file wire_sizing.hpp
/// Continuous wire sizing under the closed-form delay models — the
/// optimization workload the paper positions its continuous expressions
/// for (§IV; prior RC art: Cong/Leung [18], Cong/He [23], Sapatnekar [22]).
///
/// Width model per segment at width w (w = 1 is the reference wire):
///   R(w) = r / w                (sheet resistance)
///   L(w) = l * (1 - ll * ln w)  (weak logarithmic width dependence)
///   C(w) = c_area * w + c_fringe
/// Delay is evaluated with either the Wyatt RC model or the Equivalent
/// Elmore Delay, and minimized by coordinate descent over the per-segment
/// widths. Comparing the two optima against the simulator quantifies the
/// cost of ignoring inductance during sizing.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::engine {
class BatchAnalyzer;
}

namespace relmore::opt {

/// Which closed-form delay drives the optimizer.
enum class DelayModel {
  kWyattRc,           ///< ln2 * (sum RC) — inductance-blind baseline
  kEquivalentElmore,  ///< paper eq. 35
};

/// A uniform line to be sized, segment by segment.
struct WireSizingProblem {
  int segments = 8;
  double unit_resistance = 40.0;       ///< ohm per segment at w = 1
  double unit_inductance = 0.8e-9;     ///< H per segment at w = 1
  double inductance_width_slope = 0.1; ///< ll in L(w) = l (1 - ll ln w)
  double unit_area_cap = 40e-15;       ///< F per segment per unit width
  double unit_fringe_cap = 25e-15;     ///< F per segment, width-independent
  double driver_resistance = 25.0;     ///< ohm at the source
  double load_capacitance = 80e-15;    ///< F at the sink
  double width_min = 0.5;
  double width_max = 6.0;
};

/// Builds the RLC tree for a given width assignment (driver modeled as a
/// zero-length series resistance, load as a final capacitive stub).
/// The sink is the last section.
[[nodiscard]] circuit::RlcTree build_sized_line(const WireSizingProblem& problem,
                                  const std::vector<double>& widths);

/// Closed-form sink delay of a width assignment under the chosen model.
[[nodiscard]] double sized_line_delay(const WireSizingProblem& problem, const std::vector<double>& widths,
                        DelayModel model);

/// Sink delays of many width assignments at once. Every candidate shares
/// the driver/segments/load line topology and differs only in the segment
/// values, so the whole sweep is one batched same-topology kernel call
/// (engine::BatchedAnalyzer, lane-per-candidate) instead of
/// candidates.size() tree builds + scalar analyses. `pool` (optional)
/// fans lane-groups across its workers. Each result is bitwise equal to
/// `sized_line_delay` of that candidate.
[[nodiscard]] std::vector<double> sized_line_delays(const WireSizingProblem& problem,
                                      const std::vector<std::vector<double>>& candidates,
                                      DelayModel model,
                                      engine::BatchAnalyzer* pool = nullptr);

/// Result of a sizing run.
struct WireSizingResult {
  std::vector<double> widths;
  double delay = 0.0;  ///< model delay at the optimum
  int sweeps = 0;
  bool converged = false;
};

/// Minimizes the sink delay over per-segment widths with coordinate
/// descent from the all-ones start.
[[nodiscard]] WireSizingResult optimize_wire_sizing(const WireSizingProblem& problem, DelayModel model);

/// Options for the batched-sweep optimizer.
struct BatchedSizingOptions {
  int max_sweeps = 40;
  int grid = 8;         ///< candidate widths evaluated per refinement round
  int refinements = 4;  ///< bracket-shrink rounds per coordinate
  double x_tol = 1e-4;  ///< stop refining a coordinate below this bracket size
  double f_tol = 1e-12; ///< stop sweeping when a full sweep improves less
};

/// Coordinate descent whose per-coordinate line search is a shrinking
/// *grid* evaluated through `sized_line_delays`: each refinement round
/// scores `grid` candidate widths in one batched kernel call instead of a
/// chain of sequential golden-section probes. Same minima as
/// `optimize_wire_sizing` on the smooth sizing objectives, but the probe
/// evaluations vectorize lane-per-candidate.
[[nodiscard]] WireSizingResult optimize_wire_sizing_batched(const WireSizingProblem& problem, DelayModel model,
                                              const BatchedSizingOptions& opts = {});

}  // namespace relmore::opt
