#pragma once

/// \file driver.hpp
/// Linearized gate/driver models for the synthesis use cases (paper §IV:
/// buffer insertion, wire sizing). A driver is the standard switch-level
/// abstraction: output resistance + input capacitance + intrinsic delay,
/// with the usual 1/size and *size scaling.

#include <vector>

namespace relmore::opt {

/// Linearized CMOS driver/repeater.
struct Driver {
  double output_resistance = 0.0;  ///< ohm
  double input_capacitance = 0.0;  ///< farad
  double intrinsic_delay = 0.0;    ///< seconds added per stage

  /// Scaled copy: R/size, C*size, same intrinsic delay (first order).
  [[nodiscard]] Driver sized(double size) const;
};

/// A minimum-size reference inverter in a generic fast process.
Driver unit_inverter();

/// Geometrically sized driver library {1x, 2x, 4x, ... } with `count`
/// entries starting from `base`.
std::vector<Driver> geometric_library(const Driver& base, int count);

}  // namespace relmore::opt
