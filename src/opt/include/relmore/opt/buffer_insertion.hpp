#pragma once

/// \file buffer_insertion.hpp
/// Buffer (repeater) insertion on a long wire with discrete slot
/// positions — the van Ginneken-style use case the paper cites ([27],
/// [28]). Each candidate solution selects a subset of slots to buffer;
/// the path delay is the sum of per-stage delays (driver + wire + next
/// stage's input load) evaluated under a chosen closed-form model, and
/// the simulator scores the same solutions for fidelity analysis:
/// a model with high fidelity ranks candidates in the same order the
/// simulator does, even when its absolute numbers are off (paper §I).

#include <cstdint>
#include <vector>

#include "relmore/circuit/segmentation.hpp"
#include "relmore/opt/driver.hpp"
#include "relmore/opt/wire_sizing.hpp"  // DelayModel

namespace relmore::opt {

/// A line with `slots` equally spaced candidate buffer positions.
struct BufferInsertionProblem {
  circuit::WireSpec wire;       ///< total wire
  int slots = 6;                ///< candidate positions (excluding source)
  Driver buffer;                ///< repeater inserted at a chosen slot
  double source_resistance = 30.0;
  double sink_capacitance = 50e-15;
  int segments_per_span = 4;    ///< lumped sections per inter-slot span
};

/// One candidate: buffered[i] says whether slot i holds a repeater.
struct BufferSolution {
  std::vector<bool> buffered;
  double delay = 0.0;  ///< under the model that produced/evaluated it
};

/// Path delay of a candidate under a closed-form model: stages are the
/// maximal unbuffered wire spans; each stage is an RLC line driven by the
/// previous stage's driver and loaded by the next stage's input cap.
[[nodiscard]] double evaluate_solution(const BufferInsertionProblem& problem,
                         const std::vector<bool>& buffered, DelayModel model);

/// Same path delay measured with the transient simulator stage by stage
/// (linearized drivers), summing measured stage 50% delays.
[[nodiscard]] double evaluate_solution_simulated(const BufferInsertionProblem& problem,
                                   const std::vector<bool>& buffered);

/// Exhaustively enumerates all 2^slots candidates (slots <= 20) and
/// returns the model-optimal one.
[[nodiscard]] BufferSolution optimize_buffers_exhaustive(const BufferInsertionProblem& problem,
                                           DelayModel model);

/// Fidelity of a model on this problem: Spearman rank correlation between
/// the model's ranking of all candidates and the simulator's. 1.0 means
/// the model always picks the same order.
[[nodiscard]] double ranking_fidelity(const BufferInsertionProblem& problem, DelayModel model,
                        int max_candidates = 64);

}  // namespace relmore::opt
