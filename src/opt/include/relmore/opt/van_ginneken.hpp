#pragma once

/// \file van_ginneken.hpp
/// Van Ginneken's buffer-insertion dynamic program on RLC trees — the
/// paper's most-cited downstream application ([27] van Ginneken'90, [28]
/// Alpert'97). The classic DP maximizes the required arrival time (RAT) at
/// the source under the *additive* Elmore RC delay, propagating Pareto
/// candidate lists (load, RAT) bottom-up and optionally inserting a buffer
/// at every section boundary.
///
/// Inductance breaks additivity, so the DP itself runs on the RC model
/// (as all industrial implementations did); this module then *rescores*
/// any buffering under the Equivalent Elmore Delay, stage by stage, which
/// is exactly how the paper positions its contribution: a drop-in delay
/// evaluator with RC-Elmore ergonomics but RLC awareness.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/opt/driver.hpp"
#include "relmore/opt/wire_sizing.hpp"  // DelayModel

namespace relmore::opt {

/// Result of the DP.
struct VanGinnekenResult {
  /// buffered[k] == true: a buffer is inserted at section k's downstream
  /// node (driving the subtree below it).
  std::vector<bool> buffered;
  /// Maximized required arrival time at the source (more positive = more
  /// slack; sinks default to RAT 0, so this is minus the worst path delay).
  double source_rat = 0.0;
  int buffer_count = 0;
  /// Number of Pareto candidates examined (complexity diagnostics).
  std::size_t candidates_explored = 0;
};

/// Runs the DP. `sink_rat[i]` gives the required time at section i (only
/// leaf entries are read; pass {} for all-zero). `source_resistance`
/// models the root driver when computing the final source RAT.
[[nodiscard]] VanGinnekenResult van_ginneken(const circuit::RlcTree& tree, const Driver& buffer,
                               double source_resistance,
                               const std::vector<double>& sink_rat = {});

/// Worst-sink path delay of a buffered tree under a closed-form model:
/// buffers split the tree into stages; each stage's sink delays come from
/// the chosen model; path delays accumulate stage by stage.
[[nodiscard]] double evaluate_buffered_tree(const circuit::RlcTree& tree, const std::vector<bool>& buffered,
                              const Driver& buffer, double source_resistance,
                              DelayModel model);

}  // namespace relmore::opt
