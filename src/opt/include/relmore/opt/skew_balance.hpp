#pragma once

/// \file skew_balance.hpp
/// Clock-skew balancing by sink-wire sizing: narrow the final wire section
/// of every fast sink until its closed-form delay matches the slowest
/// sink's. The delay is continuous and monotone in the section width
/// (paper §IV's argument for analytic expressions inside optimizers), so
/// each sink reduces to a bracketed root find.
///
/// Width model for the tuned section (same as opt::wire_sizing): R/w and a
/// weak L(w) = L·(1 − ll·ln w); the section capacitance is treated as
/// load-dominated and left fixed.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::opt {

struct SkewBalanceOptions {
  double width_min = 0.25;             ///< narrowest allowed sink wire
  double inductance_width_slope = 0.1; ///< ll in L(w) = L (1 - ll ln w)
  double tolerance = 1e-5;             ///< relative delay-match tolerance
};

struct SkewBalanceResult {
  double skew_before = 0.0;
  double skew_after = 0.0;
  /// Width applied to each sink's final section (1.0 = untouched);
  /// indexed by position in tree.leaves().
  std::vector<double> sink_widths;
};

/// Balances the tree in place. Returns the before/after skew under the
/// closed-form EED delay. Throws std::invalid_argument for trees without
/// sinks or non-positive option values.
[[nodiscard]] SkewBalanceResult balance_skew(circuit::RlcTree& tree,
                               const SkewBalanceOptions& opts = {});

}  // namespace relmore::opt
