#pragma once

/// \file path_timing.hpp
/// Static-timing-style path walking on top of the closed forms: stages are
/// chained driver+tree hops, and each stage's *output edge rate* becomes
/// the next stage's *input ramp* — the non-step-input capability the
/// paper's Section IV procedure exists for ("the Laplace transform of the
/// input is multiplied by the second-order transfer function"). Stage
/// delay is measured 50%-of-input to 50%-of-output, the STA convention.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"

namespace relmore::opt {

/// One hop of a path: a tree driven at its input, observed at `sink`.
struct PathStage {
  circuit::RlcTree tree;
  circuit::SectionId sink = circuit::kInput;
  double intrinsic_delay = 0.0;  ///< gate delay added before the wire
};

/// Timing of one stage after slew propagation.
struct StageTiming {
  double zeta = 0.0;
  double input_rise = 0.0;   ///< ramp rise time applied at the stage input
  double delay = 0.0;        ///< 50%(input) -> 50%(output), + intrinsic
  double output_rise = 0.0;  ///< 10-90% of the stage output
};

/// Whole-path result.
struct PathTiming {
  double total_delay = 0.0;
  std::vector<StageTiming> stages;
};

/// Stage delay and output rise for a linear-ramp input with the given rise
/// time (0 = ideal step), computed from the closed-form ramp response.
[[nodiscard]] StageTiming time_stage(const eed::NodeModel& node, double input_rise_seconds);

/// Walks the path: stage k is driven by a ramp whose rise time equals
/// stage k-1's output rise (stage 0 sees `first_input_rise`, default step).
[[nodiscard]] PathTiming time_path(const std::vector<PathStage>& stages, double first_input_rise = 0.0);

}  // namespace relmore::opt
