#include "relmore/opt/path_timing.hpp"

#include <cmath>
#include <stdexcept>

#include "relmore/eed/eed.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/roots.hpp"

namespace relmore::opt {

namespace {

/// First upward crossing of `level` by the closed-form ramp response.
double ramp_crossing(const eed::NodeModel& node, double rise, double level) {
  const auto f = [&](double t) {
    return eed::ramp_input_response(node, t, 1.0, rise) - level;
  };
  // Characteristic time scale: the larger of the input rise and the
  // node's own delay sets the bracket growth.
  const double scale = std::max(rise, std::max(eed::delay_50(node), 1e-18));
  const auto root = util::find_root_forward(f, 0.0, 0.05 * scale, 1.6, 400);
  if (!root) throw std::runtime_error("time_stage: response never crossed level");
  return *root;
}

}  // namespace

StageTiming time_stage(const eed::NodeModel& node, double input_rise_seconds) {
  if (input_rise_seconds < 0.0) {
    throw std::invalid_argument("time_stage: negative input rise");
  }
  StageTiming out;
  out.zeta = node.zeta;
  out.input_rise = input_rise_seconds;
  if (input_rise_seconds == 0.0) {
    out.delay = eed::delay_50(node);
    out.output_rise = eed::rise_time(node);
    return out;
  }
  const double t50_out = ramp_crossing(node, input_rise_seconds, 0.5);
  const double t50_in = 0.5 * input_rise_seconds;
  out.delay = t50_out - t50_in;
  const double t10 = ramp_crossing(node, input_rise_seconds, 0.1);
  const double t90 = ramp_crossing(node, input_rise_seconds, 0.9);
  out.output_rise = t90 - t10;
  return out;
}

PathTiming time_path(const std::vector<PathStage>& stages, double first_input_rise) {
  if (stages.empty()) throw std::invalid_argument("time_path: empty path");
  PathTiming out;
  double rise = first_input_rise;
  for (const PathStage& st : stages) {
    if (st.tree.empty()) throw std::invalid_argument("time_path: stage with empty tree");
    // Engine session per stage: only the stage's sink node is needed, so
    // the downward pass is a single O(depth) prefix walk.
    const engine::TimingEngine eng(st.tree);
    StageTiming timing = time_stage(eng.node(st.sink), rise);
    timing.delay += st.intrinsic_delay;
    out.total_delay += timing.delay;
    rise = timing.output_rise;
    out.stages.push_back(timing);
  }
  return out;
}

}  // namespace relmore::opt
