#include "relmore/opt/van_ginneken.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "relmore/eed/eed.hpp"
#include "relmore/engine/timing_engine.hpp"

namespace relmore::opt {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

/// One DP candidate: downstream load and required arrival time seen from
/// the current point, plus the buffer assignment that achieves it.
struct Candidate {
  double load = 0.0;
  double rat = 0.0;
  std::vector<bool> buffered;  // over all sections
};

/// Keeps only Pareto-optimal candidates: sort by load ascending and drop
/// any whose RAT does not strictly improve on a lighter candidate.
void prune(std::vector<Candidate>& cands) {
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.load != b.load) return a.load < b.load;
    return a.rat > b.rat;
  });
  std::vector<Candidate> kept;
  double best_rat = -std::numeric_limits<double>::infinity();
  for (auto& c : cands) {
    if (c.rat > best_rat) {
      best_rat = c.rat;
      kept.push_back(std::move(c));
    }
  }
  cands = std::move(kept);
}

}  // namespace

VanGinnekenResult van_ginneken(const RlcTree& tree, const Driver& buffer,
                               double source_resistance,
                               const std::vector<double>& sink_rat) {
  if (tree.empty()) throw std::invalid_argument("van_ginneken: empty tree");
  if (!sink_rat.empty() && sink_rat.size() != tree.size()) {
    throw std::invalid_argument("van_ginneken: sink_rat size mismatch");
  }
  const std::size_t n = tree.size();
  std::vector<std::vector<Candidate>> node_cands(n);
  VanGinnekenResult result;

  // Bottom-up over sections (children have larger ids).
  for (std::size_t ii = n; ii-- > 0;) {
    const auto id = static_cast<SectionId>(ii);
    const auto& children = tree.children(id);
    std::vector<Candidate> cands;

    if (children.empty()) {
      Candidate c;
      c.load = 0.0;  // the node's own C is charged through its section below
      c.rat = sink_rat.empty() ? 0.0 : sink_rat[ii];
      c.buffered.assign(n, false);
      cands.push_back(std::move(c));
    } else {
      // Merge children candidate lists: loads add, RATs take the minimum.
      cands = node_cands[static_cast<std::size_t>(children[0])];
      for (std::size_t ci = 1; ci < children.size(); ++ci) {
        const auto& other = node_cands[static_cast<std::size_t>(children[ci])];
        std::vector<Candidate> merged;
        merged.reserve(cands.size() * other.size());
        for (const Candidate& a : cands) {
          for (const Candidate& b : other) {
            Candidate m;
            m.load = a.load + b.load;
            m.rat = std::min(a.rat, b.rat);
            m.buffered = a.buffered;
            for (std::size_t k = 0; k < n; ++k) {
              if (b.buffered[k]) m.buffered[k] = true;
            }
            merged.push_back(std::move(m));
          }
        }
        cands = std::move(merged);
        prune(cands);
      }
      // Free the children lists early.
      for (SectionId c : children) node_cands[static_cast<std::size_t>(c)].clear();

      // Buffer option at this node (drives the merged subtree).
      std::vector<Candidate> with_buffer;
      for (const Candidate& c : cands) {
        Candidate b = c;
        b.rat = c.rat - buffer.intrinsic_delay - buffer.output_resistance * c.load;
        b.load = buffer.input_capacitance;
        b.buffered[ii] = true;
        with_buffer.push_back(std::move(b));
      }
      cands.insert(cands.end(), std::make_move_iterator(with_buffer.begin()),
                   std::make_move_iterator(with_buffer.end()));
      prune(cands);
    }

    // Propagate up through section ii: the wire charges its own node cap
    // plus the downstream load through R_ii (lumped-section Elmore term).
    const auto& v = tree.section(id).v;
    for (Candidate& c : cands) {
      c.load += v.capacitance;
      c.rat -= v.resistance * c.load;
    }
    prune(cands);
    result.candidates_explored += cands.size();
    node_cands[ii] = std::move(cands);
  }

  // Combine root sections at the input node, then subtract the source
  // driver's own delay.
  std::vector<Candidate> top = node_cands[static_cast<std::size_t>(tree.roots()[0])];
  for (std::size_t ri = 1; ri < tree.roots().size(); ++ri) {
    const auto& other = node_cands[static_cast<std::size_t>(tree.roots()[ri])];
    std::vector<Candidate> merged;
    for (const Candidate& a : top) {
      for (const Candidate& b : other) {
        Candidate m;
        m.load = a.load + b.load;
        m.rat = std::min(a.rat, b.rat);
        m.buffered = a.buffered;
        for (std::size_t k = 0; k < n; ++k) {
          if (b.buffered[k]) m.buffered[k] = true;
        }
        merged.push_back(std::move(m));
      }
    }
    top = std::move(merged);
    prune(top);
  }

  double best = -std::numeric_limits<double>::infinity();
  const Candidate* best_cand = nullptr;
  for (const Candidate& c : top) {
    const double q = c.rat - source_resistance * c.load;
    if (q > best) {
      best = q;
      best_cand = &c;
    }
  }
  if (best_cand == nullptr) throw std::logic_error("van_ginneken: no candidates");
  result.source_rat = best;
  result.buffered = best_cand->buffered;
  result.buffer_count = static_cast<int>(
      std::count(result.buffered.begin(), result.buffered.end(), true));
  return result;
}

namespace {

/// Builds the stage tree rooted at `driver_r` driving the sections below
/// `start_children`, cutting at buffered nodes (which appear as the buffer
/// input capacitance). Records which original sections ended the stage
/// with a buffer, and the mapping original section -> stage section.
struct Stage {
  RlcTree tree;
  std::vector<SectionId> stage_id;        ///< per original section, -1 if absent
  std::vector<SectionId> buffer_roots;    ///< original sections whose node holds a buffer
};

Stage build_stage(const RlcTree& tree, const std::vector<bool>& buffered,
                  const Driver& buffer, double driver_r,
                  const std::vector<SectionId>& start_children) {
  Stage st;
  st.stage_id.assign(tree.size(), circuit::kInput);
  const SectionId drv = st.tree.add_section(circuit::kInput, {driver_r, 0.0, 0.0}, "drv");
  // DFS copying sections until (and including) buffered nodes.
  struct Item {
    SectionId orig;
    SectionId parent_in_stage;
  };
  std::vector<Item> stack;
  for (SectionId c : start_children) stack.push_back({c, drv});
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const auto& s = tree.section(it.orig);
    circuit::SectionValues v = s.v;
    const bool is_buffer = buffered[static_cast<std::size_t>(it.orig)];
    if (is_buffer) v.capacitance += buffer.input_capacitance;
    const SectionId sid = st.tree.add_section(it.parent_in_stage, v, s.name);
    st.stage_id[static_cast<std::size_t>(it.orig)] = sid;
    if (is_buffer) {
      st.buffer_roots.push_back(it.orig);
      continue;  // the stage ends here; downstream belongs to the next stage
    }
    for (SectionId c : tree.children(it.orig)) stack.push_back({c, sid});
  }
  return st;
}

double stage_delay_at(const engine::TimingEngine& eng, const Stage& st, SectionId orig,
                      DelayModel model) {
  const SectionId sid = st.stage_id[static_cast<std::size_t>(orig)];
  const eed::NodeModel nm = eng.node(sid);
  return model == DelayModel::kWyattRc ? eed::wyatt_delay_50(nm.sum_rc) : eed::delay_50(nm);
}

}  // namespace

double evaluate_buffered_tree(const RlcTree& tree, const std::vector<bool>& buffered,
                              const Driver& buffer, double source_resistance,
                              DelayModel model) {
  if (buffered.size() != tree.size()) {
    throw std::invalid_argument("evaluate_buffered_tree: buffered size mismatch");
  }
  for (std::size_t k = 0; k < tree.size(); ++k) {
    if (buffered[k] && tree.children(static_cast<SectionId>(k)).empty()) {
      throw std::invalid_argument("evaluate_buffered_tree: buffer at a leaf drives nothing");
    }
  }
  // BFS over stages: (stage start children, accumulated delay at the
  // stage's driver input).
  struct Work {
    std::vector<SectionId> children;
    double driver_r;
    double arrival;
  };
  std::vector<Work> queue{{tree.roots(), source_resistance, 0.0}};
  double worst_sink = 0.0;
  while (!queue.empty()) {
    const Work w = queue.back();
    queue.pop_back();
    const Stage st = build_stage(tree, buffered, buffer, w.driver_r, w.children);
    // One engine session per stage: the stage is analyzed once and every
    // sink/buffer query below is an O(depth) prefix walk, instead of one
    // whole-stage re-analysis per queried node.
    const engine::TimingEngine eng(st.tree);
    // Real sinks inside this stage: leaves of the original tree reached
    // without crossing a buffer.
    for (std::size_t k = 0; k < tree.size(); ++k) {
      const auto id = static_cast<SectionId>(k);
      if (st.stage_id[k] == circuit::kInput) continue;
      if (buffered[k]) continue;
      if (!tree.children(id).empty()) continue;
      worst_sink = std::max(worst_sink, w.arrival + stage_delay_at(eng, st, id, model));
    }
    // Next stages start below each buffer.
    for (SectionId b : st.buffer_roots) {
      const double arrive =
          w.arrival + stage_delay_at(eng, st, b, model) + buffer.intrinsic_delay;
      queue.push_back({tree.children(b), buffer.output_resistance, arrive});
    }
  }
  return worst_sink;
}

}  // namespace relmore::opt
