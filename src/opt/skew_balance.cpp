#include "relmore/opt/skew_balance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "relmore/analysis/report.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/engine/timing_engine.hpp"
#include "relmore/util/roots.hpp"

namespace relmore::opt {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

/// Applies width w to a section whose nominal values are `nominal`.
void apply_width(RlcTree& tree, SectionId s, const circuit::SectionValues& nominal, double w,
                 double ll) {
  auto& v = tree.values(s);
  v.resistance = nominal.resistance / w;
  v.inductance = nominal.inductance * std::max(0.1, 1.0 - ll * std::log(w));
  // capacitance: load-dominated, left at nominal.
}

}  // namespace

SkewBalanceResult balance_skew(RlcTree& tree, const SkewBalanceOptions& opts) {
  if (opts.width_min <= 0.0 || opts.width_min >= 1.0 || opts.tolerance <= 0.0) {
    throw std::invalid_argument("balance_skew: bad options");
  }
  const auto sinks = tree.leaves();
  if (sinks.empty()) throw std::invalid_argument("balance_skew: tree has no sinks");

  const analysis::SkewSummary before = analysis::sink_skew(tree);
  SkewBalanceResult result;
  result.skew_before = before.skew();
  result.sink_widths.assign(sinks.size(), 1.0);

  // Engine session: each width probe edits one sink section (R/L only, an
  // O(1) delta) and queries that sink (O(depth)), instead of re-analyzing
  // the whole clock tree per probe. The caller's tree is kept in lock-step
  // so it carries the final widths out.
  engine::TimingEngine eng(tree);
  const auto set_width = [&](SectionId s, const circuit::SectionValues& nominal, double w) {
    apply_width(tree, s, nominal, w, opts.inductance_width_slope);
    eng.set_section_values(s, tree.section(s).v);
  };

  const double target = before.max_delay;
  for (std::size_t si = 0; si < sinks.size(); ++si) {
    const SectionId s = sinks[si];
    const circuit::SectionValues nominal = tree.section(s).v;
    if (nominal.resistance <= 0.0) continue;  // nothing to size

    const auto delay_at = [&](double w) {
      set_width(s, nominal, w);
      return eng.delay_50(s);
    };
    const double d1 = delay_at(1.0);
    if (d1 >= target * (1.0 - opts.tolerance)) {
      set_width(s, nominal, 1.0);
      continue;  // already the slowest (or close enough)
    }
    // Narrowing raises R hence the delay; find w in [width_min, 1] with
    // delay == target. If even the narrowest width cannot reach it, clamp.
    const double d_min_w = delay_at(opts.width_min);
    if (d_min_w < target) {
      result.sink_widths[si] = opts.width_min;
      continue;  // clamped; apply_width already left width_min in place
    }
    const auto f = [&](double w) { return delay_at(w) - target; };
    const auto root = util::brent(f, opts.width_min, 1.0);
    const double w = root.value_or(opts.width_min);
    set_width(s, nominal, w);
    result.sink_widths[si] = w;
  }

  result.skew_after = analysis::sink_skew(tree).skew();
  return result;
}

}  // namespace relmore::opt
