#include "relmore/opt/driver.hpp"

#include <stdexcept>

namespace relmore::opt {

Driver Driver::sized(double size) const {
  if (size <= 0.0) throw std::invalid_argument("Driver::sized: size must be positive");
  return {output_resistance / size, input_capacitance * size, intrinsic_delay};
}

Driver unit_inverter() { return {2000.0, 1e-15, 10e-12}; }

std::vector<Driver> geometric_library(const Driver& base, int count) {
  if (count < 1) throw std::invalid_argument("geometric_library: count must be >= 1");
  std::vector<Driver> lib;
  lib.reserve(static_cast<std::size_t>(count));
  double size = 1.0;
  for (int i = 0; i < count; ++i) {
    lib.push_back(base.sized(size));
    size *= 2.0;
  }
  return lib;
}

}  // namespace relmore::opt
