#include "relmore/opt/buffer_insertion.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/sim/flat_stepper.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::opt {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

void check_problem(const BufferInsertionProblem& p) {
  if (p.slots < 1 || p.slots > 20) {
    throw std::invalid_argument("buffer insertion: slots must be in [1, 20]");
  }
  if (p.segments_per_span < 1) {
    throw std::invalid_argument("buffer insertion: segments_per_span must be >= 1");
  }
  if (p.wire.length_m <= 0.0) {
    throw std::invalid_argument("buffer insertion: wire length must be positive");
  }
}

/// One stage: spans consecutive unbuffered slots. Described by its driver
/// resistance, number of inter-slot spans of wire, and the load cap at the
/// far end (next buffer's input or the sink).
struct Stage {
  double driver_resistance = 0.0;
  int spans = 0;
  double load_capacitance = 0.0;
  bool ends_in_buffer = false;
  bool buffer_driven = false;  ///< driven by an inserted buffer, not the source
};

std::vector<Stage> decompose(const BufferInsertionProblem& p,
                             const std::vector<bool>& buffered) {
  if (buffered.size() != static_cast<std::size_t>(p.slots)) {
    throw std::invalid_argument("buffer insertion: candidate size mismatch");
  }
  std::vector<Stage> stages;
  Stage cur;
  cur.driver_resistance = p.source_resistance;
  cur.spans = 0;
  // Slot i sits after span i (spans = slots + 1 total, last span ends at
  // the sink).
  for (int slot = 0; slot < p.slots; ++slot) {
    ++cur.spans;
    if (buffered[static_cast<std::size_t>(slot)]) {
      cur.load_capacitance = p.buffer.input_capacitance;
      cur.ends_in_buffer = true;
      stages.push_back(cur);
      cur = Stage{};
      cur.driver_resistance = p.buffer.output_resistance;
      cur.buffer_driven = true;
    }
  }
  ++cur.spans;  // final span to the sink
  cur.load_capacitance = p.sink_capacitance;
  cur.ends_in_buffer = false;
  stages.push_back(cur);
  return stages;
}

/// Builds the RLC tree of one stage; returns (tree, sink id).
RlcTree stage_tree(const BufferInsertionProblem& p, const Stage& st, SectionId* sink) {
  const int total_spans = p.slots + 1;
  circuit::WireSpec span = p.wire;
  span.length_m = p.wire.length_m * static_cast<double>(st.spans) /
                  static_cast<double>(total_spans);
  RlcTree tree;
  const SectionId drv =
      tree.add_section(circuit::kInput, {st.driver_resistance, 0.0, 0.0}, "drv");
  const SectionId far =
      circuit::append_wire(tree, drv, span, p.segments_per_span * st.spans, "w");
  const SectionId load = tree.add_section(far, {1.0, 1e-14, st.load_capacitance}, "load");
  if (sink != nullptr) *sink = load;
  return tree;
}

double stage_delay_model(const BufferInsertionProblem& p, const Stage& st, DelayModel model) {
  SectionId sink = circuit::kInput;
  const RlcTree tree = stage_tree(p, st, &sink);
  const eed::TreeModel tm = eed::analyze(tree);
  const eed::NodeModel& nm = tm.at(sink);
  const double wire_delay = model == DelayModel::kWyattRc ? eed::wyatt_delay_50(nm.sum_rc)
                                                          : eed::delay_50(nm);
  return wire_delay + (st.ends_in_buffer ? p.buffer.intrinsic_delay : 0.0);
}

double stage_delay_simulated(const BufferInsertionProblem& p, const Stage& st) {
  SectionId sink = circuit::kInput;
  const RlcTree tree = stage_tree(p, st, &sink);
  const eed::TreeModel tm = eed::analyze(tree);
  // Explicit horizon from the stage's Elmore-based delay estimate; the
  // streaming crossing probe replaces full n x steps recording (the delay
  // value is bit-identical to the old measure_rising(waveform).delay_50).
  const double horizon = 20.0 * std::max(eed::delay_50(tm.at(sink)), 1e-12);
  sim::TransientOptions opts;
  opts.t_stop = horizon;
  opts.dt = horizon / 20000.0;
  const double d =
      sim::simulate_first_crossings(circuit::FlatTree(tree), sim::StepSource{1.0}, opts, {sink},
                                    0.5)
          .front();
  if (d < 0.0) throw std::runtime_error("stage_delay_simulated: no 50% crossing in horizon");
  return d + (st.ends_in_buffer ? p.buffer.intrinsic_delay : 0.0);
}

// A stage circuit is fully described by (driver kind, span count,
// terminating load), so all 2^slots candidates draw their stage delays
// from at most 4·(slots+1) distinct circuits. The search loops below
// evaluate that table once — fanned across the BatchAnalyzer pool — and
// then score candidates with pure lookups.

std::size_t stage_key(const Stage& st) {
  return (static_cast<std::size_t>(st.spans) - 1) * 4 +
         (st.buffer_driven ? 2u : 0u) + (st.ends_in_buffer ? 1u : 0u);
}

std::vector<Stage> distinct_stages(const BufferInsertionProblem& p) {
  std::vector<Stage> stages(4 * static_cast<std::size_t>(p.slots + 1));
  for (int spans = 1; spans <= p.slots + 1; ++spans) {
    for (int drv = 0; drv < 2; ++drv) {
      for (int ends = 0; ends < 2; ++ends) {
        Stage st;
        st.spans = spans;
        st.buffer_driven = drv == 1;
        st.driver_resistance =
            st.buffer_driven ? p.buffer.output_resistance : p.source_resistance;
        st.ends_in_buffer = ends == 1;
        st.load_capacitance =
            st.ends_in_buffer ? p.buffer.input_capacitance : p.sink_capacitance;
        stages[stage_key(st)] = st;
      }
    }
  }
  return stages;
}

std::vector<double> model_delay_table(const BufferInsertionProblem& p, DelayModel model) {
  const std::vector<Stage> stages = distinct_stages(p);
  std::vector<double> table(stages.size());
  // The four stage variants that share a span count also share the wire's
  // topology *and* values — only the driver resistance and terminating
  // load capacitance differ. One 4-lane batched kernel call per span
  // count therefore replaces four scalar tree builds + analyses; the pool
  // fans the span counts (independent topologies) across cores.
  engine::BatchAnalyzer pool;
  pool.parallel_for(static_cast<std::size_t>(p.slots) + 1, [&](std::size_t span_idx) {
    SectionId sink = circuit::kInput;
    const std::size_t key0 = span_idx * 4;  // stage_key with drv = ends = 0
    const RlcTree base = stage_tree(p, stages[key0], &sink);
    engine::BatchedAnalyzer batch(circuit::FlatTree(base), 4);
    batch.resize(4);
    for (std::size_t variant = 1; variant < 4; ++variant) {
      const Stage& st = stages[key0 + variant];
      batch.set_section(variant, 0, {st.driver_resistance, 0.0, 0.0});
      batch.set_section(variant, sink, {1.0, 1e-14, st.load_capacitance});
    }
    // Lane-groups: a single 4-lane group — run inline (the outer
    // parallel_for already owns the pool; nested jobs are unsupported).
    const engine::BatchedModels models = batch.analyze_nodes({sink});
    for (std::size_t variant = 0; variant < 4; ++variant) {
      const Stage& st = stages[key0 + variant];
      const eed::NodeModel nm = models.node(variant, sink);
      const double wire_delay = model == DelayModel::kWyattRc ? eed::wyatt_delay_50(nm.sum_rc)
                                                              : eed::delay_50(nm);
      table[key0 + variant] = wire_delay + (st.ends_in_buffer ? p.buffer.intrinsic_delay : 0.0);
    }
  });
  return table;
}

std::vector<double> sim_delay_table(const BufferInsertionProblem& p) {
  const std::vector<Stage> stages = distinct_stages(p);
  std::vector<double> table(stages.size());
  engine::BatchAnalyzer pool;
  pool.parallel_for(stages.size(),
                    [&](std::size_t i) { table[i] = stage_delay_simulated(p, stages[i]); });
  return table;
}

double candidate_delay(const BufferInsertionProblem& p, const std::vector<bool>& cand,
                       const std::vector<double>& table) {
  double total = 0.0;
  for (const Stage& st : decompose(p, cand)) total += table[stage_key(st)];
  return total;
}

}  // namespace

double evaluate_solution(const BufferInsertionProblem& problem,
                         const std::vector<bool>& buffered, DelayModel model) {
  check_problem(problem);
  double total = 0.0;
  for (const Stage& st : decompose(problem, buffered)) {
    total += stage_delay_model(problem, st, model);
  }
  return total;
}

double evaluate_solution_simulated(const BufferInsertionProblem& problem,
                                   const std::vector<bool>& buffered) {
  check_problem(problem);
  double total = 0.0;
  for (const Stage& st : decompose(problem, buffered)) {
    total += stage_delay_simulated(problem, st);
  }
  return total;
}

BufferSolution optimize_buffers_exhaustive(const BufferInsertionProblem& problem,
                                           DelayModel model) {
  check_problem(problem);
  const auto n = static_cast<std::uint32_t>(problem.slots);
  const std::vector<double> table = model_delay_table(problem, model);
  BufferSolution best;
  best.delay = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> cand(n);
    for (std::uint32_t i = 0; i < n; ++i) cand[i] = (mask >> i) & 1u;
    const double d = candidate_delay(problem, cand, table);
    if (d < best.delay) {
      best.delay = d;
      best.buffered = std::move(cand);
    }
  }
  return best;
}

double ranking_fidelity(const BufferInsertionProblem& problem, DelayModel model,
                        int max_candidates) {
  check_problem(problem);
  const auto n = static_cast<std::uint32_t>(problem.slots);
  const std::uint32_t total = 1u << n;
  // Deterministically subsample the candidate space when it is large.
  const std::uint32_t stride = std::max(1u, total / static_cast<std::uint32_t>(max_candidates));
  const std::vector<double> closed_form = model_delay_table(problem, model);
  const std::vector<double> simulated = sim_delay_table(problem);
  std::vector<double> model_delay;
  std::vector<double> sim_delay;
  for (std::uint32_t mask = 0; mask < total; mask += stride) {
    std::vector<bool> cand(n);
    for (std::uint32_t i = 0; i < n; ++i) cand[i] = (mask >> i) & 1u;
    model_delay.push_back(candidate_delay(problem, cand, closed_form));
    sim_delay.push_back(candidate_delay(problem, cand, simulated));
  }
  // Spearman rank correlation.
  const auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (std::size_t pos = 0; pos < idx.size(); ++pos) r[idx[pos]] = static_cast<double>(pos);
    return r;
  };
  const std::vector<double> ra = ranks(model_delay);
  const std::vector<double> rb = ranks(sim_delay);
  const double m = static_cast<double>(ra.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (m * (m * m - 1.0));
}

}  // namespace relmore::opt
