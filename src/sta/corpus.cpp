#include "relmore/sta/corpus.hpp"

#include <map>
#include <utility>

#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/tuner.hpp"

namespace relmore::sta {

using circuit::SectionId;
using util::ErrorCode;
using util::FaultPolicy;
using util::Result;
using util::Status;

namespace {

/// The phase never unwinds across workers: kThrow is resolved at the join.
FaultPolicy phase_policy(FaultPolicy requested) {
  return requested == FaultPolicy::kThrow ? FaultPolicy::kSkipAndFlag : requested;
}

/// Extracts the tap-node models of one net from a full TreeModel.
void fill_from_model(const Net& net, const eed::TreeModel& model, NetModels& out) {
  out.taps.resize(net.taps.size());
  bool any_tap_fault = false;
  for (std::size_t t = 0; t < net.taps.size(); ++t) {
    out.taps[t] = model.at(net.taps[t].node);
    any_tap_fault = any_tap_fault || model.faulted(net.taps[t].node);
  }
  // A fault anywhere in the tree poisons root-path sums; flag the net even
  // when no tap node carries a flag bit itself.
  if (!model.fault_free()) {
    out.faulted = true;
    out.status = Status(ErrorCode::kNonFiniteMoment,
                        "net has " + std::to_string(model.fault_count) + " faulted node(s)")
                     .with_net(net.name);
  }
  (void)any_tap_fault;
}

}  // namespace

Result<CorpusModels> analyze_corpus_checked(const Design& design, const AnalyzeOptions& options) {
  if (design.nets.empty()) {
    return Status(ErrorCode::kEmptyTree, "analyze_corpus: design has no nets");
  }
  if (options.lane_width != 0 && options.lane_width != 1 && options.lane_width != 2 &&
      options.lane_width != 4 && options.lane_width != 8) {
    return Status(ErrorCode::kInvalidArgument, "analyze_corpus: lane width must be 1, 2, 4, or 8");
  }
  const FaultPolicy policy = phase_policy(options.fault_policy);
  const std::size_t n_nets = design.nets.size();
  CorpusModels out;
  out.nets.resize(n_nets);

  // --- bin nets: topology groups vs scalar singles -------------------------
  // Exact parent-vector keying: only structurally identical trees share a
  // batched kernel (values are per-lane). std::map keeps group iteration
  // order deterministic.
  std::map<std::vector<SectionId>, std::vector<int>> groups;
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    if (design.nets[ni].flat.empty()) {
      out.nets[ni].faulted = true;
      out.nets[ni].status =
          Status(ErrorCode::kEmptyTree, "net has an empty tree").with_net(design.nets[ni].name);
      continue;
    }
    groups[design.nets[ni].flat.parent()].push_back(static_cast<int>(ni));
  }

  std::vector<int> scalar_nets;
  std::vector<const std::vector<int>*> batched_groups;
  const std::size_t min_group = options.min_group == 0 ? 2 : options.min_group;
  for (const auto& [key, members] : groups) {
    if (members.size() >= min_group) {
      batched_groups.push_back(&members);
    } else {
      scalar_nets.insert(scalar_nets.end(), members.begin(), members.end());
    }
  }

  engine::BatchAnalyzer pool(options.threads);

  // --- scalar path: one net per task, slot-per-net writes ------------------
  const eed::AnalyzeOptions scalar_opts{policy};
  pool.parallel_for(scalar_nets.size(), [&](std::size_t k) {
    const int ni = scalar_nets[k];
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
    Result<eed::TreeModel> model = eed::analyze_checked(net.flat, scalar_opts);
    if (!model.is_ok()) {
      slot.faulted = true;
      slot.status = model.status().with_net(net.name);
      return;
    }
    fill_from_model(net, model.value(), slot);
  });

  // --- batched path: one AoSoA lane per net of a topology group ------------
  for (const std::vector<int>* group : batched_groups) {
    const Net& first = design.nets[static_cast<std::size_t>(group->front())];
    // Default execution plan comes from the kernel tuner, sized to this
    // group's (sections, nets) shape; an explicit options.lane_width wins
    // and leaves tile selection to the analyzer. Neither choice changes
    // an output bit.
    std::size_t width = options.lane_width;
    std::size_t tile_rows = 0;
    if (width == 0) {
      const engine::KernelPlan plan =
          engine::KernelTuner::instance().analysis_plan(first.flat.size(), group->size());
      width = plan.lane_width;
      tile_rows = plan.tile_rows;
    }
    Result<engine::BatchedAnalyzer> batch_r =
        engine::BatchedAnalyzer::create_checked(first.flat, width);
    if (!batch_r.is_ok()) {
      // Topology rejected (e.g. validate limits): every member degrades to
      // the scalar verdict rather than silently vanishing.
      for (const int ni : *group) {
        NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
        slot.faulted = true;
        slot.status = batch_r.status().with_net(design.nets[static_cast<std::size_t>(ni)].name);
      }
      continue;
    }
    engine::BatchedAnalyzer batch = std::move(batch_r).value();
    batch.set_fault_policy(policy);
    batch.set_tile_rows(tile_rows);
    batch.resize(group->size());
    pool.parallel_for(group->size(), [&](std::size_t s) {
      const Net& net = design.nets[static_cast<std::size_t>((*group)[s])];
      batch.set_sample(s, net.flat.resistance().data(), net.flat.inductance().data(),
                       net.flat.capacitance().data());
    });

    // Tap-node union across the group (taps differ per net even when the
    // wire topology matches).
    std::vector<SectionId> ids;
    std::vector<char> seen(first.flat.size(), 0);
    for (const int ni : *group) {
      for (const Net::Tap& tap : design.nets[static_cast<std::size_t>(ni)].taps) {
        if (!seen[static_cast<std::size_t>(tap.node)]) {
          seen[static_cast<std::size_t>(tap.node)] = 1;
          ids.push_back(tap.node);
        }
      }
    }
    if (ids.empty()) ids.push_back(static_cast<SectionId>(first.flat.size() - 1));

    const engine::BatchedModels models = batch.analyze_nodes(ids, &pool);
    for (std::size_t s = 0; s < group->size(); ++s) {
      const int ni = (*group)[s];
      const Net& net = design.nets[static_cast<std::size_t>(ni)];
      NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
      if (models.faulted(s)) {
        slot.faulted = true;
        slot.status = Status(ErrorCode::kNonFiniteMoment, "net faulted in batched analysis")
                          .with_net(net.name);
        continue;
      }
      slot.taps.resize(net.taps.size());
      for (std::size_t t = 0; t < net.taps.size(); ++t) {
        slot.taps[t] = models.node(s, net.taps[t].node);
      }
      ++out.batched_nets;
    }
  }

  // --- join: apply the requested policy ------------------------------------
  for (const NetModels& slot : out.nets) {
    if (slot.faulted) ++out.faulted_nets;
  }
  if (options.fault_policy == FaultPolicy::kThrow && out.faulted_nets > 0) {
    for (const NetModels& slot : out.nets) {
      if (slot.faulted) return slot.status;  // first faulted net, by index
    }
  }
  return out;
}

}  // namespace relmore::sta
