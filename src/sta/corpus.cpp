#include "relmore/sta/corpus.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <thread>
#include <utility>

#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/tuner.hpp"

namespace relmore::sta {

using circuit::SectionId;
using util::ErrorCode;
using util::FaultPolicy;
using util::Result;
using util::Status;

namespace {

/// The phase never unwinds across workers: kThrow is resolved at the join.
FaultPolicy phase_policy(FaultPolicy requested) {
  return requested == FaultPolicy::kThrow ? FaultPolicy::kSkipAndFlag : requested;
}

/// Extracts the tap-node models of one net from a full TreeModel.
void fill_from_model(const Net& net, const eed::TreeModel& model, NetModels& out) {
  out.taps.resize(net.taps.size());
  for (std::size_t t = 0; t < net.taps.size(); ++t) {
    out.taps[t] = model.at(net.taps[t].node);
  }
  // A fault anywhere in the tree poisons root-path sums; flag the net even
  // when no tap node carries a flag bit itself.
  if (!model.fault_free()) {
    out.faulted = true;
    out.status = Status(ErrorCode::kNonFiniteMoment,
                        "net has " + std::to_string(model.fault_count) + " faulted node(s)")
                     .with_net(net.name);
  }
}

/// Sorts a phase exception into the degradation ladder's two bins.
/// Returns true for *transient* failures worth retrying — resource
/// exhaustion (allocation failed under pressure) and injected pool
/// faults. Everything else (data faults, logic errors) is final:
/// rerunning a pure function on the same bits cannot heal it.
bool classify_exception(const std::exception_ptr& ep, Status* status) {
  try {
    std::rethrow_exception(ep);
  } catch (const util::FaultError& e) {
    *status = e.status();
    return e.code() == ErrorCode::kInjectedFault || e.code() == ErrorCode::kResourceExhausted;
  } catch (const std::bad_alloc&) {
    *status = Status(ErrorCode::kResourceExhausted, "workspace allocation failed");
    return true;
  } catch (const std::exception& e) {
    *status = Status(ErrorCode::kInvalidArgument, e.what());
    return false;
  } catch (...) {
    *status = Status(ErrorCode::kInvalidArgument, "unknown exception in analysis phase");
    return false;
  }
}

/// Capped exponential backoff before retry `attempt` (1-based): 1, 2,
/// then 4 ms flat. Transient pressure needs breathing room; a corpus pass
/// must not stall for long either.
void backoff(std::size_t attempt) {
  const std::size_t shift = attempt < 3 ? attempt - 1 : 2;
  std::this_thread::sleep_for(std::chrono::milliseconds(std::size_t{1} << shift));
}

}  // namespace

const NetModels* CorpusCache::find(std::size_t net_index, std::uint64_t epoch,
                                   std::uint64_t fingerprint) {
  if (net_index < slots_.size()) {
    const Slot& slot = slots_[net_index];
    if (slot.valid && slot.epoch == epoch && slot.fingerprint == fingerprint) {
      ++counters_.hits;
      return &slot.models;
    }
  }
  ++counters_.misses;
  return nullptr;
}

void CorpusCache::store(std::size_t net_index, std::uint64_t epoch, std::uint64_t fingerprint,
                        NetModels models) {
  if (net_index >= slots_.size()) slots_.resize(net_index + 1);
  Slot& slot = slots_[net_index];
  slot.valid = true;
  slot.epoch = epoch;
  slot.fingerprint = fingerprint;
  slot.models = std::move(models);
  ++counters_.stores;
}

void CorpusCache::clear() {
  slots_.clear();
  counters_ = Counters{};
}

std::uint64_t options_fingerprint(const AnalyzeOptions& options) {
  // Phase policy is the only knob that could steer the result today, and
  // normalization folds kThrow into kSkipAndFlag; see the header comment.
  return 0x51a0'0000ULL + static_cast<std::uint64_t>(phase_policy(options.fault_policy));
}

Result<CorpusModels> analyze_corpus_checked(const Design& design, const AnalyzeOptions& options) {
  if (design.nets.empty()) {
    return Status(ErrorCode::kEmptyTree, "analyze_corpus: design has no nets");
  }
  if (options.lane_width != 0 && options.lane_width != 1 && options.lane_width != 2 &&
      options.lane_width != 4 && options.lane_width != 8) {
    return Status(ErrorCode::kInvalidArgument, "analyze_corpus: lane width must be 1, 2, 4, or 8");
  }
  const FaultPolicy policy = phase_policy(options.fault_policy);
  const std::size_t attempts = options.max_attempts == 0 ? 1 : options.max_attempts;
  const util::RunControl rc{options.deadline, options.cancel};
  const std::size_t n_nets = design.nets.size();
  CorpusModels out;
  out.nets.resize(n_nets);

  // Stop latch: the first task/phase that observes a tripped deadline or
  // cancellation CASes the code in; everyone else reads the latch (one
  // relaxed load) instead of re-deriving a possibly different verdict.
  std::atomic<std::uint8_t> stop{0};
  const auto corpus_stopped = [&]() -> bool {
    if (stop.load(std::memory_order_relaxed) != 0) return true;
    if (!rc.armed()) return false;
    const ErrorCode code = rc.stop_code();
    if (code == ErrorCode::kOk) return false;
    std::uint8_t expected = 0;
    stop.compare_exchange_strong(expected, static_cast<std::uint8_t>(code),
                                 std::memory_order_relaxed);
    return true;
  };

  // --- cache probe: serve epoch-matched nets without scheduling them -------
  // A hit copies the stored verdict and removes the net from both the
  // scalar and batched bins below, so an untouched same-topology group
  // skips its batched kernel entirely. Only healthy decided verdicts are
  // ever stored (see CorpusCache), so a hit is exactly the bits an
  // uncached run would produce.
  const std::uint64_t fingerprint = options_fingerprint(options);
  std::vector<char> cached(n_nets, 0);
  if (options.cache != nullptr) {
    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      const NetModels* slot = options.cache->find(ni, design.nets[ni].epoch, fingerprint);
      if (slot != nullptr) {
        out.nets[ni] = *slot;
        cached[ni] = 1;
        ++out.cache_hits;
      } else {
        ++out.cache_misses;
      }
    }
  }

  // --- bin nets: topology groups vs scalar singles -------------------------
  // Exact parent-vector keying: only structurally identical trees share a
  // batched kernel (values are per-lane). std::map keeps group iteration
  // order deterministic.
  std::map<std::vector<SectionId>, std::vector<int>> groups;
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    if (cached[ni] != 0) continue;
    if (design.nets[ni].flat.empty()) {
      out.nets[ni].faulted = true;
      out.nets[ni].status =
          Status(ErrorCode::kEmptyTree, "net has an empty tree").with_net(design.nets[ni].name);
      continue;
    }
    groups[design.nets[ni].flat.parent()].push_back(static_cast<int>(ni));
  }

  std::vector<int> scalar_nets;
  std::vector<const std::vector<int>*> batched_groups;
  const std::size_t min_group = options.min_group == 0 ? 2 : options.min_group;
  for (const auto& [key, members] : groups) {
    if (members.size() >= min_group) {
      batched_groups.push_back(&members);
    } else {
      scalar_nets.insert(scalar_nets.end(), members.begin(), members.end());
    }
  }

  engine::BatchAnalyzer pool(options.threads);

  // --- scalar ladder: rounds of one-net tasks, retrying transients ---------
  // A round leaves a net's slot either decided (analyzed and/or faulted)
  // or untouched — a task killed by a transient (its exception surfaces at
  // the join) or skipped at a stop writes nothing, so "still undecided"
  // is exactly the retry set. Quarantine is the ladder's floor: a net
  // still failing after the budget is marked faulted with the last
  // transient's status and poisons only its own timing cone.
  const eed::AnalyzeOptions scalar_opts{policy};
  const auto scalar_round = [&](const std::vector<int>& pending) -> std::exception_ptr {
    try {
      pool.parallel_for(pending.size(), [&](std::size_t k) {
        if (corpus_stopped()) return;
        const auto ni = static_cast<std::size_t>(pending[k]);
        const Net& net = design.nets[ni];
        NetModels& slot = out.nets[ni];
        Result<eed::TreeModel> model = eed::analyze_checked(net.flat, scalar_opts);
        if (!model.is_ok()) {
          slot.faulted = true;
          slot.status = model.status().with_net(net.name);
          return;
        }
        fill_from_model(net, model.value(), slot);
        slot.analyzed = true;
      });
    } catch (...) {
      return std::current_exception();
    }
    return nullptr;
  };
  const auto quarantine = [&](const std::vector<int>& nets, const Status& why) {
    for (const int ni : nets) {
      NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
      slot.faulted = true;
      slot.status = why.with_net(design.nets[static_cast<std::size_t>(ni)].name);
      ++out.quarantined_nets;
    }
  };
  const auto scalar_ladder = [&](std::vector<int> pending, const char* phase_name) {
    Status last;
    bool transient_seen = false;
    for (std::size_t attempt = 1; attempt <= attempts && !pending.empty(); ++attempt) {
      if (corpus_stopped()) return;
      if (attempt > 1) backoff(attempt - 1);
      const std::exception_ptr ep = scalar_round(pending);
      std::vector<int> next;
      for (const int ni : pending) {
        const NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
        if (!slot.analyzed && !slot.faulted) next.push_back(ni);
      }
      if (ep != nullptr) {
        Status st;
        const bool retry = classify_exception(ep, &st);
        util::Diagnostic d;
        d.code = st.code();
        d.warning = true;
        d.message = std::string(phase_name) + ": " + st.message() +
                    (retry && attempt < attempts ? " (retrying)" : "");
        out.diagnostics.add(std::move(d));
        if (!retry) {
          quarantine(next, st);
          return;
        }
        last = st;
        transient_seen = true;
      }
      pending = std::move(next);
    }
    if (!pending.empty() && !corpus_stopped()) {
      quarantine(pending, transient_seen
                              ? last
                              : Status(ErrorCode::kResourceExhausted,
                                       "net analysis did not complete"));
    }
  };

  scalar_ladder(scalar_nets, "scalar phase");

  // --- batched path: one AoSoA lane per net of a topology group ------------
  const auto run_group = [&](const std::vector<int>& group) {
    const Net& first = design.nets[static_cast<std::size_t>(group.front())];
    // Default execution plan comes from the kernel tuner, sized to this
    // group's (sections, nets) shape; an explicit options.lane_width wins
    // and leaves tile selection to the analyzer. Neither choice changes
    // an output bit.
    std::size_t width = options.lane_width;
    std::size_t tile_rows = 0;
    if (width == 0) {
      const engine::KernelPlan plan =
          engine::KernelTuner::instance().analysis_plan(first.flat.size(), group.size());
      width = plan.lane_width;
      tile_rows = plan.tile_rows;
    }
    Result<engine::BatchedAnalyzer> batch_r =
        engine::BatchedAnalyzer::create_checked(first.flat, width);
    if (!batch_r.is_ok()) {
      // Topology rejected (e.g. validate limits): every member degrades to
      // the scalar verdict rather than silently vanishing.
      for (const int ni : group) {
        NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
        slot.faulted = true;
        slot.status = batch_r.status().with_net(design.nets[static_cast<std::size_t>(ni)].name);
      }
      return;
    }
    engine::BatchedAnalyzer batch = std::move(batch_r).value();
    batch.set_fault_policy(policy);
    batch.set_tile_rows(tile_rows);
    batch.set_run_control(rc);
    batch.resize(group.size());
    pool.parallel_for(group.size(), [&](std::size_t s) {
      const Net& net = design.nets[static_cast<std::size_t>(group[s])];
      batch.set_sample(s, net.flat.resistance().data(), net.flat.inductance().data(),
                       net.flat.capacitance().data());
    });

    // Tap-node union across the group (taps differ per net even when the
    // wire topology matches).
    std::vector<SectionId> ids;
    std::vector<char> seen(first.flat.size(), 0);
    for (const int ni : group) {
      for (const Net::Tap& tap : design.nets[static_cast<std::size_t>(ni)].taps) {
        if (!seen[static_cast<std::size_t>(tap.node)]) {
          seen[static_cast<std::size_t>(tap.node)] = 1;
          ids.push_back(tap.node);
        }
      }
    }
    if (ids.empty()) ids.push_back(static_cast<SectionId>(first.flat.size() - 1));

    const engine::BatchedModels models = batch.analyze_nodes(ids, &pool);
    for (std::size_t s = 0; s < group.size(); ++s) {
      const int ni = group[s];
      const Net& net = design.nets[static_cast<std::size_t>(ni)];
      NetModels& slot = out.nets[static_cast<std::size_t>(ni)];
      const std::uint8_t flags = models.fault_flags(s);
      if ((flags & eed::kFaultNotRun) != 0) continue;  // stop: stays undecided
      if (flags != 0) {
        slot.faulted = true;
        slot.status = Status(ErrorCode::kNonFiniteMoment, "net faulted in batched analysis")
                          .with_net(net.name);
        continue;
      }
      slot.taps.resize(net.taps.size());
      for (std::size_t t = 0; t < net.taps.size(); ++t) {
        slot.taps[t] = models.node(s, net.taps[t].node);
      }
      slot.analyzed = true;
      ++out.batched_nets;
    }
  };

  // Group ladder: retry the whole group on transients (no slot was
  // written — the throw happens before the result loop), then degrade the
  // group to the scalar ladder. Falling back costs the AoSoA speedup for
  // those nets but keeps their bits identical: scalar analysis is the
  // contract both paths reproduce.
  for (const std::vector<int>* group : batched_groups) {
    if (corpus_stopped()) break;
    bool done = false;
    for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
      if (corpus_stopped()) break;
      if (attempt > 1) backoff(attempt - 1);
      try {
        run_group(*group);
        done = true;
        break;
      } catch (...) {
        Status st;
        const bool retry = classify_exception(std::current_exception(), &st);
        util::Diagnostic d;
        d.code = st.code();
        d.warning = true;
        d.message = "batched group: " + st.message() +
                    (retry && attempt < attempts ? " (retrying)" : " (falling back to scalar)");
        out.diagnostics.add(std::move(d));
        if (!retry) break;
      }
    }
    if (!done && !corpus_stopped()) {
      out.fallback_nets += group->size();
      util::Diagnostic d;
      d.code = ErrorCode::kResourceExhausted;
      d.warning = true;
      d.message = "topology group of " + std::to_string(group->size()) +
                  " nets fell back to scalar analysis";
      out.diagnostics.add(std::move(d));
      scalar_ladder(*group, "batched fallback");
    }
  }

  // --- join: count verdicts, surface the stop, apply the caller policy -----
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const NetModels& slot = out.nets[ni];
    if (slot.faulted) {
      ++out.faulted_nets;
      util::Diagnostic d;
      d.code = slot.status.code();
      d.net = design.nets[ni].name;
      d.message = slot.status.message();
      out.diagnostics.add(std::move(d));
    } else if (!slot.analyzed) {
      ++out.incomplete_nets;
    }
  }
  // An undecided slot means some phase observed the stop — but the observer
  // may have been the batched analyzer itself (its kFaultNotRun samples),
  // with no corpus-level poll afterwards. Re-derive so the latch agrees:
  // deadlines and cancellations are sticky, so this reproduces the verdict.
  if (out.incomplete_nets > 0) (void)corpus_stopped();
  if (const std::uint8_t code = stop.load(std::memory_order_relaxed); code != 0) {
    const auto ec = static_cast<ErrorCode>(code);
    out.stop_status = Status(ec, ec == ErrorCode::kCancelled
                                     ? "corpus analysis cancelled"
                                     : "corpus analysis deadline exceeded");
    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      const NetModels& slot = out.nets[ni];
      if (slot.faulted || slot.analyzed) continue;
      util::Diagnostic d;
      d.code = ec;
      d.net = design.nets[ni].name;
      d.warning = true;
      d.message = "net not analyzed before the run stopped";
      out.diagnostics.add(std::move(d));
    }
  }
  // Fill the cache from this run's healthy verdicts (sequentially — the
  // parallel phases are over), and surface the hit/miss counts where a
  // report reader can see them.
  if (options.cache != nullptr) {
    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      const NetModels& slot = out.nets[ni];
      if (cached[ni] != 0 || !slot.analyzed || slot.faulted) continue;
      options.cache->store(ni, design.nets[ni].epoch, fingerprint, slot);
    }
    const CorpusCache::Counters& totals = options.cache->counters();
    util::Diagnostic d;
    d.code = ErrorCode::kOk;
    d.warning = true;
    d.message = "corpus cache: " + std::to_string(out.cache_hits) + " hit(s), " +
                std::to_string(out.cache_misses) + " miss(es) this run (lifetime " +
                std::to_string(totals.hits) + "/" + std::to_string(totals.hits + totals.misses) +
                ")";
    out.diagnostics.add(std::move(d));
  }
  if (options.fault_policy == FaultPolicy::kThrow) {
    if (out.faulted_nets > 0) {
      for (const NetModels& slot : out.nets) {
        if (slot.faulted) return slot.status;  // first faulted net, by index
      }
    }
    if (!out.stop_status.is_ok()) return out.stop_status;
  }
  return out;
}

}  // namespace relmore::sta
