#include "relmore/sta/liberty.hpp"

#include <algorithm>
#include <cmath>

namespace relmore::sta {

using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr double kLn9 = 2.1972245773362196;  // ln 9, the 10-90% step factor

Status check_axis(const std::vector<double>& axis, const char* which) {
  if (axis.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  std::string("TimingTable: empty ") + which + " axis");
  }
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (!std::isfinite(axis[i])) {
      return Status(ErrorCode::kNonFiniteValue,
                    std::string("TimingTable: non-finite ") + which + " axis entry");
    }
    if (i > 0 && axis[i] <= axis[i - 1]) {
      return Status(ErrorCode::kInvalidArgument,
                    std::string("TimingTable: ") + which + " axis must be strictly increasing");
    }
  }
  return Status::ok();
}

/// Index of the cell [lo, lo+1] bracketing x on a clamped axis, plus the
/// interpolation weight in [0, 1]. Single-point axes pin the weight to 0.
/// `hint` is a probable bracketing index: when it still brackets x it is
/// taken as-is (it is the unique such index on a strictly increasing
/// axis, so the result is bitwise-identical to the binary search).
void bracket(const std::vector<double>& axis, double x, std::size_t hint, std::size_t* lo,
             double* w) {
  const std::size_t n = axis.size();
  if (n == 1 || x <= axis.front()) {
    *lo = 0;
    *w = 0.0;
    return;
  }
  if (x >= axis.back()) {
    *lo = n - 2;
    *w = 1.0;
    return;
  }
  std::size_t i;
  if (hint <= n - 2 && axis[hint] <= x && x < axis[hint + 1]) {
    i = hint;
  } else {
    i = static_cast<std::size_t>(std::upper_bound(axis.begin(), axis.end(), x) - axis.begin()) - 1;
    if (i > n - 2) i = n - 2;
  }
  *lo = i;
  *w = (x - axis[i]) / (axis[i + 1] - axis[i]);
}

}  // namespace

TimingTable::TimingTable(const TimingTable& other)
    : slews_(other.slews_),
      loads_(other.loads_),
      values_(other.values_),
      hint_(other.hint_.load(std::memory_order_relaxed)) {}

TimingTable& TimingTable::operator=(const TimingTable& other) {
  slews_ = other.slews_;
  loads_ = other.loads_;
  values_ = other.values_;
  hint_.store(other.hint_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

TimingTable::TimingTable(TimingTable&& other) noexcept
    : slews_(std::move(other.slews_)),
      loads_(std::move(other.loads_)),
      values_(std::move(other.values_)),
      hint_(other.hint_.load(std::memory_order_relaxed)) {}

TimingTable& TimingTable::operator=(TimingTable&& other) noexcept {
  slews_ = std::move(other.slews_);
  loads_ = std::move(other.loads_);
  values_ = std::move(other.values_);
  hint_.store(other.hint_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

Result<TimingTable> TimingTable::create_checked(std::vector<double> slews,
                                                std::vector<double> loads,
                                                std::vector<double> values) {
  if (Status s = check_axis(slews, "slew"); !s.is_ok()) return s;
  if (Status s = check_axis(loads, "load"); !s.is_ok()) return s;
  if (values.size() != slews.size() * loads.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "TimingTable: values size must equal slews x loads");
  }
  for (const double v : values) {
    if (!std::isfinite(v)) {
      return Status(ErrorCode::kNonFiniteValue, "TimingTable: non-finite table value");
    }
  }
  TimingTable t;
  t.slews_ = std::move(slews);
  t.loads_ = std::move(loads);
  t.values_ = std::move(values);
  return t;
}

TimingTable TimingTable::create(std::vector<double> slews, std::vector<double> loads,
                                std::vector<double> values) {
  return create_checked(std::move(slews), std::move(loads), std::move(values)).value();
}

double TimingTable::lookup(double input_slew, double load) const {
  if (values_.empty()) return 0.0;
  const std::uint32_t hint = hint_.load(std::memory_order_relaxed);
  std::size_t si = 0;
  std::size_t li = 0;
  double sw = 0.0;
  double lw = 0.0;
  bracket(slews_, input_slew, hint >> 16, &si, &sw);
  bracket(loads_, load, hint & 0xffffu, &li, &lw);
  hint_.store(static_cast<std::uint32_t>((si & 0xffff) << 16 | (li & 0xffff)),
              std::memory_order_relaxed);
  const std::size_t cols = loads_.size();
  const std::size_t s1 = slews_.size() == 1 ? si : si + 1;
  const std::size_t l1 = loads_.size() == 1 ? li : li + 1;
  const double v00 = values_[si * cols + li];
  const double v01 = values_[si * cols + l1];
  const double v10 = values_[s1 * cols + li];
  const double v11 = values_[s1 * cols + l1];
  const double r0 = v00 + lw * (v01 - v00);
  const double r1 = v10 + lw * (v11 - v10);
  return r0 + sw * (r1 - r0);
}

Result<Cell> linear_cell_checked(const LinearCellSpec& spec) {
  if (spec.name.empty()) {
    return Status(ErrorCode::kInvalidArgument, "linear_cell: empty cell name");
  }
  for (const double v : {spec.drive_r, spec.input_cap, spec.intrinsic}) {
    if (!util::valid_element_value(v)) {
      return Status(ErrorCode::kInvalidArgument,
                    "linear_cell '" + spec.name + "': drive_r/input_cap/intrinsic must be "
                    "finite and non-negative");
    }
  }
  if (!std::isfinite(spec.slew_gain) || !std::isfinite(spec.slew_factor) ||
      spec.slew_factor < 0.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "linear_cell '" + spec.name + "': bad slew_gain/slew_factor");
  }
  // Generous characterization window: queries inside it are exact (the
  // model is bilinear); beyond it the table clamps like real Liberty data.
  const std::vector<double> slews = {0.0, 50e-12, 500e-12, 5e-9};
  const std::vector<double> loads = {0.0, 50e-15, 500e-15, 5e-12};
  std::vector<double> delay;
  std::vector<double> oslew;
  delay.reserve(slews.size() * loads.size());
  oslew.reserve(slews.size() * loads.size());
  for (const double s : slews) {
    for (const double c : loads) {
      delay.push_back(spec.intrinsic + spec.drive_r * c + spec.slew_gain * s);
      oslew.push_back(spec.slew_factor * kLn9 * spec.drive_r * c);
    }
  }
  Result<TimingTable> dt = TimingTable::create_checked(slews, loads, std::move(delay));
  if (!dt.is_ok()) return dt.status();
  Result<TimingTable> st = TimingTable::create_checked(slews, loads, std::move(oslew));
  if (!st.is_ok()) return st.status();
  Cell cell;
  cell.name = spec.name;
  cell.input_cap = spec.input_cap;
  cell.delay = std::move(dt).value();
  cell.output_slew = std::move(st).value();
  return cell;
}

Cell linear_cell(const LinearCellSpec& spec) { return linear_cell_checked(spec).value(); }

void CellLibrary::add(Cell cell) {
  const int i = find(cell.name);
  if (i >= 0) {
    cells_[static_cast<std::size_t>(i)] = std::move(cell);
  } else {
    cells_.push_back(std::move(cell));
  }
}

int CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

CellLibrary generic_library() {
  CellLibrary lib;
  lib.add(linear_cell({"buf_x1", 500.0, 5e-15, 20e-12, 0.1, 1.0}));
  lib.add(linear_cell({"buf_x4", 125.0, 20e-15, 15e-12, 0.1, 1.0}));
  lib.add(linear_cell({"inv_x1", 400.0, 4e-15, 12e-12, 0.08, 1.0}));
  lib.add(linear_cell({"nand2_x1", 600.0, 6e-15, 18e-12, 0.12, 1.0}));
  lib.add(linear_cell({"dff_x1", 450.0, 3e-15, 60e-12, 0.05, 1.0}));
  return lib;
}

}  // namespace relmore::sta
