#include "relmore/sta/synthetic.hpp"

#include <sstream>

#include "relmore/circuit/random_tree.hpp"

namespace relmore::sta {

namespace {

/// Parent list of topology class `k`: 5 + k sections, deterministic mild
/// branching. Every net of a class shares this list verbatim, which is
/// exactly the corpus layer's batching key.
std::vector<int> class_parents(std::size_t k) {
  const std::size_t n = 5 + k;
  circuit::Rng rng(0xC1A5500DULL + k);
  std::vector<int> parents(n);
  parents[0] = -1;
  for (std::size_t i = 1; i < n; ++i) {
    const int lo = static_cast<int>(i) - 3 < 0 ? 0 : static_cast<int>(i) - 3;
    parents[i] = rng.uniform_int(lo, static_cast<int>(i) - 1);
  }
  return parents;
}

void append_value(std::ostringstream& os, double v) {
  os.precision(17);
  os << v;
}

}  // namespace

std::string make_synthetic_design_text(const SyntheticSpec& spec) {
  const std::size_t depth = spec.chain_depth == 0 ? 1 : spec.chain_depth;
  const std::size_t chains = (spec.nets + depth - 1) / depth;
  const std::size_t classes = spec.topo_classes == 0 ? 1 : spec.topo_classes;

  std::vector<std::vector<int>> shapes;
  shapes.reserve(classes);
  for (std::size_t k = 0; k < classes; ++k) shapes.push_back(class_parents(k));

  std::ostringstream os;
  os << "design synthetic_" << chains << "x" << depth << "\n";
  os << "clock ";
  append_value(os, spec.clock_period);
  os << "\n";

  std::size_t net_index = 0;
  for (std::size_t c = 0; c < chains; ++c) {
    for (std::size_t s = 0; s < depth; ++s, ++net_index) {
      const std::size_t k = net_index % classes;
      const std::vector<int>& parents = shapes[k];
      // Per-net value perturbation, deterministic in (seed, net_index).
      circuit::Rng rng(spec.seed * 0x9E3779B97F4A7C15ULL + net_index);
      os << "net n" << c << "_" << s << "\n";
      for (std::size_t i = 0; i < parents.size(); ++i) {
        os << "  section s" << i << " "
           << (parents[i] < 0 ? std::string("-") : "s" + std::to_string(parents[i]));
        os << " R=";
        append_value(os, 10.0 + 90.0 * rng.uniform());
        os << " L=";
        // Odd classes carry a little inductance (still overdamped at these
        // values), so both the RC and RLC closed-form paths are exercised.
        append_value(os, k % 2 == 1 ? 1e-12 * (0.5 + rng.uniform()) : 0.0);
        os << " C=";
        append_value(os, 5e-15 + 45e-15 * rng.uniform());
        os << "\n";
      }
      os << "end\n";
    }
  }

  std::size_t inst_index = 0;
  for (std::size_t c = 0; c < chains; ++c) {
    os << "input in" << c << " n" << c << "_0 at=0 slew=20p\n";
    for (std::size_t s = 0; s + 1 < depth; ++s, ++inst_index) {
      const std::size_t k_in = (c * depth + s) % classes;
      const std::string tap = "s" + std::to_string(shapes[k_in].size() - 1);
      const bool two_input = inst_index % 7 == 3 && c > 0;
      const char* cell = two_input ? "nand2_x1" : (inst_index % 2 == 0 ? "buf_x1" : "buf_x4");
      os << "inst u" << c << "_" << s << " " << cell << " n" << c << "_" << s + 1 << " n" << c
         << "_" << s << ":" << tap;
      if (two_input) {
        // Side input from the neighboring chain's same-stage net: same
        // topological level, so no cycle can form.
        const std::size_t k_side = ((c - 1) * depth + s) % classes;
        os << " n" << c - 1 << "_" << s << ":s" << shapes[k_side].size() - 1;
      }
      os << "\n";
    }
    const std::size_t k_last = (c * depth + depth - 1) % classes;
    os << "output out" << c << " n" << c << "_" << depth - 1 << ":s"
       << shapes[k_last].size() - 1 << "\n";
  }
  return os.str();
}

util::Result<Design> make_synthetic_design_checked(const SyntheticSpec& spec) {
  if (spec.nets < 2 || spec.chain_depth == 0) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "make_synthetic_design: need nets >= 2 and chain_depth >= 1");
  }
  std::istringstream is(make_synthetic_design_text(spec));
  return read_design_checked(is);
}

}  // namespace relmore::sta
