#include "relmore/timer.hpp"

#include <ostream>
#include <utility>

namespace relmore {

using util::ErrorCode;
using util::Result;
using util::Status;

Timer::Timer() = default;
Timer::~Timer() = default;
Timer::Timer(Timer&&) noexcept = default;
Timer& Timer::operator=(Timer&&) noexcept = default;

Status Timer::load(std::istream& is, sta::CellLibrary library, util::DiagnosticsReport* report) {
  Result<sta::Design> design = sta::read_design_checked(is, std::move(library), report);
  if (!design.is_ok()) return design.status();
  return load(std::move(design).value());
}

Status Timer::load(sta::Design design) {
  auto owned = std::make_unique<sta::Design>(std::move(design));
  // Reject before replacing: a failed load keeps the previous design.
  Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(*owned);
  if (!graph.is_ok()) return graph.status();
  design_ = std::move(owned);
  result_.reset();
  return Status::ok();
}

Result<sta::TimingSummary> Timer::analyze(const sta::AnalyzeOptions& options) {
  if (design_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Timer: no design loaded");
  }
  Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(*design_);
  if (!graph.is_ok()) return graph.status();
  Result<sta::TimingResult> result = graph.value().analyze_checked(options);
  if (!result.is_ok()) return result.status();
  result_ = std::move(result).value();
  options_ = options;
  return result_->summary;
}

Status Timer::ensure_analyzed() {
  // A deadline/cancel-stopped result is queryable but not a valid cache:
  // re-analyze so a transient stop never pins partial timing forever.
  if (result_.has_value() && result_->stop_status.is_ok()) return Status::ok();
  Result<sta::TimingSummary> summary = analyze(options_);
  return summary.is_ok() ? Status::ok() : summary.status();
}

Result<double> Timer::slack(const std::string& endpoint) {
  if (design_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Timer: no design loaded");
  }
  if (Status s = ensure_analyzed(); !s.is_ok()) return s;
  return sta::endpoint_slack_checked(*design_, *result_, endpoint);
}

Result<std::vector<sta::PathReport>> Timer::report_worst_paths(std::size_t k) {
  if (design_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Timer: no design loaded");
  }
  if (Status s = ensure_analyzed(); !s.is_ok()) return s;
  return sta::worst_paths_checked(*design_, *result_, k);
}

Status Timer::report_timing(std::ostream& os, std::size_t k) {
  Result<std::vector<sta::PathReport>> paths = report_worst_paths(k);
  if (!paths.is_ok()) return paths.status();
  os << sta::format_summary(result_->summary) << "\n";
  for (const sta::PathReport& path : paths.value()) {
    os << sta::format_path(path) << "\n";
  }
  return Status::ok();
}

const sta::TimingResult* Timer::result() const {
  return result_.has_value() ? &*result_ : nullptr;
}

}  // namespace relmore
