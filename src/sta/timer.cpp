#include "relmore/timer.hpp"

#include <cmath>
#include <ostream>
#include <utility>
#include <vector>

namespace relmore {

using util::ErrorCode;
using util::Result;
using util::Status;

Timer::Timer() = default;
Timer::~Timer() = default;
Timer::Timer(Timer&&) noexcept = default;
Timer& Timer::operator=(Timer&&) noexcept = default;

Status Timer::load(std::istream& is, sta::CellLibrary library, util::DiagnosticsReport* report) {
  Result<sta::Design> design = sta::read_design_checked(is, std::move(library), report);
  if (!design.is_ok()) return design.status();
  return load(std::move(design).value());
}

Status Timer::load(sta::Design design) {
  auto owned = std::make_unique<sta::Design>(std::move(design));
  // Reject before replacing: a failed load keeps the previous design.
  Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(*owned);
  if (!graph.is_ok()) return graph.status();
  design_ = std::move(owned);
  result_.reset();
  cache_.clear();
  engines_.clear();
  return Status::ok();
}

Result<sta::TimingSummary> Timer::analyze(const sta::AnalyzeOptions& options) {
  if (design_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Timer: no design loaded");
  }
  Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(*design_);
  if (!graph.is_ok()) return graph.status();
  // The Timer's own cache rides along unless the caller plugged one in.
  // Injected per call (not stored in options_) so a moved Timer never
  // leaves a stale pointer to the old object's member behind.
  sta::AnalyzeOptions effective = options;
  if (effective.cache == nullptr) effective.cache = &cache_;
  Result<sta::TimingResult> result = graph.value().analyze_checked(effective);
  if (!result.is_ok()) return result.status();
  result_ = std::move(result).value();
  options_ = options;
  return result_->summary;
}

Status Timer::ensure_analyzed() {
  // A deadline/cancel-stopped result is queryable but not a valid cache:
  // re-analyze so a transient stop never pins partial timing forever.
  if (result_.has_value() && result_->stop_status.is_ok()) return Status::ok();
  Result<sta::TimingSummary> summary = analyze(options_);
  return summary.is_ok() ? Status::ok() : summary.status();
}

Result<double> Timer::slack(const std::string& endpoint) {
  if (design_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Timer: no design loaded");
  }
  if (Status s = ensure_analyzed(); !s.is_ok()) return s;
  return sta::endpoint_slack_checked(*design_, *result_, endpoint);
}

Result<std::vector<sta::PathReport>> Timer::report_worst_paths(std::size_t k) {
  if (design_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Timer: no design loaded");
  }
  if (Status s = ensure_analyzed(); !s.is_ok()) return s;
  return sta::worst_paths_checked(*design_, *result_, k);
}

Status Timer::report_timing(std::ostream& os, std::size_t k) {
  Result<std::vector<sta::PathReport>> paths = report_worst_paths(k);
  if (!paths.is_ok()) return paths.status();
  os << sta::format_summary(result_->summary) << "\n";
  for (const sta::PathReport& path : paths.value()) {
    os << sta::format_path(path) << "\n";
  }
  return Status::ok();
}

const sta::TimingResult* Timer::result() const {
  return result_.has_value() ? &*result_ : nullptr;
}

// --- what-if edits ---------------------------------------------------------

Timer::Edit Timer::edit() {
  return Edit(this, design_.get(), design_ != nullptr ? design_->epoch : 0);
}

Result<engine::TimingEngine*> Timer::engine_for(int net_index) {
  auto it = engines_.find(net_index);
  if (it == engines_.end()) {
    Result<engine::TimingEngine> eng = engine::TimingEngine::create_checked(
        design_->nets[static_cast<std::size_t>(net_index)].tree);
    if (!eng.is_ok()) {
      return eng.status().with_net(design_->nets[static_cast<std::size_t>(net_index)].name);
    }
    it = engines_.emplace(net_index, std::move(eng).value()).first;
  }
  return &it->second;
}

Status Timer::Edit::set_net_section_values(const std::string& net, const std::string& section,
                                           const circuit::SectionValues& wire) {
  if (design_ == nullptr) return Status(ErrorCode::kInvalidArgument, "edit: no design loaded");
  if (done_) return Status(ErrorCode::kTransactionState, "edit: handle already committed");
  const int ni = design_->find_net(net);
  if (ni < 0) {
    return Status(ErrorCode::kInvalidArgument, "edit: unknown net").with_net(net);
  }
  const circuit::SectionId sid =
      design_->nets[static_cast<std::size_t>(ni)].tree.find_by_name(section);
  if (sid < 0) {
    return Status(ErrorCode::kInvalidArgument, "edit: net has no section named '" + section + "'")
        .with_net(net);
  }
  for (const double v : {wire.resistance, wire.inductance, wire.capacitance}) {
    if (!util::valid_element_value(v)) {
      return Status(ErrorCode::kInvalidArgument,
                    "edit: section values must be finite and non-negative")
          .with_net(net);
    }
  }
  Op op;
  op.kind = OpKind::kValue;
  op.net = ni;
  op.section = sid;
  op.wire = wire;
  ops_.push_back(op);
  return Status::ok();
}

Status Timer::Edit::set_cell(const std::string& instance, const std::string& cell) {
  if (design_ == nullptr) return Status(ErrorCode::kInvalidArgument, "edit: no design loaded");
  if (done_) return Status(ErrorCode::kTransactionState, "edit: handle already committed");
  int inst = -1;
  for (std::size_t i = 0; i < design_->instances.size(); ++i) {
    if (design_->instances[i].name == instance) {
      inst = static_cast<int>(i);
      break;
    }
  }
  if (inst < 0) {
    return Status(ErrorCode::kInvalidArgument, "edit: unknown instance").with_net(instance);
  }
  const int ci = design_->library.find(cell);
  if (ci < 0) {
    return Status(ErrorCode::kInvalidArgument, "edit: unknown cell '" + cell + "'")
        .with_net(instance);
  }
  Op op;
  op.kind = OpKind::kCell;
  op.instance = inst;
  op.cell = ci;
  ops_.push_back(op);
  return Status::ok();
}

Status Timer::Edit::set_port_required(const std::string& port, double required) {
  if (design_ == nullptr) return Status(ErrorCode::kInvalidArgument, "edit: no design loaded");
  if (done_) return Status(ErrorCode::kTransactionState, "edit: handle already committed");
  const int pi = design_->find_port(port);
  if (pi < 0) {
    return Status(ErrorCode::kInvalidArgument, "edit: unknown port").with_net(port);
  }
  if (design_->ports[static_cast<std::size_t>(pi)].is_input) {
    return Status(ErrorCode::kInvalidArgument, "edit: '" + port + "' is not an output port")
        .with_net(port);
  }
  if (!std::isfinite(required)) {
    return Status(ErrorCode::kInvalidArgument, "edit: required time must be finite").with_net(port);
  }
  Op op;
  op.kind = OpKind::kPort;
  op.port = pi;
  op.value = required;
  ops_.push_back(op);
  return Status::ok();
}

Status Timer::Edit::set_clock_period(double period) {
  if (design_ == nullptr) return Status(ErrorCode::kInvalidArgument, "edit: no design loaded");
  if (done_) return Status(ErrorCode::kTransactionState, "edit: handle already committed");
  if (!std::isfinite(period) || period < 0.0) {
    return Status(ErrorCode::kInvalidArgument, "edit: clock period must be finite and >= 0");
  }
  Op op;
  op.kind = OpKind::kClock;
  op.value = period;
  ops_.push_back(op);
  return Status::ok();
}

Result<Timer::EditOutcome> Timer::Edit::commit() {
  if (timer_ == nullptr) return Status(ErrorCode::kInvalidArgument, "edit: no design loaded");
  return timer_->commit_edit(*this, timer_->options_);
}

Result<Timer::EditOutcome> Timer::Edit::commit(const sta::AnalyzeOptions& options) {
  if (timer_ == nullptr) return Status(ErrorCode::kInvalidArgument, "edit: no design loaded");
  return timer_->commit_edit(*this, options);
}

Result<Timer::EditOutcome> Timer::commit_edit(Edit& edit, const sta::AnalyzeOptions& options) {
  if (edit.done_) {
    return Status(ErrorCode::kTransactionState, "edit: handle already committed");
  }
  if (design_ == nullptr || edit.design_ != design_.get() || edit.epoch_ != design_->epoch) {
    return Status(ErrorCode::kInvalidArgument,
                  "edit: design changed since the handle was opened");
  }
  edit.done_ = true;  // consumed by this attempt, success or not
  sta::Design& design = *design_;

  // Working cell assignment: cell ops apply sequentially, so later value
  // ops fold the pin caps the instance will have after the commit.
  std::vector<int> cell_of(design.instances.size());
  for (std::size_t i = 0; i < design.instances.size(); ++i) cell_of[i] = design.instances[i].cell;

  std::vector<int> touched;  // nets with an open engine transaction, first-touch order
  std::vector<char> fwd(design.nets.size(), 0);
  std::vector<char> bwd(design.nets.size(), 0);
  sta::UpdateSeeds seeds;

  const auto rollback_all = [&]() {
    for (const int ni : touched) engines_.at(ni).rollback();
  };
  const auto touch = [&](int ni) -> Result<engine::TimingEngine*> {
    Result<engine::TimingEngine*> eng = engine_for(ni);
    if (!eng.is_ok()) return eng;
    if (!eng.value()->in_transaction()) {
      eng.value()->begin_transaction();
      touched.push_back(ni);
    }
    return eng;
  };
  // The folded shunt C at `node` of net `ni`: raw wire C plus the pin cap
  // of every instance input tapping the node — the finalize fold, against
  // the working cell assignment, summed in tap order (finalize's order).
  const auto folded_cap = [&](int ni, circuit::SectionId node, double wire_c) {
    double c = wire_c;
    for (const sta::Net::Tap& tap : design.nets[static_cast<std::size_t>(ni)].taps) {
      if (tap.node == node && !tap.is_port) {
        const int ci = cell_of[static_cast<std::size_t>(tap.index)];
        c += design.library.cell(static_cast<std::size_t>(ci)).input_cap;
      }
    }
    return c;
  };

  // --- apply ops onto the per-net engines (journaled, rollback on error) --
  for (const Edit::Op& op : edit.ops_) {
    switch (op.kind) {
      case Edit::OpKind::kValue: {
        Result<engine::TimingEngine*> eng = touch(op.net);
        if (!eng.is_ok()) {
          rollback_all();
          return eng.status();
        }
        circuit::SectionValues v = op.wire;
        v.capacitance = folded_cap(op.net, op.section, op.wire.capacitance);
        try {
          eng.value()->set_section_values(op.section, v);
        } catch (const util::FaultError& e) {
          rollback_all();
          return e.status().with_net(design.nets[static_cast<std::size_t>(op.net)].name);
        }
        fwd[static_cast<std::size_t>(op.net)] = 1;
        break;
      }
      case Edit::OpKind::kCell: {
        const sta::Instance& inst = design.instances[static_cast<std::size_t>(op.instance)];
        const double old_cap =
            design.library.cell(static_cast<std::size_t>(cell_of[static_cast<std::size_t>(
                                    op.instance)]))
                .input_cap;
        const double new_cap = design.library.cell(static_cast<std::size_t>(op.cell)).input_cap;
        for (const sta::Instance::Pin& pin : inst.inputs) {
          Result<engine::TimingEngine*> eng = touch(pin.net);
          if (!eng.is_ok()) {
            rollback_all();
            return eng.status();
          }
          const sta::Net& in_net = design.nets[static_cast<std::size_t>(pin.net)];
          const circuit::SectionId node = in_net.taps[static_cast<std::size_t>(pin.tap)].node;
          circuit::SectionValues v = eng.value()->tree().section(node).v;
          // Exact inverse of the old fold, then the new fold, in this
          // order — bitwise-reproducible regardless of edit history.
          v.capacitance = v.capacitance - old_cap + new_cap;
          try {
            eng.value()->set_section_values(node, v);
          } catch (const util::FaultError& e) {
            rollback_all();
            return e.status().with_net(in_net.name);
          }
          fwd[static_cast<std::size_t>(pin.net)] = 1;
          // The swapped arc tables move this pin's required time even when
          // the output net's driver (required, constrained) pair does not.
          bwd[static_cast<std::size_t>(pin.net)] = 1;
        }
        fwd[static_cast<std::size_t>(inst.out_net)] = 1;
        cell_of[static_cast<std::size_t>(op.instance)] = op.cell;
        break;
      }
      case Edit::OpKind::kPort:
        bwd[static_cast<std::size_t>(design.ports[static_cast<std::size_t>(op.port)].net)] = 1;
        break;
      case Edit::OpKind::kClock:
        seeds.clock_changed = true;
        break;
    }
  }

  // --- commit: engines first, then the Design mirrors them ---------------
  for (const int ni : touched) {
    engines_.at(ni).commit();  // relmore-lint: allow(R1) engine commit() returns void
  }
  design.epoch += 1;
  for (const int ni : touched) {
    sta::Net& net = design.nets[static_cast<std::size_t>(ni)];
    const engine::TimingEngine& eng = engines_.at(ni);
    for (std::size_t i = 0; i < net.tree.size(); ++i) {
      net.tree.values(static_cast<circuit::SectionId>(i)) =
          eng.tree().section(static_cast<circuit::SectionId>(i)).v;
    }
    net.flat = circuit::FlatTree(net.tree);
    net.epoch = design.epoch;
    net.total_cap = net.tree.total_capacitance();
  }
  for (const Edit::Op& op : edit.ops_) {
    if (op.kind == Edit::OpKind::kPort) {
      sta::DesignPort& port = design.ports[static_cast<std::size_t>(op.port)];
      port.required = op.value;
      port.has_required = true;
    } else if (op.kind == Edit::OpKind::kClock) {
      design.clock_period = op.value;
    }
  }
  for (std::size_t i = 0; i < design.instances.size(); ++i) design.instances[i].cell = cell_of[i];

  // --- restamp the cache at the new epoch from the engines' O(depth)
  // node models (bitwise-identical to eed::analyze of the mirrored tree,
  // the engine contract). A degenerate model is conservatively NOT stored
  // — the next analyze recomputes the net with full fault handling — and
  // disables the in-place re-time (its cone could not be served).
  bool can_update = true;
  const std::uint64_t fingerprint = sta::options_fingerprint(options);
  for (const int ni : touched) {
    const sta::Net& net = design.nets[static_cast<std::size_t>(ni)];
    const engine::TimingEngine& eng = engines_.at(ni);
    sta::NetModels models;
    models.taps.resize(net.taps.size());
    bool healthy = true;
    for (std::size_t t = 0; t < net.taps.size(); ++t) {
      const eed::NodeModel m = eng.node(net.taps[t].node);
      // zeta/omega_n are legitimately +inf for pure-RC nodes; NaN and
      // non-finite Elmore sums are what full analysis would flag.
      if (!std::isfinite(m.sum_rc) || !std::isfinite(m.sum_lc) || std::isnan(m.zeta) ||
          std::isnan(m.omega_n)) {
        healthy = false;
        break;
      }
      models.taps[t] = m;
    }
    if (!healthy) {
      can_update = false;
      continue;
    }
    models.analyzed = true;
    cache_.store(static_cast<std::size_t>(ni), net.epoch, fingerprint, std::move(models));
  }

  // --- re-time the cached analysis through the dirty cones ----------------
  for (std::size_t ni = 0; ni < design.nets.size(); ++ni) {
    if (fwd[ni] != 0) seeds.forward_nets.push_back(static_cast<int>(ni));
    if (bwd[ni] != 0) seeds.backward_nets.push_back(static_cast<int>(ni));
  }
  EditOutcome outcome;
  if (result_.has_value() && result_->stop_status.is_ok() && can_update) {
    Result<sta::TimingGraph> graph = sta::TimingGraph::build_checked(design);
    if (graph.is_ok()) {
      sta::AnalyzeOptions effective = options;
      if (effective.cache == nullptr) effective.cache = &cache_;
      Result<sta::UpdateStats> stats =
          graph.value().update_checked(*result_, *effective.cache, seeds, effective);
      if (stats.is_ok() && stats.value().stop_status.is_ok()) {
        outcome.incremental = true;
        outcome.stats = stats.value();
        return outcome;
      }
      if (stats.is_ok()) outcome.stats = stats.value();  // stopped: report why
    }
  }
  // Any fallback path: the old analysis no longer matches the design.
  result_.reset();
  return outcome;
}

}  // namespace relmore
