#include "relmore/sta/timing_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "relmore/opt/path_timing.hpp"

namespace relmore::sta {

using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Endpoint required time: the port's own constraint, else the design
/// clock, else unconstrained.
void endpoint_required(const Design& design, const DesignPort& port, double* required,
                       bool* constrained) {
  if (port.has_required) {
    *required = port.required;
    *constrained = true;
  } else if (design.clock_period > 0.0) {
    *required = design.clock_period;
    *constrained = true;
  } else {
    *required = kInf;
    *constrained = false;
  }
}

}  // namespace

Result<TimingGraph> TimingGraph::build_checked(const Design& design) {
  if (design.nets.empty()) {
    return Status(ErrorCode::kEmptyTree, "TimingGraph: design has no nets");
  }
  if (design.topo_nets.size() != design.nets.size()) {
    return Status(ErrorCode::kCycle,
                  "TimingGraph: design is not finalized (topological order incomplete)");
  }
  for (const Net& net : design.nets) {
    if (net.flat.size() != net.tree.size()) {
      return Status(ErrorCode::kInvalidArgument,
                    "TimingGraph: net snapshot is stale (re-run read_design)")
          .with_net(net.name);
    }
  }
  return TimingGraph(&design);
}

Result<TimingResult> TimingGraph::analyze_checked(const AnalyzeOptions& options) const {
  const Design& design = *design_;
  Result<CorpusModels> corpus_r = analyze_corpus_checked(design, options);
  if (!corpus_r.is_ok()) return corpus_r.status();
  const CorpusModels corpus = std::move(corpus_r).value();

  TimingResult result;
  result.nets.resize(design.nets.size());
  result.winning_input.assign(design.instances.size(), -1);

  // --- forward sweep: arrivals and slews, in net topological order --------
  for (const int ni : design.topo_nets) {
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
    nt.taps.resize(net.taps.size());
    nt.wire_delay.assign(net.taps.size(), 0.0);
    // A net the corpus never reached (deadline/cancel stop) is untimed
    // exactly like a faulted one: its cone degrades, everything else keeps
    // its uninterrupted-run bits.
    const NetModels& net_models = corpus.nets[static_cast<std::size_t>(ni)];
    nt.faulted = net_models.faulted || !net_models.analyzed;
    nt.driver.required = kInf;
    for (PointTiming& tap : nt.taps) tap.required = kInf;

    // Driving point.
    if (net.driver_kind == DriverKind::kPort) {
      const DesignPort& port = design.ports[static_cast<std::size_t>(net.driver_index)];
      nt.driver.timed = true;
      nt.driver.arrival = port.arrival;
      nt.driver.slew = port.slew;
    } else if (net.driver_kind == DriverKind::kInstance) {
      const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
      const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
      const double load = net.total_cap;
      bool all_timed = true;
      double best = -kInf;
      int winning = -1;
      for (std::size_t pi = 0; pi < inst.inputs.size(); ++pi) {
        const Instance::Pin& pin = inst.inputs[pi];
        const PointTiming& at =
            result.nets[static_cast<std::size_t>(pin.net)].taps[static_cast<std::size_t>(pin.tap)];
        if (!at.timed) {
          all_timed = false;
          break;
        }
        const double arr = at.arrival + cell.arc_delay(at.slew, load);
        if (arr > best) {  // ties keep the earlier pin: deterministic
          best = arr;
          winning = static_cast<int>(pi);
        }
      }
      if (all_timed && winning >= 0) {
        const Instance::Pin& win = inst.inputs[static_cast<std::size_t>(winning)];
        const PointTiming& at =
            result.nets[static_cast<std::size_t>(win.net)].taps[static_cast<std::size_t>(win.tap)];
        nt.driver.timed = true;
        nt.driver.arrival = best;
        nt.driver.slew = cell.arc_slew(at.slew, load);
        result.winning_input[static_cast<std::size_t>(net.driver_index)] = winning;
      }
    }

    // Wire stages to every tap.
    if (!nt.driver.timed || nt.faulted) continue;
    const NetModels& models = corpus.nets[static_cast<std::size_t>(ni)];
    for (std::size_t t = 0; t < net.taps.size(); ++t) {
      try {
        const opt::StageTiming stage = opt::time_stage(models.taps[t], nt.driver.slew);
        nt.taps[t].timed = true;
        nt.taps[t].arrival = nt.driver.arrival + stage.delay;
        nt.taps[t].slew = stage.output_rise;
        nt.wire_delay[t] = stage.delay;
      } catch (const std::exception&) {
        // Ramp root-finding failed for this tap's model: degrade the tap
        // to untimed (same isolation as a corpus-phase fault).
        nt.faulted = true;
      }
    }
  }

  // --- backward sweep: required times, reverse topological order ----------
  for (auto it = design.topo_nets.rbegin(); it != design.topo_nets.rend(); ++it) {
    const int ni = *it;
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
    for (std::size_t t = 0; t < net.taps.size(); ++t) {
      const Net::Tap& tap = net.taps[t];
      PointTiming& tt = nt.taps[t];
      if (tap.is_port) {
        endpoint_required(design, design.ports[static_cast<std::size_t>(tap.index)],
                          &tt.required, &tt.constrained);
      } else {
        const Instance& inst = design.instances[static_cast<std::size_t>(tap.index)];
        const PointTiming& out_driver =
            result.nets[static_cast<std::size_t>(inst.out_net)].driver;
        if (out_driver.constrained && tt.timed) {
          const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
          const double load = design.nets[static_cast<std::size_t>(inst.out_net)].total_cap;
          tt.required = out_driver.required - cell.arc_delay(tt.slew, load);
          tt.constrained = true;
        }
      }
      if (tt.constrained && tt.timed) {
        const double cand = tt.required - nt.wire_delay[t];
        if (cand < nt.driver.required) nt.driver.required = cand;
        nt.driver.constrained = true;
      }
    }
  }

  // --- endpoint summary ----------------------------------------------------
  TimingSummary& summary = result.summary;
  summary.faulted_nets = corpus.faulted_nets;
  summary.batched_nets = corpus.batched_nets;
  summary.incomplete_nets = corpus.incomplete_nets;
  result.stop_status = corpus.stop_status;
  result.diagnostics = corpus.diagnostics;
  for (std::size_t pi = 0; pi < design.ports.size(); ++pi) {
    const DesignPort& port = design.ports[pi];
    if (port.is_input) continue;
    ++summary.endpoints;
    EndpointSlack row;
    row.port = static_cast<int>(pi);
    row.name = port.name;
    const PointTiming& tt =
        result.nets[static_cast<std::size_t>(port.net)].taps[static_cast<std::size_t>(port.tap)];
    row.timed = tt.timed;
    row.constrained = tt.constrained;
    if (!tt.timed) {
      ++summary.untimed_endpoints;
    } else {
      row.arrival = tt.arrival;
      row.required = tt.required;
      row.slack = tt.required - tt.arrival;
      if (tt.constrained) {
        ++summary.constrained_endpoints;
        if (row.slack < 0.0) summary.tns += row.slack;
      }
    }
    summary.endpoints_by_slack.push_back(std::move(row));
  }
  std::sort(summary.endpoints_by_slack.begin(), summary.endpoints_by_slack.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              // timed+constrained rows first, ascending slack; stable
              // tie-break on port index keeps the order deterministic.
              const int ra = a.timed && a.constrained ? 0 : a.timed ? 1 : 2;
              const int rb = b.timed && b.constrained ? 0 : b.timed ? 1 : 2;
              if (ra != rb) return ra < rb;
              if (a.slack != b.slack) return a.slack < b.slack;
              return a.port < b.port;
            });
  summary.wns = 0.0;
  bool first = true;
  for (const EndpointSlack& row : summary.endpoints_by_slack) {
    if (!row.timed || !row.constrained) continue;
    if (first || row.slack < summary.wns) summary.wns = row.slack;
    first = false;
  }
  return result;
}

Result<double> endpoint_slack_checked(const Design& design, const TimingResult& result,
                                      const std::string& port) {
  const int pi = design.find_port(port);
  if (pi < 0) {
    return Status(ErrorCode::kInvalidArgument, "unknown port '" + port + "'");
  }
  const DesignPort& p = design.ports[static_cast<std::size_t>(pi)];
  if (p.is_input) {
    return Status(ErrorCode::kInvalidArgument, "port '" + port + "' is not an endpoint");
  }
  const PointTiming& tt =
      result.nets[static_cast<std::size_t>(p.net)].taps[static_cast<std::size_t>(p.tap)];
  if (!tt.timed) {
    return Status(ErrorCode::kNonFiniteMoment,
                  "endpoint '" + port + "' is untimed (faulted fanout cone)")
        .with_net(design.nets[static_cast<std::size_t>(p.net)].name);
  }
  return tt.required - tt.arrival;
}

Result<std::vector<PathReport>> worst_paths_checked(const Design& design,
                                                    const TimingResult& result, std::size_t k) {
  if (result.nets.size() != design.nets.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "worst_paths: result does not belong to this design");
  }
  std::vector<PathReport> out;
  for (const EndpointSlack& row : result.summary.endpoints_by_slack) {
    if (out.size() >= k) break;
    if (!row.timed) continue;
    const DesignPort& port = design.ports[static_cast<std::size_t>(row.port)];
    PathReport path;
    path.endpoint = port.name;
    path.arrival = row.arrival;
    path.required = row.required;
    path.slack = row.slack;
    path.constrained = row.constrained;

    // Backtrack endpoint -> launch, then reverse.
    std::vector<PathPoint> rev;
    int ni = port.net;
    int tap = port.tap;
    bool done = false;
    while (!done) {
      const Net& net = design.nets[static_cast<std::size_t>(ni)];
      const NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
      const Net::Tap& t = net.taps[static_cast<std::size_t>(tap)];
      const PointTiming& tt = nt.taps[static_cast<std::size_t>(tap)];
      PathPoint wire;
      wire.point = "net " + net.name + " @ " +
                   net.tree.section(t.node).name;
      wire.incr = nt.wire_delay[static_cast<std::size_t>(tap)];
      wire.arrival = tt.arrival;
      wire.slew = tt.slew;
      rev.push_back(std::move(wire));

      if (net.driver_kind == DriverKind::kPort) {
        const DesignPort& in = design.ports[static_cast<std::size_t>(net.driver_index)];
        PathPoint launch;
        launch.point = "port " + in.name;
        launch.incr = 0.0;
        launch.arrival = nt.driver.arrival;
        launch.slew = nt.driver.slew;
        rev.push_back(std::move(launch));
        done = true;
      } else {
        const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
        const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
        const int wi = result.winning_input[static_cast<std::size_t>(net.driver_index)];
        if (wi < 0) {
          return Status(ErrorCode::kInvalidArgument,
                        "worst_paths: untimed instance on path (inconsistent result)")
              .with_net(net.name);
        }
        const Instance::Pin& pin = inst.inputs[static_cast<std::size_t>(wi)];
        const PointTiming& pin_t =
            result.nets[static_cast<std::size_t>(pin.net)].taps[static_cast<std::size_t>(pin.tap)];
        PathPoint gate;
        gate.point = inst.name + " (" + cell.name + ")";
        gate.incr = nt.driver.arrival - pin_t.arrival;
        gate.arrival = nt.driver.arrival;
        gate.slew = nt.driver.slew;
        rev.push_back(std::move(gate));
        ni = pin.net;
        tap = pin.tap;
      }
    }
    std::reverse(rev.begin(), rev.end());
    path.points = std::move(rev);
    out.push_back(std::move(path));
  }
  return out;
}

namespace {

std::string ps(double seconds) {
  std::ostringstream os;
  if (std::isinf(seconds)) {
    os << (seconds > 0 ? "inf" : "-inf");
    return os.str();
  }
  os.setf(std::ios::fixed);
  os.precision(3);
  os << seconds * 1e12;
  return os.str();
}

}  // namespace

std::string format_path(const PathReport& path) {
  std::size_t width = 24;
  for (const PathPoint& p : path.points) width = std::max(width, p.point.size() + 2);
  std::ostringstream os;
  os << "Path to endpoint '" << path.endpoint << "'";
  if (!path.constrained) os << " (unconstrained)";
  os << "\n";
  auto pad = [&](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w; ++i) os << ' ';
  };
  pad("point", width);
  pad("incr [ps]", 14);
  pad("arrival [ps]", 14);
  os << "slew [ps]\n";
  for (const PathPoint& p : path.points) {
    pad(p.point, width);
    pad(ps(p.incr), 14);
    pad(ps(p.arrival), 14);
    os << ps(p.slew) << "\n";
  }
  pad("required", width);
  os << ps(path.required) << " ps\n";
  pad("arrival", width);
  os << ps(path.arrival) << " ps\n";
  pad("slack", width);
  os << ps(path.slack) << " ps" << (path.slack < 0.0 ? "  (VIOLATED)" : "") << "\n";
  return os.str();
}

std::string format_summary(const TimingSummary& summary) {
  std::ostringstream os;
  os << "endpoints: " << summary.endpoints << " (" << summary.constrained_endpoints
     << " constrained, " << summary.untimed_endpoints << " untimed)\n"
     << "WNS: " << ps(summary.wns) << " ps   TNS: " << ps(summary.tns) << " ps\n"
     << "nets faulted: " << summary.faulted_nets << "   nets batched: " << summary.batched_nets;
  if (summary.incomplete_nets > 0) {
    os << "   nets incomplete: " << summary.incomplete_nets;
  }
  os << "\n";
  return os.str();
}

}  // namespace relmore::sta
