#include "relmore/sta/timing_graph.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "relmore/opt/path_timing.hpp"
#include "relmore/util/deadline.hpp"

namespace relmore::sta {

using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Endpoint required time: the port's own constraint, else the design
/// clock, else unconstrained.
void endpoint_required(const Design& design, const DesignPort& port, double* required,
                       bool* constrained) {
  if (port.has_required) {
    *required = port.required;
    *constrained = true;
  } else if (design.clock_period > 0.0) {
    *required = design.clock_period;
    *constrained = true;
  } else {
    *required = kInf;
    *constrained = false;
  }
}

/// Recomputes net `ni`'s forward half — driver point, tap arrivals/slews,
/// wire delays, fault flag — into `nt`, reading upstream tap timings from
/// `result`. Required/constrained fields are reset to unconstrained (the
/// backward sweep owns them). Shared verbatim between the full forward
/// sweep and the incremental dirty-cone scan so both produce identical
/// bits by construction. Returns the arrival-setting input pin of an
/// instance driver (-1 when none / not all pins timed).
int forward_time_net(const Design& design, int ni, const NetModels& models,
                     const TimingResult& result, NetTiming& nt) {
  const Net& net = design.nets[static_cast<std::size_t>(ni)];
  nt.driver = PointTiming{};
  nt.taps.assign(net.taps.size(), PointTiming{});
  nt.wire_delay.assign(net.taps.size(), 0.0);
  // A net the corpus never reached (deadline/cancel stop) is untimed
  // exactly like a faulted one: its cone degrades, everything else keeps
  // its uninterrupted-run bits.
  nt.faulted = models.faulted || !models.analyzed;
  nt.driver.required = kInf;
  for (PointTiming& tap : nt.taps) tap.required = kInf;

  // Driving point.
  int winning = -1;
  if (net.driver_kind == DriverKind::kPort) {
    const DesignPort& port = design.ports[static_cast<std::size_t>(net.driver_index)];
    nt.driver.timed = true;
    nt.driver.arrival = port.arrival;
    nt.driver.slew = port.slew;
  } else if (net.driver_kind == DriverKind::kInstance) {
    const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
    const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
    const double load = net.total_cap;
    bool all_timed = true;
    double best = -kInf;
    for (std::size_t pi = 0; pi < inst.inputs.size(); ++pi) {
      const Instance::Pin& pin = inst.inputs[pi];
      const PointTiming& at =
          result.nets[static_cast<std::size_t>(pin.net)].taps[static_cast<std::size_t>(pin.tap)];
      if (!at.timed) {
        all_timed = false;
        break;
      }
      const double arr = at.arrival + cell.arc_delay(at.slew, load);
      if (arr > best) {  // ties keep the earlier pin: deterministic
        best = arr;
        winning = static_cast<int>(pi);
      }
    }
    if (all_timed && winning >= 0) {
      const Instance::Pin& win = inst.inputs[static_cast<std::size_t>(winning)];
      const PointTiming& at =
          result.nets[static_cast<std::size_t>(win.net)].taps[static_cast<std::size_t>(win.tap)];
      nt.driver.timed = true;
      nt.driver.arrival = best;
      nt.driver.slew = cell.arc_slew(at.slew, load);
    } else {
      winning = -1;
    }
  }

  // Wire stages to every tap.
  if (!nt.driver.timed || nt.faulted) return winning;
  for (std::size_t t = 0; t < net.taps.size(); ++t) {
    try {
      const opt::StageTiming stage = opt::time_stage(models.taps[t], nt.driver.slew);
      nt.taps[t].timed = true;
      nt.taps[t].arrival = nt.driver.arrival + stage.delay;
      nt.taps[t].slew = stage.output_rise;
      nt.wire_delay[t] = stage.delay;
    } catch (const std::exception&) {
      // Ramp root-finding failed for this tap's model: degrade the tap
      // to untimed (same isolation as a corpus-phase fault).
      nt.faulted = true;
    }
  }
  return winning;
}

/// Re-derives net `ni`'s required/constrained fields in place from its
/// fanout (whose driver requireds must already be final — the reverse
/// topological order guarantees it). Shared between the full backward
/// sweep and the incremental fanin-cone scan.
void backward_time_net(const Design& design, int ni, TimingResult& result) {
  const Net& net = design.nets[static_cast<std::size_t>(ni)];
  NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
  nt.driver.required = kInf;
  nt.driver.constrained = false;
  for (std::size_t t = 0; t < net.taps.size(); ++t) {
    const Net::Tap& tap = net.taps[t];
    PointTiming& tt = nt.taps[t];
    tt.required = kInf;
    tt.constrained = false;
    if (tap.is_port) {
      endpoint_required(design, design.ports[static_cast<std::size_t>(tap.index)],
                        &tt.required, &tt.constrained);
    } else {
      const Instance& inst = design.instances[static_cast<std::size_t>(tap.index)];
      const PointTiming& out_driver =
          result.nets[static_cast<std::size_t>(inst.out_net)].driver;
      if (out_driver.constrained && tt.timed) {
        const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
        const double load = design.nets[static_cast<std::size_t>(inst.out_net)].total_cap;
        tt.required = out_driver.required - cell.arc_delay(tt.slew, load);
        tt.constrained = true;
      }
    }
    if (tt.constrained && tt.timed) {
      const double cand = tt.required - nt.wire_delay[t];
      if (cand < nt.driver.required) nt.driver.required = cand;
      nt.driver.constrained = true;
    }
  }
}

/// Rebuilds the endpoint summary (rows, WNS/TNS, endpoint counts) from
/// the per-point timings. The corpus-phase counters
/// (faulted/batched/incomplete/cache) are left untouched — the caller
/// owns them.
void rebuild_endpoint_summary(const Design& design, TimingResult& result) {
  TimingSummary& summary = result.summary;
  summary.endpoints = 0;
  summary.constrained_endpoints = 0;
  summary.untimed_endpoints = 0;
  summary.tns = 0.0;
  summary.endpoints_by_slack.clear();
  for (std::size_t pi = 0; pi < design.ports.size(); ++pi) {
    const DesignPort& port = design.ports[pi];
    if (port.is_input) continue;
    ++summary.endpoints;
    EndpointSlack row;
    row.port = static_cast<int>(pi);
    row.name = port.name;
    const PointTiming& tt =
        result.nets[static_cast<std::size_t>(port.net)].taps[static_cast<std::size_t>(port.tap)];
    row.timed = tt.timed;
    row.constrained = tt.constrained;
    if (!tt.timed) {
      ++summary.untimed_endpoints;
    } else {
      row.arrival = tt.arrival;
      row.required = tt.required;
      row.slack = tt.required - tt.arrival;
      if (tt.constrained) {
        ++summary.constrained_endpoints;
        if (row.slack < 0.0) summary.tns += row.slack;
      }
    }
    summary.endpoints_by_slack.push_back(std::move(row));
  }
  std::sort(summary.endpoints_by_slack.begin(), summary.endpoints_by_slack.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              // timed+constrained rows first, ascending slack; stable
              // tie-break on port index keeps the order deterministic.
              const int ra = a.timed && a.constrained ? 0 : a.timed ? 1 : 2;
              const int rb = b.timed && b.constrained ? 0 : b.timed ? 1 : 2;
              if (ra != rb) return ra < rb;
              if (a.slack != b.slack) return a.slack < b.slack;
              return a.port < b.port;
            });
  summary.wns = 0.0;
  bool first = true;
  for (const EndpointSlack& row : summary.endpoints_by_slack) {
    if (!row.timed || !row.constrained) continue;
    if (first || row.slack < summary.wns) summary.wns = row.slack;
    first = false;
  }
}

/// Bitwise comparison of the forward-owned fields (timed/arrival/slew);
/// std::bit_cast so -0.0 vs 0.0 and NaN payloads count as changes, the
/// same equality every determinism test uses.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_forward_point(const PointTiming& a, const PointTiming& b) {
  return a.timed == b.timed && same_bits(a.arrival, b.arrival) && same_bits(a.slew, b.slew);
}

bool same_forward_net(const NetTiming& a, const NetTiming& b) {
  if (a.faulted != b.faulted || !same_forward_point(a.driver, b.driver)) return false;
  for (std::size_t t = 0; t < a.taps.size(); ++t) {
    if (!same_forward_point(a.taps[t], b.taps[t])) return false;
    if (!same_bits(a.wire_delay[t], b.wire_delay[t])) return false;
  }
  return true;
}

}  // namespace

Result<TimingGraph> TimingGraph::build_checked(const Design& design) {
  if (design.nets.empty()) {
    return Status(ErrorCode::kEmptyTree, "TimingGraph: design has no nets");
  }
  if (design.topo_nets.size() != design.nets.size()) {
    return Status(ErrorCode::kCycle,
                  "TimingGraph: design is not finalized (topological order incomplete)");
  }
  for (const Net& net : design.nets) {
    if (net.flat.size() != net.tree.size()) {
      return Status(ErrorCode::kInvalidArgument,
                    "TimingGraph: net snapshot is stale (re-run read_design)")
          .with_net(net.name);
    }
  }
  return TimingGraph(&design);
}

Result<TimingResult> TimingGraph::analyze_checked(const AnalyzeOptions& options) const {
  const Design& design = *design_;
  Result<CorpusModels> corpus_r = analyze_corpus_checked(design, options);
  if (!corpus_r.is_ok()) return corpus_r.status();
  const CorpusModels corpus = std::move(corpus_r).value();

  TimingResult result;
  result.nets.resize(design.nets.size());
  result.winning_input.assign(design.instances.size(), -1);

  // --- forward sweep: arrivals and slews, in net topological order --------
  for (const int ni : design.topo_nets) {
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    const int winning = forward_time_net(design, ni, corpus.nets[static_cast<std::size_t>(ni)],
                                         result, result.nets[static_cast<std::size_t>(ni)]);
    if (net.driver_kind == DriverKind::kInstance) {
      result.winning_input[static_cast<std::size_t>(net.driver_index)] = winning;
    }
  }

  // --- backward sweep: required times, reverse topological order ----------
  for (auto it = design.topo_nets.rbegin(); it != design.topo_nets.rend(); ++it) {
    backward_time_net(design, *it, result);
  }

  // --- endpoint summary ----------------------------------------------------
  result.summary.faulted_nets = corpus.faulted_nets;
  result.summary.batched_nets = corpus.batched_nets;
  result.summary.incomplete_nets = corpus.incomplete_nets;
  result.summary.cache_hits = corpus.cache_hits;
  result.summary.cache_misses = corpus.cache_misses;
  result.stop_status = corpus.stop_status;
  result.diagnostics = corpus.diagnostics;
  rebuild_endpoint_summary(design, result);
  return result;
}

Result<UpdateStats> TimingGraph::update_checked(TimingResult& result, CorpusCache& cache,
                                                const UpdateSeeds& seeds,
                                                const AnalyzeOptions& options) const {
  const Design& design = *design_;
  const std::size_t n_nets = design.nets.size();
  if (result.nets.size() != n_nets ||
      result.winning_input.size() != design.instances.size()) {
    return Status(ErrorCode::kInvalidArgument, "update: result does not belong to this design");
  }
  if (!result.stop_status.is_ok()) {
    return Status(ErrorCode::kInvalidArgument,
                  "update: cannot update a stop-interrupted result (re-analyze)");
  }
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    if (result.nets[ni].taps.size() != design.nets[ni].taps.size()) {
      return Status(ErrorCode::kInvalidArgument, "update: result shape is stale (re-analyze)")
          .with_net(design.nets[ni].name);
    }
  }
  const auto in_range = [n_nets](int ni) {
    return ni >= 0 && static_cast<std::size_t>(ni) < n_nets;
  };
  for (const int ni : seeds.forward_nets) {
    if (!in_range(ni)) {
      return Status(ErrorCode::kInvalidArgument, "update: forward seed net out of range");
    }
  }
  for (const int ni : seeds.backward_nets) {
    if (!in_range(ni)) {
      return Status(ErrorCode::kInvalidArgument, "update: backward seed net out of range");
    }
  }

  const std::uint64_t fingerprint = options_fingerprint(options);
  const util::RunControl rc{options.deadline, options.cancel};
  UpdateStats stats;

  // --- seed the dirty sets -------------------------------------------------
  std::vector<char> fwd(n_nets, 0);
  std::vector<char> bwd(n_nets, 0);
  for (const int ni : seeds.forward_nets) {
    fwd[static_cast<std::size_t>(ni)] = 1;
    // A wire edit moves this net's total load, which every arc *into* its
    // driving instance reads — in the forward max loop (covered: this net
    // is forward-dirty) and in the backward required of each input pin.
    // The latter can change even when this net's own driver required is
    // bitwise-unmoved, so the fanin nets are seeded backward explicitly.
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    if (net.driver_kind == DriverKind::kInstance) {
      const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
      for (const Instance::Pin& pin : inst.inputs) {
        bwd[static_cast<std::size_t>(pin.net)] = 1;
      }
    }
  }
  for (const int ni : seeds.backward_nets) bwd[static_cast<std::size_t>(ni)] = 1;
  if (seeds.clock_changed) {
    // The clock is the fallback constraint of every endpoint without its
    // own required=, so each net carrying such an endpoint re-derives.
    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      for (const Net::Tap& tap : design.nets[ni].taps) {
        if (tap.is_port && !design.ports[static_cast<std::size_t>(tap.index)].has_required) {
          bwd[ni] = 1;
          break;
        }
      }
    }
  }

  // --- forward cone sweep: dirty nets only, frontier cutoff on equality ---
  // One scan over the levelized order; a dirty net is recomputed into a
  // reused scratch with exactly the full sweep's code, committed only when
  // some forward bit moved, and its changed taps mark their consumer
  // instances' output nets dirty. RunControl is polled at cone-frontier
  // boundaries (every kPollStride positions), the corpus-ladder contract.
  NetTiming scratch;
  constexpr std::size_t kPollStride = 64;
  // relmore-lint: begin-hot-loop(retime-forward-frontier)
  for (std::size_t k = 0; k < design.topo_nets.size(); ++k) {
    if (k % kPollStride == 0 && rc.armed() && rc.stop_code() != ErrorCode::kOk) {
      stats.stop_status = rc.stop_status();
      return stats;
    }
    const int ni = design.topo_nets[k];
    if (fwd[static_cast<std::size_t>(ni)] == 0) continue;
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    const NetModels* models = cache.find(static_cast<std::size_t>(ni), net.epoch, fingerprint);
    if (models == nullptr) {
      return Status(ErrorCode::kInvalidArgument, "update: corpus cache does not cover net")
          .with_net(net.name);
    }
    const int winning = forward_time_net(design, ni, *models, result, scratch);
    NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
    if (net.driver_kind == DriverKind::kInstance) {
      // Committed even on a cutoff: a tie can move the winning pin while
      // the output timing stays bitwise-identical, and a from-scratch
      // analyze would report the new winner.
      result.winning_input[static_cast<std::size_t>(net.driver_index)] = winning;
    }
    if (same_forward_net(nt, scratch)) {
      ++stats.frontier_cutoffs;
      continue;
    }
    nt.faulted = scratch.faulted;
    nt.driver.timed = scratch.driver.timed;
    nt.driver.arrival = scratch.driver.arrival;
    nt.driver.slew = scratch.driver.slew;
    for (std::size_t t = 0; t < nt.taps.size(); ++t) {
      PointTiming& dst = nt.taps[t];
      const PointTiming& src = scratch.taps[t];
      const bool tap_changed = !same_forward_point(dst, src);
      dst.timed = src.timed;
      dst.arrival = src.arrival;
      dst.slew = src.slew;
      nt.wire_delay[t] = scratch.wire_delay[t];
      if (tap_changed && !net.taps[t].is_port) {
        const Instance& inst = design.instances[static_cast<std::size_t>(net.taps[t].index)];
        fwd[static_cast<std::size_t>(inst.out_net)] = 1;
      }
    }
    bwd[static_cast<std::size_t>(ni)] = 1;
    ++stats.forward_retimed;
  }
  // relmore-lint: end-hot-loop

  // --- backward cone sweep: reverse order, fanin marking on change --------
  // relmore-lint: begin-hot-loop(retime-backward-frontier)
  for (std::size_t k = 0; k < design.topo_nets.size(); ++k) {
    if (k % kPollStride == 0 && rc.armed() && rc.stop_code() != ErrorCode::kOk) {
      stats.stop_status = rc.stop_status();
      return stats;
    }
    const int ni = design.topo_nets[design.topo_nets.size() - 1 - k];
    if (bwd[static_cast<std::size_t>(ni)] == 0) continue;
    NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
    const double old_required = nt.driver.required;
    const bool old_constrained = nt.driver.constrained;
    backward_time_net(design, ni, result);
    ++stats.backward_retimed;
    const bool driver_moved =
        !same_bits(old_required, nt.driver.required) || old_constrained != nt.driver.constrained;
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    if (driver_moved && net.driver_kind == DriverKind::kInstance) {
      const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
      for (const Instance::Pin& pin : inst.inputs) {
        bwd[static_cast<std::size_t>(pin.net)] = 1;
      }
    } else if (!driver_moved) {
      ++stats.frontier_cutoffs;
    }
  }
  // relmore-lint: end-hot-loop

  rebuild_endpoint_summary(design, result);
  return stats;
}

Result<double> endpoint_slack_checked(const Design& design, const TimingResult& result,
                                      const std::string& port) {
  const int pi = design.find_port(port);
  if (pi < 0) {
    return Status(ErrorCode::kInvalidArgument, "unknown port '" + port + "'");
  }
  const DesignPort& p = design.ports[static_cast<std::size_t>(pi)];
  if (p.is_input) {
    return Status(ErrorCode::kInvalidArgument, "port '" + port + "' is not an endpoint");
  }
  const PointTiming& tt =
      result.nets[static_cast<std::size_t>(p.net)].taps[static_cast<std::size_t>(p.tap)];
  if (!tt.timed) {
    return Status(ErrorCode::kNonFiniteMoment,
                  "endpoint '" + port + "' is untimed (faulted fanout cone)")
        .with_net(design.nets[static_cast<std::size_t>(p.net)].name);
  }
  return tt.required - tt.arrival;
}

Result<std::vector<PathReport>> worst_paths_checked(const Design& design,
                                                    const TimingResult& result, std::size_t k) {
  if (result.nets.size() != design.nets.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "worst_paths: result does not belong to this design");
  }
  std::vector<PathReport> out;
  for (const EndpointSlack& row : result.summary.endpoints_by_slack) {
    if (out.size() >= k) break;
    if (!row.timed) continue;
    const DesignPort& port = design.ports[static_cast<std::size_t>(row.port)];
    PathReport path;
    path.endpoint = port.name;
    path.arrival = row.arrival;
    path.required = row.required;
    path.slack = row.slack;
    path.constrained = row.constrained;

    // Backtrack endpoint -> launch, then reverse.
    std::vector<PathPoint> rev;
    int ni = port.net;
    int tap = port.tap;
    bool done = false;
    while (!done) {
      const Net& net = design.nets[static_cast<std::size_t>(ni)];
      const NetTiming& nt = result.nets[static_cast<std::size_t>(ni)];
      const Net::Tap& t = net.taps[static_cast<std::size_t>(tap)];
      const PointTiming& tt = nt.taps[static_cast<std::size_t>(tap)];
      PathPoint wire;
      wire.point = "net " + net.name + " @ " +
                   net.tree.section(t.node).name;
      wire.incr = nt.wire_delay[static_cast<std::size_t>(tap)];
      wire.arrival = tt.arrival;
      wire.slew = tt.slew;
      rev.push_back(std::move(wire));

      if (net.driver_kind == DriverKind::kPort) {
        const DesignPort& in = design.ports[static_cast<std::size_t>(net.driver_index)];
        PathPoint launch;
        launch.point = "port " + in.name;
        launch.incr = 0.0;
        launch.arrival = nt.driver.arrival;
        launch.slew = nt.driver.slew;
        rev.push_back(std::move(launch));
        done = true;
      } else {
        const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
        const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
        const int wi = result.winning_input[static_cast<std::size_t>(net.driver_index)];
        if (wi < 0) {
          return Status(ErrorCode::kInvalidArgument,
                        "worst_paths: untimed instance on path (inconsistent result)")
              .with_net(net.name);
        }
        const Instance::Pin& pin = inst.inputs[static_cast<std::size_t>(wi)];
        const PointTiming& pin_t =
            result.nets[static_cast<std::size_t>(pin.net)].taps[static_cast<std::size_t>(pin.tap)];
        PathPoint gate;
        gate.point = inst.name + " (" + cell.name + ")";
        gate.incr = nt.driver.arrival - pin_t.arrival;
        gate.arrival = nt.driver.arrival;
        gate.slew = nt.driver.slew;
        rev.push_back(std::move(gate));
        ni = pin.net;
        tap = pin.tap;
      }
    }
    std::reverse(rev.begin(), rev.end());
    path.points = std::move(rev);
    out.push_back(std::move(path));
  }
  return out;
}

namespace {

// Appends `seconds` as picoseconds with 3 decimals ("%.3f" is byte-equal
// to the former fixed/precision(3) ostream rendering) straight into the
// caller's buffer — the formatters build one reserved string instead of
// an ostringstream + per-value temporaries per row.
void append_ps(std::string& out, double seconds) {
  if (std::isinf(seconds)) {
    out += seconds > 0 ? "inf" : "-inf";
    return;
  }
  char buf[48];
  const int n = std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e12);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_padded(std::string& out, const char* s, std::size_t len, std::size_t w) {
  out.append(s, len);
  if (len < w) out.append(w - len, ' ');
}

void append_padded(std::string& out, const std::string& s, std::size_t w) {
  append_padded(out, s.data(), s.size(), w);
}

// Pads a ps-formatted value by rendering into a scratch slice of `out`
// itself: remember where the value starts, append, then pad to width.
void append_ps_padded(std::string& out, double seconds, std::size_t w) {
  const std::size_t start = out.size();
  append_ps(out, seconds);
  const std::size_t len = out.size() - start;
  if (len < w) out.append(w - len, ' ');
}

}  // namespace

std::string format_path(const PathReport& path) {
  std::size_t width = 24;
  for (const PathPoint& p : path.points) width = std::max(width, p.point.size() + 2);
  std::string out;
  out.reserve(96 + (path.points.size() + 4) * (width + 44));
  out += "Path to endpoint '";
  out += path.endpoint;
  out += '\'';
  if (!path.constrained) out += " (unconstrained)";
  out += '\n';
  append_padded(out, "point", 5, width);
  append_padded(out, "incr [ps]", 9, 14);
  append_padded(out, "arrival [ps]", 12, 14);
  out += "slew [ps]\n";
  for (const PathPoint& p : path.points) {
    append_padded(out, p.point, width);
    append_ps_padded(out, p.incr, 14);
    append_ps_padded(out, p.arrival, 14);
    append_ps(out, p.slew);
    out += '\n';
  }
  append_padded(out, "required", 8, width);
  append_ps(out, path.required);
  out += " ps\n";
  append_padded(out, "arrival", 7, width);
  append_ps(out, path.arrival);
  out += " ps\n";
  append_padded(out, "slack", 5, width);
  append_ps(out, path.slack);
  out += " ps";
  if (path.slack < 0.0) out += "  (VIOLATED)";
  out += '\n';
  return out;
}

std::string format_summary(const TimingSummary& summary) {
  std::string out;
  out.reserve(224);
  out += "endpoints: ";
  out += std::to_string(summary.endpoints);
  out += " (";
  out += std::to_string(summary.constrained_endpoints);
  out += " constrained, ";
  out += std::to_string(summary.untimed_endpoints);
  out += " untimed)\nWNS: ";
  append_ps(out, summary.wns);
  out += " ps   TNS: ";
  append_ps(out, summary.tns);
  out += " ps\nnets faulted: ";
  out += std::to_string(summary.faulted_nets);
  out += "   nets batched: ";
  out += std::to_string(summary.batched_nets);
  if (summary.incomplete_nets > 0) {
    out += "   nets incomplete: ";
    out += std::to_string(summary.incomplete_nets);
  }
  out += '\n';
  return out;
}

}  // namespace relmore::sta
