#pragma once

/// \file liberty.hpp
/// Liberty-subset cell characterization: NLDM-style 2-D lookup tables
/// (delay and output slew indexed by input slew x output load) and a named
/// cell library. This is the *gate* half of a timing stage; the *wire*
/// half is the EED closed form on the net's RLC tree (opt::time_stage).
///
/// Tables interpolate bilinearly and clamp at the axis ends, the standard
/// Liberty semantics. `linear_cell` builds tables from the classic linear
/// gate model
///
///   delay(slew, load)  = intrinsic + drive_r * load + slew_gain * slew
///   oslew(slew, load)  = slew_factor * ln(9) * drive_r * load
///
/// which is *bilinear*, so bilinear interpolation reproduces it exactly at
/// every in-range query point — the property the golden STA test leans on.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

/// One NLDM-style lookup table: values[i * loads.size() + j] is the table
/// entry at input slew slews[i], output load loads[j].
class TimingTable {
 public:
  /// Empty table (lookup returns 0); exists so Cell is an aggregate.
  /// Build real tables via create_checked.
  TimingTable() = default;
  // The bracket hint is atomic (deleting the implicit copies), so the
  // value semantics Cell relies on are spelled out; copies carry the
  // hint along — it is only a probable-hit accelerator either way.
  TimingTable(const TimingTable& other);
  TimingTable& operator=(const TimingTable& other);
  TimingTable(TimingTable&& other) noexcept;
  TimingTable& operator=(TimingTable&& other) noexcept;
  /// Validates and builds: both axes must be non-empty and strictly
  /// increasing, `values` must hold slews.size() * loads.size() finite
  /// entries. Returns kInvalidArgument / kNonFiniteValue otherwise.
  [[nodiscard]] static util::Result<TimingTable> create_checked(std::vector<double> slews,
                                                                std::vector<double> loads,
                                                                std::vector<double> values);

  /// Exception-compatible shim over create_checked (throws util::FaultError).
  [[nodiscard]] static TimingTable create(std::vector<double> slews, std::vector<double> loads,
                                          std::vector<double> values);

  /// Bilinear interpolation, clamped to the axis ranges (Liberty
  /// semantics: queries beyond the characterized window use the edge
  /// cells' gradients frozen at the boundary value).
  [[nodiscard]] double lookup(double input_slew, double load) const;

  [[nodiscard]] const std::vector<double>& slew_axis() const { return slews_; }
  [[nodiscard]] const std::vector<double>& load_axis() const { return loads_; }

 private:
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;  ///< row-major [slew][load]
  /// Last bracketing cell, packed (slew row << 16 | load col). Levelized
  /// propagation queries each arc with near-identical (slew, load) runs,
  /// so the previous cell usually still brackets the query: lookup probes
  /// it before falling back to the binary searches. Never changes a
  /// result bit — a strictly increasing axis has exactly one bracketing
  /// cell, and the probe accepts only that one. Relaxed atomic so
  /// concurrent lookups (corpus workers) stay race-free; a stale hint
  /// only costs the fallback search.
  mutable std::atomic<std::uint32_t> hint_{0};
};

/// One library cell: a single output arc shared by every input pin (the
/// subset the corpus format needs — multi-arc cells are a later PR).
struct Cell {
  std::string name;
  double input_cap = 0.0;  ///< per input pin, folded into the driven net's tap node [F]
  TimingTable delay;       ///< 50%-in to 50%-out arc delay [s]
  TimingTable output_slew; ///< 10-90% slew at the output pin [s]

  [[nodiscard]] double arc_delay(double input_slew, double load) const {
    return delay.lookup(input_slew, load);
  }
  [[nodiscard]] double arc_slew(double input_slew, double load) const {
    return output_slew.lookup(input_slew, load);
  }
};

/// Parameters of the linear gate model a `cell` corpus line carries.
struct LinearCellSpec {
  std::string name;
  double drive_r = 1.0;       ///< output drive resistance [ohm]
  double input_cap = 0.0;     ///< input pin capacitance [F]
  double intrinsic = 0.0;     ///< zero-load zero-slew delay [s]
  double slew_gain = 0.0;     ///< d(delay)/d(input slew), dimensionless
  double slew_factor = 1.0;   ///< output slew = factor * ln9 * drive_r * load
};

/// Builds a 4x4-table cell from the linear model; exact under bilinear
/// interpolation for any in-range (slew, load). Returns kInvalidArgument
/// on negative drive_r/input_cap or non-finite parameters.
[[nodiscard]] util::Result<Cell> linear_cell_checked(const LinearCellSpec& spec);

/// Exception-compatible shim over linear_cell_checked.
[[nodiscard]] Cell linear_cell(const LinearCellSpec& spec);

/// Named cell collection a Design resolves `inst` lines against.
class CellLibrary {
 public:
  /// Adds or replaces (a corpus `cell` line shadows the base library).
  void add(Cell cell);
  /// Index of `name`, or -1.
  [[nodiscard]] int find(const std::string& name) const;
  [[nodiscard]] const Cell& cell(std::size_t index) const { return cells_.at(index); }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

 private:
  std::vector<Cell> cells_;
};

/// Small default library (buf/inv/nand2-style drive strengths) so a corpus
/// file only has to declare cells it wants to override.
[[nodiscard]] CellLibrary generic_library();

}  // namespace relmore::sta
