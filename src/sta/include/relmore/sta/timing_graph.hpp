#pragma once

/// \file timing_graph.hpp
/// Static timing over a Design: gate→net→gate stages, levelized arrival
/// and slew propagation, required-time back-propagation, per-endpoint
/// slack, and worst-path extraction with a report_timing-style formatter.
///
/// Semantics (the STA conventions, documented in docs/sta.md):
///  - wire stage: each tap of a net sees the EED closed form of its tree
///    node driven by the driver's 10-90% slew (opt::time_stage — ideal
///    step when the slew is 0); tap arrival = driver arrival + stage
///    delay, tap slew = the stage's 10-90% output rise.
///  - cell stage: instance output arrival = max over input pins of
///    (pin arrival + delay table(pin slew, output net load)); the winning
///    pin also supplies the output slew lookup. Loads are the driven
///    net's total capacitance with every sink pin cap folded in.
///  - endpoints: output ports. required = the port's `required=` when
///    given, else the design clock period; endpoints with neither are
///    unconstrained and excluded from WNS/TNS.
///  - required times propagate backward (min over fanout), so every
///    timing point carries a slack, not just endpoints.
///
/// The moment phase runs through analyze_corpus_checked, so the whole
/// analysis inherits its bitwise thread/lane-width independence; the
/// propagation itself is a sequential sweep over Design::topo_nets.
/// Faulted nets are skipped and poison only their own fanout cone: every
/// endpoint fed by one reports `timed == false` instead of a fake number.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "relmore/sta/corpus.hpp"
#include "relmore/sta/design.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

/// Timing state of one point (a net driver or one net tap).
struct PointTiming {
  bool timed = false;        ///< false: untimed (fault cone or unreached)
  double arrival = 0.0;      ///< [s]
  double slew = 0.0;         ///< 10-90% edge rate [s]
  double required = 0.0;     ///< [s]; +inf when unconstrained
  bool constrained = false;  ///< required reachable from a constrained endpoint
};

/// Per-net timing: the driving point plus one entry per tap.
struct NetTiming {
  PointTiming driver;
  std::vector<PointTiming> taps;    ///< parallel to Net::taps
  std::vector<double> wire_delay;   ///< driver -> tap stage delay, per tap
  bool faulted = false;             ///< moments unavailable (faulted or not run)
};

/// One endpoint's summary row.
struct EndpointSlack {
  int port = -1;          ///< index into Design::ports
  std::string name;
  bool timed = false;
  bool constrained = false;
  double arrival = 0.0;
  double required = 0.0;
  double slack = 0.0;     ///< required - arrival
};

/// Design-wide summary.
struct TimingSummary {
  double wns = 0.0;  ///< worst negative slack (most negative slack; >= 0 = met)
  double tns = 0.0;  ///< total negative slack (sum of negative slacks)
  std::size_t endpoints = 0;
  std::size_t constrained_endpoints = 0;
  std::size_t untimed_endpoints = 0;  ///< endpoints in a faulted fanout cone
  std::size_t faulted_nets = 0;
  std::size_t batched_nets = 0;       ///< corpus nets analyzed on AoSoA lanes
  std::size_t incomplete_nets = 0;    ///< corpus nets not analyzed: deadline/cancel
  std::size_t cache_hits = 0;         ///< corpus nets served by AnalyzeOptions::cache
  std::size_t cache_misses = 0;       ///< corpus nets the cache could not serve
  std::vector<EndpointSlack> endpoints_by_slack;  ///< ascending slack
};

/// Full analysis result; the input to slack queries and path extraction.
struct TimingResult {
  TimingSummary summary;
  std::vector<NetTiming> nets;       ///< indexed like Design::nets
  std::vector<int> winning_input;    ///< per instance: arrival-setting pin, -1 = none
  /// Non-ok when corpus analysis stopped at a deadline/cancellation
  /// (kDeadlineExceeded / kCancelled). Completed cones are still timed
  /// bitwise-identically to an uninterrupted run; nets the stop left
  /// unanalyzed are treated like faulted nets (their cones untimed).
  util::Status stop_status;
  /// Corpus-phase record: per-name errors for faulted nets, warnings for
  /// incomplete nets and recovered transients (see corpus.hpp).
  util::DiagnosticsReport diagnostics;
};

/// One point of a reported path, launch to endpoint.
struct PathPoint {
  std::string point;    ///< "port clk_in", "u3 (buf_x1)", "net n2 @ s7", ...
  double incr = 0.0;    ///< delay added by this hop
  double arrival = 0.0;
  double slew = 0.0;
};

/// One extracted worst path.
struct PathReport {
  std::string endpoint;
  double arrival = 0.0;
  double required = 0.0;
  double slack = 0.0;
  bool constrained = false;
  std::vector<PathPoint> points;  ///< launch first
};

/// Dirty seeds for an incremental `update_checked` pass, expressed in the
/// edit vocabulary: which nets had wire values (or their driver's arc
/// tables) change, which nets' required-time inputs moved, and whether
/// the design clock was retargeted. The update derives the full dirty
/// cones from these (fanout for arrivals, fanin for requireds).
struct UpdateSeeds {
  std::vector<int> forward_nets;   ///< wire values / driver arc tables changed
  std::vector<int> backward_nets;  ///< required-time inputs changed (cell swaps
                                   ///< on fanout, port constraint edits)
  bool clock_changed = false;      ///< design clock period moved
};

/// Work accounting for one incremental update pass.
struct UpdateStats {
  std::size_t forward_retimed = 0;    ///< nets whose forward half changed bits
  std::size_t backward_retimed = 0;   ///< nets whose required times were re-derived
  std::size_t frontier_cutoffs = 0;   ///< dirty-cone recomputes that stopped
                                      ///< propagation (bitwise-unchanged result)
  /// Non-ok when the pass stopped at a deadline/cancellation. The result
  /// is then PARTIALLY updated and must be discarded by the caller (the
  /// Timer drops its cached analysis); the design itself is untouched.
  util::Status stop_status;
};

/// Static timing graph over one Design. Holds a pointer to the design;
/// the design must outlive the graph (relmore::Timer owns both).
class TimingGraph {
 public:
  /// Validates that `design` is finalized (nets snapshot, topo order
  /// covering every net) and builds the graph.
  [[nodiscard]] static util::Result<TimingGraph> build_checked(const Design& design);

  /// Runs corpus moment analysis + levelized propagation. Execution knobs
  /// in `options` never change results (bitwise).
  [[nodiscard]] util::Result<TimingResult> analyze_checked(
      const AnalyzeOptions& options = {}) const;

  /// Incrementally re-times `result` (a prior full analysis of this
  /// design) after the edits described by `seeds`: arrivals/slews are
  /// repropagated forward and required times backward only through the
  /// levelized dirty cones, with a frontier cutoff wherever a recomputed
  /// net's forward half is bitwise-unchanged. On success `result` is
  /// bitwise-equal to a from-scratch analyze of the edited design in
  /// every PointTiming, wire delay, WNS/TNS, and endpoint row; the
  /// corpus-phase bookkeeping (batched/cache counts, diagnostics) keeps
  /// its last-full-analysis values.
  ///
  /// `cache` must cover every net in the dirty cones at its current epoch
  /// (the Timer guarantees this: a full analyze fills it, edits restamp
  /// the edited slots) — a miss fails with kInvalidArgument and the
  /// caller falls back to a full analyze. `options.deadline`/`cancel` are
  /// polled at cone-frontier boundaries; a stop returns ok with
  /// UpdateStats::stop_status non-ok and the partially-updated `result`
  /// must be discarded. Errors leave `result` unchanged only for the
  /// up-front validation failures; a cache miss mid-cone also requires
  /// discarding (the Timer treats every failure path the same way).
  [[nodiscard]] util::Result<UpdateStats> update_checked(TimingResult& result, CorpusCache& cache,
                                                         const UpdateSeeds& seeds,
                                                         const AnalyzeOptions& options = {}) const;

  [[nodiscard]] const Design& design() const { return *design_; }

 private:
  explicit TimingGraph(const Design* design) : design_(design) {}
  const Design* design_;
};

/// Slack of the endpoint (output port) named `port`. kInvalidArgument for
/// unknown or non-endpoint ports; kNonFiniteMoment when the endpoint sits
/// in a faulted fanout cone.
[[nodiscard]] util::Result<double> endpoint_slack_checked(const Design& design,
                                                          const TimingResult& result,
                                                          const std::string& port);

/// The `k` worst (smallest-slack) constrained endpoints' critical paths,
/// backtracked through winning arcs. Fewer than `k` when the design has
/// fewer timed endpoints.
[[nodiscard]] util::Result<std::vector<PathReport>> worst_paths_checked(
    const Design& design, const TimingResult& result, std::size_t k);

/// report_timing-style text: one block per path, point/incr/arrival
/// columns, slack line at the bottom.
[[nodiscard]] std::string format_path(const PathReport& path);

/// One-paragraph design summary (WNS/TNS/endpoint counts/fault counts).
[[nodiscard]] std::string format_summary(const TimingSummary& summary);

}  // namespace relmore::sta
