#pragma once

/// \file timing_graph.hpp
/// Static timing over a Design: gate→net→gate stages, levelized arrival
/// and slew propagation, required-time back-propagation, per-endpoint
/// slack, and worst-path extraction with a report_timing-style formatter.
///
/// Semantics (the STA conventions, documented in docs/sta.md):
///  - wire stage: each tap of a net sees the EED closed form of its tree
///    node driven by the driver's 10-90% slew (opt::time_stage — ideal
///    step when the slew is 0); tap arrival = driver arrival + stage
///    delay, tap slew = the stage's 10-90% output rise.
///  - cell stage: instance output arrival = max over input pins of
///    (pin arrival + delay table(pin slew, output net load)); the winning
///    pin also supplies the output slew lookup. Loads are the driven
///    net's total capacitance with every sink pin cap folded in.
///  - endpoints: output ports. required = the port's `required=` when
///    given, else the design clock period; endpoints with neither are
///    unconstrained and excluded from WNS/TNS.
///  - required times propagate backward (min over fanout), so every
///    timing point carries a slack, not just endpoints.
///
/// The moment phase runs through analyze_corpus_checked, so the whole
/// analysis inherits its bitwise thread/lane-width independence; the
/// propagation itself is a sequential sweep over Design::topo_nets.
/// Faulted nets are skipped and poison only their own fanout cone: every
/// endpoint fed by one reports `timed == false` instead of a fake number.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "relmore/sta/corpus.hpp"
#include "relmore/sta/design.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

/// Timing state of one point (a net driver or one net tap).
struct PointTiming {
  bool timed = false;        ///< false: untimed (fault cone or unreached)
  double arrival = 0.0;      ///< [s]
  double slew = 0.0;         ///< 10-90% edge rate [s]
  double required = 0.0;     ///< [s]; +inf when unconstrained
  bool constrained = false;  ///< required reachable from a constrained endpoint
};

/// Per-net timing: the driving point plus one entry per tap.
struct NetTiming {
  PointTiming driver;
  std::vector<PointTiming> taps;    ///< parallel to Net::taps
  std::vector<double> wire_delay;   ///< driver -> tap stage delay, per tap
  bool faulted = false;             ///< moments unavailable (faulted or not run)
};

/// One endpoint's summary row.
struct EndpointSlack {
  int port = -1;          ///< index into Design::ports
  std::string name;
  bool timed = false;
  bool constrained = false;
  double arrival = 0.0;
  double required = 0.0;
  double slack = 0.0;     ///< required - arrival
};

/// Design-wide summary.
struct TimingSummary {
  double wns = 0.0;  ///< worst negative slack (most negative slack; >= 0 = met)
  double tns = 0.0;  ///< total negative slack (sum of negative slacks)
  std::size_t endpoints = 0;
  std::size_t constrained_endpoints = 0;
  std::size_t untimed_endpoints = 0;  ///< endpoints in a faulted fanout cone
  std::size_t faulted_nets = 0;
  std::size_t batched_nets = 0;       ///< corpus nets analyzed on AoSoA lanes
  std::size_t incomplete_nets = 0;    ///< corpus nets not analyzed: deadline/cancel
  std::vector<EndpointSlack> endpoints_by_slack;  ///< ascending slack
};

/// Full analysis result; the input to slack queries and path extraction.
struct TimingResult {
  TimingSummary summary;
  std::vector<NetTiming> nets;       ///< indexed like Design::nets
  std::vector<int> winning_input;    ///< per instance: arrival-setting pin, -1 = none
  /// Non-ok when corpus analysis stopped at a deadline/cancellation
  /// (kDeadlineExceeded / kCancelled). Completed cones are still timed
  /// bitwise-identically to an uninterrupted run; nets the stop left
  /// unanalyzed are treated like faulted nets (their cones untimed).
  util::Status stop_status;
  /// Corpus-phase record: per-name errors for faulted nets, warnings for
  /// incomplete nets and recovered transients (see corpus.hpp).
  util::DiagnosticsReport diagnostics;
};

/// One point of a reported path, launch to endpoint.
struct PathPoint {
  std::string point;    ///< "port clk_in", "u3 (buf_x1)", "net n2 @ s7", ...
  double incr = 0.0;    ///< delay added by this hop
  double arrival = 0.0;
  double slew = 0.0;
};

/// One extracted worst path.
struct PathReport {
  std::string endpoint;
  double arrival = 0.0;
  double required = 0.0;
  double slack = 0.0;
  bool constrained = false;
  std::vector<PathPoint> points;  ///< launch first
};

/// Static timing graph over one Design. Holds a pointer to the design;
/// the design must outlive the graph (relmore::Timer owns both).
class TimingGraph {
 public:
  /// Validates that `design` is finalized (nets snapshot, topo order
  /// covering every net) and builds the graph.
  [[nodiscard]] static util::Result<TimingGraph> build_checked(const Design& design);

  /// Runs corpus moment analysis + levelized propagation. Execution knobs
  /// in `options` never change results (bitwise).
  [[nodiscard]] util::Result<TimingResult> analyze_checked(
      const AnalyzeOptions& options = {}) const;

  [[nodiscard]] const Design& design() const { return *design_; }

 private:
  explicit TimingGraph(const Design* design) : design_(design) {}
  const Design* design_;
};

/// Slack of the endpoint (output port) named `port`. kInvalidArgument for
/// unknown or non-endpoint ports; kNonFiniteMoment when the endpoint sits
/// in a faulted fanout cone.
[[nodiscard]] util::Result<double> endpoint_slack_checked(const Design& design,
                                                          const TimingResult& result,
                                                          const std::string& port);

/// The `k` worst (smallest-slack) constrained endpoints' critical paths,
/// backtracked through winning arcs. Fewer than `k` when the design has
/// fewer timed endpoints.
[[nodiscard]] util::Result<std::vector<PathReport>> worst_paths_checked(
    const Design& design, const TimingResult& result, std::size_t k);

/// report_timing-style text: one block per path, point/incr/arrival
/// columns, slack line at the bottom.
[[nodiscard]] std::string format_path(const PathReport& path);

/// One-paragraph design summary (WNS/TNS/endpoint counts/fault counts).
[[nodiscard]] std::string format_summary(const TimingSummary& summary);

}  // namespace relmore::sta
