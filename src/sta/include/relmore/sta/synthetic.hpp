#pragma once

/// \file synthetic.hpp
/// Deterministic synthetic design generation for benches and tests:
/// buffered chains over a small set of repeated wire topologies, sized to
/// corpus scale (the throughput bench loads >= 1000 nets).
///
/// The generator emits corpus *text* and parses it through
/// read_design_checked — so the reader is on the measured path, the
/// output doubles as fuzz-seed material, and the design is by construction
/// reproducible from (spec).

#include <cstdint>
#include <string>

#include "relmore/sta/design.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

/// Shape of the generated corpus.
struct SyntheticSpec {
  std::size_t nets = 1000;        ///< total nets (>= 2)
  std::uint64_t seed = 1;         ///< value-perturbation seed
  std::size_t topo_classes = 8;   ///< distinct wire topologies; nets cycle
                                  ///< through them, so each class forms a
                                  ///< same-topology batch group
  std::size_t chain_depth = 4;    ///< nets per input->output chain
  double clock_period = 2e-9;     ///< endpoint constraint [s]
};

/// The corpus text for `spec` (see design.hpp for the format).
[[nodiscard]] std::string make_synthetic_design_text(const SyntheticSpec& spec = {});

/// Generates + parses. kInvalidArgument when spec.nets < 2 or
/// spec.chain_depth == 0.
[[nodiscard]] util::Result<Design> make_synthetic_design_checked(const SyntheticSpec& spec = {});

}  // namespace relmore::sta
