#pragma once

/// \file corpus.hpp
/// Corpus-sharded moment analysis: every net of a Design analyzed in one
/// parallel phase, with the same bitwise-reproducibility contract as the
/// per-tree kernels.
///
/// Dispatch: nets whose FlatTrees share an identical parent vector form a
/// *topology group* and run through the batched AoSoA kernel
/// (engine::BatchedAnalyzer, one lane per net); every remaining net runs
/// the scalar FlatTree path. Both paths write into a per-net slot, and
/// each lane/sample is bitwise-identical to a scalar `eed::analyze` of
/// that net's tree, so the corpus result is a pure function of the design
/// — independent of thread count, lane width, and group scheduling.
///
/// Faults: one malformed net must not kill a 10^5-net run. The phase
/// always executes under a flag policy; what the *caller* asked for is
/// applied at the join: kThrow surfaces the first faulted net (by net
/// index) as a Status naming it, the flag policies leave the net marked
/// (NetModels::faulted + status) and every healthy net fully analyzed.

#include <cstddef>
#include <vector>

#include "relmore/eed/model.hpp"
#include "relmore/sta/design.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

/// Execution + fault knobs for corpus analysis. The execution half
/// (threads/lane_width/min_group) never changes a single output bit.
struct AnalyzeOptions {
  unsigned threads = 0;         ///< engine::BatchAnalyzer workers (0 = default)
  std::size_t lane_width = 0;   ///< lane width 1/2/4/8 (0 = engine::KernelTuner's pick)
  std::size_t min_group = 4;    ///< smallest topology group worth batching
  util::FaultPolicy fault_policy = util::FaultPolicy::kSkipAndFlag;
};

/// Moment models of one net, at its tap nodes only (the timing graph
/// reads nothing else; storing full TreeModels for 10^5 nets would be
/// most of the corpus' memory for no reader).
struct NetModels {
  std::vector<eed::NodeModel> taps;  ///< parallel to Net::taps
  bool faulted = false;
  util::Status status;               ///< why, when faulted
};

/// Per-net models for a whole design, indexed like Design::nets.
struct CorpusModels {
  std::vector<NetModels> nets;
  std::size_t faulted_nets = 0;
  std::size_t batched_nets = 0;  ///< nets that ran through AoSoA lanes
};

/// Analyzes every net of `design`. Returns a Status only for caller
/// errors (empty design) or under FaultPolicy::kThrow when a net faulted;
/// under the flag policies per-net failures are isolated in the result.
[[nodiscard]] util::Result<CorpusModels> analyze_corpus_checked(const Design& design,
                                                               const AnalyzeOptions& options = {});

}  // namespace relmore::sta
