#pragma once

/// \file corpus.hpp
/// Corpus-sharded moment analysis: every net of a Design analyzed in one
/// parallel phase, with the same bitwise-reproducibility contract as the
/// per-tree kernels.
///
/// Dispatch: nets whose FlatTrees share an identical parent vector form a
/// *topology group* and run through the batched AoSoA kernel
/// (engine::BatchedAnalyzer, one lane per net); every remaining net runs
/// the scalar FlatTree path. Both paths write into a per-net slot, and
/// each lane/sample is bitwise-identical to a scalar `eed::analyze` of
/// that net's tree, so the corpus result is a pure function of the design
/// — independent of thread count, lane width, and group scheduling.
///
/// Faults: one malformed net must not kill a 10^5-net run. The phase
/// always executes under a flag policy; what the *caller* asked for is
/// applied at the join: kThrow surfaces the first faulted net (by net
/// index) as a Status naming it, the flag policies leave the net marked
/// (NetModels::faulted + status) and every healthy net fully analyzed.
///
/// Degradation ladder (docs/robustness.md): *transient* failures —
/// workspace allocation (std::bad_alloc -> kResourceExhausted) and
/// injected pool faults (kInjectedFault) — are retried with capped
/// exponential backoff; a topology group whose batched attempts keep
/// failing falls back to the scalar path per member net; a net that still
/// fails after the scalar retries is quarantined (faulted, per-net
/// status), poisoning only its own timing cone. *Data* faults (bad
/// values, non-finite moments) are never retried — rerunning a pure
/// function on the same bits cannot heal them. Because every net's result
/// is a pure function of its tree, retries and fallbacks never change a
/// healthy net's bits.
///
/// Deadlines/cancellation: `AnalyzeOptions::deadline` / `cancel` are
/// polled between nets and lane groups (and inside the batched engine at
/// group boundaries). On a stop, every net completed so far is kept —
/// bitwise-identical to an uninterrupted run — and each unfinished net is
/// reported by name as a warning in `CorpusModels::diagnostics`
/// (NetModels::analyzed stays false); `CorpusModels::stop_status` carries
/// kDeadlineExceeded / kCancelled. Under FaultPolicy::kThrow a stop is
/// returned as the call's failing Status instead.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relmore/eed/model.hpp"
#include "relmore/sta/design.hpp"
#include "relmore/util/deadline.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

class CorpusCache;

/// Execution + fault knobs for corpus analysis. The execution half
/// (threads/lane_width/min_group/retries/deadline) never changes a single
/// output bit of any net that completes.
struct AnalyzeOptions {
  unsigned threads = 0;         ///< engine::BatchAnalyzer workers (0 = default)
  std::size_t lane_width = 0;   ///< lane width 1/2/4/8 (0 = engine::KernelTuner's pick)
  std::size_t min_group = 4;    ///< smallest topology group worth batching
  util::FaultPolicy fault_policy = util::FaultPolicy::kSkipAndFlag;
  /// Degradation-ladder retry budget for *transient* faults (allocation
  /// failure, injected pool faults): total attempts per phase/group/net,
  /// with capped exponential backoff between attempts. Minimum 1.
  std::size_t max_attempts = 3;
  /// Cooperative run control, polled between nets and lane groups. The
  /// caller keeps `cancel` (when non-null) alive for the call's duration.
  util::Deadline deadline;
  const util::CancelToken* cancel = nullptr;
  /// Optional per-net analysis cache (relmore::Timer plugs its own in).
  /// A net whose (epoch, options fingerprint) matches its cached slot
  /// skips the scalar/batched kernels entirely — bitwise-safe because a
  /// net's models are a pure function of its tree bits, and Design bumps
  /// the net epoch on every re-finalize/edit. The caller keeps the cache
  /// alive for the call's duration; not thread-safe (one analysis at a
  /// time per cache, the Timer discipline).
  CorpusCache* cache = nullptr;
};

/// Moment models of one net, at its tap nodes only (the timing graph
/// reads nothing else; storing full TreeModels for 10^5 nets would be
/// most of the corpus' memory for no reader).
struct NetModels {
  std::vector<eed::NodeModel> taps;  ///< parallel to Net::taps
  bool analyzed = false;  ///< taps hold real results (false: faulted or not run)
  bool faulted = false;
  util::Status status;               ///< why, when faulted
};

/// Per-net models for a whole design, indexed like Design::nets.
struct CorpusModels {
  std::vector<NetModels> nets;
  std::size_t faulted_nets = 0;
  std::size_t batched_nets = 0;      ///< nets that ran through AoSoA lanes
  std::size_t incomplete_nets = 0;   ///< not analyzed: deadline/cancel stop
  std::size_t fallback_nets = 0;     ///< degraded batched -> scalar
  std::size_t quarantined_nets = 0;  ///< faulted after exhausting transient retries
  std::size_t cache_hits = 0;        ///< nets served from AnalyzeOptions::cache
  std::size_t cache_misses = 0;      ///< nets the cache could not serve
  /// Non-ok when the run stopped at a deadline/cancellation; completed
  /// nets are kept and bitwise-identical to an uninterrupted run.
  util::Status stop_status;
  /// Per-name record of everything that went wrong: one error per faulted
  /// net, one warning per incomplete net, one warning per recovered
  /// transient (retry, batched->scalar fallback).
  util::DiagnosticsReport diagnostics;
};

/// Persistent per-net model store keyed by (net epoch, options
/// fingerprint). Only *decided, healthy* verdicts are cached — faulted
/// and stop-interrupted nets are recomputed every run, so a transient
/// failure can never be pinned by the cache. Epoch keying makes
/// invalidation free: Design::epoch (stamped into Net::epoch) moves on
/// every finalize/edit, so a stale slot simply stops matching.
///
/// Not thread-safe: one analysis/edit at a time per cache (the
/// relmore::Timer discipline; analyze_corpus_checked touches it only from
/// the calling thread).
class CorpusCache {
 public:
  /// Lifetime totals, on top of the per-run counts in CorpusModels.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
  };

  /// The cached models of net `net_index`, or nullptr when the slot is
  /// empty or keyed to a different (epoch, fingerprint). Counts one hit
  /// or miss.
  [[nodiscard]] const NetModels* find(std::size_t net_index, std::uint64_t epoch,
                                      std::uint64_t fingerprint);

  /// Stores (replaces) net `net_index`'s slot. Only analyzed, unfaulted
  /// models should be stored; faulted/undecided slots must stay
  /// recomputable (see class comment).
  void store(std::size_t net_index, std::uint64_t epoch, std::uint64_t fingerprint,
             NetModels models);

  void clear();
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Slot {
    bool valid = false;
    std::uint64_t epoch = 0;
    std::uint64_t fingerprint = 0;
    NetModels models;
  };
  std::vector<Slot> slots_;
  Counters counters_;
};

/// The cache key half derived from `options`. Only knobs that can change
/// an output bit participate — execution knobs (threads, lane width,
/// tiling, retries, deadlines) never do. The phase fault policy does
/// (kClampAndFlag rewrites degenerate moments), so it keys the slot after
/// kThrow-normalization: kThrow and kSkipAndFlag share a fingerprint (the
/// phase runs them identically), kClampAndFlag gets its own. Kept
/// explicit so a future bit-changing option widens the key instead of
/// poisoning slots.
[[nodiscard]] std::uint64_t options_fingerprint(const AnalyzeOptions& options);

/// Analyzes every net of `design`. Returns a Status only for caller
/// errors (empty design), under FaultPolicy::kThrow when a net faulted or
/// the run was stopped; under the flag policies per-net failures are
/// isolated in the result and a stop comes back as stop_status.
[[nodiscard]] util::Result<CorpusModels> analyze_corpus_checked(const Design& design,
                                                               const AnalyzeOptions& options = {});

}  // namespace relmore::sta
