#pragma once

/// \file sta.hpp
/// Umbrella header for the static-timing module: design corpus model +
/// reader, Liberty-subset cell tables, corpus-sharded moment analysis,
/// and the levelized timing graph. Most callers want the relmore::Timer
/// façade in relmore/timer.hpp instead.

#include "relmore/sta/corpus.hpp"     // IWYU pragma: export
#include "relmore/sta/design.hpp"     // IWYU pragma: export
#include "relmore/sta/liberty.hpp"    // IWYU pragma: export
#include "relmore/sta/synthetic.hpp"  // IWYU pragma: export
#include "relmore/sta/timing_graph.hpp"  // IWYU pragma: export
