#pragma once

/// \file design.hpp
/// The design corpus model: many named nets (each an RLC tree), the cell
/// instances connecting them, and the boundary ports — the input the
/// chip-scale timing flow (timing_graph.hpp) consumes.
///
/// Corpus text format (SPEF-subset in spirit: per-net parasitic trees with
/// named taps; line-oriented so fuzz seeds stay human-readable):
///
///     design <name>
///     cell <name> r=<ohm> cap=<F> intrinsic=<s> [slewgain=<x>] [slewfactor=<x>]
///     net <name>
///       <tree netlist lines, see circuit/netlist.hpp>
///     end
///     input <port> <net> [at=<s>] [slew=<s>]
///     output <port> <net>:<node> [required=<s>]
///     inst <name> <cell> <outnet> <innet>:<node> [<innet>:<node> ...]
///     clock <period-seconds>
///
/// Values accept SPICE SI suffixes. `cell` lines extend/override the base
/// library. Every `inst` input pin taps a named node of its input net; the
/// pin capacitance is folded into that node's shunt C before the net's
/// FlatTree snapshot is taken, so the wire model sees the real load.
///
/// `read_design_checked` validates everything it resolves (unknown
/// cells/nets/nodes, double-driven or undriven nets, combinational
/// cycles) and tags every finding with the offending net/instance name
/// (Diagnostic::net), then *finalizes* the design: pin caps folded,
/// per-net FlatTree snapshots stamped with the design epoch, total load
/// per net precomputed, and nets levelized into a topological order.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/sta/liberty.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::sta {

/// Who drives a net.
enum class DriverKind : std::uint8_t {
  kNone = 0,   ///< unresolved (an error after finalize)
  kPort,       ///< a primary input port
  kInstance,   ///< a cell instance output pin
};

/// One net: a named RLC tree plus its resolved connectivity.
struct Net {
  std::string name;
  circuit::RlcTree tree;      ///< parsed tree, pin caps folded into tap nodes
  circuit::FlatTree flat;     ///< SoA snapshot of `tree` (analysis hot path)
  std::uint64_t epoch = 0;    ///< design epoch at which `flat` was snapshot
  double total_cap = 0.0;     ///< load the net presents to its driver [F]

  DriverKind driver_kind = DriverKind::kNone;
  int driver_index = -1;      ///< port or instance index, per driver_kind

  /// Tap points: instance input pins and output ports attached to nodes of
  /// this net (parallel arrays; sink_kind true = output port).
  struct Tap {
    circuit::SectionId node = circuit::kInput;
    bool is_port = false;  ///< true: output port `index`; false: instance input
    int index = -1;        ///< port index, or instance index
    int pin = -1;          ///< input pin position within the instance (ports: -1)
  };
  std::vector<Tap> taps;

  int level = -1;  ///< topological level (0 = driven by an input port)
};

/// One cell instance: output net plus one tap per input pin.
struct Instance {
  std::string name;
  int cell = -1;      ///< index into Design::library
  int out_net = -1;   ///< net driven by the output pin
  /// Input pins: (net index, tap index within that net), pin order.
  struct Pin {
    int net = -1;
    int tap = -1;
  };
  std::vector<Pin> inputs;
};

/// A boundary port. Input ports launch arrivals at a net's driving point;
/// output ports are timing endpoints at a tap node.
struct DesignPort {
  std::string name;
  bool is_input = false;
  int net = -1;
  int tap = -1;                ///< output ports: tap index in the net; inputs: -1
  double arrival = 0.0;        ///< input ports: launch time [s]
  double slew = 0.0;           ///< input ports: 10-90% edge rate [s] (0 = step)
  double required = 0.0;       ///< output ports: required time [s]
  bool has_required = false;   ///< false: fall back to the design clock
};

/// The whole corpus, finalized and ready for analysis.
struct Design {
  std::string name;
  CellLibrary library;
  std::vector<Net> nets;
  std::vector<Instance> instances;
  std::vector<DesignPort> ports;
  double clock_period = 0.0;   ///< 0 = unconstrained endpoints
  std::uint64_t epoch = 0;     ///< bumped by each finalize; stamps Net::flat

  /// Net indices in propagation order (every net appears after the nets
  /// that feed its driver).
  std::vector<int> topo_nets;

  [[nodiscard]] int find_net(const std::string& net_name) const;
  [[nodiscard]] int find_port(const std::string& port_name) const;
  [[nodiscard]] std::size_t endpoint_count() const;
};

/// Parses and finalizes a corpus file. `base` seeds the cell library
/// (corpus `cell` lines extend/override it); `report`, when given,
/// collects every finding — errors and warnings — instead of only the
/// first error the Status carries. Never throws.
[[nodiscard]] util::Result<Design> read_design_checked(std::istream& is,
                                                       CellLibrary base = generic_library(),
                                                       util::DiagnosticsReport* report = nullptr);

/// Exception-compatible shim over read_design_checked: throws
/// util::FaultError on any rejected corpus.
[[nodiscard]] Design read_design(std::istream& is, CellLibrary base = generic_library());

}  // namespace relmore::sta
