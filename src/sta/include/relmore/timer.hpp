#pragma once

/// \file timer.hpp
/// The top-level façade of the library: load a design corpus, time it,
/// query slack, report worst paths — four Result-returning calls.
///
///     relmore::Timer timer;
///     if (util::Status s = timer.load(file); !s.is_ok()) { ... }
///     auto summary = timer.analyze();
///     auto paths = timer.report_worst_paths(3);
///     auto slack = timer.slack("out0");
///
/// Every entry point returns util::Status / util::Result<T> — the
/// `_checked` convention the per-module APIs follow, with the exception
/// shims dropped: a chip-scale flow has no sensible place to catch, so
/// the façade is Result-only by design. The Timer owns its Design behind
/// a stable pointer, so moving the Timer never invalidates the analysis
/// state.

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relmore/sta/sta.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore {

/// One design, loaded once, analyzed on demand. Queries (`slack`,
/// `report_worst_paths`, `report_timing`) run `analyze()` lazily when the
/// design has not been timed yet, and reuse the cached result otherwise.
class Timer {
 public:
  Timer();
  ~Timer();
  Timer(Timer&&) noexcept;
  Timer& operator=(Timer&&) noexcept;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Parses + finalizes a corpus stream (see sta/design.hpp for the
  /// format). Replaces any previously loaded design and drops its cached
  /// analysis. `report`, when given, collects every finding.
  [[nodiscard]] util::Status load(std::istream& is,
                                  sta::CellLibrary library = sta::generic_library(),
                                  util::DiagnosticsReport* report = nullptr);

  /// Adopts an already-built design (e.g. sta::make_synthetic_design_checked).
  [[nodiscard]] util::Status load(sta::Design design);

  /// Times the loaded design; caches and returns the summary. `options`
  /// tunes execution only — results are bitwise-independent of it. An
  /// analysis stopped by `options.deadline` / `options.cancel` is kept
  /// queryable (completed cones are exact) but is NOT treated as cached:
  /// the next analyze()/query re-runs it, so a transient deadline never
  /// pins a partial result for the Timer's lifetime.
  [[nodiscard]] util::Result<sta::TimingSummary> analyze(const sta::AnalyzeOptions& options = {});

  /// Slack of endpoint (output port) `endpoint`, timing the design first
  /// if needed.
  [[nodiscard]] util::Result<double> slack(const std::string& endpoint);

  /// The `k` worst constrained paths, report_timing-style.
  [[nodiscard]] util::Result<std::vector<sta::PathReport>> report_worst_paths(std::size_t k = 1);

  /// Formats the summary plus the `k` worst paths into `os`. Returns the
  /// Status of the underlying analysis.
  [[nodiscard]] util::Status report_timing(std::ostream& os, std::size_t k = 1);

  [[nodiscard]] bool loaded() const { return design_ != nullptr; }
  /// nullptr until load() succeeds.
  [[nodiscard]] const sta::Design* design() const { return design_.get(); }
  /// nullptr until analyze() succeeds.
  [[nodiscard]] const sta::TimingResult* result() const;

 private:
  [[nodiscard]] util::Status ensure_analyzed();

  std::unique_ptr<sta::Design> design_;        ///< stable address across moves
  std::optional<sta::TimingResult> result_;
  sta::AnalyzeOptions options_;
};

}  // namespace relmore
