#pragma once

/// \file timer.hpp
/// The top-level façade of the library: load a design corpus, time it,
/// query slack, report worst paths — four Result-returning calls.
///
///     relmore::Timer timer;
///     if (util::Status s = timer.load(file); !s.is_ok()) { ... }
///     auto summary = timer.analyze();
///     auto paths = timer.report_worst_paths(3);
///     auto slack = timer.slack("out0");
///
/// Every entry point returns util::Status / util::Result<T> — the
/// `_checked` convention the per-module APIs follow, with the exception
/// shims dropped: a chip-scale flow has no sensible place to catch, so
/// the façade is Result-only by design. The Timer owns its Design behind
/// a stable pointer, so moving the Timer never invalidates the analysis
/// state.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relmore/engine/timing_engine.hpp"
#include "relmore/sta/sta.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore {

/// One design, loaded once, analyzed on demand. Queries (`slack`,
/// `report_worst_paths`, `report_timing`) run `analyze()` lazily when the
/// design has not been timed yet, and reuse the cached result otherwise.
class Timer {
 public:
  Timer();
  ~Timer();
  Timer(Timer&&) noexcept;
  Timer& operator=(Timer&&) noexcept;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Parses + finalizes a corpus stream (see sta/design.hpp for the
  /// format). Replaces any previously loaded design and drops its cached
  /// analysis. `report`, when given, collects every finding.
  [[nodiscard]] util::Status load(std::istream& is,
                                  sta::CellLibrary library = sta::generic_library(),
                                  util::DiagnosticsReport* report = nullptr);

  /// Adopts an already-built design (e.g. sta::make_synthetic_design_checked).
  [[nodiscard]] util::Status load(sta::Design design);

  /// Times the loaded design; caches and returns the summary. `options`
  /// tunes execution only — results are bitwise-independent of it. An
  /// analysis stopped by `options.deadline` / `options.cancel` is kept
  /// queryable (completed cones are exact) but is NOT treated as cached:
  /// the next analyze()/query re-runs it, so a transient deadline never
  /// pins a partial result for the Timer's lifetime.
  [[nodiscard]] util::Result<sta::TimingSummary> analyze(const sta::AnalyzeOptions& options = {});

  /// Slack of endpoint (output port) `endpoint`, timing the design first
  /// if needed.
  [[nodiscard]] util::Result<double> slack(const std::string& endpoint);

  /// The `k` worst constrained paths, report_timing-style.
  [[nodiscard]] util::Result<std::vector<sta::PathReport>> report_worst_paths(std::size_t k = 1);

  /// Formats the summary plus the `k` worst paths into `os`. Returns the
  /// Status of the underlying analysis.
  [[nodiscard]] util::Status report_timing(std::ostream& os, std::size_t k = 1);

  [[nodiscard]] bool loaded() const { return design_ != nullptr; }
  /// nullptr until load() succeeds.
  [[nodiscard]] const sta::Design* design() const { return design_.get(); }
  /// nullptr until analyze() succeeds.
  [[nodiscard]] const sta::TimingResult* result() const;

  // --- what-if edits -------------------------------------------------------

  /// How a committed edit transaction re-timed the design.
  struct EditOutcome {
    /// True: the cached analysis was re-timed in place through the dirty
    /// cones (sta::TimingGraph::update_checked) and is bitwise-equal to a
    /// from-scratch analyze of the edited design. False: the cached
    /// analysis (if any) was dropped; the next analyze()/query runs full.
    bool incremental = false;
    /// Cone-work accounting when `incremental`; when the pass was stopped
    /// by a deadline/cancel, `stats.stop_status` is non-ok, `incremental`
    /// is false, and the partial result was discarded (the *design* edit
    /// is committed either way).
    sta::UpdateStats stats;
  };

  class Edit;

  /// Opens a what-if edit transaction. Record edits on the handle, then
  /// `commit()` to apply them atomically: every wire edit is mapped onto
  /// the net's persistent engine::TimingEngine (O(depth) moment updates
  /// under its transaction journal) instead of re-snapshotting the net,
  /// and a failing edit rolls every net back — the design is untouched by
  /// a failed commit (strong guarantee). An abandoned handle applies
  /// nothing. One commit per handle; at most one handle should be open at
  /// a time (the Timer serializes nothing).
  [[nodiscard]] Edit edit();

  /// The persistent per-net analysis cache analyze() feeds (when the
  /// caller does not plug its own into AnalyzeOptions::cache) and
  /// committed edits restamp. Exposed for inspection/tests.
  [[nodiscard]] const sta::CorpusCache& cache() const { return cache_; }

 private:
  [[nodiscard]] util::Status ensure_analyzed();
  [[nodiscard]] util::Result<EditOutcome> commit_edit(Edit& edit,
                                                      const sta::AnalyzeOptions& options);
  [[nodiscard]] util::Result<engine::TimingEngine*> engine_for(int net_index);

  std::unique_ptr<sta::Design> design_;        ///< stable address across moves
  std::optional<sta::TimingResult> result_;
  sta::AnalyzeOptions options_;
  sta::CorpusCache cache_;                     ///< injected into analyze()
  /// Lazily created per edited net, kept in sync with Net::tree across
  /// commits (created on a net's first edit, dropped on load()).
  std::map<int, engine::TimingEngine> engines_;
};

/// One what-if edit transaction (Timer::edit()). Ops validate their
/// arguments at record time — an op that returns a non-ok Status recorded
/// nothing — and commit() applies the recorded sequence in order. The
/// handle must not outlive its Timer or the loaded design (commit checks
/// both and fails cleanly on a swap).
class Timer::Edit {
 public:
  /// Sets net `net`'s section `section` to raw wire values `wire` (finite,
  /// non-negative; SI units). The node's effective shunt C becomes
  /// `wire.capacitance` plus the folded input-pin caps of every instance
  /// tapping that node (the finalize fold, re-derived against any cell
  /// swaps recorded earlier in this transaction).
  [[nodiscard]] util::Status set_net_section_values(const std::string& net,
                                                    const std::string& section,
                                                    const circuit::SectionValues& wire);

  /// Swaps instance `instance` to library cell `cell`: arc tables change,
  /// and the pin-cap delta is folded into every input tap node.
  [[nodiscard]] util::Status set_cell(const std::string& instance, const std::string& cell);

  /// Sets output port `port`'s required time (it no longer falls back to
  /// the clock period).
  [[nodiscard]] util::Status set_port_required(const std::string& port, double required);

  /// Retargets the design clock period (>= 0; 0 = unconstrained fallback).
  [[nodiscard]] util::Status set_clock_period(double period);

  /// Applies the recorded ops. On success the design is mutated (epoch
  /// bumped, edited nets re-snapshot, cache restamped) and the cached
  /// analysis — when one exists — is incrementally re-timed through the
  /// dirty cones, falling back to dropping it when the cones cannot be
  /// served from the cache. On error the design and analysis are exactly
  /// as before. Either way the handle is consumed. `options` controls
  /// execution (deadline/cancel polled at cone frontiers) and, as
  /// everywhere, never changes a result bit; the zero-argument form uses
  /// the options of the last analyze().
  [[nodiscard]] util::Result<EditOutcome> commit();
  [[nodiscard]] util::Result<EditOutcome> commit(const sta::AnalyzeOptions& options);

  /// Recorded (validated) ops not yet committed.
  [[nodiscard]] std::size_t pending() const { return ops_.size(); }

 private:
  friend class Timer;
  enum class OpKind : std::uint8_t { kValue, kCell, kPort, kClock };
  struct Op {
    OpKind kind = OpKind::kValue;
    int net = -1;                  ///< kValue
    circuit::SectionId section = circuit::kInput;
    circuit::SectionValues wire;
    int instance = -1;             ///< kCell
    int cell = -1;
    int port = -1;                 ///< kPort
    double value = 0.0;            ///< kPort required / kClock period
  };

  Edit(Timer* timer, const sta::Design* design, std::uint64_t epoch)
      : timer_(timer), design_(design), epoch_(epoch) {}

  Timer* timer_ = nullptr;
  const sta::Design* design_ = nullptr;  ///< design the ops were validated against
  std::uint64_t epoch_ = 0;              ///< its epoch at edit() time
  std::vector<Op> ops_;
  bool done_ = false;
};

}  // namespace relmore
