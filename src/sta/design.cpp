#include "relmore/sta/design.hpp"

#include <istream>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "relmore/circuit/netlist.hpp"
#include "relmore/util/fault_injector.hpp"

namespace relmore::sta {

using circuit::SectionId;
using util::Diagnostic;
using util::DiagnosticsReport;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

struct RawPin {
  std::string net;
  std::string node;
};

struct RawInst {
  std::string name;
  std::string cell;
  std::string out_net;
  std::vector<RawPin> inputs;
  int line = 0;
};

struct RawPort {
  std::string name;
  bool is_input = false;
  std::string net;
  std::string node;  ///< output ports only
  double arrival = 0.0;
  double slew = 0.0;
  double required = 0.0;
  bool has_required = false;
  int line = 0;
};

/// Accumulates findings locally (for the returned Status) and mirrors them
/// into the caller's report when one was passed.
class Findings {
 public:
  explicit Findings(DiagnosticsReport* mirror) : mirror_(mirror) {}

  void error(ErrorCode code, std::string message, int line, std::string net = "") {
    add(code, std::move(message), line, std::move(net), false);
  }
  void warn(ErrorCode code, std::string message, int line, std::string net = "") {
    add(code, std::move(message), line, std::move(net), true);
  }

  [[nodiscard]] bool ok() const { return local_.is_ok(); }
  [[nodiscard]] Status status() const { return local_.to_status(); }
  [[nodiscard]] DiagnosticsReport* mirror() const { return mirror_; }

 private:
  void add(ErrorCode code, std::string message, int line, std::string net, bool warning) {
    Diagnostic d;
    d.code = code;
    d.message = std::move(message);
    d.line = line;
    d.net = std::move(net);
    d.warning = warning;
    if (mirror_ != nullptr) mirror_->add(d);
    local_.add(std::move(d));
  }

  DiagnosticsReport local_;
  DiagnosticsReport* mirror_;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Parses "key=value" into (key, value-text); returns false when `tok` has
/// no '=' sign.
bool split_option(const std::string& tok, std::string* key, std::string* text) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) return false;
  *key = tok.substr(0, eq);
  *text = tok.substr(eq + 1);
  return true;
}

/// Parses "net:node" into its two halves.
bool split_tap(const std::string& tok, std::string* net, std::string* node) {
  const std::size_t colon = tok.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= tok.size()) return false;
  *net = tok.substr(0, colon);
  *node = tok.substr(colon + 1);
  return true;
}

/// One parsed numeric option value, with findings on failure.
bool parse_value(const std::string& text, const char* what, int line, const std::string& net,
                 Findings& findings, double* out) {
  Result<double> v = circuit::parse_spice_value_checked(text);
  if (!v.is_ok()) {
    findings.error(v.status().code(),
                   std::string(what) + ": " + v.status().message(), line, net);
    return false;
  }
  *out = v.value();
  return true;
}

}  // namespace

int Design::find_net(const std::string& net_name) const {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (nets[i].name == net_name) return static_cast<int>(i);
  }
  return -1;
}

int Design::find_port(const std::string& port_name) const {
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].name == port_name) return static_cast<int>(i);
  }
  return -1;
}

std::size_t Design::endpoint_count() const {
  std::size_t n = 0;
  for (const DesignPort& p : ports) {
    if (!p.is_input) ++n;
  }
  return n;
}

namespace {

/// Resolves raw references, folds pin caps, snapshots FlatTrees, and
/// levelizes. Mutates `design` in place; findings carry every failure.
void finalize_design(Design& design, const std::vector<RawInst>& raw_insts,
                     const std::vector<RawPort>& raw_ports, Findings& findings) {
  // --- resolve instances -------------------------------------------------
  // Instance and port names must be unique: find_port / path reports
  // resolve by name, and a silent duplicate would make every later query
  // answer for whichever one happened to come first.
  std::unordered_set<std::string> inst_names;
  std::unordered_set<std::string> port_names;
  for (const RawInst& ri : raw_insts) {
    if (!inst_names.insert(ri.name).second) {
      findings.error(ErrorCode::kDuplicateName, "duplicate instance '" + ri.name + "'", ri.line,
                     ri.name);
      continue;
    }
    Instance inst;
    inst.name = ri.name;
    inst.cell = design.library.find(ri.cell);
    if (inst.cell < 0) {
      findings.error(ErrorCode::kInvalidArgument, "unknown cell '" + ri.cell + "'", ri.line,
                     ri.name);
      continue;
    }
    inst.out_net = design.find_net(ri.out_net);
    if (inst.out_net < 0) {
      findings.error(ErrorCode::kInvalidArgument, "unknown output net '" + ri.out_net + "'",
                     ri.line, ri.name);
      continue;
    }
    bool pins_ok = true;
    for (const RawPin& pin : ri.inputs) {
      Instance::Pin p;
      p.net = design.find_net(pin.net);
      if (p.net < 0) {
        findings.error(ErrorCode::kInvalidArgument, "unknown input net '" + pin.net + "'",
                       ri.line, ri.name);
        pins_ok = false;
        break;
      }
      Net& in_net = design.nets[static_cast<std::size_t>(p.net)];
      const SectionId node = in_net.tree.find_by_name(pin.node);
      if (node == circuit::kInput) {
        findings.error(ErrorCode::kInvalidArgument,
                       "net '" + pin.net + "' has no node named '" + pin.node + "'", ri.line,
                       ri.name);
        pins_ok = false;
        break;
      }
      Net::Tap tap;
      tap.node = node;
      tap.is_port = false;
      tap.index = static_cast<int>(design.instances.size());
      tap.pin = static_cast<int>(inst.inputs.size());
      p.tap = static_cast<int>(in_net.taps.size());
      in_net.taps.push_back(tap);
      inst.inputs.push_back(p);
    }
    if (!pins_ok) continue;
    if (inst.inputs.empty()) {
      findings.error(ErrorCode::kInvalidArgument, "instance has no input pins", ri.line,
                     ri.name);
      continue;
    }
    Net& out = design.nets[static_cast<std::size_t>(inst.out_net)];
    if (out.driver_kind != DriverKind::kNone) {
      findings.error(ErrorCode::kInvalidArgument,
                     "net '" + ri.out_net + "' driven more than once", ri.line, ri.name);
      continue;
    }
    out.driver_kind = DriverKind::kInstance;
    out.driver_index = static_cast<int>(design.instances.size());
    design.instances.push_back(std::move(inst));
  }

  // --- resolve ports -----------------------------------------------------
  for (const RawPort& rp : raw_ports) {
    if (!port_names.insert(rp.name).second) {
      findings.error(ErrorCode::kDuplicateName, "duplicate port '" + rp.name + "'", rp.line,
                     rp.name);
      continue;
    }
    DesignPort port;
    port.name = rp.name;
    port.is_input = rp.is_input;
    port.arrival = rp.arrival;
    port.slew = rp.slew;
    port.required = rp.required;
    port.has_required = rp.has_required;
    port.net = design.find_net(rp.net);
    if (port.net < 0) {
      findings.error(ErrorCode::kInvalidArgument, "unknown net '" + rp.net + "'", rp.line,
                     rp.name);
      continue;
    }
    Net& net = design.nets[static_cast<std::size_t>(port.net)];
    if (rp.is_input) {
      if (net.driver_kind != DriverKind::kNone) {
        findings.error(ErrorCode::kInvalidArgument,
                       "net '" + rp.net + "' driven more than once", rp.line, rp.name);
        continue;
      }
      net.driver_kind = DriverKind::kPort;
      net.driver_index = static_cast<int>(design.ports.size());
    } else {
      const SectionId node = net.tree.find_by_name(rp.node);
      if (node == circuit::kInput) {
        findings.error(ErrorCode::kInvalidArgument,
                       "net '" + rp.net + "' has no node named '" + rp.node + "'", rp.line,
                       rp.name);
        continue;
      }
      Net::Tap tap;
      tap.node = node;
      tap.is_port = true;
      tap.index = static_cast<int>(design.ports.size());
      port.tap = static_cast<int>(net.taps.size());
      net.taps.push_back(tap);
    }
    design.ports.push_back(std::move(port));
  }

  // --- structural checks -------------------------------------------------
  bool have_input = false;
  bool have_endpoint = false;
  for (const DesignPort& p : design.ports) {
    (p.is_input ? have_input : have_endpoint) = true;
  }
  if (!have_input) {
    findings.error(ErrorCode::kInvalidArgument, "design has no input port", -1);
  }
  if (!have_endpoint) {
    findings.error(ErrorCode::kInvalidArgument, "design has no output port", -1);
  }
  for (const Net& net : design.nets) {
    if (net.driver_kind == DriverKind::kNone) {
      findings.error(ErrorCode::kInvalidArgument, "net is undriven", -1, net.name);
    }
    if (net.taps.empty()) {
      findings.warn(ErrorCode::kZeroTotalCapacitance, "net has no taps (dangling)", -1,
                    net.name);
    }
  }
  if (!findings.ok()) return;

  // --- fold pin caps, snapshot, precompute loads -------------------------
  design.epoch += 1;
  for (std::size_t ni = 0; ni < design.nets.size(); ++ni) {
    Net& net = design.nets[ni];
    for (const Net::Tap& tap : net.taps) {
      if (tap.is_port || tap.node == circuit::kInput) continue;
      const Instance& inst = design.instances[static_cast<std::size_t>(tap.index)];
      const Cell& cell = design.library.cell(static_cast<std::size_t>(inst.cell));
      net.tree.values(tap.node).capacitance += cell.input_cap;
    }
    net.total_cap = net.tree.total_capacitance();
    net.flat = circuit::FlatTree(net.tree);
    net.epoch = design.epoch;
  }

  // --- levelization (Kahn over net -> instance -> net edges) -------------
  const std::size_t n_nets = design.nets.size();
  std::vector<int> indegree(n_nets, 0);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const Net& net = design.nets[ni];
    if (net.driver_kind == DriverKind::kInstance) {
      const Instance& inst = design.instances[static_cast<std::size_t>(net.driver_index)];
      indegree[ni] = static_cast<int>(inst.inputs.size());
    }
  }
  design.topo_nets.clear();
  design.topo_nets.reserve(n_nets);
  // Ascending-index frontier keeps the order (and everything downstream of
  // it) a pure function of the design, independent of any schedule.
  std::vector<int> frontier;
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    if (indegree[ni] == 0) {
      frontier.push_back(static_cast<int>(ni));
      design.nets[ni].level = 0;
    }
  }
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const int ni = frontier[head];
    design.topo_nets.push_back(ni);
    const Net& net = design.nets[static_cast<std::size_t>(ni)];
    for (const Net::Tap& tap : net.taps) {
      if (tap.is_port) continue;
      const Instance& inst = design.instances[static_cast<std::size_t>(tap.index)];
      const auto out = static_cast<std::size_t>(inst.out_net);
      Net& out_net = design.nets[out];
      out_net.level = std::max(out_net.level, net.level + 1);
      if (--indegree[out] == 0) frontier.push_back(inst.out_net);
    }
  }
  if (design.topo_nets.size() != n_nets) {
    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      if (indegree[ni] > 0) {
        findings.error(ErrorCode::kCycle, "net is part of a combinational cycle", -1,
                       design.nets[ni].name);
        break;  // one representative; a cycle lists every member otherwise
      }
    }
  }
}

}  // namespace

Result<Design> read_design_checked(std::istream& is, CellLibrary base,
                                   DiagnosticsReport* report) {
  Findings findings(report);
  Design design;
  design.library = std::move(base);
  std::vector<RawInst> raw_insts;
  std::vector<RawPort> raw_ports;

  std::string line;
  int line_no = 0;
  std::size_t total_sections = 0;
  constexpr std::size_t kMaxDesignSections = 4u << 20;  // 4M sections across all nets
  while (std::getline(is, line)) {
    ++line_no;
    // Injected truncation behaves like the stream ending mid-design: stop
    // reading and report it, so downstream validation sees a short design
    // with a named diagnostic rather than a silent one.
    if (util::fault_should_fire(util::FaultSite::kParseTruncate)) {
      findings.error(ErrorCode::kParseError, "input truncated (injected fault)", line_no);
      break;
    }
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty() || tok[0][0] == '#') continue;
    const std::string& kw = tok[0];

    if (kw == "design") {
      if (tok.size() >= 2) design.name = tok[1];
    } else if (kw == "cell") {
      if (tok.size() < 2) {
        findings.error(ErrorCode::kParseError, "cell: missing name", line_no);
        continue;
      }
      LinearCellSpec spec;
      spec.name = tok[1];
      spec.drive_r = 0.0;
      bool ok = true;
      for (std::size_t i = 2; i < tok.size() && ok; ++i) {
        std::string key;
        std::string text;
        if (!split_option(tok[i], &key, &text)) {
          findings.error(ErrorCode::kParseError, "cell: expected key=value, got '" + tok[i] + "'",
                         line_no, spec.name);
          ok = false;
          break;
        }
        double v = 0.0;
        if (!parse_value(text, "cell", line_no, spec.name, findings, &v)) {
          ok = false;
          break;
        }
        if (key == "r") {
          spec.drive_r = v;
        } else if (key == "cap") {
          spec.input_cap = v;
        } else if (key == "intrinsic") {
          spec.intrinsic = v;
        } else if (key == "slewgain") {
          spec.slew_gain = v;
        } else if (key == "slewfactor") {
          spec.slew_factor = v;
        } else {
          findings.error(ErrorCode::kParseError, "cell: unknown key '" + key + "'", line_no,
                         spec.name);
          ok = false;
        }
      }
      if (!ok) continue;
      Result<Cell> cell = linear_cell_checked(spec);
      if (!cell.is_ok()) {
        findings.error(cell.status().code(), cell.status().message(), line_no, spec.name);
        continue;
      }
      design.library.add(std::move(cell).value());
    } else if (kw == "net") {
      if (tok.size() < 2) {
        findings.error(ErrorCode::kParseError, "net: missing name", line_no);
        continue;
      }
      const std::string net_name = tok[1];
      if (design.find_net(net_name) >= 0) {
        findings.error(ErrorCode::kDuplicateName, "duplicate net '" + net_name + "'", line_no,
                       net_name);
      }
      // Collect the block verbatim up to `end`, then hand it to the tree
      // netlist reader with this net's context (names + line offsets).
      const int block_start = line_no;
      std::string block;
      bool closed = false;
      while (std::getline(is, line)) {
        ++line_no;
        const std::vector<std::string> inner = tokenize(line);
        if (!inner.empty() && inner[0] == "end") {
          closed = true;
          break;
        }
        block += line;
        block += '\n';
      }
      if (!closed) {
        findings.error(ErrorCode::kParseError, "net '" + net_name + "': missing 'end'",
                       block_start, net_name);
        break;
      }
      circuit::ReadContext ctx;
      ctx.net = net_name;
      ctx.line_offset = block_start;
      ctx.report = findings.mirror();
      std::istringstream block_is(block);
      Result<circuit::RlcTree> tree = circuit::read_tree_netlist_checked(block_is, ctx);
      if (!tree.is_ok()) {
        const Status& s = tree.status();
        findings.error(s.code(), s.message(), s.line() >= 0 ? s.line() : block_start, net_name);
        continue;
      }
      total_sections += tree.value().size();
      if (total_sections > kMaxDesignSections) {
        findings.error(ErrorCode::kSizeLimit, "design exceeds the total section ceiling",
                       line_no, net_name);
        break;
      }
      Net net;
      net.name = net_name;
      net.tree = std::move(tree).value();
      design.nets.push_back(std::move(net));
    } else if (kw == "input" || kw == "output") {
      RawPort port;
      port.is_input = kw == "input";
      port.line = line_no;
      if (tok.size() < 3) {
        findings.error(ErrorCode::kParseError, kw + ": expected <port> <net>", line_no);
        continue;
      }
      port.name = tok[1];
      if (port.is_input) {
        port.net = tok[2];
      } else if (!split_tap(tok[2], &port.net, &port.node)) {
        findings.error(ErrorCode::kParseError, "output: expected <net>:<node>, got '" + tok[2] +
                           "'",
                       line_no, port.name);
        continue;
      }
      bool ok = true;
      for (std::size_t i = 3; i < tok.size() && ok; ++i) {
        std::string key;
        std::string text;
        if (!split_option(tok[i], &key, &text)) {
          findings.error(ErrorCode::kParseError, kw + ": expected key=value, got '" + tok[i] + "'",
                         line_no, port.name);
          ok = false;
          break;
        }
        double v = 0.0;
        if (!parse_value(text, kw.c_str(), line_no, port.name, findings, &v)) {
          ok = false;
          break;
        }
        if (key == "at" && port.is_input) {
          port.arrival = v;
        } else if (key == "slew" && port.is_input) {
          port.slew = v;
        } else if (key == "required" && !port.is_input) {
          port.required = v;
          port.has_required = true;
        } else {
          findings.error(ErrorCode::kParseError, kw + ": unknown key '" + key + "'", line_no,
                         port.name);
          ok = false;
        }
      }
      if (ok) raw_ports.push_back(std::move(port));
    } else if (kw == "inst") {
      RawInst inst;
      inst.line = line_no;
      if (tok.size() < 5) {
        findings.error(ErrorCode::kParseError,
                       "inst: expected <name> <cell> <outnet> <innet>:<node>...", line_no,
                       tok.size() >= 2 ? tok[1] : "");
        continue;
      }
      inst.name = tok[1];
      inst.cell = tok[2];
      inst.out_net = tok[3];
      bool ok = true;
      for (std::size_t i = 4; i < tok.size(); ++i) {
        RawPin pin;
        if (!split_tap(tok[i], &pin.net, &pin.node)) {
          findings.error(ErrorCode::kParseError,
                         "inst: expected <net>:<node>, got '" + tok[i] + "'", line_no, inst.name);
          ok = false;
          break;
        }
        inst.inputs.push_back(std::move(pin));
      }
      if (ok) raw_insts.push_back(std::move(inst));
    } else if (kw == "clock") {
      double v = 0.0;
      if (tok.size() < 2) {
        findings.error(ErrorCode::kParseError, "clock: missing period", line_no);
        continue;
      }
      if (parse_value(tok[1], "clock", line_no, "", findings, &v)) {
        design.clock_period = v;
      }
    } else {
      findings.error(ErrorCode::kParseError, "unknown directive '" + kw + "'", line_no);
    }
  }

  if (findings.ok()) finalize_design(design, raw_insts, raw_ports, findings);
  if (!findings.ok()) return findings.status();
  return design;
}

Design read_design(std::istream& is, CellLibrary base) {
  return read_design_checked(is, std::move(base)).value();
}

}  // namespace relmore::sta
