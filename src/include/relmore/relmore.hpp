#pragma once

/// \file relmore.hpp
/// Whole-library umbrella header. Prefer the per-module headers in real
/// builds; this exists for quick experiments, the examples, and the bench
/// binaries.

#include "relmore/analysis/compare.hpp"      // IWYU pragma: export
#include "relmore/analysis/report.hpp"       // IWYU pragma: export
#include "relmore/analysis/variation.hpp"    // IWYU pragma: export
#include "relmore/circuit/builders.hpp"      // IWYU pragma: export
#include "relmore/circuit/flat_tree.hpp"     // IWYU pragma: export
#include "relmore/circuit/netlist.hpp"       // IWYU pragma: export
#include "relmore/circuit/random_tree.hpp"   // IWYU pragma: export
#include "relmore/circuit/rlc_tree.hpp"      // IWYU pragma: export
#include "relmore/circuit/segmentation.hpp"  // IWYU pragma: export
#include "relmore/circuit/validate.hpp"      // IWYU pragma: export
#include "relmore/eed/eed.hpp"               // IWYU pragma: export
#include "relmore/eed/figures_of_merit.hpp"  // IWYU pragma: export
#include "relmore/eed/frequency.hpp"         // IWYU pragma: export
#include "relmore/eed/sensitivity.hpp"       // IWYU pragma: export
#include "relmore/engine/batch.hpp"          // IWYU pragma: export
#include "relmore/engine/batched.hpp"        // IWYU pragma: export
#include "relmore/engine/timing_engine.hpp"  // IWYU pragma: export
#include "relmore/moments/pole_residue.hpp"  // IWYU pragma: export
#include "relmore/moments/tree_moments.hpp"  // IWYU pragma: export
#include "relmore/opt/buffer_insertion.hpp"  // IWYU pragma: export
#include "relmore/opt/driver.hpp"            // IWYU pragma: export
#include "relmore/opt/path_timing.hpp"       // IWYU pragma: export
#include "relmore/opt/skew_balance.hpp"      // IWYU pragma: export
#include "relmore/opt/van_ginneken.hpp"      // IWYU pragma: export
#include "relmore/opt/wire_sizing.hpp"       // IWYU pragma: export
#include "relmore/sim/adaptive.hpp"          // IWYU pragma: export
#include "relmore/sim/batch_sim.hpp"         // IWYU pragma: export
#include "relmore/sim/flat_stepper.hpp"      // IWYU pragma: export
#include "relmore/sim/measure.hpp"           // IWYU pragma: export
#include "relmore/sim/mna.hpp"               // IWYU pragma: export
#include "relmore/sim/state_space.hpp"       // IWYU pragma: export
#include "relmore/sim/tree_transient.hpp"    // IWYU pragma: export
#include "relmore/sim/waveform_io.hpp"       // IWYU pragma: export
#include "relmore/sta/sta.hpp"               // IWYU pragma: export
#include "relmore/timer.hpp"                 // IWYU pragma: export
#include "relmore/util/diagnostics.hpp"      // IWYU pragma: export
#include "relmore/util/table.hpp"            // IWYU pragma: export
#include "relmore/util/units.hpp"            // IWYU pragma: export
