#include "relmore/circuit/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "relmore/circuit/validate.hpp"

namespace relmore::circuit {

using util::ErrorCode;
using util::FaultError;
using util::Result;
using util::Status;

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

Status parse_fail(int line_no, const std::string& msg) {
  return Status(ErrorCode::kParseError, "netlist line " + std::to_string(line_no) + ": " + msg,
                /*node=*/-1, line_no);
}

/// Post-parse validation shared by both readers: the parsers enforce their
/// own syntax, this re-checks the semantic invariants (values finite and
/// non-negative, structure sound, resource limits) so a deck that slipped
/// a degenerate value through arithmetic (e.g. capacitor cards summing to
/// Inf) is still rejected with a node-path diagnostic. Findings are tagged
/// with the context's net name and mirrored into its report sink, so a
/// design-level caller gets per-net attribution for every finding.
Status validate_parsed(const RlcTree& tree, const ReadContext& ctx) {
  const util::DiagnosticsReport report = validate(tree);
  if (ctx.report != nullptr) {
    for (util::Diagnostic d : report.entries()) {
      if (d.net.empty()) d.net = ctx.net;
      ctx.report->add(std::move(d));
    }
  }
  return report.to_status().with_net(ctx.net);
}

}  // namespace

Result<double> parse_spice_value_checked(const std::string& text) {
  if (text.empty()) {
    return Status(ErrorCode::kParseError, "parse_spice_value: empty value");
  }
  errno = 0;
  const char* begin = text.c_str();
  char* end = nullptr;
  const double base = std::strtod(begin, &end);
  if (end == begin) {
    return Status(ErrorCode::kParseError,
                  "parse_spice_value: malformed number '" + text + "'");
  }
  if (errno == ERANGE && (base == HUGE_VAL || base == -HUGE_VAL)) {
    return Status(ErrorCode::kValueOutOfRange,
                  "parse_spice_value: magnitude of '" + text + "' exceeds double range");
  }
  // Rejects strtod's "nan"/"inf"(/"infinity") spellings: a netlist value
  // must be a finite literal. (ERANGE underflow to a subnormal is fine.)
  if (!std::isfinite(base)) {
    return Status(ErrorCode::kParseError,
                  "parse_spice_value: non-finite value '" + text + "'");
  }
  const std::string suffix = lower(text.substr(static_cast<std::size_t>(end - begin)));
  static const std::map<std::string, double> kScale = {
      {"", 1.0},     {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6},
      {"m", 1e-3},   {"k", 1e3},   {"meg", 1e6}, {"g", 1e9},  {"t", 1e12},
  };
  const auto is_unit = [](const std::string& rest) {
    return rest.empty() || rest == "h" || rest == "f" || rest == "ohm" || rest == "s" ||
           rest == "v";
  };
  double scale = 1.0;
  bool matched = false;
  // Longest-prefix match on the suffix; remaining letters must be unit text.
  for (const auto& prefix : {std::string("meg"), std::string("f"), std::string("p"),
                             std::string("n"), std::string("u"), std::string("m"),
                             std::string("k"), std::string("g"), std::string("t")}) {
    if (suffix.rfind(prefix, 0) == 0 && is_unit(suffix.substr(prefix.size()))) {
      scale = kScale.at(prefix);
      matched = true;
      break;
    }
  }
  if (!matched) {
    if (!is_unit(suffix)) {
      // Full-token consumption or nothing: "2nq", "1e", "3..5" all land
      // here instead of silently keeping the partially parsed prefix.
      return Status(ErrorCode::kParseError,
                    "parse_spice_value: trailing garbage '" + suffix + "' in '" + text + "'");
    }
  }
  const double value = base * scale;
  if (!std::isfinite(value)) {
    return Status(ErrorCode::kValueOutOfRange,
                  "parse_spice_value: scaled magnitude of '" + text + "' exceeds double range");
  }
  return value;
}

double parse_spice_value(const std::string& text) {
  Result<double> res = parse_spice_value_checked(text);
  if (!res.is_ok()) throw FaultError(res.status());
  return res.value();
}

void write_tree_netlist(const RlcTree& tree, std::ostream& os) {
  os << "# relmore tree netlist, " << tree.size() << " sections\n";
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const Section& s = tree.section(static_cast<SectionId>(i));
    const std::string name = s.name.empty() ? "s" + std::to_string(i) : s.name;
    std::string parent = "-";
    if (s.parent != kInput) {
      const Section& p = tree.section(s.parent);
      parent = p.name.empty() ? "s" + std::to_string(s.parent) : p.name;
    }
    os << "section " << name << " " << parent << " R=" << s.v.resistance
       << " L=" << s.v.inductance << " C=" << s.v.capacitance << "\n";
  }
}

namespace {

/// Wraps a reader body: tags the failure Status with the context's net
/// name and mirrors syntax errors (which bypass circuit::validate and so
/// never reached the report via validate_parsed) into the report sink.
Result<RlcTree> with_context(const ReadContext& ctx,
                             const std::function<Result<RlcTree>()>& body) {
  const std::size_t errors_before = ctx.report != nullptr ? ctx.report->error_count() : 0;
  Result<RlcTree> res = body();
  if (res.is_ok()) return res;
  const Status tagged = res.status().with_net(ctx.net);
  if (ctx.report != nullptr && ctx.report->error_count() == errors_before) {
    util::Diagnostic d;
    d.code = tagged.code();
    d.message = tagged.message();
    d.node = tagged.node();
    d.line = tagged.line();
    d.net = ctx.net;
    ctx.report->add(std::move(d));
  }
  return tagged;
}

Result<RlcTree> read_tree_netlist_impl(std::istream& is, const ReadContext& ctx) {
  RlcTree tree;
  std::map<std::string, SectionId> by_name;
  std::string line;
  int line_no = ctx.line_offset;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (lower(toks[0]) != "section") {
      return parse_fail(line_no, "expected 'section', got '" + toks[0] + "'");
    }
    if (toks.size() != 6) {
      return parse_fail(line_no, "expected: section <name> <parent|-> R= L= C=");
    }
    const std::string& name = toks[1];
    const std::string& parent_name = toks[2];
    if (by_name.count(name) != 0) {
      return parse_fail(line_no, "duplicate section name '" + name + "'");
    }
    SectionId parent = kInput;
    if (parent_name != "-") {
      const auto it = by_name.find(parent_name);
      if (it == by_name.end()) {
        return parse_fail(line_no, "unknown parent '" + parent_name + "'");
      }
      parent = it->second;
    }
    SectionValues v;
    for (std::size_t t = 3; t < 6; ++t) {
      const auto eq = toks[t].find('=');
      if (eq == std::string::npos) {
        return parse_fail(line_no, "expected key=value, got '" + toks[t] + "'");
      }
      const std::string key = lower(toks[t].substr(0, eq));
      const Result<double> val = parse_spice_value_checked(toks[t].substr(eq + 1));
      if (!val.is_ok()) return parse_fail(line_no, val.status().message());
      if (key == "r") {
        v.resistance = val.value();
      } else if (key == "l") {
        v.inductance = val.value();
      } else if (key == "c") {
        v.capacitance = val.value();
      } else {
        return parse_fail(line_no, "unknown key '" + key + "'");
      }
    }
    try {
      by_name[name] = tree.add_section(parent, v, name);
    } catch (const std::invalid_argument& e) {
      return parse_fail(line_no, e.what());
    }
  }
  if (Status s = validate_parsed(tree, ctx); !s.is_ok()) return s;
  return tree;
}

}  // namespace

Result<RlcTree> read_tree_netlist_checked(std::istream& is) {
  return read_tree_netlist_checked(is, ReadContext{});
}

Result<RlcTree> read_tree_netlist_checked(std::istream& is, const ReadContext& ctx) {
  return with_context(ctx, [&] { return read_tree_netlist_impl(is, ctx); });
}

RlcTree read_tree_netlist(std::istream& is) {
  Result<RlcTree> res = read_tree_netlist_checked(is);
  if (!res.is_ok()) throw FaultError(res.status());
  return std::move(res).value();
}

void write_spice(const RlcTree& tree, std::ostream& os, const SpiceWriteOptions& opts) {
  os << "* relmore RLC tree export (" << tree.size() << " sections)\n";
  if (opts.input_rise_seconds > 0.0) {
    os << "Vin " << opts.input_node << " 0 PWL(0 0 " << opts.input_rise_seconds << " "
       << opts.supply_volts << ")\n";
  } else {
    os << "Vin " << opts.input_node << " 0 PWL(0 0 1e-15 " << opts.supply_volts << ")\n";
  }
  auto node_name = [&](SectionId i) {
    return i == kInput ? opts.input_node : "n" + std::to_string(i);
  };
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    const Section& s = tree.section(id);
    const std::string up = node_name(s.parent);
    const std::string down = node_name(id);
    if (s.v.inductance > 0.0) {
      const std::string mid = "m" + std::to_string(i);
      os << "R" << i << " " << up << " " << mid << " " << s.v.resistance << "\n";
      os << "L" << i << " " << mid << " " << down << " " << s.v.inductance << "\n";
    } else {
      os << "R" << i << " " << up << " " << down << " " << s.v.resistance << "\n";
    }
    if (s.v.capacitance > 0.0) {
      os << "C" << i << " " << down << " 0 " << s.v.capacitance << "\n";
    }
  }
  if (opts.tran_stop_seconds > 0.0) {
    os << ".tran " << opts.tran_stop_seconds / 1000.0 << " " << opts.tran_stop_seconds << "\n";
  }
  os << ".end\n";
}

namespace {

struct SeriesEdge {
  std::string other;
  double resistance = 0.0;
  double inductance = 0.0;
};

Result<RlcTree> read_spice_impl(std::istream& is, const ReadContext& ctx) {
  std::map<std::string, std::vector<SeriesEdge>> adj;  // node -> series neighbors
  std::map<std::string, double> cap;                   // node -> grounded C
  std::string input_node;

  std::string line;
  int line_no = ctx.line_offset;
  while (std::getline(is, line)) {
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(toks[0][0])));
    if (toks[0][0] == '*' || toks[0][0] == '.') continue;
    if (kind == 'v') {
      if (toks.size() < 3) return parse_fail(line_no, "malformed V card");
      input_node = toks[1] == "0" ? toks[2] : toks[1];
      continue;
    }
    if (kind != 'r' && kind != 'l' && kind != 'c') {
      return parse_fail(line_no, std::string("unsupported element '") + toks[0] + "'");
    }
    if (toks.size() < 4) return parse_fail(line_no, "element card needs: name n1 n2 value");
    const std::string n1 = toks[1];
    const std::string n2 = toks[2];
    const Result<double> parsed = parse_spice_value_checked(toks[3]);
    if (!parsed.is_ok()) return parse_fail(line_no, parsed.status().message());
    const double value = parsed.value();
    if (value < 0.0) {
      return parse_fail(line_no, "negative element value " + toks[3]);
    }
    if (kind == 'c') {
      const std::string node = n1 == "0" ? n2 : n1;
      if (n1 != "0" && n2 != "0") {
        return parse_fail(line_no, "capacitors must be grounded in an RLC tree");
      }
      cap[node] += value;
      continue;
    }
    if (n1 == n2) {
      return parse_fail(line_no, "element shorts node '" + n1 + "' to itself");
    }
    SeriesEdge e1{n2, 0.0, 0.0};
    SeriesEdge e2{n1, 0.0, 0.0};
    if (kind == 'r') {
      e1.resistance = e2.resistance = value;
    } else {
      e1.inductance = e2.inductance = value;
    }
    adj[n1].push_back(e1);
    adj[n2].push_back(e2);
  }

  if (input_node.empty()) {
    if (adj.count("in") != 0) {
      input_node = "in";
    } else {
      return Status(ErrorCode::kParseError, "read_spice: no V card and no node named 'in'");
    }
  }
  if (adj.count(input_node) == 0) {
    return Status(ErrorCode::kParseError, "read_spice: input node has no series elements");
  }

  RlcTree tree;
  // DFS from the input, collapsing chains of series elements through
  // unloaded degree-2 nodes into single sections.
  struct Work {
    std::string node;      // node to expand
    SectionId section;     // tree section ending at `node` (kInput at start)
    std::string came_from; // avoid walking back up the edge we arrived on
  };
  std::vector<Work> stack{{input_node, kInput, ""}};
  std::map<std::string, bool> visited{{input_node, true}};

  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    for (const SeriesEdge& first : adj[w.node]) {
      if (first.other == w.came_from) continue;
      if (visited.count(first.other) != 0) {
        // In a tree the only edge to a visited node is the one we arrived
        // on (came_from); any other such edge closes a cycle.
        return Status(ErrorCode::kCycle,
                      "read_spice: circuit graph contains a loop at node " + first.other);
      }
      // Walk the chain until a node that carries a C, branches, or is a leaf.
      double r_acc = first.resistance;
      double l_acc = first.inductance;
      std::string prev = w.node;
      std::string cur = first.other;
      while (true) {
        const auto& nbrs = adj[cur];
        const bool loaded = cap.count(cur) != 0;
        if (loaded || nbrs.size() != 2) break;
        const SeriesEdge& next = nbrs[0].other == prev ? nbrs[1] : nbrs[0];
        r_acc += next.resistance;
        l_acc += next.inductance;
        prev = cur;
        cur = next.other;
        if (visited.count(cur) != 0) {
          return Status(ErrorCode::kCycle,
                        "read_spice: circuit graph contains a loop at node " + cur);
        }
      }
      if (visited.count(cur) != 0) {
        return Status(ErrorCode::kCycle,
                      "read_spice: circuit graph contains a loop at node " + cur);
      }
      visited[cur] = true;
      const double c = cap.count(cur) != 0 ? cap.at(cur) : 0.0;
      try {
        const SectionId sec = tree.add_section(w.section, {r_acc, l_acc, c}, cur);
        stack.push_back({cur, sec, prev});
      } catch (const std::invalid_argument& e) {
        // Accumulated series values can only misbehave numerically
        // (negative cards were rejected per line); report with node context.
        return Status(ErrorCode::kInvalidArgument,
                      std::string("read_spice: node '") + cur + "': " + e.what());
      }
    }
  }
  if (tree.empty()) {
    return Status(ErrorCode::kEmptyTree, "read_spice: no tree sections found");
  }
  if (Status s = validate_parsed(tree, ctx); !s.is_ok()) return s;
  return tree;
}

}  // namespace

Result<RlcTree> read_spice_checked(std::istream& is) {
  return read_spice_checked(is, ReadContext{});
}

Result<RlcTree> read_spice_checked(std::istream& is, const ReadContext& ctx) {
  return with_context(ctx, [&] { return read_spice_impl(is, ctx); });
}

RlcTree read_spice(std::istream& is) {
  Result<RlcTree> res = read_spice_checked(is);
  if (!res.is_ok()) throw FaultError(res.status());
  return std::move(res).value();
}

}  // namespace relmore::circuit
