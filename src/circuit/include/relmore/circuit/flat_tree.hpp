#pragma once

/// \file flat_tree.hpp
/// Structure-of-arrays snapshot of an RlcTree for the analysis hot paths.
///
/// The two-pass analysis (paper Appendix, Figs. 17–18) does two
/// multiplications per section — at that arithmetic intensity the cost is
/// memory traffic, not FLOPs. `RlcTree` stores an array of `Section`
/// structs, each carrying a `std::string` name next to the three doubles
/// the kernels actually read, so a linear sweep drags the cold label bytes
/// through the cache with every load. `FlatTree` snapshots the same tree
/// into contiguous parallel arrays:
///
///   parent[]                  topology (kInput for root sections)
///   resistance[] / inductance[] / capacitance[]   hot values
///   child_count[], level[]    precomputed scan metadata
///   names()                   the cold strings, hoisted out of the sweep
///
/// Ids are identical to the source tree's and remain parent-before-child
/// (the append-only invariant), so the upward pass is one reverse id scan
/// and the downward pass one forward scan — no pointer chasing, no child
/// lists. A FlatTree is immutable: it is the fixed *topology* half of the
/// batched same-topology kernels (engine::BatchedAnalyzer), which supply
/// per-sample values separately.

#include <cstddef>
#include <string>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::circuit {

/// Immutable SoA view of one RlcTree. Cheap to copy relative to analysis
/// work; safe to share read-only across worker threads.
class FlatTree {
 public:
  /// Empty snapshot (size() == 0). Exists so containers of FlatTree-valued
  /// records (sta::Net and friends) can default-construct before the
  /// source tree is parsed; every analysis entry rejects an empty tree.
  FlatTree() = default;

  /// Snapshots `tree` (values as of the call; later edits to the source
  /// tree are not reflected).
  explicit FlatTree(const RlcTree& tree);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] bool empty() const { return parent_.empty(); }

  // --- hot arrays (length = size()) --------------------------------------
  [[nodiscard]] const std::vector<SectionId>& parent() const { return parent_; }
  [[nodiscard]] const std::vector<double>& resistance() const { return resistance_; }
  [[nodiscard]] const std::vector<double>& inductance() const { return inductance_; }
  [[nodiscard]] const std::vector<double>& capacitance() const { return capacitance_; }

  // --- precomputed scan metadata ------------------------------------------
  /// Number of children of each section (0 = sink).
  [[nodiscard]] const std::vector<int>& child_count() const { return child_count_; }
  /// 1-based level of each section (root sections are level 1).
  [[nodiscard]] const std::vector<int>& level() const { return level_; }
  /// Max level over all sections; 0 for an empty tree.
  [[nodiscard]] int depth() const { return depth_; }
  /// Sections with no children, in id order.
  [[nodiscard]] std::vector<SectionId> leaves() const;

  // --- cold data -----------------------------------------------------------
  /// Section labels, parallel to the hot arrays but stored apart from them.
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }
  /// First section whose name matches, or kInput.
  [[nodiscard]] SectionId find_by_name(const std::string& name) const;

 private:
  std::vector<SectionId> parent_;
  std::vector<double> resistance_;
  std::vector<double> inductance_;
  std::vector<double> capacitance_;
  std::vector<int> child_count_;
  std::vector<int> level_;
  int depth_ = 0;
  std::vector<std::string> names_;
};

}  // namespace relmore::circuit
