#pragma once

/// \file rlc_tree.hpp
/// The object of study: an RLC tree (paper Fig. 3 / Fig. 5).
///
/// A tree is a set of *sections*. Section `i` connects its parent's
/// downstream node to node `i` through a series resistance `R_i` and
/// inductance `L_i`; a shunt capacitance `C_i` loads node `i` to ground.
/// The root section's upstream node is the input (driven by the source).
/// Node indices coincide with section indices; the input node is implicit.

#include <cstddef>
#include <string>
#include <vector>

namespace relmore::circuit {

/// Index of a section/node inside an RlcTree.
using SectionId = int;

/// Sentinel parent id for sections attached directly to the input node.
inline constexpr SectionId kInput = -1;

/// Electrical values of one tree section (series R, L; shunt C), SI units.
struct SectionValues {
  double resistance = 0.0;   ///< ohms
  double inductance = 0.0;   ///< henries
  double capacitance = 0.0;  ///< farads
};

/// One branch of the tree.
struct Section {
  SectionId parent = kInput;
  SectionValues v;
  std::string name;  ///< optional label ("O" for the observed sink, etc.)
};

/// An RLC tree under incremental construction. Append-only: sections are
/// added with an already-existing parent, so the structure is a forest of
/// trees hanging off the input node by construction (no cycle check needed).
class RlcTree {
 public:
  /// Adds a section; `parent` must be kInput or a previously added id.
  /// Negative R/L/C throw std::invalid_argument (zero is allowed: a zero-L
  /// tree is an RC tree; zero-R/zero-C sections model ideal stubs).
  SectionId add_section(SectionId parent, const SectionValues& values, std::string name = "");
  SectionId add_section(SectionId parent, double resistance, double inductance,
                        double capacitance, std::string name = "");

  [[nodiscard]] std::size_t size() const { return sections_.size(); }
  [[nodiscard]] bool empty() const { return sections_.empty(); }
  [[nodiscard]] const Section& section(SectionId i) const;
  [[nodiscard]] const std::vector<Section>& sections() const { return sections_; }
  [[nodiscard]] const std::vector<SectionId>& children(SectionId i) const;
  /// Sections whose parent is the input node.
  [[nodiscard]] const std::vector<SectionId>& roots() const { return roots_; }

  /// Mutable access to values (wire sizing and ζ-targeting rescale trees).
  SectionValues& values(SectionId i);

  /// Drops the most recently added sections so that size() == n (no-op when
  /// n >= size()). Because ids are append-only, the dropped ids are exactly
  /// [n, size()) and no surviving section can reference them. Used by the
  /// engine's transactional rollback to undo grafts.
  void truncate(std::size_t n);

  /// Section ids in parent-before-child order (ids are already topological
  /// by the append-only invariant; provided for readability at call sites).
  [[nodiscard]] std::vector<SectionId> topological_order() const;

  /// Sections with no children (the sinks).
  [[nodiscard]] std::vector<SectionId> leaves() const;

  /// 1-based level of a section (root sections are level 1).
  [[nodiscard]] int level(SectionId i) const;
  /// Max level over all sections; 0 for an empty tree.
  [[nodiscard]] int depth() const;

  /// Sections on the path input -> node i, root end first.
  [[nodiscard]] std::vector<SectionId> path_from_input(SectionId i) const;

  [[nodiscard]] double total_capacitance() const;

  /// First section whose name matches, or -1.
  [[nodiscard]] SectionId find_by_name(const std::string& name) const;

 private:
  void check_id(SectionId i) const;

  std::vector<Section> sections_;
  std::vector<std::vector<SectionId>> children_;
  std::vector<SectionId> roots_;
};

}  // namespace relmore::circuit
