#pragma once

/// \file segmentation.hpp
/// Distributed-wire modeling: turns physical wire specs (length and
/// per-unit-length r, l, c) into chains of lumped RLC sections. The paper
/// treats "a single line" as a depth-n tree (§V-D); this module is the
/// bridge from layout-style wire descriptions to that representation, and
/// backs the segmentation-convergence ablation bench.

#include <string>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::circuit {

/// Physical description of one wire.
struct WireSpec {
  double length_m = 0.0;          ///< metres
  double r_per_m = 0.0;           ///< ohm / m
  double l_per_m = 0.0;           ///< H / m
  double c_per_m = 0.0;           ///< F / m
};

/// Typical upper-metal global wire (copper, wide pitch): the regime the
/// paper's introduction motivates — low resistance, visible inductance.
[[nodiscard]] WireSpec global_wire_spec();
/// Typical thin local interconnect: resistance-dominated, RC-adequate.
[[nodiscard]] WireSpec local_wire_spec();

/// Lumped values of one segment when the wire is split into `segments`.
[[nodiscard]] SectionValues segment_values(const WireSpec& wire, int segments);

/// Appends the wire as a chain of `segments` identical sections under
/// `parent` (kInput to drive it directly); returns the far-end section id.
/// Section names are prefix + ".0" .. prefix + ".<segments-1>".
[[nodiscard]] SectionId append_wire(RlcTree& tree, SectionId parent, const WireSpec& wire, int segments,
                      const std::string& prefix = "w");

/// Rule-of-thumb segment count: enough sections that the per-segment LC
/// resonance sits well above the wire's own bandwidth (10 segments per
/// wavelength-equivalent; at least `min_segments`).
[[nodiscard]] int suggested_segments(const WireSpec& wire, double signal_rise_seconds,
                       int min_segments = 5);

}  // namespace relmore::circuit
