#pragma once

/// \file validate.hpp
/// Structural and value validation of RLC trees before they enter the
/// analysis pipeline.
///
/// `RlcTree`'s append-only construction makes cycles impossible *through
/// the public API*, but the pipeline also ingests trees whose values were
/// mutated in place (`values()`), snapshots (`FlatTree`), and netlists
/// from untrusted sources. `validate` re-checks every invariant the
/// analysis kernels rely on and reports *all* findings with node paths,
/// instead of stopping at the first, so a service can return one
/// actionable report per malformed deck:
///
///   - parent-before-child ids, no self-parenting, parents in range
///   - no duplicate non-empty section names
///   - every R/L/C finite and non-negative
///   - total capacitance nonzero (warning: the tree drives no load)
///   - section count and depth within configurable limits
///
/// The readers (`read_tree_netlist`, `read_spice`) and the engine
/// constructors (`TimingEngine`, `BatchedAnalyzer`) run this before
/// trusting a tree; `eed::analyze`'s per-node guardrails handle the
/// residual runtime faults (overflow to Inf inside the moment sums).

#include <string>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::circuit {

/// Resource ceilings for validation. Defaults are far above any tree the
/// benches build but low enough to reject decks that would exhaust memory
/// long before analysis could finish.
struct ValidateLimits {
  std::size_t max_sections = 1u << 24;  ///< 16M sections
  int max_depth = 1 << 20;              ///< 1M levels
};

/// Input->node section path by name ("s0/s3/O"; unnamed sections appear as
/// their id). Used for diagnostics context; O(depth).
[[nodiscard]] std::string node_path(const RlcTree& tree, SectionId id);

/// Validates structure, values, and limits. Never throws; collects every
/// finding (errors and warnings) into the report.
[[nodiscard]] util::DiagnosticsReport validate(const RlcTree& tree,
                                               const ValidateLimits& limits = {});

/// Same checks over a SoA snapshot (the batched kernels' input).
[[nodiscard]] util::DiagnosticsReport validate(const FlatTree& tree,
                                               const ValidateLimits& limits = {});

}  // namespace relmore::circuit
