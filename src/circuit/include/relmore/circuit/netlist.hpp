#pragma once

/// \file netlist.hpp
/// Netlist I/O for RLC trees.
///
/// Two formats are supported:
///  1. the *tree netlist*, a minimal line format that round-trips RlcTree
///     exactly:
///         # comment
///         section <name> <parent-name|-> R=<val> L=<val> C=<val>
///     Values accept SPICE SI suffixes (f p n u m k meg g t).
///  2. a SPICE subset: `R/L/C` cards (plus an optional `V` card naming the
///     input node) are parsed and the series R–L chains are collapsed back
///     into tree sections, so decks written by write_spice() — or by other
///     tools following the same convention — can be re-imported.

#include <iosfwd>
#include <string>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::circuit {

/// Parses "12.5", "2n", "0.2p", "1meg" etc. into a finite double. Rejects
/// trailing garbage ("2nq", "1e"), non-finite literals ("nan", "inf"), and
/// magnitudes outside double range ("1e999", "1e308k") with a structured
/// status (kParseError / kValueOutOfRange).
[[nodiscard]] util::Result<double> parse_spice_value_checked(const std::string& text);

/// Exception-compatible shim over parse_spice_value_checked: throws
/// util::FaultError (a std::invalid_argument) on any rejected input.
double parse_spice_value(const std::string& text);

/// Writes the tree netlist format.
void write_tree_netlist(const RlcTree& tree, std::ostream& os);

/// Context for design-level reads, where one parse covers many embedded
/// nets: every finding is tagged with the enclosing net/instance name
/// (Diagnostic::net / Status::net — a bare "node 3" is useless across a
/// 10^5-net corpus), local line numbers are offset into the enclosing
/// file, and `report` (optional) collects *all* validation findings
/// instead of only the first error the Status carries.
struct ReadContext {
  std::string net;      ///< enclosing net/instance name ("" = standalone)
  int line_offset = 0;  ///< added to this block's 1-based line numbers
  util::DiagnosticsReport* report = nullptr;  ///< optional sink for findings
};

/// Parses the tree netlist format and validates the result
/// (circuit::validate: finite non-negative values, sound structure,
/// resource limits). Returns a Status with a line number (syntax errors)
/// or node path (validation errors) on failure; never throws.
[[nodiscard]] util::Result<RlcTree> read_tree_netlist_checked(std::istream& is);

/// Same, with design-level context: findings name the enclosing net.
[[nodiscard]] util::Result<RlcTree> read_tree_netlist_checked(std::istream& is,
                                                              const ReadContext& ctx);

/// Exception-compatible shim over read_tree_netlist_checked. Throws
/// util::FaultError (a std::invalid_argument) with a line-numbered message
/// on any syntax, topology, or validation error.
RlcTree read_tree_netlist(std::istream& is);

/// Options for SPICE export.
struct SpiceWriteOptions {
  std::string input_node = "in";
  double supply_volts = 1.0;
  double input_rise_seconds = 0.0;  ///< 0 = ideal step
  double tran_stop_seconds = 0.0;   ///< 0 = omit .tran card
};

/// Emits a SPICE deck: V source at the input, one R (and L when nonzero)
/// per section, one C per loaded node.
void write_spice(const RlcTree& tree, std::ostream& os, const SpiceWriteOptions& opts = {});

/// Parses a SPICE-subset deck back into an RlcTree and validates the
/// result. The input node is taken from the V card when present, else a
/// node literally named "in". Returns a Status when the deck is not a
/// valid tree of series R/L sections with grounded capacitors; never
/// throws.
[[nodiscard]] util::Result<RlcTree> read_spice_checked(std::istream& is);

/// Same, with design-level context: findings name the enclosing net.
[[nodiscard]] util::Result<RlcTree> read_spice_checked(std::istream& is,
                                                       const ReadContext& ctx);

/// Exception-compatible shim over read_spice_checked. Throws
/// util::FaultError (a std::invalid_argument) on any rejected deck.
RlcTree read_spice(std::istream& is);

}  // namespace relmore::circuit
