#pragma once

/// \file netlist.hpp
/// Netlist I/O for RLC trees.
///
/// Two formats are supported:
///  1. the *tree netlist*, a minimal line format that round-trips RlcTree
///     exactly:
///         # comment
///         section <name> <parent-name|-> R=<val> L=<val> C=<val>
///     Values accept SPICE SI suffixes (f p n u m k meg g t).
///  2. a SPICE subset: `R/L/C` cards (plus an optional `V` card naming the
///     input node) are parsed and the series R–L chains are collapsed back
///     into tree sections, so decks written by write_spice() — or by other
///     tools following the same convention — can be re-imported.

#include <iosfwd>
#include <string>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::circuit {

/// Parses "12.5", "2n", "0.2p", "1meg" etc. Throws std::invalid_argument on
/// malformed input.
double parse_spice_value(const std::string& text);

/// Writes the tree netlist format.
void write_tree_netlist(const RlcTree& tree, std::ostream& os);

/// Parses the tree netlist format. Throws std::invalid_argument with a
/// line-numbered message on any syntax or topology error.
RlcTree read_tree_netlist(std::istream& is);

/// Options for SPICE export.
struct SpiceWriteOptions {
  std::string input_node = "in";
  double supply_volts = 1.0;
  double input_rise_seconds = 0.0;  ///< 0 = ideal step
  double tran_stop_seconds = 0.0;   ///< 0 = omit .tran card
};

/// Emits a SPICE deck: V source at the input, one R (and L when nonzero)
/// per section, one C per loaded node.
void write_spice(const RlcTree& tree, std::ostream& os, const SpiceWriteOptions& opts = {});

/// Parses a SPICE-subset deck back into an RlcTree. The input node is taken
/// from the V card when present, else a node literally named "in".
/// Throws std::invalid_argument when the deck is not a tree of series R/L
/// sections with grounded capacitors.
RlcTree read_spice(std::istream& is);

}  // namespace relmore::circuit
