#pragma once

/// \file builders.hpp
/// Canonical tree constructions used throughout the paper's evaluation:
/// uniform lines, balanced trees with arbitrary branching factor,
/// asymmetric binary trees (the paper's `asym` parameter), the Fig. 5
/// seven-section tree, a representative Fig. 8 tree, and H-trees for the
/// clock-distribution example.

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::circuit {

/// A uniform n-section line (the paper treats a line as a depth-n "tree").
[[nodiscard]] RlcTree make_line(int sections, const SectionValues& per_section);

/// Balanced tree: `levels` levels, every section at a level has `branching`
/// children, all sections identical. Level 1 is a single root section, so a
/// binary tree with `levels` levels has 2^levels − 1 sections and
/// 2^(levels−1) sinks.
[[nodiscard]] RlcTree make_balanced_tree(int levels, int branching, const SectionValues& per_section);

/// Balanced tree whose per-level values differ (vector index = level − 1).
[[nodiscard]] RlcTree make_balanced_tree_per_level(const std::vector<SectionValues>& per_level, int branching);

/// The paper's asymmetry experiment (Fig. 12): a binary tree where at every
/// branching the *left* child's impedance is `asym` times the right child's
/// (left R,L scaled by asym; left C scaled by 1/asym, so the left subtree is
/// a higher-impedance, lighter-load path). `asym = 1` gives the balanced
/// tree. The root section keeps the base values.
[[nodiscard]] RlcTree make_asymmetric_tree(int levels, double asym, const SectionValues& base);

/// The seven-section, three-level binary tree of paper Fig. 5. Sections are
/// added in the paper's numbering (1; 2,3; 4,5,6,7) so id 6 is "node 7".
/// Returns the id of paper node 7 through `node7` when non-null.
[[nodiscard]] RlcTree make_fig5_tree(const SectionValues& per_section, SectionId* node7 = nullptr);

/// A representative stand-in for the paper's Fig. 8 example tree (component
/// values were not preserved in the available text — see DESIGN.md §4):
/// 8 sections, 3 sinks, moderately underdamped at the observed output "O".
/// Returns the id of the observed sink through `out` when non-null.
[[nodiscard]] RlcTree make_fig8_tree(SectionId* out = nullptr);

/// Symmetric H-tree clock network with `levels` H-levels. Each level halves
/// the wire length; `unit` describes one full-length segment and is scaled
/// per level. Used by the clock-skew example.
[[nodiscard]] RlcTree make_h_tree(int levels, const SectionValues& unit);

/// Comb/fishbone routing structure: a spine of `spine_sections` identical
/// sections with one tooth (a single section ending in a sink) hanging off
/// every spine node — the shape of standard-cell row feeds and some clock
/// meshes. Tooth i is the child of spine section i.
[[nodiscard]] RlcTree make_comb_tree(int spine_sections, const SectionValues& spine,
                       const SectionValues& tooth);

/// Uniformly scales all inductances by `factor` (ζ targeting).
void scale_inductances(RlcTree& tree, double factor);
/// Uniformly scales all resistances by `factor`.
void scale_resistances(RlcTree& tree, double factor);

/// The paper's Appendix remark made executable: "any general tree can be
/// transformed into a binary tree by inserting wires with zero impedances"
/// [27][28]. Returns an electrically equivalent tree in which no section
/// has more than two children; `original_of[new_id]` maps back to the
/// source section (kInput for inserted zero-impedance stubs).
[[nodiscard]] RlcTree binarize(const RlcTree& tree, std::vector<SectionId>* original_of = nullptr);

}  // namespace relmore::circuit
