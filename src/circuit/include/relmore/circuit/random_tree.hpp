#pragma once

/// \file random_tree.hpp
/// Seeded pseudo-random RLC tree generation for property-based testing and
/// fuzzing. Uses its own splitmix64/xoroshiro generator so test circuits
/// are bit-reproducible across platforms and standard-library versions
/// (std::mt19937 distributions are not portable across implementations).

#include <cstdint>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::circuit {

/// Parameter ranges for random tree generation. Values are drawn
/// log-uniformly between lo and hi so decades are sampled evenly.
struct RandomTreeSpec {
  int min_sections = 3;
  int max_sections = 40;
  int max_children = 3;          ///< per node
  double resistance_lo = 1.0;    ///< ohm
  double resistance_hi = 100.0;
  double inductance_lo = 0.1e-9;  ///< H; set lo = hi = 0 for RC trees
  double inductance_hi = 10e-9;
  double capacitance_lo = 10e-15;  ///< F
  double capacitance_hi = 1e-12;
};

/// Deterministic 64-bit generator (xoroshiro128++ seeded via splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi);
  /// Log-uniform in [lo, hi]; returns lo when lo == hi (including 0).
  [[nodiscard]] double log_uniform(double lo, double hi);

 private:
  [[nodiscard]] std::uint64_t next();
  std::uint64_t s0_;
  std::uint64_t s1_;
};

/// Generates a random tree; the same (spec, seed) pair always yields the
/// same tree. Every tree has at least one section and valid topology.
[[nodiscard]] RlcTree make_random_tree(const RandomTreeSpec& spec, std::uint64_t seed);

}  // namespace relmore::circuit
