#include "relmore/circuit/builders.hpp"

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace relmore::circuit {

RlcTree make_line(int sections, const SectionValues& per_section) {
  if (sections < 1) throw std::invalid_argument("make_line: need at least one section");
  RlcTree t;
  SectionId prev = kInput;
  for (int i = 0; i < sections; ++i) {
    prev = t.add_section(prev, per_section, "s" + std::to_string(i + 1));
  }
  return t;
}

RlcTree make_balanced_tree(int levels, int branching, const SectionValues& per_section) {
  return make_balanced_tree_per_level(std::vector<SectionValues>(
                                          static_cast<std::size_t>(levels), per_section),
                                      branching);
}

RlcTree make_balanced_tree_per_level(const std::vector<SectionValues>& per_level,
                                     int branching) {
  if (per_level.empty()) throw std::invalid_argument("make_balanced_tree: need >= 1 level");
  if (branching < 1) throw std::invalid_argument("make_balanced_tree: branching must be >= 1");
  RlcTree t;
  std::vector<SectionId> frontier{t.add_section(kInput, per_level[0], "L1.0")};
  for (std::size_t lvl = 1; lvl < per_level.size(); ++lvl) {
    std::vector<SectionId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(branching));
    int idx = 0;
    for (SectionId parent : frontier) {
      for (int b = 0; b < branching; ++b) {
        next.push_back(t.add_section(parent, per_level[lvl],
                                     "L" + std::to_string(lvl + 1) + "." + std::to_string(idx)));
        ++idx;
      }
    }
    frontier = std::move(next);
  }
  return t;
}

namespace {

void grow_asym(RlcTree& t, SectionId parent, int remaining_levels, double asym,
               const SectionValues& base, const std::string& prefix) {
  if (remaining_levels <= 0) return;
  SectionValues left = base;
  left.resistance *= asym;
  left.inductance *= asym;
  left.capacitance /= asym;
  const SectionId l = t.add_section(parent, left, prefix + "l");
  const SectionId r = t.add_section(parent, base, prefix + "r");
  grow_asym(t, l, remaining_levels - 1, asym, base, prefix + "l");
  grow_asym(t, r, remaining_levels - 1, asym, base, prefix + "r");
}

}  // namespace

RlcTree make_asymmetric_tree(int levels, double asym, const SectionValues& base) {
  if (levels < 1) throw std::invalid_argument("make_asymmetric_tree: need >= 1 level");
  if (asym <= 0.0) throw std::invalid_argument("make_asymmetric_tree: asym must be positive");
  RlcTree t;
  const SectionId root = t.add_section(kInput, base, "root");
  grow_asym(t, root, levels - 1, asym, base, "");
  return t;
}

RlcTree make_fig5_tree(const SectionValues& per_section, SectionId* node7) {
  RlcTree t;
  const SectionId s1 = t.add_section(kInput, per_section, "1");
  const SectionId s2 = t.add_section(s1, per_section, "2");
  const SectionId s3 = t.add_section(s1, per_section, "3");
  t.add_section(s2, per_section, "4");
  t.add_section(s2, per_section, "5");
  t.add_section(s3, per_section, "6");
  const SectionId s7 = t.add_section(s3, per_section, "7");
  if (node7 != nullptr) *node7 = s7;
  return t;
}

RlcTree make_fig8_tree(SectionId* out) {
  // Representative substitution for the paper's Fig. 8 (values lost in the
  // available text): a stem feeding a near sink, plus a two-way branch with
  // one deep path ending at the observed output "O". Values give
  // zeta ~ 0.8 at O, i.e. a visibly underdamped yet settling response.
  RlcTree t;
  const SectionId stem = t.add_section(kInput, {10.0, 1.5e-9, 0.10e-12}, "stem");
  const SectionId a = t.add_section(stem, {15.0, 2.0e-9, 0.12e-12}, "a");
  t.add_section(a, {20.0, 1.0e-9, 0.25e-12}, "sink1");
  const SectionId b = t.add_section(stem, {12.0, 2.5e-9, 0.10e-12}, "b");
  const SectionId b1 = t.add_section(b, {18.0, 2.0e-9, 0.15e-12}, "b1");
  t.add_section(b1, {25.0, 1.5e-9, 0.20e-12}, "sink2");
  const SectionId b2 = t.add_section(b, {14.0, 2.2e-9, 0.12e-12}, "b2");
  const SectionId o = t.add_section(b2, {16.0, 2.8e-9, 0.30e-12}, "O");
  if (out != nullptr) *out = o;
  return t;
}

RlcTree make_h_tree(int levels, const SectionValues& unit) {
  if (levels < 1) throw std::invalid_argument("make_h_tree: need >= 1 level");
  RlcTree t;
  // Each H-level splits into two half-length arms; wire halving scales R and
  // L by 1/2 and C by 1/2 per arm.
  std::vector<SectionId> frontier;
  SectionValues v = unit;
  frontier.push_back(t.add_section(kInput, v, "trunk"));
  for (int lvl = 1; lvl < levels; ++lvl) {
    v.resistance *= 0.5;
    v.inductance *= 0.5;
    v.capacitance *= 0.5;
    std::vector<SectionId> next;
    int idx = 0;
    for (SectionId parent : frontier) {
      next.push_back(
          t.add_section(parent, v, "h" + std::to_string(lvl) + "." + std::to_string(idx++)));
      next.push_back(
          t.add_section(parent, v, "h" + std::to_string(lvl) + "." + std::to_string(idx++)));
    }
    frontier = std::move(next);
  }
  return t;
}

RlcTree make_comb_tree(int spine_sections, const SectionValues& spine,
                       const SectionValues& tooth) {
  if (spine_sections < 1) {
    throw std::invalid_argument("make_comb_tree: need at least one spine section");
  }
  RlcTree t;
  SectionId prev = kInput;
  for (int i = 0; i < spine_sections; ++i) {
    prev = t.add_section(prev, spine, "spine" + std::to_string(i));
    t.add_section(prev, tooth, "tooth" + std::to_string(i));
  }
  return t;
}

RlcTree binarize(const RlcTree& tree, std::vector<SectionId>* original_of) {
  RlcTree out;
  std::vector<SectionId> map_back;
  // new id of each original section (ids are topological, parents first).
  std::vector<SectionId> new_id(tree.size(), kInput);

  // Recursively place a list of children under `parent_new`, chaining
  // zero-impedance stubs whenever more than two children remain.
  const std::function<void(const std::vector<SectionId>&, SectionId)> place =
      [&](const std::vector<SectionId>& children, SectionId parent_new) {
        if (children.empty()) return;
        if (children.size() <= 2) {
          for (SectionId c : children) {
            const SectionId nid = out.add_section(parent_new, tree.section(c).v,
                                                  tree.section(c).name);
            map_back.push_back(c);
            new_id[static_cast<std::size_t>(c)] = nid;
            place(tree.children(c), nid);
          }
          return;
        }
        // First child attaches directly; the rest go behind a zero stub.
        const SectionId first = children.front();
        const SectionId nid =
            out.add_section(parent_new, tree.section(first).v, tree.section(first).name);
        map_back.push_back(first);
        new_id[static_cast<std::size_t>(first)] = nid;
        place(tree.children(first), nid);
        const SectionId stub = out.add_section(parent_new, SectionValues{0.0, 0.0, 0.0}, "");
        map_back.push_back(kInput);
        place(std::vector<SectionId>(children.begin() + 1, children.end()), stub);
      };

  place(tree.roots(), kInput);
  if (original_of != nullptr) *original_of = std::move(map_back);
  return out;
}

void scale_inductances(RlcTree& tree, double factor) {
  if (factor < 0.0) throw std::invalid_argument("scale_inductances: negative factor");
  for (std::size_t i = 0; i < tree.size(); ++i) {
    tree.values(static_cast<SectionId>(i)).inductance *= factor;
  }
}

void scale_resistances(RlcTree& tree, double factor) {
  if (factor < 0.0) throw std::invalid_argument("scale_resistances: negative factor");
  for (std::size_t i = 0; i < tree.size(); ++i) {
    tree.values(static_cast<SectionId>(i)).resistance *= factor;
  }
}

}  // namespace relmore::circuit
