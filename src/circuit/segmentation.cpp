#include "relmore/circuit/segmentation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace relmore::circuit {

WireSpec global_wire_spec() {
  // ~1 um-thick copper, wide upper-metal wire over a ground plane:
  // low resistance, transmission-line-like. Representative of the clock
  // spines in the paper's motivation ([5]-[8], [14]).
  return {1e-3, 20e3, 0.5e-6, 150e-12};  // 20 ohm/mm, 0.5 nH/mm, 0.15 pF/mm
}

WireSpec local_wire_spec() {
  // Minimum-pitch lower-metal wire: resistance dominates, inductance is
  // negligible at on-chip rise times.
  return {0.1e-3, 800e3, 0.3e-6, 200e-12};
}

SectionValues segment_values(const WireSpec& wire, int segments) {
  if (segments < 1) throw std::invalid_argument("segment_values: segments must be >= 1");
  if (wire.length_m <= 0.0) throw std::invalid_argument("segment_values: non-positive length");
  const double frac = wire.length_m / static_cast<double>(segments);
  return {wire.r_per_m * frac, wire.l_per_m * frac, wire.c_per_m * frac};
}

SectionId append_wire(RlcTree& tree, SectionId parent, const WireSpec& wire, int segments,
                      const std::string& prefix) {
  const SectionValues v = segment_values(wire, segments);
  SectionId cur = parent;
  for (int i = 0; i < segments; ++i) {
    cur = tree.add_section(cur, v, prefix + "." + std::to_string(i));
  }
  return cur;
}

int suggested_segments(const WireSpec& wire, double signal_rise_seconds, int min_segments) {
  if (signal_rise_seconds <= 0.0) {
    throw std::invalid_argument("suggested_segments: non-positive rise time");
  }
  // Spatial extent of the signal edge: v = 1/sqrt(l c); lambda ~ v * t_r.
  // Resolve the edge with ~10 segments over the shorter of (wire, edge).
  const double lc = wire.l_per_m * wire.c_per_m;
  if (lc <= 0.0) return std::max(min_segments, 1);
  const double velocity = 1.0 / std::sqrt(lc);
  const double edge_extent = velocity * signal_rise_seconds;
  const double needed = 10.0 * wire.length_m / std::max(edge_extent, 1e-12);
  const int n = static_cast<int>(std::ceil(needed));
  return std::clamp(n, std::max(min_segments, 1), 1000);
}

}  // namespace relmore::circuit
