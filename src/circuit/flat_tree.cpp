#include "relmore/circuit/flat_tree.hpp"

#include <algorithm>

namespace relmore::circuit {

FlatTree::FlatTree(const RlcTree& tree) {
  const std::size_t n = tree.size();
  parent_.resize(n);
  resistance_.resize(n);
  inductance_.resize(n);
  capacitance_.resize(n);
  child_count_.assign(n, 0);
  level_.resize(n);
  names_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Section& s = tree.section(static_cast<SectionId>(i));
    parent_[i] = s.parent;
    resistance_[i] = s.v.resistance;
    inductance_[i] = s.v.inductance;
    capacitance_[i] = s.v.capacitance;
    names_[i] = s.name;
    if (s.parent == kInput) {
      level_[i] = 1;
    } else {
      ++child_count_[static_cast<std::size_t>(s.parent)];
      level_[i] = level_[static_cast<std::size_t>(s.parent)] + 1;
    }
    depth_ = std::max(depth_, level_[i]);
  }
}

std::vector<SectionId> FlatTree::leaves() const {
  std::vector<SectionId> out;
  for (std::size_t i = 0; i < child_count_.size(); ++i) {
    if (child_count_[i] == 0) out.push_back(static_cast<SectionId>(i));
  }
  return out;
}

SectionId FlatTree::find_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<SectionId>(i);
  }
  return kInput;
}

}  // namespace relmore::circuit
