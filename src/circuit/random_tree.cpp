#include "relmore/circuit/random_tree.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace relmore::circuit {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  s0_ = splitmix64(sm);
  s1_ = splitmix64(sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xoroshiro must not start at all-zero
}

std::uint64_t Rng::next() {
  // xoroshiro128++
  const std::uint64_t result = rotl(s0_ + s1_, 17) + s0_;
  const std::uint64_t t = s1_ ^ s0_;
  s0_ = rotl(s0_, 49) ^ t ^ (t << 21);
  s1_ = rotl(t, 28);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int Rng::uniform_int(int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next() % span);
}

double Rng::log_uniform(double lo, double hi) {
  if (lo < 0.0 || hi < lo) throw std::invalid_argument("Rng::log_uniform: bad range");
  if (lo == hi) return lo;
  if (lo == 0.0) return hi * uniform();  // degenerate: fall back to linear
  const double u = uniform();
  return lo * std::exp(u * std::log(hi / lo));
}

RlcTree make_random_tree(const RandomTreeSpec& spec, std::uint64_t seed) {
  if (spec.min_sections < 1 || spec.max_sections < spec.min_sections) {
    throw std::invalid_argument("make_random_tree: bad section count range");
  }
  if (spec.max_children < 1) {
    throw std::invalid_argument("make_random_tree: max_children must be >= 1");
  }
  Rng rng(seed);
  const int n = rng.uniform_int(spec.min_sections, spec.max_sections);

  RlcTree tree;
  std::vector<SectionId> open;  // nodes still accepting children
  auto draw = [&]() -> SectionValues {
    return {rng.log_uniform(spec.resistance_lo, spec.resistance_hi),
            rng.log_uniform(spec.inductance_lo, spec.inductance_hi),
            rng.log_uniform(spec.capacitance_lo, spec.capacitance_hi)};
  };

  open.push_back(tree.add_section(kInput, draw(), "r0"));
  std::vector<int> child_count{0};
  for (int i = 1; i < n; ++i) {
    const int pick = rng.uniform_int(0, static_cast<int>(open.size()) - 1);
    const SectionId parent = open[static_cast<std::size_t>(pick)];
    const SectionId id = tree.add_section(parent, draw(), "r" + std::to_string(i));
    child_count[static_cast<std::size_t>(parent)]++;
    if (child_count[static_cast<std::size_t>(parent)] >= spec.max_children) {
      open[static_cast<std::size_t>(pick)] = open.back();
      open.pop_back();
    }
    open.push_back(id);
    child_count.push_back(0);
  }
  return tree;
}

}  // namespace relmore::circuit
