#include "relmore/circuit/validate.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace relmore::circuit {

namespace {

using util::Diagnostic;
using util::DiagnosticsReport;
using util::ErrorCode;

std::string label_of(const std::string& name, std::size_t id) {
  return name.empty() ? std::to_string(id) : name;
}

Diagnostic make(ErrorCode code, std::string message, int node = -1) {
  Diagnostic d;
  d.code = code;
  d.message = std::move(message);
  d.node = node;
  return d;
}

/// Shared core over the two storage layouts. `Access` provides n(),
/// parent(i), r/l/c(i), name(i).
template <typename Access>
DiagnosticsReport validate_impl(const Access& a, const ValidateLimits& limits) {
  DiagnosticsReport report;
  const std::size_t n = a.n();
  if (n == 0) {
    report.add(make(ErrorCode::kEmptyTree, "tree has no sections"));
    return report;
  }
  if (n > limits.max_sections) {
    report.add(make(ErrorCode::kSizeLimit,
                    "tree has " + std::to_string(n) + " sections (limit " +
                        std::to_string(limits.max_sections) + ")"));
    return report;  // don't scan a tree we already refuse to process
  }

  // Structure: parents must be kInput or an earlier id. Parent-before-child
  // ordering is what makes the two-sweep kernels correct; an id >= i (or a
  // self-parent) would also close a cycle, so both report as structural.
  bool structure_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    const SectionId p = a.parent(i);
    if (p == kInput) continue;
    if (p < 0 || static_cast<std::size_t>(p) >= n) {
      report.add(make(ErrorCode::kInvalidParent,
                      "parent id " + std::to_string(p) + " out of range",
                      static_cast<int>(i)));
      structure_ok = false;
    } else if (static_cast<std::size_t>(p) >= i) {
      report.add(make(
          static_cast<std::size_t>(p) == i ? ErrorCode::kCycle : ErrorCode::kInvalidParent,
          static_cast<std::size_t>(p) == i
              ? "section is its own parent"
              : "parent id " + std::to_string(p) +
                    " does not precede child (cycle or corrupted order)",
          static_cast<int>(i)));
      structure_ok = false;
    }
  }

  // Depth (only meaningful on sound structure).
  if (structure_ok) {
    std::vector<int> level(n);
    int depth = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const SectionId p = a.parent(i);
      level[i] = p == kInput ? 1 : level[static_cast<std::size_t>(p)] + 1;
      if (level[i] > depth) depth = level[i];
    }
    if (depth > limits.max_depth) {
      report.add(make(ErrorCode::kDepthLimit,
                      "tree depth " + std::to_string(depth) + " exceeds limit " +
                          std::to_string(limits.max_depth)));
    }
  }

  // Duplicate non-empty names (readers key parents by name).
  {
    std::unordered_map<std::string, std::size_t> first;
    first.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& name = a.name(i);
      if (name.empty()) continue;
      const auto [it, inserted] = first.emplace(name, i);
      if (!inserted) {
        Diagnostic d = make(ErrorCode::kDuplicateName,
                            "name '" + name + "' already used by section " +
                                std::to_string(it->second),
                            static_cast<int>(i));
        d.path = a.path(i, structure_ok);
        report.add(std::move(d));
      }
    }
  }

  // Element values: finite and non-negative, reported per offending node
  // with its path. Total capacitance accumulated on the side.
  double total_c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double vals[3] = {a.r(i), a.l(i), a.c(i)};
    static const char* const kNames[3] = {"resistance", "inductance", "capacitance"};
    for (int k = 0; k < 3; ++k) {
      const double v = vals[k];
      if (util::valid_element_value(v)) continue;
      Diagnostic d;
      d.code = std::isnan(v) || std::isinf(v) ? ErrorCode::kNonFiniteValue
                                              : ErrorCode::kNegativeValue;
      d.message = std::string(kNames[k]) + " = " + std::to_string(v);
      d.node = static_cast<int>(i);
      d.path = a.path(i, structure_ok);
      report.add(std::move(d));
    }
    const double c = vals[2];
    if (util::valid_element_value(c)) total_c += c;
  }
  if (total_c == 0.0) {
    Diagnostic d = make(ErrorCode::kZeroTotalCapacitance,
                        "tree has zero total capacitance (drives no load)");
    d.warning = true;
    report.add(std::move(d));
  }
  return report;
}

struct RlcAccess {
  const RlcTree& t;
  [[nodiscard]] std::size_t n() const { return t.size(); }
  [[nodiscard]] SectionId parent(std::size_t i) const {
    return t.section(static_cast<SectionId>(i)).parent;
  }
  [[nodiscard]] double r(std::size_t i) const {
    return t.section(static_cast<SectionId>(i)).v.resistance;
  }
  [[nodiscard]] double l(std::size_t i) const {
    return t.section(static_cast<SectionId>(i)).v.inductance;
  }
  [[nodiscard]] double c(std::size_t i) const {
    return t.section(static_cast<SectionId>(i)).v.capacitance;
  }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return t.section(static_cast<SectionId>(i)).name;
  }
  [[nodiscard]] std::string path(std::size_t i, bool structure_ok) const {
    if (!structure_ok) return label_of(name(i), i);
    return node_path(t, static_cast<SectionId>(i));
  }
};

struct FlatAccess {
  const FlatTree& t;
  [[nodiscard]] std::size_t n() const { return t.size(); }
  [[nodiscard]] SectionId parent(std::size_t i) const { return t.parent()[i]; }
  [[nodiscard]] double r(std::size_t i) const { return t.resistance()[i]; }
  [[nodiscard]] double l(std::size_t i) const { return t.inductance()[i]; }
  [[nodiscard]] double c(std::size_t i) const { return t.capacitance()[i]; }
  [[nodiscard]] const std::string& name(std::size_t i) const { return t.names()[i]; }
  [[nodiscard]] std::string path(std::size_t i, bool structure_ok) const {
    if (!structure_ok) return label_of(name(i), i);
    std::string out;
    // Root-end-first: collect the chain then reverse by prepending.
    for (SectionId cur = static_cast<SectionId>(i); cur != kInput;
         cur = t.parent()[static_cast<std::size_t>(cur)]) {
      const auto ci = static_cast<std::size_t>(cur);
      const std::string label = label_of(t.names()[ci], ci);
      out = out.empty() ? label : label + "/" + out;
    }
    return out;
  }
};

}  // namespace

std::string node_path(const RlcTree& tree, SectionId id) {
  std::string out;
  for (SectionId cur = id; cur != kInput;
       cur = tree.section(cur).parent) {
    const auto ci = static_cast<std::size_t>(cur);
    const std::string label = label_of(tree.section(cur).name, ci);
    out = out.empty() ? label : label + "/" + out;
  }
  return out;
}

util::DiagnosticsReport validate(const RlcTree& tree, const ValidateLimits& limits) {
  return validate_impl(RlcAccess{tree}, limits);
}

util::DiagnosticsReport validate(const FlatTree& tree, const ValidateLimits& limits) {
  return validate_impl(FlatAccess{tree}, limits);
}

}  // namespace relmore::circuit
