#include "relmore/circuit/rlc_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace relmore::circuit {

SectionId RlcTree::add_section(SectionId parent, const SectionValues& values, std::string name) {
  if (parent != kInput && (parent < 0 || static_cast<std::size_t>(parent) >= sections_.size())) {
    throw std::invalid_argument("RlcTree::add_section: unknown parent id");
  }
  if (values.resistance < 0.0 || values.inductance < 0.0 || values.capacitance < 0.0) {
    throw std::invalid_argument("RlcTree::add_section: negative element value");
  }
  const SectionId id = static_cast<SectionId>(sections_.size());
  sections_.push_back(Section{parent, values, std::move(name)});
  children_.emplace_back();
  if (parent == kInput) {
    roots_.push_back(id);
  } else {
    children_[static_cast<std::size_t>(parent)].push_back(id);
  }
  return id;
}

SectionId RlcTree::add_section(SectionId parent, double resistance, double inductance,
                               double capacitance, std::string name) {
  return add_section(parent, SectionValues{resistance, inductance, capacitance},
                     std::move(name));
}

void RlcTree::check_id(SectionId i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= sections_.size()) {
    throw std::out_of_range("RlcTree: section id out of range");
  }
}

const Section& RlcTree::section(SectionId i) const {
  check_id(i);
  return sections_[static_cast<std::size_t>(i)];
}

const std::vector<SectionId>& RlcTree::children(SectionId i) const {
  check_id(i);
  return children_[static_cast<std::size_t>(i)];
}

SectionValues& RlcTree::values(SectionId i) {
  check_id(i);
  return sections_[static_cast<std::size_t>(i)].v;
}

void RlcTree::truncate(std::size_t n) {
  if (n >= sections_.size()) return;
  // Dropped ids are the largest, and both roots_ and each children_ list
  // were appended in ascending id order, so every dropped id sits at the
  // back of whichever list holds it.
  for (std::size_t i = sections_.size(); i-- > n;) {
    const SectionId p = sections_[i].parent;
    if (p == kInput) {
      roots_.pop_back();
    } else if (static_cast<std::size_t>(p) < n) {
      children_[static_cast<std::size_t>(p)].pop_back();
    }
  }
  sections_.resize(n);
  children_.resize(n);
}

std::vector<SectionId> RlcTree::topological_order() const {
  std::vector<SectionId> order(sections_.size());
  for (std::size_t i = 0; i < sections_.size(); ++i) order[i] = static_cast<SectionId>(i);
  return order;
}

std::vector<SectionId> RlcTree::leaves() const {
  std::vector<SectionId> out;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (children_[i].empty()) out.push_back(static_cast<SectionId>(i));
  }
  return out;
}

int RlcTree::level(SectionId i) const {
  check_id(i);
  int lvl = 0;
  for (SectionId cur = i; cur != kInput; cur = sections_[static_cast<std::size_t>(cur)].parent) {
    ++lvl;
  }
  return lvl;
}

int RlcTree::depth() const {
  // Single forward scan: ids are parent-before-child, so each section's
  // level is its parent's plus one. (A per-leaf level() walk would be
  // O(n·depth) — quadratic on a line tree.)
  int d = 0;
  std::vector<int> lvl(sections_.size());
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const SectionId p = sections_[i].parent;
    lvl[i] = p == kInput ? 1 : lvl[static_cast<std::size_t>(p)] + 1;
    d = std::max(d, lvl[i]);
  }
  return d;
}

std::vector<SectionId> RlcTree::path_from_input(SectionId i) const {
  check_id(i);
  std::vector<SectionId> path;
  for (SectionId cur = i; cur != kInput; cur = sections_[static_cast<std::size_t>(cur)].parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double RlcTree::total_capacitance() const {
  double c = 0.0;
  for (const Section& s : sections_) c += s.v.capacitance;
  return c;
}

SectionId RlcTree::find_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name == name) return static_cast<SectionId>(i);
  }
  return kInput;
}

}  // namespace relmore::circuit
