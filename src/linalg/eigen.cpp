#include "relmore/linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace relmore::linalg {

namespace {

constexpr double kEps = 1e-14;

/// Complex dense matrix as nested vectors (n is small; clarity over speed).
using CMat = std::vector<std::vector<Complex>>;

/// Householder reduction of a real square matrix to upper Hessenberg form;
/// accumulates the orthogonal similarity Q (A = Q H Q^T).
void hessenberg(Matrix& a, Matrix& q) {
  const std::size_t n = a.rows();
  q = Matrix::identity(n);
  if (n < 3) return;
  std::vector<double> v(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating column k below the subdiagonal.
    double norm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = a(k + 1, k) >= 0.0 ? -norm : norm;
    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = a(i, k);
      if (i == k + 1) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;
    // A := (I - beta v v^T) A
    for (std::size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += v[i] * a(i, c);
      dot *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, c) -= dot * v[i];
    }
    // A := A (I - beta v v^T)
    for (std::size_t r = 0; r < n; ++r) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += a(r, i) * v[i];
      dot *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(r, i) -= dot * v[i];
    }
    // Q := Q (I - beta v v^T)
    for (std::size_t r = 0; r < n; ++r) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += q(r, i) * v[i];
      dot *= beta;
      for (std::size_t i = k + 1; i < n; ++i) q(r, i) -= dot * v[i];
    }
    // Clean exact zeros below the subdiagonal of column k.
    a(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = 0.0;
  }
}

struct Givens {
  double c = 1.0;   // real by construction
  Complex s{0.0, 0.0};
};

/// Rotation zeroing the second component of (a, b)^T.
Givens make_givens(Complex a, Complex b) {
  Givens g;
  if (b == Complex{0.0, 0.0}) return g;
  if (a == Complex{0.0, 0.0}) {
    g.c = 0.0;
    g.s = 1.0;
    return g;
  }
  const Complex t = b / a;
  g.c = 1.0 / std::sqrt(1.0 + std::norm(t));
  g.s = std::conj(t) * g.c;
  return g;
}

/// Wilkinson shift from the trailing 2x2 block [[a,b],[c,d]].
Complex wilkinson_shift(Complex a, Complex b, Complex c, Complex d) {
  const Complex tr2 = 0.5 * (a + d);
  const Complex disc = std::sqrt(tr2 * tr2 - (a * d - b * c));
  const Complex l1 = tr2 + disc;
  const Complex l2 = tr2 - disc;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

/// Complex Schur decomposition of an upper Hessenberg complex matrix `h`
/// (n x n) in place; accumulates the unitary similarity into `u`
/// (A = U T U^H once combined with the Hessenberg Q).
void schur_hessenberg(CMat& h, CMat& u, int max_sweeps) {
  const std::size_t n = h.size();
  if (n == 0) return;
  if (max_sweeps <= 0) max_sweeps = 60 * static_cast<int>(n) + 200;

  std::size_t hi = n - 1;
  int sweeps = 0;
  int stagnation = 0;
  while (hi > 0) {
    // Zero negligible subdiagonals, then deflate from the bottom.
    for (std::size_t k = 1; k <= hi; ++k) {
      const double mag = std::abs(h[k][k - 1]);
      if (mag <= kEps * (std::abs(h[k - 1][k - 1]) + std::abs(h[k][k]))) h[k][k - 1] = 0.0;
    }
    if (h[hi][hi - 1] == Complex{0.0, 0.0}) {
      --hi;
      stagnation = 0;
      continue;
    }
    // Active window [lo..hi]: walk up to the nearest zero subdiagonal.
    std::size_t lo = hi;
    while (lo > 0 && h[lo][lo - 1] != Complex{0.0, 0.0}) --lo;

    if (++sweeps > max_sweeps) throw std::runtime_error("schur: QR iteration did not converge");

    Complex mu = wilkinson_shift(h[hi - 1][hi - 1], h[hi - 1][hi], h[hi][hi - 1], h[hi][hi]);
    if (++stagnation % 16 == 0) {
      // Exceptional shift to break rare cycles.
      mu = h[hi][hi] + Complex{1.5 * std::abs(h[hi][hi - 1]), 0.0};
    }

    // Explicit shifted QR sweep on the window: H - mu I = Q R, H' = R Q + mu I.
    for (std::size_t k = lo; k <= hi; ++k) h[k][k] -= mu;
    std::vector<Givens> rot(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) {
      const Givens g = make_givens(h[k][k], h[k + 1][k]);
      rot[k - lo] = g;
      // Apply from the left to rows k, k+1 (columns k..n-1).
      for (std::size_t j = k; j < n; ++j) {
        const Complex x = h[k][j];
        const Complex y = h[k + 1][j];
        h[k][j] = g.c * x + g.s * y;
        h[k + 1][j] = -std::conj(g.s) * x + g.c * y;
      }
      h[k + 1][k] = 0.0;
    }
    // H := R Q^H* ... multiply by G_k^H on the right, in order.
    for (std::size_t k = lo; k < hi; ++k) {
      const Givens g = rot[k - lo];
      const std::size_t top = std::min(k + 1, hi);
      for (std::size_t i = 0; i <= top; ++i) {
        const Complex x = h[i][k];
        const Complex y = h[i][k + 1];
        h[i][k] = g.c * x + std::conj(g.s) * y;
        h[i][k + 1] = -g.s * x + g.c * y;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const Complex x = u[i][k];
        const Complex y = u[i][k + 1];
        u[i][k] = g.c * x + std::conj(g.s) * y;
        u[i][k + 1] = -g.s * x + g.c * y;
      }
    }
    for (std::size_t k = lo; k <= hi; ++k) h[k][k] += mu;
  }
}

/// Unit-norm eigenvector of the upper triangular `t` for eigenvalue at
/// index k, expressed back in the original basis through `u`.
std::vector<Complex> triangular_eigenvector(const CMat& t, const CMat& u, std::size_t k) {
  const std::size_t n = t.size();
  std::vector<Complex> y(n, Complex{0.0, 0.0});
  y[k] = 1.0;
  const Complex lambda = t[k][k];
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(t[i][i]));
  const double floor = std::max(scale, 1.0) * 1e-300;
  for (std::size_t ii = k; ii-- > 0;) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = ii + 1; j <= k; ++j) acc += t[ii][j] * y[j];
    Complex den = t[ii][ii] - lambda;
    if (std::abs(den) < kEps * std::max(scale, 1.0)) {
      // Defective or clustered eigenvalue: nudge the denominator. The
      // circuit matrices we target have simple poles, so this is a guard,
      // not a code path tests rely on.
      den = Complex{kEps * std::max(scale, 1.0), 0.0};
    }
    y[ii] = -acc / den;
    if (std::abs(y[ii]) > 1e250) {
      for (std::size_t j = ii; j <= k; ++j) y[j] *= 1e-250;
    }
  }
  (void)floor;
  // Back to the original basis: v = U y.
  std::vector<Complex> v(n, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j <= k; ++j) acc += u[i][j] * y[j];
    v[i] = acc;
  }
  double norm = 0.0;
  for (const Complex& c : v) norm += std::norm(c);
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (Complex& c : v) c /= norm;
  }
  return v;
}

/// Runs Hessenberg + Schur; returns (T, U) with A = U T U^H.
void schur(const Matrix& a, CMat& t, CMat& u, int max_sweeps) {
  if (a.rows() != a.cols()) throw std::invalid_argument("eigen: matrix must be square");
  const std::size_t n = a.rows();
  Matrix h = a;
  Matrix q;
  hessenberg(h, q);
  t.assign(n, std::vector<Complex>(n, Complex{0.0, 0.0}));
  u.assign(n, std::vector<Complex>(n, Complex{0.0, 0.0}));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      t[i][j] = h(i, j);
      u[i][j] = q(i, j);
    }
  }
  schur_hessenberg(t, u, max_sweeps);
}

}  // namespace

std::vector<Complex> eigenvalues(const Matrix& a, int max_sweeps) {
  CMat t;
  CMat u;
  schur(a, t, u, max_sweeps);
  std::vector<Complex> vals(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) vals[i] = t[i][i];
  return vals;
}

EigenSystem eigen_decompose(const Matrix& a, int max_sweeps) {
  CMat t;
  CMat u;
  schur(a, t, u, max_sweeps);
  EigenSystem es;
  const std::size_t n = a.rows();
  es.values.resize(n);
  es.vectors.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    es.values[k] = t[k][k];
    es.vectors[k] = triangular_eigenvector(t, u, k);
  }
  return es;
}

std::vector<Complex> solve_complex(std::vector<std::vector<Complex>> m, std::vector<Complex> b) {
  const std::size_t n = m.size();
  if (b.size() != n) throw std::invalid_argument("solve_complex: size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(m[col][col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m[r][col]) > best) {
        best = std::abs(m[r][col]);
        pivot = r;
      }
    }
    if (best == 0.0) throw std::runtime_error("solve_complex: singular matrix");
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const Complex f = m[r][col] / m[col][col];
      if (f == Complex{0.0, 0.0}) continue;
      for (std::size_t c = col; c < n; ++c) m[r][c] -= f * m[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<Complex> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    Complex acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m[ri][c] * x[c];
    x[ri] = acc / m[ri][ri];
  }
  return x;
}

}  // namespace relmore::linalg
