#include "relmore/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace relmore::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) throw std::invalid_argument("Matrix::from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("Matrix::operator*: vector size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

LuFactor::LuFactor(Matrix a) : lu_(std::move(a)), perm_(lu_.rows()) {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LuFactor: matrix must be square");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) throw std::runtime_error("LuFactor: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(col, c), lu_(pivot, c));
      std::swap(perm_[col], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu_(r, col) * inv;
      lu_(r, col) = f;
      if (f == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) lu_(r, c) -= f * lu_(col, c);
    }
  }
}

std::vector<double> LuFactor::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward: L y = Pb (unit diagonal).
  for (std::size_t r = 1; r < n; ++r) {
    double acc = x[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Backward: U x = y.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

double LuFactor::determinant() const {
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace relmore::linalg
