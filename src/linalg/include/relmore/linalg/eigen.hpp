#pragma once

/// \file eigen.hpp
/// Eigen-decomposition of real nonsymmetric matrices via Householder
/// Hessenberg reduction followed by complex shifted-QR (Wilkinson shift,
/// Givens rotations) to Schur form, with eigenvectors recovered by
/// triangular back-substitution.
///
/// This powers the *exact* modal transient solver: an RLC tree's state
/// matrix is real nonsymmetric, its eigenvalues are the exact circuit poles,
/// and expanding the step response in the eigenbasis gives waveforms with no
/// time-discretization error — our stand-in for the paper's AS/X reference.

#include <complex>
#include <vector>

#include "relmore/linalg/matrix.hpp"

namespace relmore::linalg {

using Complex = std::complex<double>;

/// Right eigen-decomposition A v_k = lambda_k v_k.
struct EigenSystem {
  std::vector<Complex> values;                ///< eigenvalues (unordered pairs conjugate)
  std::vector<std::vector<Complex>> vectors;  ///< vectors[k] = unit-norm right eigenvector
};

/// All eigenvalues of a real square matrix. Throws std::runtime_error when
/// the QR iteration fails to converge (does not happen for the circuit
/// matrices this library builds, but the guard is kept honest).
[[nodiscard]] std::vector<Complex> eigenvalues(const Matrix& a, int max_sweeps = 0);

/// Eigenvalues and right eigenvectors.
[[nodiscard]] EigenSystem eigen_decompose(const Matrix& a, int max_sweeps = 0);

/// Solves the complex dense system M x = b with partial-pivot elimination.
/// Exposed because the modal solver must expand initial conditions in a
/// (complex) eigenvector basis.
[[nodiscard]] std::vector<Complex> solve_complex(std::vector<std::vector<Complex>> m, std::vector<Complex> b);

}  // namespace relmore::linalg
