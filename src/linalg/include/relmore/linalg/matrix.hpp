#pragma once

/// \file matrix.hpp
/// Dense row-major real matrix with LU factorization. Sized for the
/// moderate systems EDA macromodeling needs (MNA matrices and state-space
/// models up to a few thousand unknowns); no attempt at BLAS-level tuning.

#include <cstddef>
#include <vector>

namespace relmore::linalg {

/// Dense real matrix, row-major storage.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer-style data; rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(const std::vector<double>& v) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Max-abs entry (used by tests for residual checks).
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting, reusable across many solves —
/// the transient engines factor once per (circuit, timestep) and back-solve
/// every step.
class LuFactor {
 public:
  /// Factors `a` (square). Throws std::runtime_error when singular to
  /// machine precision.
  explicit LuFactor(Matrix a);

  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;
  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Determinant from the factorization (sign-corrected by the permutation).
  [[nodiscard]] double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

}  // namespace relmore::linalg
