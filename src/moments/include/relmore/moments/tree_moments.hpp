#pragma once

/// \file tree_moments.hpp
/// Exact transfer-function moments of every node of an RLC tree.
///
/// The voltage transfer function at node i expands as
/// V_i(s) = sum_q m_q^i s^q with m_0 = 1 and (paper eqs. 20–23)
///
///   m_q^i = − sum_{j in path(i)} [ R_j * S_{q−1}(j) + L_j * S_{q−2}(j) ],
///   S_r(j) = sum_{k in subtree(j)} C_k * m_r^k,
///
/// computed here in O(n) per order with one upward (subtree sums) and one
/// downward (path sums) traversal — the RLC generalization of the
/// Rubinstein–Penfield/Ratzlaff recursion the paper cites [29][48]. These
/// are the *exact* moments; the paper's contribution approximates m_2 to
/// recover a recursive closed form (see relmore/eed).

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::moments {

/// moments[q][node] = m_q at that node, for q = 0..max_order.
/// max_order >= 0; moments[0] is all ones.
[[nodiscard]] std::vector<std::vector<double>> tree_moments(const circuit::RlcTree& tree, int max_order);

/// Convenience: the first and second moments of one node.
struct FirstTwoMoments {
  double m1 = 0.0;
  double m2 = 0.0;
};
[[nodiscard]] FirstTwoMoments first_two_moments(const circuit::RlcTree& tree, circuit::SectionId node);

}  // namespace relmore::moments
