#pragma once

/// \file pole_residue.hpp
/// Reduced-order pole/residue macromodels built from moments:
///  - awe_model(): the q-pole AWE (asymptotic waveform evaluation) model
///    via [q−1/q] Padé approximation of the moment series — the
///    higher-accuracy (but potentially unstable) alternative the paper
///    contrasts against [33]–[35];
///  - two_pole_model(): the Kahng–Muddu two-pole model [30] that matches
///    the exact first two moments — the paper's closest prior art baseline.

#include <complex>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::moments {

using Complex = std::complex<double>;

/// H(s) = sum_j residues[j] / (s − poles[j]); strictly proper with H(0)=1
/// for the models produced here.
struct PoleResidueModel {
  std::vector<Complex> poles;
  std::vector<Complex> residues;

  /// True when every pole has a strictly negative real part.
  [[nodiscard]] bool stable() const;

  /// DC gain H(0) (≈ 1 for well-formed interconnect models).
  [[nodiscard]] double dc_gain() const;

  /// Unit-step response scaled by v_supply: v(t) = V·(H(0) + Σ r_j/p_j e^{p_j t}).
  [[nodiscard]] double step_response(double t, double v_supply = 1.0) const;

  /// Response to the exponential input V(1 − e^{−t/tau}) via residue
  /// algebra (simple poles; tau perturbed minutely on pole collision).
  [[nodiscard]] double exp_input_response(double t, double v_supply, double tau) const;

  /// Response to a finite linear ramp 0 → V over `rise` seconds.
  [[nodiscard]] double ramp_input_response(double t, double v_supply, double rise) const;

  [[nodiscard]] sim::Waveform step_waveform(const std::vector<double>& times,
                                            double v_supply = 1.0) const;
};

/// Builds the order-q AWE model from moments m_0..m_{2q−1} of one node
/// (`node_moments[k]` = m_k; must have size >= 2q). Throws
/// std::invalid_argument on insufficient moments and std::runtime_error
/// when the Hankel system is singular (moment degeneracy).
PoleResidueModel awe_model(const std::vector<double>& node_moments, int q);

/// Kahng–Muddu style two-pole model from the exact first two moments:
/// H(s) = 1/(1 + b1 s + b2 s²) with b1 = −m1, b2 = m1² − m2.
PoleResidueModel two_pole_model(double m1, double m2);

/// RICE-style whole-tree evaluation [35]: builds the order-q AWE model at
/// *every* node from one O(n·2q) moment computation. Nodes whose Hankel
/// system degenerates get the largest q' < q that succeeds (q' >= 1 always
/// succeeds for a physical tree).
std::vector<PoleResidueModel> awe_models_for_tree(const circuit::RlcTree& tree, int q);

/// Standard AWE stabilization: discards right-half-plane poles and rescales
/// the surviving residues to restore unit DC gain. Returns the input
/// unchanged when it is already stable. Throws std::invalid_argument when
/// *no* pole is stable.
PoleResidueModel stabilized(const PoleResidueModel& model);

}  // namespace relmore::moments
